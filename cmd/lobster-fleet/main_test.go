package main

import (
	"bytes"
	"strings"
	"testing"

	"lobster/internal/health"
	"lobster/internal/tsdb"
)

// TestOnceJSONGolden pins the exact machine-readable snapshot `-once
// -json` prints: a hub on a fixed clock scraping a fixed payload must
// serialize byte-identically, because scripts parse this.
func TestOnceJSONGolden(t *testing.T) {
	page := []byte("# TYPE lobster_wq_tasks_done_total counter\n" +
		"lobster_wq_tasks_done_total 42\n" +
		"# TYPE lobster_wq_tasks_running gauge\n" +
		"lobster_wq_tasks_running 7\n")
	now := 0.0
	hub := health.NewHub(health.Config{
		Endpoints: []health.Endpoint{
			{Name: "m-1", Component: "master", Source: &health.StaticSource{Text: page}},
		},
		Rules: health.NewRuleSet(nil),
		Clock: func() float64 { return now },
	})
	now = 5
	hub.Tick()

	var buf bytes.Buffer
	if err := printJSON(&buf, hub); err != nil {
		t.Fatal(err)
	}
	want := `{
  "t": 5,
  "ticks": 1,
  "endpoints": [
    {
      "name": "m-1",
      "component": "master",
      "up": true,
      "age_sec": 0,
      "series": 2,
      "fails": 0
    }
  ],
  "series": [
    {
      "Name": "lobster_wq_tasks_done_total",
      "Type": "counter",
      "Total": 42,
      "Max": 42,
      "N": 1,
      "PerComponent": {
        "master": 42
      }
    },
    {
      "Name": "lobster_wq_tasks_running",
      "Type": "gauge",
      "Total": 7,
      "Max": 7,
      "N": 1,
      "PerComponent": {
        "master": 7
      }
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("-once -json snapshot drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunPlotChartAndCSV drives the offline replot path end to end: a
// store recorded to disk, reopened by runPlot, rendered both ways.
func TestRunPlotChartAndCSV(t *testing.T) {
	dir := t.TempDir()
	st, err := tsdb.Open(tsdb.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]string{"component": "master", "instance": "m-1"}
	for i := 0; i <= 120; i++ {
		st.Append("lobster_cluster_pilots_up", labels, float64(i*10), float64(i))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var chart bytes.Buffer
	err = runPlot(&chart, dir, "lobster_cluster_pilots_up", 0, 0, 60, false, 60)
	if err != nil {
		t.Fatal(err)
	}
	out := chart.String()
	if !strings.Contains(out, "lobster_cluster_pilots_up{component=master,instance=m-1}") {
		t.Errorf("chart lacks series title:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("chart has no plotted points:\n%s", out)
	}

	var csv bytes.Buffer
	if err := runPlot(&csv, dir, "lobster_cluster_pilots_up", 600, 1200, 300, true, 60); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 { // header + 600,900,1200
		t.Fatalf("csv rows = %d, want 4:\n%s", len(lines), csv.String())
	}
	if lines[1] != "600,60" || lines[3] != "1200,120" {
		t.Errorf("csv values drifted: %q", lines)
	}

	// Error paths a user will actually hit.
	if err := runPlot(&csv, "", "x", 0, 0, 60, false, 60); err == nil {
		t.Error("missing -tsdb dir not rejected")
	}
	if err := runPlot(&csv, dir, "", 0, 0, 60, false, 60); err == nil {
		t.Error("missing -q not rejected")
	}
	if err := runPlot(&csv, dir, "no_such_metric", 0, 0, 60, false, 60); err == nil {
		t.Error("no-match query not rejected")
	}
}
