package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"lobster/internal/tsdb"
)

// runPlot reopens a recorded history directory, evaluates one range
// query, and renders the result: the offline replot path for the
// paper's ramp figures (Fig 5/6), no live fleet required.
func runPlot(w io.Writer, dir, query string, start, end, step float64, csv bool, width int) error {
	if dir == "" {
		return fmt.Errorf("-plot needs -tsdb <dir> (a directory a previous run recorded)")
	}
	if query == "" {
		return fmt.Errorf("-plot needs -q '<query>', e.g. -q 'avg_over_time(lobster_cluster_pilots_up[600])'")
	}
	q, err := tsdb.ParseQuery(query)
	if err != nil {
		return err
	}
	st, err := tsdb.Open(tsdb.Config{Dir: dir})
	if err != nil {
		return fmt.Errorf("opening history store: %w", err)
	}
	defer st.Close()
	if st.Stats().Samples == 0 {
		return fmt.Errorf("%s holds no samples", dir)
	}
	if end <= 0 {
		end = st.MaxTime()
	}
	if start <= 0 {
		start = end - 3600
	}
	if step <= 0 {
		step = 60
	}
	results := st.EvalRange(q, start, end, step)
	if len(results) == 0 {
		return fmt.Errorf("query %q matched no series in [%g, %g]", query, start, end)
	}
	if csv {
		return tsdb.WriteCSV(w, results)
	}
	for _, sr := range results {
		title := sr.Name
		if len(sr.Labels) > 0 {
			parts := make([]string, 0, len(sr.Labels))
			for k, v := range sr.Labels {
				parts = append(parts, k+"="+v)
			}
			sort.Strings(parts)
			title += "{" + strings.Join(parts, ",") + "}"
		}
		if title == "" {
			title = query
		}
		tsdb.Chart(w, title, sr.Samples, width, 12)
	}
	return nil
}
