// Command lobster-fleet is the fleet monitoring hub: it scrapes every
// component's /metrics endpoint, merges the series into cluster-wide
// aggregates, evaluates the anomaly rule set, appends typed "alert"
// events to a JSONL event log, records every merged scrape into an
// embedded time-series store, and archives pprof bundles from the
// affected endpoints when a profiling-enabled rule fires.
//
// Usage:
//
//	lobster-fleet -scrape master=http://127.0.0.1:9099 \
//	              -scrape chirpd=http://127.0.0.1:9095 \
//	              -interval 5s -event-log fleet.jsonl -profiles ./profiles \
//	              -tsdb ./history -http 127.0.0.1:9100
//
//	lobster-fleet -scrape master=http://127.0.0.1:9099 -once        # one tick, print, exit
//	lobster-fleet -scrape master=http://127.0.0.1:9099 -once -json  # machine-readable snapshot
//
//	lobster-fleet -plot -tsdb ./history \
//	              -q 'avg_over_time(lobster_cluster_pilots_up[600])' \
//	              -step 300                                          # replot a past run's ramp
//
// The hub's own address serves /metrics (hub self-telemetry), /fleet
// (the merged JSON view `lobster -top -fleet` renders), and /query
// (range queries over the recorded history).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"lobster/internal/health"
	"lobster/internal/monitor"
	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
	"lobster/internal/tsdb"
)

// scrapeFlags accumulates repeated -scrape name=url specs.
type scrapeFlags []health.Endpoint

func (s *scrapeFlags) String() string { return fmt.Sprintf("%d endpoints", len(*s)) }

func (s *scrapeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*s = append(*s, health.Endpoint{
		Name:      name,
		Component: componentOf(name),
		Source:    &health.HTTPSource{BaseURL: url},
	})
	return nil
}

// componentOf derives the component label from an instance name:
// "worker-3" → "worker".
func componentOf(name string) string {
	if i := strings.LastIndexAny(name, "-."); i > 0 {
		digits := true
		for _, c := range name[i+1:] {
			if c < '0' || c > '9' {
				digits = false
				break
			}
		}
		if digits && i+1 < len(name) {
			return name[:i]
		}
	}
	return name
}

func main() {
	var eps scrapeFlags
	flag.Var(&eps, "scrape", "endpoint to scrape as name=base-url (repeatable; name like worker-3 yields component worker)")
	var (
		rulesPath = flag.String("rules", "", "JSON alert rule file (default: built-in detector set)")
		interval  = flag.Duration("interval", 5*time.Second, "scrape interval")
		evlog     = flag.String("event-log", "", "append typed alert events to this JSONL file")
		evlogMax  = flag.Int64("event-log-max", 0, "rotate the event log after this many bytes (0 = never)")
		profDir   = flag.String("profiles", "", "archive pprof bundles here when a profiling-enabled rule fires")
		httpAddr  = flag.String("http", "", "serve hub telemetry (/metrics), the merged fleet view (/fleet), and history queries (/query) on this address")
		downAfter = flag.Int("down-after", 2, "consecutive scrape failures before endpoint_down fires")
		once      = flag.Bool("once", false, "run one scrape cycle, print the fleet view, and exit")
		jsonOut   = flag.Bool("json", false, "with -once: print the hub view as JSON instead of tables")
		tsdbDir   = flag.String("tsdb", "", "persist scrape history as compressed segments in this directory")
		retention = flag.Duration("retention", 24*time.Hour, "raw-sample retention in the history store")
		plot      = flag.Bool("plot", false, "query a recorded -tsdb directory and render it (no scraping)")
		query     = flag.String("q", "", "with -plot: range query, e.g. 'sum(rate(lobster_wq_dispatches_total[600]))'")
		start     = flag.Float64("start", 0, "with -plot: range start in seconds (0 = end minus one hour)")
		end       = flag.Float64("end", 0, "with -plot: range end in seconds (0 = newest sample)")
		step      = flag.Float64("step", 60, "with -plot: evaluation step in seconds")
		csvOut    = flag.Bool("csv", false, "with -plot: emit CSV rows instead of an ASCII chart")
		width     = flag.Int("width", 72, "with -plot: chart width in columns")
	)
	flag.Parse()
	var err error
	if *plot {
		err = runPlot(os.Stdout, *tsdbDir, *query, *start, *end, *step, *csvOut, *width)
	} else {
		err = run(eps, *rulesPath, *interval, *evlog, *evlogMax, *profDir, *httpAddr,
			*tsdbDir, *retention, *downAfter, *once, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lobster-fleet:", err)
		os.Exit(1)
	}
}

func run(eps []health.Endpoint, rulesPath string, interval time.Duration,
	evlogPath string, evlogMax int64, profDir, httpAddr, tsdbDir string,
	retention time.Duration, downAfter int, once, jsonOut bool) error {
	if len(eps) == 0 {
		return fmt.Errorf("no endpoints: pass at least one -scrape name=url")
	}
	rules := health.NewRuleSet(health.DefaultRules())
	if rulesPath != "" {
		f, err := os.Open(rulesPath)
		if err != nil {
			return err
		}
		rules, err = health.LoadRules(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	reg := telemetry.NewRegistry()
	var evl *telemetry.EventLog
	if evlogPath != "" {
		var err error
		evl, err = telemetry.OpenEventLogLimit(evlogPath, evlogMax, reg.Now)
		if err != nil {
			return err
		}
		defer evl.Close()
	}
	var store *tsdb.Store
	if tsdbDir != "" {
		var err error
		store, err = tsdb.Open(tsdb.Config{
			Dir:       tsdbDir,
			Retention: retention.Seconds(),
			Log:       evl,
		})
		if err != nil {
			return fmt.Errorf("opening history store: %w", err)
		}
		defer store.Close()
	}
	hub := health.NewHub(health.Config{
		Endpoints:  eps,
		Rules:      rules,
		Interval:   interval,
		Log:        evl,
		ProfileDir: profDir,
		Registry:   reg,
		DownAfter:  downAfter,
		Store:      store,
		OnAlert: func(a monitor.AlertRecord) {
			fmt.Fprintf(os.Stderr, "alert %-8s %-22s value=%.3g threshold=%.3g %s\n",
				a.State, a.Rule, a.Value, a.Threshold, a.Help)
		},
	})

	if once {
		hub.Tick()
		if jsonOut {
			return printJSON(os.Stdout, hub)
		}
		printFleet(hub)
		return nil
	}

	if httpAddr != "" {
		lis, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("hub listener: %w", err)
		}
		defer lis.Close()
		mux := reg.Mux()
		mux.Handle("/fleet", hub.StatusHandler())
		mux.Handle("/query", hub.Store().QueryHandler())
		go http.Serve(lis, mux)
		fmt.Printf("fleet hub on http://%s/fleet (telemetry /metrics, history /query)\n", lis.Addr())
	}

	fmt.Printf("scraping %d endpoints every %s, %d rules armed\n",
		len(eps), interval, len(rules.Rules))
	stop := make(chan struct{})
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	go func() { <-ch; close(stop) }()
	hub.Tick() // prime immediately rather than waiting one interval
	hub.Run(stop)

	printFleet(hub)
	alerts := hub.Alerts()
	fmt.Printf("shutting down: %d ticks, %d alert transitions\n", hub.Ticks(), len(alerts))
	if err := hub.Store().Flush(); err != nil {
		return fmt.Errorf("flushing history store: %w", err)
	}
	return nil
}

// printJSON emits the machine-readable hub view — the same document
// StatusHandler serves — for scripting a one-shot health check.
func printJSON(w io.Writer, hub *health.Hub) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(hub.View(20, true))
}

// printFleet renders the endpoint table and top fleet aggregates.
func printFleet(hub *health.Hub) {
	f := hub.Fleet()
	if f == nil {
		return
	}
	tb := tabulate.NewTable("fleet", "ENDPOINT", "COMPONENT", "STATE", "AGE", "SERIES", "ERROR")
	for _, e := range f.Endpoints {
		state, age := "up", fmt.Sprintf("%.1fs", e.AgeSec)
		if !e.Up {
			state = "down"
		}
		if e.AgeSec < 0 {
			age = "never"
		}
		tb.Row(e.Name, e.Component, state, age, fmt.Sprint(e.Series), e.Err)
	}
	fmt.Print(tb.Render())
	// When the scrape set includes a replicated control plane, surface who
	// leads and how settled leadership is next to the endpoint table.
	if roles := f.Select("lobster_replica_role", nil); len(roles) > 0 {
		leader := "none"
		for _, s := range roles {
			if s.Value == 2 { // gauge: 0 follower, 1 candidate, 2 leader
				leader = "node " + s.Label("node")
			}
		}
		term, elections := 0.0, 0.0
		for _, s := range f.Select("lobster_replica_term", nil) {
			if s.Value > term {
				term = s.Value
			}
		}
		for _, s := range f.Select("lobster_replica_elections_total", nil) {
			elections += s.Value
		}
		fmt.Printf("control plane: %d members, leader=%s term=%.0f elections=%.0f\n",
			len(roles), leader, term, elections)
	}
	if firing := hub.Firing(); len(firing) > 0 {
		fmt.Printf("firing: %s\n", strings.Join(firing, ", "))
	}
	agg := f.Aggregate()
	sort.Slice(agg, func(i, j int) bool { return agg[i].Name < agg[j].Name })
	at := tabulate.NewTable("aggregates", "SERIES", "TOTAL", "MAX", "N")
	for _, a := range agg {
		if !strings.HasPrefix(a.Name, "lobster_") {
			continue
		}
		at.Row(a.Name, fmt.Sprintf("%.6g", a.Total), fmt.Sprintf("%.6g", a.Max), fmt.Sprint(a.N))
	}
	fmt.Print(at.Render())
}
