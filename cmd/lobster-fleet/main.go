// Command lobster-fleet is the fleet monitoring hub: it scrapes every
// component's /metrics endpoint, merges the series into cluster-wide
// aggregates, evaluates the anomaly rule set, appends typed "alert"
// events to a JSONL event log, and archives pprof bundles from the
// affected endpoints when a profiling-enabled rule fires.
//
// Usage:
//
//	lobster-fleet -scrape master=http://127.0.0.1:9099 \
//	              -scrape chirpd=http://127.0.0.1:9095 \
//	              -interval 5s -event-log fleet.jsonl -profiles ./profiles \
//	              -http 127.0.0.1:9100
//
//	lobster-fleet -scrape master=http://127.0.0.1:9099 -once   # one tick, print, exit
//
// The hub's own address serves /metrics (hub self-telemetry) and /fleet
// (the merged JSON view `lobster -top -fleet` renders).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"lobster/internal/health"
	"lobster/internal/monitor"
	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
)

// scrapeFlags accumulates repeated -scrape name=url specs.
type scrapeFlags []health.Endpoint

func (s *scrapeFlags) String() string { return fmt.Sprintf("%d endpoints", len(*s)) }

func (s *scrapeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*s = append(*s, health.Endpoint{
		Name:      name,
		Component: componentOf(name),
		Source:    &health.HTTPSource{BaseURL: url},
	})
	return nil
}

// componentOf derives the component label from an instance name:
// "worker-3" → "worker".
func componentOf(name string) string {
	if i := strings.LastIndexAny(name, "-."); i > 0 {
		digits := true
		for _, c := range name[i+1:] {
			if c < '0' || c > '9' {
				digits = false
				break
			}
		}
		if digits && i+1 < len(name) {
			return name[:i]
		}
	}
	return name
}

func main() {
	var eps scrapeFlags
	flag.Var(&eps, "scrape", "endpoint to scrape as name=base-url (repeatable; name like worker-3 yields component worker)")
	var (
		rulesPath = flag.String("rules", "", "JSON alert rule file (default: built-in detector set)")
		interval  = flag.Duration("interval", 5*time.Second, "scrape interval")
		evlog     = flag.String("event-log", "", "append typed alert events to this JSONL file")
		evlogMax  = flag.Int64("event-log-max", 0, "rotate the event log after this many bytes (0 = never)")
		profDir   = flag.String("profiles", "", "archive pprof bundles here when a profiling-enabled rule fires")
		httpAddr  = flag.String("http", "", "serve hub telemetry (/metrics) and the merged fleet view (/fleet) on this address")
		downAfter = flag.Int("down-after", 2, "consecutive scrape failures before endpoint_down fires")
		once      = flag.Bool("once", false, "run one scrape cycle, print the fleet view, and exit")
	)
	flag.Parse()
	if err := run(eps, *rulesPath, *interval, *evlog, *evlogMax, *profDir, *httpAddr, *downAfter, *once); err != nil {
		fmt.Fprintln(os.Stderr, "lobster-fleet:", err)
		os.Exit(1)
	}
}

func run(eps []health.Endpoint, rulesPath string, interval time.Duration,
	evlogPath string, evlogMax int64, profDir, httpAddr string, downAfter int, once bool) error {
	if len(eps) == 0 {
		return fmt.Errorf("no endpoints: pass at least one -scrape name=url")
	}
	rules := health.NewRuleSet(health.DefaultRules())
	if rulesPath != "" {
		f, err := os.Open(rulesPath)
		if err != nil {
			return err
		}
		rules, err = health.LoadRules(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	reg := telemetry.NewRegistry()
	var evl *telemetry.EventLog
	if evlogPath != "" {
		var err error
		evl, err = telemetry.OpenEventLogLimit(evlogPath, evlogMax, reg.Now)
		if err != nil {
			return err
		}
		defer evl.Close()
	}
	hub := health.NewHub(health.Config{
		Endpoints:  eps,
		Rules:      rules,
		Interval:   interval,
		Log:        evl,
		ProfileDir: profDir,
		Registry:   reg,
		DownAfter:  downAfter,
		OnAlert: func(a monitor.AlertRecord) {
			fmt.Fprintf(os.Stderr, "alert %-8s %-22s value=%.3g threshold=%.3g %s\n",
				a.State, a.Rule, a.Value, a.Threshold, a.Help)
		},
	})

	if once {
		hub.Tick()
		printFleet(hub)
		return nil
	}

	if httpAddr != "" {
		lis, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("hub listener: %w", err)
		}
		defer lis.Close()
		mux := reg.Mux()
		mux.Handle("/fleet", hub.StatusHandler())
		go http.Serve(lis, mux)
		fmt.Printf("fleet hub on http://%s/fleet (hub telemetry on /metrics)\n", lis.Addr())
	}

	fmt.Printf("scraping %d endpoints every %s, %d rules armed\n",
		len(eps), interval, len(rules.Rules))
	stop := make(chan struct{})
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	go func() { <-ch; close(stop) }()
	hub.Tick() // prime immediately rather than waiting one interval
	hub.Run(stop)

	printFleet(hub)
	alerts := hub.Alerts()
	fmt.Printf("shutting down: %d ticks, %d alert transitions\n", hub.Ticks(), len(alerts))
	return nil
}

// printFleet renders the endpoint table and top fleet aggregates.
func printFleet(hub *health.Hub) {
	f := hub.Fleet()
	if f == nil {
		return
	}
	tb := tabulate.NewTable("fleet", "ENDPOINT", "COMPONENT", "STATE", "AGE", "SERIES", "ERROR")
	for _, e := range f.Endpoints {
		state, age := "up", fmt.Sprintf("%.1fs", e.AgeSec)
		if !e.Up {
			state = "down"
		}
		if e.AgeSec < 0 {
			age = "never"
		}
		tb.Row(e.Name, e.Component, state, age, fmt.Sprint(e.Series), e.Err)
	}
	fmt.Print(tb.Render())
	if firing := hub.Firing(); len(firing) > 0 {
		fmt.Printf("firing: %s\n", strings.Join(firing, ", "))
	}
	agg := f.Aggregate()
	sort.Slice(agg, func(i, j int) bool { return agg[i].Name < agg[j].Name })
	at := tabulate.NewTable("aggregates", "SERIES", "TOTAL", "MAX", "N")
	for _, a := range agg {
		if !strings.HasPrefix(a.Name, "lobster_") {
			continue
		}
		at.Row(a.Name, fmt.Sprintf("%.6g", a.Total), fmt.Sprintf("%.6g", a.Max), fmt.Sprint(a.N))
	}
	fmt.Print(at.Render())
}
