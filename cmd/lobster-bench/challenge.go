package main

import (
	"fmt"
	"io"
	"time"

	"lobster/internal/sim"
	"lobster/internal/xrootd"
)

// runChallenge drives the throughput plane the way the 200 Gbps data
// challenge drives a facility: first the real plane on loopback — one
// client striping a large file across link-throttled replicas, against
// the single-replica baseline — then the sim plane extrapolating the
// measured per-stream bandwidth to paper-scale link counts under naive
// and bandwidth-aware stream placement.
func runChallenge(scale float64) error {
	size := int64(float64(256<<20) * scale)
	if size < 32<<20 {
		size = 32 << 20
	}
	const (
		replicas = 4
		linkBps  = 512 << 20
		lfn      = "/store/challenge.root"
	)
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i * 31)
	}
	red := xrootd.NewRedirector()
	for i := 0; i < replicas; i++ {
		srv, err := xrootd.NewDataServer(fmt.Sprintf("T2_CH_%d", i), "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.SetThrottle(linkBps)
		red.Register(lfn, srv.Store(lfn, content))
	}
	cl := &xrootd.Client{Redirector: red, Dashboard: xrootd.NewDashboard(),
		Consumer: "challenge", Selector: xrootd.NewSelector()}

	fmt.Printf("== Data challenge: loopback real plane (%d MiB file, %d replicas, %d MiB/s per link) ==\n",
		size>>20, replicas, linkBps>>20)
	single, err := timeFetch(func(w io.Writer) (int64, error) { return cl.FetchTo(lfn, w) }, size)
	if err != nil {
		return err
	}
	cfg := xrootd.StripeConfig{}
	striped, err := timeFetch(func(w io.Writer) (int64, error) { return cl.FetchToStriped(lfn, w, cfg) }, size)
	if err != nil {
		return err
	}
	fmt.Printf("single  1 replica   %8.1f MB/s\n", single)
	fmt.Printf("striped %d replicas  %8.1f MB/s  (%.2fx)\n", replicas, striped, striped/single)

	// Extrapolate with the per-stream bandwidth the real plane just
	// measured (4 streams share the striped aggregate).
	ccfg := sim.DefaultChallengeConfig()
	ccfg.StreamGbps = striped / float64(ccfg.StreamsPerClient) * 8 / 1000
	points, err := sim.SimulateChallenge(ccfg)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Data challenge: sim-plane extrapolation (%.0f Gbit/s links, %.2f Gbit/s measured per stream) ==\n",
		ccfg.LinkGbps, ccfg.StreamGbps)
	fmt.Printf("%6s %8s %8s %12s %14s %12s %6s\n",
		"links", "clients", "streams", "naive Gbps", "selector Gbps", "GB/s", "util")
	for _, p := range points {
		fmt.Printf("%6d %8d %8d %12.1f %14.1f %12.1f %5.0f%%\n",
			p.Links, p.Clients, p.Streams, p.NaiveGbps, p.AggregateGbps, p.AggregateGBps,
			100*p.LinkUtilisation)
	}
	return nil
}

// timeFetch runs one fetch to io.Discard and returns MB/s.
func timeFetch(fetch func(io.Writer) (int64, error), size int64) (float64, error) {
	start := time.Now()
	n, err := fetch(io.Discard)
	if err != nil {
		return 0, err
	}
	if n != size {
		return 0, fmt.Errorf("challenge fetch returned %d bytes, want %d", n, size)
	}
	return float64(n) / 1e6 / time.Since(start).Seconds(), nil
}
