// Command lobster-bench regenerates every table and figure of the paper's
// evaluation section in one run, at a configurable scale (1.0 reproduces
// the paper's 10k/20k-core runs; the default 0.25 finishes in seconds).
//
// Independent figures run concurrently across cores; output is buffered per
// figure and printed in paper order, so stdout is byte-identical to a
// sequential run regardless of scheduling.
//
// Usage:
//
//	lobster-bench            # all figures at scale 0.25
//	lobster-bench -scale 1   # full paper scale
//	lobster-bench -only fig10,fig11
//	lobster-bench -dispatch -scale 1   # 100k workers / 1M tasks through one master
//	lobster-bench -challenge           # striped-fetch throughput + link extrapolation
//	lobster-bench -cpuprofile cpu.pprof -memprofile mem.pprof -trace trace.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"lobster/internal/cluster"
	"lobster/internal/profiling"
	"lobster/internal/sim"
	"lobster/internal/stats"
	"lobster/internal/tabulate"
)

func main() {
	scale := flag.Float64("scale", 0.25, "scale of the big runs (1.0 = paper scale)")
	only := flag.String("only", "", "comma-separated figure list (fig2,...,fig11); empty = all")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "maximum figures generated concurrently")
	dispatch := flag.Bool("dispatch", false, "run the dispatch-plane scale harness (100k workers / 1M tasks at -scale 1) instead of the figures")
	challenge := flag.Bool("challenge", false, "run the data-challenge throughput harness (loopback striped fetch + paper-scale link extrapolation) instead of the figures")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lobster-bench:", err)
		os.Exit(1)
	}
	var runErr error
	switch {
	case *dispatch:
		runErr = runDispatch(*scale)
	case *challenge:
		runErr = runChallenge(*scale)
	default:
		runErr = run(*scale, sel, *jobs)
	}
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "lobster-bench:", runErr)
		os.Exit(1)
	}
}

// figJob renders one figure (or one group sharing a model run) to a string.
type figJob struct {
	name   string
	render func() (string, error)
}

// runJobs executes jobs concurrently with at most workers in flight and
// prints the results in slice order, stopping at the first failed job.
func runJobs(jobs []figJob, workers int) error {
	outs := make([]string, len(jobs))
	errs := make([]error, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				outs[i], errs[i] = jobs[i].render()
			}
		}()
	}
	wg.Wait()
	for i := range jobs {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", jobs[i].name, errs[i])
		}
		fmt.Print(outs[i])
	}
	return nil
}

func run(scale float64, sel func(string) bool, workers int) error {
	var sessions []cluster.Session
	var surv *stats.Empirical
	if sel("fig2") || sel("fig3") {
		var err error
		sessions, err = cluster.GenerateTrace(cluster.DefaultTraceConfig(), stats.NewRand(2))
		if err != nil {
			return err
		}
		surv, err = cluster.SurvivalDistribution(sessions)
		if err != nil {
			return err
		}
	}

	var jobs []figJob
	if sel("fig2") {
		jobs = append(jobs, figJob{"fig2", func() (string, error) {
			curve, err := cluster.EvictionCurve(sessions, 0, 24*3600, 24)
			if err != nil {
				return "", err
			}
			tb := tabulate.NewTable("\n== Figure 2: worker eviction probability ==",
				"availability", "P(evict)", "+-", "N")
			for _, p := range curve {
				tb.Row(tabulate.Duration(p.T), fmt.Sprintf("%.3f", p.P), fmt.Sprintf("%.3f", p.Err), p.N)
			}
			return tb.Render() + "\n", nil
		}})
	}

	if sel("fig3") {
		jobs = append(jobs, figJob{"fig3", func() (string, error) {
			cfg := sim.DefaultTaskSizeConfig()
			if scale < 1 {
				cfg.Tasklets = int(float64(cfg.Tasklets) * scale)
				cfg.Workers = int(float64(cfg.Workers) * scale)
			}
			results, err := sim.Figure3(cfg, surv, 10)
			if err != nil {
				return "", err
			}
			tb := tabulate.NewTable("\n== Figure 3: efficiency by task length ==",
				"scenario", "1h", "2h", "3h", "4h", "5h", "6h", "7h", "8h", "9h", "10h")
			for _, r := range results {
				row := []any{r.Scenario}
				for _, p := range r.Points {
					row = append(row, fmt.Sprintf("%.2f", p.Efficiency))
				}
				tb.Row(row...)
			}
			return tb.Render() + "\n", nil
		}})
	}

	if sel("fig4") {
		jobs = append(jobs, figJob{"fig4", func() (string, error) {
			results, err := sim.Figure4(sim.DefaultAccessConfig())
			if err != nil {
				return "", err
			}
			tb := tabulate.NewTable("\n== Figure 4: data access methods ==",
				"mode", "runtime", "processing", "overhead", "cpu-util", "makespan")
			for _, r := range results {
				tb.Row(r.Mode, tabulate.Duration(r.MeanRuntime), tabulate.Duration(r.MeanProcessing),
					tabulate.Duration(r.MeanOverhead), fmt.Sprintf("%.2f", r.CPUUtilization),
					tabulate.Duration(r.Makespan))
			}
			return tb.Render() + "\n", nil
		}})
	}

	if sel("fig5") {
		jobs = append(jobs, figJob{"fig5", func() (string, error) {
			res, err := sim.Figure5(sim.DefaultProxyConfig(), nil)
			if err != nil {
				return "", err
			}
			tb := tabulate.NewTable("\n== Figure 5: proxy cache scalability ==",
				"tasks/proxy", "cold", "hot")
			for i := range res.Cold {
				tb.Row(res.Cold[i].Tasks, tabulate.Duration(res.Cold[i].MeanOverhead),
					tabulate.Duration(res.Hot[i].MeanOverhead))
			}
			return tb.Render() + "\n" +
				fmt.Sprintf("cold-cache knee at ~%d tasks per proxy\n", sim.Knee(res.Cold, 0.1)), nil
		}})
	}

	if sel("fig7") {
		jobs = append(jobs, figJob{"fig7", func() (string, error) {
			results, err := sim.Figure7(sim.DefaultMergeSimConfig())
			if err != nil {
				return "", err
			}
			tb := tabulate.NewTable("\n== Figure 7: merging modes ==",
				"mode", "last analysis", "last merge", "merged files")
			for _, tl := range results {
				tb.Row(tl.Mode, tabulate.Duration(tl.LastAnalysis),
					tabulate.Duration(tl.LastMerge), tl.MergedFiles)
			}
			return tb.Render() + "\n", nil
		}})
	}

	if sel("fig8") || sel("fig9") || sel("fig10") {
		// One shared data-processing model run feeds figures 8-10.
		jobs = append(jobs, figJob{"fig8-10", func() (string, error) {
			var b strings.Builder
			fmt.Fprintf(&b, "\nrunning data-processing model at scale %.2f (%d cores)...\n",
				scale, sim.DataRunConfig(scale).Workers*8)
			res, err := sim.RunBig(sim.DataRunConfig(scale))
			if err != nil {
				return "", err
			}
			if sel("fig8") {
				tb := tabulate.NewTable("\n== Figure 8: data processing runtime ==",
					"Task Phase", "Time (h)", "Fraction (%)")
				for _, r := range sim.Figure8(res) {
					tb.Row(r.Phase, fmt.Sprintf("%.0f", r.Hours), fmt.Sprintf("%.1f", r.Fraction*100))
				}
				fmt.Fprintln(&b, tb.Render())
			}
			if sel("fig9") {
				top := sim.Figure9(res, 16*3600, 20*3600)
				labels := make([]string, len(top))
				values := make([]float64, len(top))
				for i, cv := range top {
					labels[i] = cv.Consumer
					values[i] = float64(cv.Bytes)
				}
				fmt.Fprintln(&b, "\n== Figure 9: XrootD volume, top consumers (4 h window) ==")
				fmt.Fprintln(&b, tabulate.Bars(labels, values, 40))
			}
			if sel("fig10") {
				d, err := sim.Figure10(res, 3600)
				if err != nil {
					return "", err
				}
				tb := tabulate.NewTable("\n== Figure 10: data processing timeline ==",
					"t", "running", "completed", "failed", "cpu/wall")
				for i := range d.Times {
					tb.Row(tabulate.Duration(d.Times[i]), fmt.Sprintf("%.0f", d.Running[i]),
						d.Completed[i], d.Failed[i], fmt.Sprintf("%.2f", d.Eff[i]))
				}
				fmt.Fprintln(&b, tb.Render())
			}
			return b.String(), nil
		}})
	}

	if sel("fig11") {
		jobs = append(jobs, figJob{"fig11", func() (string, error) {
			var b strings.Builder
			fmt.Fprintf(&b, "\nrunning simulation model at scale %.2f (%d cores)...\n",
				scale, sim.SimRunConfig(scale).Workers*8)
			res, err := sim.RunBig(sim.SimRunConfig(scale))
			if err != nil {
				return "", err
			}
			d, err := sim.Figure11(res, 1800)
			if err != nil {
				return "", err
			}
			tb := tabulate.NewTable("\n== Figure 11: simulation run timeline ==",
				"t", "running", "setup", "stage-out", "failures")
			for i := range d.Times {
				codes := ""
				for _, c := range d.SortedCodes() {
					if n := d.FailureCodes[i][c]; n > 0 {
						codes += fmt.Sprintf("%d:%d ", c, n)
					}
				}
				tb.Row(tabulate.Duration(d.Times[i]), fmt.Sprintf("%.0f", d.Running[i]),
					tabulate.Duration(d.SetupMean[i]), tabulate.Duration(d.StageOut[i]), codes)
			}
			fmt.Fprintln(&b, tb.Render())
			at, peak := d.PeakSetup()
			fmt.Fprintf(&b, "release-setup peak: %s at t=%s (paper: ~400 min at full scale)\n",
				tabulate.Duration(peak), tabulate.Duration(at))
			return b.String(), nil
		}})
	}

	return runJobs(jobs, workers)
}
