// Command lobster-bench regenerates every table and figure of the paper's
// evaluation section in one run, at a configurable scale (1.0 reproduces
// the paper's 10k/20k-core runs; the default 0.25 finishes in seconds).
//
// Usage:
//
//	lobster-bench            # all figures at scale 0.25
//	lobster-bench -scale 1   # full paper scale
//	lobster-bench -only fig10,fig11
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lobster/internal/cluster"
	"lobster/internal/sim"
	"lobster/internal/stats"
	"lobster/internal/tabulate"
)

func main() {
	scale := flag.Float64("scale", 0.25, "scale of the big runs (1.0 = paper scale)")
	only := flag.String("only", "", "comma-separated figure list (fig2,...,fig11); empty = all")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	if err := run(*scale, sel); err != nil {
		fmt.Fprintln(os.Stderr, "lobster-bench:", err)
		os.Exit(1)
	}
}

func run(scale float64, sel func(string) bool) error {
	var sessions []cluster.Session
	var surv *stats.Empirical
	needTrace := sel("fig2") || sel("fig3")
	if needTrace {
		var err error
		sessions, err = cluster.GenerateTrace(cluster.DefaultTraceConfig(), stats.NewRand(2))
		if err != nil {
			return err
		}
		surv, err = cluster.SurvivalDistribution(sessions)
		if err != nil {
			return err
		}
	}

	if sel("fig2") {
		curve, err := cluster.EvictionCurve(sessions, 0, 24*3600, 24)
		if err != nil {
			return err
		}
		tb := tabulate.NewTable("\n== Figure 2: worker eviction probability ==",
			"availability", "P(evict)", "+-", "N")
		for _, p := range curve {
			tb.Row(tabulate.Duration(p.T), fmt.Sprintf("%.3f", p.P), fmt.Sprintf("%.3f", p.Err), p.N)
		}
		fmt.Println(tb.Render())
	}

	if sel("fig3") {
		cfg := sim.DefaultTaskSizeConfig()
		if scale < 1 {
			cfg.Tasklets = int(float64(cfg.Tasklets) * scale)
			cfg.Workers = int(float64(cfg.Workers) * scale)
		}
		results, err := sim.Figure3(cfg, surv, 10)
		if err != nil {
			return err
		}
		tb := tabulate.NewTable("\n== Figure 3: efficiency by task length ==",
			"scenario", "1h", "2h", "3h", "4h", "5h", "6h", "7h", "8h", "9h", "10h")
		for _, r := range results {
			row := []any{r.Scenario}
			for _, p := range r.Points {
				row = append(row, fmt.Sprintf("%.2f", p.Efficiency))
			}
			tb.Row(row...)
		}
		fmt.Println(tb.Render())
	}

	if sel("fig4") {
		results, err := sim.Figure4(sim.DefaultAccessConfig())
		if err != nil {
			return err
		}
		tb := tabulate.NewTable("\n== Figure 4: data access methods ==",
			"mode", "runtime", "processing", "overhead", "cpu-util", "makespan")
		for _, r := range results {
			tb.Row(r.Mode, tabulate.Duration(r.MeanRuntime), tabulate.Duration(r.MeanProcessing),
				tabulate.Duration(r.MeanOverhead), fmt.Sprintf("%.2f", r.CPUUtilization),
				tabulate.Duration(r.Makespan))
		}
		fmt.Println(tb.Render())
	}

	if sel("fig5") {
		res, err := sim.Figure5(sim.DefaultProxyConfig(), nil)
		if err != nil {
			return err
		}
		tb := tabulate.NewTable("\n== Figure 5: proxy cache scalability ==",
			"tasks/proxy", "cold", "hot")
		for i := range res.Cold {
			tb.Row(res.Cold[i].Tasks, tabulate.Duration(res.Cold[i].MeanOverhead),
				tabulate.Duration(res.Hot[i].MeanOverhead))
		}
		fmt.Println(tb.Render())
		fmt.Printf("cold-cache knee at ~%d tasks per proxy\n", sim.Knee(res.Cold, 0.1))
	}

	if sel("fig7") {
		results, err := sim.Figure7(sim.DefaultMergeSimConfig())
		if err != nil {
			return err
		}
		tb := tabulate.NewTable("\n== Figure 7: merging modes ==",
			"mode", "last analysis", "last merge", "merged files")
		for _, tl := range results {
			tb.Row(tl.Mode, tabulate.Duration(tl.LastAnalysis),
				tabulate.Duration(tl.LastMerge), tl.MergedFiles)
		}
		fmt.Println(tb.Render())
	}

	if sel("fig8") || sel("fig9") || sel("fig10") {
		fmt.Printf("\nrunning data-processing model at scale %.2f (%d cores)...\n",
			scale, sim.DataRunConfig(scale).Workers*8)
		res, err := sim.RunBig(sim.DataRunConfig(scale))
		if err != nil {
			return err
		}
		if sel("fig8") {
			tb := tabulate.NewTable("\n== Figure 8: data processing runtime ==",
				"Task Phase", "Time (h)", "Fraction (%)")
			for _, r := range sim.Figure8(res) {
				tb.Row(r.Phase, fmt.Sprintf("%.0f", r.Hours), fmt.Sprintf("%.1f", r.Fraction*100))
			}
			fmt.Println(tb.Render())
		}
		if sel("fig9") {
			top := sim.Figure9(res, 16*3600, 20*3600)
			labels := make([]string, len(top))
			values := make([]float64, len(top))
			for i, cv := range top {
				labels[i] = cv.Consumer
				values[i] = float64(cv.Bytes)
			}
			fmt.Println("\n== Figure 9: XrootD volume, top consumers (4 h window) ==")
			fmt.Println(tabulate.Bars(labels, values, 40))
		}
		if sel("fig10") {
			d, err := sim.Figure10(res, 3600)
			if err != nil {
				return err
			}
			tb := tabulate.NewTable("\n== Figure 10: data processing timeline ==",
				"t", "running", "completed", "failed", "cpu/wall")
			for i := range d.Times {
				tb.Row(tabulate.Duration(d.Times[i]), fmt.Sprintf("%.0f", d.Running[i]),
					d.Completed[i], d.Failed[i], fmt.Sprintf("%.2f", d.Eff[i]))
			}
			fmt.Println(tb.Render())
		}
	}

	if sel("fig11") {
		fmt.Printf("\nrunning simulation model at scale %.2f (%d cores)...\n",
			scale, sim.SimRunConfig(scale).Workers*8)
		res, err := sim.RunBig(sim.SimRunConfig(scale))
		if err != nil {
			return err
		}
		d, err := sim.Figure11(res, 1800)
		if err != nil {
			return err
		}
		tb := tabulate.NewTable("\n== Figure 11: simulation run timeline ==",
			"t", "running", "setup", "stage-out", "failures")
		for i := range d.Times {
			codes := ""
			for _, c := range d.SortedCodes() {
				if n := d.FailureCodes[i][c]; n > 0 {
					codes += fmt.Sprintf("%d:%d ", c, n)
				}
			}
			tb.Row(tabulate.Duration(d.Times[i]), fmt.Sprintf("%.0f", d.Running[i]),
				tabulate.Duration(d.SetupMean[i]), tabulate.Duration(d.StageOut[i]), codes)
		}
		fmt.Println(tb.Render())
		at, peak := d.PeakSetup()
		fmt.Printf("release-setup peak: %s at t=%s (paper: ~400 min at full scale)\n",
			tabulate.Duration(peak), tabulate.Duration(at))
	}
	return nil
}
