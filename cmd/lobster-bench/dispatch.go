package main

import (
	"fmt"

	"lobster/internal/wq"
)

// runDispatch exercises the dispatch plane at paper scale instead of the
// evaluation figures: the sim plane holds the full 100k-worker / 1M-task
// target (the fleet the paper ramps toward in figures 5 and 6) through
// one master's real sharded table, and the loopback plane pushes the
// same wire protocol through real TCP workers, where file descriptors
// bound the fleet. Both planes run single-message first, then batched,
// so one invocation prints the before/after framing comparison.
func runDispatch(scale float64) error {
	simWorkers := atLeast(int(100_000*scale), 1000)
	simTasks := atLeast(int(1_000_000*scale), 10_000)
	fmt.Printf("== Dispatch plane: sim (%d workers × 8 cores, %d tasks) ==\n", simWorkers, simTasks)
	for _, single := range []bool{true, false} {
		rep := wq.RunScaleSim(wq.ScaleConfig{
			Workers: simWorkers, Tasks: simTasks, SingleMessage: single,
		})
		fmt.Printf("%-7s %s\n", framing(single), rep)
	}

	loWorkers := 64
	loTasks := atLeast(int(20_000*scale), 2000)
	fmt.Printf("\n== Dispatch plane: loopback TCP (%d workers × 8 cores, %d tasks) ==\n", loWorkers, loTasks)
	for _, single := range []bool{true, false} {
		rep, err := wq.RunScaleLoopback(loWorkers, 8, loTasks, single)
		if err != nil {
			return err
		}
		fmt.Printf("%-7s %s\n", framing(single), rep)
	}
	return nil
}

func framing(single bool) string {
	if single {
		return "single"
	}
	return "batched"
}

func atLeast(v, floor int) int {
	if v < floor {
		return floor
	}
	return v
}
