// Command lobster-sim runs the component-level simulations of the paper's
// §4: the worker-availability analysis (Figure 2) and the task-size
// efficiency study (Figure 3), plus the adaptive-sizing extension.
//
// Usage:
//
//	lobster-sim fig2
//	lobster-sim fig3 -tasklets 100000 -workers 8000 -max-hours 10
//	lobster-sim adaptive
//	lobster-sim -cpuprofile cpu.pprof fig3   # profiling flags precede the subcommand
package main

import (
	"flag"
	"fmt"
	"os"

	"lobster/internal/cluster"
	"lobster/internal/profiling"
	"lobster/internal/sim"
	"lobster/internal/stats"
	"lobster/internal/tabulate"
)

func main() {
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Usage = usage
	flag.Parse() // stops at the subcommand (first non-flag argument)
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lobster-sim:", err)
		os.Exit(1)
	}
	switch args[0] {
	case "fig2":
		err = fig2(args[1:])
	case "fig3":
		err = fig3(args[1:])
	case "adaptive":
		err = adaptive(args[1:])
	default:
		stop()
		usage()
	}
	if serr := stop(); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lobster-sim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lobster-sim [-cpuprofile f] [-memprofile f] [-trace f] <fig2|fig3|adaptive> [flags]
  fig2      worker eviction probability vs availability time
  fig3      efficiency vs task length under three eviction scenarios
  adaptive  static vs rate-adaptive task sizing under a regime shift`)
	os.Exit(2)
}

func trace(seed uint64, runs int) ([]cluster.Session, error) {
	cfg := cluster.DefaultTraceConfig()
	if runs > 0 {
		cfg.Runs = runs
	}
	return cluster.GenerateTrace(cfg, stats.NewRand(seed))
}

func fig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ExitOnError)
	seed := fs.Uint64("seed", 2, "trace seed")
	runs := fs.Int("runs", 0, "number of Lobster runs in the trace (0 = default)")
	bins := fs.Int("bins", 24, "availability-time bins")
	maxH := fs.Float64("max-hours", 24, "availability axis maximum, hours")
	fs.Parse(args)

	sessions, err := trace(*seed, *runs)
	if err != nil {
		return err
	}
	st := cluster.Summarize(sessions)
	fmt.Printf("trace: %d sessions, %d evictions (rate %.2f), mean evicted life %s\n\n",
		st.Sessions, st.Evictions, st.EvictionRate, tabulate.Duration(st.MeanLife))
	curve, err := cluster.EvictionCurve(sessions, 0, *maxH*3600, *bins)
	if err != nil {
		return err
	}
	tb := tabulate.NewTable("Figure 2: worker eviction probability (binomial errors)",
		"availability", "P(evict)", "+-", "sessions")
	for _, p := range curve {
		tb.Row(tabulate.Duration(p.T), fmt.Sprintf("%.3f", p.P), fmt.Sprintf("%.3f", p.Err), p.N)
	}
	fmt.Println(tb.Render())
	return nil
}

func fig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	tasklets := fs.Int("tasklets", 100000, "tasklets to process (paper: 100000)")
	workers := fs.Int("workers", 8000, "workers (paper: 8000)")
	maxHours := fs.Int("max-hours", 10, "largest task length, hours")
	seed := fs.Uint64("seed", 1, "simulation seed")
	fs.Parse(args)

	cfg := sim.DefaultTaskSizeConfig()
	cfg.Tasklets = *tasklets
	cfg.Workers = *workers
	cfg.Seed = *seed
	sessions, err := trace(2, 0)
	if err != nil {
		return err
	}
	surv, err := cluster.SurvivalDistribution(sessions)
	if err != nil {
		return err
	}
	results, err := sim.Figure3(cfg, surv, *maxHours)
	if err != nil {
		return err
	}
	tb := tabulate.NewTable("Figure 3: efficiency by average task length", "scenario")
	header := []any{"scenario"}
	_ = header
	for _, r := range results {
		row := []any{r.Scenario}
		for _, p := range r.Points {
			row = append(row, fmt.Sprintf("%.2f@%gh", p.Efficiency, p.TaskHours))
		}
		tb.Row(row...)
	}
	fmt.Println(tb.Render())
	for _, r := range results {
		h, eff := sim.PeakEfficiency(r.Points)
		fmt.Printf("  %-9s peak efficiency %.2f at %g h tasks\n", r.Scenario, eff, h)
	}
	return nil
}

func adaptive(args []string) error {
	fs := flag.NewFlagSet("adaptive", flag.ExitOnError)
	staticSize := fs.Int("static-size", 18, "static tasklets per task")
	fs.Parse(args)

	results, err := sim.CompareAdaptive(sim.DefaultPhaseShiftConfig(), *staticSize)
	if err != nil {
		return err
	}
	tb := tabulate.NewTable("Task sizing under a mid-run eviction regime shift (calm -> hostile)",
		"sizer", "efficiency", "evictions", "mean size", "final size")
	for _, r := range results {
		tb.Row(r.Sizer, fmt.Sprintf("%.3f", r.Efficiency), r.Evictions,
			fmt.Sprintf("%.1f", r.MeanSize), r.FinalSize)
	}
	fmt.Println(tb.Render())
	return nil
}
