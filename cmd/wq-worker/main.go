// Command wq-worker joins a standalone Work Queue worker to a master (or
// foreman). It registers the standard Lobster executors (analysis,
// simulation, merge) configured from flags, matching how the paper's worker
// pilots are started in bulk by a batch system.
//
// Usage:
//
//	wq-worker -master 127.0.0.1:9123 -cores 8 \
//	    -proxy http://squid.example:3128 -chirp 127.0.0.1:9094
//
// With -lifetime the worker evicts itself after the given duration, which
// is handy for demonstrating non-dedicated behaviour.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"lobster/internal/core"
	"lobster/internal/hepsim"
	"lobster/internal/parrot"
	"lobster/internal/wq"
)

func main() {
	var (
		master   = flag.String("master", "127.0.0.1:9123", "master or foreman address")
		name     = flag.String("name", "", "worker name (default: wq-worker-<pid>)")
		cores    = flag.Int("cores", 8, "task slots")
		dir      = flag.String("dir", "", "scratch directory (default: temp)")
		proxyURL = flag.String("proxy", "", "squid/CVMFS base URL (enables software delivery)")
		repo     = flag.String("repo", "cms.cern.ch", "CVMFS repository name")
		release  = flag.String("release", "/CMSSW_7_4_0", "software release path")
		chirpSE  = flag.String("chirp", "", "chirp storage element address")
		condTag  = flag.String("conditions", "", "frontier conditions tag")
		lifetime = flag.Duration("lifetime", 0, "self-evict after this duration (0 = never)")
	)
	flag.Parse()
	if err := run(*master, *name, *cores, *dir, *proxyURL, *repo, *release,
		*chirpSE, *condTag, *lifetime); err != nil {
		fmt.Fprintln(os.Stderr, "wq-worker:", err)
		os.Exit(1)
	}
}

func run(master, name string, cores int, dir, proxyURL, repo, release,
	chirpSE, condTag string, lifetime time.Duration) error {
	if name == "" {
		name = fmt.Sprintf("wq-worker-%d", os.Getpid())
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "wq-worker-*")
		if err != nil {
			return err
		}
		dir = d
	}
	cache, err := parrot.NewCache(dir+"/cache", parrot.ModeAlien)
	if err != nil {
		return err
	}
	env := &hepsim.Env{
		ProxyURL:      proxyURL,
		Repo:          repo,
		ReleasePath:   release,
		Cache:         cache,
		ChirpAddr:     chirpSE,
		ConditionsTag: condTag,
	}
	defer env.Close()
	reg := wq.Registry{
		"analysis":   hepsim.Analysis(env),
		"simulation": hepsim.Simulation(env),
	}
	if chirpSE != "" {
		reg["merge"] = core.MergeExecutor(chirpSE)
	}
	w, err := wq.NewWorker(master, name, cores, dir, reg)
	if err != nil {
		return err
	}
	fmt.Printf("wq-worker: %s connected to %s with %d cores\n", name, master, cores)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	if lifetime > 0 {
		select {
		case <-ch:
		case <-time.After(lifetime):
			fmt.Println("wq-worker: lifetime reached, self-evicting")
			w.Evict()
			return nil
		}
	} else {
		<-ch
	}
	fmt.Printf("wq-worker: shutting down after %d tasks (%d failed)\n",
		w.TasksRun(), w.TasksFailed())
	return w.Close()
}
