// Command chirpd serves a local directory over the chirp protocol — the
// storage-element role in a Lobster deployment.
//
// Usage:
//
//	chirpd -addr 127.0.0.1:9094 -root /data/storage -max-concurrent 16
//	chirpd -metrics 127.0.0.1:9095 ...   # serve /metrics and /status too
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"

	"lobster/internal/chirp"
	"lobster/internal/faultinject"
	"lobster/internal/profiling"
	"lobster/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9094", "listen address")
	root := flag.String("root", "./chirp-export", "directory to export")
	maxConc := flag.Int("max-concurrent", 16, "concurrently served connections")
	metrics := flag.String("metrics", "", "serve telemetry (GET /metrics, /status) on this address")
	pprofOn := flag.Bool("pprof", false, "with -metrics: also serve /debug/pprof for fleet profiling capture")
	fplan := flag.String("fault-plan", "", "JSON fault plan: inject deterministic faults into served connections")
	flag.Parse()

	fs, err := chirp.NewLocalFS(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chirpd:", err)
		os.Exit(1)
	}
	srv, err := chirp.NewServer(fs, *addr, *maxConc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chirpd:", err)
		os.Exit(1)
	}
	if *fplan != "" {
		plan, err := faultinject.LoadPlan(*fplan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chirpd:", err)
			os.Exit(1)
		}
		srv.Fault(faultinject.New(plan))
		fmt.Printf("chirpd: fault plan armed: %d rules, seed %d\n", len(plan.Rules), plan.Seed)
	}
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		srv.Instrument(reg)
		lis, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chirpd: metrics listener:", err)
			os.Exit(1)
		}
		mux := reg.Mux()
		if *pprofOn {
			profiling.AttachPprof(mux)
		}
		go http.Serve(lis, mux)
		fmt.Printf("chirpd: telemetry on http://%s/metrics and /status\n", lis.Addr())
	}
	fmt.Printf("chirpd: exporting %s on %s (max %d concurrent)\n", fs.Root(), srv.Addr(), *maxConc)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	st := srv.Stats()
	fmt.Printf("\nchirpd: shutting down — %d connections, %d requests, %s in, %s out\n",
		st.Connections, st.Requests, byteCount(st.BytesIn), byteCount(st.BytesOut))
	srv.Close()
}

func byteCount(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
