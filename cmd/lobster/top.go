package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// top fetches /status from a live lobster (started with -http) and
// prints a dashboard: build/uptime/sampling header, the per-segment
// runtime breakdown derived from the stage histograms (the live view of
// the Figure 8 accounting), and every telemetry series. With watch it
// redraws every interval until interrupted, htop-style.
func top(baseURL string, watch bool, interval time.Duration) error {
	url := strings.TrimRight(baseURL, "/") + "/status"
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		st, err := fetchStatus(client, url)
		if err != nil {
			return err
		}
		out := renderStatus(st)
		if watch {
			// Home the cursor and clear below rather than clearing the
			// whole screen: no flicker between refreshes.
			fmt.Print("\033[H\033[J")
		}
		fmt.Print(out)
		if !watch {
			return nil
		}
		time.Sleep(interval)
	}
}

func fetchStatus(client *http.Client, url string) (*telemetry.Status, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var st telemetry.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &st, nil
}

func renderStatus(st *telemetry.Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lobster status at t=%.1fs  up %s", st.Time, tabulate.Duration(st.UptimeSec))
	if st.Go != "" {
		fmt.Fprintf(&b, "  %s", st.Go)
	}
	if len(st.Info) > 0 {
		keys := make([]string, 0, len(st.Info))
		for k := range st.Info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%s", k, st.Info[k])
		}
	}
	fmt.Fprintf(&b, "  (%d series)\n", len(st.Series))

	if tb := renderSegments(st); tb != "" {
		b.WriteString(tb)
		b.WriteByte('\n')
	}

	tb := tabulate.NewTable("Telemetry", "series", "type", "value")
	for _, p := range st.Series {
		name := p.Name
		if len(p.Labels) > 0 {
			keys := make([]string, 0, len(p.Labels))
			for k := range p.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + p.Labels[k]
			}
			name += "{" + strings.Join(parts, ",") + "}"
		}
		var val string
		if p.Type == "histogram" {
			val = fmt.Sprintf("n=%d mean=%.4g", p.Count, p.Mean)
		} else {
			val = fmt.Sprintf("%g", p.Value)
		}
		tb.Row(name, p.Type, val)
	}
	b.WriteString(tb.Render())
	b.WriteByte('\n')
	return b.String()
}

// renderSegments turns the lobster_task_stage_seconds histograms into
// the live per-segment breakdown — the same accounting lobster-trace
// computes offline from span trees (the two reconcile by construction).
func renderSegments(st *telemetry.Status) string {
	secs := make(map[string]float64)
	counts := make(map[string]int64)
	var total float64
	for _, p := range st.Series {
		if p.Name != "lobster_task_stage_seconds" {
			continue
		}
		stage := p.Labels["stage"]
		secs[stage] += p.Value // histogram Value is the sum
		counts[stage] += p.Count
		total += p.Value
	}
	if total <= 0 {
		return ""
	}
	tb := tabulate.NewTable("Runtime breakdown (live, cf. paper Figure 8)",
		"Task Phase", "Time (s)", "Fraction (%)", "Samples")
	var labels []string
	var values []float64
	for _, seg := range trace.Segments {
		v, ok := secs[seg]
		if !ok {
			continue
		}
		tb.Row(seg, fmt.Sprintf("%.2f", v), fmt.Sprintf("%.1f", 100*v/total),
			fmt.Sprintf("%d", counts[seg]))
		labels = append(labels, seg)
		values = append(values, v)
		delete(secs, seg)
	}
	// Stages outside the canonical segment list still show up.
	rest := make([]string, 0, len(secs))
	for s := range secs {
		rest = append(rest, s)
	}
	sort.Strings(rest)
	for _, s := range rest {
		tb.Row(s, fmt.Sprintf("%.2f", secs[s]), fmt.Sprintf("%.1f", 100*secs[s]/total),
			fmt.Sprintf("%d", counts[s]))
		labels = append(labels, s)
		values = append(values, secs[s])
	}
	return tb.Render() + "\n" + tabulate.Bars(labels, values, 48)
}
