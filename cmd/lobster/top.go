package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
	"lobster/internal/tsdb"
)

// sparkPoints is how many trailing samples the watch-mode sparklines
// show — one screen column per refresh.
const sparkPoints = 24

// topHistory is the short in-process history window behind the watch
// mode's per-series sparklines: every refresh appends the scraped
// values into an embedded tsdb with a few minutes of retention, and the
// trend column tails the last sparkPoints samples back out of it.
type topHistory struct {
	store *tsdb.Store
	seq   float64 // refresh counter used as the sample clock
}

func newTopHistory() *topHistory {
	return &topHistory{store: tsdb.New(tsdb.Config{Retention: 4 * sparkPoints, RollupStep: sparkPoints})}
}

// add records one value for the named series at the current refresh.
func (h *topHistory) add(name string, labels map[string]string, v float64) {
	h.store.Append(name, labels, h.seq, v)
}

// spark renders the series' trailing window as a sparkline.
func (h *topHistory) spark(name string, labels map[string]string) string {
	tail := h.store.Tail(name, labels, sparkPoints)
	if len(tail) < 2 {
		return ""
	}
	vals := make([]float64, len(tail))
	for i, s := range tail {
		vals[i] = s.V
	}
	return tabulate.Spark(vals)
}

// top fetches /status from a live lobster (started with -http) and
// prints a dashboard: build/uptime/sampling header, the per-segment
// runtime breakdown derived from the stage histograms (the live view of
// the Figure 8 accounting), and every telemetry series. With watch it
// redraws every interval until interrupted, htop-style; a failed scrape
// keeps the last good data on screen under an explicit error banner with
// the data's age, rather than silently showing stale numbers or dying.
// With fleet it reads a lobster-fleet hub's /fleet endpoint instead and
// renders the merged multi-endpoint view.
func top(baseURL string, watch, fleet bool, interval time.Duration) error {
	client := &http.Client{Timeout: 5 * time.Second}
	if fleet {
		return topFleet(client, baseURL, watch, interval)
	}
	url := strings.TrimRight(baseURL, "/") + "/status"
	var last *telemetry.Status
	var lastOK time.Time
	var hist *topHistory
	if watch {
		hist = newTopHistory()
	}
	for {
		st, err := fetchStatus(client, url)
		if err == nil {
			last, lastOK = st, time.Now()
			if hist != nil {
				hist.seq++
				for _, p := range st.Series {
					v := p.Value
					if p.Type == "histogram" {
						v = p.Mean
					}
					hist.add(p.Name, p.Labels, v)
				}
			}
		}
		if !watch {
			if err != nil {
				return err
			}
			fmt.Print(renderStatus(last, 0, nil, nil))
			return nil
		}
		// Home the cursor and clear below rather than clearing the
		// whole screen: no flicker between refreshes.
		fmt.Print("\033[H\033[J")
		if last == nil {
			fmt.Printf("lobster top: no successful scrape yet: %v\n", err)
		} else {
			fmt.Print(renderStatus(last, time.Since(lastOK), err, hist))
		}
		time.Sleep(interval)
	}
}

func fetchStatus(client *http.Client, url string) (*telemetry.Status, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var st telemetry.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &st, nil
}

// renderStatus renders one status page. age is how long ago the data was
// scraped (0 = fresh this cycle); scrapeErr, when non-nil, is the error
// that kept this cycle from refreshing it; hist, when non-nil (watch
// mode), adds a per-series sparkline over the recent refreshes.
func renderStatus(st *telemetry.Status, age time.Duration, scrapeErr error, hist *topHistory) string {
	var b strings.Builder
	if scrapeErr != nil {
		fmt.Fprintf(&b, "!! SCRAPE FAILED: %v\n!! showing data %.1fs old\n", scrapeErr, age.Seconds())
	}
	fmt.Fprintf(&b, "lobster status at t=%.1fs  up %s", st.Time, tabulate.Duration(st.UptimeSec))
	if st.Go != "" {
		fmt.Fprintf(&b, "  %s", st.Go)
	}
	if len(st.Info) > 0 {
		keys := make([]string, 0, len(st.Info))
		for k := range st.Info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%s", k, st.Info[k])
		}
	}
	fmt.Fprintf(&b, "  (%d series)\n", len(st.Series))

	if tb := renderSegments(st); tb != "" {
		b.WriteString(tb)
		b.WriteByte('\n')
	}

	headers := []string{"series", "type", "value"}
	if hist != nil {
		headers = append(headers, "trend")
	}
	tb := tabulate.NewTable("Telemetry", headers...)
	for _, p := range st.Series {
		name := p.Name
		if len(p.Labels) > 0 {
			keys := make([]string, 0, len(p.Labels))
			for k := range p.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + p.Labels[k]
			}
			name += "{" + strings.Join(parts, ",") + "}"
		}
		var val string
		if p.Type == "histogram" {
			val = fmt.Sprintf("n=%d mean=%.4g", p.Count, p.Mean)
		} else {
			val = fmt.Sprintf("%g", p.Value)
		}
		if hist != nil {
			tb.Row(name, p.Type, val, hist.spark(p.Name, p.Labels))
		} else {
			tb.Row(name, p.Type, val)
		}
	}
	b.WriteString(tb.Render())
	b.WriteByte('\n')
	return b.String()
}

// fleetView mirrors the JSON document lobster-fleet serves on /fleet.
type fleetView struct {
	Time      float64 `json:"t"`
	Ticks     int64   `json:"ticks"`
	Endpoints []struct {
		Name      string  `json:"name"`
		Component string  `json:"component"`
		Up        bool    `json:"up"`
		Err       string  `json:"err"`
		AgeSec    float64 `json:"age_sec"`
		Series    int     `json:"series"`
		Fails     int     `json:"fails"`
	} `json:"endpoints"`
	Firing []string `json:"firing"`
	Alerts []struct {
		Time     float64 `json:"t"`
		Rule     string  `json:"rule"`
		Severity string  `json:"severity"`
		State    string  `json:"state"`
		Value    float64 `json:"value"`
	} `json:"alerts"`
	Series []struct {
		Name         string
		Total        float64
		Max          float64
		N            int
		PerComponent map[string]float64
	} `json:"series"`
}

// topFleet polls a lobster-fleet hub's /fleet endpoint and renders the
// merged cluster view: per-endpoint scrape health with an age column,
// firing rules, the recent alert tail, and the fleet aggregates broken
// down per component.
func topFleet(client *http.Client, baseURL string, watch bool, interval time.Duration) error {
	url := strings.TrimRight(baseURL, "/") + "/fleet"
	var last *fleetView
	var lastOK time.Time
	var hist *topHistory
	if watch {
		hist = newTopHistory()
	}
	for {
		v, err := fetchFleet(client, url)
		if err == nil {
			last, lastOK = v, time.Now()
			if hist != nil {
				hist.seq++
				for _, s := range v.Series {
					hist.add(s.Name, nil, s.Total)
				}
			}
		}
		if !watch {
			if err != nil {
				return err
			}
			fmt.Print(renderFleet(last, 0, nil, nil))
			return nil
		}
		fmt.Print("\033[H\033[J")
		if last == nil {
			fmt.Printf("lobster top: no successful hub scrape yet: %v\n", err)
		} else {
			fmt.Print(renderFleet(last, time.Since(lastOK), err, hist))
		}
		time.Sleep(interval)
	}
}

func fetchFleet(client *http.Client, url string) (*fleetView, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var v fleetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &v, nil
}

func renderFleet(v *fleetView, age time.Duration, scrapeErr error, hist *topHistory) string {
	var b strings.Builder
	if scrapeErr != nil {
		fmt.Fprintf(&b, "!! HUB SCRAPE FAILED: %v\n!! showing data %.1fs old\n", scrapeErr, age.Seconds())
	}
	fmt.Fprintf(&b, "fleet at t=%.1fs  tick %d  %d endpoints\n", v.Time, v.Ticks, len(v.Endpoints))

	tb := tabulate.NewTable("Endpoints", "endpoint", "component", "state", "age", "series", "error")
	for _, e := range v.Endpoints {
		state := "up"
		if !e.Up {
			state = fmt.Sprintf("DOWN(%d)", e.Fails)
		}
		ageCol := fmt.Sprintf("%.1fs", e.AgeSec)
		if e.AgeSec < 0 {
			ageCol = "never"
		}
		tb.Row(e.Name, e.Component, state, ageCol, fmt.Sprint(e.Series), e.Err)
	}
	b.WriteString(tb.Render())

	if len(v.Firing) > 0 {
		fmt.Fprintf(&b, "\nFIRING: %s\n", strings.Join(v.Firing, ", "))
	}
	if len(v.Alerts) > 0 {
		at := tabulate.NewTable("Recent alerts", "t", "rule", "severity", "state", "value")
		for _, a := range v.Alerts {
			at.Row(fmt.Sprintf("%.1f", a.Time), a.Rule, a.Severity, a.State, fmt.Sprintf("%.4g", a.Value))
		}
		b.WriteByte('\n')
		b.WriteString(at.Render())
	}
	if len(v.Series) > 0 {
		// Column per component, stable order.
		comps := map[string]bool{}
		for _, s := range v.Series {
			for c := range s.PerComponent {
				comps[c] = true
			}
		}
		order := make([]string, 0, len(comps))
		for c := range comps {
			order = append(order, c)
		}
		sort.Strings(order)
		headers := append([]string{"series", "total", "max"}, order...)
		if hist != nil {
			headers = append(headers, "trend")
		}
		cells := make([]any, 0, len(headers))
		st := tabulate.NewTable("Fleet aggregates", headers...)
		for _, s := range v.Series {
			if !strings.HasPrefix(s.Name, "lobster_") {
				continue
			}
			cells = cells[:0]
			cells = append(cells, s.Name, fmt.Sprintf("%.6g", s.Total), fmt.Sprintf("%.6g", s.Max))
			for _, c := range order {
				cells = append(cells, fmt.Sprintf("%.6g", s.PerComponent[c]))
			}
			if hist != nil {
				cells = append(cells, hist.spark(s.Name, nil))
			}
			st.Row(cells...)
		}
		b.WriteByte('\n')
		b.WriteString(st.Render())
	}
	return b.String()
}

// renderSegments turns the lobster_task_stage_seconds histograms into
// the live per-segment breakdown — the same accounting lobster-trace
// computes offline from span trees (the two reconcile by construction).
func renderSegments(st *telemetry.Status) string {
	secs := make(map[string]float64)
	counts := make(map[string]int64)
	var total float64
	for _, p := range st.Series {
		if p.Name != "lobster_task_stage_seconds" {
			continue
		}
		stage := p.Labels["stage"]
		secs[stage] += p.Value // histogram Value is the sum
		counts[stage] += p.Count
		total += p.Value
	}
	if total <= 0 {
		return ""
	}
	tb := tabulate.NewTable("Runtime breakdown (live, cf. paper Figure 8)",
		"Task Phase", "Time (s)", "Fraction (%)", "Samples")
	var labels []string
	var values []float64
	for _, seg := range trace.Segments {
		v, ok := secs[seg]
		if !ok {
			continue
		}
		tb.Row(seg, fmt.Sprintf("%.2f", v), fmt.Sprintf("%.1f", 100*v/total),
			fmt.Sprintf("%d", counts[seg]))
		labels = append(labels, seg)
		values = append(values, v)
		delete(secs, seg)
	}
	// Stages outside the canonical segment list still show up.
	rest := make([]string, 0, len(secs))
	for s := range secs {
		rest = append(rest, s)
	}
	sort.Strings(rest)
	for _, s := range rest {
		tb.Row(s, fmt.Sprintf("%.2f", secs[s]), fmt.Sprintf("%.1f", 100*secs[s]/total),
			fmt.Sprintf("%d", counts[s]))
		labels = append(labels, s)
		values = append(values, secs[s])
	}
	return tb.Render() + "\n" + tabulate.Bars(labels, values, 48)
}
