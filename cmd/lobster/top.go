package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
)

// top fetches /status from a live lobster (started with -http) and prints a
// one-shot view of every telemetry series, htop-style: gauges and counters
// with their current value, histograms with count and mean.
func top(baseURL string) error {
	url := strings.TrimRight(baseURL, "/") + "/status"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var st telemetry.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding %s: %w", url, err)
	}

	fmt.Printf("lobster status at t=%.1fs (%d series)\n", st.Time, len(st.Series))
	tb := tabulate.NewTable("Telemetry", "series", "type", "value")
	for _, p := range st.Series {
		name := p.Name
		if len(p.Labels) > 0 {
			keys := make([]string, 0, len(p.Labels))
			for k := range p.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + p.Labels[k]
			}
			name += "{" + strings.Join(parts, ",") + "}"
		}
		var val string
		if p.Type == "histogram" {
			val = fmt.Sprintf("n=%d mean=%.4g", p.Count, p.Mean)
		} else {
			val = fmt.Sprintf("%g", p.Value)
		}
		tb.Row(name, p.Type, val)
	}
	fmt.Println(tb.Render())
	return nil
}
