package main

import (
	"strings"
	"testing"

	"lobster/internal/telemetry"
)

// TestWatchSparklines feeds the watch-mode history a few refreshes and
// checks the rendered dashboard grows a trend column with a sparkline
// per series — and that one-shot mode (no history) stays column-stable.
func TestWatchSparklines(t *testing.T) {
	st := &telemetry.Status{
		Time: 30,
		Series: []telemetry.SeriesPoint{
			{Name: "lobster_wq_tasks_done_total", Type: "counter", Value: 40},
			{Name: "lobster_wq_tasks_running", Type: "gauge", Value: 3},
		},
	}
	hist := newTopHistory()
	for i := 0; i < 4; i++ {
		hist.seq++
		hist.add("lobster_wq_tasks_done_total", nil, float64(i*10))
		hist.add("lobster_wq_tasks_running", nil, 3)
	}

	out := renderStatus(st, 0, nil, hist)
	if !strings.Contains(out, "trend") {
		t.Errorf("watch render lacks trend column:\n%s", out)
	}
	if !strings.Contains(out, "▁") || !strings.Contains(out, "█") {
		t.Errorf("ramping counter should render a rising sparkline:\n%s", out)
	}
	if !strings.Contains(out, "▅▅▅▅") {
		t.Errorf("flat gauge should render a flat mid-height sparkline:\n%s", out)
	}

	oneShot := renderStatus(st, 0, nil, nil)
	if strings.Contains(oneShot, "trend") {
		t.Errorf("one-shot render must not grow a trend column:\n%s", oneShot)
	}
}

// TestTopHistoryWindow: the sparkline tails at most sparkPoints samples
// and needs at least two before drawing anything.
func TestTopHistoryWindow(t *testing.T) {
	hist := newTopHistory()
	hist.seq++
	hist.add("m", nil, 1)
	if s := hist.spark("m", nil); s != "" {
		t.Errorf("single sample rendered %q, want empty", s)
	}
	for i := 0; i < 3*sparkPoints; i++ {
		hist.seq++
		hist.add("m", nil, float64(i))
	}
	if n := len([]rune(hist.spark("m", nil))); n != sparkPoints {
		t.Errorf("sparkline length = %d runes, want %d", n, sparkPoints)
	}
	if s := hist.spark("absent", nil); s != "" {
		t.Errorf("unknown series rendered %q, want empty", s)
	}
}
