// Command lobster runs a complete Lobster workload end-to-end on the real
// execution plane: it assembles the service stack in-process (CVMFS behind
// squid, XrootD federation, Chirp storage element, Work Queue master and
// workers), plans a workflow from a synthetic dataset, runs it with retries
// and merging, and prints the run report, the runtime breakdown, and any
// monitoring diagnoses.
//
// Usage:
//
//	lobster -kind analysis -files 8 -workers 4 -merge interleaved
//	lobster -kind simulation -events 2000
//	lobster -http 127.0.0.1:9099 ...            # serve /metrics and /status
//	lobster -trace-log spans.jsonl ...          # record spans; analyze with lobster-trace
//	lobster -fault-plan storm.json ...          # replay a deterministic fault storm
//	lobster -top http://127.0.0.1:9099          # one-shot status of a live run
//	lobster -top http://127.0.0.1:9099 -watch   # live bottleneck dashboard
//	lobster -ha-demo                            # replicated-master failover demo
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"lobster/internal/core"
	"lobster/internal/deploy"
	"lobster/internal/faultinject"
	"lobster/internal/monitor"
	"lobster/internal/profiling"
	"lobster/internal/retry"
	"lobster/internal/store"
	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "analysis", "workflow kind: analysis or simulation")
		files    = flag.Int("files", 8, "dataset files (analysis)")
		lumis    = flag.Int("lumis", 4, "lumisections per file")
		events   = flag.Int("events", 40, "events per file (analysis) or total events (simulation)")
		workers  = flag.Int("workers", 2, "worker processes")
		cores    = flag.Int("cores", 4, "cores per worker")
		taskSize = flag.Int("task-size", 2, "tasklets per task")
		access   = flag.String("access", "stream", "data access mode: stream or stage")
		merge    = flag.String("merge", "none", "merge mode: none, sequential, hadoop, interleaved")
		mergeMB  = flag.Float64("merge-target-kb", 2, "merged file target size in KiB")
		dbdir    = flag.String("db", "", "Lobster DB directory (enables crash recovery)")
		seed     = flag.Uint64("seed", 1, "synthetic content seed")
		confPath = flag.String("config", "", "JSON workflow configuration file (overrides the workflow flags)")
		httpAddr = flag.String("http", "", "serve live telemetry (GET /metrics, /status) on this address")
		pprofOn  = flag.Bool("pprof", false, "with -http: also serve /debug/pprof (goroutine, heap, CPU) for fleet profiling capture")
		evlog    = flag.String("event-log", "", "append structured JSONL task events to this file")
		evlogMax = flag.Int64("event-log-max", 0, "rotate the event log after this many bytes (0 = never)")
		trlog    = flag.String("trace-log", "", "enable distributed tracing; append trace spans to this JSONL file (analyze with lobster-trace)")
		trRate   = flag.Float64("trace-rate", 0, "head-sampling bound: max new traces sampled per second (0 = all)")
		fplan    = flag.String("fault-plan", "", "JSON fault plan: inject a deterministic fault storm into the stack")
		fseed    = flag.Uint64("fault-seed", 0, "override the fault plan's seed (0 = use the plan's)")
		haDemoOn = flag.Bool("ha-demo", false, "run the replicated-master failover demo (3 members, leader kill, takeover) and exit")
		topURL   = flag.String("top", "", "print the status of the lobster at this base URL and exit")
		watch    = flag.Bool("watch", false, "with -top: refresh continuously instead of one-shot")
		fleet    = flag.Bool("fleet", false, "with -top: the URL is a lobster-fleet hub; render the merged multi-endpoint view")
		interval = flag.Duration("interval", 2*time.Second, "with -top -watch: refresh interval")
	)
	flag.Parse()
	if *topURL != "" {
		if err := top(*topURL, *watch, *fleet, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "lobster:", err)
			os.Exit(1)
		}
		return
	}
	if *haDemoOn {
		if err := haDemo(*workers, *cores, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lobster:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*kind, *files, *lumis, *events, *workers, *cores, *taskSize,
		*access, *merge, *mergeMB, *dbdir, *seed, *confPath, *httpAddr, *pprofOn,
		*evlog, *evlogMax, *trlog, *trRate, *fplan, *fseed); err != nil {
		fmt.Fprintln(os.Stderr, "lobster:", err)
		os.Exit(1)
	}
}

func run(kind string, files, lumis, events, workers, cores, taskSize int,
	access, merge string, mergeKB float64, dbdir string, seed uint64,
	confPath, httpAddr string, pprofOn bool, evlogPath string, evlogMax int64, trlogPath string, trRate float64,
	faultPlanPath string, faultSeed uint64) error {
	var cfg core.Config
	if confPath != "" {
		var err error
		cfg, err = core.LoadConfig(confPath)
		if err != nil {
			return err
		}
		if cfg.Kind == core.KindAnalysis {
			kind = string(core.KindAnalysis)
		} else {
			kind = string(core.KindSimulation)
		}
		merge = string(cfg.MergeMode)
	}

	reg := telemetry.NewRegistry()
	var evl *telemetry.EventLog
	if evlogPath != "" {
		var err error
		evl, err = telemetry.OpenEventLogLimit(evlogPath, evlogMax, reg.Now)
		if err != nil {
			return err
		}
		defer evl.Close()
	}
	var tracer *trace.Tracer
	if trlogPath != "" {
		trl := evl
		if trlogPath != evlogPath {
			var err error
			trl, err = telemetry.OpenEventLogLimit(trlogPath, evlogMax, reg.Now)
			if err != nil {
				return err
			}
			defer trl.Close()
		}
		tracer = trace.New(trace.Config{Registry: reg, Log: trl, MaxTracesPerSec: trRate})
	}
	if httpAddr != "" {
		lis, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer lis.Close()
		mux := reg.Mux()
		if pprofOn {
			profiling.AttachPprof(mux)
		}
		go http.Serve(lis, mux)
		fmt.Printf("telemetry on http://%s/metrics and /status\n", lis.Addr())
	}

	var inj *faultinject.Injector
	var faultRetry retry.Policy
	if faultPlanPath != "" {
		plan, err := faultinject.LoadPlan(faultPlanPath)
		if err != nil {
			return err
		}
		if faultSeed != 0 {
			plan.Seed = faultSeed
		}
		inj = faultinject.New(plan)
		// A storm without retries just fails; arm the same bounded
		// backoff the chaos suite runs under.
		faultRetry = retry.Policy{MaxAttempts: 4}
		fmt.Printf("fault plan armed: %d rules, seed %d\n", len(plan.Rules), plan.Seed)
	}

	fmt.Println("starting services (cvmfs, squid, frontier, xrootd, chirp, wq)...")
	st, err := deploy.Start(deploy.Options{
		Files: files, LumisPerFile: lumis, EventsPerFile: events,
		Workers: workers, CoresPerWorker: cores,
		UseHDFS:   merge == "hadoop",
		Seed:      seed,
		Telemetry: reg,
		EventLog:  evl,
		Tracer:    tracer,
		Fault:     inj,
		Retry:     faultRetry,
	})
	if err != nil {
		return err
	}
	defer st.Close()

	if dbdir != "" {
		db, err := store.Open(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		st.Services.DB = db
	}

	if confPath == "" {
		cfg = core.Config{
			Name:            "cli",
			Kind:            core.Kind(kind),
			TaskletsPerTask: taskSize,
			AccessMode:      core.AccessMode(access),
			MergeMode:       core.MergeMode(merge),
			EventSize:       st.EventSize(),
		}
		if cfg.MergeMode != core.MergeNone && cfg.MergeMode != "" {
			cfg.MergeTargetBytes = int64(mergeKB * 1024)
		}
		switch cfg.Kind {
		case core.KindAnalysis:
			cfg.Dataset = st.Dataset.Name
		case core.KindSimulation:
			cfg.TotalEvents = events
			cfg.EventsPerTasklet = 10
		}
	} else {
		// The stack hosts a synthetic dataset; point the file's workflow at
		// it (the file names a production dataset that does not exist here).
		if cfg.Kind == core.KindAnalysis {
			cfg.Dataset = st.Dataset.Name
		}
		cfg.EventSize = st.EventSize()
	}

	l, err := core.New(cfg, st.Services)
	if err != nil {
		return err
	}
	l.SetResultTimeout(2 * time.Minute)
	fmt.Printf("running %s workflow %q over %s...\n", kind, cfg.Name, st.Dataset.Name)
	start := time.Now()
	rep, err := l.Run()
	if err != nil {
		return err
	}

	fmt.Printf("\nrun finished in %v (recovered=%v)\n", time.Since(start).Round(time.Millisecond), rep.Recovered)
	tb := tabulate.NewTable("Run report", "metric", "value")
	tb.Row("tasklets", fmt.Sprintf("%d/%d done, %d failed", rep.TaskletsDone, rep.TaskletsTotal, rep.TaskletsFailed))
	tb.Row("task attempts", fmt.Sprintf("%d run, %d failed", rep.TasksRun, rep.TasksFailed))
	tb.Row("merge tasks", fmt.Sprintf("%d run, %d merged files", rep.MergesRun, rep.MergedFiles))
	fmt.Println(tb.Render())

	bd := tabulate.NewTable("Runtime breakdown (cf. paper Figure 8)", "Task Phase", "Time (s)", "Fraction (%)")
	for _, row := range st.Services.Monitor.Breakdown() {
		bd.Row(row.Phase, fmt.Sprintf("%.2f", row.Hours*3600), fmt.Sprintf("%.1f", row.Fraction*100))
	}
	fmt.Println(bd.Render())

	if advice := st.Services.Monitor.Diagnose(monitor.Thresholds{}); len(advice) > 0 {
		fmt.Println("Diagnoses:")
		for _, a := range advice {
			fmt.Printf("  [%s] %s\n", a.Code, a.Message)
		}
	} else {
		fmt.Println("Diagnoses: none — the run looks healthy.")
	}

	outDir := "/store/user/" + cfg.Name
	outs, err := st.ChirpFS.List(outDir)
	if err == nil {
		fmt.Printf("\nOutputs on the storage element (%s): %d files\n", outDir, len(outs))
		for _, o := range outs {
			fmt.Printf("  %-40s %s\n", o.Name, tabulate.Bytes(float64(o.Size)))
		}
	}
	if inj != nil {
		fmt.Printf("\nfault plane: %d faults injected\n", inj.TotalFired())
	}
	if !rep.Succeeded() {
		return fmt.Errorf("%d tasklets failed", rep.TaskletsFailed)
	}
	return nil
}
