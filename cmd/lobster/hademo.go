package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lobster/internal/deploy"
	"lobster/internal/monitor"
	"lobster/internal/telemetry"
	"lobster/internal/wq"
)

// haDemo runs the replicated control plane end-to-end: a 3-member master
// fleet with real workers, a batch of tasks, a leader kill mid-run, and
// takeover by a standby — then replays a survivor's event log to show the
// leadership history is as replayable as the task history.
func haDemo(workers, cores int, seed uint64) error {
	scratch, err := os.MkdirTemp("", "lobster-ha-demo-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	reg := telemetry.NewRegistry()
	cluster, err := deploy.StartHA(deploy.HAOptions{
		Members: 3, Workers: workers, CoresPerWorker: cores,
		ScratchDir: scratch, Seed: seed,
		Registry: wq.Registry{
			"echo": func(ctx *wq.ExecContext) error {
				return os.WriteFile(filepath.Join(ctx.Sandbox, "out.txt"),
					[]byte(ctx.Task.Args["text"]+"\n"), 0o644)
			},
		},
		Telemetry: reg,
		EventDir:  filepath.Join(scratch, "events"),
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ldr, err := cluster.WaitLeader(10 * time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("control plane up: 3 members, leader=node %d term=%d\n", ldr.ID(), ldr.Term())

	submit := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if _, err := cluster.Submit(&wq.Task{
				Func: "echo", Tag: fmt.Sprintf("job-%d", i),
				Args:    map[string]string{"text": fmt.Sprintf("payload-%d", i)},
				Outputs: []string{"out.txt"},
			}, 15*time.Second); err != nil {
				return fmt.Errorf("submit job-%d: %w", i, err)
			}
		}
		return nil
	}
	const pre, post = 8, 4
	if err := submit(0, pre); err != nil {
		return err
	}
	if !ldr.WaitDone(pre, 30*time.Second) {
		return fmt.Errorf("leader finished %d/%d tasks", ldr.DoneCount(), pre)
	}
	fmt.Printf("ran %d tasks on node %d; killing it\n", pre, ldr.ID())

	if _, err := cluster.KillLeader(10 * time.Second); err != nil {
		return err
	}
	next, err := cluster.WaitLeader(10 * time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("takeover: node %d leads term %d with a warm task DB of %d records\n",
		next.ID(), next.Term(), next.Monitor().Len())

	if err := submit(pre, pre+post); err != nil {
		return err
	}
	if !next.WaitDone(pre+post, 30*time.Second) {
		return fmt.Errorf("post-failover leader finished %d/%d tasks", next.DoneCount(), pre+post)
	}
	failed := 0
	for _, r := range next.Results() {
		if r.Failed() {
			failed++
		}
	}
	fmt.Printf("done: %d/%d tasks exactly-once across the failover, %d failed\n",
		next.DoneCount(), pre+post, failed)

	// The survivor's event log IS the replicated history: replay it cold.
	cluster.Close()
	m := monitor.New()
	n, err := m.ReplayLogPath(filepath.Join(scratch, "events",
		fmt.Sprintf("member-%d.jsonl", next.ID())))
	if err != nil {
		return fmt.Errorf("replaying survivor log: %w", err)
	}
	fmt.Printf("replayed survivor's log: %d task records, %d leadership transitions\n",
		n, len(m.Elections()))
	for _, e := range m.Elections() {
		if e.Role == "leader" {
			fmt.Printf("  t=%7.3fs node %d won term %d\n", e.Time, e.Node, e.Term)
		}
	}
	if n != pre+post {
		return fmt.Errorf("replay recovered %d records, want %d", n, pre+post)
	}
	return nil
}
