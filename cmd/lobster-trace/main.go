// Command lobster-trace is the offline analyzer for the distributed
// tracing layer: it reads span records from one or more JSONL event
// logs (written by lobster -trace-log / -event-log, including rotated
// segments), reassembles the span trees, and prints
//
//   - the per-segment runtime breakdown (cf. paper Figure 8), both as
//     total parallel-inclusive time and as critical-path time — where
//     end-to-end task latency actually goes;
//   - a "top offenders" table attributing segment time to span
//     attribute values (a hot chirp server, a cold squid cache, one
//     xrootd replica);
//   - optionally the longest span trees and their critical paths.
//
// Usage:
//
//	lobster-trace run.jsonl
//	lobster-trace -top 20 -trees 3 -critical 1 run.jsonl more.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"lobster/internal/tabulate"
	"lobster/internal/trace"
)

func main() {
	var (
		topN     = flag.Int("top", 12, "offender rows to print (0 disables the table)")
		nTrees   = flag.Int("trees", 0, "print the N longest span trees")
		nCrit    = flag.Int("critical", 0, "print the critical path of the N longest traces")
		minDur   = flag.Float64("min", 0, "ignore traces shorter than this many seconds")
		maxDepth = flag.Int("depth", 0, "limit printed tree depth (0 = unlimited)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lobster-trace [flags] <event-log.jsonl> [more.jsonl...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Args(), *topN, *nTrees, *nCrit, *minDur, *maxDepth); err != nil {
		fmt.Fprintln(os.Stderr, "lobster-trace:", err)
		os.Exit(1)
	}
}

func run(paths []string, topN, nTrees, nCrit int, minDur float64, maxDepth int) error {
	var recs []trace.Record
	for _, p := range paths {
		rs, err := trace.ReadRecordsPath(p)
		if err != nil {
			return fmt.Errorf("reading %s: %w", p, err)
		}
		recs = append(recs, rs...)
	}
	trees := trace.BuildTrees(recs)
	if minDur > 0 {
		kept := trees[:0]
		for _, t := range trees {
			if t.Dur() >= minDur {
				kept = append(kept, t)
			}
		}
		trees = kept
	}
	if len(trees) == 0 {
		return fmt.Errorf("no trace spans found in %s", strings.Join(paths, ", "))
	}

	b := trace.Analyze(trees)
	crit := trace.CriticalBreakdown(trees)
	var critTotal float64
	for _, v := range crit {
		critTotal += v
	}
	fmt.Printf("%d traces, %d spans (%d orphaned), %.2f s total, %.2f s on critical paths\n",
		b.Tasks, b.Spans, b.Orphans, b.Total, critTotal)

	// The Fig 8 breakdown: total time answers "what did the fleet spend
	// cycles on"; critical time answers "what would shortening actually
	// speed tasks up".
	tb := tabulate.NewTable("Runtime breakdown (cf. paper Figure 8)",
		"Task Phase", "Total (s)", "Total (%)", "Critical (s)", "Critical (%)")
	var labels []string
	var values []float64
	for _, seg := range trace.Segments {
		tot := b.Seconds[seg]
		cp := crit[seg]
		if tot == 0 && cp == 0 {
			continue
		}
		tb.Row(seg,
			fmt.Sprintf("%.2f", tot), pct(tot, b.Total),
			fmt.Sprintf("%.2f", cp), pct(cp, critTotal))
		labels = append(labels, seg)
		values = append(values, tot)
	}
	fmt.Println(tb.Render())
	fmt.Println(tabulate.Bars(labels, values, 48))

	if topN > 0 {
		offs := trace.Offenders(trees, b, topN)
		ob := tabulate.NewTable("Top offenders (segment time by span attribute)",
			"Segment", "Attribute", "Time (s)", "Spans", "Seg share (%)")
		for _, o := range offs {
			ob.Row(o.Segment, o.Attr, fmt.Sprintf("%.2f", o.Seconds),
				fmt.Sprintf("%d", o.Count), fmt.Sprintf("%.1f", o.Share*100))
		}
		fmt.Println(ob.Render())
	}

	if nTrees > 0 || nCrit > 0 {
		longest := append([]*trace.Tree(nil), trees...)
		sort.Slice(longest, func(i, j int) bool {
			if longest[i].Dur() != longest[j].Dur() {
				return longest[i].Dur() > longest[j].Dur()
			}
			return longest[i].TraceID < longest[j].TraceID
		})
		for i := 0; i < nTrees && i < len(longest); i++ {
			t := longest[i]
			fmt.Printf("\ntrace %s: %d spans, %.3f s\n", t.TraceID, t.Spans, t.Dur())
			printNode(t.Root, 0, maxDepth)
		}
		for i := 0; i < nCrit && i < len(longest); i++ {
			t := longest[i]
			fmt.Printf("\ncritical path of trace %s (%.3f s):\n", t.TraceID, t.Dur())
			for _, step := range trace.CriticalPath(t.Root) {
				n := step.Node
				fmt.Printf("  %8.3f s  %s/%s [%s]%s\n",
					step.Seconds, n.Comp, n.Name, n.Segment, attrSuffix(n))
			}
		}
	}
	return nil
}

func pct(v, total float64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*v/total)
}

func printNode(n *trace.Node, depth, maxDepth int) {
	if maxDepth > 0 && depth >= maxDepth {
		return
	}
	fmt.Printf("  %s%s/%s %.3fs [%s]%s\n",
		strings.Repeat("  ", depth), n.Comp, n.Name, n.Dur(), n.Segment, attrSuffix(n))
	for _, c := range n.Children {
		printNode(c, depth+1, maxDepth)
	}
}

func attrSuffix(n *trace.Node) string {
	if len(n.Attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + n.Attrs[k]
	}
	return " {" + strings.Join(parts, " ") + "}"
}
