package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Dispatch-plane guard: reruns the sharded-master scale benchmarks and
// fails if the PR's core claims stop holding against BENCH_scale.json:
//
//  1. Speedup: the batched loopback path must sustain at least
//     min_speedup× the pinned pre-PR single-message throughput. The
//     "before" numbers are pinned, not re-runnable — the single-lock,
//     one-message-per-task master is gone.
//  2. Allocation freedom: the match loop (pop → stamp → complete over
//     the sharded table) must stay within max_allocs_per_op per
//     64-task batch at steady state. Allocation counts are
//     deterministic, so this bound is absolute, no tolerance.
//  3. Footprint: the 10k-worker/100k-task sim must keep resident bytes
//     per task record under max_task_bytes.
//
// Throughput additionally gets a loose regression guard against the
// pinned "after" samples (-time-tolerance): wall clock on shared hosts
// jitters far more than allocation counts do.

const (
	scaleMatchBench   = "BenchmarkMatchLoop"
	scaleBatchedBench = "BenchmarkLoopbackDispatchBatched"
	scaleSimBench     = "BenchmarkScaleSim"
)

// scaleBaseline is the BENCH_scale.json schema.
type scaleBaseline struct {
	Note       string  `json:"note"`
	Recorded   string  `json:"recorded"`
	Pkg        string  `json:"pkg"`
	MinSpeedup float64 `json:"min_speedup"`

	Before struct {
		Note                string  `json:"note"`
		LoopbackTasksPerSec float64 `json:"loopback_tasks_per_sec"`
		TaskBytes           float64 `json:"task_bytes"`
	} `json:"before"`

	MatchLoop struct {
		AfterTasksPerSec []float64 `json:"after_tasks_per_sec"`
		MaxAllocsPerOp   float64   `json:"max_allocs_per_op"`
	} `json:"match_loop"`

	LoopbackBatched struct {
		AfterTasksPerSec []float64 `json:"after_tasks_per_sec"`
	} `json:"loopback_batched"`

	ScaleSim struct {
		AfterTasksPerSec []float64 `json:"after_tasks_per_sec"`
		AfterTaskBytes   float64   `json:"after_task_bytes"`
		MaxTaskBytes     float64   `json:"max_task_bytes"`
	} `json:"scale_sim"`
}

// scaleResult collects one benchmark's fresh samples across -count runs.
type scaleResult struct {
	tasksPerSec []float64
	taskBytes   []float64
	allocsOp    []float64
}

func runScale(baselinePath string, timeTol float64, count int, benchtime string, update bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base scaleBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if base.Pkg == "" {
		base.Pkg = "./internal/wq/"
	}

	pattern := "^(" + scaleMatchBench + "|" + scaleBatchedBench + "|" + scaleSimBench + ")$"
	fmt.Printf("running %s -bench '%s', %d×%s...\n", base.Pkg, pattern, count, benchtime)
	cmd := exec.Command("go", "test", base.Pkg, "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count))
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test %s: %w\n%s", base.Pkg, err, out)
	}
	fresh := parseScale(string(out))
	for _, name := range []string{scaleMatchBench, scaleBatchedBench, scaleSimBench} {
		if r := fresh[name]; r == nil || len(r.tasksPerSec) == 0 {
			return fmt.Errorf("no %s tasks/s samples in benchmark output:\n%s", name, out)
		}
	}

	if update {
		base.MatchLoop.AfterTasksPerSec = fresh[scaleMatchBench].tasksPerSec
		base.LoopbackBatched.AfterTasksPerSec = fresh[scaleBatchedBench].tasksPerSec
		base.ScaleSim.AfterTasksPerSec = fresh[scaleSimBench].tasksPerSec
		base.ScaleSim.AfterTaskBytes = minF(fresh[scaleSimBench].taskBytes)
		enc, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s with fresh after samples\n", baselinePath)
		return nil
	}

	var failures []string
	// Throughput is noisy downward, never upward: compare best-of-N.
	report := func(name string, freshBest, afterBest float64) {
		fmt.Printf("%-35s %12.0f tasks/s vs pinned %12.0f (%+.1f%%)\n",
			name, freshBest, afterBest, 100*(freshBest/afterBest-1))
		if freshBest < afterBest*(1-timeTol) {
			failures = append(failures, fmt.Sprintf(
				"%s: best %.0f tasks/s vs pinned %.0f falls outside %.0f%% bound",
				name, freshBest, afterBest, 100*timeTol))
		}
	}
	report(scaleMatchBench, maxF(fresh[scaleMatchBench].tasksPerSec), maxF(base.MatchLoop.AfterTasksPerSec))
	batchedBest := maxF(fresh[scaleBatchedBench].tasksPerSec)
	report(scaleBatchedBench, batchedBest, maxF(base.LoopbackBatched.AfterTasksPerSec))
	report(scaleSimBench, maxF(fresh[scaleSimBench].tasksPerSec), maxF(base.ScaleSim.AfterTasksPerSec))

	// 1. The headline speedup claim against the pinned pre-PR path.
	if before := base.Before.LoopbackTasksPerSec; before > 0 && base.MinSpeedup > 0 {
		speedup := batchedBest / before
		fmt.Printf("speedup over pre-PR single-message loopback: %.1fx (floor %.1fx)\n",
			speedup, base.MinSpeedup)
		if speedup < base.MinSpeedup {
			failures = append(failures, fmt.Sprintf(
				"batched dispatch speedup %.1fx below the %.1fx floor (fresh best %.0f tasks/s vs pinned before %.0f)",
				speedup, base.MinSpeedup, batchedBest, before))
		}
	}

	// 2. Steady-state allocations in the match loop: deterministic, so the
	// bound is absolute. Best-of-N skips runs polluted by warmup growth.
	allocs := minF(fresh[scaleMatchBench].allocsOp)
	fmt.Printf("match loop steady state: %.0f allocs per %s op (bound %.0f)\n",
		allocs, scaleMatchBench, base.MatchLoop.MaxAllocsPerOp)
	if allocs > base.MatchLoop.MaxAllocsPerOp {
		failures = append(failures, fmt.Sprintf(
			"match loop allocates %.0f/op, bound %.0f — an allocation crept into the dispatch hot path",
			allocs, base.MatchLoop.MaxAllocsPerOp))
	}

	// 3. Resident footprint per task record in the 10k-worker sim.
	if bytes := minF(fresh[scaleSimBench].taskBytes); base.ScaleSim.MaxTaskBytes > 0 {
		fmt.Printf("scale sim footprint: %.0f B/task-record (bound %.0f)\n",
			bytes, base.ScaleSim.MaxTaskBytes)
		if bytes > base.ScaleSim.MaxTaskBytes {
			failures = append(failures, fmt.Sprintf(
				"task record footprint %.0f B exceeds %.0f B bound — 100k workers / 1M tasks no longer fit the master",
				bytes, base.ScaleSim.MaxTaskBytes))
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("dispatch-plane regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("ok: dispatch plane within budget")
	return nil
}

// Benchmark output carries the custom metrics after ns/op, e.g.
//
//	BenchmarkScaleSim  14  80341132 ns/op  242 task-B  1244695 tasks/s  ...
var (
	scaleNameRe   = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s`)
	scaleNum      = `(\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)`
	scaleTasksRe  = regexp.MustCompile(scaleNum + ` tasks/s`)
	scaleBytesRe  = regexp.MustCompile(scaleNum + ` task-B`)
	scaleAllocsRe = regexp.MustCompile(scaleNum + ` allocs/op`)
)

func parseScale(out string) map[string]*scaleResult {
	res := make(map[string]*scaleResult)
	for _, line := range strings.Split(out, "\n") {
		m := scaleNameRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := res[m[1]]
		if r == nil {
			r = &scaleResult{}
			res[m[1]] = r
		}
		if t := scaleTasksRe.FindStringSubmatch(line); t != nil {
			if v, err := strconv.ParseFloat(t[1], 64); err == nil {
				r.tasksPerSec = append(r.tasksPerSec, v)
			}
		}
		if t := scaleBytesRe.FindStringSubmatch(line); t != nil {
			if v, err := strconv.ParseFloat(t[1], 64); err == nil {
				r.taskBytes = append(r.taskBytes, v)
			}
		}
		if t := scaleAllocsRe.FindStringSubmatch(line); t != nil {
			if v, err := strconv.ParseFloat(t[1], 64); err == nil {
				r.allocsOp = append(r.allocsOp, v)
			}
		}
	}
	return res
}

func maxF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}
