package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"

	"lobster/internal/sim"
)

// Data-challenge guard: holds the throughput plane to the acceptance
// bars it landed with, against BENCH_challenge.json:
//
//  1. Striping must pay: the 256 MiB striped 4-replica fetch must beat
//     the single-replica FetchTo by min_striped_speedup on the same
//     link-throttled loopback cluster (ratio of this run's own minima,
//     so shared-host noise cancels; both sides also hold their pinned
//     ns/op within -time-tolerance).
//  2. Peering must pay: a squid peer hit must cost under
//     max_peer_hit_fraction of an origin miss (same-run ratio again).
//  3. Allocation budgets are absolute: whole-file transfers allocate a
//     bounded count regardless of size (the pools carry the payload),
//     and the proxy hot paths stay flat.
//  4. The sim-plane extrapolation is re-run in process and compared
//     exactly — the paper-scale table is seeded and deterministic, so
//     any drift is a model change, not noise.

const (
	chalSingleBench  = "BenchmarkChallengeFetchSingle"
	chalStripedBench = "BenchmarkChallengeFetchStriped4"
	chalOriginBench  = "BenchmarkOriginMiss"
	chalPeerBench    = "BenchmarkPeerHit"
)

// chalBenchSpec pins one benchmark in the BENCH_challenge.json schema.
type chalBenchSpec struct {
	Note           string    `json:"note,omitempty"`
	NsOp           []float64 `json:"ns_op"`
	MaxAllocsPerOp float64   `json:"max_allocs_per_op"`
}

// chalBaseline is the BENCH_challenge.json schema.
type chalBaseline struct {
	Note     string `json:"note"`
	Recorded string `json:"recorded"`

	XrootdPkg         string        `json:"xrootd_pkg"`
	FetchSingle       chalBenchSpec `json:"fetch_single"`
	FetchStriped      chalBenchSpec `json:"fetch_striped"`
	MinStripedSpeedup float64       `json:"min_striped_speedup"`

	SquidPkg           string        `json:"squid_pkg"`
	OriginMiss         chalBenchSpec `json:"origin_miss"`
	PeerHit            chalBenchSpec `json:"peer_hit"`
	MaxPeerHitFraction float64       `json:"max_peer_hit_fraction"`

	Extrapolation struct {
		Note         string  `json:"note"`
		Links        int     `json:"links"`
		NaiveGbps    float64 `json:"naive_gbps"`
		SelectorGbps float64 `json:"selector_gbps"`
		SelectorGBps float64 `json:"selector_gbyte_per_sec"`
	} `json:"extrapolation"`
}

func runChallengeGuard(baselinePath string, timeTol float64, count int, update bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base chalBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if base.XrootdPkg == "" {
		base.XrootdPkg = "./internal/xrootd/"
	}
	if base.SquidPkg == "" {
		base.SquidPkg = "./internal/squid/"
	}

	// One op of the fetch benchmarks is a whole 256 MiB transfer over a
	// throttled link (~0.2–0.7 s); 1x per repetition keeps the guard
	// under a minute. The squid round trips are microseconds — 20x.
	single, err := chalBench(base.XrootdPkg, chalSingleBench, count, "1x")
	if err != nil {
		return err
	}
	striped, err := chalBench(base.XrootdPkg, chalStripedBench, count, "1x")
	if err != nil {
		return err
	}
	origin, err := chalBench(base.SquidPkg, chalOriginBench, count, "20x")
	if err != nil {
		return err
	}
	peer, err := chalBench(base.SquidPkg, chalPeerBench, count, "20x")
	if err != nil {
		return err
	}

	if update {
		base.FetchSingle.NsOp = single.nsOp
		base.FetchStriped.NsOp = striped.nsOp
		base.OriginMiss.NsOp = origin.nsOp
		base.PeerHit.NsOp = peer.nsOp
		enc, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s with fresh samples\n", baselinePath)
		return nil
	}

	var failures []string
	relative := func(name string, fresh, pinned []float64) {
		fb, pb := min(fresh), min(pinned)
		fmt.Printf("%-32s best %12.0f ns/op vs pinned %12.0f (%+.1f%%), tolerance %.0f%%\n",
			name, fb, pb, 100*(fb/pb-1), 100*timeTol)
		if fb > pb*(1+timeTol) {
			failures = append(failures, fmt.Sprintf(
				"%s: best %.0f ns/op vs pinned %.0f exceeds %.0f%% bound",
				name, fb, pb, 100*timeTol))
		}
	}
	relative(chalSingleBench, single.nsOp, base.FetchSingle.NsOp)
	relative(chalStripedBench, striped.nsOp, base.FetchStriped.NsOp)
	relative(chalOriginBench, origin.nsOp, base.OriginMiss.NsOp)
	relative(chalPeerBench, peer.nsOp, base.PeerHit.NsOp)

	// The headline ratios compare this run's own minima: both sides saw
	// the same host, so the bars hold even when the machine is slow.
	speedup := min(single.nsOp) / min(striped.nsOp)
	fmt.Printf("striped speedup: %.2fx (floor %.1fx)\n", speedup, base.MinStripedSpeedup)
	if speedup < base.MinStripedSpeedup {
		failures = append(failures, fmt.Sprintf(
			"striped 4-replica fetch is %.2fx the single-replica path, floor %.1fx",
			speedup, base.MinStripedSpeedup))
	}
	frac := min(peer.nsOp) / min(origin.nsOp)
	fmt.Printf("peer-hit latency: %.1f%% of an origin miss (ceiling %.0f%%)\n",
		100*frac, 100*base.MaxPeerHitFraction)
	if frac > base.MaxPeerHitFraction {
		failures = append(failures, fmt.Sprintf(
			"squid peer hit costs %.1f%% of an origin miss, ceiling %.0f%%",
			100*frac, 100*base.MaxPeerHitFraction))
	}

	absolute := func(name string, fresh []float64, bound float64) {
		fb := min(fresh)
		fmt.Printf("%-32s %6.0f allocs/op (bound %.0f)\n", name, fb, bound)
		if fb > bound {
			failures = append(failures, fmt.Sprintf(
				"%s allocates %.0f/op, bound %.0f", name, fb, bound))
		}
	}
	absolute(chalSingleBench, single.allocsOp, base.FetchSingle.MaxAllocsPerOp)
	absolute(chalStripedBench, striped.allocsOp, base.FetchStriped.MaxAllocsPerOp)
	absolute(chalOriginBench, origin.allocsOp, base.OriginMiss.MaxAllocsPerOp)
	absolute(chalPeerBench, peer.allocsOp, base.PeerHit.MaxAllocsPerOp)

	// Extrapolation: seeded and in-process, compared exactly.
	points, err := sim.SimulateChallenge(sim.DefaultChallengeConfig())
	if err != nil {
		return err
	}
	last := points[len(points)-1]
	fmt.Printf("extrapolation: %d links → naive %.1f Gbps, selector %.1f Gbps (%.2f GB/s)\n",
		last.Links, last.NaiveGbps, last.AggregateGbps, last.AggregateGBps)
	if last.Links != base.Extrapolation.Links ||
		last.NaiveGbps != base.Extrapolation.NaiveGbps ||
		last.AggregateGbps != base.Extrapolation.SelectorGbps ||
		last.AggregateGBps != base.Extrapolation.SelectorGBps {
		failures = append(failures, fmt.Sprintf(
			"paper-scale extrapolation drifted from the pinned table: %d links naive %.17g selector %.17g GB/s %.17g",
			last.Links, last.NaiveGbps, last.AggregateGbps, last.AggregateGBps))
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d throughput-plane budget(s) exceeded", len(failures))
	}
	fmt.Println("ok: throughput plane within budget")
	return nil
}

// chalResult holds one benchmark's parsed samples.
type chalResult struct {
	nsOp     []float64
	allocsOp []float64
}

var chalAllocsRe = regexp.MustCompile(`(\d+(?:\.\d+)?) allocs/op`)

func chalBench(pkg, name string, count int, benchtime string) (*chalResult, error) {
	fmt.Printf("running %s -bench %s, %d×%s...\n", pkg, name, count, benchtime)
	cmd := exec.Command("go", "test", pkg, "-run", "^$",
		"-bench", "^"+name+"$", "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count))
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test %s: %w\n%s", pkg, err, out)
	}
	nameRe := regexp.MustCompile(`(?m)^` + name + `\S*\s+\d+\s+(\d+(?:\.\d+)?) ns/op.*$`)
	r := &chalResult{}
	for _, m := range nameRe.FindAllStringSubmatch(string(out), -1) {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			r.nsOp = append(r.nsOp, v)
		}
		if a := chalAllocsRe.FindStringSubmatch(m[0]); a != nil {
			if v, err := strconv.ParseFloat(a[1], 64); err == nil {
				r.allocsOp = append(r.allocsOp, v)
			}
		}
	}
	if len(r.nsOp) == 0 {
		return nil, fmt.Errorf("no %s ns/op samples in benchmark output:\n%s", name, out)
	}
	return r, nil
}
