// Command bench-guard reruns the tracing-disabled Figure 11 simulation
// benchmark and fails if it regressed more than the tolerance against
// the pinned baseline in BENCH_kernel.json. The guarded path is the one
// every production run pays: instrumentation compiled in, telemetry and
// tracing disabled, so the nil no-op fast paths must stay free.
//
// Usage (from the module root, or via make bench-guard):
//
//	bench-guard                 # compare against BENCH_kernel.json
//	bench-guard -update         # rewrite the baseline with fresh numbers
//	bench-guard -tolerance 0.10 # loosen the regression bound
//
// Both sides compare by their best (minimum) ns/op: benchmarks on a
// shared machine are noisy upward, almost never downward, so min-vs-min
// is the stable comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

const (
	benchName   = "BenchmarkFig11SimulationTimeline"
	baselineKey = "instrumented_build_disabled_ns_op"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline file holding the pinned samples (default BENCH_kernel.json; BENCH_dataplane.json with -dataplane; BENCH_scale.json with -scale; BENCH_health.json with -health; BENCH_tsdb.json with -tsdb; BENCH_challenge.json with -challenge)")
		tolerance = flag.Float64("tolerance", 0.05, "allowed fractional regression of best ns/op (of B/op with -dataplane)")
		timeTol   = flag.Float64("time-tolerance", 0.50, "with -dataplane: allowed fractional regression of best ns/op; wall clock on shared hosts jitters far more than allocations, tighten on quiet hardware")
		count     = flag.Int("count", 3, "benchmark repetitions (best of N)")
		benchtime = flag.String("benchtime", "5x", "go test -benchtime per repetition")
		update    = flag.Bool("update", false, "rewrite the baseline samples with this run's numbers")
		dataplane = flag.Bool("dataplane", false, "guard the streaming data-plane benchmarks instead of the simulation kernel")
		scale     = flag.Bool("scale", false, "guard the sharded dispatch-plane scale benchmarks instead of the simulation kernel")
		healthOn  = flag.Bool("health", false, "guard the fleet health plane: 100-endpoint scrape/merge cost, disabled-path allocations, and kernel overhead vs BENCH_kernel.json")
		tsdbOn    = flag.Bool("tsdb", false, "guard the embedded time-series store: zero-alloc steady append, hub-workload bytes/sample, 1M-sample query latency")
		chalOn    = flag.Bool("challenge", false, "guard the data-challenge throughput plane: striped-vs-single fetch speedup, squid peer-hit latency, paper-scale extrapolation")
	)
	flag.Parse()
	var err error
	switch {
	case *chalOn:
		path := *baseline
		if path == "" {
			path = "BENCH_challenge.json"
		}
		err = runChallengeGuard(path, *timeTol, *count, *update)
	case *tsdbOn:
		path := *baseline
		if path == "" {
			path = "BENCH_tsdb.json"
		}
		err = runTsdb(path, *timeTol, *count, *benchtime, *update)
	case *healthOn:
		path := *baseline
		if path == "" {
			path = "BENCH_health.json"
		}
		err = runHealth(path, *timeTol, *count, *benchtime, *update)
	case *scale:
		path := *baseline
		if path == "" {
			path = "BENCH_scale.json"
		}
		bt := *benchtime
		if bt == "5x" {
			// Scale benchmarks need time-based runs: a handful of iterations
			// measures pool/ring warmup, not the steady state the allocation
			// bound is about.
			bt = "2s"
		}
		err = runScale(path, *timeTol, *count, bt, *update)
	case *dataplane:
		path := *baseline
		if path == "" {
			path = "BENCH_dataplane.json"
		}
		err = runDataplane(path, *tolerance, *timeTol, *count, *benchtime, *update)
	default:
		path := *baseline
		if path == "" {
			path = "BENCH_kernel.json"
		}
		err = run(path, *tolerance, *count, *benchtime, *update)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-guard:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, tolerance float64, count int, benchtime string, update bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	base, err := baselineSamples(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}

	fmt.Printf("running %s (disabled instrumentation), %d×%s...\n", benchName, count, benchtime)
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+benchName+"$", "-benchtime", benchtime,
		"-count", strconv.Itoa(count), ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test: %w\n%s", err, out)
	}
	fresh := parseNsOp(string(out))
	if len(fresh) == 0 {
		return fmt.Errorf("no %s ns/op samples in benchmark output:\n%s", benchName, out)
	}

	if update {
		updated, err := rewriteSamples(raw, fresh)
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, updated, 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s: %s = %v\n", baselinePath, baselineKey, fresh)
		return nil
	}

	baseBest, freshBest := min(base), min(fresh)
	ratio := freshBest / baseBest
	fmt.Printf("baseline best %.0f ns/op, fresh best %.0f ns/op (%+.1f%%), tolerance %.0f%%\n",
		baseBest, freshBest, 100*(ratio-1), 100*tolerance)
	if ratio > 1+tolerance {
		return fmt.Errorf("disabled-path regression: %.0f ns/op vs baseline %.0f ns/op exceeds %.0f%% bound (fresh samples %v)",
			freshBest, baseBest, 100*tolerance, fresh)
	}
	fmt.Println("ok: disabled path within budget")
	return nil
}

// samplesRe matches the pinned sample array wherever it sits in the
// baseline JSON; a targeted textual edit keeps -update from reordering
// and reformatting the whole hand-annotated file.
var samplesRe = regexp.MustCompile(`("` + baselineKey + `":\s*)\[[^\]]*\]`)

func baselineSamples(raw []byte) ([]float64, error) {
	m := samplesRe.FindSubmatch(raw)
	if m == nil {
		return nil, fmt.Errorf("no %q samples found", baselineKey)
	}
	inner := string(m[0][len(m[1]):]) // "[a, b, c]"
	inner = strings.TrimSuffix(strings.TrimPrefix(inner, "["), "]")
	var out []float64
	for _, f := range strings.Split(inner, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%q is empty", baselineKey)
	}
	return out, nil
}

func rewriteSamples(raw []byte, fresh []float64) ([]byte, error) {
	if !samplesRe.Match(raw) {
		return nil, fmt.Errorf("no %q samples found to update", baselineKey)
	}
	strs := make([]string, len(fresh))
	for i, v := range fresh {
		strs[i] = strconv.FormatFloat(v, 'f', -1, 64)
	}
	repl := "${1}[" + strings.Join(strs, ", ") + "]"
	return samplesRe.ReplaceAll(raw, []byte(repl)), nil
}

var benchLineRe = regexp.MustCompile(`(?m)^` + benchName + `\S*\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

func parseNsOp(out string) []float64 {
	var samples []float64
	for _, m := range benchLineRe.FindAllStringSubmatch(out, -1) {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			samples = append(samples, v)
		}
	}
	return samples
}

func min(xs []float64) float64 {
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}
