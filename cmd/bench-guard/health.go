package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Fleet-health guard: holds the observability plane to the two costs it
// promised when it landed, against BENCH_health.json:
//
//  1. Scrape/merge cost: one hub tick over a 100-endpoint fleet (parse
//     every exposition page, stamp, merge, evaluate the default rules)
//     must not regress beyond -time-tolerance of the pinned samples.
//     This bounds how far lobster-fleet is from its scrape interval.
//  2. Disabled-path freedom: the dispatch hot path with no dispatchTel
//     installed must stay at max_allocs_per_op (zero) — absolute, no
//     tolerance, allocation counts are deterministic — and its wall
//     clock must hold within -time-tolerance of the pinned samples.
//
// On top of that, the kernel overhead clause: the tracing-disabled
// Figure 11 simulation benchmark, which now compiles the health plane's
// instrumentation hooks into every build, must stay within
// kernel_overhead.max_fraction (5%) of the samples pinned in
// BENCH_kernel.json — observability that is not scraped must cost
// nothing measurable. Like every wall-clock bound in these guards, the
// enforced fraction is widened to -time-tolerance when that is looser:
// co-tenant load on shared hosts swings absolute minima far past 5%, so
// `make check` runs at the robust bound and the strict one is enforced
// on quiet hardware with `-time-tolerance 0.05` (the allocation bound
// is deterministic and stays absolute either way).

const (
	healthTickBench     = "BenchmarkFleetTick100"
	healthDisabledBench = "BenchmarkDispatchDisabledTel"
)

// healthBaseline is the BENCH_health.json schema.
type healthBaseline struct {
	Note     string `json:"note"`
	Recorded string `json:"recorded"`

	FleetTick struct {
		Note      string    `json:"note"`
		Pkg       string    `json:"pkg"`
		Endpoints float64   `json:"endpoints"`
		NsOp      []float64 `json:"ns_op"`
	} `json:"fleet_tick"`

	DispatchDisabled struct {
		Note           string    `json:"note"`
		Pkg            string    `json:"pkg"`
		NsOp           []float64 `json:"ns_op"`
		MaxAllocsPerOp float64   `json:"max_allocs_per_op"`
	} `json:"dispatch_disabled"`

	KernelOverhead struct {
		Note        string  `json:"note"`
		Baseline    string  `json:"baseline"`
		MaxFraction float64 `json:"max_fraction"`
	} `json:"kernel_overhead"`
}

func runHealth(baselinePath string, timeTol float64, count int, benchtime string, update bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base healthBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if base.FleetTick.Pkg == "" {
		base.FleetTick.Pkg = "./internal/health/"
	}
	if base.DispatchDisabled.Pkg == "" {
		base.DispatchDisabled.Pkg = "./internal/wq/"
	}

	// The hub tick runs milliseconds and the dispatch batch microseconds:
	// a time-based benchtime measures steady state for both, where the
	// iteration-count default the kernel guard uses would measure warmup.
	bt := benchtime
	if bt == "5x" {
		bt = "1s"
	}
	tick, err := healthBench(base.FleetTick.Pkg, healthTickBench, count, bt)
	if err != nil {
		return err
	}
	disabled, err := healthBench(base.DispatchDisabled.Pkg, healthDisabledBench, count, bt)
	if err != nil {
		return err
	}

	if update {
		base.FleetTick.NsOp = tick.nsOp
		base.DispatchDisabled.NsOp = disabled.nsOp
		enc, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s with fresh samples\n", baselinePath)
		return nil
	}

	var failures []string
	check := func(name string, fresh, pinned []float64) {
		fb, pb := min(fresh), min(pinned)
		fmt.Printf("%-30s best %12.0f ns/op vs pinned %12.0f (%+.1f%%), tolerance %.0f%%\n",
			name, fb, pb, 100*(fb/pb-1), 100*timeTol)
		if fb > pb*(1+timeTol) {
			failures = append(failures, fmt.Sprintf(
				"%s: best %.0f ns/op vs pinned %.0f exceeds %.0f%% bound",
				name, fb, pb, 100*timeTol))
		}
	}
	check(healthTickBench, tick.nsOp, base.FleetTick.NsOp)
	check(healthDisabledBench, disabled.nsOp, base.DispatchDisabled.NsOp)

	// Disabled-path allocations: deterministic, absolute bound.
	allocs := min(disabled.allocsOp)
	fmt.Printf("disabled dispatch path: %.0f allocs/op (bound %.0f)\n",
		allocs, base.DispatchDisabled.MaxAllocsPerOp)
	if allocs > base.DispatchDisabled.MaxAllocsPerOp {
		failures = append(failures, fmt.Sprintf(
			"uninstrumented dispatch allocates %.0f/op, bound %.0f — a telemetry hook leaked onto the disabled path",
			allocs, base.DispatchDisabled.MaxAllocsPerOp))
	}

	// Kernel overhead: the Fig 11 disabled-instrumentation benchmark vs
	// the samples BENCH_kernel.json pins, run exactly as the default
	// guard runs it (iteration-count benchtime — the sim is seconds-long).
	if base.KernelOverhead.Baseline != "" {
		kernRaw, err := os.ReadFile(base.KernelOverhead.Baseline)
		if err != nil {
			return err
		}
		kernBase, err := baselineSamples(kernRaw)
		if err != nil {
			return fmt.Errorf("%s: %w", base.KernelOverhead.Baseline, err)
		}
		// The 5% bound sits close to shared-host jitter, and best-of-N is
		// only noisy upward: extra repetitions stabilise the minimum
		// without moving a genuine regression under the bar.
		kernCount := count
		if kernCount < 8 {
			kernCount = 8
		}
		fmt.Printf("running %s (health hooks compiled in, disabled), %d×%s...\n",
			benchName, kernCount, benchtime)
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", "^"+benchName+"$", "-benchtime", benchtime,
			"-count", strconv.Itoa(kernCount), ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			return fmt.Errorf("go test: %w\n%s", err, out)
		}
		kernFresh := parseNsOp(string(out))
		if len(kernFresh) == 0 {
			return fmt.Errorf("no %s ns/op samples in benchmark output:\n%s", benchName, out)
		}
		fb, pb := min(kernFresh), min(kernBase)
		maxFrac := base.KernelOverhead.MaxFraction
		if timeTol > maxFrac {
			maxFrac = timeTol
		}
		fmt.Printf("%-30s best %12.0f ns/op vs %s %12.0f (%+.1f%%), bound %.0f%%\n",
			benchName, fb, base.KernelOverhead.Baseline, pb, 100*(fb/pb-1), 100*maxFrac)
		if fb > pb*(1+maxFrac) {
			failures = append(failures, fmt.Sprintf(
				"health instrumentation overhead: %s best %.0f ns/op vs %s %.0f exceeds %.0f%% bound",
				benchName, fb, base.KernelOverhead.Baseline, pb, 100*maxFrac))
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("fleet-health regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("ok: fleet health plane within budget")
	return nil
}

// healthResult is one benchmark's fresh samples across -count runs.
type healthResult struct {
	nsOp     []float64
	allocsOp []float64
}

var healthAllocsRe = regexp.MustCompile(`(\d+) allocs/op`)

func healthBench(pkg, name string, count int, benchtime string) (*healthResult, error) {
	fmt.Printf("running %s -bench %s, %d×%s...\n", pkg, name, count, benchtime)
	cmd := exec.Command("go", "test", pkg, "-run", "^$",
		"-bench", "^"+name+"$", "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count))
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test %s: %w\n%s", pkg, err, out)
	}
	nameRe := regexp.MustCompile(`(?m)^` + name + `\S*\s+\d+\s+(\d+(?:\.\d+)?) ns/op.*$`)
	r := &healthResult{}
	for _, m := range nameRe.FindAllStringSubmatch(string(out), -1) {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			r.nsOp = append(r.nsOp, v)
		}
		if a := healthAllocsRe.FindStringSubmatch(m[0]); a != nil {
			if v, err := strconv.ParseFloat(a[1], 64); err == nil {
				r.allocsOp = append(r.allocsOp, v)
			}
		}
	}
	if len(r.nsOp) == 0 {
		return nil, fmt.Errorf("no %s ns/op samples in benchmark output:\n%s", name, out)
	}
	return r, nil
}
