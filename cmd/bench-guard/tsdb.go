package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

// Time-series store guard: holds the history plane to the three costs
// it promised when it landed, against BENCH_tsdb.json:
//
//  1. Steady-state append: a sample into a known series with block room
//     must allocate nothing (max_allocs_per_op, absolute — allocation
//     counts are deterministic) and hold its pinned wall clock within
//     -time-tolerance. The hub calls this a few thousand times per tick.
//  2. Compression: the 100-endpoint hub workload (40 series each, 5 s
//     ticks, the realistic gauge/counter mix) must stay under
//     max_bytes_per_sample (absolute — compression is deterministic).
//     This is what makes a day of fleet history fit in memory.
//  3. Query latency: a windowed sum(rate()) over a 1M-sample store must
//     finish under max_ns_op (absolute) and within -time-tolerance of
//     the pinned samples — replotting a ramp figure stays interactive.

const (
	tsdbSteadyBench = "BenchmarkAppendSteady"
	tsdbFleetBench  = "BenchmarkAppendFleet100"
	tsdbQueryBench  = "BenchmarkRangeQuery1M"
)

// tsdbBaseline is the BENCH_tsdb.json schema.
type tsdbBaseline struct {
	Note     string `json:"note"`
	Recorded string `json:"recorded"`
	Pkg      string `json:"pkg"`

	AppendSteady struct {
		Note           string    `json:"note"`
		NsOp           []float64 `json:"ns_op"`
		MaxAllocsPerOp float64   `json:"max_allocs_per_op"`
	} `json:"append_steady"`

	AppendFleet struct {
		Note              string    `json:"note"`
		NsOp              []float64 `json:"ns_op"`
		MaxBytesPerSample float64   `json:"max_bytes_per_sample"`
	} `json:"append_fleet"`

	RangeQuery struct {
		Note    string    `json:"note"`
		NsOp    []float64 `json:"ns_op"`
		MaxNsOp float64   `json:"max_ns_op"`
	} `json:"range_query"`
}

func runTsdb(baselinePath string, timeTol float64, count int, benchtime string, update bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base tsdbBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if base.Pkg == "" {
		base.Pkg = "./internal/tsdb/"
	}

	// All three benchmarks need steady state, not warmup: time-based
	// benchtime (the -count default "5x" is for the seconds-long sim).
	bt := benchtime
	if bt == "5x" {
		bt = "1s"
	}
	steady, err := tsdbBench(base.Pkg, tsdbSteadyBench, count, bt)
	if err != nil {
		return err
	}
	fleet, err := tsdbBench(base.Pkg, tsdbFleetBench, count, bt)
	if err != nil {
		return err
	}
	query, err := tsdbBench(base.Pkg, tsdbQueryBench, count, bt)
	if err != nil {
		return err
	}

	if update {
		base.AppendSteady.NsOp = steady.nsOp
		base.AppendFleet.NsOp = fleet.nsOp
		base.RangeQuery.NsOp = query.nsOp
		enc, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s with fresh samples\n", baselinePath)
		return nil
	}

	var failures []string
	relative := func(name string, fresh, pinned []float64) {
		fb, pb := min(fresh), min(pinned)
		fmt.Printf("%-28s best %12.0f ns/op vs pinned %12.0f (%+.1f%%), tolerance %.0f%%\n",
			name, fb, pb, 100*(fb/pb-1), 100*timeTol)
		if fb > pb*(1+timeTol) {
			failures = append(failures, fmt.Sprintf(
				"%s: best %.0f ns/op vs pinned %.0f exceeds %.0f%% bound",
				name, fb, pb, 100*timeTol))
		}
	}
	relative(tsdbSteadyBench, steady.nsOp, base.AppendSteady.NsOp)
	relative(tsdbFleetBench, fleet.nsOp, base.AppendFleet.NsOp)
	relative(tsdbQueryBench, query.nsOp, base.RangeQuery.NsOp)

	// Absolute bounds: deterministic costs, no tolerance.
	allocs := min(steady.allocsOp)
	fmt.Printf("steady append: %.0f allocs/op (bound %.0f)\n", allocs, base.AppendSteady.MaxAllocsPerOp)
	if allocs > base.AppendSteady.MaxAllocsPerOp {
		failures = append(failures, fmt.Sprintf(
			"steady-state append allocates %.0f/op, bound %.0f — the hot path lost its freelist or key reuse",
			allocs, base.AppendSteady.MaxAllocsPerOp))
	}
	if len(fleet.bytesPerSample) == 0 {
		failures = append(failures, tsdbFleetBench+" reported no bytes/sample metric")
	} else {
		bps := min(fleet.bytesPerSample)
		fmt.Printf("hub workload compression: %.2f bytes/sample (bound %.1f)\n",
			bps, base.AppendFleet.MaxBytesPerSample)
		if bps > base.AppendFleet.MaxBytesPerSample {
			failures = append(failures, fmt.Sprintf(
				"hub workload compresses to %.2f bytes/sample, bound %.1f",
				bps, base.AppendFleet.MaxBytesPerSample))
		}
	}
	qb := min(query.nsOp)
	fmt.Printf("1M-sample range query: %.1f ms (bound %.0f ms)\n", qb/1e6, base.RangeQuery.MaxNsOp/1e6)
	if qb > base.RangeQuery.MaxNsOp {
		failures = append(failures, fmt.Sprintf(
			"1M-sample range query takes %.1f ms, bound %.0f ms",
			qb/1e6, base.RangeQuery.MaxNsOp/1e6))
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d history-plane budget(s) exceeded", len(failures))
	}
	fmt.Println("ok: time-series store within budget")
	return nil
}

// tsdbResult holds one benchmark's parsed samples.
type tsdbResult struct {
	nsOp           []float64
	allocsOp       []float64
	bytesPerSample []float64
}

var (
	tsdbAllocsRe = regexp.MustCompile(`(\d+(?:\.\d+)?) allocs/op`)
	tsdbBpsRe    = regexp.MustCompile(`(\d+(?:\.\d+)?) bytes/sample`)
)

func tsdbBench(pkg, name string, count int, benchtime string) (*tsdbResult, error) {
	fmt.Printf("running %s -bench %s, %d×%s...\n", pkg, name, count, benchtime)
	cmd := exec.Command("go", "test", pkg, "-run", "^$",
		"-bench", "^"+name+"$", "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count))
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test %s: %w\n%s", pkg, err, out)
	}
	nameRe := regexp.MustCompile(`(?m)^` + name + `\S*\s+\d+\s+(\d+(?:\.\d+)?) ns/op.*$`)
	r := &tsdbResult{}
	for _, m := range nameRe.FindAllStringSubmatch(string(out), -1) {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			r.nsOp = append(r.nsOp, v)
		}
		if a := tsdbAllocsRe.FindStringSubmatch(m[0]); a != nil {
			if v, err := strconv.ParseFloat(a[1], 64); err == nil {
				r.allocsOp = append(r.allocsOp, v)
			}
		}
		if a := tsdbBpsRe.FindStringSubmatch(m[0]); a != nil {
			if v, err := strconv.ParseFloat(a[1], 64); err == nil {
				r.bytesPerSample = append(r.bytesPerSample, v)
			}
		}
	}
	if len(r.nsOp) == 0 {
		return nil, fmt.Errorf("no %s ns/op samples in benchmark output:\n%s", name, out)
	}
	return r, nil
}
