package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Data-plane guard: reruns the streaming-transfer benchmarks (chirp
// get/put/round-trip/stage-in, xrootd fetch, squid cold wave) and fails
// if either wall time or allocated bytes regressed beyond the tolerance
// against the pinned "after" baselines in BENCH_dataplane.json.
//
// Time compares best-of-N against best-of-baseline (shared machines are
// noisy upward, almost never downward) under the loose -time-tolerance
// bound. Allocated bytes per op are deterministic, so they get the
// tight -tolerance guard: the streaming plane's core claim is that
// transfers no longer allocate payload-sized buffers, and any change
// that reintroduces one jumps B/op by megabytes — tripping the 5%
// bound regardless of host noise.

// dataplaneBaseline is the BENCH_dataplane.json schema.
type dataplaneBaseline struct {
	Note       string           `json:"note"`
	Recorded   string           `json:"recorded"`
	Benchmarks []dataplaneBench `json:"benchmarks"`
}

type dataplaneBench struct {
	Pkg   string `json:"pkg"`   // go test package, e.g. ./internal/chirp/
	Bench string `json:"bench"` // full benchmark name incl. sub-benchmark

	// Before: the seed's buffered dial-per-operation path, pinned for
	// the historical record (not re-runnable; that code is gone).
	BeforeNsOp    float64 `json:"before_ns_op"`
	BeforeBytesOp float64 `json:"before_alloc_bytes_op"`

	// After: the streaming plane. NsOp holds min-of-run samples;
	// BytesOp is the allocation footprint per operation.
	AfterNsOp    []float64 `json:"after_ns_op"`
	AfterBytesOp float64   `json:"after_alloc_bytes_op"`
}

// benchResult is one benchmark's fresh measurements.
type benchResult struct {
	nsOp    []float64
	bytesOp []float64
}

func runDataplane(baselinePath string, tolerance, timeTol float64, count int, benchtime string, update bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base dataplaneBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks", baselinePath)
	}

	// One go test invocation per package, all of its benchmarks at once.
	byPkg := make(map[string][]*dataplaneBench)
	var pkgs []string
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		if len(byPkg[b.Pkg]) == 0 {
			pkgs = append(pkgs, b.Pkg)
		}
		byPkg[b.Pkg] = append(byPkg[b.Pkg], b)
	}

	fresh := make(map[string]*benchResult)
	for _, pkg := range pkgs {
		names := make([]string, len(byPkg[pkg]))
		for i, b := range byPkg[pkg] {
			names[i] = "^" + strings.SplitN(b.Bench, "/", 2)[0] + "$"
		}
		pattern := strings.Join(dedup(names), "|")
		fmt.Printf("running %s -bench '%s', %d×%s...\n", pkg, pattern, count, benchtime)
		cmd := exec.Command("go", "test", pkg, "-run", "^$",
			"-bench", pattern, "-benchmem", "-benchtime", benchtime,
			"-count", strconv.Itoa(count))
		out, err := cmd.CombinedOutput()
		if err != nil {
			return fmt.Errorf("go test %s: %w\n%s", pkg, err, out)
		}
		for name, r := range parseBenchmem(string(out)) {
			fresh[pkg+" "+name] = r
		}
	}

	var failures []string
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		r := fresh[b.Pkg+" "+b.Bench]
		if r == nil || len(r.nsOp) == 0 {
			failures = append(failures, fmt.Sprintf("%s %s: no samples collected", b.Pkg, b.Bench))
			continue
		}
		if update {
			b.AfterNsOp = r.nsOp
			b.AfterBytesOp = minF(r.bytesOp)
			continue
		}
		freshNs, baseNs := minF(r.nsOp), minF(b.AfterNsOp)
		freshB := minF(r.bytesOp)
		fmt.Printf("%-55s %10.1fms vs %10.1fms (%+.1f%%)  %8.0f B/op vs %8.0f\n",
			b.Bench, freshNs/1e6, baseNs/1e6, 100*(freshNs/baseNs-1), freshB, b.AfterBytesOp)
		if freshNs > baseNs*(1+timeTol) {
			failures = append(failures, fmt.Sprintf("%s: best %.1fms vs baseline %.1fms exceeds %.0f%% bound",
				b.Bench, freshNs/1e6, baseNs/1e6, 100*timeTol))
		}
		if b.AfterBytesOp > 0 && freshB > b.AfterBytesOp*(1+tolerance) {
			failures = append(failures, fmt.Sprintf("%s: %.0f B/op vs baseline %.0f exceeds %.0f%% bound — a payload-sized allocation crept back in",
				b.Bench, freshB, b.AfterBytesOp, 100*tolerance))
		}
	}

	if update {
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("updated %s with fresh after samples\n", baselinePath)
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("data-plane regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("ok: data plane within budget")
	return nil
}

// benchmemLineRe matches "BenchmarkName  N  X ns/op ... Y B/op  Z allocs/op"
// (no -cpu suffix on a GOMAXPROCS=1 host; strip it when present).
var benchmemLineRe = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op.*?\s(\d+) B/op`)

func parseBenchmem(out string) map[string]*benchResult {
	res := make(map[string]*benchResult)
	for _, m := range benchmemLineRe.FindAllStringSubmatch(out, -1) {
		ns, err1 := strconv.ParseFloat(m[2], 64)
		by, err2 := strconv.ParseFloat(m[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := res[m[1]]
		if r == nil {
			r = &benchResult{}
			res[m[1]] = r
		}
		r.nsOp = append(r.nsOp, ns)
		r.bytesOp = append(r.bytesOp, by)
	}
	return res
}

func dedup(xs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func minF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}
