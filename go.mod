module lobster

go 1.22
