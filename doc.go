// Package lobster is the root of a from-scratch Go reproduction of
// "Scaling Data Intensive Physics Applications to 10k Cores on
// Non-dedicated Clusters with Lobster" (Woodard et al., IEEE CLUSTER 2015).
//
// The system lives under internal/: the Lobster workload manager
// (internal/core) on top of a Work Queue execution fabric (internal/wq),
// software delivery via content-addressed CVMFS repositories, squid proxies
// and parrot caches (internal/cvmfs, internal/squid, internal/parrot), the
// XrootD data federation (internal/xrootd), a Chirp storage element backed
// by local disk or an HDFS-like cluster with MapReduce (internal/chirp,
// internal/hdfs), dataset bookkeeping (internal/dbs), conditions data
// (internal/frontier), a crash-safe embedded database (internal/store),
// non-dedicated cluster modelling (internal/cluster), per-segment task
// instrumentation and diagnosis (internal/wrapper, internal/monitor), and a
// deterministic simulation plane that regenerates every figure and table of
// the paper's evaluation (internal/sim, driven from bench_test.go and
// cmd/lobster-bench).
//
// See README.md for a tour, DESIGN.md for the architecture and experiment
// index, and EXPERIMENTS.md for paper-versus-measured results.
package lobster
