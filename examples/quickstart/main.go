// Quickstart: the smallest complete Lobster run.
//
// It brings up the whole service stack in-process (CVMFS behind a squid
// proxy, an XrootD data federation holding a synthetic dataset, a Chirp
// storage element, a Work Queue master with two 4-core workers), then runs
// an analysis workflow that streams the dataset, reduces it, and writes the
// outputs to the storage element.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"lobster/internal/core"
	"lobster/internal/deploy"
)

func main() {
	// 1. Bring up the services.
	stack, err := deploy.Start(deploy.Options{
		Files:          4,  // dataset: 4 files ...
		LumisPerFile:   4,  // ... of 4 lumisections each
		EventsPerFile:  40, // ... holding 40 events each
		Workers:        2,
		CoresPerWorker: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	fmt.Printf("dataset %s: %d files, %d events, %s\n",
		stack.Dataset.Name, len(stack.Dataset.Files), stack.Dataset.TotalEvents(),
		fmt.Sprintf("%d bytes", stack.Dataset.TotalBytes()))

	// 2. Describe the workflow: one task per two lumisections, streaming
	// input over the federation, as the paper's Lobster defaults to.
	cfg := core.Config{
		Name:            "quickstart",
		Kind:            core.KindAnalysis,
		Dataset:         stack.Dataset.Name,
		TaskletsPerTask: 2,
		AccessMode:      core.AccessStream,
		EventSize:       stack.EventSize(),
	}

	// 3. Run it.
	l, err := core.New(cfg, stack.Services)
	if err != nil {
		log.Fatal(err)
	}
	l.SetResultTimeout(time.Minute)
	report, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow done: %d/%d tasklets in %d tasks (%v)\n",
		report.TaskletsDone, report.TaskletsTotal, report.TasksRun, report.Elapsed.Round(time.Millisecond))

	// 4. The reduced outputs are on the storage element.
	outputs, err := stack.ChirpFS.List("/store/user/quickstart")
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outputs {
		fmt.Printf("  /store/user/quickstart/%s (%d bytes)\n", o.Name, o.Size)
	}
	if !report.Succeeded() {
		log.Fatalf("%d tasklets failed", report.TaskletsFailed)
	}
}
