// Data processing on a non-dedicated cluster: a scaled-down version of the
// paper's Figure 10 run.
//
// A pool of opportunistic workers joins the master and keeps getting
// evicted and replaced while an analysis workflow streams a dataset over
// the federation, with interleaved merging producing publication-sized
// files. The run report, the monitoring timeline (running / completed /
// failed), and the runtime breakdown are printed at the end.
//
//	go run ./examples/dataprocessing
package main

import (
	"fmt"
	"log"
	"time"

	"lobster/internal/cluster"
	"lobster/internal/core"
	"lobster/internal/deploy"
	"lobster/internal/stats"
	"lobster/internal/tabulate"
)

func main() {
	// Stack without its own workers: the opportunistic pool provides them.
	stack, err := deploy.Start(deploy.Options{
		Files:          8,
		LumisPerFile:   4,
		EventsPerFile:  64,
		Workers:        1, // one stable worker so progress never fully stalls
		CoresPerWorker: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// An opportunistic pool: four extra workers whose lifetimes are drawn
	// from a heavy-tailed distribution; evicted workers are replaced, as a
	// batch system re-grants slots.
	pool, err := cluster.NewPool(cluster.PoolConfig{
		MasterAddr:     stack.Services.Master.Addr(),
		Workers:        4,
		CoresPerWorker: 2,
		Registry:       stack.Registry,
		Lifetime:       stats.Weibull{K: 0.8, Lambda: 2.0}, // seconds: aggressive churn
		Replace:        true,
		ScratchDir:     stack.Options.ScratchDir + "/pool",
	}, stats.NewRand(7))
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Stop()

	cfg := core.Config{
		Name:             "dataproc",
		Kind:             core.KindAnalysis,
		Dataset:          stack.Dataset.Name,
		TaskletsPerTask:  2,
		AccessMode:       core.AccessStream,
		MergeMode:        core.MergeInterleaved,
		MergeTargetBytes: 4096,
		EventSize:        stack.EventSize(),
	}
	l, err := core.New(cfg, stack.Services)
	if err != nil {
		log.Fatal(err)
	}
	l.SetResultTimeout(2 * time.Minute)
	report, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d/%d tasklets done, %d task attempts (%d failed), %d merged files\n",
		report.TaskletsDone, report.TaskletsTotal, report.TasksRun, report.TasksFailed,
		report.MergedFiles)
	fmt.Printf("pool: %d workers started, %d evictions\n", pool.Started(), pool.Evictions())
	fmt.Printf("federation: lobster consumed %s\n",
		tabulate.Bytes(float64(stack.Dashboard.Volume("lobster"))))

	// The monitoring view of the run, Figure-10 style.
	mon := stack.Services.Monitor
	recs := mon.Records()
	var end float64
	for _, r := range recs {
		if r.Finish > end {
			end = r.Finish
		}
	}
	if end <= 0 {
		end = 1
	}
	tl, err := mon.Timeline(0, end+0.001, (end+0.001)/8)
	if err != nil {
		log.Fatal(err)
	}
	tb := tabulate.NewTable("Timeline (8 bins over the run)",
		"t", "running", "completed", "failed")
	for i := 0; i < tl.Bins; i++ {
		tb.Row(fmt.Sprintf("%.2fs", tl.BinTime(i)), fmt.Sprintf("%.1f", tl.Running[i]),
			tl.Completed[i], tl.FailedN[i])
	}
	fmt.Println(tb.Render())

	bd := tabulate.NewTable("Runtime breakdown", "Task Phase", "Time (s)", "Fraction (%)")
	for _, row := range mon.Breakdown() {
		bd.Row(row.Phase, fmt.Sprintf("%.2f", row.Hours*3600), fmt.Sprintf("%.1f", row.Fraction*100))
	}
	fmt.Println(bd.Render())

	if !report.Succeeded() {
		log.Fatalf("%d tasklets failed", report.TaskletsFailed)
	}
}
