// Monte Carlo simulation production: a scaled-down version of the paper's
// Figure 11 run.
//
// Simulation tasks generate events (CPU-heavy), overlay pile-up noise
// staged from the local storage element over chirp, and stage their outputs
// back — external WAN bandwidth is barely touched, which is what let the
// paper push simulation to 20k concurrent tasks. The example prints the
// proxy cache statistics (cold-start vs warmed) and the storage-element
// accounting.
//
// The run records a distributed trace of every task (master dispatch →
// worker → wrapper stages → chirp/squid operations) to a JSONL log;
// analyze it afterwards with:
//
//	go run ./examples/simulation
//	go run ./cmd/lobster-trace mcprod-trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lobster/internal/core"
	"lobster/internal/deploy"
	"lobster/internal/hepsim"
	"lobster/internal/stats"
	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

func main() {
	traceLog := flag.String("trace-log", "mcprod-trace.jsonl",
		"record task trace spans to this JSONL file (empty disables tracing)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	var tracer *trace.Tracer
	if *traceLog != "" {
		evl, err := telemetry.OpenEventLog(*traceLog, reg.Now)
		if err != nil {
			log.Fatal(err)
		}
		defer evl.Close()
		tracer = trace.New(trace.Config{Registry: reg, Log: evl})
	}

	stack, err := deploy.Start(deploy.Options{
		Workers:        3,
		CoresPerWorker: 4,
		Telemetry:      reg,
		Tracer:         tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// Publish the pile-up (minimum-bias) sample on the storage element.
	kernel, err := hepsim.NewKernel(stack.EventSize(), 1)
	if err != nil {
		log.Fatal(err)
	}
	pileup := kernel.GenerateEvents(8, stats.NewRand(99))
	if err := stack.ChirpFS.WriteFile("/pileup/minbias.root", pileup); err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{
		Name:             "mcprod",
		Kind:             core.KindSimulation,
		TotalEvents:      1200,
		EventsPerTasklet: 50,
		TaskletsPerTask:  2,
		PileupPath:       "/pileup/minbias.root",
		EventSize:        stack.EventSize(),
	}
	l, err := core.New(cfg, stack.Services)
	if err != nil {
		log.Fatal(err)
	}
	l.SetResultTimeout(2 * time.Minute)
	report, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d events in %d tasks (%v)\n",
		cfg.TotalEvents, report.TasksRun, report.Elapsed.Round(time.Millisecond))

	// Squid absorbed the software-delivery load: the origin was hit once
	// per object, everything else was proxy cache hits.
	ps := stack.Proxy.Stats()
	fmt.Printf("squid: %d hits / %d misses (hit rate %.0f%%), %s served, %s fetched from origin\n",
		ps.Hits, ps.Misses, ps.HitRate()*100,
		tabulate.Bytes(float64(ps.BytesServed)), tabulate.Bytes(float64(ps.BytesFetched)))

	// Storage element accounting: pile-up reads plus output writes.
	cs := stack.ChirpSrv.Stats()
	fmt.Printf("chirp: %d requests, %s in (outputs), %s out (pile-up)\n",
		cs.Requests, tabulate.Bytes(float64(cs.BytesIn)), tabulate.Bytes(float64(cs.BytesOut)))

	outs, err := stack.ChirpFS.List("/store/user/mcprod")
	if err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, o := range outs {
		total += o.Size
	}
	fmt.Printf("outputs: %d files, %s on /store/user/mcprod\n", len(outs), tabulate.Bytes(float64(total)))
	if *traceLog != "" {
		fmt.Printf("trace spans in %s — analyze with: go run ./cmd/lobster-trace %s\n",
			*traceLog, *traceLog)
	}
	if !report.Succeeded() {
		log.Fatalf("%d tasklets failed", report.TaskletsFailed)
	}
}
