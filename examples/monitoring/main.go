// Monitoring and troubleshooting walk-through (paper §5).
//
// The example runs the same small workflow twice: first against a healthy
// stack, then with a transient federation outage injected mid-run. It shows
// how the per-segment wrapper records surface the problem — failure codes
// attribute the failures to stage-in, the failed-time fraction jumps — and
// how the Lobster DB lets a crashed scheduler resume without re-running
// completed work. Finally it replays the structured JSONL event log into a
// fresh monitor, rebuilding the task-record database a crash would lose.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"lobster/internal/core"
	"lobster/internal/deploy"
	"lobster/internal/hepsim"
	"lobster/internal/monitor"
	"lobster/internal/store"
	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
)

func main() {
	// Every task record is also appended to a JSONL event log; §3 below
	// replays it to rebuild the monitor DB after a simulated crash.
	logDir, err := os.MkdirTemp("", "lobster-events-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)
	logPath := filepath.Join(logDir, "events.jsonl")
	reg := telemetry.NewRegistry()
	evl, err := telemetry.OpenEventLog(logPath, reg.Now)
	if err != nil {
		log.Fatal(err)
	}

	stack, err := deploy.Start(deploy.Options{
		Files:          6,
		LumisPerFile:   2,
		EventsPerFile:  24,
		Workers:        2,
		CoresPerWorker: 2,
		Telemetry:      reg,
		EventLog:       evl,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	dbdir, err := os.MkdirTemp("", "lobster-db-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dbdir)
	db, err := store.Open(dbdir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	stack.Services.DB = db

	cfg := core.Config{
		Name:            "troubleshoot",
		Kind:            core.KindAnalysis,
		Dataset:         stack.Dataset.Name,
		TaskletsPerTask: 1,
		EventSize:       stack.EventSize(),
		MaxTaskRetries:  2,
	}

	// --- Run 1: inject a federation outage for half the files. ---
	fmt.Println("== run 1: transient federation outage ==")
	origOpen := stack.Env.Open
	broken := map[string]bool{}
	for i, f := range stack.Dataset.Files {
		if i%2 == 0 {
			broken[f.LFN] = true
		}
	}
	stack.Env.Open = func(lfn string) (hepsim.RemoteFile, error) {
		if broken[lfn] {
			return nil, fmt.Errorf("xrootd: connection timed out (transient outage)")
		}
		return origOpen(lfn)
	}

	l, err := core.New(cfg, stack.Services)
	if err != nil {
		log.Fatal(err)
	}
	l.SetResultTimeout(time.Minute)
	rep, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outcome: %d done, %d failed tasklets\n\n", rep.TaskletsDone, rep.TaskletsFailed)

	// The wrapper's segmented failure codes attribute the problem.
	bySegment := map[string]int{}
	stack.Services.Monitor.Each(func(r *monitor.TaskRecord) {
		if r.Failed() {
			bySegment[r.FailedSegment]++
		}
	})
	tb := tabulate.NewTable("Failures by wrapper segment", "segment", "failed attempts")
	for seg, n := range bySegment {
		tb.Row(seg, n)
	}
	fmt.Println(tb.Render())

	bd := tabulate.NewTable("Runtime breakdown (note the Task Failed share)",
		"Task Phase", "Fraction (%)")
	for _, row := range stack.Services.Monitor.Breakdown() {
		bd.Row(row.Phase, fmt.Sprintf("%.1f", row.Fraction*100))
	}
	fmt.Println(bd.Render())

	// --- Run 2: the outage clears; a fresh Lobster resumes from the DB. ---
	fmt.Println("== run 2: outage over, scheduler restarted from the Lobster DB ==")
	stack.Env.Open = origOpen
	l2, err := core.New(cfg, stack.Services)
	if err != nil {
		log.Fatal(err)
	}
	l2.SetResultTimeout(time.Minute)
	rep2, err := l2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered=%v: re-ran only the failed work (%d task attempts this run)\n",
		rep2.Recovered, rep2.TasksRun)
	fmt.Printf("final state: %d/%d tasklets done, %d failed\n",
		rep2.TaskletsDone, rep2.TaskletsTotal, rep2.TaskletsFailed)
	if !rep2.Succeeded() {
		log.Fatal("workflow did not complete after recovery")
	}

	// --- Run 3: the monitor DB itself is lost; replay the event log. ---
	// The Lobster DB recovers workflow *state* (what still needs running);
	// the event log recovers the monitor's *history* (every task record),
	// so breakdowns and diagnoses survive a scheduler crash too.
	fmt.Println("\n== run 3: monitor DB lost, rebuilt from the event log ==")
	if err := evl.Close(); err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rebuilt := monitor.New()
	n, err := rebuilt.ReplayLog(f)
	if err != nil {
		log.Fatal(err)
	}
	live := len(stack.Services.Monitor.Records())
	fmt.Printf("replayed %d task events from %s (live monitor holds %d)\n",
		n, filepath.Base(logPath), live)
	rb := tabulate.NewTable("Breakdown rebuilt from the log", "Task Phase", "Fraction (%)")
	for _, row := range rebuilt.Breakdown() {
		rb.Row(row.Phase, fmt.Sprintf("%.1f", row.Fraction*100))
	}
	fmt.Println(rb.Render())
	if n != live {
		log.Fatalf("replay mismatch: %d events vs %d live records", n, live)
	}
}
