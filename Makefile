GO ?= go

# The telemetry layer threads atomics through every concurrent component, so
# the whole module runs under the race detector, not just the hot packages.
RACE_PKGS = ./...

.PHONY: all check vet build test race chaos chaos-ha fuzz bench bench-kernel bench-guard bench-dataplane bench-scale bench-health bench-tsdb bench-challenge

all: check

check: vet build test race chaos chaos-ha fuzz bench-scale bench-health bench-tsdb bench-challenge

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Fault-storm suite: the full deploy stack under scripted worker kills,
# chirp connection drops, and squid stalls, asserting zero task loss and
# byte-identical outputs (DESIGN.md §9). Always raced — the storms exist
# to shake out exactly the interleavings -race catches.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faultinject/

# Control-plane failover storm: a 5-member replicated master fleet loses
# its leader twice mid-dispatch (plus replica-transport drops); survivors
# must elect, replay, and finish with exactly-one terminal outcome per
# task and byte-identical outputs to a kill-free run (DESIGN.md §14).
chaos-ha:
	$(GO) test -race -count=1 -run 'TestChaosHA' ./internal/faultinject/

# Native fuzzing of the wire-facing parsers, 30s per target. Checked-in
# seed corpora live in each package's testdata/fuzz/.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz FuzzDispatch -fuzztime $(FUZZTIME) ./internal/chirp/
	$(GO) test -fuzz FuzzReadEvents -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -fuzz FuzzDispatch -fuzztime $(FUZZTIME) ./internal/xrootd/
	$(GO) test -fuzz FuzzBatchDispatch -fuzztime $(FUZZTIME) ./internal/wq/
	$(GO) test -fuzz FuzzPromParse -fuzztime $(FUZZTIME) ./internal/health/
	$(GO) test -fuzz FuzzBlockRoundTrip -fuzztime $(FUZZTIME) ./internal/tsdb/
	$(GO) test -fuzz FuzzSegmentReplay -fuzztime $(FUZZTIME) ./internal/tsdb/
	$(GO) test -fuzz FuzzReplicaWire -fuzztime $(FUZZTIME) ./internal/replica/

bench:
	$(GO) test -bench=Fig -benchmem .

bench-kernel:
	$(GO) test ./internal/simevent/ -run XXX -bench . -benchmem

# Fails if the tracing-disabled Fig 11 benchmark regresses >5% against
# the BENCH_kernel.json baseline (best-of-3 vs best-of-baseline).
bench-guard:
	$(GO) run ./cmd/bench-guard

# Dispatch-plane guard: reruns the sharded-master scale benchmarks
# against BENCH_scale.json. The batched loopback path must hold its 5x
# speedup over the pinned pre-PR single-message throughput, the match
# loop must stay allocation-free at steady state (absolute bound), and
# the 10k-worker sim must keep resident bytes per task record flat.
# Wall clock gets the loose 50% -time-tolerance bound, like the data
# plane; part of `make check`.
bench-scale:
	$(GO) run ./cmd/bench-guard -scale

# Streaming data-plane guard: reruns the chirp/xrootd/squid transfer
# benchmarks against BENCH_dataplane.json. Allocated bytes per op are
# deterministic and guarded at 5%; wall clock gets a loose 50% bound
# because shared-host minima jitter (tighten with -time-tolerance on
# quiet hardware).
bench-dataplane:
	$(GO) run ./cmd/bench-guard -dataplane

# Fleet-health guard: holds the hub's 100-endpoint scrape/merge tick and
# the uninstrumented dispatch path against BENCH_health.json, and the
# Figure 11 kernel (health hooks compiled in, disabled) against
# BENCH_kernel.json. The disabled dispatch path is bounded at zero
# allocations absolutely; wall clock gets the loose shared-host
# tolerance (enforce the strict 5% kernel-overhead bound on quiet
# hardware with -time-tolerance 0.05). Part of `make check`.
bench-health:
	$(GO) run ./cmd/bench-guard -health

# History-plane guard: holds the embedded time-series store against
# BENCH_tsdb.json. Steady-state append is bounded at zero allocations
# and the 100-endpoint hub workload at 2 bytes/sample (both absolute —
# deterministic costs); the 1M-sample range query must finish under
# 50 ms; wall clock otherwise gets the loose shared-host tolerance.
# Part of `make check`.
bench-tsdb:
	$(GO) run ./cmd/bench-guard -tsdb

# Data-challenge guard: holds the throughput plane to its acceptance
# bars against BENCH_challenge.json. The headline numbers are same-run
# ratios (striped ≥ 2x single-replica fetch on link-throttled loopback;
# squid peer hit < 50% of an origin miss), so they hold on noisy shared
# hosts; allocation bounds are absolute, and the seeded paper-scale
# extrapolation table is compared exactly. Part of `make check`.
bench-challenge:
	$(GO) run ./cmd/bench-guard -challenge
