GO ?= go

# Packages whose concurrency (kernel runner pool, parallel figure sweeps,
# real-plane TCP) warrants a race-detector pass.
RACE_PKGS = ./internal/simevent/... ./internal/sim/... ./internal/wq/...

.PHONY: all check vet build test race bench bench-kernel

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=Fig -benchmem .

bench-kernel:
	$(GO) test ./internal/simevent/ -run XXX -bench . -benchmem
