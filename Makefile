GO ?= go

# The telemetry layer threads atomics through every concurrent component, so
# the whole module runs under the race detector, not just the hot packages.
RACE_PKGS = ./...

.PHONY: all check vet build test race bench bench-kernel bench-guard

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=Fig -benchmem .

bench-kernel:
	$(GO) test ./internal/simevent/ -run XXX -bench . -benchmem

# Fails if the tracing-disabled Fig 11 benchmark regresses >5% against
# the BENCH_kernel.json baseline (best-of-3 vs best-of-baseline).
bench-guard:
	$(GO) run ./cmd/bench-guard
