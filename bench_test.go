package lobster

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section. Each benchmark prints the regenerated rows/series on
// its first iteration (run with -bench and -v or watch stdout) and reports
// the headline quantity as a benchmark metric, so regressions in the
// reproduced *shape* show up as metric shifts.
//
//	go test -bench=Fig -benchmem
//
// The at-scale runs default to a reduced scale so the full suite stays
// fast; cmd/lobster-bench runs the same generators at full paper scale.

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lobster/internal/cluster"
	"lobster/internal/core"
	"lobster/internal/cvmfs"
	"lobster/internal/dbs"
	"lobster/internal/parrot"
	"lobster/internal/sim"
	"lobster/internal/stats"
	"lobster/internal/tabulate"
	"lobster/internal/telemetry"
	"lobster/internal/wq"
	"lobster/internal/wrapper"
)

var printOnce sync.Map

// printFirst prints output once per benchmark name.
func printFirst(b *testing.B, out string) {
	if _, loaded := printOnce.LoadOrStore(b.Name(), true); !loaded {
		fmt.Printf("\n=== %s ===\n%s\n", b.Name(), out)
	}
}

// BenchmarkFig2EvictionProbability regenerates Figure 2: worker eviction
// probability as a function of availability time with binomial errors.
func BenchmarkFig2EvictionProbability(b *testing.B) {
	var curve []cluster.CurvePoint
	for i := 0; i < b.N; i++ {
		trace, err := cluster.GenerateTrace(cluster.DefaultTraceConfig(), stats.NewRand(2))
		if err != nil {
			b.Fatal(err)
		}
		curve, err = cluster.EvictionCurve(trace, 0, 24*3600, 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabulate.NewTable("Figure 2: eviction probability vs availability time",
		"availability", "P(evict)", "+-", "sessions")
	for _, p := range curve {
		tb.Row(tabulate.Duration(p.T), p.P, p.Err, p.N)
	}
	printFirst(b, tb.Render())
	b.ReportMetric(curve[0].P, "P(evict|first-hour)")
}

// BenchmarkFig3EfficiencyByTaskLength regenerates Figure 3: efficiency vs
// task length for the constant, observed, and no-eviction scenarios.
func BenchmarkFig3EfficiencyByTaskLength(b *testing.B) {
	cfg := sim.DefaultTaskSizeConfig()
	cfg.Tasklets = 20000
	cfg.Workers = 1600
	trace, err := cluster.GenerateTrace(cluster.DefaultTraceConfig(), stats.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	surv, err := cluster.SurvivalDistribution(trace)
	if err != nil {
		b.Fatal(err)
	}
	var results []sim.Fig3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err = sim.Figure3(cfg, surv, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabulate.NewTable("Figure 3: efficiency by task length (scenario rows, 1..10 h columns)",
		"scenario", "1h", "2h", "3h", "4h", "5h", "6h", "7h", "8h", "9h", "10h")
	var peakObserved float64
	for _, r := range results {
		row := []any{r.Scenario}
		for _, p := range r.Points {
			row = append(row, fmt.Sprintf("%.2f", p.Efficiency))
		}
		tb.Row(row...)
		if r.Scenario == "observed" {
			_, peakObserved = sim.PeakEfficiency(r.Points)
		}
	}
	printFirst(b, tb.Render())
	b.ReportMetric(peakObserved, "peak-eff-observed")
}

// BenchmarkFig4DataAccessMethods regenerates Figure 4: staged versus
// streamed data access, runtime split into processing and overhead.
func BenchmarkFig4DataAccessMethods(b *testing.B) {
	var results []*sim.AccessResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = sim.Figure4(sim.DefaultAccessConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabulate.NewTable("Figure 4: data access methods compared",
		"mode", "runtime", "processing", "overhead", "cpu-util", "makespan")
	for _, r := range results {
		tb.Row(r.Mode, tabulate.Duration(r.MeanRuntime), tabulate.Duration(r.MeanProcessing),
			tabulate.Duration(r.MeanOverhead), fmt.Sprintf("%.2f", r.CPUUtilization),
			tabulate.Duration(r.Makespan))
	}
	printFirst(b, tb.Render())
	b.ReportMetric(results[0].MeanRuntime/results[1].MeanRuntime, "stage/stream-runtime")
}

// BenchmarkFig5ProxyCacheScalability regenerates Figure 5: mean task
// overhead versus tasks sharing one proxy, cold and hot caches.
func BenchmarkFig5ProxyCacheScalability(b *testing.B) {
	var res *sim.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sim.Figure5(sim.DefaultProxyConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabulate.NewTable("Figure 5: proxy cache scalability",
		"tasks/proxy", "cold overhead", "hot overhead")
	for i := range res.Cold {
		tb.Row(res.Cold[i].Tasks, tabulate.Duration(res.Cold[i].MeanOverhead),
			tabulate.Duration(res.Hot[i].MeanOverhead))
	}
	printFirst(b, tb.Render())
	b.ReportMetric(float64(sim.Knee(res.Cold, 0.1)), "cold-knee-tasks")
}

// BenchmarkFig6CacheModes measures the real cache implementations of
// Figure 6: concurrent Parrot instances populating a node cache under the
// five sharing configurations (three distinct mechanisms: private-locked,
// per-instance, alien).
func BenchmarkFig6CacheModes(b *testing.B) {
	repo := cvmfs.NewRepository("cms.cern.ch")
	if _, err := cvmfs.PublishRelease(repo, cvmfs.TestRelease("CMSSW_7_4_0"), stats.NewRand(1)); err != nil {
		b.Fatal(err)
	}
	origin := cvmfs.NewServer(repo)
	ts := httptest.NewServer(origin)
	defer ts.Close()

	type modeResult struct {
		label   string
		fetched int64
		waitNS  int64
	}
	var results []modeResult
	run := func(label string, mode parrot.Mode, instances int) modeResult {
		cache, err := parrot.NewCache(b.TempDir(), mode)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		out := modeResult{label: label}
		for i := 0; i < instances; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				inst, err := cache.Instance(fmt.Sprint(i))
				if err != nil {
					return
				}
				m, err := parrot.NewMount(ts.URL, "cms.cern.ch", inst, nil)
				if err != nil {
					return
				}
				if _, err := m.WarmRelease("/CMSSW_7_4_0"); err != nil {
					return
				}
				st := inst.Stats()
				mu.Lock()
				out.fetched += st.BytesFetched
				out.waitNS += int64(st.LockWait)
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		return out
	}

	const instances = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = results[:0]
		results = append(results,
			run("(a) single locked cache", parrot.ModePrivateLocked, instances),
			run("(b/c) per-instance caches", parrot.ModePerInstance, instances),
			run("(d/e) alien shared cache", parrot.ModeAlien, instances))
	}
	b.StopTimer()
	tb := tabulate.NewTable(
		fmt.Sprintf("Figure 6: cache sharing configurations (%d concurrent instances)", instances),
		"configuration", "bytes fetched", "lock wait")
	for _, r := range results {
		tb.Row(r.label, tabulate.Bytes(float64(r.fetched)),
			tabulate.Duration(float64(r.waitNS)/1e9))
	}
	printFirst(b, tb.Render())
	if len(results) == 3 && results[2].fetched > 0 {
		b.ReportMetric(float64(results[1].fetched)/float64(results[2].fetched), "per-instance/alien-bytes")
	}
}

// BenchmarkFig7MergingModes regenerates Figure 7: analysis and merge task
// completion under sequential, Hadoop, and interleaved merging.
func BenchmarkFig7MergingModes(b *testing.B) {
	var results []*sim.MergeTimeline
	var err error
	for i := 0; i < b.N; i++ {
		results, err = sim.Figure7(sim.DefaultMergeSimConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabulate.NewTable("Figure 7: merging modes compared",
		"mode", "last analysis", "last merge (bar)", "merged files", "worker time")
	for _, tl := range results {
		tb.Row(tl.Mode, tabulate.Duration(tl.LastAnalysis), tabulate.Duration(tl.LastMerge),
			tl.MergedFiles, tabulate.Duration(tl.WorkerSecondsUsed))
	}
	printFirst(b, tb.Render())
	b.ReportMetric(results[0].LastMerge-results[2].LastMerge, "seq-minus-interleaved-s")
}

// dataRunOnce caches the scaled data-processing run shared by the Figure
// 8/9/10 benchmarks (the run itself is the expensive part).
var dataRunOnce struct {
	sync.Once
	res *sim.BigRunResult
	err error
}

func dataRun() (*sim.BigRunResult, error) {
	dataRunOnce.Do(func() {
		dataRunOnce.res, dataRunOnce.err = sim.RunBig(sim.DataRunConfig(0.1))
	})
	return dataRunOnce.res, dataRunOnce.err
}

// BenchmarkFig8RuntimeBreakdown regenerates the Figure 8 table: data
// processing runtime decomposed into CPU, I/O, failed, and WQ transfer time.
func BenchmarkFig8RuntimeBreakdown(b *testing.B) {
	res, err := dataRun()
	if err != nil {
		b.Fatal(err)
	}
	var rows []struct {
		Phase    string
		Hours    float64
		Fraction float64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, r := range sim.Figure8(res) {
			rows = append(rows, struct {
				Phase    string
				Hours    float64
				Fraction float64
			}{r.Phase, r.Hours, r.Fraction})
		}
	}
	b.StopTimer()
	tb := tabulate.NewTable("Figure 8: data processing runtime (paper: 53.4/20.4/14.0/6.9/2.8 %)",
		"Task Phase", "Time (h)", "Fraction (%)")
	var cpuFrac float64
	for _, r := range rows {
		tb.Row(r.Phase, fmt.Sprintf("%.0f", r.Hours), fmt.Sprintf("%.1f", r.Fraction*100))
		if r.Phase == "Task CPU Time" {
			cpuFrac = r.Fraction
		}
	}
	printFirst(b, tb.Render())
	b.ReportMetric(cpuFrac*100, "cpu-%")
}

// BenchmarkFig9XrootdVolume regenerates Figure 9: XrootD volume of the top
// ten consumers during a four-hour window, with Lobster on top.
func BenchmarkFig9XrootdVolume(b *testing.B) {
	res, err := dataRun()
	if err != nil {
		b.Fatal(err)
	}
	var top []struct {
		Consumer string
		Bytes    int64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top = top[:0]
		for _, cv := range sim.Figure9(res, 16*3600, 20*3600) {
			top = append(top, struct {
				Consumer string
				Bytes    int64
			}{cv.Consumer, cv.Bytes})
		}
	}
	b.StopTimer()
	labels := make([]string, len(top))
	values := make([]float64, len(top))
	for i, cv := range top {
		labels[i] = cv.Consumer
		values[i] = float64(cv.Bytes)
	}
	printFirst(b, "Figure 9: XrootD data volume, top consumers (4 h window)\n"+
		tabulate.Bars(labels, values, 40))
	if len(top) > 1 && top[1].Bytes > 0 {
		b.ReportMetric(float64(top[0].Bytes)/float64(top[1].Bytes), "lobster/next-volume")
	}
}

// BenchmarkFig10DataProcessingTimeline regenerates Figure 10: the 10k-core
// data-processing run timeline (running / completed+failed / efficiency).
func BenchmarkFig10DataProcessingTimeline(b *testing.B) {
	res, err := dataRun()
	if err != nil {
		b.Fatal(err)
	}
	var d *sim.Fig10Data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err = sim.Figure10(res, 3600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tb := tabulate.NewTable("Figure 10: data processing timeline (1 h bins, 0.1 scale = 1k cores)",
		"t", "running", "completed", "failed", "cpu/wall")
	for i := 0; i < len(d.Times); i += 2 {
		tb.Row(tabulate.Duration(d.Times[i]), fmt.Sprintf("%.0f", d.Running[i]),
			d.Completed[i], d.Failed[i], fmt.Sprintf("%.2f", d.Eff[i]))
	}
	printFirst(b, tb.Render())
	_, effIn, effOut := d.OutageWindowStats(res.Config.WANOutageStart, res.Config.WANOutageEnd)
	b.ReportMetric(effOut, "steady-efficiency")
	b.ReportMetric(effOut-effIn, "outage-dip")
}

// BenchmarkFig11SimulationTimeline regenerates Figure 11: the 20k-core
// simulation run (running / setup time / stage-out / failure codes).
func BenchmarkFig11SimulationTimeline(b *testing.B) {
	var res *sim.BigRunResult
	var d *sim.Fig11Data
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sim.RunBig(sim.SimRunConfig(0.1))
		if err != nil {
			b.Fatal(err)
		}
		d, err = sim.Figure11(res, 1800)
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabulate.NewTable("Figure 11: simulation run timeline (30 min bins, 0.1 scale = 2k cores)",
		"t", "running", "setup", "stage-out", "failures(code:count)")
	for i := range d.Times {
		codeStr := ""
		for _, c := range d.SortedCodes() {
			if n := d.FailureCodes[i][c]; n > 0 {
				codeStr += fmt.Sprintf("%d:%d ", c, n)
			}
		}
		tb.Row(tabulate.Duration(d.Times[i]), fmt.Sprintf("%.0f", d.Running[i]),
			tabulate.Duration(d.SetupMean[i]), tabulate.Duration(d.StageOut[i]), codeStr)
	}
	printFirst(b, tb.Render())
	_, peak := d.PeakSetup()
	b.ReportMetric(peak/60, "peak-setup-min")
}

// BenchmarkFig11SimulationTimelineTelemetry runs the same Figure 11 model
// with a telemetry registry attached, so the real plane's series are
// recorded on the simulated clock. Compare against
// BenchmarkFig11SimulationTimeline for the instrumentation cost.
func BenchmarkFig11SimulationTimelineTelemetry(b *testing.B) {
	var reg *telemetry.Registry
	var res *sim.BigRunResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := sim.SimRunConfig(0.1)
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
		res, err = sim.RunBig(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range reg.Snapshot().Series {
		switch s.Name {
		case "lobster_wq_tasks_done_total":
			if int(s.Value) != res.TasksDone {
				b.Fatalf("telemetry drifted from result: %v != %d", s.Value, res.TasksDone)
			}
			b.ReportMetric(s.Value, "tasks-done")
		case "lobster_squid_hit_ratio":
			b.ReportMetric(s.Value, "squid-hit-ratio")
		}
	}
}

// --- Ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblationAdaptiveTaskSizing compares static task sizing against
// the rate-adaptive controller under a mid-run eviction regime shift (the
// paper's §8 future-work item).
func BenchmarkAblationAdaptiveTaskSizing(b *testing.B) {
	var results []*sim.AdaptiveResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = sim.CompareAdaptive(sim.DefaultPhaseShiftConfig(), 18)
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabulate.NewTable("Ablation: task sizing under an eviction regime shift",
		"sizer", "efficiency", "evictions", "mean size", "final size")
	for _, r := range results {
		tb.Row(r.Sizer, fmt.Sprintf("%.3f", r.Efficiency), r.Evictions,
			fmt.Sprintf("%.1f", r.MeanSize), r.FinalSize)
	}
	printFirst(b, tb.Render())
	b.ReportMetric(results[1].Efficiency-results[0].Efficiency, "adaptive-gain")
}

// BenchmarkAblationChirpServers sweeps the storage-element capacity (the
// paper's remedy for periodic stage-out overload: "deploying more cache and
// Chirp resources") and measures the worst per-bin stage-out time.
func BenchmarkAblationChirpServers(b *testing.B) {
	type point struct {
		servers     int
		maxStageOut float64
	}
	grid := []int{1, 2, 4}
	points := make([]point, len(grid))
	for i := 0; i < b.N; i++ {
		// Each grid point is an independent model run with its own Sim and
		// Rand; run the sweep concurrently, placing results by index.
		var wg sync.WaitGroup
		errs := make([]error, len(grid))
		for gi, servers := range grid {
			wg.Add(1)
			go func(gi, servers int) {
				defer wg.Done()
				cfg := sim.SimRunConfig(0.05)
				cfg.ChirpBandwidth *= float64(servers)
				cfg.ChirpSlots *= servers
				res, err := sim.RunBig(cfg)
				if err != nil {
					errs[gi] = err
					return
				}
				d, err := sim.Figure11(res, 1800)
				if err != nil {
					errs[gi] = err
					return
				}
				maxOut := 0.0
				for _, s := range d.StageOut {
					if s > maxOut {
						maxOut = s
					}
				}
				points[gi] = point{servers, maxOut}
			}(gi, servers)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	tb := tabulate.NewTable("Ablation: chirp servers vs worst stage-out time",
		"servers", "max stage-out")
	for _, p := range points {
		tb.Row(p.servers, tabulate.Duration(p.maxStageOut))
	}
	printFirst(b, tb.Render())
}

// BenchmarkAblationProxyCount sweeps the number of squid proxies serving
// the simulation run's cold start (the paper's remedy for Figure 11's
// setup-time peak).
func BenchmarkAblationProxyCount(b *testing.B) {
	type point struct {
		proxies int
		peakMin float64
		done    int
	}
	grid := []int{1, 2, 4}
	points := make([]point, len(grid))
	for i := 0; i < b.N; i++ {
		// Independent model runs: sweep the grid concurrently (see the chirp
		// ablation above for the pattern).
		var wg sync.WaitGroup
		errs := make([]error, len(grid))
		for gi, n := range grid {
			wg.Add(1)
			go func(gi, n int) {
				defer wg.Done()
				cfg := sim.SimRunConfig(0.05)
				cfg.ProxyBandwidth *= float64(n)
				res, err := sim.RunBig(cfg)
				if err != nil {
					errs[gi] = err
					return
				}
				d, err := sim.Figure11(res, 1800)
				if err != nil {
					errs[gi] = err
					return
				}
				_, peak := d.PeakSetup()
				points[gi] = point{n, peak / 60, res.TasksDone}
			}(gi, n)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	tb := tabulate.NewTable("Ablation: squid proxies vs cold-start setup peak",
		"proxies", "peak setup (min)", "tasks done")
	for _, p := range points {
		tb.Row(p.proxies, fmt.Sprintf("%.0f", p.peakMin), p.done)
	}
	printFirst(b, tb.Render())
}

// BenchmarkAblationForemanFanout compares direct master→worker distribution
// against a foreman hierarchy for tasks with a large shared sandbox — the
// load the paper inserts foremen to spread.
func BenchmarkAblationForemanFanout(b *testing.B) {
	sandbox := make([]byte, 1<<20)
	for i := range sandbox {
		sandbox[i] = byte(i)
	}
	reg := wq.Registry{
		"touch": func(ctx *wq.ExecContext) error {
			return os.WriteFile(filepath.Join(ctx.Sandbox, "out"), []byte("x"), 0o644)
		},
	}
	const tasks = 48
	runTopology := func(foremen int) time.Duration {
		master, err := wq.NewMaster("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer master.Close()
		var cleanup []func() error
		defer func() {
			for _, c := range cleanup {
				c()
			}
		}()
		if foremen == 0 {
			for i := 0; i < 4; i++ {
				w, err := wq.NewWorker(master.Addr(), fmt.Sprintf("w%d", i), 2, b.TempDir(), reg)
				if err != nil {
					b.Fatal(err)
				}
				cleanup = append(cleanup, w.Close)
			}
		} else {
			for f := 0; f < foremen; f++ {
				fm, err := wq.NewForeman(master.Addr(), "127.0.0.1:0", fmt.Sprintf("f%d", f), 4)
				if err != nil {
					b.Fatal(err)
				}
				cleanup = append(cleanup, fm.Close)
				for i := 0; i < 4/foremen; i++ {
					w, err := wq.NewWorker(fm.Addr(), fmt.Sprintf("f%dw%d", f, i), 2, b.TempDir(), reg)
					if err != nil {
						b.Fatal(err)
					}
					cleanup = append(cleanup, w.Close)
				}
			}
		}
		start := time.Now()
		for i := 0; i < tasks; i++ {
			master.Submit(&wq.Task{
				Func:    "touch",
				Inputs:  []wq.FileSpec{{Name: "sandbox.tar", Data: sandbox, Cacheable: true}},
				Outputs: []string{"out"},
			})
		}
		if got := master.Drain(tasks, 60*time.Second); len(got) != tasks {
			b.Fatalf("completed %d/%d tasks", len(got), tasks)
		}
		return time.Since(start)
	}
	type point struct {
		label   string
		elapsed time.Duration
	}
	var points []point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = points[:0]
		points = append(points,
			point{"direct (4 workers)", runTopology(0)},
			point{"2 foremen x 2 workers", runTopology(2)})
	}
	b.StopTimer()
	tb := tabulate.NewTable("Ablation: foreman fan-out (1 MiB shared sandbox)",
		"topology", "makespan")
	for _, p := range points {
		tb.Row(p.label, p.elapsed.Round(time.Millisecond).String())
	}
	printFirst(b, tb.Render())
}

// BenchmarkAblationTaskBuffer sweeps Lobster's submitted-task buffer depth
// (the paper fixes 400) on a small real-plane workflow.
func BenchmarkAblationTaskBuffer(b *testing.B) {
	reg := wq.Registry{
		"quick": func(ctx *wq.ExecContext) error {
			return os.WriteFile(filepath.Join(ctx.Sandbox, "report.json"),
				wrapper.Run(wrapper.Step{Segment: wrapper.SegExecute}).Encode(), 0o644)
		},
	}
	runBuffer := func(depth int) time.Duration {
		master, err := wq.NewMaster("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer master.Close()
		w, err := wq.NewWorker(master.Addr(), "w0", 4, b.TempDir(), reg)
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		svc := core.Services{Master: master, DBS: dbs.NewService()}
		ds, err := dbs.Generate(dbs.GenConfig{
			Name: "/Bench/Buffer/AOD", Files: 32, EventsPerFile: 4, LumisPerFile: 1,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		svc.DBS.Register(ds)
		l, err := core.New(core.Config{
			Name: fmt.Sprintf("buf%d", depth), Kind: core.KindAnalysis,
			Dataset: ds.Name, TaskBuffer: depth, AnalysisFunc: "quick",
		}, svc)
		if err != nil {
			b.Fatal(err)
		}
		l.SetResultTimeout(30 * time.Second)
		start := time.Now()
		rep, err := l.Run()
		if err != nil || !rep.Succeeded() {
			b.Fatalf("run failed: %v %+v", err, rep)
		}
		return time.Since(start)
	}
	type point struct {
		depth   int
		elapsed time.Duration
	}
	var points []point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = points[:0]
		for _, d := range []int{1, 8, 400} {
			points = append(points, point{d, runBuffer(d)})
		}
	}
	b.StopTimer()
	tb := tabulate.NewTable("Ablation: task buffer depth (32 tasks, one 4-core worker)",
		"buffer", "makespan")
	for _, p := range points {
		tb.Row(p.depth, p.elapsed.Round(time.Millisecond).String())
	}
	printFirst(b, tb.Render())
}
