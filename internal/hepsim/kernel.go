// Package hepsim provides the synthetic HEP application and the worker-side
// task scaffolding that stands in for CMSSW: an event-processing kernel with
// a controllable CPU/byte ratio, an analysis executor that reads LHC-style
// event data (streamed over the xrootd federation or staged ahead of time),
// and a simulation executor that generates events and overlays pile-up.
//
// Executors follow the paper's wrapper structure (package wrapper): every
// task runs the same segmented pre/post-processing and returns a Report.
package hepsim

import (
	"encoding/binary"
	"fmt"

	"lobster/internal/stats"
)

// DefaultEventSize matches the paper's ~100 kB per event. Tests use smaller
// events to stay fast.
const DefaultEventSize = 100 << 10

// Kernel is the synthetic per-event computation. WorkFactor scales CPU cost
// per byte: each event is hashed WorkFactor times, and an 8-byte digest per
// pass is emitted, so output size = 8*WorkFactor per event — the order-of-
// magnitude reduction typical of HEP analysis.
type Kernel struct {
	EventSize  int
	WorkFactor int
}

// NewKernel returns a kernel with validated parameters.
func NewKernel(eventSize, workFactor int) (*Kernel, error) {
	if eventSize <= 0 {
		return nil, fmt.Errorf("hepsim: event size %d", eventSize)
	}
	if workFactor <= 0 {
		workFactor = 1
	}
	return &Kernel{EventSize: eventSize, WorkFactor: workFactor}, nil
}

// fnv1a computes a 64-bit FNV-1a hash seeded so repeated passes differ.
func fnv1a(seed uint64, data []byte) uint64 {
	const prime = 1099511628211
	h := seed ^ 14695981039346656037
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// ProcessEvent reduces one event to its digests.
func (k *Kernel) ProcessEvent(event []byte) []byte {
	out := make([]byte, 0, 8*k.WorkFactor)
	var d [8]byte
	for pass := 0; pass < k.WorkFactor; pass++ {
		h := fnv1a(uint64(pass), event)
		binary.LittleEndian.PutUint64(d[:], h)
		out = append(out, d[:]...)
	}
	return out
}

// Events returns how many whole events data contains.
func (k *Kernel) Events(dataLen int) int { return dataLen / k.EventSize }

// ProcessAll reduces every whole event in data, returning the concatenated
// digests and the number of events processed.
func (k *Kernel) ProcessAll(data []byte) ([]byte, int) {
	n := k.Events(len(data))
	out := make([]byte, 0, n*8*k.WorkFactor)
	for i := 0; i < n; i++ {
		out = append(out, k.ProcessEvent(data[i*k.EventSize:(i+1)*k.EventSize])...)
	}
	return out, n
}

// GenerateEvents synthesises n events of pseudo-random detector data, the
// role of the Monte Carlo generation step in simulation tasks. Deterministic
// for a given rng state.
func (k *Kernel) GenerateEvents(n int, rng *stats.Rand) []byte {
	data := make([]byte, n*k.EventSize)
	for i := 0; i < len(data); i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8 && i+j < len(data); j++ {
			data[i+j] = byte(v >> (8 * j))
		}
	}
	return data
}

// OverlayPileup mixes pile-up (noise) events into signal events in place:
// each signal event is XOR-combined with a pile-up event chosen round-robin.
// The pile-up sample is the small external input simulation tasks stream in.
func (k *Kernel) OverlayPileup(signal, pileup []byte) error {
	if len(pileup) < k.EventSize {
		return fmt.Errorf("hepsim: pile-up sample smaller than one event (%d < %d)", len(pileup), k.EventSize)
	}
	pileupEvents := k.Events(len(pileup))
	for i := 0; i < k.Events(len(signal)); i++ {
		pu := pileup[(i%pileupEvents)*k.EventSize : (i%pileupEvents+1)*k.EventSize]
		sig := signal[i*k.EventSize : (i+1)*k.EventSize]
		for j := range sig {
			sig[j] ^= pu[j]
		}
	}
	return nil
}
