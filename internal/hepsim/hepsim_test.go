package hepsim

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lobster/internal/chirp"
	"lobster/internal/cvmfs"
	"lobster/internal/frontier"
	"lobster/internal/parrot"
	"lobster/internal/squid"
	"lobster/internal/stats"
	"lobster/internal/wq"
	"lobster/internal/wrapper"
	"lobster/internal/xrootd"
)

func TestKernelDeterministicReduction(t *testing.T) {
	k, err := NewKernel(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("event"), 64) // 320 bytes = 5 events
	out1, n1 := k.ProcessAll(data)
	out2, n2 := k.ProcessAll(data)
	if n1 != 5 || n2 != 5 {
		t.Fatalf("events = %d, %d", n1, n2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatal("kernel not deterministic")
	}
	if len(out1) != 5*8*2 {
		t.Fatalf("output size = %d", len(out1))
	}
	// Reduction: output much smaller than input.
	if len(out1) >= len(data) {
		t.Error("no reduction")
	}
}

func TestKernelDistinctEventsDistinctDigests(t *testing.T) {
	k, _ := NewKernel(32, 1)
	a := k.ProcessEvent(bytes.Repeat([]byte{1}, 32))
	b := k.ProcessEvent(bytes.Repeat([]byte{2}, 32))
	if bytes.Equal(a, b) {
		t.Error("distinct events share a digest")
	}
}

func TestKernelValidation(t *testing.T) {
	if _, err := NewKernel(0, 1); err == nil {
		t.Error("zero event size accepted")
	}
	k, _ := NewKernel(16, 0)
	if k.WorkFactor != 1 {
		t.Error("work factor not defaulted")
	}
}

func TestGenerateAndOverlay(t *testing.T) {
	k, _ := NewKernel(32, 1)
	rng := stats.NewRand(1)
	signal := k.GenerateEvents(10, rng)
	if len(signal) != 320 {
		t.Fatalf("generated %d bytes", len(signal))
	}
	orig := append([]byte(nil), signal...)
	pileup := k.GenerateEvents(3, stats.NewRand(2))
	if err := k.OverlayPileup(signal, pileup); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(signal, orig) {
		t.Error("overlay changed nothing")
	}
	// Overlay twice with same pile-up restores the signal (XOR).
	k.OverlayPileup(signal, pileup)
	if !bytes.Equal(signal, orig) {
		t.Error("double overlay not identity")
	}
	if err := k.OverlayPileup(signal, []byte("tiny")); err == nil {
		t.Error("undersized pile-up accepted")
	}
}

// fakeFile implements RemoteFile over a byte slice.
type fakeFile struct{ data []byte }

func (f *fakeFile) Size() int64 { return int64(len(f.data)) }
func (f *fakeFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	return copy(p, f.data[off:]), nil
}
func (f *fakeFile) Close() error { return nil }

// testServices spins up the full real-plane service stack: cvmfs behind
// squid, frontier behind the same squid, an xrootd federation, and a chirp
// storage element.
type testServices struct {
	env       *Env
	chirpFS   *chirp.LocalFS
	dataSrv   *xrootd.DataServer
	redir     *xrootd.Redirector
	dash      *xrootd.Dashboard
	proxy     *squid.Proxy
	cvmfsRepo *cvmfs.Repository
}

func startServices(t *testing.T) *testServices {
	t.Helper()
	// CVMFS origin with a small release.
	repo := cvmfs.NewRepository("cms.cern.ch")
	if _, err := cvmfs.PublishRelease(repo, cvmfs.TestRelease("CMSSW_7_4_0"), stats.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	// Frontier behind the same origin mux.
	cond := frontier.NewService()
	cond.Publish(frontier.Payload{Tag: "align", FirstRun: 1, LastRun: 1000000, Data: []byte("calibration")})
	mux := httptest.NewServer(muxFor(repo, cond))
	t.Cleanup(mux.Close)
	proxy, err := squid.New(mux.URL, squid.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)

	// XrootD federation.
	red := xrootd.NewRedirector()
	ds, err := xrootd.NewDataServer("T2_US_Test", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	dash := xrootd.NewDashboard()

	// Chirp storage element.
	fs, err := chirp.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	se, err := chirp.NewServer(fs, "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { se.Close() })

	cache, err := parrot.NewCache(t.TempDir(), parrot.ModeAlien)
	if err != nil {
		t.Fatal(err)
	}
	cl := &xrootd.Client{Redirector: red, Dashboard: dash, Consumer: "lobster-test"}
	env := &Env{
		ProxyURL:      proxySrv.URL,
		Repo:          "cms.cern.ch",
		ReleasePath:   "/CMSSW_7_4_0",
		Cache:         cache,
		ChirpAddr:     se.Addr(),
		ConditionsTag: "align",
		Open: func(lfn string) (RemoteFile, error) {
			f, err := cl.Open(lfn)
			if err != nil {
				return nil, err
			}
			return f, nil
		},
	}
	// Registered last so it runs first: the env's pooled chirp
	// connections drop before the storage element shuts down.
	t.Cleanup(func() { env.Close() })
	return &testServices{env: env, chirpFS: fs, dataSrv: ds, redir: red, dash: dash, proxy: proxy, cvmfsRepo: repo}
}

// muxFor routes cvmfs and frontier paths on one origin.
func muxFor(repo *cvmfs.Repository, cond *frontier.Service) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/frontier/", cond)
	mux.Handle("/", cvmfs.NewServer(repo))
	return mux
}

// readSandboxReport loads the wrapper report a task left in its sandbox.
func readSandboxReport(sandbox string) ([]byte, error) {
	return os.ReadFile(filepath.Join(sandbox, ReportFile))
}

// newFastTimeoutClient returns an HTTP client that gives up quickly, so
// dead-proxy tests do not stall.
func newFastTimeoutClient() *http.Client {
	return &http.Client{Timeout: 500 * time.Millisecond}
}

func runTask(t *testing.T, exec wq.Executor, task *wq.Task) *wrapper.Report {
	t.Helper()
	sandbox := t.TempDir()
	err := exec(&wq.ExecContext{Task: task, Sandbox: sandbox, WorkerName: "test"})
	repData, rerr := readSandboxReport(sandbox)
	if rerr != nil {
		t.Fatalf("no report: %v (exec err: %v)", rerr, err)
	}
	rep, derr := wrapper.Decode(repData)
	if derr != nil {
		t.Fatal(derr)
	}
	if (err != nil) != (rep.ExitCode != 0) {
		t.Fatalf("exec err %v inconsistent with report %+v", err, rep)
	}
	return rep
}

func TestAnalysisStreamingEndToEnd(t *testing.T) {
	svc := startServices(t)
	// Publish event data into the federation: 50 events of 256 B.
	k, _ := NewKernel(256, 1)
	data := k.GenerateEvents(50, stats.NewRand(3))
	svc.redir.Register("/store/data/f0.root", svc.dataSrv.Store("/store/data/f0.root", data))

	exec := Analysis(svc.env)
	rep := runTask(t, exec, &wq.Task{
		ID: 1,
		Args: map[string]string{
			"lfn": "/store/data/f0.root", "mode": "stream",
			"output": "/out/f0.reduced", "run": "42",
			"event_size": "256", "work": "1",
		},
	})
	if rep.ExitCode != 0 {
		t.Fatalf("analysis failed: %+v", rep)
	}
	if rep.Metric("events") != 50 {
		t.Errorf("events = %g", rep.Metric("events"))
	}
	if rep.Metric("bytes_in") != float64(len(data)) {
		t.Errorf("bytes_in = %g, want %d", rep.Metric("bytes_in"), len(data))
	}
	// Output landed on the storage element with the expected content.
	want, _ := k.ProcessAll(data)
	got, err := svc.chirpFS.ReadFile("/out/f0.reduced")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("stage-out content wrong: %v", err)
	}
	// Dashboard accounted the streamed volume.
	if svc.dash.Volume("lobster-test") != int64(len(data)) {
		t.Errorf("dashboard volume = %d", svc.dash.Volume("lobster-test"))
	}
	// Software came through the proxy.
	if svc.proxy.Stats().Misses == 0 {
		t.Error("proxy never consulted for software")
	}
}

func TestAnalysisStageModeMatchesStreaming(t *testing.T) {
	svc := startServices(t)
	k, _ := NewKernel(128, 1)
	data := k.GenerateEvents(20, stats.NewRand(4))
	svc.redir.Register("/store/s.root", svc.dataSrv.Store("/store/s.root", data))

	exec := Analysis(svc.env)
	repStream := runTask(t, exec, &wq.Task{ID: 2, Args: map[string]string{
		"lfn": "/store/s.root", "mode": "stream", "output": "/out/stream",
		"event_size": "128"}})
	repStage := runTask(t, exec, &wq.Task{ID: 3, Args: map[string]string{
		"lfn": "/store/s.root", "mode": "stage", "output": "/out/stage",
		"event_size": "128"}})
	if repStream.ExitCode != 0 || repStage.ExitCode != 0 {
		t.Fatalf("reports: %+v %+v", repStream, repStage)
	}
	a, _ := svc.chirpFS.ReadFile("/out/stream")
	b, _ := svc.chirpFS.ReadFile("/out/stage")
	if !bytes.Equal(a, b) {
		t.Error("stream and stage outputs differ")
	}
	// In stage mode the bytes land during stage_in; streaming during execute.
	if repStage.Metric("bytes_in") != float64(len(data)) {
		t.Errorf("stage bytes_in = %g", repStage.Metric("bytes_in"))
	}
	var stageInSeg, execSeg wrapper.SegmentReport
	for _, s := range repStage.Segments {
		if s.Segment == wrapper.SegStageIn {
			stageInSeg = s
		}
	}
	for _, s := range repStream.Segments {
		if s.Segment == wrapper.SegExecute {
			execSeg = s
		}
	}
	if stageInSeg.Metrics["bytes_in"] == 0 {
		t.Error("stage mode moved no bytes in stage_in segment")
	}
	if execSeg.Metrics["bytes_in"] == 0 {
		t.Error("stream mode moved no bytes in execute segment")
	}
}

func TestAnalysisFailureSegmentAttribution(t *testing.T) {
	svc := startServices(t)
	exec := Analysis(svc.env)
	// Missing LFN → stage_in failure with its code.
	rep := runTask(t, exec, &wq.Task{ID: 4, Args: map[string]string{
		"lfn": "/store/does-not-exist.root"}})
	if rep.Failed != wrapper.SegStageIn || rep.ExitCode != wrapper.SegStageIn.Code() {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAnalysisSquidOutageIsSoftwareFailure(t *testing.T) {
	svc := startServices(t)
	// Point the env at a dead proxy: software setup must fail with its code.
	env := svc.env.cloneConfig()
	env.ProxyURL = "http://127.0.0.1:1" // nothing listens
	env.HTTPClient = newFastTimeoutClient()
	exec := Analysis(env)
	rep := runTask(t, exec, &wq.Task{ID: 5, Args: map[string]string{"lfn": "/x"}})
	if rep.Failed != wrapper.SegSoftware {
		t.Fatalf("failed segment = %s", rep.Failed)
	}
}

func TestSimulationEndToEnd(t *testing.T) {
	svc := startServices(t)
	// Pile-up sample on the local storage element.
	k, _ := NewKernel(128, 1)
	pileup := k.GenerateEvents(4, stats.NewRand(9))
	if err := svc.chirpFS.WriteFile("/pileup/minbias.root", pileup); err != nil {
		t.Fatal(err)
	}
	exec := Simulation(svc.env)
	rep := runTask(t, exec, &wq.Task{ID: 6, Args: map[string]string{
		"events": "25", "seed": "7", "pileup": "/pileup/minbias.root",
		"output": "/out/sim0.root", "event_size": "128",
	}})
	if rep.ExitCode != 0 {
		t.Fatalf("simulation failed: %+v", rep)
	}
	if rep.Metric("events") != 25 {
		t.Errorf("events = %g", rep.Metric("events"))
	}
	if rep.Metric("bytes_in") != float64(len(pileup)) {
		t.Errorf("pile-up bytes = %g", rep.Metric("bytes_in"))
	}
	out, err := svc.chirpFS.ReadFile("/out/sim0.root")
	if err != nil || len(out) == 0 {
		t.Fatalf("simulation output missing: %v", err)
	}
	// Deterministic given the seed.
	rep2 := runTask(t, exec, &wq.Task{ID: 7, Args: map[string]string{
		"events": "25", "seed": "7", "pileup": "/pileup/minbias.root",
		"output": "/out/sim1.root", "event_size": "128",
	}})
	if rep2.ExitCode != 0 {
		t.Fatal("second simulation failed")
	}
	out2, _ := svc.chirpFS.ReadFile("/out/sim1.root")
	if !bytes.Equal(out, out2) {
		t.Error("simulation not deterministic for fixed seed")
	}
}

func TestSimulationRequiresEvents(t *testing.T) {
	svc := startServices(t)
	exec := Simulation(svc.env)
	rep := runTask(t, exec, &wq.Task{ID: 8, Args: map[string]string{}})
	if rep.Failed != wrapper.SegExecute {
		t.Fatalf("report = %+v", rep)
	}
}

func TestProcessStreamingMatchesProcessAll(t *testing.T) {
	k, _ := NewKernel(64, 2)
	data := k.GenerateEvents(200, stats.NewRand(5))
	whole, nWhole := k.ProcessAll(data)
	streamed, nStream, bytesIn, err := processStreaming(k, &fakeFile{data: data}, 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if nWhole != nStream || !bytes.Equal(whole, streamed) {
		t.Error("streaming and staged reductions differ")
	}
	if bytesIn != int64(len(data)) {
		t.Errorf("streamed %d bytes of %d", bytesIn, len(data))
	}
}

func TestEventRangeSelection(t *testing.T) {
	k, _ := NewKernel(64, 1)
	size := int64(64 * 100) // 100 events
	cases := []struct {
		skip, max      int
		wantLo, wantHi int64
	}{
		{0, 0, 0, 6400},       // everything
		{10, 0, 640, 6400},    // skip 10, to EOF
		{10, 20, 640, 1920},   // middle window
		{90, 20, 5760, 6400},  // clipped at EOF
		{200, 10, 6400, 6400}, // fully past EOF
	}
	for _, c := range cases {
		args := map[string]string{}
		if c.skip != 0 {
			args["skip_events"] = fmt.Sprint(c.skip)
		}
		if c.max != 0 {
			args["max_events"] = fmt.Sprint(c.max)
		}
		lo, hi := eventRange(k, size, args)
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("eventRange(skip=%d,max=%d) = [%d,%d), want [%d,%d)",
				c.skip, c.max, lo, hi, c.wantLo, c.wantHi)
		}
	}
}

func TestAnalysisSubRangeProcessesOnlyItsEvents(t *testing.T) {
	svc := startServices(t)
	k, _ := NewKernel(128, 1)
	data := k.GenerateEvents(40, stats.NewRand(21))
	svc.redir.Register("/store/ranged.root", svc.dataSrv.Store("/store/ranged.root", data))
	exec := Analysis(svc.env)
	rep := runTask(t, exec, &wq.Task{ID: 30, Args: map[string]string{
		"lfn": "/store/ranged.root", "mode": "stream",
		"skip_events": "10", "max_events": "15",
		"output": "/out/ranged", "event_size": "128",
	}})
	if rep.ExitCode != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Metric("events") != 15 {
		t.Errorf("events = %g, want 15", rep.Metric("events"))
	}
	// The output must equal the reduction of exactly events 10..24.
	want, _ := k.ProcessAll(data[10*128 : 25*128])
	got, err := svc.chirpFS.ReadFile("/out/ranged")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("sub-range output wrong: %v", err)
	}
	// Stage mode over the same range produces identical output.
	rep = runTask(t, exec, &wq.Task{ID: 31, Args: map[string]string{
		"lfn": "/store/ranged.root", "mode": "stage",
		"skip_events": "10", "max_events": "15",
		"output": "/out/ranged-staged", "event_size": "128",
	}})
	if rep.ExitCode != 0 {
		t.Fatal("staged sub-range failed")
	}
	got2, _ := svc.chirpFS.ReadFile("/out/ranged-staged")
	if !bytes.Equal(got2, want) {
		t.Fatal("staged sub-range differs from streamed")
	}
}
