package hepsim

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"lobster/internal/chirp"
	"lobster/internal/faultinject"
	"lobster/internal/frontier"
	"lobster/internal/parrot"
	"lobster/internal/retry"
	"lobster/internal/stats"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
	"lobster/internal/wq"
	"lobster/internal/wrapper"
)

// ReportFile is the sandbox file name the wrapper report is written to;
// tasks declare it as an output so the report travels back to the master.
const ReportFile = "report.json"

// Env describes the services a worker-side executor uses. One Env is shared
// by all tasks on a worker process; the parrot cache in particular is the
// node-local cache all slots share.
type Env struct {
	// ProxyURL is the squid (or stratum) base URL for CVMFS and Frontier.
	ProxyURL string
	// Repo is the CVMFS repository name, e.g. "cms.cern.ch".
	Repo string
	// ReleasePath is the software release to warm, e.g. "/CMSSW_7_4_0".
	ReleasePath string
	// Cache is the node-local parrot cache shared by all task slots.
	Cache *parrot.Cache
	// Open streams an input LFN (nil disables xrootd access). It returns a
	// reader-like handle; see OpenFunc.
	Open OpenFunc
	// OpenTraced, when set, is preferred over Open and receives the
	// task's tracer and the current segment's span context, so the
	// data-access client can chain its spans (replica choice, bytes)
	// under the task trace.
	OpenTraced func(lfn string, tr *trace.Tracer, ctx trace.Context) (RemoteFile, error)
	// ChirpAddr is the storage-element chirp server for outputs (and
	// pile-up inputs for simulation).
	ChirpAddr string
	// ConditionsTag is the Frontier tag tasks fetch (empty disables).
	ConditionsTag string
	// HTTPClient overrides the default client (tests inject one).
	HTTPClient *http.Client
	// Fault, when non-nil, arms per-segment fault hooks in the wrapper
	// (component "wrapper", op = segment name) and wires chirp stage-out
	// and pile-up connections into the fault plane.
	Fault *faultinject.Injector
	// ChirpRetry bounds redial-and-retry for the executors' chirp
	// operations (stage-out put, pile-up get). The zero Policy keeps the
	// old single-attempt behaviour.
	ChirpRetry retry.Policy
	// Telemetry, when non-nil, counts the executors' chirp payload bytes
	// under lobster_bytes_total{component="chirp_client"} and
	// instruments the shared connection pool.
	Telemetry *telemetry.Registry

	// poolOnce/pool lazily build the chirp connection pool all task
	// slots of this worker process share: stage-out waves reuse warm
	// connections instead of dialing per segment.
	poolOnce sync.Once
	pool     *chirp.Pool
}

// chirpPool returns the Env's shared connection pool, building it on
// first use (ChirpAddr must be set by then).
func (e *Env) chirpPool() *chirp.Pool {
	e.poolOnce.Do(func() {
		e.pool = chirp.NewPool(chirp.PoolOptions{
			Addr:        e.ChirpAddr,
			Size:        8,
			DialTimeout: 30 * time.Second,
			Retry:       e.ChirpRetry,
			Fault:       e.Fault,
			Telemetry:   e.Telemetry,
		})
	})
	return e.pool
}

// cloneConfig returns a fresh Env with the same configuration and none
// of the lazily-built pool state. Env holds a sync.Once, so it must not
// be copied by value; derive per-task variants through this instead.
func (e *Env) cloneConfig() *Env {
	return &Env{
		ProxyURL:      e.ProxyURL,
		Repo:          e.Repo,
		ReleasePath:   e.ReleasePath,
		Cache:         e.Cache,
		Open:          e.Open,
		OpenTraced:    e.OpenTraced,
		ChirpAddr:     e.ChirpAddr,
		ConditionsTag: e.ConditionsTag,
		HTTPClient:    e.HTTPClient,
		Fault:         e.Fault,
		ChirpRetry:    e.ChirpRetry,
		Telemetry:     e.Telemetry,
	}
}

// Close releases the Env's pooled chirp connections.
func (e *Env) Close() error {
	if e.pool != nil {
		return e.pool.Close()
	}
	return nil
}

// OpenFunc opens an LFN for reading; the returned handle reports its size
// and serves positioned reads. *xrootd.File satisfies this via an adapter
// in the core package; tests can stub it.
type OpenFunc func(lfn string) (RemoteFile, error)

// RemoteFile is the minimal streaming-read interface executors need.
type RemoteFile interface {
	Size() int64
	ReadAt(p []byte, off int64) (int, error)
	Close() error
}

// open resolves an LFN via OpenTraced when available, else Open.
func (e *Env) open(lfn string, c *wrapper.StepContext) (RemoteFile, error) {
	if e.OpenTraced != nil {
		return e.OpenTraced(lfn, c.Tracer, c.Trace)
	}
	if e.Open != nil {
		return e.Open(lfn)
	}
	return nil, fmt.Errorf("no data access configured")
}

// Args understood by the executors (all optional unless stated):
//
//	lfn         analysis: input logical file name (required)
//	mode        analysis: "stream" (default) or "stage"
//	output      chirp path for the task's output file (required if ChirpAddr set)
//	run         experiment run number, for conditions lookup
//	event_size  kernel event size in bytes
//	work        kernel work factor
//	events      simulation: number of events to generate (required)
//	pileup      simulation: chirp path of the pile-up sample
//	seed        simulation: RNG seed
//	delay_ms    testing: artificial per-segment delay

// Analysis returns the executor for data-analysis tasks: software setup via
// parrot, conditions via frontier, event data via xrootd (streamed or
// staged), reduction via the kernel, stage-out via chirp.
func Analysis(env *Env) wq.Executor {
	return func(ctx *wq.ExecContext) error {
		rep, outName := runAnalysis(env, ctx)
		if err := os.WriteFile(filepath.Join(ctx.Sandbox, ReportFile), rep.Encode(), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		_ = outName
		if rep.ExitCode != 0 {
			return &wq.ExitError{Code: rep.ExitCode, Msg: string(rep.Failed)}
		}
		return nil
	}
}

func runAnalysis(env *Env, ctx *wq.ExecContext) (*wrapper.Report, string) {
	args := ctx.Task.Args
	var (
		kernel  *Kernel
		mount   *parrot.Mount
		input   []byte     // staged content (stage mode)
		file    RemoteFile // open handle (stream mode)
		output  []byte     // reduced result
		events  int
		delayMS = argInt(args, "delay_ms", 0)
	)
	rep := wrapper.RunInjected(env.Fault, ctx.Tracer, ctx.Trace,
		wrapper.Step{Segment: wrapper.SegEnvInit, Run: func(c *wrapper.StepContext) error {
			sleepMS(delayMS)
			var err error
			kernel, err = NewKernel(argInt(args, "event_size", DefaultEventSize), argInt(args, "work", 1))
			if err != nil {
				return err
			}
			// Machine compatibility: the sandbox must be writable.
			probe := filepath.Join(ctx.Sandbox, ".probe")
			if err := os.WriteFile(probe, nil, 0o644); err != nil {
				return fmt.Errorf("sandbox not writable: %w", err)
			}
			return os.Remove(probe)
		}},
		wrapper.Step{Segment: wrapper.SegSoftware, Run: func(c *wrapper.StepContext) error {
			if env.ProxyURL == "" {
				return nil // software delivery disabled (unit tests)
			}
			inst, err := env.Cache.Instance(fmt.Sprintf("task-%d", ctx.Task.ID))
			if err != nil {
				return err
			}
			mount, err = parrot.NewMount(env.ProxyURL, env.Repo, inst,
				trace.WrapClient(env.HTTPClient, c.Trace))
			if err != nil {
				return err
			}
			warm, err := mount.WarmRelease(env.ReleasePath)
			if err != nil {
				return err
			}
			c.SetMetric("cache_hits", float64(warm.Hits))
			c.SetMetric("cache_misses", float64(warm.Misses))
			c.SetMetric("bytes_fetched", float64(warm.BytesFetched))
			return nil
		}},
		wrapper.Step{Segment: wrapper.SegConditions, Run: func(c *wrapper.StepContext) error {
			if env.ConditionsTag == "" || env.ProxyURL == "" {
				return nil
			}
			run := argInt(args, "run", 1)
			cl := &frontier.Client{Base: env.ProxyURL, Client: trace.WrapClient(env.HTTPClient, c.Trace)}
			p, err := cl.Fetch(env.ConditionsTag, run)
			if err != nil {
				return err
			}
			c.SetMetric("conditions_bytes", float64(len(p.Data)))
			return nil
		}},
		wrapper.Step{Segment: wrapper.SegStageIn, Run: func(c *wrapper.StepContext) error {
			lfn := args["lfn"]
			if lfn == "" {
				return fmt.Errorf("analysis task needs an lfn")
			}
			f, err := env.open(lfn, c)
			if err != nil {
				return err
			}
			if args["mode"] == "stage" {
				// Staging: pull the task's event range before processing.
				defer f.Close()
				lo, hi := eventRange(kernel, f.Size(), args)
				input = make([]byte, hi-lo)
				if err := readFullAt(f, input, lo); err != nil {
					return err
				}
				c.SetMetric("bytes_in", float64(len(input)))
				return nil
			}
			file = f // streaming: reads happen during execute
			return nil
		}},
		wrapper.Step{Segment: wrapper.SegExecute, Run: func(c *wrapper.StepContext) error {
			sleepMS(delayMS)
			if input != nil {
				output, events = kernel.ProcessAll(input)
			} else {
				defer file.Close()
				var err error
				var streamed int64
				lo, hi := eventRange(kernel, file.Size(), args)
				output, events, streamed, err = processStreaming(kernel, file, lo, hi)
				if err != nil {
					return err
				}
				c.SetMetric("bytes_in", float64(streamed))
			}
			c.SetMetric("events", float64(events))
			return nil
		}},
		wrapper.Step{Segment: wrapper.SegStageOut, Run: func(c *wrapper.StepContext) error {
			out := args["output"]
			if out == "" || env.ChirpAddr == "" {
				// Keep the output in the sandbox only.
				return os.WriteFile(filepath.Join(ctx.Sandbox, "output.root"), output, 0o644)
			}
			// PutFile is idempotent, so the pool may replay it freely; the
			// payload streams through the pooled connection's shared flush.
			if err := env.chirpPool().DoTraced(c.Tracer, c.Trace, func(cc *chirp.Client) error {
				return cc.PutFile(out, output)
			}); err != nil {
				return err
			}
			c.SetMetric("bytes_out", float64(len(output)))
			return nil
		}},
	)
	return rep, args["output"]
}

// eventRange maps the task's skip_events/max_events args to a byte range
// within the file; max_events <= 0 means "to end of file". This is how a
// task covering a subset of a file's lumisections addresses its share.
func eventRange(k *Kernel, size int64, args map[string]string) (lo, hi int64) {
	skip := int64(argInt(args, "skip_events", 0))
	max := int64(argInt(args, "max_events", 0))
	lo = skip * int64(k.EventSize)
	if lo > size {
		lo = size
	}
	if max <= 0 {
		return lo, size
	}
	hi = lo + max*int64(k.EventSize)
	if hi > size {
		hi = size
	}
	return lo, hi
}

// processStreaming reads the byte range [lo, hi) in event-aligned chunks,
// reducing as it goes — I/O and CPU interleave, which is what makes
// streaming win in the paper's Figure 4.
func processStreaming(k *Kernel, f RemoteFile, lo, hi int64) (out []byte, events int, streamed int64, err error) {
	chunkEvents := 64
	chunk := make([]byte, chunkEvents*k.EventSize)
	off := lo
	for off < hi {
		want := int64(len(chunk))
		if hi-off < want {
			want = hi - off
		}
		n, err := f.ReadAt(chunk[:want], off)
		if err != nil {
			return nil, 0, streamed, err
		}
		if n == 0 {
			break
		}
		streamed += int64(n)
		off += int64(n)
		reduced, ne := k.ProcessAll(chunk[:n])
		out = append(out, reduced...)
		events += ne
	}
	return out, events, streamed, nil
}

// Simulation returns the executor for Monte Carlo simulation tasks: heavy
// CPU generation, a small pile-up input streamed from the local storage
// element over chirp, and chirp stage-out. External bandwidth demand is
// orders of magnitude below analysis, matching §6.
func Simulation(env *Env) wq.Executor {
	return func(ctx *wq.ExecContext) error {
		rep := runSimulation(env, ctx)
		if err := os.WriteFile(filepath.Join(ctx.Sandbox, ReportFile), rep.Encode(), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		if rep.ExitCode != 0 {
			return &wq.ExitError{Code: rep.ExitCode, Msg: string(rep.Failed)}
		}
		return nil
	}
}

func runSimulation(env *Env, ctx *wq.ExecContext) *wrapper.Report {
	args := ctx.Task.Args
	var (
		kernel *Kernel
		pileup []byte
		signal []byte
		output []byte
	)
	return wrapper.RunInjected(env.Fault, ctx.Tracer, ctx.Trace,
		wrapper.Step{Segment: wrapper.SegEnvInit, Run: func(c *wrapper.StepContext) error {
			var err error
			kernel, err = NewKernel(argInt(args, "event_size", DefaultEventSize), argInt(args, "work", 1))
			return err
		}},
		wrapper.Step{Segment: wrapper.SegSoftware, Run: func(c *wrapper.StepContext) error {
			if env.ProxyURL == "" {
				return nil
			}
			inst, err := env.Cache.Instance(fmt.Sprintf("task-%d", ctx.Task.ID))
			if err != nil {
				return err
			}
			mount, err := parrot.NewMount(env.ProxyURL, env.Repo, inst,
				trace.WrapClient(env.HTTPClient, c.Trace))
			if err != nil {
				return err
			}
			warm, err := mount.WarmRelease(env.ReleasePath)
			if err != nil {
				return err
			}
			c.SetMetric("cache_hits", float64(warm.Hits))
			c.SetMetric("cache_misses", float64(warm.Misses))
			c.SetMetric("bytes_fetched", float64(warm.BytesFetched))
			return nil
		}},
		wrapper.Step{Segment: wrapper.SegStageIn, Run: func(c *wrapper.StepContext) error {
			pu := args["pileup"]
			if pu == "" || env.ChirpAddr == "" {
				return nil // pile-up overlay disabled
			}
			if err := env.chirpPool().DoTraced(c.Tracer, c.Trace, func(cc *chirp.Client) error {
				var gerr error
				pileup, gerr = cc.GetFile(pu)
				return gerr
			}); err != nil {
				return err
			}
			c.SetMetric("bytes_in", float64(len(pileup)))
			return nil
		}},
		wrapper.Step{Segment: wrapper.SegExecute, Run: func(c *wrapper.StepContext) error {
			n := argInt(args, "events", 0)
			if n <= 0 {
				return fmt.Errorf("simulation task needs events > 0")
			}
			seed := uint64(argInt(args, "seed", 1))
			rng := stats.NewRand(seed)
			signal = kernel.GenerateEvents(n, rng)
			if pileup != nil {
				if err := kernel.OverlayPileup(signal, pileup); err != nil {
					return err
				}
			}
			output, _ = kernel.ProcessAll(signal)
			c.SetMetric("events", float64(n))
			return nil
		}},
		wrapper.Step{Segment: wrapper.SegStageOut, Run: func(c *wrapper.StepContext) error {
			out := args["output"]
			if out == "" || env.ChirpAddr == "" {
				return os.WriteFile(filepath.Join(ctx.Sandbox, "output.root"), output, 0o644)
			}
			if err := env.chirpPool().DoTraced(c.Tracer, c.Trace, func(cc *chirp.Client) error {
				return cc.PutFile(out, output)
			}); err != nil {
				return err
			}
			c.SetMetric("bytes_out", float64(len(output)))
			return nil
		}},
	)
}

func argInt(args map[string]string, key string, def int) int {
	if v, ok := args[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func sleepMS(ms int) {
	if ms > 0 {
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
}

// readFullAt fills buf from the file starting at base offset.
func readFullAt(f RemoteFile, buf []byte, base int64) error {
	var off int64
	for off < int64(len(buf)) {
		n, err := f.ReadAt(buf[off:], base+off)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("hepsim: unexpected EOF at %d/%d", off, len(buf))
		}
		off += int64(n)
	}
	return nil
}
