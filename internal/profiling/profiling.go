// Package profiling wires the standard pprof and execution-trace outputs
// into the CLIs, so kernel hot-path work can always be measured on the real
// binaries rather than only through the micro-benchmarks.
package profiling

import (
	"flag"
	"fmt"
	"net/http"
	pprofhttp "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the three standard profiling destinations. Zero values mean
// the corresponding output is disabled.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register adds -cpuprofile, -memprofile and -trace to fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to `file` at exit")
	fs.StringVar(&f.Trace, "trace", "", "write an execution trace to `file`")
}

// Start begins CPU profiling and execution tracing as requested and returns
// a stop function that ends them and writes the heap profile. The stop
// function must run before process exit (defer it in main); it reports the
// first error encountered.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		cleanup()
		if f.MemProfile == "" {
			return nil
		}
		mf, err := os.Create(f.MemProfile)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer mf.Close()
		runtime.GC() // materialise up-to-date allocation stats
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return nil
	}, nil
}

// AttachPprof registers the standard net/http/pprof handlers on mux under
// /debug/pprof/, the endpoints the fleet hub's continuous-profiling
// capture hits when an anomaly rule fires. Gated behind the -pprof flag
// in the daemons: the handlers expose goroutine stacks and heap contents,
// which is exactly what a post-mortem wants and exactly what an open
// metrics port shouldn't leak by default.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprofhttp.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprofhttp.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprofhttp.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprofhttp.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprofhttp.Trace)
}
