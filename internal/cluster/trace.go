// Package cluster models the non-dedicated resource pool Lobster runs on: a
// campus cluster whose batch system (HTCondor at Notre Dame) grants worker
// "pilot" slots opportunistically and evicts them without warning when the
// resource owner's jobs return.
//
// The package has two halves. The trace half generates and analyses worker
// availability sessions — the months of logs behind the paper's Figure 2 —
// and exposes the observed survival distribution that drives the Figure 3
// task-size simulation. The pool half (pool.go) runs real wq workers against
// a master and evicts them according to the same distributions, giving the
// real execution plane genuine non-dedicated behaviour.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"lobster/internal/stats"
)

// Session is one worker's availability interval, as reconstructed from logs
// marking "the times at which a worker joined and left the system".
type Session struct {
	// Start is the session start time in seconds from the trace origin.
	Start float64
	// Duration is how long the worker was available, in seconds.
	Duration float64
	// Evicted reports whether the session ended in eviction (true) or in
	// orderly shutdown at the end of a run (false).
	Evicted bool
}

// TraceConfig describes synthetic availability-log generation, standing in
// for the multi-month Lobster production logs the paper collected.
type TraceConfig struct {
	// Runs is the number of Lobster runs in the trace (paper: "multiple
	// runs ... spanning multiple months").
	Runs int
	// WorkersPerRun is the number of worker pilots each run requests.
	WorkersPerRun int
	// RunDuration is the distribution of run wall-clock lengths in seconds.
	// Run length varies widely in practice (quick tests to multi-day
	// campaigns), which is what makes the eviction curve non-trivial: a
	// session can end either by eviction or because its run finished.
	RunDuration stats.Dist
	// Lifetime is the time-to-eviction distribution. Opportunistic pools
	// show decreasing hazard: many pilots die young (the owner was only
	// briefly idle), while survivors tend to keep surviving. A Weibull with
	// shape < 1 captures this.
	Lifetime stats.Dist
	// StartSpread is the fraction of the run over which worker start times
	// are spread (0 = all at run start, 1 = uniformly over the whole run).
	// Pilots churn throughout a run — evicted workers are replaced as batch
	// slots reopen — so in practice starts are spread broadly.
	StartSpread float64
}

// DefaultTraceConfig reproduces the scale of the paper's observations:
// ~8000-worker runs with a heavy-tailed eviction process whose mean
// time-to-eviction is a few hours.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Runs:          30,
		WorkersPerRun: 800,
		RunDuration:   stats.LogNormal{Mu: math.Log(18 * 3600), Sigma: 0.9},
		Lifetime:      stats.Weibull{K: 0.7, Lambda: 9 * 3600},
		StartSpread:   0.9,
	}
}

// GenerateTrace synthesises availability sessions: each worker draws a
// time-to-eviction; if it exceeds the remaining run time, the session ends
// uneviced (censored) at run end.
func GenerateTrace(cfg TraceConfig, rng *stats.Rand) ([]Session, error) {
	if cfg.Runs <= 0 || cfg.WorkersPerRun <= 0 {
		return nil, fmt.Errorf("cluster: invalid trace config %+v", cfg)
	}
	if cfg.Lifetime == nil || cfg.RunDuration == nil {
		return nil, fmt.Errorf("cluster: trace config needs Lifetime and RunDuration distributions")
	}
	var sessions []Session
	var runStart float64
	for r := 0; r < cfg.Runs; r++ {
		runLen := cfg.RunDuration.Sample(rng)
		if runLen <= 0 {
			runLen = 1
		}
		for w := 0; w < cfg.WorkersPerRun; w++ {
			start := runStart
			if cfg.StartSpread > 0 {
				start += cfg.StartSpread * runLen * rng.Float64()
			}
			remaining := runStart + runLen - start
			if remaining <= 0 {
				continue // pilot never started before the run ended
			}
			life := cfg.Lifetime.Sample(rng)
			if life < remaining {
				sessions = append(sessions, Session{Start: start, Duration: life, Evicted: true})
			} else {
				sessions = append(sessions, Session{Start: start, Duration: remaining, Evicted: false})
			}
		}
		runStart += runLen
	}
	return sessions, nil
}

// CurvePoint is one bin of the eviction-probability curve (Figure 2).
type CurvePoint struct {
	// T is the bin's central availability time in seconds.
	T float64
	// P is the probability that a session whose duration falls in this bin
	// ended in eviction.
	P float64
	// Err is the binomial standard error on P.
	Err float64
	// N is the number of sessions in the bin.
	N int
}

// EvictionCurve bins sessions by availability time and computes, per bin,
// the fraction that ended in eviction with binomial uncertainties — the
// construction of the paper's Figure 2.
func EvictionCurve(sessions []Session, lo, hi float64, bins int) ([]CurvePoint, error) {
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("cluster: invalid binning [%g,%g)x%d", lo, hi, bins)
	}
	type bin struct{ evicted, total int }
	bs := make([]bin, bins)
	width := (hi - lo) / float64(bins)
	for _, s := range sessions {
		if s.Duration < lo || s.Duration >= hi {
			continue
		}
		i := int((s.Duration - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		bs[i].total++
		if s.Evicted {
			bs[i].evicted++
		}
	}
	out := make([]CurvePoint, 0, bins)
	for i, b := range bs {
		p := CurvePoint{T: lo + (float64(i)+0.5)*width, N: b.total}
		if b.total > 0 {
			var err error
			p.P, p.Err, err = stats.BinomialCI(b.evicted, b.total)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// SurvivalDistribution returns the empirical distribution of time-to-eviction
// from the evicted sessions of a trace. It is the "probability derived from
// observation" input to the Figure 3 simulation. Censored (non-evicted)
// sessions are folded in as if they had been evicted at run end; with runs
// much longer than the mean lifetime the bias is negligible, matching how
// the paper's logs were used.
func SurvivalDistribution(sessions []Session) (*stats.Empirical, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	durations := make([]float64, 0, len(sessions))
	for _, s := range sessions {
		durations = append(durations, s.Duration)
	}
	return stats.NewEmpirical(durations), nil
}

// EvictionStats summarises a trace.
type EvictionStats struct {
	Sessions     int
	Evictions    int
	EvictionRate float64
	MeanLife     float64 // mean availability of evicted sessions, seconds
	MedianLife   float64
}

// Summarize computes trace-level statistics.
func Summarize(sessions []Session) EvictionStats {
	st := EvictionStats{Sessions: len(sessions)}
	var evictedDur []float64
	for _, s := range sessions {
		if s.Evicted {
			st.Evictions++
			evictedDur = append(evictedDur, s.Duration)
		}
	}
	if st.Sessions > 0 {
		st.EvictionRate = float64(st.Evictions) / float64(st.Sessions)
	}
	if len(evictedDur) > 0 {
		var sum float64
		for _, d := range evictedDur {
			sum += d
		}
		st.MeanLife = sum / float64(len(evictedDur))
		sort.Float64s(evictedDur)
		st.MedianLife = evictedDur[len(evictedDur)/2]
	}
	return st
}

// HazardIsDecreasing reports whether the eviction curve's early bins carry a
// higher eviction probability than its late bins — the qualitative signature
// of opportunistic pools that Figure 2 exhibits. Bins with fewer than minN
// sessions are ignored.
func HazardIsDecreasing(curve []CurvePoint, minN int) bool {
	var first, last = math.NaN(), math.NaN()
	for _, p := range curve {
		if p.N < minN {
			continue
		}
		if math.IsNaN(first) {
			first = p.P
		}
		last = p.P
	}
	return !math.IsNaN(first) && first > last
}
