package cluster

import (
	"fmt"
	"sync"
	"time"

	"lobster/internal/stats"
	"lobster/internal/telemetry"
	"lobster/internal/wq"
)

// PoolConfig configures a real-plane opportunistic worker pool: actual
// wq.Worker processes (goroutines) joined to a master and evicted by a
// batch-system stand-in.
type PoolConfig struct {
	// MasterAddr is the wq master (or foreman) workers connect to.
	MasterAddr string
	// Workers is the target number of concurrently-running workers.
	Workers int
	// CoresPerWorker matches the paper's 8-core workers by default.
	CoresPerWorker int
	// Registry is the executor registry workers run with.
	Registry wq.Registry
	// Lifetime draws each worker's time-to-eviction in *real* seconds.
	// Nil disables eviction (a dedicated pool).
	Lifetime stats.Dist
	// Replace controls whether evicted workers are replaced (the batch
	// system restarting pilots as slots free up).
	Replace bool
	// ScratchDir is the parent for per-worker directories.
	ScratchDir string
}

// Pool manages opportunistic workers against a master.
type Pool struct {
	cfg PoolConfig
	rng *stats.Rand

	mu       sync.Mutex
	workers  map[int]*wq.Worker
	nextID   int
	evicted  int
	started  int
	stopping bool
	stopCh   chan struct{}
	wg       sync.WaitGroup

	telLaunched *telemetry.Counter
	telEvicted  *telemetry.Counter
}

// Instrument registers the pool's metric series on reg. A nil registry
// leaves the pool uninstrumented at zero cost.
func (p *Pool) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.telLaunched = reg.Counter("lobster_cluster_pilots_launched_total",
		"Pilot workers ever launched by the pool (including replacements).")
	p.telEvicted = reg.Counter("lobster_cluster_evictions_total",
		"Pilot workers evicted by the batch-system stand-in.")
	reg.GaugeFunc("lobster_cluster_pilots_up",
		"Pilot workers currently connected.",
		func() float64 { return float64(p.Alive()) })
}

// NewPool starts the pool. Workers connect immediately.
func NewPool(cfg PoolConfig, rng *stats.Rand) (*Pool, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("cluster: pool needs workers > 0")
	}
	if cfg.CoresPerWorker <= 0 {
		cfg.CoresPerWorker = 8
	}
	p := &Pool{cfg: cfg, rng: rng, workers: make(map[int]*wq.Worker), stopCh: make(chan struct{})}
	for i := 0; i < cfg.Workers; i++ {
		if err := p.launch(); err != nil {
			p.Stop()
			return nil, err
		}
	}
	return p, nil
}

// launch starts one worker and, if eviction is enabled, its eviction timer.
func (p *Pool) launch() error {
	p.mu.Lock()
	if p.stopping {
		p.mu.Unlock()
		return nil
	}
	id := p.nextID
	p.nextID++
	p.started++
	var life time.Duration
	if p.cfg.Lifetime != nil {
		life = time.Duration(p.cfg.Lifetime.Sample(p.rng) * float64(time.Second))
	}
	p.mu.Unlock()

	name := fmt.Sprintf("pool-worker-%d", id)
	w, err := wq.NewWorker(p.cfg.MasterAddr, name, p.cfg.CoresPerWorker,
		fmt.Sprintf("%s/%s", p.cfg.ScratchDir, name), p.cfg.Registry)
	if err != nil {
		return fmt.Errorf("cluster: launching %s: %w", name, err)
	}
	p.mu.Lock()
	if p.stopping {
		p.mu.Unlock()
		w.Close()
		return nil
	}
	p.workers[id] = w
	p.mu.Unlock()
	p.telLaunched.Inc()

	if p.cfg.Lifetime != nil {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			timer := time.NewTimer(life)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-p.stopCh:
				return
			}
			p.mu.Lock()
			w, ok := p.workers[id]
			if !ok || p.stopping {
				p.mu.Unlock()
				return
			}
			delete(p.workers, id)
			p.evicted++
			replace := p.cfg.Replace && !p.stopping
			p.mu.Unlock()
			p.telEvicted.Inc()
			w.Evict()
			if replace {
				p.launch()
			}
		}()
	}
	return nil
}

// Alive returns the number of currently-connected workers.
func (p *Pool) Alive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Evictions returns the number of evictions so far.
func (p *Pool) Evictions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evicted
}

// Started returns the total number of workers ever launched.
func (p *Pool) Started() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started
}

// Stop evicts everything and waits for bookkeeping goroutines.
func (p *Pool) Stop() {
	p.mu.Lock()
	if !p.stopping {
		p.stopping = true
		close(p.stopCh)
	}
	ws := make([]*wq.Worker, 0, len(p.workers))
	for _, w := range p.workers {
		ws = append(ws, w)
	}
	p.workers = make(map[int]*wq.Worker)
	p.mu.Unlock()
	for _, w := range ws {
		w.Close()
	}
	p.wg.Wait()
}
