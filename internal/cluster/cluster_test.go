package cluster

import (
	"math"
	"os"
	"testing"
	"time"

	"lobster/internal/stats"
	"lobster/internal/wq"
)

func TestGenerateTraceBasics(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Runs = 5
	cfg.WorkersPerRun = 200
	rng := stats.NewRand(1)
	sessions, err := GenerateTrace(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) == 0 || len(sessions) > 1000 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	for _, s := range sessions {
		if s.Duration <= 0 {
			t.Fatalf("non-positive session duration %g", s.Duration)
		}
	}
	st := Summarize(sessions)
	if st.Evictions == 0 || st.Evictions == st.Sessions {
		t.Errorf("degenerate trace: %+v", st)
	}
	if st.EvictionRate <= 0 || st.EvictionRate >= 1 {
		t.Errorf("eviction rate = %g", st.EvictionRate)
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Runs = 3
	cfg.WorkersPerRun = 50
	a, _ := GenerateTrace(cfg, stats.NewRand(7))
	b, _ := GenerateTrace(cfg, stats.NewRand(7))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d differs", i)
		}
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	rng := stats.NewRand(1)
	if _, err := GenerateTrace(TraceConfig{}, rng); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := GenerateTrace(TraceConfig{Runs: 1, WorkersPerRun: 1}, rng); err == nil {
		t.Error("config without distributions accepted")
	}
}

func TestEvictionCurveShape(t *testing.T) {
	cfg := DefaultTraceConfig()
	rng := stats.NewRand(2)
	sessions, err := GenerateTrace(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := EvictionCurve(sessions, 0, 24*3600, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 24 {
		t.Fatalf("curve bins = %d", len(curve))
	}
	// Probabilities are valid and carry binomial errors where populated.
	for _, p := range curve {
		if p.P < 0 || p.P > 1 {
			t.Fatalf("P = %g", p.P)
		}
		if p.N > 1 && p.P > 0 && p.P < 1 && p.Err == 0 {
			t.Errorf("missing uncertainty at T=%g", p.T)
		}
	}
	// The opportunistic-pool signature: early availability bins have a
	// higher eviction probability than late bins.
	if !HazardIsDecreasing(curve, 30) {
		t.Error("eviction probability does not decrease with availability time")
	}
}

func TestEvictionCurveValidation(t *testing.T) {
	if _, err := EvictionCurve(nil, 0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := EvictionCurve(nil, 10, 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSurvivalDistribution(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Runs = 10
	sessions, _ := GenerateTrace(cfg, stats.NewRand(3))
	dist, err := SurvivalDistribution(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Len() != len(sessions) {
		t.Errorf("distribution holds %d samples for %d sessions", dist.Len(), len(sessions))
	}
	// Heavy tail: median well below mean.
	if !(dist.Quantile(0.5) < dist.Mean()) {
		t.Errorf("median %g not below mean %g", dist.Quantile(0.5), dist.Mean())
	}
	if _, err := SurvivalDistribution(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestSummarizeMedian(t *testing.T) {
	sessions := []Session{
		{Duration: 1, Evicted: true},
		{Duration: 2, Evicted: true},
		{Duration: 30, Evicted: true},
		{Duration: 100, Evicted: false},
	}
	st := Summarize(sessions)
	if st.Evictions != 3 || st.MedianLife != 2 {
		t.Errorf("summary = %+v", st)
	}
	if math.Abs(st.MeanLife-11) > 1e-9 {
		t.Errorf("mean life = %g", st.MeanLife)
	}
}

func TestHazardIsDecreasing(t *testing.T) {
	dec := []CurvePoint{{P: 0.9, N: 100}, {P: 0.5, N: 100}, {P: 0.2, N: 100}}
	inc := []CurvePoint{{P: 0.1, N: 100}, {P: 0.5, N: 100}, {P: 0.9, N: 100}}
	if !HazardIsDecreasing(dec, 10) || HazardIsDecreasing(inc, 10) {
		t.Error("hazard direction detection broken")
	}
	sparse := []CurvePoint{{P: 0.9, N: 1}, {P: 0.1, N: 1}}
	if HazardIsDecreasing(sparse, 10) {
		t.Error("sparse bins not ignored")
	}
}

func TestPoolRunsTasksUnderEviction(t *testing.T) {
	master, err := wq.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	reg := wq.Registry{
		"spin": func(ctx *wq.ExecContext) error {
			time.Sleep(30 * time.Millisecond)
			return os.WriteFile(ctx.Sandbox+"/out", []byte("ok"), 0o644)
		},
	}
	pool, err := NewPool(PoolConfig{
		MasterAddr:     master.Addr(),
		Workers:        4,
		CoresPerWorker: 2,
		Registry:       reg,
		// Aggressive real-time eviction so the test exercises requeue.
		Lifetime:   stats.Uniform{Lo: 0.1, Hi: 0.4},
		Replace:    true,
		ScratchDir: t.TempDir(),
	}, stats.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	const n = 40
	for i := 0; i < n; i++ {
		master.Submit(&wq.Task{Func: "spin", Outputs: []string{"out"}})
	}
	results := master.Drain(n, 60*time.Second)
	if len(results) != n {
		t.Fatalf("completed %d/%d tasks under eviction", len(results), n)
	}
	ok := 0
	for _, r := range results {
		if !r.Failed() {
			ok++
		}
	}
	// Retries may exhaust for an unlucky task, but the vast majority must
	// complete despite constant eviction.
	if ok < n*9/10 {
		t.Errorf("only %d/%d tasks succeeded", ok, n)
	}
	if pool.Evictions() == 0 {
		t.Error("no evictions occurred; test not exercising preemption")
	}
	if pool.Started() <= 4 {
		t.Error("evicted workers were not replaced")
	}
}

func TestPoolStopTerminates(t *testing.T) {
	master, err := wq.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	pool, err := NewPool(PoolConfig{
		MasterAddr: master.Addr(),
		Workers:    2,
		Registry:   wq.Registry{},
		Lifetime:   stats.Constant{Value: 3600}, // would fire in an hour
		ScratchDir: t.TempDir(),
	}, stats.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		pool.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop blocked on pending eviction timers")
	}
	if pool.Alive() != 0 {
		t.Errorf("workers alive after stop: %d", pool.Alive())
	}
}
