package parrot

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"lobster/internal/cvmfs"
)

// Mount provides file access to a CVMFS repository over HTTP, the way a
// Parrot-intercepted application sees /cvmfs/<repo>. Objects pass through
// the Instance cache; catalogs are likewise cached, so a hot cache resolves
// paths without any network traffic.
//
// A mount may be given several proxy base URLs: requests fail over down the
// list, as real CVMFS clients do once a site deploys additional squids
// (the paper's remedy when one proxy saturates at ~1000 workers).
type Mount struct {
	bases  []string // proxy or stratum base URLs, in failover order
	repo   string
	client *http.Client
	inst   *Instance

	rootHash string // pinned at mount time for a consistent view
}

// NewMount attaches to the repository named repo at the HTTP base URL
// (typically a squid proxy). The repository revision is pinned at mount
// time, as CVMFS clients pin a catalog snapshot per job.
func NewMount(base, repo string, inst *Instance, client *http.Client) (*Mount, error) {
	return NewMountFailover([]string{base}, repo, inst, client)
}

// NewMountFailover attaches through an ordered list of proxy base URLs;
// every request tries them in order until one answers.
func NewMountFailover(bases []string, repo string, inst *Instance, client *http.Client) (*Mount, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("parrot: mount needs at least one proxy URL")
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	trimmed := make([]string, len(bases))
	for i, b := range bases {
		trimmed[i] = strings.TrimRight(b, "/")
	}
	m := &Mount{bases: trimmed, repo: repo, client: client, inst: inst}
	body, err := m.fetch("/cvmfs/" + repo + "/.cvmfspublished")
	if err != nil {
		return nil, fmt.Errorf("parrot: fetching manifest: %w", err)
	}
	var pub cvmfs.Published
	if err := json.Unmarshal(body, &pub); err != nil {
		return nil, fmt.Errorf("parrot: decoding manifest: %w", err)
	}
	if pub.Root == "" {
		return nil, fmt.Errorf("parrot: manifest has empty root")
	}
	m.rootHash = pub.Root
	return m, nil
}

// fetch GETs path from the first proxy that answers.
func (m *Mount) fetch(path string) ([]byte, error) {
	var firstErr error
	for _, base := range m.bases {
		resp, err := m.client.Get(base + path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			if firstErr == nil {
				firstErr = fmt.Errorf("status %s from %s", resp.Status, base)
			}
			continue
		}
		return body, nil
	}
	return nil, fmt.Errorf("parrot: all %d proxies failed for %s: %w", len(m.bases), path, firstErr)
}

// RootHash returns the pinned root catalog hash.
func (m *Mount) RootHash() string { return m.rootHash }

// Stats returns the underlying cache instance counters.
func (m *Mount) Stats() InstanceStats { return m.inst.Stats() }

// object fetches a content-addressed object through the cache.
func (m *Mount) object(hash string) ([]byte, error) {
	data, _, err := m.inst.GetOrFetch(hash, func() ([]byte, error) {
		return m.fetch("/cvmfs/" + m.repo + "/data/" + hash)
	})
	return data, err
}

// catalog fetches and decodes a catalog object.
func (m *Mount) catalog(hash string) (*cvmfs.Catalog, error) {
	data, err := m.object(hash)
	if err != nil {
		return nil, err
	}
	var cat cvmfs.Catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("parrot: corrupt catalog %s: %w", hash, err)
	}
	return &cat, nil
}

// resolve walks the catalogs from the pinned root to path.
func (m *Mount) resolve(path string) (*cvmfs.Entry, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("parrot: path %q must be absolute", path)
	}
	cur := cvmfs.Entry{Type: cvmfs.TypeDir, Hash: m.rootHash}
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		if cur.Type != cvmfs.TypeDir {
			return nil, fmt.Errorf("parrot: %s: not a directory", path)
		}
		cat, err := m.catalog(cur.Hash)
		if err != nil {
			return nil, err
		}
		found := false
		for _, e := range cat.Entries {
			if e.Name == part {
				cur = e
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("parrot: %s: no such file or directory", path)
		}
	}
	return &cur, nil
}

// ReadFile returns the content of the file at path.
func (m *Mount) ReadFile(path string) ([]byte, error) {
	e, err := m.resolve(path)
	if err != nil {
		return nil, err
	}
	if e.Type != cvmfs.TypeFile {
		return nil, fmt.Errorf("parrot: %s is a directory", path)
	}
	return m.object(e.Hash)
}

// List returns the entries of the directory at path.
func (m *Mount) List(path string) ([]cvmfs.Entry, error) {
	e, err := m.resolve(path)
	if err != nil {
		return nil, err
	}
	if e.Type != cvmfs.TypeDir {
		return nil, fmt.Errorf("parrot: %s is not a directory", path)
	}
	cat, err := m.catalog(e.Hash)
	if err != nil {
		return nil, err
	}
	return cat.Entries, nil
}

// SetupReport summarises an environment setup (reading a whole release).
type SetupReport struct {
	Files        int
	Bytes        int64
	Hits         int
	Misses       int
	BytesFetched int64
	Elapsed      time.Duration
}

// WarmRelease reads every file beneath root, as a job's environment setup
// touches its software release, and reports the cache behaviour. This is
// the operation whose cost Figure 5 plots against proxy load and Figure 11
// shows peaking during the cold-cache ramp.
func (m *Mount) WarmRelease(root string) (*SetupReport, error) {
	before := m.inst.Stats()
	start := time.Now()
	rep := &SetupReport{}
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := m.List(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			full := strings.TrimRight(dir, "/") + "/" + e.Name
			switch e.Type {
			case cvmfs.TypeFile:
				data, err := m.ReadFile(full)
				if err != nil {
					return err
				}
				rep.Files++
				rep.Bytes += int64(len(data))
			case cvmfs.TypeDir:
				if err := walk(full); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	after := m.inst.Stats()
	rep.Hits = after.Hits - before.Hits
	rep.Misses = after.Misses - before.Misses
	rep.BytesFetched = after.BytesFetched - before.BytesFetched
	rep.Elapsed = time.Since(start)
	return rep, nil
}
