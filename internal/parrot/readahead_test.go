package parrot

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"testing"
)

func TestOpenPrefetchRoundTrip(t *testing.T) {
	cache, err := NewCache(t.TempDir(), ModeAlien)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cache.Instance("w0")
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 3<<20+777) // not chunk-aligned
	rand.New(rand.NewSource(1)).Read(content)
	if _, _, err := inst.GetOrFetch("abc123", func() ([]byte, error) {
		return content, nil
	}); err != nil {
		t.Fatal(err)
	}

	r, err := inst.OpenPrefetch("abc123", ReadAhead{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(content)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(content))
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("prefetched read differs from cached object")
	}
	// Reads past EOF keep returning EOF.
	if n, err := r.Read(make([]byte, 8)); n != 0 || err != io.EOF {
		t.Fatalf("read past EOF = %d, %v", n, err)
	}
}

func TestOpenPrefetchOddGeometries(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModePerInstance)
	inst, _ := cache.Instance("w0")
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{0, 1, 100, 64 << 10, 256 << 10, 256<<10 + 1} {
		content := make([]byte, size)
		rng.Read(content)
		hash := string(rune('a' + size%26))
		if err := inst.writeObject(hash, content); err != nil {
			t.Fatal(err)
		}
		r, err := inst.OpenPrefetch(hash, ReadAhead{Chunk: 64 << 10, Depth: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		r.Close()
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("size %d: err=%v match=%v", size, err, bytes.Equal(got, content))
		}
	}
}

func TestOpenPrefetchMissIsNotExist(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModeAlien)
	inst, _ := cache.Instance("w0")
	if _, err := inst.OpenPrefetch("nope", ReadAhead{}); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("miss error = %v, want not-exist", err)
	}
}

func TestOpenPrefetchEarlyClose(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModeAlien)
	inst, _ := cache.Instance("w0")
	content := make([]byte, 2<<20)
	if err := inst.writeObject("h", content); err != nil {
		t.Fatal(err)
	}
	r, err := inst.OpenPrefetch("h", ReadAhead{Chunk: 32 << 10, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	// Closing mid-stream must not leak or deadlock the prefetcher.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}
