// Package parrot implements the client side of CVMFS access as the paper
// uses Parrot: an unprivileged layer that fetches content-addressed objects
// over HTTP (directly or through squid proxies) and keeps them in a local
// cache directory on the worker node.
//
// The package implements the five cache-sharing configurations of Figure 6:
//
//	(a) ModePrivateLocked — one cache directory, exclusive write lock: when
//	    the cache is cold only the lock holder makes progress.
//	(b,c) ModePerInstance — every Parrot instance uses its own directory:
//	    full concurrency but every instance downloads the full working set.
//	(d,e) ModeAlien — one shared cache with concurrent population (the
//	    "alien cache"): safe because CVMFS is read-only, each object is
//	    fetched exactly once per node, and readers never block on writers
//	    of other objects.
package parrot

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Mode selects the cache-sharing configuration (Figure 6).
type Mode int

// Cache sharing modes.
const (
	// ModePrivateLocked is Figure 6(a): a single cache directory whose
	// population is serialised by an exclusive lock.
	ModePrivateLocked Mode = iota
	// ModePerInstance is Figure 6(b)/(c): independent caches per instance.
	ModePerInstance
	// ModeAlien is Figure 6(d)/(e): one shared cache, concurrent population
	// with per-object single-flight.
	ModeAlien
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePrivateLocked:
		return "private-locked"
	case ModePerInstance:
		return "per-instance"
	case ModeAlien:
		return "alien"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Cache is a node-local object cache shared by some number of Parrot
// instances. It is safe for concurrent use.
type Cache struct {
	dir  string
	mode Mode

	populateMu sync.Mutex // ModePrivateLocked: global write lock

	mu       sync.Mutex
	inflight map[string]*population // ModeAlien: per-object single-flight
}

type population struct {
	done chan struct{}
	err  error
}

// NewCache creates a cache rooted at dir.
func NewCache(dir string, mode Mode) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("parrot: creating cache dir: %w", err)
	}
	return &Cache{dir: dir, mode: mode, inflight: make(map[string]*population)}, nil
}

// Mode returns the cache's sharing mode.
func (c *Cache) Mode() Mode { return c.mode }

// Dir returns the cache root directory.
func (c *Cache) Dir() string { return c.dir }

// InstanceStats counts one instance's cache traffic.
type InstanceStats struct {
	Hits         int
	Misses       int
	BytesFetched int64
	LockWait     time.Duration // time spent blocked on other instances
}

// Instance is one Parrot instance's handle onto the cache. Instances are
// not safe for concurrent use by multiple goroutines; create one per task.
type Instance struct {
	cache *Cache
	id    string
	dir   string // instance-private dir in ModePerInstance, else cache dir
	stats InstanceStats
}

// Instance returns a handle for the named instance.
func (c *Cache) Instance(id string) (*Instance, error) {
	dir := c.dir
	if c.mode == ModePerInstance {
		dir = filepath.Join(c.dir, "instance-"+id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("parrot: creating instance dir: %w", err)
		}
	}
	return &Instance{cache: c, id: id, dir: dir}, nil
}

// Stats returns the instance's counters.
func (i *Instance) Stats() InstanceStats { return i.stats }

func (i *Instance) objectPath(hash string) string {
	return filepath.Join(i.dir, hash)
}

// readIfPresent returns the cached object, or nil if absent.
func (i *Instance) readIfPresent(hash string) []byte {
	data, err := os.ReadFile(i.objectPath(hash))
	if err != nil {
		return nil
	}
	return data
}

// writeObject installs data atomically (temp + rename) so concurrent readers
// never observe a partial object.
func (i *Instance) writeObject(hash string, data []byte) error {
	tmp, err := os.CreateTemp(i.dir, "tmp-"+hash+"-*")
	if err != nil {
		return fmt.Errorf("parrot: staging object: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("parrot: writing object: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, i.objectPath(hash)); err != nil {
		os.Remove(name)
		return fmt.Errorf("parrot: installing object: %w", err)
	}
	return nil
}

// GetOrFetch returns the object with the given hash, consulting the cache
// first and calling fetch on a miss. The hit result reports whether the
// object came from cache. Population concurrency follows the cache mode.
func (i *Instance) GetOrFetch(hash string, fetch func() ([]byte, error)) (data []byte, hit bool, err error) {
	if data := i.readIfPresent(hash); data != nil {
		i.stats.Hits++
		return data, true, nil
	}
	switch i.cache.mode {
	case ModePrivateLocked:
		return i.fetchLocked(hash, fetch)
	case ModePerInstance:
		return i.fetchDirect(hash, fetch)
	case ModeAlien:
		return i.fetchAlien(hash, fetch)
	default:
		return nil, false, fmt.Errorf("parrot: unknown cache mode %d", i.cache.mode)
	}
}

// fetchDirect downloads with no cross-instance coordination.
func (i *Instance) fetchDirect(hash string, fetch func() ([]byte, error)) ([]byte, bool, error) {
	data, err := fetch()
	if err != nil {
		return nil, false, err
	}
	i.stats.Misses++
	i.stats.BytesFetched += int64(len(data))
	if err := i.writeObject(hash, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// fetchLocked serialises all population through one exclusive lock: the
// Figure 6(a) behaviour where, with a cold cache, only the lock holder makes
// progress.
func (i *Instance) fetchLocked(hash string, fetch func() ([]byte, error)) ([]byte, bool, error) {
	start := time.Now()
	i.cache.populateMu.Lock()
	i.stats.LockWait += time.Since(start)
	defer i.cache.populateMu.Unlock()
	// Another instance may have populated the object while we waited.
	if data := i.readIfPresent(hash); data != nil {
		i.stats.Hits++
		return data, true, nil
	}
	return i.fetchDirect(hash, fetch)
}

// fetchAlien populates with per-object single-flight: concurrent misses on
// distinct objects proceed in parallel; concurrent misses on the same object
// share one download.
func (i *Instance) fetchAlien(hash string, fetch func() ([]byte, error)) ([]byte, bool, error) {
	c := i.cache
	for {
		c.mu.Lock()
		if p, ok := c.inflight[hash]; ok {
			c.mu.Unlock()
			start := time.Now()
			<-p.done
			i.stats.LockWait += time.Since(start)
			if p.err != nil {
				return nil, false, p.err
			}
			if data := i.readIfPresent(hash); data != nil {
				i.stats.Hits++
				return data, true, nil
			}
			// Populator raced with eviction; retry as populator.
			continue
		}
		p := &population{done: make(chan struct{})}
		c.inflight[hash] = p
		c.mu.Unlock()

		data, _, err := i.fetchDirect(hash, fetch)
		p.err = err
		c.mu.Lock()
		delete(c.inflight, hash)
		c.mu.Unlock()
		close(p.done)
		return data, false, err
	}
}
