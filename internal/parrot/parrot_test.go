package parrot

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lobster/internal/cvmfs"
	"lobster/internal/squid"
	"lobster/internal/stats"
)

// testRepo publishes a small release and returns the repository, its HTTP
// server, and the list of file paths.
func testRepo(t *testing.T) (*cvmfs.Repository, *httptest.Server, []string) {
	t.Helper()
	repo := cvmfs.NewRepository("cms.cern.ch")
	paths, err := cvmfs.PublishRelease(repo, cvmfs.TestRelease("CMSSW_7_4_0"), stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cvmfs.NewServer(repo))
	t.Cleanup(ts.Close)
	return repo, ts, paths
}

func newInstance(t *testing.T, mode Mode, id string) *Instance {
	t.Helper()
	c, err := NewCache(t.TempDir(), mode)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.Instance(id)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestMountReadFile(t *testing.T) {
	repo, ts, paths := testRepo(t)
	inst := newInstance(t, ModeAlien, "0")
	m, err := NewMount(ts.URL, "cms.cern.ch", inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.RootHash() != repo.RootHash() {
		t.Error("mount pinned wrong root")
	}
	want, _ := repo.ReadFile(paths[0])
	got, err := m.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("content mismatch through mount")
	}
	if _, err := m.ReadFile("/CMSSW_7_4_0/does/not/exist"); err == nil {
		t.Error("missing path resolved")
	}
	if _, err := m.ReadFile("/CMSSW_7_4_0/lib"); err == nil {
		t.Error("directory read as file")
	}
	if _, err := m.ReadFile("relative"); err == nil {
		t.Error("relative path accepted")
	}
}

func TestMountHotCacheServesLocally(t *testing.T) {
	_, ts, paths := testRepo(t)
	inst := newInstance(t, ModeAlien, "0")
	m, err := NewMount(ts.URL, "cms.cern.ch", inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile(paths[0]); err != nil {
		t.Fatal(err)
	}
	misses := inst.Stats().Misses
	if _, err := m.ReadFile(paths[0]); err != nil {
		t.Fatal(err)
	}
	if inst.Stats().Misses != misses {
		t.Error("re-read caused a new miss")
	}
	if inst.Stats().Hits == 0 {
		t.Error("no hits recorded")
	}
}

func TestWarmReleaseColdThenHot(t *testing.T) {
	_, ts, paths := testRepo(t)
	inst := newInstance(t, ModeAlien, "0")
	m, err := NewMount(ts.URL, "cms.cern.ch", inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := m.WarmRelease("/CMSSW_7_4_0")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Files != len(paths) {
		t.Errorf("warm read %d files, want %d", cold.Files, len(paths))
	}
	if cold.Misses == 0 || cold.BytesFetched == 0 {
		t.Errorf("cold warm fetched nothing: %+v", cold)
	}
	hot, err := m.WarmRelease("/CMSSW_7_4_0")
	if err != nil {
		t.Fatal(err)
	}
	if hot.Misses != 0 {
		t.Errorf("hot warm missed %d times", hot.Misses)
	}
	if hot.Bytes != cold.Bytes {
		t.Errorf("hot bytes %d != cold bytes %d", hot.Bytes, cold.Bytes)
	}
}

func TestMountThroughSquid(t *testing.T) {
	repo, _, _ := testRepo(t)
	origin := cvmfs.NewServer(repo)
	ts := httptest.NewServer(origin)
	defer ts.Close()
	proxy, err := squid.New(ts.URL, squid.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	// Two workers with separate caches behind one proxy: the second worker's
	// cold cache should be served almost entirely from the proxy.
	instA := newInstance(t, ModeAlien, "a")
	mA, err := NewMount(proxySrv.URL, "cms.cern.ch", instA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mA.WarmRelease("/CMSSW_7_4_0"); err != nil {
		t.Fatal(err)
	}
	// Only immutable objects count; the no-cache manifest legitimately
	// passes through on every mount.
	objectsAfterA := origin.Requests()

	instB := newInstance(t, ModeAlien, "b")
	mB, err := NewMount(proxySrv.URL, "cms.cern.ch", instB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mB.WarmRelease("/CMSSW_7_4_0"); err != nil {
		t.Fatal(err)
	}
	if origin.Requests() != objectsAfterA {
		t.Errorf("second worker caused origin object traffic: %d -> %d requests",
			objectsAfterA, origin.Requests())
	}
	if proxy.Stats().Hits == 0 {
		t.Error("proxy recorded no hits")
	}
}

func TestAlienCacheSingleFlight(t *testing.T) {
	cache, err := NewCache(t.TempDir(), ModeAlien)
	if err != nil {
		t.Fatal(err)
	}
	var fetches atomic.Int64
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst, err := cache.Instance(fmt.Sprint(i))
			if err != nil {
				errs[i] = err
				return
			}
			_, _, errs[i] = inst.GetOrFetch("shared-object", func() ([]byte, error) {
				fetches.Add(1)
				return []byte("payload"), nil
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if fetches.Load() != 1 {
		t.Errorf("shared object fetched %d times, want 1", fetches.Load())
	}
}

func TestAlienCacheConcurrentDistinctObjects(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModeAlien)
	// Distinct objects must be able to populate concurrently: start n
	// fetches that all block until every fetch has started.
	const n = 4
	started := make(chan struct{}, n)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst, _ := cache.Instance(fmt.Sprint(i))
			inst.GetOrFetch(fmt.Sprintf("obj-%d", i), func() ([]byte, error) {
				started <- struct{}{}
				<-release
				return []byte("x"), nil
			})
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started // deadlocks (test timeout) if population is serialised
	}
	close(release)
	wg.Wait()
}

func TestPrivateLockedSerialisesPopulation(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModePrivateLocked)
	var inFetch atomic.Int64
	var maxInFetch atomic.Int64
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst, _ := cache.Instance(fmt.Sprint(i))
			inst.GetOrFetch(fmt.Sprintf("obj-%d", i), func() ([]byte, error) {
				cur := inFetch.Add(1)
				for {
					max := maxInFetch.Load()
					if cur <= max || maxInFetch.CompareAndSwap(max, cur) {
						break
					}
				}
				defer inFetch.Add(-1)
				return []byte("x"), nil
			})
		}(i)
	}
	wg.Wait()
	if maxInFetch.Load() != 1 {
		t.Errorf("private-locked cache allowed %d concurrent populations", maxInFetch.Load())
	}
}

func TestPrivateLockedSecondReaderHitsAfterWait(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModePrivateLocked)
	i1, _ := cache.Instance("1")
	i2, _ := cache.Instance("2")
	i1.GetOrFetch("obj", func() ([]byte, error) { return []byte("x"), nil })
	_, hit, err := i2.GetOrFetch("obj", func() ([]byte, error) {
		t.Error("second instance refetched a populated object")
		return []byte("x"), nil
	})
	if err != nil || !hit {
		t.Errorf("hit=%v err=%v", hit, err)
	}
}

func TestPerInstanceCachesAreIndependent(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModePerInstance)
	i1, _ := cache.Instance("1")
	i2, _ := cache.Instance("2")
	var fetches atomic.Int64
	fetch := func() ([]byte, error) {
		fetches.Add(1)
		return []byte("x"), nil
	}
	i1.GetOrFetch("obj", fetch)
	i2.GetOrFetch("obj", fetch)
	if fetches.Load() != 2 {
		t.Errorf("per-instance caches shared an object (fetches = %d)", fetches.Load())
	}
	if i1.Stats().BytesFetched != 1 || i2.Stats().BytesFetched != 1 {
		t.Error("per-instance byte accounting wrong")
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	for _, mode := range []Mode{ModePrivateLocked, ModePerInstance, ModeAlien} {
		cache, _ := NewCache(t.TempDir(), mode)
		inst, _ := cache.Instance("0")
		boom := errors.New("origin down")
		_, _, err := inst.GetOrFetch("obj", func() ([]byte, error) { return nil, boom })
		if !errors.Is(err, boom) {
			t.Errorf("mode %v: err = %v", mode, err)
		}
		// A subsequent successful fetch must work (no stuck in-flight state).
		_, _, err = inst.GetOrFetch("obj", func() ([]byte, error) { return []byte("ok"), nil })
		if err != nil {
			t.Errorf("mode %v: retry after error: %v", mode, err)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModePrivateLocked.String() != "private-locked" ||
		ModePerInstance.String() != "per-instance" ||
		ModeAlien.String() != "alien" {
		t.Error("mode names wrong")
	}
}

func TestMountFailoverToSecondProxy(t *testing.T) {
	_, ts, paths := testRepo(t)
	inst := newInstance(t, ModeAlien, "0")
	// First proxy is dead; the second is the live origin.
	dead := "http://127.0.0.1:1"
	client := &http.Client{Timeout: 500 * time.Millisecond}
	m, err := NewMountFailover([]string{dead, ts.URL}, "cms.cern.ch", inst, client)
	if err != nil {
		t.Fatalf("mount did not fail over: %v", err)
	}
	if _, err := m.ReadFile(paths[0]); err != nil {
		t.Fatalf("read through failover: %v", err)
	}
}

func TestMountAllProxiesDown(t *testing.T) {
	inst := newInstance(t, ModeAlien, "0")
	client := &http.Client{Timeout: 200 * time.Millisecond}
	_, err := NewMountFailover([]string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		"cms.cern.ch", inst, client)
	if err == nil {
		t.Fatal("mount succeeded with every proxy down")
	}
	if _, err := NewMountFailover(nil, "x", inst, nil); err == nil {
		t.Fatal("empty proxy list accepted")
	}
}

func TestMountList(t *testing.T) {
	_, ts, _ := testRepo(t)
	inst := newInstance(t, ModeAlien, "0")
	m, err := NewMount(ts.URL, "cms.cern.ch", inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := m.List("/CMSSW_7_4_0")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
	}
	for _, want := range []string{"bin", "data", "lib"} {
		if !names[want] {
			t.Errorf("release directory missing %q: %v", want, names)
		}
	}
	if _, err := m.List("/CMSSW_7_4_0/lib/libcms0000.so"); err == nil {
		t.Error("List of a file succeeded")
	}
	if _, err := m.List("/nope"); err == nil {
		t.Error("List of missing dir succeeded")
	}
}

func TestMountBadRepoName(t *testing.T) {
	_, ts, _ := testRepo(t)
	inst := newInstance(t, ModeAlien, "0")
	if _, err := NewMount(ts.URL, "wrong.repo.name", inst, nil); err == nil {
		t.Error("mount of unknown repository succeeded")
	}
}

func TestInstanceStatsAccumulate(t *testing.T) {
	cache, _ := NewCache(t.TempDir(), ModeAlien)
	inst, _ := cache.Instance("0")
	inst.GetOrFetch("a", func() ([]byte, error) { return []byte("xx"), nil })
	inst.GetOrFetch("b", func() ([]byte, error) { return []byte("yyy"), nil })
	inst.GetOrFetch("a", func() ([]byte, error) { return nil, nil })
	st := inst.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.BytesFetched != 5 {
		t.Errorf("stats = %+v", st)
	}
	if cache.Mode() != ModeAlien || cache.Dir() == "" {
		t.Error("accessors broken")
	}
}
