package parrot

import (
	"errors"
	"fmt"
	"io"
	"os"

	"lobster/internal/bufpool"
)

// ReadAhead tunes OpenPrefetch. The zero value reads 256 KiB chunks
// with 4 chunks of pipeline depth — enough to hide one disk or NFS
// round trip behind the consumer's processing of the previous chunk.
type ReadAhead struct {
	// Chunk is the read size per pipeline step (default 256 KiB,
	// capped at the shared pool's chunk size).
	Chunk int
	// Depth is how many chunks the prefetcher may run ahead of the
	// reader (default 4). It bounds the pipeline's memory to
	// Depth×Chunk of pooled buffers.
	Depth int
}

func (ra ReadAhead) chunk() int {
	if ra.Chunk > 0 && ra.Chunk <= bufpool.ChunkSize {
		return ra.Chunk
	}
	if ra.Chunk > bufpool.ChunkSize {
		return bufpool.ChunkSize
	}
	return 256 << 10
}

func (ra ReadAhead) depth() int {
	if ra.Depth > 0 {
		return ra.Depth
	}
	return 4
}

// raChunk is one prefetched span of the object on its way to Read.
type raChunk struct {
	buf *[]byte
	n   int
	err error // io.EOF after the last byte, or the read error
}

// ObjectReader streams a cached object with asynchronous read-ahead: a
// prefetch goroutine stays Depth chunks ahead of the consumer, so the
// sequential read pattern of a physics task (open, scan forward, close)
// overlaps file I/O with event processing instead of alternating them.
// Not safe for concurrent use; Close releases the pipeline's buffers.
type ObjectReader struct {
	ch   chan raChunk
	stop chan struct{}
	cur  raChunk
	off  int
	size int64
	done bool
	err  error // terminal result once done (io.EOF or the read error)
}

// OpenPrefetch opens the cached object for pipelined sequential
// reading. The object must already be cached (it returns
// fs.ErrNotExist otherwise) — pair with GetOrFetch for population;
// this is the replay path where a task re-reads what staging already
// installed.
func (i *Instance) OpenPrefetch(hash string, ra ReadAhead) (*ObjectReader, error) {
	f, err := os.Open(i.objectPath(hash))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("parrot: stat cached object: %w", err)
	}
	i.stats.Hits++
	r := &ObjectReader{
		ch:   make(chan raChunk, ra.depth()),
		stop: make(chan struct{}),
		size: st.Size(),
	}
	go r.prefetch(f, ra.chunk())
	return r, nil
}

// prefetch reads the file into pooled chunks until EOF, error, or Close.
func (r *ObjectReader) prefetch(f *os.File, chunkSize int) {
	defer f.Close()
	for {
		buf := bufpool.Get()
		n, err := io.ReadFull(f, (*buf)[:chunkSize])
		if errors.Is(err, io.ErrUnexpectedEOF) {
			err = io.EOF // short final chunk: deliver it, then stop
		}
		if n == 0 {
			bufpool.Put(buf)
			if err == nil {
				err = io.EOF
			}
			select {
			case r.ch <- raChunk{err: err}:
			case <-r.stop:
			}
			close(r.ch)
			return
		}
		select {
		case r.ch <- raChunk{buf: buf, n: n, err: err}:
		case <-r.stop:
			bufpool.Put(buf)
			close(r.ch)
			return
		}
		if err != nil {
			close(r.ch)
			return
		}
	}
}

// Size returns the object's size in bytes.
func (r *ObjectReader) Size() int64 { return r.size }

// Read implements io.Reader over the prefetched pipeline. A chunk
// that arrived with an error still delivers its bytes; the error (or
// io.EOF) surfaces on the following call.
func (r *ObjectReader) Read(p []byte) (int, error) {
	for {
		if r.cur.buf != nil {
			n := copy(p, (*r.cur.buf)[r.off:r.cur.n])
			r.off += n
			if r.off == r.cur.n {
				bufpool.Put(r.cur.buf)
				if ferr := r.cur.err; ferr != nil {
					r.done, r.err = true, ferr
				}
				r.cur, r.off = raChunk{}, 0
			}
			return n, nil
		}
		if r.done {
			return 0, r.err
		}
		c, ok := <-r.ch
		if !ok {
			r.done, r.err = true, io.EOF
			return 0, io.EOF
		}
		if c.buf == nil {
			r.done, r.err = true, c.err
			if r.err == nil {
				r.err = io.EOF
			}
			return 0, r.err
		}
		r.cur, r.off = c, 0
	}
}

// Close tears the pipeline down and returns its buffers to the pool.
func (r *ObjectReader) Close() error {
	if r.cur.buf != nil {
		bufpool.Put(r.cur.buf)
		r.cur = raChunk{}
	}
	if !r.done {
		close(r.stop)
		for c := range r.ch {
			bufpool.Put(c.buf)
		}
		r.done = true
	}
	return nil
}
