package trace

import (
	"bytes"
	"math"
	"testing"

	"lobster/internal/telemetry"
)

func rec(trace, span, parent, comp, name string, start, end float64, attrs map[string]string) Record {
	return Record{Trace: trace, Span: span, Parent: parent, Comp: comp, Name: name,
		Start: start, End: end, Attrs: attrs}
}

// oneTask is a canonical task trace: dispatch, stage_in (with a chirp
// transfer underneath), setup, execute, all under one root.
func oneTask() []Record {
	return []Record{
		rec("t1", "r", "", "master", "task", 0, 10, nil),
		rec("t1", "d", "r", "master", "dispatch", 0, 1, nil),
		rec("t1", "si", "r", "worker", "stage_in", 1, 4, nil),
		rec("t1", "ch", "si", "chirp", "get", 1.5, 3.5, map[string]string{"server": "se01:9094"}),
		rec("t1", "su", "r", "worker", "setup", 4, 6, nil),
		rec("t1", "ex", "r", "worker", "execute", 6, 10, nil),
	}
}

func TestBuildTreesAndBreakdown(t *testing.T) {
	trees := BuildTrees(oneTask())
	if len(trees) != 1 {
		t.Fatalf("got %d trees", len(trees))
	}
	tr := trees[0]
	if tr.Root.Name != "task" || tr.Spans != 6 || tr.Orphans != 0 {
		t.Fatalf("tree: root=%q spans=%d orphans=%d", tr.Root.Name, tr.Spans, tr.Orphans)
	}
	// The chirp transfer inherits its parent's segment.
	var chirpSeg string
	for _, c := range tr.Root.Children {
		if c.Name == "stage_in" && len(c.Children) == 1 {
			chirpSeg = c.Children[0].Segment
		}
	}
	if chirpSeg != "stage_in" {
		t.Fatalf("chirp segment = %q, want stage_in", chirpSeg)
	}

	b := Analyze(trees)
	want := map[string]float64{"dispatch": 1, "stage_in": 3, "setup": 2, "execute": 4, "overhead": 0}
	for seg, w := range want {
		if got := b.Seconds[seg]; math.Abs(got-w) > 1e-9 {
			t.Errorf("segment %s = %g, want %g", seg, got, w)
		}
	}
	if math.Abs(b.Total-10) > 1e-9 || b.Tasks != 1 {
		t.Fatalf("total=%g tasks=%d", b.Total, b.Tasks)
	}
}

func TestCriticalPath(t *testing.T) {
	trees := BuildTrees(oneTask())
	steps := CriticalPath(trees[0].Root)
	sum := 0.0
	byName := map[string]float64{}
	for _, s := range steps {
		sum += s.Seconds
		byName[s.Node.Name] += s.Seconds
	}
	if math.Abs(sum-10) > 1e-9 {
		t.Fatalf("critical path sums to %g, want root duration 10", sum)
	}
	// The chirp transfer gates 2s of the stage_in window; stage_in
	// itself only the 1s not covered by it.
	if math.Abs(byName["get"]-2) > 1e-9 || math.Abs(byName["stage_in"]-1) > 1e-9 {
		t.Fatalf("gating wrong: %v", byName)
	}
	cb := CriticalBreakdown(trees)
	if math.Abs(cb["stage_in"]-3) > 1e-9 || math.Abs(cb["execute"]-4) > 1e-9 {
		t.Fatalf("critical breakdown wrong: %v", cb)
	}
}

func TestOffenders(t *testing.T) {
	recs := oneTask()
	// A second task whose chirp time goes to a different server.
	recs = append(recs,
		rec("t2", "r2", "", "master", "task", 0, 8, nil),
		rec("t2", "si2", "r2", "worker", "stage_in", 0, 6, nil),
		rec("t2", "ch2", "si2", "chirp", "get", 0, 6, map[string]string{"server": "se02:9094"}),
	)
	trees := BuildTrees(recs)
	b := Analyze(trees)
	off := Offenders(trees, b, 10)
	if len(off) != 2 {
		t.Fatalf("got %d offenders: %+v", len(off), off)
	}
	top := off[0]
	if top.Attr != "server=se02:9094" || top.Segment != "stage_in" || math.Abs(top.Seconds-6) > 1e-9 {
		t.Fatalf("top offender: %+v", top)
	}
	// se02 carries 6 of the 9 stage_in seconds.
	if math.Abs(top.Share-6.0/9.0) > 1e-9 {
		t.Fatalf("share = %g", top.Share)
	}
}

func TestOrphanGrafting(t *testing.T) {
	recs := []Record{
		rec("t1", "r", "", "master", "task", 0, 10, nil),
		rec("t1", "lost", "nonexistent", "chirp", "get", 2, 4, nil),
	}
	trees := BuildTrees(recs)
	if len(trees) != 1 || trees[0].Orphans != 1 {
		t.Fatalf("orphans = %+v", trees)
	}
	if len(trees[0].Root.Children) != 1 || trees[0].Root.Children[0].Name != "get" {
		t.Fatal("orphan not grafted under root")
	}
}

func TestCycleTolerance(t *testing.T) {
	recs := []Record{
		rec("t1", "a", "b", "x", "task", 0, 4, nil),
		rec("t1", "b", "a", "x", "execute", 1, 3, nil),
	}
	trees := BuildTrees(recs) // must terminate
	if len(trees) != 1 {
		t.Fatalf("got %d trees", len(trees))
	}
	tr := trees[0]
	if tr.Root.Span != "a" || tr.Orphans == 0 {
		t.Fatalf("cycle handling: root=%s orphans=%d", tr.Root.Span, tr.Orphans)
	}
	// Analysis still runs without recursion blowups.
	_ = Analyze(trees)
	_ = CriticalPath(tr.Root)
}

func TestReadRecordsSkipsOtherEvents(t *testing.T) {
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	log.Emit("task", map[string]int{"id": 1})
	log.Emit(EventType, &Record{Trace: "t", Span: "s", Comp: "c", Name: "n", Start: 1, End: 2})
	log.Emit("span", map[string]int{"span_id": 2})
	log.Flush()
	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Span != "s" {
		t.Fatalf("records: %+v", recs)
	}
}
