package trace

import (
	"encoding/json"
	"io"
	"sort"

	"lobster/internal/telemetry"
)

// This file is the offline half of the tracing layer: it rebuilds span
// trees from a JSONL event log, attributes time to the paper's Fig 8
// segments, computes per-task critical paths, and ranks attribute
// values ("one chirp server", "cache miss") by how much segment time
// they account for. The lobster-trace CLI is a thin printer over it.

// Segments lists the canonical Fig 8 accounting buckets in display
// order. "overhead" absorbs structural time no stage claims (queue
// wait inside the task span, span gaps, env_init).
var Segments = []string{
	"submit", "dispatch", "stage_in", "setup", "execute", "stage_out", "merge", "overhead",
}

// SegmentOf maps a span name to its canonical segment. The mapping
// mirrors core's wrapper accounting: software_setup bills to setup and
// conditions data to stage_in. Unknown names inherit their parent's
// segment, so a chirp transfer under a stage_in span stays stage-in
// time.
func SegmentOf(name string) (string, bool) {
	switch name {
	case "submit":
		return "submit", true
	case "dispatch":
		return "dispatch", true
	case "stage_in", "conditions":
		return "stage_in", true
	case "setup", "software_setup":
		return "setup", true
	case "execute":
		return "execute", true
	case "stage_out":
		return "stage_out", true
	case "merge":
		return "merge", true
	case "env_init":
		return "overhead", true
	}
	return "", false
}

// Node is one span in a reconstructed tree. Segment is resolved during
// tree building (own mapping, else inherited from the parent).
type Node struct {
	Record
	Segment  string
	Children []*Node
}

// Dur returns the span duration, clamped non-negative.
func (n *Node) Dur() float64 {
	d := n.End - n.Start
	if d < 0 {
		return 0
	}
	return d
}

// Tree is one trace: all spans sharing a trace ID, rooted at the
// parentless span that starts earliest. Spans whose parent never made
// it into the log (or that would form a cycle) are grafted under the
// root and counted in Orphans — analysis degrades, it never fails.
type Tree struct {
	TraceID string
	Root    *Node
	Spans   int
	Orphans int
}

// Start and End bound the whole trace (root span extents).
func (t *Tree) Start() float64 { return t.Root.Start }
func (t *Tree) End() float64   { return t.Root.End }
func (t *Tree) Dur() float64   { return t.Root.Dur() }

// ReadRecords decodes trace records from a JSONL event stream, ignoring
// every other event type. Records that fail to decode are skipped.
func ReadRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	err := telemetry.ReadEvents(r, func(ev telemetry.Event) error {
		if ev.Type != EventType {
			return nil
		}
		var rec Record
		if json.Unmarshal(ev.Data, &rec) == nil && rec.Span != "" {
			recs = append(recs, rec)
		}
		return nil
	})
	return recs, err
}

// ReadRecordsPath reads trace records from an event log on disk,
// including any rotated segments next to it (path.000001, …) in write
// order.
func ReadRecordsPath(path string) ([]Record, error) {
	var recs []Record
	err := telemetry.ReadEventsPath(path, func(ev telemetry.Event) error {
		if ev.Type != EventType {
			return nil
		}
		var rec Record
		if json.Unmarshal(ev.Data, &rec) == nil && rec.Span != "" {
			recs = append(recs, rec)
		}
		return nil
	})
	return recs, err
}

// BuildTrees groups records by trace ID and reassembles each group into
// a tree, ordered by root start time (ties by trace ID). Children are
// ordered by start time.
func BuildTrees(recs []Record) []*Tree {
	byTrace := make(map[string][]*Node)
	for i := range recs {
		r := &recs[i]
		byTrace[r.Trace] = append(byTrace[r.Trace], &Node{Record: *r})
	}
	trees := make([]*Tree, 0, len(byTrace))
	for id, nodes := range byTrace {
		trees = append(trees, buildTree(id, nodes))
	}
	sort.Slice(trees, func(i, j int) bool {
		if trees[i].Start() != trees[j].Start() {
			return trees[i].Start() < trees[j].Start()
		}
		return trees[i].TraceID < trees[j].TraceID
	})
	return trees
}

// buildTree links one trace's nodes parent→child. Any node that cannot
// reach a root (missing parent, cycle) is grafted under the root.
func buildTree(id string, nodes []*Node) *Tree {
	t := &Tree{TraceID: id, Spans: len(nodes)}
	byID := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		// Last record wins on a duplicated span ID; duplicates only
		// arise from replayed logs.
		byID[n.Span] = n
	}

	// Root: the earliest-starting span with no resolvable parent; if
	// every span has a parent (a cycle), the earliest span overall.
	var root *Node
	for _, n := range nodes {
		if n.Parent != "" && byID[n.Parent] != nil && byID[n.Parent] != n {
			continue
		}
		if root == nil || n.Start < root.Start || (n.Start == root.Start && n.Span < root.Span) {
			root = n
		}
	}
	if root == nil {
		for _, n := range nodes {
			if root == nil || n.Start < root.Start || (n.Start == root.Start && n.Span < root.Span) {
				root = n
			}
		}
		t.Orphans++ // its parent edge is severed below
	}
	t.Root = root

	// Attach children for nodes reachable from the root; graft the rest
	// (orphans, cycles) directly under the root.
	attached := map[*Node]bool{root: true}
	progress := true
	for progress {
		progress = false
		for _, n := range nodes {
			if attached[n] || n == root {
				continue
			}
			p := byID[n.Parent]
			if p != nil && attached[p] && p != n {
				p.Children = append(p.Children, n)
				attached[n] = true
				progress = true
			}
		}
	}
	for _, n := range nodes {
		if !attached[n] {
			root.Children = append(root.Children, n)
			attached[n] = true
			t.Orphans++
		}
	}

	resolveSegments(root, "overhead")
	sortChildren(root)
	return t
}

func resolveSegments(n *Node, inherited string) {
	seg, ok := SegmentOf(n.Name)
	if !ok {
		seg = inherited
	}
	n.Segment = seg
	for _, c := range n.Children {
		resolveSegments(c, seg)
	}
}

func sortChildren(n *Node) {
	sort.Slice(n.Children, func(i, j int) bool {
		if n.Children[i].Start != n.Children[j].Start {
			return n.Children[i].Start < n.Children[j].Start
		}
		return n.Children[i].Span < n.Children[j].Span
	})
	for _, c := range n.Children {
		sortChildren(c)
	}
}

// Breakdown is the Fig 8 accounting: per-segment totals of span
// self-time (span duration minus the union of its children's
// intervals), summed across tasks. Because a stage span's subtree
// self-times always sum back to the stage span's own duration, these
// totals reconcile with the lobster_task_stage_seconds histograms.
type Breakdown struct {
	Seconds map[string]float64
	Tasks   int
	Spans   int
	Orphans int
	Total   float64
}

// Analyze computes the per-segment breakdown over a set of trees.
func Analyze(trees []*Tree) Breakdown {
	b := Breakdown{Seconds: make(map[string]float64, len(Segments))}
	for _, t := range trees {
		b.Tasks++
		b.Spans += t.Spans
		b.Orphans += t.Orphans
		addSelfTimes(t.Root, &b)
	}
	for _, v := range b.Seconds {
		b.Total += v
	}
	return b
}

func addSelfTimes(n *Node, b *Breakdown) {
	b.Seconds[n.Segment] += selfTime(n)
	for _, c := range n.Children {
		addSelfTimes(c, b)
	}
}

// selfTime is n's duration minus the union of its children's intervals,
// clipped to n. Children sorted by start make the union a single sweep.
func selfTime(n *Node) float64 {
	self := n.Dur()
	cursor := n.Start
	for _, c := range n.Children {
		lo, hi := c.Start, c.End
		if lo < cursor {
			lo = cursor
		}
		if hi > n.End {
			hi = n.End
		}
		if hi > lo {
			self -= hi - lo
			cursor = hi
		} else if c.End > cursor {
			cursor = c.End
		}
	}
	if self < 0 {
		return 0
	}
	return self
}

// PathStep is one node on a critical path and the gating time it
// contributes itself (time on the path not explained by a deeper span).
type PathStep struct {
	Node    *Node
	Seconds float64
}

// CriticalPath walks backwards from the root's end, at each level
// descending into the child that gates completion, and returns the
// chain root-first. The sum of step seconds equals the root duration.
func CriticalPath(root *Node) []PathStep {
	var steps []PathStep
	critInto(root, &steps)
	return steps
}

func critInto(n *Node, steps *[]PathStep) {
	*steps = append(*steps, PathStep{Node: n})
	pos := len(*steps) - 1
	self := 0.0
	t := n.End
	// Children by end time, latest first: each in turn gates the
	// interval back to its own start.
	kids := append([]*Node(nil), n.Children...)
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].End != kids[j].End {
			return kids[i].End > kids[j].End
		}
		return kids[i].Span < kids[j].Span
	})
	for _, c := range kids {
		if t <= n.Start {
			break
		}
		if c.Start >= t {
			continue // shadowed by a later gating child
		}
		end := c.End
		if end > t {
			end = t
		}
		if end <= c.Start {
			continue // zero-length after clipping
		}
		self += t - end
		critInto(c, steps)
		t = c.Start
	}
	if t > n.Start {
		self += t - n.Start
	}
	(*steps)[pos].Seconds = self
}

// CriticalBreakdown aggregates critical-path time per segment across
// all trees: where end-to-end task latency actually goes, as opposed to
// where total (parallel-inclusive) time goes.
func CriticalBreakdown(trees []*Tree) map[string]float64 {
	out := make(map[string]float64, len(Segments))
	for _, t := range trees {
		for _, step := range CriticalPath(t.Root) {
			out[step.Node.Segment] += step.Seconds
		}
	}
	return out
}

// Offender attributes segment time to one span attribute value — e.g.
// 38% of stage_in seconds carry server=se03:9094.
type Offender struct {
	Segment string
	Attr    string // "key=value"
	Seconds float64
	Count   int
	Share   float64 // of the segment's breakdown total; 0 if unknown
}

// Offenders ranks (segment, attribute) pairs by span self-time. A
// span's self-time counts toward each of its attributes, answering "how
// much of this segment's time was spent in spans carrying this value".
// Using self-time (matching Breakdown) keeps shares true fractions: a
// parent's time is never double-billed to both its own attributes and
// its children's.
func Offenders(trees []*Tree, b Breakdown, topN int) []Offender {
	type key struct{ seg, attr string }
	sums := make(map[key]*Offender)
	var visit func(n *Node)
	visit = func(n *Node) {
		d := selfTime(n)
		for k, v := range n.Attrs {
			kk := key{n.Segment, k + "=" + v}
			o := sums[kk]
			if o == nil {
				o = &Offender{Segment: kk.seg, Attr: kk.attr}
				sums[kk] = o
			}
			o.Seconds += d
			o.Count++
		}
		for _, c := range n.Children {
			visit(c)
		}
	}
	for _, t := range trees {
		visit(t.Root)
	}
	out := make([]Offender, 0, len(sums))
	for _, o := range sums {
		if tot := b.Seconds[o.Segment]; tot > 0 {
			o.Share = o.Seconds / tot
		}
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		if out[i].Segment != out[j].Segment {
			return out[i].Segment < out[j].Segment
		}
		return out[i].Attr < out[j].Attr
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}
