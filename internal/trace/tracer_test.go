package trace

import (
	"bytes"
	"testing"

	"lobster/internal/telemetry"
)

// testTracer builds an enabled tracer on a manual clock writing into buf.
func testTracer(buf *bytes.Buffer, now *float64, maxPerSec float64) (*Tracer, *telemetry.Registry, *telemetry.EventLog) {
	reg := telemetry.NewRegistry()
	clock := func() float64 { return *now }
	reg.SetClock(clock)
	log := telemetry.NewEventLog(buf, clock)
	tr := New(Config{Registry: reg, Log: log, MaxTracesPerSec: maxPerSec, Seed: 42})
	return tr, reg, log
}

func drain(t *testing.T, buf *bytes.Buffer, log *telemetry.EventLog) []Record {
	t.Helper()
	if err := log.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading records: %v", err)
	}
	return recs
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	s := tr.Root("master", "task", "b")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Attr("k", "v")
	s.AttrInt("n", 1)
	s.End()
	s.EndAt(5)
	if ctx := s.Context(); ctx.Valid() {
		t.Fatal("nil span has a valid context")
	}
	child := tr.Start(Context{TraceID: 1, SpanID: 2, Sampled: true}, "worker", "x")
	if child != nil {
		t.Fatal("nil tracer returned a child span")
	}
	// New with a nil log is the disabled configuration.
	if New(Config{Registry: telemetry.NewRegistry()}) != nil {
		t.Fatal("New without a log should be nil")
	}
}

func TestSpanRecording(t *testing.T) {
	var buf bytes.Buffer
	now := 0.0
	tr, _, log := testTracer(&buf, &now, 0)

	root := tr.Root("master", "task", "cat=analysis")
	root.AttrInt("task_id", 7)
	now = 1.0
	child := tr.Start(root.Context(), "worker", "stage_in")
	child.Attr("server", "se01:9094")
	now = 3.0
	child.End()
	now = 4.0
	root.End()
	root.End() // double End is a no-op

	recs := drain(t, &buf, log)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Children end (and are recorded) before their parents.
	c, r := recs[0], recs[1]
	if c.Name != "stage_in" || r.Name != "task" {
		t.Fatalf("unexpected order: %q then %q", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Fatalf("trace IDs differ: %s vs %s", c.Trace, r.Trace)
	}
	if c.Parent != r.Span {
		t.Fatalf("child parent %s != root span %s", c.Parent, r.Span)
	}
	if r.Parent != "" {
		t.Fatalf("root has parent %s", r.Parent)
	}
	if c.Start != 1 || c.End != 3 || r.Start != 0 || r.End != 4 {
		t.Fatalf("bad times: child [%g,%g] root [%g,%g]", c.Start, c.End, r.Start, r.End)
	}
	if c.Attrs["server"] != "se01:9094" || r.Attrs["task_id"] != "7" {
		t.Fatalf("attrs lost: child %v root %v", c.Attrs, r.Attrs)
	}
	if ctx := root.Context(); ctx.Baggage != "cat=analysis" {
		t.Fatalf("baggage lost: %+v", ctx)
	}
	if got := child.Context().Baggage; got != "cat=analysis" {
		t.Fatalf("baggage not inherited: %q", got)
	}
}

func TestStartWithInvalidParentBecomesRoot(t *testing.T) {
	var buf bytes.Buffer
	now := 0.0
	tr, _, log := testTracer(&buf, &now, 0)

	s := tr.Start(Context{}, "worker", "task")
	if !s.Context().Valid() {
		t.Fatal("degraded root has invalid context")
	}
	s.End()
	recs := drain(t, &buf, log)
	if len(recs) != 1 || recs[0].Parent != "" {
		t.Fatalf("degraded root not recorded as root: %+v", recs)
	}
}

func TestHeadSamplingRateBound(t *testing.T) {
	var buf bytes.Buffer
	now := 0.0
	tr, reg, log := testTracer(&buf, &now, 2) // 2 traces/sec, burst 2

	sampled := 0
	for i := 0; i < 10; i++ {
		s := tr.Root("master", "task", "")
		if s.Sampled() {
			sampled++
		}
		s.End()
	}
	if sampled != 2 {
		t.Fatalf("burst: sampled %d, want 2", sampled)
	}
	// A second later the bucket has refilled to the cap: two more
	// sampled roots, then drops resume.
	now = 1.0
	s1 := tr.Root("master", "task", "")
	s2 := tr.Root("master", "task", "")
	u := tr.Root("master", "task", "")
	if !s1.Sampled() || !s2.Sampled() {
		t.Fatal("tokens not refilled after 1s")
	}
	if u.Sampled() {
		t.Fatal("third root sampled past the refilled bucket")
	}
	// Unsampled roots still propagate a valid context with the 00 flag.
	ctx := u.Context()
	if !ctx.Valid() || ctx.Sampled {
		t.Fatalf("unsampled context wrong: %+v", ctx)
	}
	child := tr.Start(ctx, "worker", "x")
	if child.Sampled() {
		t.Fatal("child of unsampled parent is sampled")
	}
	child.Attr("k", "v") // must not allocate into the record path
	child.End()
	u.End()
	s1.End()
	s2.End()

	recs := drain(t, &buf, log)
	// 2 burst + 2 refilled = 4 recorded roots, nothing else.
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	snap := reg.Snapshot()
	var sampledTotal, droppedTotal float64
	for _, p := range snap.Series {
		switch p.Name {
		case "lobster_trace_traces_sampled_total":
			sampledTotal = p.Value
		case "lobster_trace_traces_dropped_total":
			droppedTotal = p.Value
		}
	}
	if sampledTotal != 4 || droppedTotal != 9 {
		t.Fatalf("sampled=%g dropped=%g, want 4/9", sampledTotal, droppedTotal)
	}
	if snap.Info["trace_sampling"] != "2/s" {
		t.Fatalf("sampling info = %q", snap.Info["trace_sampling"])
	}
}

func TestDeterministicIDs(t *testing.T) {
	mk := func() []string {
		var buf bytes.Buffer
		now := 0.0
		tr, _, log := testTracer(&buf, &now, 0)
		for i := 0; i < 5; i++ {
			s := tr.Root("sim", "task", "")
			c := tr.Start(s.Context(), "sim", "execute")
			c.End()
			s.End()
		}
		var ids []string
		for _, r := range drain(t, &buf, log) {
			ids = append(ids, r.Trace+"/"+r.Span)
		}
		return ids
	}
	a, b := mk(), mk()
	if len(a) != 10 {
		t.Fatalf("got %d ids", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// BenchmarkDisabledTracer pins the disabled fast path to the telemetry
// bar: a nil tracer span round trip must stay in single-digit
// nanoseconds with zero allocations.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Start(Context{}, "worker", "stage_in")
		s.Attr("k", "v")
		s.End()
	}
}

// BenchmarkUnsampledSpan measures the sampled-out path: context
// propagation stays intact but nothing is recorded.
func BenchmarkUnsampledSpan(b *testing.B) {
	var buf bytes.Buffer
	now := 0.0
	tr, _, _ := testTracer(&buf, &now, 0)
	parent := Context{TraceID: 1, SpanID: 2, Sampled: false}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.StartAt(0, parent, "worker", "stage_in")
		s.Attr("k", "v")
		s.EndAt(1)
	}
}
