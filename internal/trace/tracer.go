package trace

import (
	"strconv"
	"sync"
	"sync/atomic"

	"lobster/internal/telemetry"
)

// EventType tags trace records in the shared telemetry event log, next
// to the "task" and "span" events the monitor already replays.
const EventType = "trace"

// Record is the JSONL payload of one completed span. IDs are 16-digit
// hex strings (uint64 does not survive a float64 JSON round trip).
type Record struct {
	Trace  string            `json:"trace"`
	Span   string            `json:"span"`
	Parent string            `json:"parent,omitempty"`
	Comp   string            `json:"comp"` // emitting component: master, foreman, worker, chirp, squid, …
	Name   string            `json:"name"` // operation: task, dispatch, stage_in, get, …
	Start  float64           `json:"start"`
	End    float64           `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Config configures a Tracer.
type Config struct {
	// Registry supplies the clock and receives the tracer's own meters.
	// The tracer shares whatever clock the registry runs on, so traces
	// carry wall time on the real plane and simulated seconds in the
	// simulator.
	Registry *telemetry.Registry
	// Log receives one "trace" event per sampled span. A nil Log
	// disables tracing entirely: New returns nil.
	Log *telemetry.EventLog
	// MaxTracesPerSec bounds head sampling: at most this many new root
	// traces are sampled per clock second (token bucket with a burst of
	// the same size). Zero or negative means sample every trace.
	MaxTracesPerSec float64
	// Seed perturbs the deterministic ID sequence. Sim runs leave it
	// fixed so trace logs are bit-identical across runs.
	Seed uint64
}

// Tracer mints spans and writes sampled ones to the event log. The nil
// Tracer is fully disabled: every method on it, and on the nil spans it
// returns, is a no-op.
type Tracer struct {
	reg   *telemetry.Registry
	log   *telemetry.EventLog
	seed  uint64
	ctr   atomic.Uint64
	limit float64

	mu     sync.Mutex // guards the token bucket
	tokens float64
	last   float64

	spans   *telemetry.Counter // sampled spans recorded
	sampled *telemetry.Counter // root traces admitted by head sampling
	dropped *telemetry.Counter // root traces rejected by head sampling
}

// New builds a tracer. A nil cfg.Log yields a nil (disabled) tracer, so
// callers can write trace.New(trace.Config{Log: maybeNil, …}) and let
// the no-op fast path take over.
func New(cfg Config) *Tracer {
	if cfg.Log == nil {
		return nil
	}
	t := &Tracer{
		reg:   cfg.Registry,
		log:   cfg.Log,
		seed:  cfg.Seed,
		limit: cfg.MaxTracesPerSec,
	}
	if t.limit > 0 {
		t.tokens = t.limit // full bucket at start
		t.last = cfg.Registry.Now()
	}
	t.spans = cfg.Registry.Counter("lobster_trace_spans_total",
		"Sampled trace spans recorded to the event log.")
	t.sampled = cfg.Registry.Counter("lobster_trace_traces_sampled_total",
		"Root traces admitted by head sampling.")
	t.dropped = cfg.Registry.Counter("lobster_trace_traces_dropped_total",
		"Root traces rejected by the head-sampling rate bound.")
	cfg.Registry.SetInfo("trace_sampling", samplingInfo(cfg.MaxTracesPerSec))
	return t
}

func samplingInfo(limit float64) string {
	if limit <= 0 {
		return "all"
	}
	return strconv.FormatFloat(limit, 'g', -1, 64) + "/s"
}

// Enabled reports whether spans will be recorded at all.
func (t *Tracer) Enabled() bool { return t != nil }

// Now reads the tracer's clock (the registry clock); 0 when disabled.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.reg.Now()
}

// newID derives the next span/trace ID from a seeded splitmix64 walk
// over an atomic counter — deterministic under the simulator's
// cooperative scheduling, collision-free in practice, and free of any
// coupling to the simulation RNG.
func (t *Tracer) newID() uint64 {
	x := t.seed + t.ctr.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// admit is the head-sampling decision for a new root trace.
func (t *Tracer) admit(now float64) bool {
	if t.limit <= 0 {
		t.sampled.Inc()
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if dt := now - t.last; dt > 0 {
		t.tokens += dt * t.limit
		if t.tokens > t.limit {
			t.tokens = t.limit
		}
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		t.sampled.Inc()
		return true
	}
	t.dropped.Inc()
	return false
}

// Span is one timed operation in a trace. The nil Span is inert; an
// unsampled span still carries a valid Context (so the 00 sampling flag
// propagates downstream) but records nothing.
type Span struct {
	t      *Tracer
	ctx    Context
	parent uint64
	comp   string
	name   string
	start  float64
	attrs  map[string]string
	ended  bool
}

// Root starts a new trace with a fresh head-sampling decision, stamped
// from the registry clock.
func (t *Tracer) Root(comp, name, baggage string) *Span {
	if t == nil {
		return nil
	}
	return t.RootAt(t.reg.Now(), comp, name, baggage)
}

// RootAt is Root with an explicit timestamp — the simulator's path,
// where span boundaries are computed model values rather than clock
// readings.
func (t *Tracer) RootAt(at float64, comp, name, baggage string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t: t,
		ctx: Context{
			TraceID: t.newID(),
			SpanID:  t.newID(),
			Sampled: t.admit(at),
			Baggage: baggage,
		},
		comp:  comp,
		name:  name,
		start: at,
	}
}

// Start opens a child span under parent. An invalid parent context
// degrades to a fresh root — the receiving side of a malformed or
// missing trace token never errors, it just starts over.
func (t *Tracer) Start(parent Context, comp, name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartAt(t.reg.Now(), parent, comp, name)
}

// StartAt is Start with an explicit timestamp.
func (t *Tracer) StartAt(at float64, parent Context, comp, name string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.RootAt(at, comp, name, "")
	}
	return &Span{
		t: t,
		ctx: Context{
			TraceID: parent.TraceID,
			SpanID:  t.newID(),
			Sampled: parent.Sampled,
			Baggage: parent.Baggage,
		},
		parent: parent.SpanID,
		comp:   comp,
		name:   name,
		start:  at,
	}
}

// Context returns the span's propagation context; encode it into the
// outgoing protocol hop. The nil span yields the zero (invalid) Context,
// so downstream components start fresh roots — tracing composes even
// when only part of the stack has it enabled.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// Sampled reports whether this span will be recorded.
func (s *Span) Sampled() bool { return s != nil && s.ctx.Sampled }

// Attr annotates the span. Attributes on unsampled spans are dropped
// without allocating.
func (s *Span) Attr(key, value string) {
	if s == nil || !s.ctx.Sampled {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// AttrInt annotates the span with an integer value.
func (s *Span) AttrInt(key string, value int64) {
	if s == nil || !s.ctx.Sampled {
		return
	}
	s.Attr(key, strconv.FormatInt(value, 10))
}

// End closes the span at the registry clock and records it if sampled.
// Ending twice, or ending a nil span, is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.EndAt(s.t.reg.Now())
}

// EndAt closes the span at an explicit timestamp.
func (s *Span) EndAt(at float64) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if !s.ctx.Sampled {
		return
	}
	rec := Record{
		Trace: hex16(s.ctx.TraceID),
		Span:  hex16(s.ctx.SpanID),
		Comp:  s.comp,
		Name:  s.name,
		Start: s.start,
		End:   at,
		Attrs: s.attrs,
	}
	if s.parent != 0 {
		rec.Parent = hex16(s.parent)
	}
	s.t.spans.Inc()
	s.t.log.Emit(EventType, &rec)
}

func hex16(v uint64) string {
	var buf [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}
