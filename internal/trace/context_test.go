package trace

import (
	"net/http"
	"strings"
	"testing"
)

func TestContextRoundTrip(t *testing.T) {
	cases := []Context{
		{TraceID: 1, SpanID: 2, Sampled: true},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef, Sampled: false},
		{TraceID: ^uint64(0), SpanID: 0, Sampled: true, Baggage: "cat=ttbar"},
		{TraceID: 7, SpanID: 7, Sampled: false, Baggage: "wf=mc-gen-2026,step=3"},
	}
	for _, c := range cases {
		enc := c.Encode()
		if strings.ContainsAny(enc, " \t\n\r") {
			t.Fatalf("Encode(%+v) = %q contains whitespace", c, enc)
		}
		got, ok := Parse(enc)
		if !ok {
			t.Fatalf("Parse(%q) failed", enc)
		}
		if got != c {
			t.Fatalf("round trip: got %+v, want %+v", got, c)
		}
	}
}

func TestContextBaggageWithDashes(t *testing.T) {
	c := Context{TraceID: 3, SpanID: 4, Sampled: true, Baggage: "a-b-c-d"}
	got, ok := Parse(c.Encode())
	if !ok || got.Baggage != "a-b-c-d" {
		t.Fatalf("baggage with dashes: got %+v ok=%v", got, ok)
	}
}

func TestEncodeSanitizesBaggageWhitespace(t *testing.T) {
	c := Context{TraceID: 3, SpanID: 4, Sampled: true, Baggage: "two words\tand\nmore"}
	enc := c.Encode()
	if strings.ContainsAny(enc, " \t\n\r") {
		t.Fatalf("Encode left whitespace in %q", enc)
	}
	got, ok := Parse(enc)
	if !ok || got.Baggage != "two_words_and_more" {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestZeroContextEncodesEmpty(t *testing.T) {
	if enc := (Context{}).Encode(); enc != "" {
		t.Fatalf("zero context encoded to %q", enc)
	}
}

// TestParseMalformed is the degradation contract: anything malformed
// must decode to (zero, false) — the receiver starts a fresh root and
// the task proceeds. Parse must never panic or reject a task.
func TestParseMalformed(t *testing.T) {
	bad := []string{
		"",
		"lt1",
		"lt1-",
		"lt2-0000000000000001-0000000000000002-01",  // wrong version
		"lt1-1-2-01",                                // short hex fields
		"lt1-000000000000000g-0000000000000002-01",  // bad hex
		"lt1-0000000000000000-0000000000000002-01",  // zero trace ID
		"lt1-0000000000000001-0000000000000002-02",  // bad flags
		"lt1-0000000000000001-0000000000000002-1",   // short flags
		"lt1-0000000000000001-0000000000000002",     // missing flags
		"lt1-0000000000000001",                      // missing span
		"garbage",
		"lt1-00000000000000010000000000000002-01",
		"lt1--0000000000000001-0000000000000002-01",
		"LT1-0000000000000001-0000000000000002-01", // case-sensitive version
		strings.Repeat("lt1-", 1000),
	}
	for _, s := range bad {
		got, ok := Parse(s)
		if ok || got != (Context{}) {
			t.Errorf("Parse(%q) = %+v, %v; want zero, false", s, got, ok)
		}
	}
}

// FuzzParse asserts Parse never panics and that every accepted token
// re-encodes to something Parse accepts with identical identity.
func FuzzParse(f *testing.F) {
	f.Add("lt1-0000000000000001-0000000000000002-01")
	f.Add("lt1-deadbeefcafef00d-0123456789abcdef-00-baggage")
	f.Add("")
	f.Add("lt1----")
	f.Add("lt1-0000000000000001-0000000000000002-01-a-b-c")
	f.Fuzz(func(t *testing.T, s string) {
		c, ok := Parse(s)
		if !ok {
			if c != (Context{}) {
				t.Fatalf("Parse(%q) rejected but returned %+v", s, c)
			}
			return
		}
		if !c.Valid() {
			t.Fatalf("Parse(%q) accepted an invalid context", s)
		}
		c2, ok2 := Parse(c.Encode())
		if !ok2 || c2.TraceID != c.TraceID || c2.SpanID != c.SpanID || c2.Sampled != c.Sampled {
			t.Fatalf("re-encode of %q lost identity: %+v vs %+v", s, c2, c)
		}
	})
}

func TestHTTPCarrier(t *testing.T) {
	c := Context{TraceID: 9, SpanID: 10, Sampled: true, Baggage: "x"}
	h := make(http.Header)
	c.SetHTTP(h)
	got, ok := FromHTTP(h)
	if !ok || got != c {
		t.Fatalf("HTTP round trip: got %+v ok=%v", got, ok)
	}
	// Zero context clears the header rather than sending garbage.
	(Context{}).SetHTTP(h)
	if v := h.Get(Header); v != "" {
		t.Fatalf("zero SetHTTP left header %q", v)
	}
	if _, ok := FromHTTP(make(http.Header)); ok {
		t.Fatal("FromHTTP on empty header succeeded")
	}
}
