// Package trace is Lobster's distributed-tracing layer: a propagated
// trace context (trace ID, parent span ID, sampled flag, baggage) that
// flows across every component boundary — wq master → foreman → worker
// dispatch, worker → chirp stage-in/out, worker → squid/CVMFS software
// fetch, worker → xrootd reads, and merge jobs — plus span recording
// into the shared telemetry event log and offline analysis (span trees,
// critical path, per-segment breakdown, offender attribution).
//
// # Wire format
//
// A context travels as a single token with no whitespace, so it fits in
// HTTP headers, the wq task JSON, and the space-delimited chirp line
// protocol without escaping:
//
//	lt1-<trace id:16 hex>-<span id:16 hex>-<01|00>[-<baggage>]
//
// "lt1" versions the format; 01/00 is the head-sampling decision made at
// the root and inherited by every downstream hop. Parsing is tolerant by
// design: any malformed token decodes to the zero Context and the
// receiver starts a fresh root — propagation bugs degrade tracing, they
// never fail a task.
//
// # Zero cost when disabled
//
// Like the telemetry instruments, the nil *Tracer and nil *Span are
// complete no-ops whose methods compile to a single predictable branch
// (see BenchmarkDisabledTracer), so components instrument
// unconditionally.
package trace

import (
	"net/http"
	"strconv"
	"strings"
)

// Header is the HTTP header carrying a trace context across the squid
// proxy, CVMFS/parrot fetches, and frontier lookups.
const Header = "Lobster-Trace"

// prefix versions the wire encoding.
const prefix = "lt1"

// Context identifies one position in a distributed trace. The zero
// Context is invalid and means "no incoming trace".
type Context struct {
	TraceID uint64 // all spans of one task share this; 0 ⇒ invalid
	SpanID  uint64 // the sender's span, i.e. the receiver's parent
	Sampled bool   // head-sampling decision, made once at the root
	Baggage string // opaque task annotation (category, workflow)
}

// Valid reports whether c carries a usable trace identity.
func (c Context) Valid() bool { return c.TraceID != 0 }

// OrElse returns c when valid and alt otherwise — the fallback pattern
// of partially-instrumented stacks: chain under the local span when
// tracing is on, else relay the upstream context unchanged.
func (c Context) OrElse(alt Context) Context {
	if c.Valid() {
		return c
	}
	return alt
}

// Encode renders c in wire format. The zero Context encodes to "" so
// callers can assign it to a field or header unconditionally. Whitespace
// in baggage is replaced with '_' to keep the token protocol-safe.
func (c Context) Encode() string {
	if !c.Valid() {
		return ""
	}
	var b strings.Builder
	b.Grow(len(prefix) + 1 + 16 + 1 + 16 + 1 + 2 + 1 + len(c.Baggage))
	b.WriteString(prefix)
	b.WriteByte('-')
	writeHex16(&b, c.TraceID)
	b.WriteByte('-')
	writeHex16(&b, c.SpanID)
	if c.Sampled {
		b.WriteString("-01")
	} else {
		b.WriteString("-00")
	}
	if c.Baggage != "" {
		b.WriteByte('-')
		for _, r := range c.Baggage {
			if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
				b.WriteByte('_')
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

func writeHex16(b *strings.Builder, v uint64) {
	var buf [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	b.Write(buf[:])
}

// Parse decodes a wire token. It is deliberately forgiving: anything
// that does not parse — wrong version, short fields, bad hex, zero
// trace ID — returns (Context{}, false) and the caller proceeds with a
// fresh root. It never returns an error, because a trace header must
// never be able to fail a task.
func Parse(s string) (Context, bool) {
	if s == "" {
		return Context{}, false
	}
	// lt1 - trace - span - flags [- baggage…]
	parts := strings.SplitN(s, "-", 5)
	if len(parts) < 4 || parts[0] != prefix {
		return Context{}, false
	}
	if len(parts[1]) != 16 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return Context{}, false
	}
	traceID, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil || traceID == 0 {
		return Context{}, false
	}
	spanID, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return Context{}, false
	}
	var sampled bool
	switch parts[3] {
	case "01":
		sampled = true
	case "00":
		sampled = false
	default:
		return Context{}, false
	}
	c := Context{TraceID: traceID, SpanID: spanID, Sampled: sampled}
	if len(parts) == 5 {
		c.Baggage = parts[4]
	}
	return c, true
}

// FromHTTP extracts a context from the Lobster-Trace request header.
func FromHTTP(h http.Header) (Context, bool) {
	return Parse(h.Get(Header))
}

// SetHTTP injects c into h. The zero Context removes the header, so the
// call is safe unconditionally.
func (c Context) SetHTTP(h http.Header) {
	if enc := c.Encode(); enc != "" {
		h.Set(Header, enc)
	} else {
		h.Del(Header)
	}
}
