package trace

import (
	"net/http"
	"time"
)

// Transport is an http.RoundTripper that injects a fixed trace context
// into every outgoing request — the idiom for clients (parrot mounts,
// frontier lookups) whose request path offers no per-call hook. The
// request is cloned before mutation, as RoundTrip contracts require.
type Transport struct {
	Base http.RoundTripper // nil means http.DefaultTransport
	Ctx  Context
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Ctx.Valid() {
		req = req.Clone(req.Context())
		t.Ctx.SetHTTP(req.Header)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// WrapClient returns a client whose requests carry ctx in the
// Lobster-Trace header. An invalid ctx returns base unchanged (which
// may be nil); a nil base with a valid ctx wraps a fresh client with a
// 30 s timeout, matching the defaults of the services that accept one.
func WrapClient(base *http.Client, ctx Context) *http.Client {
	if !ctx.Valid() {
		return base
	}
	wrapped := &http.Client{Timeout: 30 * time.Second}
	var inner http.RoundTripper
	if base != nil {
		wrapped.Timeout = base.Timeout
		wrapped.CheckRedirect = base.CheckRedirect
		wrapped.Jar = base.Jar
		inner = base.Transport
	}
	wrapped.Transport = &Transport{Base: inner, Ctx: ctx}
	return wrapped
}
