package monitor

import (
	"encoding/json"
	"fmt"
	"io"

	"lobster/internal/telemetry"
)

// ReplayLog rebuilds the monitor's record database from a structured JSONL
// event log (the crash-recovery path: a restarted Lobster replays the log
// its predecessor emitted). Events with type "task" carry one TaskRecord
// each; "task_batch" events carry a slice of them (written by runs with
// event batching enabled); "alert" events carry one health-plane
// AlertRecord, collected into the alert history (and not counted);
// "election" events carry one control-plane ElectionRecord, collected
// into the leadership history (and not counted); other event types are
// skipped. Returns the number of task records replayed.
func (m *Monitor) ReplayLog(r io.Reader) (int, error) {
	n := 0
	err := telemetry.ReadEvents(r, m.replayEvent(&n))
	return n, err
}

// ReplayLogPath is ReplayLog for a log file on disk, replaying any
// rotated segments (<path>.000001, …) before the live file so a
// size-capped log restores the full task history in write order.
func (m *Monitor) ReplayLogPath(path string) (int, error) {
	n := 0
	err := telemetry.ReadEventsPath(path, m.replayEvent(&n))
	return n, err
}

func (m *Monitor) replayEvent(n *int) func(telemetry.Event) error {
	return func(ev telemetry.Event) error {
		switch ev.Type {
		case "task":
			var rec TaskRecord
			if err := json.Unmarshal(ev.Data, &rec); err != nil {
				return fmt.Errorf("monitor: replaying task event: %w", err)
			}
			m.Add(rec)
			*n++
		case "task_batch":
			var recs []TaskRecord
			if err := json.Unmarshal(ev.Data, &recs); err != nil {
				return fmt.Errorf("monitor: replaying task_batch event: %w", err)
			}
			for _, rec := range recs {
				m.Add(rec)
				*n++
			}
		case "alert":
			var a AlertRecord
			if err := json.Unmarshal(ev.Data, &a); err != nil {
				return fmt.Errorf("monitor: replaying alert event: %w", err)
			}
			if a.Time == 0 {
				a.Time = ev.Time
			}
			m.AddAlert(a)
		case "election":
			var e ElectionRecord
			if err := json.Unmarshal(ev.Data, &e); err != nil {
				return fmt.Errorf("monitor: replaying election event: %w", err)
			}
			if e.Time == 0 {
				e.Time = ev.Time
			}
			m.AddElection(e)
		}
		return nil
	}
}
