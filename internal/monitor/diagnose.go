package monitor

import "fmt"

// Advice is one diagnosis produced from the monitoring data. The four
// built-in rules are exactly the paper's §5 troubleshooting list.
type Advice struct {
	// Code identifies the rule that fired.
	Code string
	// Message is the human-readable diagnosis and remedy.
	Message string
	// Value is the measured quantity that triggered the rule.
	Value float64
	// Threshold is the limit the value exceeded.
	Threshold float64
}

// Thresholds tunes the diagnosis rules; zero fields take defaults.
type Thresholds struct {
	// LostFraction: lost runtime / total runtime above this suggests the
	// task size is too large for the eviction rate. Default 0.10.
	LostFraction float64
	// WQStageInFraction: master→worker transfer time above this fraction of
	// total suggests deploying more foremen. Default 0.05.
	WQStageInFraction float64
	// SetupFraction: software setup above this fraction of task wall time
	// suggests an overloaded squid. Default 0.20.
	SetupFraction float64
	// StageOutFraction: output staging above this fraction of task wall
	// time suggests an overloaded chirp server. Default 0.10.
	StageOutFraction float64
}

func (t *Thresholds) defaults() {
	if t.LostFraction <= 0 {
		t.LostFraction = 0.10
	}
	if t.WQStageInFraction <= 0 {
		t.WQStageInFraction = 0.05
	}
	if t.SetupFraction <= 0 {
		t.SetupFraction = 0.20
	}
	if t.StageOutFraction <= 0 {
		t.StageOutFraction = 0.10
	}
}

// Rule codes.
const (
	AdviceTaskTooLarge    = "task-too-large"
	AdviceNeedForemen     = "need-foremen"
	AdviceSquidOverloaded = "squid-overloaded"
	AdviceChirpOverloaded = "chirp-overloaded"
)

// Diagnose evaluates the §5 heuristics over the accumulated records.
func (m *Monitor) Diagnose(th Thresholds) []Advice {
	th.defaults()
	var (
		total, lost, wqIn, setup, stageOut, wall float64
	)
	m.Each(func(r *TaskRecord) {
		w := r.WallTime()
		total += w + r.WQStageIn + r.WQStageOut
		wall += w
		lost += r.LostTime
		wqIn += r.WQStageIn
		setup += r.SetupTime
		stageOut += r.StageOut
	})
	var advice []Advice
	if total <= 0 {
		return advice
	}
	if f := lost / (total + lost); f > th.LostFraction {
		advice = append(advice, Advice{
			Code:      AdviceTaskTooLarge,
			Value:     f,
			Threshold: th.LostFraction,
			Message: fmt.Sprintf("%.0f%% of runtime lost to eviction: the target task size "+
				"is too high; reduce tasklets per task so less work is lost per preemption", f*100),
		})
	}
	if f := wqIn / total; f > th.WQStageInFraction {
		advice = append(advice, Advice{
			Code:      AdviceNeedForemen,
			Value:     f,
			Threshold: th.WQStageInFraction,
			Message: fmt.Sprintf("%.0f%% of time in sandbox stage-in: deploy more foremen "+
				"to spread the load of sending out the sandbox", f*100),
		})
	}
	if wall > 0 {
		if f := setup / wall; f > th.SetupFraction {
			advice = append(advice, Advice{
				Code:      AdviceSquidOverloaded,
				Value:     f,
				Threshold: th.SetupFraction,
				Message: fmt.Sprintf("%.0f%% of task time in software setup: squid proxy "+
					"overloaded; increase cores per worker (shared cache) or deploy more proxies", f*100),
			})
		}
		if f := stageOut / wall; f > th.StageOutFraction {
			advice = append(advice, Advice{
				Code:      AdviceChirpOverloaded,
				Value:     f,
				Threshold: th.StageOutFraction,
				Message: fmt.Sprintf("%.0f%% of task time in output staging: chirp server "+
					"overloaded; adjust the number of concurrent connections permitted", f*100),
			})
		}
	}
	return advice
}
