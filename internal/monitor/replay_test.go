package monitor

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"lobster/internal/telemetry"
	"lobster/internal/tsdb"
)

// TestReplayLogEquivalence writes records through a telemetry event log and
// replays them into a fresh monitor: the rebuilt DB must match the live one
// record for record, and produce identical query results.
func TestReplayLogEquivalence(t *testing.T) {
	live := New()
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	for i := 0; i < 50; i++ {
		rec := TaskRecord{
			TaskID: int64(i + 1), Kind: "analysis", Worker: fmt.Sprintf("w%d", i%4),
			Submit: float64(i), Start: float64(i) + 1, Finish: float64(i) + 10,
			CPUTime: 5, IOTime: 2, SetupTime: 1,
			ExitCode: map[bool]int{true: 0, false: 40}[i%7 != 0],
			Metrics:  map[string]float64{"events": float64(i * 10)},
		}
		live.Add(rec)
		log.Emit("task", rec)
	}
	log.Emit("span", map[string]any{"span_id": 1}) // unrelated type: skipped
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	rebuilt := New()
	n, err := rebuilt.ReplayLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("replayed %d records, want 50", n)
	}
	if !reflect.DeepEqual(live.Records(), rebuilt.Records()) {
		t.Error("replayed records differ from live records")
	}

	a, err := live.Timeline(0, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rebuilt.Timeline(0, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("timelines differ: live=%+v rebuilt=%+v", a, b)
	}
	fa, _ := live.FailureCodes(0, 60, 10)
	fb, _ := rebuilt.FailureCodes(0, 60, 10)
	if !reflect.DeepEqual(fa, fb) {
		t.Errorf("failure codes differ: live=%v rebuilt=%v", fa, fb)
	}
}

// TestReplayLogBatchedEvents replays a log mixing single "task" events
// with "task_batch" events (the framing runs with event batching enabled
// write) and checks the rebuilt DB matches a monitor fed the same records
// one at a time.
func TestReplayLogBatchedEvents(t *testing.T) {
	live := New()
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	mk := func(i int) TaskRecord {
		return TaskRecord{
			TaskID: int64(i + 1), Kind: "analysis", Worker: fmt.Sprintf("w%d", i%3),
			Submit: float64(i), Start: float64(i) + 1, Finish: float64(i) + 8,
			CPUTime: 4, ExitCode: []int{0, 0, 40}[i%3],
		}
	}
	i := 0
	for i < 10 { // singles first: old-style prefix of a mixed log
		rec := mk(i)
		live.Add(rec)
		log.Emit("task", rec)
		i++
	}
	for i < 50 { // then batches of 8
		batch := make([]TaskRecord, 0, 8)
		for len(batch) < 8 && i < 50 {
			rec := mk(i)
			live.Add(rec)
			batch = append(batch, rec)
			i++
		}
		log.Emit("task_batch", batch)
	}
	log.Emit("task_batch", []TaskRecord{}) // empty batch: harmless no-op
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	rebuilt := New()
	n, err := rebuilt.ReplayLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("replayed %d records, want 50", n)
	}
	if !reflect.DeepEqual(live.Records(), rebuilt.Records()) {
		t.Error("replayed records differ from live records")
	}
}

// TestReplayLogPathRotated replays a size-capped, rotated on-disk log
// and checks the rebuilt DB holds every record across all segments.
func TestReplayLogPathRotated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	log, err := telemetry.OpenEventLogLimit(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := New()
	for i := 0; i < 60; i++ {
		rec := TaskRecord{
			TaskID: int64(i + 1), Kind: "analysis",
			Submit: float64(i), Start: float64(i) + 1, Finish: float64(i) + 10,
			CPUTime: 5,
		}
		live.Add(rec)
		log.Emit("task", rec)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if files, err := telemetry.EventFiles(path); err != nil || len(files) < 2 {
		t.Fatalf("expected a rotated log, got %v (%v)", files, err)
	}

	rebuilt := New()
	n, err := rebuilt.ReplayLogPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("replayed %d records, want 60", n)
	}
	if !reflect.DeepEqual(live.Records(), rebuilt.Records()) {
		t.Error("replayed records differ from live records")
	}
}

// TestTimelineIndexOutOfOrder adds records in scrambled finish order and
// checks windowed queries against a monitor populated in sorted order —
// exercising the re-sort path of the cached index, including invalidation
// by Adds between queries.
func TestTimelineIndexOutOfOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]TaskRecord, 200)
	for i := range recs {
		f := rng.Float64() * 1000
		recs[i] = TaskRecord{
			TaskID: int64(i + 1), Start: f - 5, Finish: f,
			CPUTime: 3, ExitCode: []int{0, 0, 0, 50}[i%4],
		}
	}
	// scrambled receives random finish order (stable re-sort path); ordered
	// receives the same records sorted by finish (append fast path).
	scrambled := New()
	for _, r := range recs {
		scrambled.Add(r)
	}
	byFinish := append([]TaskRecord(nil), recs...)
	sort.Slice(byFinish, func(a, b int) bool { return byFinish[a].Finish < byFinish[b].Finish })
	ordered := New()
	for _, r := range byFinish {
		ordered.Add(r)
	}

	check := func(start, end float64) {
		t.Helper()
		a, err := scrambled.Timeline(start, end, 50)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ordered.Timeline(start, end, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("timeline [%g,%g) differs", start, end)
		}
		fa, _ := scrambled.FailureCodes(start, end, 50)
		fb, _ := ordered.FailureCodes(start, end, 50)
		if !reflect.DeepEqual(fa, fb) {
			t.Errorf("failure codes [%g,%g) differ: %v vs %v", start, end, fa, fb)
		}
	}
	check(0, 1000)
	check(900, 1000) // recent window, pruned by the index
	// Invalidate the cached index with more (earlier-finishing) records.
	late := TaskRecord{TaskID: 999, Start: 10, Finish: 20, CPUTime: 1}
	scrambled.Add(late)
	ordered.Add(late)
	check(0, 1000)
	check(0, 100)
}

// BenchmarkTimeline measures windowed timeline queries against 1M records.
// The cached finish-sorted index makes the recent-window query independent
// of run length: it binary-searches to the window instead of scanning all
// 1M records.
func BenchmarkTimeline(b *testing.B) {
	const n = 1_000_000
	const horizon = 48 * 3600.0
	m := New()
	for i := 0; i < n; i++ {
		f := horizon * float64(i) / n
		m.Add(TaskRecord{
			TaskID: int64(i + 1), Start: f - 1800, Finish: f,
			CPUTime: 1500, ExitCode: []int{0, 0, 0, 40}[i%4],
		})
	}
	b.Run("FullWindow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Timeline(0, horizon, 1800); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RecentWindow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Timeline(horizon-3600, horizon, 1800); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RecentFailureCodes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.FailureCodes(horizon-3600, horizon, 1800); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestReplayLogPartialWritePrefixes is the crash-recovery property test:
// replaying ANY byte prefix of a valid event log — the shape a crash
// mid-append leaves behind — must succeed and yield exactly the records
// whose JSON lines fully fit in the prefix, in order. A truncation that
// only eats the trailing newline still leaves a complete final line; any
// deeper cut is the torn tail the reader skips.
func TestReplayLogPartialWritePrefixes(t *testing.T) {
	live := New()
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	const n = 20
	var ends []int // byte offset just past each task record's line
	for i := 0; i < n; i++ {
		rec := TaskRecord{
			TaskID: int64(i + 1), Kind: "analysis", Worker: fmt.Sprintf("w%d", i%3),
			Submit: float64(i), Start: float64(i) + 1, Finish: float64(i) + 9,
			CPUTime: 4, ExitCode: []int{0, 0, 40}[i%3],
			Metrics: map[string]float64{"events": float64(i)},
		}
		live.Add(rec)
		log.Emit("task", rec)
		if i == n/2 {
			log.Emit("span", map[string]any{"span_id": i}) // skipped on replay
		}
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		if i == n/2 {
			ends = append(ends, -1) // placeholder overwritten below
		}
		ends = append(ends, buf.Len())
	}
	// The span event shares a flush with record n/2; recompute its task
	// line end by scanning newlines so the expectation stays exact.
	ends = ends[:0]
	off := 0
	for _, line := range bytes.SplitAfter(buf.Bytes(), []byte("\n")) {
		off += len(line)
		if bytes.Contains(line, []byte(`"type":"task"`)) {
			ends = append(ends, off)
		}
	}
	if len(ends) != n {
		t.Fatalf("found %d task lines, want %d", len(ends), n)
	}

	full := buf.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		m := New()
		got, err := m.ReplayLog(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("prefix of %d bytes: %v", cut, err)
		}
		want := 0
		for _, end := range ends {
			if cut >= end || cut == end-1 { // line complete, newline optional at EOF
				want++
			}
		}
		if got != want {
			t.Fatalf("prefix of %d bytes replayed %d records, want %d", cut, got, want)
		}
		if m.Len() != got {
			t.Fatalf("prefix of %d bytes: DB holds %d records, replay reported %d", cut, m.Len(), got)
		}
		if got > 0 && !reflect.DeepEqual(m.Records(), live.Records()[:got]) {
			t.Fatalf("prefix of %d bytes: replayed records are not a prefix of the live DB", cut)
		}
	}
}

// TestReplayLogInterleavedHistoryPlane replays a log shaped like a full
// production run with the history plane armed: task batches, alert
// transitions, profile-bundle captures, and the tsdb's segment-rotation
// markers all interleaved in one stream. Replay must restore every task
// and alert, skip the rest without error — including under every
// possible torn-tail byte prefix a crash could leave.
func TestReplayLogInterleavedHistoryPlane(t *testing.T) {
	live := New()
	var liveAlerts []AlertRecord
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	const n = 24
	for i := 0; i < n; i += 4 {
		batch := make([]TaskRecord, 0, 4)
		for j := i; j < i+4; j++ {
			rec := TaskRecord{
				TaskID: int64(j + 1), Kind: "analysis", Worker: fmt.Sprintf("w%d", j%3),
				Submit: float64(j), Start: float64(j) + 1, Finish: float64(j) + 9,
				CPUTime: 4, ExitCode: []int{0, 0, 40, 0}[j%4],
			}
			live.Add(rec)
			batch = append(batch, rec)
		}
		log.Emit("task_batch", batch)
		// Interleave the other planes' event types between batches.
		switch (i / 4) % 3 {
		case 0:
			a := AlertRecord{
				Time: float64(i), Rule: "stuck_tasks", Severity: "page",
				State: "firing", Value: float64(i) * 10, Threshold: 300,
				Profile: fmt.Sprintf("profiles/bundle-%06d", i),
			}
			liveAlerts = append(liveAlerts, a)
			log.Emit("alert", a)
		case 1:
			log.Emit("profile_bundle", map[string]any{
				"dir": fmt.Sprintf("profiles/bundle-%06d", i), "rule": "stuck_tasks",
				"profiles": []string{"cpu.pprof", "heap.pprof", "goroutine.pprof"},
			})
		case 2:
			log.Emit("tsdb_segment", tsdb.SegmentEvent{
				Seq: i / 4, Path: fmt.Sprintf("tsdb/seg-%06d.tsdb", i/4), Size: 4 << 20,
			})
		}
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	rebuilt := New()
	got, err := rebuilt.ReplayLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("replayed %d task records, want %d", got, n)
	}
	if !reflect.DeepEqual(live.Records(), rebuilt.Records()) {
		t.Error("replayed records differ from live records")
	}
	if !reflect.DeepEqual(liveAlerts, rebuilt.Alerts()) {
		t.Errorf("replayed alerts differ: live=%+v rebuilt=%+v", liveAlerts, rebuilt.Alerts())
	}

	// Crash-recovery sweep: every byte prefix must replay cleanly, and
	// what it restores must be a prefix of the full history — tasks and
	// alerts both monotone in the cut point, never an error, never a
	// half-parsed record.
	full := buf.Bytes()
	prevTasks, prevAlerts := 0, 0
	for cut := 0; cut <= len(full); cut++ {
		m := New()
		nt, err := m.ReplayLog(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("prefix of %d bytes: %v", cut, err)
		}
		na := len(m.Alerts())
		if nt < prevTasks || na < prevAlerts {
			t.Fatalf("prefix of %d bytes lost ground: tasks %d<%d or alerts %d<%d",
				cut, nt, prevTasks, na, prevAlerts)
		}
		prevTasks, prevAlerts = nt, na
		if nt > 0 && !reflect.DeepEqual(m.Records(), live.Records()[:nt]) {
			t.Fatalf("prefix of %d bytes: tasks are not a prefix of the live DB", cut)
		}
		if na > 0 && !reflect.DeepEqual(m.Alerts(), liveAlerts[:na]) {
			t.Fatalf("prefix of %d bytes: alerts are not a prefix of the live history", cut)
		}
	}
	if prevTasks != n || prevAlerts != len(liveAlerts) {
		t.Fatalf("full log replayed %d/%d tasks, %d/%d alerts",
			prevTasks, n, prevAlerts, len(liveAlerts))
	}
}

// TestReplayLogElections replays a log carrying the control plane's
// "election" role transitions interleaved with task records: the
// leadership history must come back in order with event timestamps
// backfilled, without perturbing the task replay count.
func TestReplayLogElections(t *testing.T) {
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	want := []ElectionRecord{
		{Time: 0.1, Node: 3, Term: 1, Role: "candidate"},
		{Time: 0.2, Node: 3, Term: 1, Role: "leader", Leader: 3},
		{Time: 0.3, Node: 1, Term: 1, Role: "follower", Leader: 3},
		{Time: 1.6, Node: 2, Term: 2, Role: "leader", Leader: 2},
	}
	log.Emit("election", want[0])
	log.Emit("election", want[1])
	log.Emit("task", TaskRecord{TaskID: 1, Kind: "analysis", Finish: 0.25})
	log.Emit("election", want[2])
	log.Emit("task", TaskRecord{TaskID: 2, Kind: "analysis", Finish: 1.5})
	log.Emit("election", want[3])
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	m := New()
	n, err := m.ReplayLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d task records, want 2 (elections must not count)", n)
	}
	if !reflect.DeepEqual(m.Elections(), want) {
		t.Fatalf("elections differ:\n got %+v\nwant %+v", m.Elections(), want)
	}

	// An election event without its own timestamp inherits the line's.
	var buf2 bytes.Buffer
	log2 := telemetry.NewEventLog(&buf2, func() float64 { return 4.5 })
	log2.Emit("election", map[string]any{"node": 2, "term": 3, "role": "candidate"})
	if err := log2.Flush(); err != nil {
		t.Fatal(err)
	}
	m2 := New()
	if _, err := m2.ReplayLog(bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatal(err)
	}
	es := m2.Elections()
	if len(es) != 1 || es[0].Time != 4.5 || es[0].Node != 2 || es[0].Term != 3 {
		t.Fatalf("backfilled election record wrong: %+v", es)
	}
}
