package monitor

import (
	"math"
	"testing"

	"lobster/internal/store"
)

// mkRecord builds a simple successful record running [start, start+dur).
func mkRecord(id int64, start, dur, cpu float64) TaskRecord {
	return TaskRecord{
		TaskID: id, Kind: "analysis", Worker: "w",
		Submit: start - 2, Dispatch: start - 1, Start: start,
		Finish: start + dur, Return: start + dur + 1,
		CPUTime: cpu, IOTime: dur - cpu,
	}
}

func TestBreakdownFractions(t *testing.T) {
	m := New()
	// Success: 60 cpu + 40 io over 100s wall.
	m.Add(mkRecord(1, 0, 100, 60))
	// Failure consuming 50s wall.
	m.Add(TaskRecord{TaskID: 2, Start: 0, Finish: 50, ExitCode: 40})
	// WQ transfer overheads on a third task.
	r := mkRecord(3, 0, 100, 100)
	r.WQStageIn, r.WQStageOut = 5, 5
	m.Add(r)

	rows := m.Breakdown()
	byPhase := map[string]BreakdownRow{}
	var fracSum float64
	for _, row := range rows {
		byPhase[row.Phase] = row
		fracSum += row.Fraction
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", fracSum)
	}
	if math.Abs(byPhase["Task CPU Time"].Hours*3600-160) > 1e-9 {
		t.Errorf("cpu hours = %g", byPhase["Task CPU Time"].Hours)
	}
	if math.Abs(byPhase["Task Failed"].Hours*3600-50) > 1e-9 {
		t.Errorf("failed hours = %g", byPhase["Task Failed"].Hours)
	}
	if math.Abs(byPhase["WQ Stage In"].Hours*3600-5) > 1e-9 {
		t.Errorf("wq stage in = %g", byPhase["WQ Stage In"].Hours)
	}
}

func TestBreakdownIncludesLostTime(t *testing.T) {
	m := New()
	r := mkRecord(1, 0, 100, 100)
	r.LostTime = 300 // evicted twice before completing
	m.Add(r)
	rows := m.Breakdown()
	for _, row := range rows {
		if row.Phase == "Task Failed" && math.Abs(row.Hours*3600-300) > 1e-9 {
			t.Errorf("lost time not in failed phase: %g", row.Hours*3600)
		}
	}
}

func TestTimelineConcurrencyAndCompletions(t *testing.T) {
	m := New()
	// Two tasks overlapping in [0,100): one spans the whole window, one
	// only the first half.
	m.Add(mkRecord(1, 0, 100, 100))
	m.Add(mkRecord(2, 0, 50, 25))
	// One failure finishing at t=75.
	m.Add(TaskRecord{TaskID: 3, Start: 50, Finish: 75, ExitCode: 50})

	tl, err := m.Timeline(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Bins != 10 {
		t.Fatalf("bins = %d", tl.Bins)
	}
	// Bin 0: both long tasks running → concurrency 2.
	if math.Abs(tl.Running[0]-2) > 1e-9 {
		t.Errorf("running[0] = %g", tl.Running[0])
	}
	// Bin 6 (t=60..70): task 1 and failing task 3 → 2.
	if math.Abs(tl.Running[6]-2) > 1e-9 {
		t.Errorf("running[6] = %g", tl.Running[6])
	}
	// Completions: task 2 at t=50 → bin 5; failure at t=75 → bin 7.
	if tl.Completed[5] != 1 || tl.FailedN[7] != 1 {
		t.Errorf("completions: %v, failures: %v", tl.Completed, tl.FailedN)
	}
	// Task 1 also completes: finish=100 clamps into the last bin.
	if tl.Completed[9] != 1 {
		t.Errorf("final-bin completion missing: %v", tl.Completed)
	}
	// Efficiency in bin 0: task1 cpu 1.0, task2 cpu 0.5 → (10+5)/20 = 0.75.
	if math.Abs(tl.Eff[0]-0.75) > 1e-9 {
		t.Errorf("eff[0] = %g", tl.Eff[0])
	}
	if tl.BinTime(3) != 30 {
		t.Errorf("BinTime(3) = %g", tl.BinTime(3))
	}
}

func TestTimelineValidation(t *testing.T) {
	m := New()
	if _, err := m.Timeline(0, 0, 10); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := m.Timeline(0, 10, 0); err == nil {
		t.Error("zero bin width accepted")
	}
}

func TestFailureCodes(t *testing.T) {
	m := New()
	m.Add(TaskRecord{TaskID: 1, Start: 0, Finish: 4, ExitCode: 20})
	m.Add(TaskRecord{TaskID: 2, Start: 0, Finish: 7, ExitCode: 50})
	m.Add(TaskRecord{TaskID: 3, Start: 0, Finish: 8, ExitCode: 20})
	m.Add(mkRecord(4, 0, 9, 9)) // success: excluded
	codes, err := m.FailureCodes(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes[0]) != 1 || codes[0][0] != 20 {
		t.Errorf("bin 0 codes = %v", codes[0])
	}
	if len(codes[1]) != 2 || codes[1][0] != 20 || codes[1][1] != 50 {
		t.Errorf("bin 1 codes = %v", codes[1])
	}
}

func TestSegmentHistogram(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		r := mkRecord(int64(i), 0, 100, 60)
		r.SetupTime = float64(i)
		m.Add(r)
	}
	h, err := m.SegmentHistogram("setup", 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 10 {
		t.Errorf("total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Errorf("bin %d = %d", i, h.Counts[i])
		}
	}
	if _, err := m.SegmentHistogram("bogus", 0, 1, 1); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestDiagnoseRules(t *testing.T) {
	m := New()
	// Healthy baseline.
	m.Add(mkRecord(1, 0, 100, 90))
	if advice := m.Diagnose(Thresholds{}); len(advice) != 0 {
		t.Errorf("healthy run produced advice: %+v", advice)
	}

	// Lost runtime → task-too-large.
	m2 := New()
	r := mkRecord(1, 0, 100, 100)
	r.LostTime = 50
	m2.Add(r)
	assertAdvice(t, m2, AdviceTaskTooLarge)

	// Heavy WQ stage-in → need-foremen.
	m3 := New()
	r = mkRecord(1, 0, 100, 100)
	r.WQStageIn = 20
	m3.Add(r)
	assertAdvice(t, m3, AdviceNeedForemen)

	// Long setup → squid-overloaded.
	m4 := New()
	r = mkRecord(1, 0, 100, 50)
	r.SetupTime = 40
	m4.Add(r)
	assertAdvice(t, m4, AdviceSquidOverloaded)

	// Long stage-out → chirp-overloaded.
	m5 := New()
	r = mkRecord(1, 0, 100, 50)
	r.StageOut = 30
	m5.Add(r)
	assertAdvice(t, m5, AdviceChirpOverloaded)
}

func assertAdvice(t *testing.T, m *Monitor, code string) {
	t.Helper()
	for _, a := range m.Diagnose(Thresholds{}) {
		if a.Code == code {
			if a.Value <= a.Threshold {
				t.Errorf("%s fired with value %g <= threshold %g", code, a.Value, a.Threshold)
			}
			if a.Message == "" {
				t.Errorf("%s has no message", code)
			}
			return
		}
	}
	t.Errorf("advice %s not produced", code)
}

func TestDiagnoseEmptyMonitor(t *testing.T) {
	if advice := New().Diagnose(Thresholds{}); len(advice) != 0 {
		t.Errorf("empty monitor produced advice: %+v", advice)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	for i := 0; i < 20; i++ {
		r := mkRecord(int64(i), float64(i), 10, 5)
		r.Metrics = map[string]float64{"events": float64(i * 100)}
		m.Add(r)
	}
	if err := m.SaveTo(db); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	m2 := New()
	if err := m2.LoadFrom(db2); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 20 {
		t.Fatalf("loaded %d records", m2.Len())
	}
	recs := m2.Records()
	found := false
	for _, r := range recs {
		if r.TaskID == 7 && r.Metrics["events"] == 700 {
			found = true
		}
	}
	if !found {
		t.Error("record content lost in round trip")
	}
}
