// Package monitor implements Lobster's comprehensive monitoring system
// (paper §5): per-task records assembled from the instrumented wrapper
// reports and master-side timing, timeline and histogram views over them,
// the runtime decomposition of Figure 8, and the troubleshooting heuristics
// the paper lists (task size vs lost runtime, foremen vs sandbox stage-in,
// squid load vs setup time, chirp load vs stage-out time).
//
// Times are float64 seconds from the run origin so the same machinery serves
// the real execution plane (wall-clock) and the simulation plane (simulated
// clock).
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"lobster/internal/stats"
	"lobster/internal/store"
)

// TaskRecord is the monitoring record for one completed (or failed) task.
type TaskRecord struct {
	TaskID int64  `json:"task_id"`
	Kind   string `json:"kind"` // "analysis", "merge", "simulation", ...
	Worker string `json:"worker"`

	// Lifecycle timestamps, seconds from run origin.
	Submit   float64 `json:"submit"`
	Dispatch float64 `json:"dispatch"`
	Start    float64 `json:"start"`
	Finish   float64 `json:"finish"`
	Return   float64 `json:"return"`

	ExitCode      int    `json:"exit_code"`
	FailedSegment string `json:"failed_segment,omitempty"`
	Requeues      int    `json:"requeues"`

	// Decomposed task time, seconds.
	CPUTime    float64 `json:"cpu_time"`    // pure computation
	IOTime     float64 `json:"io_time"`     // data access within the task
	SetupTime  float64 `json:"setup_time"`  // software environment setup
	StageIn    float64 `json:"stage_in"`    // task-level input staging
	StageOut   float64 `json:"stage_out"`   // task-level output staging
	WQStageIn  float64 `json:"wq_stage_in"` // master→worker transfer (sandbox)
	WQStageOut float64 `json:"wq_stage_out"`
	LostTime   float64 `json:"lost_time"` // runtime destroyed by eviction

	// Metrics are free-form task measurements (events, bytes_in, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Failed reports whether the record is a failure.
func (r *TaskRecord) Failed() bool { return r.ExitCode != 0 }

// WallTime is the task's start→finish duration.
func (r *TaskRecord) WallTime() float64 { return r.Finish - r.Start }

// AlertRecord is one typed health-plane alert transition: a fleet rule
// crossing into "firing" or back to "resolved". The health hub emits these
// as "alert" events on the shared JSONL event log; ReplayLog collects them
// so a crashed (or chaos-stormed) run's alert history is replayable next
// to its task history.
type AlertRecord struct {
	Time      float64 `json:"t"`
	Rule      string  `json:"rule"`
	Severity  string  `json:"severity,omitempty"`
	State     string  `json:"state"` // "firing" or "resolved"
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Help      string  `json:"help,omitempty"`
	// Profile names the archived profile-bundle directory captured when
	// the rule fired, when continuous profiling was armed.
	Profile string `json:"profile,omitempty"`
}

// Firing reports whether the record is a firing transition.
func (a *AlertRecord) Firing() bool { return a.State == "firing" }

// ElectionRecord is one control-plane role transition observed by a
// replicated master: a member becoming candidate, winning leadership, or
// learning who leads its term. The replica group emits these as
// "election" events on the member's JSONL event log (the same stream its
// applied task entries ride), so a replayed log reconstructs leadership
// history next to task history — who was dispatching when each task ran.
type ElectionRecord struct {
	Time   float64 `json:"t"`
	Node   uint64  `json:"node"`
	Term   uint64  `json:"term"`
	Role   string  `json:"role"` // "follower", "candidate", or "leader"
	Leader uint64  `json:"leader,omitempty"`
}

// Monitor accumulates task records. It is safe for concurrent use.
type Monitor struct {
	mu        sync.RWMutex
	records   []TaskRecord
	alerts    []AlertRecord
	elections []ElectionRecord

	// byFinish caches record indices sorted by Finish so windowed queries
	// (Timeline, FailureCodes) can binary-search to their window instead of
	// scanning every record. sortGen is the record count the index was built
	// at; Add invalidates by simply growing records past it.
	byFinish []int
	sortGen  int
}

// New returns an empty monitor.
func New() *Monitor { return &Monitor{} }

// Add appends a record.
func (m *Monitor) Add(r TaskRecord) {
	m.mu.Lock()
	m.records = append(m.records, r)
	m.mu.Unlock()
}

// ensureIndexLocked brings the finish-sorted index up to date. Caller holds
// the write lock. Records usually arrive in roughly finish order (results
// stream back as tasks complete), so the common case appends the new tail
// without sorting; out-of-order arrivals trigger one stable re-sort.
func (m *Monitor) ensureIndexLocked() {
	n := len(m.records)
	if m.sortGen == n {
		return
	}
	tail := len(m.byFinish)
	for i := tail; i < n; i++ {
		m.byFinish = append(m.byFinish, i)
	}
	sorted := true
	for i := tail; i < n; i++ {
		if i > 0 && m.records[m.byFinish[i-1]].Finish > m.records[m.byFinish[i]].Finish {
			sorted = false
			break
		}
	}
	if !sorted {
		// Stable so equal finish times keep arrival order, preserving the
		// accumulation order (and float summation) of the scan-based code.
		sort.SliceStable(m.byFinish, func(a, b int) bool {
			return m.records[m.byFinish[a]].Finish < m.records[m.byFinish[b]].Finish
		})
	}
	m.sortGen = n
}

// Len returns the number of records.
func (m *Monitor) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.records)
}

// Records returns a copy of all records.
func (m *Monitor) Records() []TaskRecord {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]TaskRecord(nil), m.records...)
}

// AddAlert appends a health-plane alert transition.
func (m *Monitor) AddAlert(a AlertRecord) {
	m.mu.Lock()
	m.alerts = append(m.alerts, a)
	m.mu.Unlock()
}

// Alerts returns a copy of the collected alert transitions, in arrival
// (= replay) order.
func (m *Monitor) Alerts() []AlertRecord {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]AlertRecord(nil), m.alerts...)
}

// AddElection appends a control-plane role transition.
func (m *Monitor) AddElection(e ElectionRecord) {
	m.mu.Lock()
	m.elections = append(m.elections, e)
	m.mu.Unlock()
}

// Elections returns a copy of the collected role transitions, in arrival
// (= replay) order.
func (m *Monitor) Elections() []ElectionRecord {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]ElectionRecord(nil), m.elections...)
}

// Each calls fn for every record under the read lock.
func (m *Monitor) Each(fn func(*TaskRecord)) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := range m.records {
		fn(&m.records[i])
	}
}

// --- Figure 8: runtime decomposition ---

// BreakdownRow is one row of the Figure 8 table.
type BreakdownRow struct {
	Phase    string
	Hours    float64
	Fraction float64 // of total
}

// Breakdown aggregates the decomposed task time across all records into the
// phases of Figure 8. Failed tasks contribute their whole wall time to the
// "Task Failed" phase, successful tasks contribute their per-phase split.
func (m *Monitor) Breakdown() []BreakdownRow {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var cpu, io, failed, wqIn, wqOut, lost float64
	for i := range m.records {
		r := &m.records[i]
		lost += r.LostTime
		if r.Failed() {
			failed += r.WallTime()
			continue
		}
		cpu += r.CPUTime
		io += r.IOTime + r.SetupTime + r.StageIn + r.StageOut
		wqIn += r.WQStageIn
		wqOut += r.WQStageOut
	}
	failed += lost
	total := cpu + io + failed + wqIn + wqOut
	rows := []BreakdownRow{
		{Phase: "Task CPU Time", Hours: cpu / 3600},
		{Phase: "Task I/O Time", Hours: io / 3600},
		{Phase: "Task Failed", Hours: failed / 3600},
		{Phase: "WQ Stage In", Hours: wqIn / 3600},
		{Phase: "WQ Stage Out", Hours: wqOut / 3600},
	}
	if total > 0 {
		for i := range rows {
			rows[i].Fraction = rows[i].Hours * 3600 / total
		}
	}
	return rows
}

// --- Timelines (Figures 7, 10, 11) ---

// Timeline is the per-bin view of a run.
type Timeline struct {
	Bins      int
	BinWidth  float64
	Start     float64
	Running   []float64 // mean concurrent tasks per bin
	Completed []int     // tasks finished OK per bin
	FailedN   []int     // tasks finished failed per bin
	Eff       []float64 // CPU-time / wall-clock ratio per bin
	SetupMean []float64 // mean software-setup time of tasks finishing in bin
	StageOut  []float64 // mean stage-out time of tasks finishing in bin
}

// BinTime returns the start time of bin i.
func (t *Timeline) BinTime(i int) float64 { return t.Start + float64(i)*t.BinWidth }

// MakeTimeline bins the records over [start, end) with the given bin width.
func (m *Monitor) MakeTimeline(start, end, binWidth float64) (*Timeline, error) {
	if binWidth <= 0 || end <= start {
		return nil, fmt.Errorf("monitor: invalid timeline [%g,%g) width %g", start, end, binWidth)
	}
	nbins := int(math.Ceil((end - start) / binWidth))
	tl := &Timeline{
		Bins: nbins, BinWidth: binWidth, Start: start,
		Running: make([]float64, nbins), Completed: make([]int, nbins),
		FailedN: make([]int, nbins), Eff: make([]float64, nbins),
		SetupMean: make([]float64, nbins), StageOut: make([]float64, nbins),
	}
	return tl, nil
}

// Timeline computes the full per-bin view.
func (m *Monitor) Timeline(start, end, binWidth float64) (*Timeline, error) {
	tl, err := m.MakeTimeline(start, end, binWidth)
	if err != nil {
		return nil, err
	}
	nbins := tl.Bins
	cpuPerBin := make([]float64, nbins)
	wallPerBin := make([]float64, nbins)
	setupSum := make([]float64, nbins)
	setupN := make([]int, nbins)
	outSum := make([]float64, nbins)
	outN := make([]int, nbins)

	clampBin := func(t float64) int {
		i := int((t - start) / binWidth)
		if i < 0 {
			return 0
		}
		if i >= nbins {
			return nbins - 1
		}
		return i
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureIndexLocked()
	// Prune the prefix of records that finished before the window opened;
	// for recent-window queries over a long run this skips nearly everything.
	first := sort.Search(len(m.byFinish), func(i int) bool {
		return m.records[m.byFinish[i]].Finish > start
	})
	for _, ri := range m.byFinish[first:] {
		r := &m.records[ri]
		if r.Start >= end {
			continue
		}
		// Concurrency: spread the task's [Start, Finish) over bins.
		b0, b1 := clampBin(r.Start), clampBin(r.Finish)
		for b := b0; b <= b1; b++ {
			binLo := start + float64(b)*binWidth
			binHi := binLo + binWidth
			lo, hi := r.Start, r.Finish
			if lo < binLo {
				lo = binLo
			}
			if hi > binHi {
				hi = binHi
			}
			if hi <= lo {
				continue
			}
			overlap := hi - lo
			tl.Running[b] += overlap / binWidth
			wallPerBin[b] += overlap
			if !r.Failed() && r.WallTime() > 0 {
				// Attribute CPU time uniformly over the task's life.
				cpuPerBin[b] += r.CPUTime * overlap / r.WallTime()
			}
		}
		// Completion accounting at finish time; a finish exactly at the
		// window end clamps into the last bin.
		fb := clampBin(r.Finish)
		if r.Finish >= start && r.Finish <= end {
			if r.Failed() {
				tl.FailedN[fb]++
			} else {
				tl.Completed[fb]++
			}
			setupSum[fb] += r.SetupTime
			setupN[fb]++
			outSum[fb] += r.StageOut
			outN[fb]++
		}
	}
	for b := 0; b < nbins; b++ {
		if wallPerBin[b] > 0 {
			tl.Eff[b] = cpuPerBin[b] / wallPerBin[b]
		}
		if setupN[b] > 0 {
			tl.SetupMean[b] = setupSum[b] / float64(setupN[b])
		}
		if outN[b] > 0 {
			tl.StageOut[b] = outSum[b] / float64(outN[b])
		}
	}
	return tl, nil
}

// FailureCodes returns, per time bin, the exit codes of failed tasks — the
// bottom panel of Figure 11.
func (m *Monitor) FailureCodes(start, end, binWidth float64) (map[int][]int, error) {
	if binWidth <= 0 || end <= start {
		return nil, fmt.Errorf("monitor: invalid binning")
	}
	nbins := int(math.Ceil((end - start) / binWidth))
	out := make(map[int][]int)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureIndexLocked()
	// Binary-search the finish-sorted index to exactly the [start, end)
	// window instead of scanning every record.
	lo := sort.Search(len(m.byFinish), func(i int) bool {
		return m.records[m.byFinish[i]].Finish >= start
	})
	hi := sort.Search(len(m.byFinish), func(i int) bool {
		return m.records[m.byFinish[i]].Finish >= end
	})
	for _, ri := range m.byFinish[lo:hi] {
		r := &m.records[ri]
		if !r.Failed() {
			continue
		}
		b := int((r.Finish - start) / binWidth)
		if b >= nbins {
			b = nbins - 1
		}
		out[b] = append(out[b], r.ExitCode)
	}
	for _, codes := range out {
		sort.Ints(codes)
	}
	return out, nil
}

// SegmentHistogram builds a histogram of one decomposed-time field, selected
// by name: "cpu", "io", "setup", "stage_in", "stage_out", "wall".
func (m *Monitor) SegmentHistogram(field string, lo, hi float64, bins int) (*stats.Histogram, error) {
	sel, err := fieldSelector(field)
	if err != nil {
		return nil, err
	}
	h := stats.NewHistogram(lo, hi, bins)
	m.Each(func(r *TaskRecord) { h.Add(sel(r)) })
	return h, nil
}

func fieldSelector(field string) (func(*TaskRecord) float64, error) {
	switch field {
	case "cpu":
		return func(r *TaskRecord) float64 { return r.CPUTime }, nil
	case "io":
		return func(r *TaskRecord) float64 { return r.IOTime }, nil
	case "setup":
		return func(r *TaskRecord) float64 { return r.SetupTime }, nil
	case "stage_in":
		return func(r *TaskRecord) float64 { return r.StageIn }, nil
	case "stage_out":
		return func(r *TaskRecord) float64 { return r.StageOut }, nil
	case "wall":
		return func(r *TaskRecord) float64 { return r.WallTime() }, nil
	default:
		return nil, fmt.Errorf("monitor: unknown field %q", field)
	}
}

// --- Persistence ---

const tableName = "monitor_tasks"

// SaveTo writes all records into db (table "monitor_tasks").
func (m *Monitor) SaveTo(db *store.DB) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := range m.records {
		r := &m.records[i]
		key := fmt.Sprintf("%016d", r.TaskID)
		if err := db.PutJSON(tableName, key, r); err != nil {
			return err
		}
	}
	return nil
}

// LoadFrom reads records from db, replacing current contents.
func (m *Monitor) LoadFrom(db *store.DB) error {
	var records []TaskRecord
	err := db.ForEach(tableName, func(key string, value []byte) error {
		var r TaskRecord
		if err := db.GetJSON(tableName, key, &r); err != nil {
			return err
		}
		records = append(records, r)
		return nil
	})
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.records = records
	m.byFinish = nil
	m.sortGen = 0
	m.mu.Unlock()
	return nil
}
