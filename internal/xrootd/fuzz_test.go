package xrootd

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// FuzzDispatch feeds arbitrary protocol lines to the data server's
// command dispatcher. The dispatcher must never panic, and its framing
// must stay coherent: an error return means nothing was written (the
// caller emits "-1 ..." next, which would desync the stream after a
// partial success reply), and a successful read's "<n>\n" header must
// be followed by exactly n payload bytes drawn from the stored file.
func FuzzDispatch(f *testing.F) {
	f.Add("open /store/a.root")
	f.Add("open /missing")
	f.Add("open")
	f.Add("stat /store/a.root")
	f.Add("stat /missing")
	f.Add("read /store/a.root 0 64")
	f.Add("read /store/a.root 100 9999999")
	f.Add("read /store/a.root -1 8")
	f.Add("read /store/a.root 0 -8")
	f.Add("read /store/a.root 9223372036854775807 9223372036854775807")
	f.Add("read /store/a.root zero ten")
	f.Add("read /store/a.root 0")
	f.Add("  ")
	f.Add("bogus /store/a.root")
	f.Add("open /store/a.root extra")
	f.Fuzz(func(t *testing.T, line string) {
		s := &DataServer{
			files: map[string][]byte{"/store/a.root": bytes.Repeat([]byte("x0"), 128)},
			crcs:  map[string]uint32{"/store/a.root": 0xdeadbeef},
		}
		var out bytes.Buffer
		w := bufio.NewWriter(&out)
		err := s.dispatch(line, w)
		w.Flush()
		if err != nil {
			if out.Len() != 0 {
				t.Fatalf("dispatch(%q) failed (%v) after writing %q — the -1 reply would desync the stream", line, err, out.Bytes())
			}
			return
		}
		header, body, ok := bytes.Cut(out.Bytes(), []byte("\n"))
		if !ok {
			t.Fatalf("dispatch(%q) succeeded without a newline-terminated header: %q", line, out.Bytes())
		}
		if strings.HasPrefix(line, "read") {
			n, perr := strconv.Atoi(string(header))
			if perr != nil || n != len(body) {
				t.Fatalf("dispatch(%q) framed %d payload bytes under header %q", line, len(body), header)
			}
			if n > 256 {
				t.Fatalf("dispatch(%q) served %d bytes from a 256-byte file", line, n)
			}
		}
		if strings.HasPrefix(line, "stat") {
			var size int64
			var crc uint32
			if _, serr := fmt.Sscanf(string(header), "%d %x", &size, &crc); serr != nil {
				t.Fatalf("dispatch(%q) stat reply %q does not parse", line, header)
			}
		}
	})
}
