package xrootd

import (
	"fmt"
	"io"
	"testing"
)

// Data-challenge benchmarks (cmd/bench-guard -challenge): the same
// 256 MiB file fetched through the single-replica streaming path and
// through the striped 4-replica path, with every replica's uplink
// throttled to challengeLinkBps. Raw loopback runs at memcpy speed —
// a regime where one connection already saturates the client and
// striping can only add overhead — so the harness models the
// data-challenge shape instead: remote storage elements whose site
// uplinks, not the client NIC, bound a single stream. That is the
// regime the paper's WAN reads live in, and where striping across
// replicas multiplies throughput by the stream count.

const (
	challengeSize    = 256 << 20
	challengeLinkBps = 512 << 20 // per-connection replica uplink: 512 MiB/s
)

func challengeCluster(b *testing.B, replicas int) *Client {
	b.Helper()
	content := make([]byte, challengeSize)
	for i := range content {
		content[i] = byte(i * 31)
	}
	red := NewRedirector()
	for i := 0; i < replicas; i++ {
		srv, err := NewDataServer(fmt.Sprintf("T2_CH_%d", i), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		srv.SetThrottle(challengeLinkBps)
		red.Register("/store/challenge.root", srv.Store("/store/challenge.root", content))
	}
	return &Client{Redirector: red, Dashboard: NewDashboard(), Consumer: "challenge"}
}

// BenchmarkChallengeFetchSingle is the baseline: one replica, one
// connection, the PR-5 streaming FetchTo, capped by the link.
func BenchmarkChallengeFetchSingle(b *testing.B) {
	cl := challengeCluster(b, 1)
	b.SetBytes(challengeSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := cl.FetchTo("/store/challenge.root", io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if n != challengeSize {
			b.Fatalf("got %d bytes", n)
		}
	}
}

// BenchmarkChallengeFetchStriped4 stripes the same file across four
// replicas with the default 8 MiB stripes and four streams, draining
// four throttled links at once (CRC verification on — it is the
// production path).
func BenchmarkChallengeFetchStriped4(b *testing.B) {
	cl := challengeCluster(b, 4)
	b.SetBytes(challengeSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := cl.FetchToStriped("/store/challenge.root", io.Discard, StripeConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if n != challengeSize {
			b.Fatalf("got %d bytes", n)
		}
	}
}
