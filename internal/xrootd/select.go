package xrootd

import (
	"sort"
	"sync"
	"time"
)

// Selector orders replicas by observed bandwidth and sheds the ones
// that consistently fail or lag far behind their peers. It is the
// client-side half of the Figure 9 accounting loop: every transfer the
// client completes feeds an EWMA per replica and per site, and the next
// Locate consults those EWMAs instead of trusting redirector order.
//
// The tracker is deliberately optimistic about the unknown: a replica
// with no history sorts ahead of every measured one, so new or
// recovered servers get probed instead of starved. It is safe for
// concurrent use and intended to be shared by every client of one
// consumer (the per-site averages only mean something across streams).
type Selector struct {
	// Alpha is the EWMA smoothing factor in (0,1]; larger weighs recent
	// transfers more. Zero means 0.3.
	Alpha float64
	// ShedFraction sheds a replica whose bandwidth EWMA sits below this
	// fraction of the best measured replica (after MinSamples). Zero
	// means 0.1; negative disables shedding.
	ShedFraction float64
	// MinSamples is how many transfers a replica must have answered
	// before it can be shed for slowness (default 3) — one cold TCP
	// window must not condemn a site.
	MinSamples int
	// ShedErrors sheds a replica after this many consecutive failures
	// (default 3). Errors also halve the bandwidth EWMA, so a flapping
	// replica drifts down the order before it is shed outright.
	ShedErrors int

	mu       sync.Mutex
	replicas map[string]*linkStats // by replica addr
	sites    map[string]*linkStats // by site name
}

// linkStats is the EWMA state of one replica or site.
type linkStats struct {
	bw       float64 // bytes/second EWMA, 0 until first sample
	samples  int
	errStrk  int // consecutive errors
	lastSeen time.Time
}

// NewSelector returns a selector with default tuning.
func NewSelector() *Selector {
	return &Selector{}
}

func (s *Selector) alpha() float64 {
	if s.Alpha > 0 && s.Alpha <= 1 {
		return s.Alpha
	}
	return 0.3
}

func (s *Selector) minSamples() int {
	if s.MinSamples > 0 {
		return s.MinSamples
	}
	return 3
}

func (s *Selector) shedErrors() int {
	if s.ShedErrors > 0 {
		return s.ShedErrors
	}
	return 3
}

func (s *Selector) shedFraction() float64 {
	if s.ShedFraction > 0 {
		return s.ShedFraction
	}
	if s.ShedFraction < 0 {
		return 0
	}
	return 0.1
}

func (s *Selector) stats(m map[string]*linkStats, key string) *linkStats {
	st := m[key]
	if st == nil {
		st = &linkStats{}
		m[key] = st
	}
	return st
}

// Observe records one completed transfer of n bytes over d from rep.
// Calls with n <= 0 or d <= 0 are ignored (a zero-length transfer says
// nothing about bandwidth).
func (s *Selector) Observe(rep Replica, n int64, d time.Duration) {
	if s == nil || n <= 0 || d <= 0 {
		return
	}
	bw := float64(n) / d.Seconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replicas == nil {
		s.replicas = make(map[string]*linkStats)
		s.sites = make(map[string]*linkStats)
	}
	a := s.alpha()
	for _, st := range []*linkStats{s.stats(s.replicas, rep.Addr), s.stats(s.sites, rep.Site)} {
		if st.samples == 0 {
			st.bw = bw
		} else {
			st.bw = a*bw + (1-a)*st.bw
		}
		st.samples++
		st.errStrk = 0
		st.lastSeen = time.Now()
	}
}

// ObserveError records a failed operation against rep: the error streak
// grows and the bandwidth EWMA halves, so repeated failures sink the
// replica in the order and eventually shed it.
func (s *Selector) ObserveError(rep Replica) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replicas == nil {
		s.replicas = make(map[string]*linkStats)
		s.sites = make(map[string]*linkStats)
	}
	for _, st := range []*linkStats{s.stats(s.replicas, rep.Addr), s.stats(s.sites, rep.Site)} {
		st.errStrk++
		st.bw /= 2
	}
}

// Bandwidth returns the replica's bytes/second EWMA (0 if unmeasured).
func (s *Selector) Bandwidth(addr string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.replicas[addr]; st != nil {
		return st.bw
	}
	return 0
}

// SiteBandwidth returns the site's bytes/second EWMA (0 if unmeasured).
func (s *Selector) SiteBandwidth(site string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.sites[site]; st != nil {
		return st.bw
	}
	return 0
}

// score is the sort key of one replica at ordering time.
type score struct {
	rep     Replica
	bw      float64
	known   bool
	samples int
	errs    int
}

// Order sorts reps in place for a fetch attempt: unmeasured replicas
// first (optimism buys exploration), then by descending bandwidth EWMA
// (replica EWMA when present, site EWMA as the fallback for a fresh
// replica at a known site). Replicas past the error-streak bound or
// below ShedFraction of the best measured bandwidth are dropped — unless
// that would drop everything, in which case the original slice returns
// untouched order aside: a selector must degrade to redirector order,
// never to "no replicas".
//
// A nil selector returns reps unchanged, so the client calls this
// unconditionally.
func (s *Selector) Order(reps []Replica) []Replica {
	if s == nil || len(reps) < 2 {
		return reps
	}
	s.mu.Lock()
	scores := make([]score, len(reps))
	best := 0.0
	for i, rep := range reps {
		sc := score{rep: rep}
		if st := s.replicas[rep.Addr]; st != nil && st.samples > 0 {
			sc.bw, sc.known, sc.samples, sc.errs = st.bw, true, st.samples, st.errStrk
		} else if st != nil {
			sc.errs = st.errStrk
			if site := s.sites[rep.Site]; site != nil && site.samples > 0 {
				sc.bw, sc.known = site.bw, true
			}
		} else if site := s.sites[rep.Site]; site != nil && site.samples > 0 {
			sc.bw, sc.known = site.bw, true
		}
		if sc.bw > best {
			best = sc.bw
		}
		scores[i] = sc
	}
	minSamples, shedErrs, frac := s.minSamples(), s.shedErrors(), s.shedFraction()
	s.mu.Unlock()

	kept := scores[:0]
	for _, sc := range scores {
		if sc.errs >= shedErrs {
			continue
		}
		if frac > 0 && sc.known && sc.samples >= minSamples && sc.bw < best*frac {
			continue
		}
		kept = append(kept, sc)
	}
	if len(kept) == 0 {
		return reps // shedding everything helps nobody
	}
	sort.SliceStable(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.known != b.known {
			return !a.known // unmeasured first: explore
		}
		if a.bw != b.bw {
			return a.bw > b.bw
		}
		return a.rep.Addr < b.rep.Addr
	})
	out := make([]Replica, len(kept))
	for i, sc := range kept {
		out[i] = sc.rep
	}
	return out
}
