package xrootd

import (
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"lobster/internal/bufpool"
	"lobster/internal/trace"
)

// StripeConfig tunes FetchToStriped. The zero value means 8 MiB
// stripes over 4 concurrent streams with a 2×Streams reassembly
// window and checksum verification when the servers offer one.
type StripeConfig struct {
	// Size is the stripe length in bytes (default 8 MiB). Stripe i
	// covers [i*Size, (i+1)*Size) of the file.
	Size int64
	// Streams is how many stripes are fetched concurrently, each over
	// its own replica connection (default 4).
	Streams int
	// Window bounds how many stripes may be claimed ahead of the
	// in-order write frontier (default 2×Streams). It is the memory
	// ceiling: at most Window stripes of pooled chunks exist at once.
	Window int
	// NoVerify skips the whole-file CRC32 check against the stat
	// response. The zero value verifies whenever a replica offers a
	// checksum, which costs one IEEE CRC32 pass over the output.
	NoVerify bool
}

func (cfg *StripeConfig) size() int64 {
	if cfg.Size > 0 {
		return cfg.Size
	}
	return 8 << 20
}

func (cfg *StripeConfig) streams() int {
	if cfg.Streams > 0 {
		return cfg.Streams
	}
	return 4
}

func (cfg *StripeConfig) window(streams int) int {
	if cfg.Window >= streams {
		return cfg.Window
	}
	return 2 * streams
}

// chunk is one pooled buffer plus how much of it is filled. The buffer
// keeps its pooled length so Put accepts it back.
type chunk struct {
	buf *[]byte
	n   int
}

// stripeResult is one fetched stripe on its way to the assembler:
// chunks holds the stripe's bytes as pooled buffers (nil on error).
type stripeResult struct {
	idx    int
	chunks []chunk
	n      int64
	err    error
}

// FetchToStriped streams the file at lfn into w by splitting it into
// fixed-size stripes and fetching them concurrently from multiple
// replicas — the multi-stream WAN read that saturates a fat link where
// one TCP stream cannot. Output is byte-identical to FetchTo: a
// bounded reassembly window delivers stripes to w strictly in order
// through pooled chunk buffers.
//
// Each stream holds one replica connection and fails over per stripe:
// any error mid-stripe reopens on the next replica (bandwidth order,
// then cycling) and resumes at the exact byte where the previous
// attempt died. The fetch fails only when a stripe has exhausted every
// replica without progress. When the servers implement stat, replicas
// whose size or checksum disagree with the first-opened one are
// dropped before they can corrupt the reassembly, and the assembled
// output is CRC32-verified unless cfg.NoVerify is set.
//
// Files smaller than two stripes, or a single-replica location, fall
// back to plain FetchTo — striping cannot help there.
func (c *Client) FetchToStriped(lfn string, w io.Writer, cfg StripeConfig) (int64, error) {
	reps, err := c.Redirector.Locate(lfn)
	if err != nil {
		return 0, err
	}
	reps = c.Selector.Order(reps)
	stripeSize := cfg.size()
	streams := cfg.streams()

	// Open the reference replica: it defines the size (and checksum)
	// the other replicas must agree with.
	f0, err := c.openFirst(lfn, reps)
	if err != nil {
		return 0, err
	}
	total := f0.Size()
	wantSize, wantCRC, haveCRC, statErr := f0.Stat()
	if statErr != nil {
		haveCRC = false
	} else if haveCRC {
		total = wantSize
	}
	f0.Close()

	if total < 2*stripeSize || len(reps) < 2 || streams < 2 {
		return c.FetchTo(lfn, w)
	}

	var sp *trace.Span
	if c.tracer != nil && c.parent.Valid() {
		sp = c.tracer.Start(c.parent, "xrootd", "fetch_striped")
		sp.Attr("lfn", lfn)
	}
	defer sp.End()

	nStripes := int((total + stripeSize - 1) / stripeSize)
	window := cfg.window(streams)
	sp.AttrInt("stripes", int64(nStripes))
	sp.AttrInt("streams", int64(streams))

	var (
		claimMu sync.Mutex
		next    int
	)
	slots := make(chan struct{}, window)
	results := make(chan stripeResult, window)
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			sw := &stripeStream{
				c: c, lfn: lfn, reps: reps, ri: worker % len(reps),
				total: total, wantCRC: wantCRC, haveCRC: haveCRC,
			}
			defer sw.close()
			for {
				// The window slot is acquired BEFORE claiming an index:
				// claims happen in index order, so outstanding stripes
				// stay contiguous with the write frontier and the
				// assembler can always free the slot the lowest claim
				// is waiting on.
				select {
				case slots <- struct{}{}:
				case <-stop:
					return
				}
				claimMu.Lock()
				idx := next
				next++
				claimMu.Unlock()
				if idx >= nStripes {
					<-slots
					return
				}
				chunks, n, err := sw.fetchStripe(idx, stripeSize, stop)
				select {
				case results <- stripeResult{idx: idx, chunks: chunks, n: n, err: err}:
				case <-stop:
					putChunks(chunks)
					return
				}
				if err != nil {
					abort()
					return
				}
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Assemble: write stripes to w strictly in order, releasing one
	// window slot per stripe written. Any failure aborts the workers,
	// then keeps draining to return their pooled chunks.
	var (
		written  int64
		firstErr error
		pending  = make(map[int]stripeResult, window)
		frontier int
		crc      uint32
	)
	for res := range results {
		if firstErr != nil {
			putChunks(res.chunks)
			continue
		}
		if res.err != nil {
			firstErr = fmt.Errorf("xrootd: stripe %d of %s: %w", res.idx, lfn, res.err)
			abort()
			continue
		}
		pending[res.idx] = res
		for {
			cur, ok := pending[frontier]
			if !ok {
				break
			}
			delete(pending, frontier)
			for _, ch := range cur.chunks {
				if firstErr == nil {
					wn, werr := w.Write((*ch.buf)[:ch.n])
					written += int64(wn)
					if !cfg.NoVerify && haveCRC {
						crc = crc32.Update(crc, crc32.IEEETable, (*ch.buf)[:wn])
					}
					if werr == nil && wn < ch.n {
						werr = io.ErrShortWrite
					}
					if werr != nil {
						firstErr = fmt.Errorf("xrootd: writing stripe %d to sink: %w", frontier, werr)
						abort()
					}
				}
				bufpool.Put(ch.buf)
			}
			<-slots
			frontier++
		}
	}
	for _, res := range pending {
		putChunks(res.chunks)
	}
	sp.AttrInt("bytes", written)
	if firstErr != nil {
		sp.Attr("error", firstErr.Error())
		return written, firstErr
	}
	if written != total {
		err := fmt.Errorf("xrootd: striped fetch of %s assembled %d bytes, want %d", lfn, written, total)
		sp.Attr("error", err.Error())
		return written, err
	}
	if !cfg.NoVerify && haveCRC && crc != wantCRC {
		err := fmt.Errorf("xrootd: striped fetch of %s checksum mismatch: got %08x want %08x",
			lfn, crc, wantCRC)
		sp.Attr("error", err.Error())
		return written, err
	}
	return written, nil
}

// openFirst opens lfn at the first replica that answers, in order.
func (c *Client) openFirst(lfn string, reps []Replica) (*File, error) {
	var firstErr error
	for _, rep := range reps {
		f, err := c.openAt(lfn, rep)
		if err == nil {
			return f, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("xrootd: no replicas for %s", lfn)
	}
	return nil, firstErr
}

func putChunks(chunks []chunk) {
	for _, ch := range chunks {
		bufpool.Put(ch.buf)
	}
}

// stripeStream is one worker's connection state: a current open file
// on one replica, cycling to the next replica on any failure. A
// replica whose stat disagrees with the reference size/checksum is
// treated as failed before any of its bytes are used.
type stripeStream struct {
	c       *Client
	lfn     string
	reps    []Replica
	ri      int
	f       *File
	total   int64
	wantCRC uint32
	haveCRC bool
}

func (sw *stripeStream) close() {
	if sw.f != nil {
		sw.f.Close()
		sw.f = nil
	}
}

// file returns an open file, dialing through the replica ring. It
// gives up after one full cycle of consecutive failures.
func (sw *stripeStream) file() (*File, error) {
	if sw.f != nil && !sw.f.Broken() {
		return sw.f, nil
	}
	sw.f = nil
	var firstErr error
	for tries := 0; tries < len(sw.reps); tries++ {
		rep := sw.reps[sw.ri%len(sw.reps)]
		f, err := sw.c.openAt(sw.lfn, rep)
		if err == nil {
			if err = sw.check(f); err == nil {
				sw.f = f
				return f, nil
			}
			f.Close()
			sw.c.Selector.ObserveError(rep)
		}
		if firstErr == nil {
			firstErr = err
		}
		sw.ri++
	}
	return nil, fmt.Errorf("xrootd: all %d replicas failed: %w", len(sw.reps), firstErr)
}

// check rejects a replica that disagrees with the reference copy. Old
// servers without stat pass (size is still compared from open).
func (sw *stripeStream) check(f *File) error {
	if f.Size() != sw.total {
		return fmt.Errorf("replica %s has size %d, want %d", f.addr, f.Size(), sw.total)
	}
	if !sw.haveCRC {
		return nil
	}
	size, crc, ok, err := f.Stat()
	if err != nil {
		return err
	}
	if ok && (size != sw.total || crc != sw.wantCRC) {
		return fmt.Errorf("replica %s content mismatch (size %d crc %08x, want %d %08x)",
			f.addr, size, crc, sw.total, sw.wantCRC)
	}
	return nil
}

// fetchStripe reads stripe idx into pooled chunks, failing over
// between replicas at the exact byte where an attempt died.
func (sw *stripeStream) fetchStripe(idx int, stripeSize int64, stop <-chan struct{}) ([]chunk, int64, error) {
	off := int64(idx) * stripeSize
	length := stripeSize
	if off+length > sw.total {
		length = sw.total - off
	}
	var (
		chunks   []chunk
		got      int64
		segBytes int64
		segStart = time.Now()
	)
	account := func(err error) {
		if sw.f != nil {
			sw.c.account(sw.f.rep, segBytes, time.Since(segStart), err)
		}
		segBytes = 0
		segStart = time.Now()
	}
	for got < length {
		select {
		case <-stop:
			putChunks(chunks)
			return nil, 0, fmt.Errorf("xrootd: striped fetch aborted")
		default:
		}
		f, err := sw.file()
		if err != nil {
			putChunks(chunks)
			return nil, got, err
		}
		want := length - got
		if want > int64(bufpool.ChunkSize) {
			want = int64(bufpool.ChunkSize)
		}
		buf := bufpool.Get()
		m, err := f.ReadAt((*buf)[:want], off+got)
		if m > 0 {
			chunks = append(chunks, chunk{buf: buf, n: m})
			got += int64(m)
			segBytes += int64(m)
		} else {
			bufpool.Put(buf)
		}
		if err != nil || m == 0 {
			if err == nil {
				err = io.ErrUnexpectedEOF // mid-file short read: desynchronised
			}
			account(err)
			sw.f.Close()
			sw.f = nil
			sw.ri++ // resume on the next replica
			continue
		}
	}
	account(nil)
	return chunks, got, nil
}
