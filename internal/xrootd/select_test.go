package xrootd

import (
	"testing"
	"time"
)

func reps(addrs ...string) []Replica {
	out := make([]Replica, len(addrs))
	for i, a := range addrs {
		out[i] = Replica{Site: "S_" + a, Addr: a}
	}
	return out
}

func addrs(rs []Replica) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Addr
	}
	return out
}

func TestSelectorNilAndShortPassthrough(t *testing.T) {
	var s *Selector
	in := reps("a", "b")
	if got := s.Order(in); &got[0] != &in[0] {
		t.Error("nil selector must return reps unchanged")
	}
	s2 := NewSelector()
	one := reps("a")
	if got := s2.Order(one); &got[0] != &one[0] {
		t.Error("single replica must pass through")
	}
	s.Observe(Replica{Addr: "a"}, 100, time.Second) // must not panic
	s.ObserveError(Replica{Addr: "a"})
}

func TestSelectorOrdersByBandwidth(t *testing.T) {
	s := NewSelector()
	// slow: 1 MB/s; fast: 100 MB/s.
	for i := 0; i < 4; i++ {
		s.Observe(Replica{Site: "S_slow", Addr: "slow"}, 1<<20, time.Second)
		s.Observe(Replica{Site: "S_fast", Addr: "fast"}, 100<<20, time.Second)
	}
	got := addrs(s.Order(reps("slow", "fast")))
	if got[0] != "fast" {
		t.Fatalf("order = %v, want fast first", got)
	}
}

func TestSelectorUnmeasuredFirst(t *testing.T) {
	s := NewSelector()
	s.Observe(Replica{Site: "S_known", Addr: "known"}, 50<<20, time.Second)
	got := addrs(s.Order(reps("known", "fresh")))
	if got[0] != "fresh" {
		t.Fatalf("order = %v, want unmeasured replica probed first", got)
	}
}

func TestSelectorSiteFallback(t *testing.T) {
	s := NewSelector()
	// Two replicas at one site; only the first has history. The fresh
	// replica at a measured site inherits the site EWMA, so it is
	// "known" and sorts by it rather than jumping the queue.
	s.Observe(Replica{Site: "siteA", Addr: "a1"}, 10<<20, time.Second)
	s.Observe(Replica{Site: "siteB", Addr: "b1"}, 100<<20, time.Second)
	in := []Replica{{Site: "siteA", Addr: "a2"}, {Site: "siteB", Addr: "b2"}}
	got := addrs(s.Order(in))
	if got[0] != "b2" {
		t.Fatalf("order = %v, want b2 (faster site EWMA) first", got)
	}
}

func TestSelectorShedsErrorStreak(t *testing.T) {
	s := NewSelector()
	for i := 0; i < 3; i++ {
		s.ObserveError(Replica{Site: "S_bad", Addr: "bad"})
	}
	got := addrs(s.Order(reps("bad", "ok")))
	if len(got) != 1 || got[0] != "ok" {
		t.Fatalf("order = %v, want bad shed", got)
	}
	// One success clears the streak.
	s.Observe(Replica{Site: "S_bad", Addr: "bad"}, 1<<20, time.Second)
	if got := s.Order(reps("bad", "ok")); len(got) != 2 {
		t.Fatalf("order after recovery = %v, want both", addrs(got))
	}
}

func TestSelectorShedsConsistentlySlow(t *testing.T) {
	s := NewSelector()
	for i := 0; i < 4; i++ {
		s.Observe(Replica{Site: "S_crawl", Addr: "crawl"}, 1<<10, time.Second) // 1 KB/s
		s.Observe(Replica{Site: "S_fast", Addr: "fast"}, 100<<20, time.Second)
	}
	got := addrs(s.Order(reps("crawl", "fast")))
	if len(got) != 1 || got[0] != "fast" {
		t.Fatalf("order = %v, want crawl shed below ShedFraction", got)
	}
	// ShedFraction < 0 disables slowness shedding.
	s.ShedFraction = -1
	if got := s.Order(reps("crawl", "fast")); len(got) != 2 {
		t.Fatalf("order with shedding disabled = %v, want both", addrs(got))
	}
}

func TestSelectorNeverShedsEverything(t *testing.T) {
	s := NewSelector()
	for _, a := range []string{"x", "y"} {
		for i := 0; i < 3; i++ {
			s.ObserveError(Replica{Site: "S_" + a, Addr: a})
		}
	}
	in := reps("x", "y")
	if got := s.Order(in); len(got) != 2 {
		t.Fatalf("order = %v, must fall back to redirector order", addrs(got))
	}
}

func TestSelectorErrorsHalveBandwidth(t *testing.T) {
	s := NewSelector()
	rep := Replica{Site: "S_f", Addr: "f"}
	s.Observe(rep, 100<<20, time.Second)
	before := s.Bandwidth("f")
	s.ObserveError(rep)
	if after := s.Bandwidth("f"); after >= before {
		t.Fatalf("bandwidth %f not reduced after error (was %f)", after, before)
	}
	if s.SiteBandwidth("S_f") >= before {
		t.Fatal("site bandwidth not reduced after error")
	}
}

func TestClientFeedsSelector(t *testing.T) {
	srv := newServer(t, "T2_Feed")
	red := NewRedirector()
	content := make([]byte, 1<<20)
	rep := srv.Store("/f", content)
	red.Register("/f", rep)
	sel := NewSelector()
	c := &Client{Redirector: red, Consumer: "c", Selector: sel}
	if _, err := c.Fetch("/f"); err != nil {
		t.Fatal(err)
	}
	if sel.Bandwidth(rep.Addr) <= 0 {
		t.Fatal("fetch did not feed the selector's bandwidth EWMA")
	}
	if sel.SiteBandwidth("T2_Feed") <= 0 {
		t.Fatal("fetch did not feed the site EWMA")
	}
}
