// Package xrootd implements a data federation modelled on the XrootD / AAA
// ("Any Data, Anytime, Anywhere") infrastructure the paper uses for WAN data
// access: a redirector resolves logical file names (LFNs) to the data
// servers holding replicas, and clients stream file content — whole files or
// byte ranges — from any replica, failing over between them.
//
// A Dashboard aggregates per-consumer transfer volumes, standing in for the
// global CMS dashboard from which the paper's Figure 9 is drawn.
package xrootd

import (
	"fmt"
	"sort"
	"sync"
)

// Replica identifies one copy of a file at a site.
type Replica struct {
	Site string // e.g. "T2_US_Nebraska"
	Addr string // host:port of the data server
}

// Redirector maps LFNs to replicas. It is safe for concurrent use.
// (The real system is itself a distributed hierarchy; a single in-process
// registry preserves the lookup semantics Lobster depends on.)
type Redirector struct {
	mu       sync.RWMutex
	replicas map[string][]Replica
	lookups  int64
}

// NewRedirector returns an empty redirector.
func NewRedirector() *Redirector {
	return &Redirector{replicas: make(map[string][]Replica)}
}

// Register announces that the data server at addr (site) holds lfn.
func (r *Redirector) Register(lfn string, rep Replica) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.replicas[lfn] {
		if existing == rep {
			return
		}
	}
	r.replicas[lfn] = append(r.replicas[lfn], rep)
}

// Deregister removes every replica of lfn at the given address (server
// decommissioned or declared lost).
func (r *Redirector) Deregister(lfn, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reps := r.replicas[lfn]
	out := reps[:0]
	for _, rep := range reps {
		if rep.Addr != addr {
			out = append(out, rep)
		}
	}
	if len(out) == 0 {
		delete(r.replicas, lfn)
	} else {
		r.replicas[lfn] = out
	}
}

// Locate returns the replicas of lfn.
func (r *Redirector) Locate(lfn string) ([]Replica, error) {
	r.mu.Lock()
	r.lookups++
	reps := r.replicas[lfn]
	r.mu.Unlock()
	if len(reps) == 0 {
		return nil, fmt.Errorf("xrootd: no replica of %s", lfn)
	}
	return append([]Replica(nil), reps...), nil
}

// Lookups returns the number of Locate calls served.
func (r *Redirector) Lookups() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookups
}

// Files returns the number of distinct LFNs known.
func (r *Redirector) Files() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.replicas)
}

// Dashboard aggregates transfer volume by consumer, as the CMS global
// dashboard does; Figure 9 is its top-N listing over a time window.
type Dashboard struct {
	mu      sync.Mutex
	volumes map[string]int64
}

// NewDashboard returns an empty dashboard.
func NewDashboard() *Dashboard { return &Dashboard{volumes: make(map[string]int64)} }

// Record adds bytes transferred on behalf of consumer.
func (d *Dashboard) Record(consumer string, bytes int64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.volumes[consumer] += bytes
}

// Volume returns the total bytes recorded for consumer.
func (d *Dashboard) Volume(consumer string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.volumes[consumer]
}

// ConsumerVolume is one dashboard row.
type ConsumerVolume struct {
	Consumer string
	Bytes    int64
}

// Top returns the n largest consumers in descending order of volume.
func (d *Dashboard) Top(n int) []ConsumerVolume {
	d.mu.Lock()
	defer d.mu.Unlock()
	all := make([]ConsumerVolume, 0, len(d.volumes))
	for c, b := range d.volumes {
		all = append(all, ConsumerVolume{Consumer: c, Bytes: b})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].Consumer < all[j].Consumer
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}
