package xrootd

import (
	"errors"

	"lobster/internal/retry"
)

// Error classification mirrors chirp's: transport failures (dials,
// resets, timeouts, short payloads) are retryable on a fresh replica
// connection; server-reported errors and protocol violations are
// permanent — the replica answered, and asking again gets the same
// answer.

// ErrServer matches every server-reported ("-1 ...") error.
var ErrServer = errors.New("xrootd: server error")

// ErrProtocol matches malformed-response errors.
var ErrProtocol = errors.New("xrootd: protocol error")

// ServerError is an error a replica reported in protocol.
type ServerError struct {
	Replica string // address of the replica that answered
	Msg     string
}

// Error implements the error interface.
func (e *ServerError) Error() string {
	return "xrootd: server error: " + e.Msg
}

// Is matches ErrServer and retry.ErrPermanent.
func (e *ServerError) Is(target error) bool {
	return target == ErrServer || target == retry.ErrPermanent
}

// ProtocolError is a malformed response: the peer answered out of
// protocol, desynchronising the stream. Permanent.
type ProtocolError struct {
	Replica string
	Msg     string
}

// Error implements the error interface.
func (e *ProtocolError) Error() string {
	return "xrootd: protocol error: " + e.Msg
}

// Is matches ErrProtocol and retry.ErrPermanent.
func (e *ProtocolError) Is(target error) bool {
	return target == ErrProtocol || target == retry.ErrPermanent
}

// IsRetryable reports whether an xrootd error is worth retrying on a
// fresh connection (possibly to a different replica).
func IsRetryable(err error) bool {
	return err != nil && !retry.IsPermanent(err)
}
