package xrootd

import (
	"io"
	"testing"
)

// BenchmarkDataplaneFetch64 measures the staging-style whole-file fetch
// of a 64 MiB LFN from a single replica, streamed through FetchTo the
// way staging consumers drain it (the "before" row in
// BENCH_dataplane.json used the buffered Fetch). Enforced by
// cmd/bench-guard.
func BenchmarkDataplaneFetch64(b *testing.B) {
	const size = 64 << 20
	srv, err := NewDataServer("T3_BENCH", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i * 13)
	}
	red := NewRedirector()
	red.Register("/store/bench.root", srv.Store("/store/bench.root", content))
	cl := &Client{Redirector: red, Dashboard: NewDashboard(), Consumer: "bench"}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := cl.FetchTo("/store/bench.root", io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if n != size {
			b.Fatalf("got %d bytes", n)
		}
	}
}
