package xrootd

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

func newServer(t *testing.T, site string) *DataServer {
	t.Helper()
	s, err := NewDataServer(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRedirectorRegisterLocate(t *testing.T) {
	r := NewRedirector()
	rep := Replica{Site: "T3_US_NotreDame", Addr: "1.2.3.4:1094"}
	r.Register("/store/a.root", rep)
	r.Register("/store/a.root", rep) // duplicate: ignored
	r.Register("/store/a.root", Replica{Site: "T2_US_Nebraska", Addr: "5.6.7.8:1094"})
	reps, err := r.Locate("/store/a.root")
	if err != nil || len(reps) != 2 {
		t.Fatalf("locate: %v, %v", reps, err)
	}
	if _, err := r.Locate("/store/missing.root"); err == nil {
		t.Error("missing LFN located")
	}
	if r.Files() != 1 || r.Lookups() != 2 {
		t.Errorf("files=%d lookups=%d", r.Files(), r.Lookups())
	}
}

func TestRedirectorDeregister(t *testing.T) {
	r := NewRedirector()
	r.Register("/f", Replica{Site: "A", Addr: "a:1"})
	r.Register("/f", Replica{Site: "B", Addr: "b:1"})
	r.Deregister("/f", "a:1")
	reps, err := r.Locate("/f")
	if err != nil || len(reps) != 1 || reps[0].Site != "B" {
		t.Fatalf("after deregister: %v, %v", reps, err)
	}
	r.Deregister("/f", "b:1")
	if _, err := r.Locate("/f"); err == nil {
		t.Error("fully deregistered LFN located")
	}
}

func TestOpenReadStream(t *testing.T) {
	srv := newServer(t, "T3_US_NotreDame")
	red := NewRedirector()
	content := bytes.Repeat([]byte("event-data;"), 5000)
	red.Register("/store/data.root", srv.Store("/store/data.root", content))

	c := &Client{Redirector: red, Dashboard: NewDashboard(), Consumer: "lobster-nd"}
	f, err := c.Open("/store/data.root")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != int64(len(content)) {
		t.Fatalf("size = %d", f.Size())
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("streamed content mismatch")
	}
	if c.Dashboard.Volume("lobster-nd") != int64(len(content)) {
		t.Errorf("dashboard volume = %d", c.Dashboard.Volume("lobster-nd"))
	}
}

func TestReadAtRandomAccess(t *testing.T) {
	srv := newServer(t, "T1_US_FNAL")
	red := NewRedirector()
	content := []byte("0123456789abcdef")
	red.Register("/f", srv.Store("/f", content))
	c := &Client{Redirector: red, Consumer: "t"}
	f, err := c.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	n, err := f.ReadAt(buf, 10)
	if err != nil || n != 4 || string(buf) != "abcd" {
		t.Fatalf("ReadAt(10) = %q, %d, %v", buf, n, err)
	}
	// Read past EOF returns short.
	n, err = f.ReadAt(buf, 14)
	if err != nil || n != 2 || string(buf[:n]) != "ef" {
		t.Fatalf("ReadAt(14) = %q, %d, %v", buf[:n], n, err)
	}
	// Offset beyond EOF reads zero bytes.
	n, err = f.ReadAt(buf, 100)
	if err != nil || n != 0 {
		t.Fatalf("ReadAt(100) = %d, %v", n, err)
	}
}

func TestFetchWholeFile(t *testing.T) {
	srv := newServer(t, "T2_US_Wisconsin")
	red := NewRedirector()
	content := bytes.Repeat([]byte{7}, 1<<20)
	red.Register("/big", srv.Store("/big", content))
	c := &Client{Redirector: red, Dashboard: NewDashboard(), Consumer: "c"}
	got, err := c.Fetch("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("fetched content mismatch")
	}
}

func TestFailoverToSecondReplica(t *testing.T) {
	bad := newServer(t, "T2_DOWN")
	good := newServer(t, "T2_UP")
	red := NewRedirector()
	content := []byte("survives failover")
	red.Register("/f", bad.Store("/f", content))
	red.Register("/f", good.Store("/f", content))
	bad.SetDown(true)

	c := &Client{Redirector: red, Consumer: "c"}
	got, err := c.Fetch("/f")
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	if string(got) != string(content) {
		t.Fatal("content mismatch after failover")
	}
}

func TestAllReplicasDown(t *testing.T) {
	srv := newServer(t, "T2_ONLY")
	red := NewRedirector()
	red.Register("/f", srv.Store("/f", []byte("x")))
	srv.SetDown(true)
	c := &Client{Redirector: red, Consumer: "c"}
	if _, err := c.Open("/f"); err == nil {
		t.Fatal("open succeeded with all replicas down")
	}
	// Recovery: server comes back.
	srv.SetDown(false)
	if _, err := c.Fetch("/f"); err != nil {
		t.Fatalf("fetch after recovery: %v", err)
	}
}

func TestConcurrentStreams(t *testing.T) {
	srv := newServer(t, "T3")
	red := NewRedirector()
	const nFiles = 8
	contents := make([][]byte, nFiles)
	for i := range contents {
		contents[i] = bytes.Repeat([]byte{byte(i + 1)}, 100000+i)
		red.Register(fmt.Sprintf("/f%d", i), srv.Store(fmt.Sprintf("/f%d", i), contents[i]))
	}
	dash := NewDashboard()
	var wg sync.WaitGroup
	errs := make([]error, nFiles)
	for i := 0; i < nFiles; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{Redirector: red, Dashboard: dash, Consumer: fmt.Sprintf("user%d", i)}
			got, err := c.Fetch(fmt.Sprintf("/f%d", i))
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, contents[i]) {
				errs[i] = fmt.Errorf("file %d mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, c := range contents {
		total += int64(len(c))
	}
	if srv.BytesOut() != total {
		t.Errorf("server bytes out = %d, want %d", srv.BytesOut(), total)
	}
}

func TestDashboardTop(t *testing.T) {
	d := NewDashboard()
	d.Record("lobster", 500)
	d.Record("t2-a", 300)
	d.Record("t2-b", 300)
	d.Record("t2-c", 100)
	d.Record("lobster", 500)
	top := d.Top(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Consumer != "lobster" || top[0].Bytes != 1000 {
		t.Errorf("top[0] = %+v", top[0])
	}
	// Tie broken by name for determinism.
	if top[1].Consumer != "t2-a" || top[2].Consumer != "t2-b" {
		t.Errorf("tie order: %+v", top[1:])
	}
	if all := d.Top(100); len(all) != 4 {
		t.Errorf("Top(100) = %d rows", len(all))
	}
	var nilDash *Dashboard
	nilDash.Record("x", 1) // must not panic
}
