package xrootd

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"lobster/internal/telemetry"
)

// stripedCluster stores content on n replica servers and returns a
// client wired to them through a fresh redirector.
func stripedCluster(t *testing.T, lfn string, content []byte, n int) (*Client, []*DataServer) {
	t.Helper()
	red := NewRedirector()
	servers := make([]*DataServer, n)
	for i := 0; i < n; i++ {
		srv := newServer(t, fmt.Sprintf("T2_US_Site%d", i))
		red.Register(lfn, srv.Store(lfn, content))
		servers[i] = srv
	}
	c := &Client{Redirector: red, Dashboard: NewDashboard(), Consumer: "striped",
		Selector: NewSelector()}
	return c, servers
}

func TestStatReportsSizeAndCRC(t *testing.T) {
	srv := newServer(t, "T1")
	red := NewRedirector()
	content := []byte("checksum me")
	red.Register("/f", srv.Store("/f", content))
	c := &Client{Redirector: red, Consumer: "c"}
	f, err := c.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, crc, ok, err := f.Stat()
	if err != nil || !ok {
		t.Fatalf("Stat = ok=%v err=%v", ok, err)
	}
	if size != int64(len(content)) || crc == 0 {
		t.Fatalf("Stat = size %d crc %08x", size, crc)
	}
	// The connection must remain usable after stat.
	buf := make([]byte, 4)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 4 {
		t.Fatalf("ReadAt after Stat: %d, %v", n, err)
	}
}

func TestFetchToStripedByteIdentical(t *testing.T) {
	content := make([]byte, 5<<20+12345) // not stripe-aligned on purpose
	rng := rand.New(rand.NewSource(1))
	rng.Read(content)
	c, _ := stripedCluster(t, "/big", content, 4)
	c.Telemetry = telemetry.NewRegistry()

	var out bytes.Buffer
	n, err := c.FetchToStriped("/big", &out, StripeConfig{Size: 1 << 20, Streams: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Fatalf("n = %d, want %d", n, len(content))
	}
	if !bytes.Equal(out.Bytes(), content) {
		t.Fatal("striped reassembly differs from source content")
	}
}

func TestFetchToStripedSpreadsLoad(t *testing.T) {
	content := make([]byte, 8<<20)
	rand.New(rand.NewSource(2)).Read(content)
	c, servers := stripedCluster(t, "/big", content, 4)
	var out bytes.Buffer
	if _, err := c.FetchToStriped("/big", &out, StripeConfig{Size: 1 << 20, Streams: 4}); err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, srv := range servers {
		if srv.BytesOut() > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("only %d of 4 replicas served bytes — no striping happened", served)
	}
}

func TestFetchToStripedSmallFileFallsBack(t *testing.T) {
	content := []byte("tiny")
	c, _ := stripedCluster(t, "/small", content, 3)
	var out bytes.Buffer
	n, err := c.FetchToStriped("/small", &out, StripeConfig{Size: 1 << 20, Streams: 4})
	if err != nil || n != int64(len(content)) || !bytes.Equal(out.Bytes(), content) {
		t.Fatalf("fallback fetch = %d, %v", n, err)
	}
}

func TestFetchToStripedFailsOverMidStripe(t *testing.T) {
	content := make([]byte, 6<<20)
	rand.New(rand.NewSource(3)).Read(content)
	c, servers := stripedCluster(t, "/big", content, 3)
	// One replica goes dark before the fetch: every stream that lands on
	// it must fail over and the output must still be byte-identical.
	servers[1].SetDown(true)

	var out bytes.Buffer
	n, err := c.FetchToStriped("/big", &out, StripeConfig{Size: 1 << 20, Streams: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) || !bytes.Equal(out.Bytes(), content) {
		t.Fatal("content mismatch after mid-stripe failover")
	}
}

func TestFetchToStripedAllReplicasDownFails(t *testing.T) {
	content := make([]byte, 4<<20)
	c, servers := stripedCluster(t, "/big", content, 2)
	for _, srv := range servers {
		srv.SetDown(true)
	}
	var out bytes.Buffer
	if _, err := c.FetchToStriped("/big", &out, StripeConfig{Size: 1 << 20, Streams: 2}); err == nil {
		t.Fatal("fetch with all replicas down succeeded")
	}
}

func TestFetchToStripedRejectsDivergentReplica(t *testing.T) {
	content := make([]byte, 4<<20)
	rand.New(rand.NewSource(4)).Read(content)
	c, servers := stripedCluster(t, "/big", content, 3)
	// One replica holds different bytes of the same length: stat-based
	// identity checks must fence it off the stripe set. No selector, so
	// the reference replica is deterministically the first registered.
	c.Selector = nil
	bad := append([]byte(nil), content...)
	bad[1<<20] ^= 0xff
	servers[2].Store("/big", bad)

	var out bytes.Buffer
	n, err := c.FetchToStriped("/big", &out, StripeConfig{Size: 1 << 20, Streams: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) || !bytes.Equal(out.Bytes(), content) {
		t.Fatal("divergent replica corrupted the striped fetch")
	}
}

// TestFetchToStripedProperty round-trips arbitrary stripe-size /
// file-size / stream-count combinations: whatever the geometry, the
// reassembled bytes must match the source exactly.
func TestFetchToStripedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		size := 1 + rng.Intn(3<<20)
		stripe := int64(1 + rng.Intn(1<<20))
		streams := 1 + rng.Intn(5)
		content := make([]byte, size)
		rng.Read(content)
		t.Run(fmt.Sprintf("size=%d/stripe=%d/streams=%d", size, stripe, streams), func(t *testing.T) {
			c, _ := stripedCluster(t, "/p", content, 1+rng.Intn(4))
			var out bytes.Buffer
			n, err := c.FetchToStriped("/p", &out, StripeConfig{Size: stripe, Streams: streams})
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(size) || !bytes.Equal(out.Bytes(), content) {
				t.Fatalf("round-trip failed: n=%d want %d", n, size)
			}
		})
	}
}

func TestFetchToStripedStampsSiteBytes(t *testing.T) {
	content := make([]byte, 4<<20)
	c, _ := stripedCluster(t, "/big", content, 2)
	reg := telemetry.NewRegistry()
	c.Telemetry = reg
	var out bytes.Buffer
	if _, err := c.FetchToStriped("/big", &out, StripeConfig{Size: 1 << 20, Streams: 2}); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 2; i++ {
		total += reg.SiteBytes("xrootd_client", telemetry.DirIn,
			fmt.Sprintf("T2_US_Site%d", i)).Value()
	}
	if total != int64(len(content)) {
		t.Fatalf("site-labelled bytes = %d, want %d", total, len(content))
	}
}
