package xrootd

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"lobster/internal/trace"
)

// Client opens LFNs through a redirector, streaming content from whichever
// replica answers and failing over between replicas on error. Consumer names
// the accounting entity (site or user) for the Dashboard.
type Client struct {
	Redirector *Redirector
	Dashboard  *Dashboard
	Consumer   string
	// DialTimeout bounds each connection attempt (default 10 s).
	DialTimeout time.Duration

	tracer *trace.Tracer
	parent trace.Context
}

// Trace attaches a tracer and parent context: opens and fetches record
// spans naming the LFN and the replica that answered, so the analyzer
// can attribute slow WAN reads to a storage element. Call before use;
// a nil tracer or invalid parent leaves the client untraced at zero
// cost.
func (c *Client) Trace(tr *trace.Tracer, parent trace.Context) {
	c.tracer = tr
	c.parent = parent
}

// File is an open remote file. Not safe for concurrent use.
type File struct {
	client *Client
	lfn    string
	size   int64
	offset int64
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
}

// Open resolves lfn and connects to a replica. Replicas are tried in the
// order the redirector returns them.
func (c *Client) Open(lfn string) (*File, error) {
	return c.open(lfn, c.parent)
}

func (c *Client) open(lfn string, pctx trace.Context) (*File, error) {
	var sp *trace.Span
	if c.tracer != nil && pctx.Valid() {
		sp = c.tracer.Start(pctx, "xrootd", "open")
		sp.Attr("lfn", lfn)
	}
	defer sp.End()
	reps, err := c.Redirector.Locate(lfn)
	if err != nil {
		sp.Attr("error", err.Error())
		return nil, err
	}
	var firstErr error
	for i, rep := range reps {
		f, err := c.openAt(lfn, rep)
		if err == nil {
			sp.Attr("replica", rep.Addr)
			sp.AttrInt("attempts", int64(i+1))
			return f, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	sp.Attr("error", firstErr.Error())
	return nil, fmt.Errorf("xrootd: all %d replicas of %s failed: %w", len(reps), lfn, firstErr)
}

func (c *Client) openAt(lfn string, rep Replica) (*File, error) {
	timeout := c.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", rep.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("xrootd: dialing %s: %w", rep.Addr, err)
	}
	f := &File{
		client: c,
		lfn:    lfn,
		conn:   conn,
		r:      bufio.NewReaderSize(conn, 64<<10),
		w:      bufio.NewWriterSize(conn, 8<<10),
	}
	size, err := f.roundTripSize("open %s\n", lfn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	f.size = size
	return f, nil
}

// roundTripSize sends one command and parses a numeric first response line.
func (f *File) roundTripSize(format string, args ...any) (int64, error) {
	if _, err := fmt.Fprintf(f.w, format, args...); err != nil {
		return 0, err
	}
	if err := f.w.Flush(); err != nil {
		return 0, err
	}
	line, err := f.r.ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("xrootd: reading response: %w", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if strings.HasPrefix(line, "-1") {
		return 0, fmt.Errorf("xrootd: server error: %s", strings.TrimSpace(strings.TrimPrefix(line, "-1")))
	}
	n, err := strconv.ParseInt(line, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("xrootd: bad response %q", line)
	}
	return n, nil
}

// Size returns the file size.
func (f *File) Size() int64 { return f.size }

// LFN returns the file's logical name.
func (f *File) LFN() string { return f.lfn }

// Read implements io.Reader, streaming sequentially from the replica.
func (f *File) Read(p []byte) (int, error) {
	if f.offset >= f.size {
		return 0, io.EOF
	}
	n, err := f.ReadAt(p, f.offset)
	f.offset += int64(n)
	if err != nil {
		return n, err
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// ReadAt reads len(p) bytes at the given offset (shorter only at EOF).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := f.roundTripSize("read %s %d %d\n", f.lfn, off, len(p))
	if err != nil {
		return 0, err
	}
	if n > int64(len(p)) {
		return 0, fmt.Errorf("xrootd: server over-answered: %d > %d", n, len(p))
	}
	if _, err := io.ReadFull(f.r, p[:n]); err != nil {
		return 0, fmt.Errorf("xrootd: short payload: %w", err)
	}
	f.client.Dashboard.Record(f.client.Consumer, n)
	return int(n), nil
}

// Close releases the connection.
func (f *File) Close() error {
	fmt.Fprint(f.w, "quit\n")
	f.w.Flush()
	return f.conn.Close()
}

// Fetch streams the whole file into memory, the staging-style access.
func (c *Client) Fetch(lfn string) ([]byte, error) {
	var sp *trace.Span
	if c.tracer != nil && c.parent.Valid() {
		sp = c.tracer.Start(c.parent, "xrootd", "fetch")
		sp.Attr("lfn", lfn)
	}
	defer sp.End()
	f, err := c.open(lfn, sp.Context().OrElse(c.parent))
	if err != nil {
		sp.Attr("error", err.Error())
		return nil, err
	}
	defer f.Close()
	sp.Attr("replica", f.conn.RemoteAddr().String())
	sp.AttrInt("bytes", f.Size())
	buf := make([]byte, f.Size())
	var read int64
	const chunk = 256 << 10
	for read < f.Size() {
		n := int64(chunk)
		if f.Size()-read < n {
			n = f.Size() - read
		}
		m, err := f.ReadAt(buf[read:read+n], read)
		if err != nil {
			return nil, err
		}
		if m == 0 {
			return nil, fmt.Errorf("xrootd: unexpected EOF at %d/%d of %s", read, f.Size(), lfn)
		}
		read += int64(m)
	}
	return buf, nil
}
