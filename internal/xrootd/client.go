package xrootd

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"lobster/internal/bufpool"
	"lobster/internal/faultinject"
	"lobster/internal/retry"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// Client opens LFNs through a redirector, streaming content from whichever
// replica answers and failing over between replicas on error. Consumer names
// the accounting entity (site or user) for the Dashboard.
//
// Failure handling: each replica pass tries every replica once, skipping
// to the next on transport failures and stopping early on permanent
// (server-reported or protocol) errors. When Retry is configured, whole
// passes repeat under bounded exponential backoff — the WAN read path
// in the paper's environment sees transient replica outages that clear
// within seconds, so a second pass usually lands.
type Client struct {
	Redirector *Redirector
	Dashboard  *Dashboard
	Consumer   string
	// DialTimeout bounds each connection attempt (default 10 s).
	DialTimeout time.Duration
	// OpTimeout bounds each protocol round trip via a connection
	// deadline (0 = unbounded).
	OpTimeout time.Duration
	// Retry bounds repeated replica passes on transport failures. The
	// zero Policy keeps the old behaviour: one pass, fail over between
	// replicas, surface the first error when all fail.
	Retry retry.Policy
	// Fault, when non-nil, wires replica connections into the fault
	// plane under component "xrootd_client".
	Fault *faultinject.Injector
	// Telemetry, when non-nil, counts fetched payload bytes under
	// lobster_bytes_total{component="xrootd_client",site=...}, one
	// series per serving site — the Figure 9 accounting shape.
	Telemetry *telemetry.Registry
	// Selector, when non-nil, orders Locate results by observed
	// bandwidth and sheds consistently slow or failing replicas. Every
	// completed transfer feeds it; share one selector across the
	// clients of a consumer so the EWMAs see all streams.
	Selector *Selector

	tracer *trace.Tracer
	parent trace.Context
}

// Trace attaches a tracer and parent context: opens and fetches record
// spans naming the LFN and the replica that answered, so the analyzer
// can attribute slow WAN reads to a storage element. Call before use;
// a nil tracer or invalid parent leaves the client untraced at zero
// cost.
func (c *Client) Trace(tr *trace.Tracer, parent trace.Context) {
	c.tracer = tr
	c.parent = parent
}

// File is an open remote file. Not safe for concurrent use.
//
// Any transport failure closes the connection and marks the file
// broken: the line protocol has no resync point, so later operations
// short-circuit with the original classification (retryable — reopen
// and try again).
type File struct {
	client *Client
	lfn    string
	size   int64
	offset int64
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	broken bool
	addr   string
	rep    Replica // the replica serving this connection
}

// fail closes the connection after a transport failure and returns err.
func (f *File) fail(err error) error {
	if !f.broken {
		f.broken = true
		f.conn.Close()
	}
	return err
}

// Broken reports whether a transport failure has poisoned this file's
// connection; a broken file must be reopened.
func (f *File) Broken() bool { return f.broken }

var errBroken = fmt.Errorf("xrootd: connection broken by earlier failure")

// Open resolves lfn and connects to a replica. Replicas are tried in the
// order the redirector returns them; configured retries repeat the whole
// pass with backoff.
func (c *Client) Open(lfn string) (*File, error) {
	return c.open(lfn, c.parent)
}

func (c *Client) open(lfn string, pctx trace.Context) (*File, error) {
	var sp *trace.Span
	if c.tracer != nil && pctx.Valid() {
		sp = c.tracer.Start(pctx, "xrootd", "open")
		sp.Attr("lfn", lfn)
	}
	defer sp.End()
	var f *File
	err := c.Retry.Do(func() error {
		var err error
		f, err = c.openPass(lfn, sp)
		return err
	})
	if err != nil {
		sp.Attr("error", err.Error())
		return nil, err
	}
	return f, nil
}

// openPass makes one pass over the replicas, failing over to the next
// on any error (a replica reporting "unavailable" in protocol is the
// canonical failover trigger). The aggregate error is permanent only
// when every replica failed permanently — one transient failure makes
// the whole pass worth retrying.
func (c *Client) openPass(lfn string, sp *trace.Span) (*File, error) {
	reps, err := c.Redirector.Locate(lfn)
	if err != nil {
		// An unknown LFN will stay unknown: no point re-asking.
		return nil, retry.Permanent(err)
	}
	reps = c.Selector.Order(reps)
	var firstErr error
	allPermanent := true
	for i, rep := range reps {
		f, err := c.openAt(lfn, rep)
		if err == nil {
			sp.Attr("replica", rep.Addr)
			sp.AttrInt("attempts", int64(i+1))
			return f, nil
		}
		if !retry.IsPermanent(err) {
			allPermanent = false
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	err = fmt.Errorf("xrootd: all %d replicas of %s failed: %w", len(reps), lfn, firstErr)
	if allPermanent {
		// %w keeps firstErr visible to errors.Is; the outer marker stops
		// the retry loop from re-running a pass that cannot succeed.
		err = retry.Permanent(err)
	}
	return nil, err
}

func (c *Client) openAt(lfn string, rep Replica) (*File, error) {
	timeout := c.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", rep.Addr, timeout)
	if err != nil {
		c.Selector.ObserveError(rep)
		return nil, fmt.Errorf("xrootd: dialing %s: %w", rep.Addr, err)
	}
	conn = c.Fault.Conn("xrootd_client", conn)
	f := &File{
		client: c,
		lfn:    lfn,
		conn:   conn,
		r:      bufio.NewReaderSize(conn, 64<<10),
		w:      bufio.NewWriterSize(conn, 8<<10),
		addr:   rep.Addr,
		rep:    rep,
	}
	size, err := f.roundTripSize("open %s\n", lfn)
	if err != nil {
		f.fail(err)
		c.Selector.ObserveError(rep)
		return nil, err
	}
	f.size = size
	return f, nil
}

// roundTripLine sends one command and returns the trimmed first
// response line. Transport failures close the connection; a "-1"
// response maps to *ServerError (permanent, connection intact — no
// payload follows an error line).
func (f *File) roundTripLine(format string, args ...any) (string, error) {
	if f.broken {
		return "", errBroken
	}
	if t := f.client.OpTimeout; t > 0 {
		f.conn.SetDeadline(time.Now().Add(t))
	}
	if _, err := fmt.Fprintf(f.w, format, args...); err != nil {
		return "", f.fail(err)
	}
	if err := f.w.Flush(); err != nil {
		return "", f.fail(err)
	}
	line, err := f.r.ReadString('\n')
	if err != nil {
		return "", f.fail(fmt.Errorf("xrootd: reading response: %w", err))
	}
	line = strings.TrimRight(line, "\r\n")
	if strings.HasPrefix(line, "-1") {
		return "", &ServerError{Replica: f.addr,
			Msg: strings.TrimSpace(strings.TrimPrefix(line, "-1"))}
	}
	return line, nil
}

// roundTripSize is roundTripLine for the numeric responses: a
// non-numeric line maps to *ProtocolError (permanent, connection
// closed — the stream is desynchronised).
func (f *File) roundTripSize(format string, args ...any) (int64, error) {
	line, err := f.roundTripLine(format, args...)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(line, 10, 64)
	if err != nil {
		perr := &ProtocolError{Replica: f.addr, Msg: fmt.Sprintf("bad response %q", line)}
		f.fail(perr)
		return 0, perr
	}
	return n, nil
}

// Stat asks the replica for the file's size and whole-content CRC32.
// ok is false when the server predates the stat command (it answered
// "-1 unknown command"); the connection stays usable either way unless
// a transport or protocol error is returned.
func (f *File) Stat() (size int64, crc uint32, ok bool, err error) {
	line, err := f.roundTripLine("stat %s\n", f.lfn)
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			return f.size, 0, false, nil
		}
		return 0, 0, false, err
	}
	var c64 uint64
	if _, serr := fmt.Sscanf(line, "%d %x", &size, &c64); serr != nil || c64 > 1<<32-1 {
		perr := &ProtocolError{Replica: f.addr, Msg: fmt.Sprintf("bad stat response %q", line)}
		f.fail(perr)
		return 0, 0, false, perr
	}
	return size, uint32(c64), true, nil
}

// Size returns the file size.
func (f *File) Size() int64 { return f.size }

// LFN returns the file's logical name.
func (f *File) LFN() string { return f.lfn }

// Read implements io.Reader, streaming sequentially from the replica.
func (f *File) Read(p []byte) (int, error) {
	if f.offset >= f.size {
		return 0, io.EOF
	}
	n, err := f.ReadAt(p, f.offset)
	f.offset += int64(n)
	if err != nil {
		return n, err
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// ReadAt reads len(p) bytes at the given offset (shorter only at EOF).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := f.roundTripSize("read %s %d %d\n", f.lfn, off, len(p))
	if err != nil {
		return 0, err
	}
	if n > int64(len(p)) {
		perr := &ProtocolError{Replica: f.addr,
			Msg: fmt.Sprintf("server over-answered: %d > %d", n, len(p))}
		f.fail(perr)
		return 0, perr
	}
	if _, err := io.ReadFull(f.r, p[:n]); err != nil {
		return 0, f.fail(fmt.Errorf("xrootd: short payload: %w", err))
	}
	f.client.Dashboard.Record(f.client.Consumer, n)
	return int(n), nil
}

// Close releases the connection. A broken connection is already closed.
func (f *File) Close() error {
	if f.broken {
		return nil
	}
	f.broken = true
	fmt.Fprint(f.w, "quit\n")
	f.w.Flush()
	return f.conn.Close()
}

// Fetch streams the whole file into memory, the staging-style access.
// It is a wrapper over FetchTo; the buffer grows as bytes actually
// arrive, so a replica claiming a huge size cannot make the client
// commit the memory up front.
func (c *Client) Fetch(lfn string) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := c.FetchTo(lfn, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FetchTo streams the whole file at lfn into w through pooled chunk
// buffers, returning the byte count. The positional read protocol makes
// retries resumable: a transport failure mid-fetch reopens the file
// (possibly on another replica) and continues at the byte where the
// previous attempt died, so the bytes already delivered to w are never
// re-fetched or duplicated. A sink (w) failure is permanent — a retry
// would feed the same broken sink.
func (c *Client) FetchTo(lfn string, w io.Writer) (int64, error) {
	var sp *trace.Span
	if c.tracer != nil && c.parent.Valid() {
		sp = c.tracer.Start(c.parent, "xrootd", "fetch")
		sp.Attr("lfn", lfn)
	}
	defer sp.End()
	var written int64
	err := c.Retry.Do(func() error {
		startT := time.Now()
		n, rep, err := c.fetchToOnce(lfn, w, written, sp)
		written += n
		c.account(rep, n, time.Since(startT), err)
		return err
	})
	sp.AttrInt("bytes", written)
	if err != nil {
		sp.Attr("error", err.Error())
		return written, err
	}
	return written, nil
}

// account feeds one attempt's outcome to the selector and the shared
// byte counter. Bytes are counted per attempt, stamped with the serving
// site, so a fetch that fails over mid-file attributes each span of
// bytes to the replica that actually served it.
func (c *Client) account(rep Replica, n int64, d time.Duration, err error) {
	if n > 0 {
		c.Selector.Observe(rep, n, d)
		if reg := c.Telemetry; reg != nil {
			reg.SiteBytes("xrootd_client", telemetry.DirIn, rep.Site).Add(n)
		}
	}
	if err != nil && rep.Addr != "" {
		c.Selector.ObserveError(rep)
	}
}

// fetchToOnce performs one fetch attempt starting at offset start,
// returning how many bytes it delivered to w and the replica that
// served them (the zero Replica when no replica was even opened). The
// outer policy in FetchTo owns backoff, so the inner open must not
// retry on its own.
func (c *Client) fetchToOnce(lfn string, w io.Writer, start int64, sp *trace.Span) (int64, Replica, error) {
	inner := *c
	inner.Retry = retry.Policy{}
	f, err := inner.openPass(lfn, sp)
	if err != nil {
		return 0, Replica{}, err
	}
	defer f.Close()
	sp.Attr("replica", f.conn.RemoteAddr().String())
	if start > f.Size() {
		return 0, f.rep, retry.Permanent(fmt.Errorf(
			"xrootd: %s shrank to %d bytes below resume offset %d", lfn, f.Size(), start))
	}
	if start > 0 {
		sp.AttrInt("resume_at", start)
	}
	f.offset = start
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	var n int64
	for {
		m, err := f.Read(*buf)
		if m > 0 {
			wn, werr := w.Write((*buf)[:m])
			n += int64(wn)
			if werr == nil && wn < m {
				werr = io.ErrShortWrite
			}
			if werr != nil {
				return n, f.rep, retry.Permanent(fmt.Errorf("xrootd: writing payload to sink: %w", werr))
			}
		}
		if err == io.EOF {
			return n, f.rep, nil
		}
		if err != nil {
			return n, f.rep, err
		}
	}
}
