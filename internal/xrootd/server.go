package xrootd

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Protocol (one text line per request; binary payloads follow):
//
//	open <lfn>                 → "<size>\n" | "-1 <error>\n"
//	read <lfn> <offset> <len>  → "<n>\n" + n bytes | "-1 <error>\n"
//	stat <lfn>                 → "<size> <crc32>\n" | "-1 <error>\n"
//	quit                       → closes the connection
//
// read returns fewer than len bytes only at end of file. stat carries
// the IEEE CRC32 of the whole content in lower-case hex: striped
// multi-replica fetches use it to check that the replicas they are
// about to stripe across hold the same bytes, and to verify the
// reassembled output. Servers predating stat answer "-1 unknown
// command", which clients treat as "no checksum available".

// DataServer serves file content by LFN over TCP for one site.
type DataServer struct {
	site string
	lis  net.Listener

	mu    sync.RWMutex
	files map[string][]byte
	crcs  map[string]uint32
	down  bool // fault injection: refuse all requests

	wg       sync.WaitGroup
	closed   atomic.Bool
	reads    atomic.Int64
	bytesOut atomic.Int64
	throttle atomic.Int64 // payload bytes/sec per connection; 0 = unthrottled
}

// NewDataServer starts a data server for site on addr ("127.0.0.1:0").
func NewDataServer(site, addr string) (*DataServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("xrootd: listening: %w", err)
	}
	s := &DataServer{site: site, lis: lis,
		files: make(map[string][]byte), crcs: make(map[string]uint32)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *DataServer) Addr() string { return s.lis.Addr().String() }

// Site returns the site name.
func (s *DataServer) Site() string { return s.site }

// Store installs content for lfn and returns the replica descriptor to
// register with a redirector.
func (s *DataServer) Store(lfn string, content []byte) Replica {
	s.mu.Lock()
	s.files[lfn] = append([]byte(nil), content...)
	s.crcs[lfn] = crc32.ChecksumIEEE(content)
	s.mu.Unlock()
	return Replica{Site: s.site, Addr: s.Addr()}
}

// SetDown toggles fault injection: while down, every request errors. This
// models the transient WAN data-access outage in the paper's Figure 10.
func (s *DataServer) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// SetThrottle caps each connection's payload rate at bytesPerSec
// (0 = unthrottled). Loopback runs at memcpy speed; a throttled server
// models the data-challenge shape instead — a remote storage element
// whose uplink, not the client NIC, bounds a single stream, which is
// the regime where striping across replicas pays.
func (s *DataServer) SetThrottle(bytesPerSec int64) {
	s.throttle.Store(bytesPerSec)
}

// pace sleeps long enough after serving n payload bytes to hold the
// connection at the throttle rate.
func (s *DataServer) pace(n int) {
	rate := s.throttle.Load()
	if rate <= 0 || n <= 0 {
		return
	}
	time.Sleep(time.Duration(int64(n) * int64(time.Second) / rate))
}

// Reads returns the number of read requests served.
func (s *DataServer) Reads() int64 { return s.reads.Load() }

// BytesOut returns the number of payload bytes served.
func (s *DataServer) BytesOut() int64 { return s.bytesOut.Load() }

// Close shuts the server down.
func (s *DataServer) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *DataServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *DataServer) serveConn(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 32<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "quit" {
			w.Flush()
			return
		}
		if err := s.dispatch(line, w); err != nil {
			fmt.Fprintf(w, "-1 %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *DataServer) dispatch(line string, w *bufio.Writer) error {
	s.mu.RLock()
	down := s.down
	s.mu.RUnlock()
	if down {
		return errors.New("server unavailable")
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return errors.New("empty command")
	}
	switch fields[0] {
	case "open":
		if len(fields) != 2 {
			return errors.New("usage: open <lfn>")
		}
		s.mu.RLock()
		content, ok := s.files[fields[1]]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("no such file %s", fields[1])
		}
		fmt.Fprintf(w, "%d\n", len(content))
		return nil
	case "stat":
		if len(fields) != 2 {
			return errors.New("usage: stat <lfn>")
		}
		s.mu.RLock()
		content, ok := s.files[fields[1]]
		crc := s.crcs[fields[1]]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("no such file %s", fields[1])
		}
		fmt.Fprintf(w, "%d %08x\n", len(content), crc)
		return nil
	case "read":
		if len(fields) != 4 {
			return errors.New("usage: read <lfn> <offset> <len>")
		}
		off, err1 := strconv.ParseInt(fields[2], 10, 64)
		n, err2 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || off < 0 || n < 0 {
			return errors.New("bad offset or length")
		}
		s.mu.RLock()
		content, ok := s.files[fields[1]]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("no such file %s", fields[1])
		}
		if off > int64(len(content)) {
			off = int64(len(content))
		}
		end := off + n
		if end < off || end > int64(len(content)) {
			// end < off means off+n overflowed int64; either way the
			// request reaches past EOF and is truncated there.
			end = int64(len(content))
		}
		chunk := content[off:end]
		fmt.Fprintf(w, "%d\n", len(chunk))
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		s.reads.Add(1)
		s.bytesOut.Add(int64(len(chunk)))
		s.pace(len(chunk))
		return nil
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}
