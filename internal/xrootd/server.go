package xrootd

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Protocol (one text line per request; binary payloads follow):
//
//	open <lfn>                 → "<size>\n" | "-1 <error>\n"
//	read <lfn> <offset> <len>  → "<n>\n" + n bytes | "-1 <error>\n"
//	quit                       → closes the connection
//
// read returns fewer than len bytes only at end of file.

// DataServer serves file content by LFN over TCP for one site.
type DataServer struct {
	site string
	lis  net.Listener

	mu    sync.RWMutex
	files map[string][]byte
	down  bool // fault injection: refuse all requests

	wg       sync.WaitGroup
	closed   atomic.Bool
	reads    atomic.Int64
	bytesOut atomic.Int64
}

// NewDataServer starts a data server for site on addr ("127.0.0.1:0").
func NewDataServer(site, addr string) (*DataServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("xrootd: listening: %w", err)
	}
	s := &DataServer{site: site, lis: lis, files: make(map[string][]byte)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *DataServer) Addr() string { return s.lis.Addr().String() }

// Site returns the site name.
func (s *DataServer) Site() string { return s.site }

// Store installs content for lfn and returns the replica descriptor to
// register with a redirector.
func (s *DataServer) Store(lfn string, content []byte) Replica {
	s.mu.Lock()
	s.files[lfn] = append([]byte(nil), content...)
	s.mu.Unlock()
	return Replica{Site: s.site, Addr: s.Addr()}
}

// SetDown toggles fault injection: while down, every request errors. This
// models the transient WAN data-access outage in the paper's Figure 10.
func (s *DataServer) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Reads returns the number of read requests served.
func (s *DataServer) Reads() int64 { return s.reads.Load() }

// BytesOut returns the number of payload bytes served.
func (s *DataServer) BytesOut() int64 { return s.bytesOut.Load() }

// Close shuts the server down.
func (s *DataServer) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *DataServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *DataServer) serveConn(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 32<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "quit" {
			w.Flush()
			return
		}
		if err := s.dispatch(line, w); err != nil {
			fmt.Fprintf(w, "-1 %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *DataServer) dispatch(line string, w *bufio.Writer) error {
	s.mu.RLock()
	down := s.down
	s.mu.RUnlock()
	if down {
		return errors.New("server unavailable")
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return errors.New("empty command")
	}
	switch fields[0] {
	case "open":
		if len(fields) != 2 {
			return errors.New("usage: open <lfn>")
		}
		s.mu.RLock()
		content, ok := s.files[fields[1]]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("no such file %s", fields[1])
		}
		fmt.Fprintf(w, "%d\n", len(content))
		return nil
	case "read":
		if len(fields) != 4 {
			return errors.New("usage: read <lfn> <offset> <len>")
		}
		off, err1 := strconv.ParseInt(fields[2], 10, 64)
		n, err2 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || off < 0 || n < 0 {
			return errors.New("bad offset or length")
		}
		s.mu.RLock()
		content, ok := s.files[fields[1]]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("no such file %s", fields[1])
		}
		if off > int64(len(content)) {
			off = int64(len(content))
		}
		end := off + n
		if end > int64(len(content)) {
			end = int64(len(content))
		}
		chunk := content[off:end]
		fmt.Fprintf(w, "%d\n", len(chunk))
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		s.reads.Add(1)
		s.bytesOut.Add(int64(len(chunk)))
		return nil
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}
