package xrootd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/retry"
)

func TestServerErrorClassification(t *testing.T) {
	srv := newServer(t, "T2_CLASSIFY")
	red := NewRedirector()
	red.Register("/f", srv.Store("/f", []byte("x")))
	srv.SetDown(true)

	c := &Client{Redirector: red, Consumer: "c"}
	_, err := c.Open("/f")
	if err == nil {
		t.Fatal("open succeeded with replica down")
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *ServerError in chain", err, err)
	}
	if !errors.Is(err, ErrServer) {
		t.Error("down-replica error does not match ErrServer")
	}
	// All replicas failed permanently → the aggregate is permanent.
	if !retry.IsPermanent(err) {
		t.Error("all-permanent pass not classified permanent")
	}
}

func TestUnknownLFNPermanent(t *testing.T) {
	c := &Client{Redirector: NewRedirector(), Consumer: "c",
		Retry: retry.Policy{MaxAttempts: 5, Sleep: func(time.Duration) {}}}
	start := time.Now()
	_, err := c.Open("/no/such/lfn")
	if err == nil {
		t.Fatal("open of unknown LFN succeeded")
	}
	if !retry.IsPermanent(err) {
		t.Error("unknown-LFN error not permanent")
	}
	var re *retry.Error
	if errors.As(err, &re) && re.Attempts != 1 {
		t.Errorf("unknown LFN retried %d times", re.Attempts)
	}
	if time.Since(start) > time.Second {
		t.Error("permanent error burned backoff time")
	}
}

func TestTransportFaultMarksFileBroken(t *testing.T) {
	srv := newServer(t, "T2_FAULTY")
	red := NewRedirector()
	content := bytes.Repeat([]byte("data"), 1000)
	red.Register("/f", srv.Store("/f", content))

	// Let the open succeed (reads 1–2: open request's response), then
	// drop the connection on a later read.
	inj := faultinject.New(&faultinject.Plan{
		Seed: 11,
		Rules: []faultinject.Rule{{
			Component: "xrootd_client", Op: "read",
			Action: faultinject.ActDrop, After: 1, Times: 1,
		}},
	})
	c := &Client{Redirector: red, Dashboard: NewDashboard(), Consumer: "c", Fault: inj}
	f, err := c.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, len(content))
	if _, err := f.ReadAt(buf, 0); err == nil {
		t.Fatal("ReadAt succeeded despite injected drop")
	}
	if !f.Broken() {
		t.Fatal("transport failure did not mark the file broken")
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, errBroken) {
		t.Fatalf("broken file op = %v, want errBroken", err)
	}
	f.Close() // no-op on broken file, must not panic
}

func TestFetchRetriesTransportFaults(t *testing.T) {
	srv := newServer(t, "T2_RECOVERS")
	red := NewRedirector()
	content := bytes.Repeat([]byte("payload!"), 64<<10/8)
	red.Register("/big", srv.Store("/big", content))

	// Kill the first fetch attempt mid-stream; the retry runs clean.
	inj := faultinject.New(&faultinject.Plan{
		Seed: 12,
		Rules: []faultinject.Rule{{
			Component: "xrootd_client", Op: "read",
			Action: faultinject.ActDrop, After: 2, Times: 1,
		}},
	})
	c := &Client{
		Redirector: red, Dashboard: NewDashboard(), Consumer: "c",
		Fault: inj,
		Retry: retry.Policy{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	}
	got, err := c.Fetch("/big")
	if err != nil {
		t.Fatalf("fetch with retries: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("fetched content mismatch after retry")
	}
	if inj.TotalFired() != 1 {
		t.Fatalf("fired = %d, want 1", inj.TotalFired())
	}
}

func TestProtocolErrorClassification(t *testing.T) {
	pe := &ProtocolError{Replica: "x:1", Msg: "bad response"}
	if !errors.Is(pe, ErrProtocol) || !errors.Is(pe, retry.ErrPermanent) {
		t.Error("protocol error classification wrong")
	}
	if IsRetryable(pe) {
		t.Error("protocol error classified retryable")
	}
	se := &ServerError{Replica: "x:1", Msg: "boom"}
	if IsRetryable(se) {
		t.Error("server error classified retryable")
	}
	if !IsRetryable(errors.New("connection reset")) {
		t.Error("plain transport error classified permanent")
	}
}
