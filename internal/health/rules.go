package health

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"lobster/internal/tsdb"
)

// Expr selects and reduces fleet series to one scalar. Fn picks the
// reduction:
//
//	value     sum of the matching series (default)
//	max       max of the matching series
//	rate      per-second increase of the summed value since the last tick
//	stall     seconds since the summed value last changed
//	imbalance max/mean of the per-group sums, grouped by the Over label
//	hist_mean fleet-wide mean of a histogram metric (sum of _sum over
//	          sum of _count)
//
// rate and stall are multi-tick functions. With history attached (see
// RuleSet.SetHistory — the hub always attaches its tsdb store) they
// evaluate against the recorded window: rate is the counter-reset-safe
// per-second increase over the last Window seconds (or the last two
// samples when Window is zero, matching the classic tick-over-tick
// rate), and stall scans recorded history for the instant the summed
// value last changed, so a freshly restarted hub with persisted history
// doesn't forget a wedged counter. Without history both fall back to
// per-rule memory across ticks and abstain on their first observation.
// Every fn abstains (the rule is skipped that tick) when no series
// match, so a rule set written for the full fleet degrades quietly on
// components that don't expose a given metric.
type Expr struct {
	Metric string            `json:"metric"`
	Match  map[string]string `json:"match,omitempty"`
	Fn     string            `json:"fn,omitempty"`
	Over   string            `json:"over,omitempty"`

	// Window widens rate/stall to a history window of this many
	// seconds. Zero keeps the single-tick lookback semantics.
	Window float64 `json:"window,omitempty"`
}

// Gate conditions a rule on a second expression: the rule only evaluates
// on ticks where `Expr Op Threshold` holds. A closed gate counts as the
// condition being false, so a firing rule resolves through its Clear
// hysteresis when the gate closes.
type Gate struct {
	Expr      Expr    `json:"expr"`
	Op        string  `json:"op,omitempty"`
	Threshold float64 `json:"threshold"`
}

// Rule is one declarative anomaly detector: an expression, a comparison
// against a static or derived threshold, and firing hysteresis.
type Rule struct {
	Name     string `json:"name"`
	Help     string `json:"help,omitempty"`
	Severity string `json:"severity,omitempty"` // "warn" (default) or "critical"

	Expr Expr   `json:"expr"`
	Op   string `json:"op,omitempty"` // ">", ">=", "<", "<=" (default ">")

	// Threshold is the static bound. When ThresholdExpr is set the
	// effective bound is max(Threshold, Scale×eval(ThresholdExpr)) —
	// Threshold acts as the floor under the derived value, which is how
	// the stuck-task watchdog pins "N× the observed stage time, but at
	// least a minute".
	Threshold     float64 `json:"threshold"`
	ThresholdExpr *Expr   `json:"threshold_expr,omitempty"`
	Scale         float64 `json:"scale,omitempty"`

	Gate *Gate `json:"gate,omitempty"`

	// For is how many consecutive ticks the condition must hold before
	// the rule fires; Clear how many ticks it must not hold before a
	// firing rule resolves. Both default to 1.
	For   int `json:"for,omitempty"`
	Clear int `json:"clear,omitempty"`

	// Profile requests a pprof capture from the fleet's HTTP endpoints
	// when this rule transitions to firing.
	Profile bool `json:"profile,omitempty"`
}

// ruleState is the engine's per-rule memory across ticks.
type ruleState struct {
	// expression memory (rate / stall)
	prevVal    float64
	prevTime   float64
	hasPrev    bool
	lastChange float64

	// hysteresis
	over   int
	under  int
	firing bool
}

// exceeds applies the rule's comparison operator.
func exceeds(op string, val, threshold float64) bool {
	switch op {
	case "<":
		return val < threshold
	case "<=":
		return val <= threshold
	case ">=":
		return val >= threshold
	default:
		return val > threshold
	}
}

// History is the recorded multi-tick window rate/stall evaluate
// against: the per-timestamp sum of every matching series over a time
// range. *tsdb.Store satisfies it.
type History interface {
	SumOver(name string, match map[string]string, from, to float64) []tsdb.Sample
}

// rateLookback bounds how far a zero-window rate looks for its previous
// sample; stallLookback effectively means "all recorded history" (the
// store's retention is the real bound).
const (
	rateLookback  = 3600.0
	stallLookback = 1e9
)

// evalRateHistory computes the counter-reset-safe rate over the
// recorded window: the last Window seconds, or just the last two
// samples when Window is zero (classic tick-over-tick semantics).
func (e *Expr) evalRateHistory(hist History, now float64) (val float64, ok bool) {
	lookback := e.Window
	if lookback <= 0 {
		lookback = rateLookback
	}
	samples := hist.SumOver(e.Metric, e.Match, now-lookback, now)
	if e.Window <= 0 && len(samples) > 2 {
		samples = samples[len(samples)-2:]
	}
	inc, elapsed, cok := tsdb.CounterIncrease(samples)
	if !cok || elapsed <= 0 {
		return 0, false
	}
	return inc / elapsed, true
}

// stallRunStart scans recorded history backwards for the start of the
// current flat run. Called once, on a rule's first evaluation — after
// that the engine tracks changes incrementally (it observes every tick
// the hub records), keeping steady-state stall evaluation O(1) instead
// of re-decoding an arbitrarily long flat run each tick.
func (e *Expr) stallRunStart(hist History, now float64) (float64, bool) {
	lookback := e.Window
	if lookback <= 0 {
		lookback = stallLookback
	}
	samples := hist.SumOver(e.Metric, e.Match, now-lookback, now)
	if len(samples) == 0 {
		return 0, false
	}
	cur := samples[len(samples)-1].V
	runStart := samples[len(samples)-1].T
	for i := len(samples) - 2; i >= 0; i-- {
		if samples[i].V != cur {
			break
		}
		runStart = samples[i].T
	}
	return runStart, true
}

// eval reduces the expression against the fleet at hub time now, using
// (and updating) the rule's memory. hist, when non-nil, backs rate and
// stall with recorded multi-tick windows instead of single-tick memory.
// ok is false when the expression abstains this tick.
func (e *Expr) eval(f *Fleet, st *ruleState, now float64, hist History) (val float64, ok bool) {
	switch e.Fn {
	case "", "value":
		sel := f.Select(e.Metric, e.Match)
		if len(sel) == 0 {
			return 0, false
		}
		for _, s := range sel {
			val += s.Value
		}
		return val, true
	case "max":
		sel := f.Select(e.Metric, e.Match)
		if len(sel) == 0 {
			return 0, false
		}
		for i, s := range sel {
			if i == 0 || s.Value > val {
				val = s.Value
			}
		}
		return val, true
	case "rate":
		sel := f.Select(e.Metric, e.Match)
		if len(sel) == 0 {
			return 0, false
		}
		if hist != nil {
			return e.evalRateHistory(hist, now)
		}
		cur := 0.0
		for _, s := range sel {
			cur += s.Value
		}
		defer func() { st.prevVal, st.prevTime, st.hasPrev = cur, now, true }()
		if !st.hasPrev || now <= st.prevTime || cur < st.prevVal {
			// First tick, stalled clock, or counter reset: abstain.
			return 0, false
		}
		return (cur - st.prevVal) / (now - st.prevTime), true
	case "stall":
		sel := f.Select(e.Metric, e.Match)
		if len(sel) == 0 {
			return 0, false
		}
		cur := 0.0
		for _, s := range sel {
			cur += s.Value
		}
		if hist != nil {
			switch {
			case !st.hasPrev:
				// First evaluation: recover the flat run from recorded
				// history, so a restarted hub with persisted samples
				// remembers how long a counter has been wedged.
				runStart, rok := e.stallRunStart(hist, now)
				if !rok {
					runStart = now
				}
				st.prevVal, st.hasPrev, st.lastChange = cur, true, runStart
			case cur != st.prevVal:
				st.prevVal, st.lastChange = cur, now
			}
			return now - st.lastChange, true
		}
		if !st.hasPrev || cur != st.prevVal {
			st.prevVal, st.hasPrev, st.lastChange = cur, true, now
			return 0, true
		}
		return now - st.lastChange, true
	case "imbalance":
		sel := f.Select(e.Metric, e.Match)
		groups := make(map[string]float64, 16)
		for _, s := range sel {
			groups[s.Label(e.Over)] += s.Value
		}
		if len(groups) < 2 {
			return 0, false
		}
		total, max := 0.0, 0.0
		for _, v := range groups {
			total += v
			if v > max {
				max = v
			}
		}
		mean := total / float64(len(groups))
		if mean <= 0 {
			return 0, false
		}
		return max / mean, true
	case "hist_mean":
		count := f.Value(e.Metric+"_count", e.Match)
		if count <= 0 {
			return 0, false
		}
		return f.Value(e.Metric+"_sum", e.Match) / count, true
	default:
		return 0, false
	}
}

// effectiveThreshold resolves the static-or-derived bound for this tick.
func (r *Rule) effectiveThreshold(f *Fleet, now float64) (float64, bool) {
	if r.ThresholdExpr == nil {
		return r.Threshold, true
	}
	var scratch ruleState // derived thresholds use memoryless fns
	dyn, ok := r.ThresholdExpr.eval(f, &scratch, now, nil)
	if !ok {
		// Derived bound unavailable (no observations yet): fall back to
		// the floor if one is set, otherwise abstain.
		return r.Threshold, r.Threshold != 0
	}
	scale := r.Scale
	if scale == 0 {
		scale = 1
	}
	if v := scale * dyn; v > r.Threshold {
		return v, true
	}
	return r.Threshold, true
}

// RuleSet is an ordered set of rules with their engine state.
type RuleSet struct {
	Rules  []Rule
	states []ruleState
	hist   History
}

// NewRuleSet wraps rules with fresh engine state.
func NewRuleSet(rules []Rule) *RuleSet {
	return &RuleSet{Rules: rules, states: make([]ruleState, len(rules))}
}

// SetHistory attaches the recorded window rate/stall evaluate against.
// The hub calls this with its tsdb store; a nil history restores the
// single-tick memory fallback.
func (rs *RuleSet) SetHistory(h History) {
	if rs != nil {
		rs.hist = h
	}
}

// LoadRules parses a JSON rule file: either a bare array of rules or an
// object with a "rules" key.
func LoadRules(r io.Reader) (*RuleSet, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("health: reading rules: %w", err)
	}
	var rules []Rule
	if err := json.Unmarshal(raw, &rules); err != nil {
		var wrapped struct {
			Rules []Rule `json:"rules"`
		}
		if err2 := json.Unmarshal(raw, &wrapped); err2 != nil || wrapped.Rules == nil {
			return nil, fmt.Errorf("health: parsing rules: %w", err)
		}
		rules = wrapped.Rules
	}
	seen := make(map[string]bool, len(rules))
	for i := range rules {
		if rules[i].Name == "" {
			return nil, fmt.Errorf("health: rule %d has no name", i)
		}
		if seen[rules[i].Name] {
			return nil, fmt.Errorf("health: duplicate rule %q", rules[i].Name)
		}
		seen[rules[i].Name] = true
		if rules[i].Expr.Metric == "" {
			return nil, fmt.Errorf("health: rule %q has no metric", rules[i].Name)
		}
		switch rules[i].Expr.Fn {
		case "", "value", "max", "rate", "stall", "imbalance", "hist_mean":
		default:
			return nil, fmt.Errorf("health: rule %q: unknown fn %q", rules[i].Name, rules[i].Expr.Fn)
		}
		if rules[i].Expr.Fn == "imbalance" && rules[i].Expr.Over == "" {
			return nil, fmt.Errorf("health: rule %q: imbalance needs an over label", rules[i].Name)
		}
		if w := rules[i].Expr.Window; w < 0 {
			return nil, fmt.Errorf("health: rule %q: negative window", rules[i].Name)
		} else if w > 0 {
			switch rules[i].Expr.Fn {
			case "rate", "stall":
			default:
				return nil, fmt.Errorf("health: rule %q: window only applies to rate/stall", rules[i].Name)
			}
		}
	}
	return NewRuleSet(rules), nil
}

// Transition is one rule state change produced by a tick.
type Transition struct {
	Rule      *Rule
	Firing    bool // true = fired this tick, false = resolved this tick
	Value     float64
	Threshold float64
}

// Evaluate runs every rule against the merged fleet view and returns the
// state transitions (rules that fired or resolved this tick), in rule
// order. Steady states — still firing, still quiet — produce nothing.
func (rs *RuleSet) Evaluate(f *Fleet, now float64) []Transition {
	if rs == nil {
		return nil
	}
	var out []Transition
	for i := range rs.Rules {
		r := &rs.Rules[i]
		st := &rs.states[i]

		threshold, thrOK := r.effectiveThreshold(f, now)
		val, ok := r.Expr.eval(f, st, now, rs.hist)
		cond := false
		if ok && thrOK {
			cond = exceeds(r.Op, val, threshold)
		}
		if r.Gate != nil && cond {
			var scratch ruleState
			gv, gok := r.Gate.Expr.eval(f, &scratch, now, nil)
			if !gok || !exceeds(r.Gate.Op, gv, r.Gate.Threshold) {
				cond = false
			}
		}

		if cond {
			st.over++
			st.under = 0
		} else {
			st.under++
			st.over = 0
		}

		forN, clearN := r.For, r.Clear
		if forN <= 0 {
			forN = 1
		}
		if clearN <= 0 {
			clearN = 1
		}
		switch {
		case !st.firing && st.over >= forN:
			st.firing = true
			out = append(out, Transition{Rule: r, Firing: true, Value: val, Threshold: threshold})
		case st.firing && st.under >= clearN:
			st.firing = false
			out = append(out, Transition{Rule: r, Firing: false, Value: val, Threshold: threshold})
		}
	}
	return out
}

// Firing returns the names of the rules currently in the firing state,
// sorted.
func (rs *RuleSet) Firing() []string {
	if rs == nil {
		return nil
	}
	var out []string
	for i := range rs.Rules {
		if rs.states[i].firing {
			out = append(out, rs.Rules[i].Name)
		}
	}
	sort.Strings(out)
	return out
}

// DefaultRules is the built-in detector set covering the failure modes
// the paper's operations narrative calls out: opportunistic eviction
// storms, wedged tasks, dispatch-shard skew, chirp connection-pool
// saturation, a worker ramp that stops climbing while work is queued,
// and a replicated control plane that keeps re-electing its leader.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:      "eviction_spike",
			Help:      "pilot evictions are arriving faster than the opportunistic baseline",
			Severity:  "critical",
			Expr:      Expr{Metric: "lobster_cluster_evictions_total", Fn: "rate"},
			Threshold: 0.5, // evictions/sec, fleet-wide
			For:       2,
			Clear:     3,
			Profile:   true,
		},
		{
			Name:     "stuck_tasks",
			Help:     "tasks are running but none have completed for far longer than the observed execution time",
			Severity: "critical",
			Expr:     Expr{Metric: "lobster_wq_tasks_done_total", Fn: "stall"},
			// Fire when the completion counter has been flat for 10× the
			// mean observed execution time, but at least 5 minutes — the
			// floor keeps the watchdog quiet during ramp-up, before any
			// completion has seeded the histogram.
			Threshold:     300,
			ThresholdExpr: &Expr{Metric: "lobster_wq_worker_exec_seconds", Fn: "hist_mean"},
			Scale:         10,
			Gate:          &Gate{Expr: Expr{Metric: "lobster_wq_tasks_running"}, Threshold: 0},
			For:           2,
			Clear:         1,
			Profile:       true,
		},
		{
			Name:      "shard_imbalance",
			Help:      "dispatch-shard queue depths are skewed; one shard holds several times its fair share",
			Severity:  "warn",
			Expr:      Expr{Metric: "lobster_wq_shard_queue_depth", Fn: "imbalance", Over: "shard"},
			Threshold: 4,
			Gate:      &Gate{Expr: Expr{Metric: "lobster_wq_shard_queue_depth"}, Threshold: 64},
			For:       3,
			Clear:     2,
		},
		{
			Name:      "chirp_pool_exhausted",
			Help:      "chirp servers are queueing connections; the concurrency pool is saturated",
			Severity:  "warn",
			Expr:      Expr{Metric: "lobster_chirp_queued_connections"},
			Threshold: 8,
			For:       2,
			Clear:     2,
			Profile:   true,
		},
		{
			Name:     "leader_flap",
			Help:     "the replicated control plane keeps holding elections; leadership is not sticking",
			Severity: "critical",
			// One election per takeover is health; a sustained election
			// rate means the fleet is flapping — masters partitioned from
			// their peers or a tick loop too starved to heart-beat. The
			// counter is per-member, so the fleet-wide sum rises by
			// ~quorum size per genuine leadership change.
			Expr:      Expr{Metric: "lobster_replica_elections_total", Fn: "rate", Window: 60},
			Threshold: 0.5, // sustained elections/sec across the fleet
			For:       2,
			Clear:     3,
			Profile:   true,
		},
		{
			Name:      "worker_ramp_stall",
			Help:      "work is queued but the connected-worker count has stopped climbing",
			Severity:  "warn",
			Expr:      Expr{Metric: "lobster_cluster_pilots_up", Fn: "stall"},
			Threshold: 600,
			Gate:      &Gate{Expr: Expr{Metric: "lobster_wq_tasks_waiting"}, Threshold: 0},
			For:       2,
			Clear:     2,
		},
	}
}
