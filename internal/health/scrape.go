package health

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"lobster/internal/telemetry"
)

// Source produces one endpoint's series at scrape time. The hub stamps
// component/instance labels onto whatever the source returns.
type Source interface {
	Scrape() ([]Series, error)
}

// ContextSource is a Source that honours cancellation. The hub prefers
// it when present, so its per-tick scrape deadline propagates into the
// endpoint's HTTP request instead of merely abandoning the goroutine.
type ContextSource interface {
	ScrapeContext(ctx context.Context) ([]Series, error)
}

// scrapeSource scrapes src, threading ctx through when it can.
func scrapeSource(ctx context.Context, src Source) ([]Series, error) {
	if cs, ok := src.(ContextSource); ok {
		return cs.ScrapeContext(ctx)
	}
	return src.Scrape()
}

// Endpoint is one scraped component of the fleet.
type Endpoint struct {
	Name      string // instance label, unique within the fleet ("worker-3")
	Component string // component label ("master", "worker", "chirpd", "squid")
	Source    Source
}

// HTTPSource scrapes a live process's GET /metrics (the plane every
// daemon serves via telemetry.Registry.Mux) and parses the Prometheus
// text. BaseURL also roots the /debug/pprof endpoints the hub captures
// profiles from when a rule fires.
type HTTPSource struct {
	BaseURL string
	Client  *http.Client
}

func (s *HTTPSource) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return defaultClient
}

var defaultClient = &http.Client{Timeout: 5 * time.Second}

// Scrape fetches and parses /metrics.
func (s *HTTPSource) Scrape() ([]Series, error) {
	return s.ScrapeContext(context.Background())
}

// ScrapeContext is Scrape under a deadline: the request is built with
// ctx, so the hub's per-tick timeout aborts a hung endpoint mid-dial or
// mid-body instead of waiting out the client timeout.
func (s *HTTPSource) ScrapeContext(ctx context.Context) ([]Series, error) {
	url := strings.TrimRight(s.BaseURL, "/") + "/metrics"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	page, err := ParseMetrics(resp.Body)
	if err != nil {
		return nil, err
	}
	return page.Series(), nil
}

// RegistrySource scrapes an in-process registry directly — the path the
// simulation plane uses, where there is no HTTP listener and time is
// simulated. The series shape matches what an HTTP scrape of the same
// registry would parse: histograms flatten to name_sum and name_count.
type RegistrySource struct {
	Reg *telemetry.Registry
}

// Scrape snapshots the registry.
func (s *RegistrySource) Scrape() ([]Series, error) {
	if s.Reg == nil {
		return nil, fmt.Errorf("health: registry source has no registry")
	}
	st := s.Reg.Snapshot()
	out := make([]Series, 0, len(st.Series)+8)
	for _, p := range st.Series {
		switch p.Type {
		case "histogram":
			out = append(out,
				Series{Name: p.Name + "_sum", Labels: p.Labels, Value: p.Value, Type: p.Type},
				Series{Name: p.Name + "_count", Labels: p.Labels, Value: float64(p.Count), Type: p.Type})
		default:
			out = append(out, Series{Name: p.Name, Labels: p.Labels, Value: p.Value, Type: p.Type})
		}
	}
	return out, nil
}

// StaticSource replays a fixed exposition payload — benchmarks and tests
// use it to model a fleet without sockets.
type StaticSource struct {
	Text []byte
}

// Scrape parses the payload.
func (s *StaticSource) Scrape() ([]Series, error) {
	page, err := ParseMetrics(strings.NewReader(string(s.Text)))
	if err != nil {
		return nil, err
	}
	return page.Series(), nil
}

// endpointScrape is one endpoint's scrape state inside the hub.
type endpointScrape struct {
	ep         Endpoint
	lastOK     float64 // hub-clock time of the last successful scrape
	hasOK      bool
	fails      int // consecutive failures
	lastErr    string
	series     []Series // last successful payload, component/instance stamped
	downFiring bool     // built-in endpoint_down alert state
}

// stamp attaches the component/instance labels to a fresh scrape.
func (e *endpointScrape) stamp(series []Series) {
	for i := range series {
		if series[i].Labels == nil {
			series[i].Labels = make(map[string]string, 2)
		}
		series[i].Labels["component"] = e.ep.Component
		series[i].Labels["instance"] = e.ep.Name
	}
	e.series = series
}
