package health

import (
	"strings"
	"testing"

	"lobster/internal/telemetry"
)

const samplePage = `# HELP lobster_wq_tasks_done_total Task results collected.
# TYPE lobster_wq_tasks_done_total counter
lobster_wq_tasks_done_total 42
# HELP lobster_wq_tasks_running Tasks in flight.
# TYPE lobster_wq_tasks_running gauge
lobster_wq_tasks_running 7
# HELP lobster_wq_worker_exec_seconds Execution stage time.
# TYPE lobster_wq_worker_exec_seconds histogram
lobster_wq_worker_exec_seconds_bucket{le="0.1"} 3
lobster_wq_worker_exec_seconds_bucket{le="1"} 9
lobster_wq_worker_exec_seconds_bucket{le="+Inf"} 12
lobster_wq_worker_exec_seconds_sum 14.5
lobster_wq_worker_exec_seconds_count 12
# HELP lobster_wq_shard_queue_depth Ready tasks per shard.
# TYPE lobster_wq_shard_queue_depth gauge
lobster_wq_shard_queue_depth{shard="0"} 5
lobster_wq_shard_queue_depth{shard="1"} 3
`

func TestParseMetrics(t *testing.T) {
	p, err := ParseMetrics(strings.NewReader(samplePage))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Families); got != 4 {
		t.Fatalf("families = %d, want 4", got)
	}
	f := p.Family("lobster_wq_tasks_done_total")
	if f == nil || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	if f.Help != "Task results collected." {
		t.Fatalf("help = %q", f.Help)
	}
	// Histogram sub-series land on the base family.
	h := p.Family("lobster_wq_worker_exec_seconds")
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", h)
	}
	if len(h.Samples) != 5 {
		t.Fatalf("histogram samples = %d, want 5 (3 buckets + sum + count)", len(h.Samples))
	}
	// Labelled gauge.
	g := p.Family("lobster_wq_shard_queue_depth")
	if len(g.Samples) != 2 || g.Samples[1].Label("shard") != "1" || g.Samples[1].Value != 3 {
		t.Fatalf("labelled gauge wrong: %+v", g.Samples)
	}
}

func TestParseMetricsEscapes(t *testing.T) {
	in := `# HELP m escaped\nhelp\\line
# TYPE m gauge
m{path="a\"b\\c\nd"} 1
`
	p, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := p.Family("m")
	if f.Help != "escaped\nhelp\\line" {
		t.Fatalf("help = %q", f.Help)
	}
	if got := f.Samples[0].Label("path"); got != "a\"b\\c\nd" {
		t.Fatalf("label = %q", got)
	}
	// Escapes survive a render round trip.
	p2, err := ParseMetrics(strings.NewReader(p.Render()))
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Family("m").Samples[0].Label("path"); got != "a\"b\\c\nd" {
		t.Fatalf("round-tripped label = %q", got)
	}
}

func TestParseMetricsErrors(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		"m{unterminated=\"v\n",
		"m{x=\"v\"} notanumber\n",
		"# TYPE m sideways\n",
		"{empty=\"\"} 1\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) succeeded, want error", bad)
		}
	}
	// A timestamp after the value is tolerated, not an error.
	if _, err := ParseMetrics(strings.NewReader("m 1 1712345678\n")); err != nil {
		t.Errorf("timestamped sample rejected: %v", err)
	}
}

// buildRegistry populates a registry the way the real components do:
// counters, gauges, labelled vecs, gauge funcs, and histograms.
func buildRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.SetClock(func() float64 { return 100 })
	c := reg.Counter("lobster_test_events_total", "Events observed.")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("lobster_test_depth", "Current depth.")
	g.Set(17)
	v := reg.CounterVec("lobster_test_by_kind_total", "Events by kind.", "kind")
	v.With("alpha").Add(3)
	v.With("beta").Add(5)
	reg.GaugeFunc("lobster_test_derived", "Computed at scrape.", func() float64 { return 2.5 })
	fv := reg.GaugeFuncVec("lobster_test_shard_depth", "Per-shard depth.", "shard")
	fv.With(func() float64 { return 4 }, "0")
	fv.With(func() float64 { return 9 }, "1")
	h := reg.Histogram("lobster_test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, obs := range []float64{0.05, 0.5, 0.7, 5, 20} {
		h.Observe(obs)
	}
	return reg
}

// TestRoundTripRegistry pins the core property: the parser re-renders
// exactly what the telemetry registry emits, byte for byte.
func TestRoundTripRegistry(t *testing.T) {
	reg := buildRegistry()
	var orig strings.Builder
	if err := reg.WritePrometheus(&orig); err != nil {
		t.Fatal(err)
	}
	p, err := ParseMetrics(strings.NewReader(orig.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Render(); got != orig.String() {
		t.Fatalf("round trip not byte-identical:\n--- emitted ---\n%s\n--- re-rendered ---\n%s", orig.String(), got)
	}
}

func TestPageSeries(t *testing.T) {
	p, err := ParseMetrics(strings.NewReader(samplePage))
	if err != nil {
		t.Fatal(err)
	}
	series := p.Series()
	want := 1 + 1 + 5 + 2
	if len(series) != want {
		t.Fatalf("series = %d, want %d", len(series), want)
	}
	found := false
	for _, s := range series {
		if s.Name == "lobster_wq_shard_queue_depth" && s.Labels["shard"] == "0" {
			found = true
			if s.Value != 5 || s.Type != "gauge" {
				t.Fatalf("shard series wrong: %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("shard series missing from flattening")
	}
}

// FuzzPromParse: any input that parses must re-render to a fixpoint —
// parse(render(parse(x))) renders identically. Corpus seeds cover the
// emitter dialect; the fuzzer explores escapes, label shapes, and number
// formats.
func FuzzPromParse(f *testing.F) {
	f.Add(samplePage)
	f.Add("m 1\n")
	f.Add("m{a=\"b\"} 2.5e-3\n")
	f.Add("# HELP m multi\\nline\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_sum 2\nm_count 1\n")
	f.Add("m{p=\"a\\\"b\\\\c\\nd\"} +Inf\n")
	var regPage strings.Builder
	buildRegistry().WritePrometheus(&regPage)
	f.Add(regPage.String())
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseMetrics(strings.NewReader(input))
		if err != nil {
			return
		}
		r1 := p.Render()
		p2, err := ParseMetrics(strings.NewReader(r1))
		if err != nil {
			t.Fatalf("re-parse of own render failed: %v\nrender:\n%s", err, r1)
		}
		if r2 := p2.Render(); r2 != r1 {
			t.Fatalf("render not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", r1, r2)
		}
	})
}
