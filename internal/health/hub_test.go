package health

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lobster/internal/monitor"
	"lobster/internal/profiling"
	"lobster/internal/telemetry"
)

// failSource fails until revived.
type failSource struct {
	fail bool
	next Source
}

func (f *failSource) Scrape() ([]Series, error) {
	if f.fail {
		return nil, errors.New("connection refused")
	}
	return f.next.Scrape()
}

func TestHubEvictionSpikeOnSimulatedClock(t *testing.T) {
	reg := telemetry.NewRegistry()
	evictions := reg.Counter("lobster_cluster_evictions_total", "Evictions.")
	now := 0.0
	reg.SetClock(func() float64 { return now })

	var buf bytes.Buffer
	evl := telemetry.NewEventLog(&buf, func() float64 { return now })

	hub := NewHub(Config{
		Endpoints: []Endpoint{{Name: "master", Component: "master", Source: &RegistrySource{Reg: reg}}},
		Rules:     NewRuleSet(DefaultRules()),
		Clock:     func() float64 { return now },
		Log:       evl,
	})

	// Quiet baseline: two ticks, no alerts.
	for i := 0; i < 2; i++ {
		now += 10
		if got := hub.Tick(); len(got) != 0 {
			t.Fatalf("quiet tick emitted %+v", got)
		}
	}
	// Eviction storm: 100 evictions per 10s tick = 10/s, over the 0.5/s
	// threshold. For=2 → fires on the second storm tick.
	now += 10
	evictions.Add(100)
	if got := hub.Tick(); len(got) != 0 {
		t.Fatalf("fired one tick early: %+v", got)
	}
	now += 10
	evictions.Add(100)
	got := hub.Tick()
	if len(got) != 1 || got[0].Rule != "eviction_spike" || !got[0].Firing() {
		t.Fatalf("want eviction_spike firing, got %+v", got)
	}
	if got[0].Time != now || got[0].Severity != "critical" {
		t.Fatalf("alert metadata wrong: %+v", got[0])
	}
	// Storm ends: Clear=3 quiet ticks resolve it.
	var resolved []monitor.AlertRecord
	for i := 0; i < 3; i++ {
		now += 10
		resolved = append(resolved, hub.Tick()...)
	}
	if len(resolved) != 1 || resolved[0].State != "resolved" {
		t.Fatalf("want one resolved alert, got %+v", resolved)
	}

	// The typed events round-trip through the monitor's replay path.
	evl.Flush()
	var m monitor.Monitor
	if _, err := m.ReplayLog(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	alerts := m.Alerts()
	if len(alerts) != 2 || alerts[0].Rule != "eviction_spike" || !alerts[0].Firing() || alerts[1].State != "resolved" {
		t.Fatalf("replayed alerts = %+v", alerts)
	}
}

func TestHubEndpointDown(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("lobster_test_total", "t.").Inc()
	src := &failSource{next: &RegistrySource{Reg: reg}}
	now := 0.0
	hub := NewHub(Config{
		Endpoints: []Endpoint{{Name: "worker-1", Component: "worker", Source: src}},
		Rules:     NewRuleSet(nil),
		Clock:     func() float64 { now++; return now },
		DownAfter: 2,
	})
	hub.Tick() // healthy baseline
	f := hub.Fleet()
	if !f.Endpoints[0].Up || f.Endpoints[0].AgeSec != 0 {
		t.Fatalf("baseline endpoint state: %+v", f.Endpoints[0])
	}

	src.fail = true
	if got := hub.Tick(); len(got) != 0 {
		t.Fatalf("down fired after 1 failure with DownAfter=2: %+v", got)
	}
	// Last-good series stay merged while the endpoint is down, aged.
	f = hub.Fleet()
	if f.Endpoints[0].Up || f.Endpoints[0].Err == "" || f.Endpoints[0].AgeSec <= 0 {
		t.Fatalf("failing endpoint state: %+v", f.Endpoints[0])
	}
	if v := f.Value("lobster_test_total", nil); v != 1 {
		t.Fatalf("stale series dropped from merge: %v", v)
	}
	got := hub.Tick()
	if len(got) != 1 || got[0].Rule != "endpoint_down" || !got[0].Firing() {
		t.Fatalf("want endpoint_down, got %+v", got)
	}
	if !strings.Contains(got[0].Help, "worker-1") {
		t.Fatalf("down alert names no endpoint: %+v", got[0])
	}
	src.fail = false
	got = hub.Tick()
	if len(got) != 1 || got[0].State != "resolved" {
		t.Fatalf("want endpoint_down resolved, got %+v", got)
	}
}

func TestHubStampsComponentLabels(t *testing.T) {
	regA, regB := telemetry.NewRegistry(), telemetry.NewRegistry()
	regA.Gauge("lobster_depth", "d.").Set(3)
	regB.Gauge("lobster_depth", "d.").Set(5)
	hub := NewHub(Config{
		Endpoints: []Endpoint{
			{Name: "worker-1", Component: "worker", Source: &RegistrySource{Reg: regA}},
			{Name: "worker-2", Component: "worker", Source: &RegistrySource{Reg: regB}},
		},
		Rules: NewRuleSet(nil),
		Clock: func() float64 { return 1 },
	})
	hub.Tick()
	f := hub.Fleet()
	if v := f.Value("lobster_depth", map[string]string{"component": "worker"}); v != 8 {
		t.Fatalf("fleet sum = %v, want 8", v)
	}
	if v := f.Value("lobster_depth", map[string]string{"instance": "worker-2"}); v != 5 {
		t.Fatalf("instance select = %v, want 5", v)
	}
	agg := f.Aggregate()
	found := false
	for _, a := range agg {
		if a.Name == "lobster_depth" {
			found = true
			if a.Total != 8 || a.Max != 5 || a.N != 2 || a.PerComponent["worker"] != 8 {
				t.Fatalf("aggregate wrong: %+v", a)
			}
		}
	}
	if !found {
		t.Fatal("lobster_depth missing from aggregates")
	}
}

// TestHubHTTPScrapeAndProfileCapture drives the full live path: an HTTP
// endpoint serving a real registry mux with pprof attached, a rule that
// fires, and a profile bundle archived next to the alert.
func TestHubHTTPScrapeAndProfileCapture(t *testing.T) {
	reg := telemetry.NewRegistry()
	queued := reg.Gauge("lobster_chirp_queued_connections", "Queued.")
	mux := reg.Mux()
	profiling.AttachPprof(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	dir := t.TempDir()
	now := 0.0
	var buf bytes.Buffer
	evl := telemetry.NewEventLog(&buf, func() float64 { return now })
	hubReg := telemetry.NewRegistry()
	hub := NewHub(Config{
		Endpoints:  []Endpoint{{Name: "chirpd", Component: "chirpd", Source: &HTTPSource{BaseURL: srv.URL}}},
		Clock:      func() float64 { now += 5; return now },
		Log:        evl,
		ProfileDir: dir,
		Registry:   hubReg,
	})

	hub.Tick()
	queued.Set(20) // over the chirp_pool_exhausted threshold (8), For=2
	hub.Tick()
	alerts := hub.Tick()
	if len(alerts) != 1 || alerts[0].Rule != "chirp_pool_exhausted" {
		t.Fatalf("want chirp_pool_exhausted, got %+v", alerts)
	}
	bundle := alerts[0].Profile
	if bundle == "" {
		t.Fatal("no profile bundle captured")
	}
	for _, name := range []string{"alert.json", "chirpd-goroutine.txt", "chirpd-heap.pb.gz"} {
		if _, err := os.Stat(filepath.Join(bundle, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(bundle, "alert.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest struct {
		Rule  string `json:"rule"`
		Alert struct {
			Rule string `json:"rule"`
		} `json:"alert"`
	}
	if err := json.Unmarshal(raw, &manifest); err != nil {
		t.Fatal(err)
	}
	if manifest.Rule != "chirp_pool_exhausted" || manifest.Alert.Rule != "chirp_pool_exhausted" {
		t.Fatalf("manifest = %+v", manifest)
	}
	// The goroutine dump is a real pprof text document.
	gr, _ := os.ReadFile(filepath.Join(bundle, "chirpd-goroutine.txt"))
	if !strings.Contains(string(gr), "goroutine") {
		t.Fatalf("goroutine profile looks wrong: %q", string(gr[:min(len(gr), 80)]))
	}
	// A profile_bundle event landed on the log alongside the alert.
	evl.Flush()
	if !strings.Contains(buf.String(), `"profile_bundle"`) {
		t.Fatal("no profile_bundle event emitted")
	}
	// Hub self-telemetry counted the scrapes.
	var page strings.Builder
	hubReg.WritePrometheus(&page)
	if !strings.Contains(page.String(), "lobster_fleet_scrapes_total 3") {
		t.Fatalf("hub telemetry missing scrape count:\n%s", page.String())
	}
}

func TestHubStatusHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("lobster_chirp_queued_connections", "Queued.").Set(50)
	hub := NewHub(Config{
		Endpoints: []Endpoint{{Name: "chirpd", Component: "chirpd", Source: &RegistrySource{Reg: reg}}},
		Clock:     func() float64 { return 7 },
	})
	hub.Tick()
	hub.Tick()
	hub.Tick() // chirp_pool_exhausted fires (For=2)

	srv := httptest.NewServer(hub.StatusHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Ticks     int64 `json:"ticks"`
		Endpoints []struct {
			Name string `json:"name"`
			Up   bool   `json:"up"`
		} `json:"endpoints"`
		Firing []string `json:"firing"`
		Alerts []struct {
			Rule string `json:"rule"`
		} `json:"alerts"`
		Series []struct {
			Name  string  `json:"Name"`
			Total float64 `json:"Total"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Ticks != 3 || len(v.Endpoints) != 1 || !v.Endpoints[0].Up {
		t.Fatalf("status = %+v", v)
	}
	if len(v.Firing) != 1 || v.Firing[0] != "chirp_pool_exhausted" {
		t.Fatalf("firing = %v", v.Firing)
	}
	if len(v.Alerts) != 1 || v.Alerts[0].Rule != "chirp_pool_exhausted" {
		t.Fatalf("alerts = %+v", v.Alerts)
	}
	found := false
	for _, s := range v.Series {
		if s.Name == "lobster_chirp_queued_connections" && s.Total == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("aggregates missing queued connections: %+v", v.Series)
	}
}
