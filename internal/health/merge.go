package health

import (
	"sort"
	"strings"
)

// Series is one merged fleet sample: a metric name, its labels (including
// the scraper-stamped "component" and "instance"), and the value at scrape
// time. Type carries the family type so aggregations can distinguish
// cumulative counters from instantaneous gauges.
type Series struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Type   string            `json:"type,omitempty"`
}

// Label returns the named label, or "".
func (s *Series) Label(name string) string {
	if s.Labels == nil {
		return ""
	}
	return s.Labels[name]
}

// EndpointState is the per-endpoint scrape outcome inside a Fleet view.
type EndpointState struct {
	Name      string `json:"name"`
	Component string `json:"component"`
	Up        bool   `json:"up"`
	Err       string `json:"err,omitempty"`
	// AgeSec is the time since the last successful scrape on the hub
	// clock; 0 for a fresh success, negative never-succeeded.
	AgeSec float64 `json:"age_sec"`
	Series int     `json:"series"`
	Fails  int     `json:"fails"` // consecutive scrape failures
}

// Fleet is one merged cluster-wide view: every endpoint's series with
// component/instance labels attached, plus per-endpoint scrape health.
type Fleet struct {
	Time      float64
	Endpoints []EndpointState
	Series    []Series

	byName map[string][]int // series indices by metric name
}

// index builds the name lookup once per merge.
func (f *Fleet) index() {
	f.byName = make(map[string][]int, 64)
	for i := range f.Series {
		f.byName[f.Series[i].Name] = append(f.byName[f.Series[i].Name], i)
	}
}

// Select returns the series with the given name whose labels match every
// matcher pair. The returned slices alias the fleet's storage.
func (f *Fleet) Select(name string, match map[string]string) []*Series {
	if f == nil {
		return nil
	}
	idx := f.byName[name]
	out := make([]*Series, 0, len(idx))
	for _, i := range idx {
		s := &f.Series[i]
		ok := true
		for k, v := range match {
			if s.Label(k) != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// Up counts endpoints whose last scrape succeeded.
func (f *Fleet) Up() int {
	n := 0
	for _, e := range f.Endpoints {
		if e.Up {
			n++
		}
	}
	return n
}

// FleetSeries is one cluster-wide aggregate of a metric across every
// endpoint: total (sum), max, and the per-component sums the dashboards
// break down by.
type FleetSeries struct {
	Name         string
	Type         string
	Total        float64
	Max          float64
	N            int
	PerComponent map[string]float64
}

// Aggregate folds every series of each metric name into one FleetSeries.
// Histogram sub-series (_bucket) are skipped — their cumulative counts
// are meaningless summed across le boundaries without alignment; _sum and
// _count aggregate fine and are kept. Returns the aggregates sorted by
// name.
func (f *Fleet) Aggregate() []FleetSeries {
	agg := make(map[string]*FleetSeries, len(f.byName))
	for i := range f.Series {
		s := &f.Series[i]
		if strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		a := agg[s.Name]
		if a == nil {
			a = &FleetSeries{Name: s.Name, Type: s.Type, PerComponent: make(map[string]float64, 4)}
			agg[s.Name] = a
		}
		a.Total += s.Value
		if s.Value > a.Max || a.N == 0 {
			a.Max = s.Value
		}
		a.N++
		a.PerComponent[s.Label("component")] += s.Value
	}
	out := make([]FleetSeries, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Value is a convenience: the sum over Select(name, match).
func (f *Fleet) Value(name string, match map[string]string) float64 {
	total := 0.0
	for _, s := range f.Select(name, match) {
		total += s.Value
	}
	return total
}

// HistMean returns sum(name_sum{match})/sum(name_count{match}), the
// fleet-wide mean of a histogram metric, or 0 with no observations.
func (f *Fleet) HistMean(name string, match map[string]string) float64 {
	sum := f.Value(name+"_sum", match)
	count := f.Value(name+"_count", match)
	if count <= 0 {
		return 0
	}
	return sum / count
}
