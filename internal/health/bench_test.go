package health

import (
	"bytes"
	"fmt"
	"testing"

	"lobster/internal/telemetry"
)

// benchPage renders one endpoint's exposition page the way a live
// component serves it: a registry populated with the series shapes the
// real daemons export (plain counters, labelled vecs, gauges, a stage
// histogram), written through WritePrometheus. ~40 series per page, the
// footprint of an instrumented worker.
func benchPage(seed int) []byte {
	reg := telemetry.NewRegistry()
	reg.SetClock(func() float64 { return 1000 })
	done := reg.Counter("lobster_wq_tasks_done_total", "tasks completed")
	done.Add(int64(100 + seed))
	reg.Counter("lobster_wq_tasks_failed_total", "tasks failed").Add(int64(seed % 7))
	reg.Counter("lobster_evictions_total", "workers evicted").Add(int64(seed % 3))
	reg.Gauge("lobster_wq_tasks_running", "tasks running").Set(float64(seed % 32))
	reg.Gauge("lobster_wq_tasks_waiting", "tasks waiting").Set(float64(seed % 16))
	reg.Gauge("lobster_cluster_pilots_up", "pilots up").Set(float64(seed%900 + 100))
	reg.Gauge("lobster_chirp_queued_connections", "chirp waiters").Set(float64(seed % 4))
	by := reg.CounterVec("lobster_bytes_total", "bytes moved", "component", "direction", "site")
	for _, c := range []string{"chirp", "xrootd", "squid", "wq"} {
		by.With(c, "in", "").Add(int64(seed * 1024))
		by.With(c, "out", "").Add(int64(seed * 512))
	}
	depth := reg.GaugeVec("lobster_wq_shard_queue_depth", "ready tasks per shard", "shard")
	for i := 0; i < 16; i++ {
		depth.With(fmt.Sprint(i)).Set(float64((seed + i) % 24))
	}
	h := reg.Histogram("lobster_wq_worker_exec_seconds", "task wall time",
		[]float64{1, 10, 60, 300, 1800})
	for i := 0; i < 8; i++ {
		h.Observe(float64(10 + (seed+i)%200))
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	return b.Bytes()
}

// BenchmarkFleetTick100 pins the cost of one full hub tick over a
// 100-endpoint fleet: 100 exposition pages parsed, stamped, merged into
// the fleet index, and the default rule set evaluated against it. This
// is the steady-state cost lobster-fleet pays every scrape interval;
// bench-guard -health holds it against BENCH_health.json.
func BenchmarkFleetTick100(b *testing.B) {
	const n = 100
	eps := make([]Endpoint, n)
	for i := range eps {
		comp := "worker"
		if i == 0 {
			comp = "master"
		}
		eps[i] = Endpoint{
			Name:      fmt.Sprintf("%s-%d", comp, i),
			Component: comp,
			Source:    &StaticSource{Text: benchPage(i + 1)},
		}
	}
	now := 0.0
	hub := NewHub(Config{
		Endpoints: eps,
		Rules:     NewRuleSet(DefaultRules()),
		Clock:     func() float64 { return now },
	})
	// Warm once so map growth and slice capacity settle out of the
	// measured steady state.
	now = 60
	hub.Tick()
	series := len(hub.Fleet().Series)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 60
		hub.Tick()
	}
	b.ReportMetric(float64(series), "series/tick")
}
