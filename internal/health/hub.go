package health

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lobster/internal/monitor"
	"lobster/internal/telemetry"
	"lobster/internal/tsdb"
)

// Config wires a Hub.
type Config struct {
	// Endpoints is the fleet to scrape.
	Endpoints []Endpoint

	// Rules is the detector set; nil means NewRuleSet(DefaultRules()).
	Rules *RuleSet

	// Interval is the Run loop's scrape period (default 5s). Tick is
	// callable directly regardless — the sim plane drives it from
	// simulated time and never calls Run.
	Interval time.Duration

	// Clock stamps fleet views and alerts; nil means wall time.
	Clock telemetry.Clock

	// Log receives typed "alert" (and "profile_bundle") events; may be
	// nil.
	Log *telemetry.EventLog

	// ProfileDir, when set, is where pprof bundles are archived when a
	// profiling-enabled rule fires.
	ProfileDir string

	// OnAlert observes every alert record as it is emitted; may be nil.
	OnAlert func(monitor.AlertRecord)

	// Registry receives the hub's own telemetry; may be nil.
	Registry *telemetry.Registry

	// DownAfter is how many consecutive scrape failures mark an endpoint
	// down (default 2).
	DownAfter int

	// Store receives every merged scrape as time-series history and
	// backs the rules' multi-tick windows. Nil means an in-memory store
	// with default retention is created; the caller owns flushing a
	// persistent store.
	Store *tsdb.Store

	// ScrapeTimeout bounds a single tick's scrape phase: endpoints that
	// have not answered by then are counted as failed for the tick and
	// their in-flight requests cancelled, so one hung endpoint cannot
	// stretch a tick past the interval. Default: Interval when set,
	// otherwise 5s.
	ScrapeTimeout time.Duration
}

// Hub is the fleet monitoring loop: scrape, merge, evaluate, alert.
type Hub struct {
	cfg   Config
	rules *RuleSet
	clock telemetry.Clock
	store *tsdb.Store

	mu     sync.Mutex
	eps    []endpointScrape
	fleet  *Fleet
	alerts []monitor.AlertRecord
	seq    int
	ticks  int64

	scrapes   *telemetry.Counter
	scrapeErr *telemetry.Counter
	alertsCtr *telemetry.Counter
	upGauge   *telemetry.Gauge
	seriesG   *telemetry.Gauge
	firingG   *telemetry.Gauge
}

// NewHub builds a hub from cfg.
func NewHub(cfg Config) *Hub {
	h := &Hub{cfg: cfg, rules: cfg.Rules, clock: cfg.Clock}
	if h.rules == nil {
		h.rules = NewRuleSet(DefaultRules())
	}
	if h.clock == nil {
		h.clock = func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	}
	if h.cfg.DownAfter <= 0 {
		h.cfg.DownAfter = 2
	}
	if h.cfg.ScrapeTimeout <= 0 {
		if h.cfg.Interval > 0 {
			h.cfg.ScrapeTimeout = h.cfg.Interval
		} else {
			h.cfg.ScrapeTimeout = 5 * time.Second
		}
	}
	h.store = cfg.Store
	if h.store == nil {
		h.store = tsdb.New(tsdb.Config{})
	}
	h.rules.SetHistory(h.store)
	h.eps = make([]endpointScrape, len(cfg.Endpoints))
	for i, ep := range cfg.Endpoints {
		h.eps[i] = endpointScrape{ep: ep}
	}
	if reg := cfg.Registry; reg != nil {
		h.scrapes = reg.Counter("lobster_fleet_scrapes_total",
			"Endpoint scrapes attempted by the fleet hub.")
		h.scrapeErr = reg.Counter("lobster_fleet_scrape_errors_total",
			"Endpoint scrapes that failed.")
		h.alertsCtr = reg.Counter("lobster_fleet_alerts_total",
			"Alert state transitions emitted (firing and resolved).")
		h.upGauge = reg.Gauge("lobster_fleet_endpoints_up",
			"Endpoints whose latest scrape succeeded.")
		h.seriesG = reg.Gauge("lobster_fleet_series_merged",
			"Series in the latest merged fleet view.")
		h.firingG = reg.Gauge("lobster_fleet_rules_firing",
			"Rules currently in the firing state.")
	}
	return h
}

// scrapeConcurrency bounds parallel endpoint scrapes per tick.
const scrapeConcurrency = 16

// Tick runs one scrape-merge-evaluate cycle at the hub clock's current
// time and returns the alerts it emitted (state transitions only).
func (h *Hub) Tick() []monitor.AlertRecord {
	now := h.clock()

	h.mu.Lock()
	defer h.mu.Unlock()
	h.ticks++

	// Scrape the fleet in parallel under a shared deadline. Goroutines
	// only send on the buffered channel — never touch hub state — so a
	// straggler that answers after the deadline is simply dropped and
	// its endpoint counted failed for this tick.
	type scrapeResult struct {
		idx    int
		series []Series
		err    error
	}
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ScrapeTimeout)
	results := make(chan scrapeResult, len(h.eps))
	sem := make(chan struct{}, scrapeConcurrency)
	for i := range h.eps {
		go func(i int, src Source) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				results <- scrapeResult{idx: i, err: ctx.Err()}
				return
			}
			series, err := scrapeSource(ctx, src)
			results <- scrapeResult{idx: i, series: series, err: err}
		}(i, h.eps[i].ep.Source)
	}
	got := make([]bool, len(h.eps))
	apply := func(r scrapeResult) {
		got[r.idx] = true
		e := &h.eps[r.idx]
		if r.err != nil {
			e.fails++
			e.lastErr = r.err.Error()
			return
		}
		e.fails = 0
		e.lastErr = ""
		e.lastOK = now
		e.hasOK = true
		e.stamp(r.series)
	}
	pending := len(h.eps)
collect:
	for pending > 0 {
		select {
		case r := <-results:
			apply(r)
			pending--
		case <-ctx.Done():
			break collect
		}
	}
	cancel()
	// Results that raced the deadline are still good — take them.
drain:
	for pending > 0 {
		select {
		case r := <-results:
			apply(r)
			pending--
		default:
			break drain
		}
	}
	for i := range h.eps {
		if !got[i] {
			h.eps[i].fails++
			h.eps[i].lastErr = "scrape deadline exceeded"
		}
	}
	h.scrapes.Add(int64(len(h.eps)))

	// Merge. Failed endpoints keep contributing their last-good series
	// (marked stale via AgeSec) so one dropped scrape doesn't zero the
	// fleet aggregates and fake a rate collapse.
	f := &Fleet{Time: now, Endpoints: make([]EndpointState, len(h.eps))}
	total := 0
	for i := range h.eps {
		total += len(h.eps[i].series)
	}
	f.Series = make([]Series, 0, total)
	errs := 0
	for i := range h.eps {
		e := &h.eps[i]
		age := -1.0
		if e.hasOK {
			age = now - e.lastOK
		}
		if e.fails > 0 {
			errs++
		}
		f.Endpoints[i] = EndpointState{
			Name:      e.ep.Name,
			Component: e.ep.Component,
			Up:        e.fails == 0 && e.hasOK,
			Err:       e.lastErr,
			AgeSec:    age,
			Series:    len(e.series),
			Fails:     e.fails,
		}
		f.Series = append(f.Series, e.series...)
	}
	f.index()
	h.fleet = f
	h.scrapeErr.Add(int64(errs))
	h.upGauge.Set(float64(f.Up()))
	h.seriesG.Set(float64(len(f.Series)))

	// Record the merged view into history before evaluating rules, so a
	// window ending at `now` sees this tick's values — the store is the
	// rules' multi-tick memory.
	for i := range f.Series {
		s := &f.Series[i]
		h.store.Append(s.Name, s.Labels, now, s.Value)
	}

	// Built-in endpoint-down detection, then the declarative rules.
	var emitted []monitor.AlertRecord
	for i := range f.Endpoints {
		e := &h.eps[i]
		es := &f.Endpoints[i]
		if e.fails >= h.cfg.DownAfter && !e.downFiring {
			e.downFiring = true
			emitted = append(emitted, monitor.AlertRecord{
				Time: now, Rule: "endpoint_down", Severity: "critical",
				State: "firing", Value: float64(e.fails), Threshold: float64(h.cfg.DownAfter),
				Help: fmt.Sprintf("endpoint %s (%s) unreachable: %s", es.Name, es.Component, es.Err),
			})
		}
		if e.fails == 0 && e.downFiring {
			e.downFiring = false
			emitted = append(emitted, monitor.AlertRecord{
				Time: now, Rule: "endpoint_down", Severity: "critical",
				State: "resolved",
				Help:  fmt.Sprintf("endpoint %s (%s) reachable again", es.Name, es.Component),
			})
		}
	}
	for _, tr := range h.rules.Evaluate(f, now) {
		a := monitor.AlertRecord{
			Time: now, Rule: tr.Rule.Name, Severity: tr.Rule.Severity,
			Value: tr.Value, Threshold: tr.Threshold, Help: tr.Rule.Help,
		}
		if tr.Firing {
			a.State = "firing"
			if tr.Rule.Profile && h.cfg.ProfileDir != "" {
				a.Profile = h.captureProfiles(tr.Rule.Name, now, a)
			}
		} else {
			a.State = "resolved"
		}
		emitted = append(emitted, a)
	}
	h.firingG.Set(float64(len(h.rules.Firing())))

	for _, a := range emitted {
		h.alerts = append(h.alerts, a)
		h.alertsCtr.Add(1)
		h.cfg.Log.Emit("alert", a)
		if h.cfg.OnAlert != nil {
			h.cfg.OnAlert(a)
		}
	}
	return emitted
}

// Run ticks on the configured interval until stop closes. The final
// flush of the event log stays the caller's responsibility.
func (h *Hub) Run(stop <-chan struct{}) {
	interval := h.cfg.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			h.Tick()
		}
	}
}

// Fleet returns the latest merged view (nil before the first tick).
func (h *Hub) Fleet() *Fleet {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fleet
}

// Store returns the hub's time-series history.
func (h *Hub) Store() *tsdb.Store {
	return h.store
}

// Alerts returns a copy of every alert emitted so far.
func (h *Hub) Alerts() []monitor.AlertRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]monitor.AlertRecord, len(h.alerts))
	copy(out, h.alerts)
	return out
}

// Firing returns the names of rules currently firing.
func (h *Hub) Firing() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rules.Firing()
}

// Ticks returns how many scrape cycles have run.
func (h *Hub) Ticks() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ticks
}

// profilePaths are the pprof documents captured per endpoint on anomaly.
var profilePaths = []struct{ path, file string }{
	{"/debug/pprof/goroutine?debug=1", "goroutine.txt"},
	{"/debug/pprof/heap?debug=0", "heap.pb.gz"},
}

// captureProfiles archives a pprof bundle from every HTTP endpoint into
// ProfileDir/<seq>-<rule>/ and returns the bundle directory (or "" when
// nothing was captured). Best-effort: unreachable endpoints are recorded
// in the manifest and skipped.
func (h *Hub) captureProfiles(rule string, now float64, a monitor.AlertRecord) string {
	h.seq++
	dir := filepath.Join(h.cfg.ProfileDir, fmt.Sprintf("%06d-%s", h.seq, rule))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	type captured struct {
		Instance string   `json:"instance"`
		Files    []string `json:"files,omitempty"`
		Err      string   `json:"err,omitempty"`
	}
	manifest := struct {
		Time      float64             `json:"t"`
		Rule      string              `json:"rule"`
		Alert     monitor.AlertRecord `json:"alert"`
		Endpoints []captured          `json:"endpoints"`
	}{Time: now, Rule: rule}
	a.Profile = "" // manifest stores the alert sans self-reference
	manifest.Alert = a
	nFiles := 0
	for i := range h.eps {
		src, ok := h.eps[i].ep.Source.(*HTTPSource)
		if !ok {
			continue
		}
		c := captured{Instance: h.eps[i].ep.Name}
		base := strings.TrimRight(src.BaseURL, "/")
		for _, p := range profilePaths {
			name := h.eps[i].ep.Name + "-" + p.file
			if err := fetchToFile(src.client(), base+p.path, filepath.Join(dir, name)); err != nil {
				c.Err = err.Error()
				continue
			}
			c.Files = append(c.Files, name)
			nFiles++
		}
		manifest.Endpoints = append(manifest.Endpoints, c)
	}
	raw, err := json.MarshalIndent(&manifest, "", "  ")
	if err == nil {
		os.WriteFile(filepath.Join(dir, "alert.json"), append(raw, '\n'), 0o644)
	}
	h.cfg.Log.Emit("profile_bundle", map[string]any{
		"rule": rule, "dir": dir, "files": nFiles,
	})
	return dir
}

// fetchToFile GETs url into path, failing on non-200.
func fetchToFile(client *http.Client, url, path string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, io.LimitReader(resp.Body, 64<<20)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// View is the hub's machine-readable status document: endpoint scrape
// health, currently-firing rules, an alert tail, and the cluster-wide
// aggregates. StatusHandler serves it over HTTP; `lobster-fleet -once
// -json` prints it for scripting.
type View struct {
	Time      float64               `json:"t"`
	Ticks     int64                 `json:"ticks"`
	Endpoints []EndpointState       `json:"endpoints"`
	Firing    []string              `json:"firing,omitempty"`
	Alerts    []monitor.AlertRecord `json:"alerts,omitempty"`
	Series    []FleetSeries         `json:"series,omitempty"`
}

// View snapshots the hub's status. alertTail bounds the most-recent
// alerts included (0 drops them); includeSeries controls the aggregate
// dump. Aggregates come back sorted by name.
func (h *Hub) View(alertTail int, includeSeries bool) View {
	h.mu.Lock()
	v := View{Ticks: h.ticks, Firing: h.rules.Firing()}
	if h.fleet != nil {
		v.Time = h.fleet.Time
		v.Endpoints = h.fleet.Endpoints
		if includeSeries {
			v.Series = h.fleet.Aggregate()
		}
	}
	if n := len(h.alerts); alertTail > 0 && n > 0 {
		if alertTail > n {
			alertTail = n
		}
		v.Alerts = append([]monitor.AlertRecord(nil), h.alerts[n-alertTail:]...)
	}
	h.mu.Unlock()
	sort.Slice(v.Series, func(i, j int) bool { return v.Series[i].Name < v.Series[j].Name })
	return v
}

// StatusHandler serves the hub's merged view as JSON. `?alerts=N`
// bounds the alert tail (default 20); `?series=0` drops the aggregate
// dump for cheap polling.
func (h *Hub) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tail := 20
		if q := r.URL.Query().Get("alerts"); q != "" {
			fmt.Sscanf(q, "%d", &tail)
		}
		v := h.View(tail, r.URL.Query().Get("series") != "0")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&v)
	})
}
