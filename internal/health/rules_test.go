package health

import (
	"strings"
	"testing"
)

// fleetAt builds a merged view directly from series for engine tests.
func fleetAt(now float64, series ...Series) *Fleet {
	f := &Fleet{Time: now, Series: series}
	f.index()
	return f
}

func s(name string, value float64, kv ...string) Series {
	sr := Series{Name: name, Value: value}
	if len(kv) > 0 {
		sr.Labels = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			sr.Labels[kv[i]] = kv[i+1]
		}
	}
	return sr
}

func TestExprValueAndMax(t *testing.T) {
	f := fleetAt(10,
		s("depth", 5, "component", "worker"),
		s("depth", 3, "component", "worker"),
		s("depth", 9, "component", "master"),
	)
	var st ruleState
	e := Expr{Metric: "depth"}
	if v, ok := e.eval(f, &st, 10, nil); !ok || v != 17 {
		t.Fatalf("value = %v,%v want 17,true", v, ok)
	}
	e = Expr{Metric: "depth", Fn: "max"}
	if v, ok := e.eval(f, &st, 10, nil); !ok || v != 9 {
		t.Fatalf("max = %v,%v want 9,true", v, ok)
	}
	e = Expr{Metric: "depth", Match: map[string]string{"component": "worker"}}
	if v, ok := e.eval(f, &st, 10, nil); !ok || v != 8 {
		t.Fatalf("matched value = %v,%v want 8,true", v, ok)
	}
	e = Expr{Metric: "absent"}
	if _, ok := e.eval(f, &st, 10, nil); ok {
		t.Fatal("absent metric should abstain")
	}
}

func TestExprRate(t *testing.T) {
	e := Expr{Metric: "evictions", Fn: "rate"}
	var st ruleState
	if _, ok := e.eval(fleetAt(0, s("evictions", 100)), &st, 0, nil); ok {
		t.Fatal("first rate observation should abstain")
	}
	if v, ok := e.eval(fleetAt(10, s("evictions", 150)), &st, 10, nil); !ok || v != 5 {
		t.Fatalf("rate = %v,%v want 5,true", v, ok)
	}
	// Counter reset abstains, then resumes from the new base.
	if _, ok := e.eval(fleetAt(20, s("evictions", 3)), &st, 20, nil); ok {
		t.Fatal("counter reset should abstain")
	}
	if v, ok := e.eval(fleetAt(30, s("evictions", 23)), &st, 30, nil); !ok || v != 2 {
		t.Fatalf("post-reset rate = %v,%v want 2,true", v, ok)
	}
}

func TestExprStall(t *testing.T) {
	e := Expr{Metric: "done", Fn: "stall"}
	var st ruleState
	if v, ok := e.eval(fleetAt(100, s("done", 10)), &st, 100, nil); !ok || v != 0 {
		t.Fatalf("first stall = %v,%v want 0,true", v, ok)
	}
	if v, _ := e.eval(fleetAt(160, s("done", 10)), &st, 160, nil); v != 60 {
		t.Fatalf("stall after flat minute = %v, want 60", v)
	}
	if v, _ := e.eval(fleetAt(170, s("done", 11)), &st, 170, nil); v != 0 {
		t.Fatalf("stall after progress = %v, want 0", v)
	}
}

func TestExprImbalance(t *testing.T) {
	e := Expr{Metric: "depth", Fn: "imbalance", Over: "shard"}
	var st ruleState
	f := fleetAt(0,
		s("depth", 80, "shard", "0"),
		s("depth", 10, "shard", "1"),
		s("depth", 5, "shard", "2"),
		s("depth", 5, "shard", "3"),
	)
	// mean = 25, max = 80 → 3.2
	if v, ok := e.eval(f, &st, 0, nil); !ok || v != 3.2 {
		t.Fatalf("imbalance = %v,%v want 3.2,true", v, ok)
	}
	// One group only: abstain.
	if _, ok := e.eval(fleetAt(0, s("depth", 80, "shard", "0")), &st, 0, nil); ok {
		t.Fatal("single group should abstain")
	}
	// All-zero depths: abstain (no work, no skew).
	f = fleetAt(0, s("depth", 0, "shard", "0"), s("depth", 0, "shard", "1"))
	if _, ok := e.eval(f, &st, 0, nil); ok {
		t.Fatal("zero mean should abstain")
	}
}

func TestExprHistMean(t *testing.T) {
	e := Expr{Metric: "exec_seconds", Fn: "hist_mean"}
	var st ruleState
	f := fleetAt(0,
		s("exec_seconds_sum", 30, "component", "worker"),
		s("exec_seconds_count", 10, "component", "worker"),
		s("exec_seconds_sum", 10, "component", "worker"),
		s("exec_seconds_count", 10, "component", "worker"),
	)
	if v, ok := e.eval(f, &st, 0, nil); !ok || v != 2 {
		t.Fatalf("hist_mean = %v,%v want 2,true", v, ok)
	}
	if _, ok := e.eval(fleetAt(0), &st, 0, nil); ok {
		t.Fatal("no observations should abstain")
	}
}

func TestRuleHysteresis(t *testing.T) {
	rs := NewRuleSet([]Rule{{
		Name: "deep", Expr: Expr{Metric: "depth"}, Threshold: 10, For: 2, Clear: 3,
	}})
	tick := func(now, depth float64) []Transition {
		return rs.Evaluate(fleetAt(now, s("depth", depth)), now)
	}
	if tr := tick(1, 50); len(tr) != 0 {
		t.Fatalf("fired after 1 tick with For=2: %+v", tr)
	}
	tr := tick(2, 50)
	if len(tr) != 1 || !tr[0].Firing || tr[0].Value != 50 || tr[0].Threshold != 10 {
		t.Fatalf("want firing transition, got %+v", tr)
	}
	if got := rs.Firing(); len(got) != 1 || got[0] != "deep" {
		t.Fatalf("Firing() = %v", got)
	}
	// Two quiet ticks with Clear=3: still firing.
	if tr := tick(3, 1); len(tr) != 0 {
		t.Fatalf("resolved too early: %+v", tr)
	}
	if tr := tick(4, 1); len(tr) != 0 {
		t.Fatalf("resolved too early: %+v", tr)
	}
	tr = tick(5, 1)
	if len(tr) != 1 || tr[0].Firing {
		t.Fatalf("want resolved transition, got %+v", tr)
	}
	if got := rs.Firing(); len(got) != 0 {
		t.Fatalf("Firing() after resolve = %v", got)
	}
	// A dip below threshold resets the For streak.
	tick(6, 50)
	tick(7, 1)
	if tr := tick(8, 50); len(tr) != 0 {
		t.Fatalf("streak should have reset: %+v", tr)
	}
}

func TestRuleGate(t *testing.T) {
	rs := NewRuleSet([]Rule{{
		Name: "stuck", Expr: Expr{Metric: "stall_metric"}, Threshold: 5,
		Gate: &Gate{Expr: Expr{Metric: "running"}, Threshold: 0},
	}})
	// Condition true but gate closed (running == 0): no alert.
	f := fleetAt(1, s("stall_metric", 100), s("running", 0))
	if tr := rs.Evaluate(f, 1); len(tr) != 0 {
		t.Fatalf("gated rule fired: %+v", tr)
	}
	// Gate opens: fires.
	f = fleetAt(2, s("stall_metric", 100), s("running", 3))
	tr := rs.Evaluate(f, 2)
	if len(tr) != 1 || !tr[0].Firing {
		t.Fatalf("want firing, got %+v", tr)
	}
	// Gate closes while firing: counts as condition false → resolves.
	f = fleetAt(3, s("stall_metric", 100), s("running", 0))
	tr = rs.Evaluate(f, 3)
	if len(tr) != 1 || tr[0].Firing {
		t.Fatalf("want resolved when gate closes, got %+v", tr)
	}
}

func TestRuleDynamicThreshold(t *testing.T) {
	rs := NewRuleSet([]Rule{{
		Name: "watchdog", Expr: Expr{Metric: "stall_val"},
		Threshold:     60,
		ThresholdExpr: &Expr{Metric: "exec", Fn: "hist_mean"},
		Scale:         10,
	}})
	// Mean exec 20s → effective threshold max(60, 200) = 200.
	f := fleetAt(1, s("stall_val", 150), s("exec_sum", 200), s("exec_count", 10))
	if tr := rs.Evaluate(f, 1); len(tr) != 0 {
		t.Fatalf("fired below derived threshold: %+v", tr)
	}
	f = fleetAt(2, s("stall_val", 250), s("exec_sum", 200), s("exec_count", 10))
	tr := rs.Evaluate(f, 2)
	if len(tr) != 1 || !tr[0].Firing || tr[0].Threshold != 200 {
		t.Fatalf("want firing at threshold 200, got %+v", tr)
	}
	// No histogram data yet: the static floor applies.
	rs = NewRuleSet([]Rule{{
		Name: "watchdog", Expr: Expr{Metric: "stall_val"},
		Threshold:     60,
		ThresholdExpr: &Expr{Metric: "exec", Fn: "hist_mean"},
		Scale:         10,
	}})
	f = fleetAt(3, s("stall_val", 90))
	tr = rs.Evaluate(f, 3)
	if len(tr) != 1 || !tr[0].Firing || tr[0].Threshold != 60 {
		t.Fatalf("want floor threshold 60, got %+v", tr)
	}
}

func TestLoadRules(t *testing.T) {
	rs, err := LoadRules(strings.NewReader(`[
		{"name": "a", "expr": {"metric": "m", "fn": "rate"}, "threshold": 1, "for": 2},
		{"name": "b", "expr": {"metric": "n", "fn": "imbalance", "over": "shard"}, "threshold": 4}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 2 || rs.Rules[0].For != 2 || rs.Rules[1].Expr.Over != "shard" {
		t.Fatalf("rules = %+v", rs.Rules)
	}
	// Wrapped form.
	rs, err = LoadRules(strings.NewReader(`{"rules": [{"name": "a", "expr": {"metric": "m"}}]}`))
	if err != nil || len(rs.Rules) != 1 {
		t.Fatalf("wrapped form: %v, %+v", err, rs)
	}
	for _, bad := range []string{
		`[{"expr": {"metric": "m"}}]`,                                                      // no name
		`[{"name": "a", "expr": {}}]`,                                                      // no metric
		`[{"name": "a", "expr": {"metric": "m", "fn": "median"}}]`,                         // unknown fn
		`[{"name": "a", "expr": {"metric": "m", "fn": "imbalance"}}]`,                      // imbalance sans over
		`[{"name": "a", "expr": {"metric": "m"}}, {"name": "a", "expr": {"metric": "m"}}]`, // dup
		`not json`,
	} {
		if _, err := LoadRules(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadRules(%q) succeeded, want error", bad)
		}
	}
}

// TestDefaultRulesValid pins that the built-in set passes its own
// validation (round-tripped through the JSON loader).
func TestDefaultRulesValid(t *testing.T) {
	rules := DefaultRules()
	if len(rules) != 6 {
		t.Fatalf("default rules = %d, want 6", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name] = true
	}
	for _, want := range []string{"eviction_spike", "stuck_tasks", "shard_imbalance", "chirp_pool_exhausted", "leader_flap", "worker_ramp_stall"} {
		if !names[want] {
			t.Errorf("default rule %q missing", want)
		}
	}
}

// TestLeaderFlapRule pins the control-plane flap detector from the
// default set: a one-off leader change (the counter steps once and goes
// flat) must stay quiet, a sustained election storm must fire, and
// leadership sticking again must resolve it through its hysteresis.
func TestLeaderFlapRule(t *testing.T) {
	var flap *Rule
	for _, r := range DefaultRules() {
		if r.Name == "leader_flap" {
			rc := r
			flap = &rc
		}
	}
	if flap == nil {
		t.Fatal("leader_flap missing from DefaultRules")
	}
	if flap.Severity != "critical" || !flap.Profile {
		t.Fatalf("leader_flap lost its severity or profile capture: %+v", flap)
	}
	rs := NewRuleSet([]Rule{*flap})

	// Three members' counters, fleet-summed by the engine.
	tick := func(now float64, perMember float64) []Transition {
		return rs.Evaluate(fleetAt(now,
			s("lobster_replica_elections_total", perMember, "node", "1"),
			s("lobster_replica_elections_total", perMember, "node", "2"),
			s("lobster_replica_elections_total", perMember, "node", "3"),
		), now)
	}

	// Startup election, then stable leadership: one step, then flat.
	if tr := tick(0, 1); len(tr) != 0 {
		t.Fatalf("first observation fired: %+v", tr)
	}
	for now := 10.0; now <= 60; now += 10 {
		if tr := tick(now, 1); len(tr) != 0 {
			t.Fatalf("stable leadership fired at t=%v: %+v", now, tr)
		}
	}

	// Flap: every member holds an election every tick — the fleet-wide
	// counter climbs 3/tick over 10s = 0.3/s... below threshold; make it
	// genuinely stormy at 1 election per member per second.
	per := 1.0
	fired := false
	for i := 1; i <= 3; i++ {
		now := 60 + float64(i)*10
		per += 10 // 1/s per member → 3/s fleet-wide, > 0.5 threshold
		for _, tr := range tick(now, per) {
			if tr.Firing {
				fired = true
				if tr.Value <= flap.Threshold {
					t.Fatalf("fired with value %v <= threshold %v", tr.Value, tr.Threshold)
				}
			}
		}
	}
	if !fired {
		t.Fatal("election storm never fired leader_flap")
	}

	// Leadership sticks again: flat counter resolves after Clear ticks.
	resolved := false
	for i := 1; i <= 5; i++ {
		now := 90 + float64(i)*10
		for _, tr := range tick(now, per) {
			if !tr.Firing {
				resolved = true
			}
		}
	}
	if !resolved {
		t.Fatal("leader_flap never resolved after leadership stabilised")
	}
	if f := rs.Firing(); len(f) != 0 {
		t.Fatalf("still firing after resolve: %v", f)
	}
}
