// Package health is Lobster's fleet-level observability plane: a
// monitoring hub that scrapes every component's /metrics endpoint, merges
// the per-process Prometheus series into cluster-wide aggregates with
// per-component labels, evaluates a declarative rule set of derived
// health signals with hysteresis (eviction spikes, stuck tasks, shard
// imbalance, chirp-pool exhaustion, ramp stalls), emits typed "alert"
// events onto the shared JSONL event log, and — on anomaly — captures
// pprof profile bundles from the affected endpoints so a storm leaves a
// self-contained post-mortem next to the event log.
//
// The hub runs on a pluggable clock, so the identical detectors evaluate
// a live deployment on the wall clock and a simulated paper-scale ramp
// on the discrete-event clock (internal/sim drives Tick from simulated
// time; golden tests pin which alerts fire and when).
package health

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair of a series.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line: a series name (including any _bucket,
// _sum, or _count suffix), its labels in written order, and the value.
// raw preserves the exact value token so a parsed page re-renders
// byte-identically (the round-trip property the parser is tested on).
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
	raw    string
}

// Label returns the value of the named label, or "".
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family is one named metric with its metadata and samples. Histogram
// families hold their _bucket/_sum/_count samples verbatim.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram"
	Samples []Sample
}

// Page is one parsed /metrics exposition.
type Page struct {
	Families []*Family
	byName   map[string]*Family
}

// Family returns the named family, or nil.
func (p *Page) Family(name string) *Family {
	if p == nil {
		return nil
	}
	return p.byName[name]
}

// baseFamily maps a sample name onto its owning family: histogram samples
// carry _bucket/_sum/_count suffixes over the family's base name.
func (p *Page) baseFamily(name string) *Family {
	if f := p.byName[name]; f != nil {
		return f
	}
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f := p.byName[base]; f != nil && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

// ParseMetrics parses a Prometheus text-exposition page (format 0.0.4,
// the dialect internal/telemetry emits): # HELP and # TYPE comments, then
// series lines `name{label="value",...} value`. Unknown comment lines are
// skipped; a sample with no preceding # TYPE gets an implicit untyped
// gauge family. Malformed series lines abort with their line number.
func ParseMetrics(r io.Reader) (*Page, error) {
	p := &Page{byName: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := p.parseComment(line); err != nil {
				return nil, fmt.Errorf("health: metrics line %d: %w", lineNo, err)
			}
			continue
		}
		if err := p.parseSample(line); err != nil {
			return nil, fmt.Errorf("health: metrics line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("health: reading metrics: %w", err)
	}
	return p, nil
}

// family returns (creating if needed) the family for name.
func (p *Page) family(name string) *Family {
	if f := p.byName[name]; f != nil {
		return f
	}
	f := &Family{Name: name, Type: "gauge"}
	p.byName[name] = f
	p.Families = append(p.Families, f)
	return f
}

func (p *Page) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		help := ""
		if len(fields) == 4 {
			help = unescapeHelp(fields[3])
		}
		p.family(fields[2]).Help = help
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
			p.family(fields[2]).Type = fields[3]
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func (p *Page) parseSample(line string) error {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return fmt.Errorf("malformed series line %q", line)
	} else {
		s.Name = rest[:i]
		if s.Name == "" {
			return fmt.Errorf("empty series name in %q", line)
		}
		if rest[i] == '{' {
			var err error
			s.Labels, rest, err = parseLabels(rest[i+1:])
			if err != nil {
				return fmt.Errorf("%w in %q", err, line)
			}
		} else {
			rest = rest[i:]
		}
	}
	rest = strings.TrimLeft(rest, " ")
	// The value token runs to the next space (a timestamp may follow; the
	// emitter never writes one, but tolerate it on ingest).
	tok := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		tok = rest[:i]
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return fmt.Errorf("bad value %q: %w", tok, err)
	}
	s.Value = v
	s.raw = tok
	f := p.baseFamily(s.Name)
	if f == nil {
		f = p.family(s.Name)
	}
	f.Samples = append(f.Samples, s)
	return nil
}

// parseLabels consumes `name="value",...}` returning the labels and the
// remainder after the closing brace.
func parseLabels(rest string) ([]Label, string, error) {
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, ",")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return nil, "", fmt.Errorf("malformed label pair")
		}
		name := rest[:eq]
		val, rem, err := parseQuoted(rest[eq+1:])
		if err != nil {
			return nil, "", err
		}
		labels = append(labels, Label{Name: name, Value: val})
		rest = rem
	}
}

// parseQuoted consumes a `"..."` token with \\, \" and \n escapes,
// returning the unescaped value and the remainder.
func parseQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("malformed label value")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("truncated escape in label value")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				// Unknown escape: keep both bytes, like Prometheus does.
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\n", "\\n")
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return strings.ReplaceAll(s, "\n", "\\n")
}

// WriteTo re-renders the page in the canonical exposition dialect the
// telemetry registry emits. A page parsed from registry output renders
// byte-identically (the round-trip property test pins this), which is
// what lets the hub archive raw scrapes and re-ingest them later.
func (p *Page) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, f := range p.Families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for i := range f.Samples {
			s := &f.Samples[i]
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for j, l := range s.Labels {
					if j > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(s.valueToken())
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Render returns the canonical exposition text.
func (p *Page) Render() string {
	var b strings.Builder
	p.WriteTo(&b)
	return b.String()
}

// valueToken formats the sample's value, preferring the exact token it
// was parsed from.
func (s *Sample) valueToken() string {
	if s.raw != "" {
		return s.raw
	}
	return formatValue(s.Value)
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Series flattens the page into the hub's merge representation: one
// Series per sample, labels as a map. The extra labels (component,
// instance) are appended by the scraper.
func (p *Page) Series() []Series {
	n := 0
	for _, f := range p.Families {
		n += len(f.Samples)
	}
	out := make([]Series, 0, n)
	for _, f := range p.Families {
		for i := range f.Samples {
			s := &f.Samples[i]
			sr := Series{Name: s.Name, Value: s.Value, Type: f.Type}
			if len(s.Labels) > 0 {
				sr.Labels = make(map[string]string, len(s.Labels)+2)
				for _, l := range s.Labels {
					sr.Labels[l.Name] = l.Value
				}
			}
			out = append(out, sr)
		}
	}
	return out
}

// sortLabels orders a label slice by name (used by tests and merge keys).
func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
}
