package health

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/monitor"
)

// counterPage renders a one-counter exposition page.
func counterPage(name string, v float64) []byte {
	return []byte(fmt.Sprintf("# TYPE %s counter\n%s %g\n", name, name, v))
}

// TestWindowedRateCounterResetHysteresis is the regression the windowed
// rules exist for: a counter that resets mid-window (its process
// restarted) must not wobble a firing rate rule through its hysteresis.
// The single-tick rate abstained on the reset tick, eating into the
// Clear budget; the tsdb-backed window rides through because the
// counter-reset-safe increase still sees the surrounding climb.
func TestWindowedRateCounterResetHysteresis(t *testing.T) {
	src := &StaticSource{Text: counterPage("lobster_restarts_total", 0)}
	now := 0.0
	hub := NewHub(Config{
		Endpoints: []Endpoint{{Name: "m", Component: "master", Source: src}},
		Rules: NewRuleSet([]Rule{{
			Name:      "busy",
			Expr:      Expr{Metric: "lobster_restarts_total", Fn: "rate", Window: 30},
			Threshold: 0.5,
			For:       2,
			Clear:     3,
		}}),
		Clock: func() float64 { return now },
	})
	tick := func(v float64) []monitor.AlertRecord {
		now += 10
		src.Text = counterPage("lobster_restarts_total", v)
		return hub.Tick()
	}

	// Climb at 1/s: fires once For=2 window evaluations hold.
	tick(0)
	tick(10)
	got := tick(20)
	if len(got) != 1 || got[0].Rule != "busy" || !got[0].Firing() {
		t.Fatalf("want busy firing after climb, got %+v", got)
	}

	// Counter reset mid-window (process restart): 20 → 5, then the
	// climb continues. Window increase stays 15 over 20s = 0.75/s, so
	// the rule must hold — no resolve, no re-fire.
	if got := tick(5); len(got) != 0 {
		t.Fatalf("reset tick emitted %+v", got)
	}
	if got := tick(15); len(got) != 0 {
		t.Fatalf("post-reset tick emitted %+v", got)
	}
	if firing := hub.Firing(); len(firing) != 1 || firing[0] != "busy" {
		t.Fatalf("rule should still be firing across the reset, got %v", firing)
	}

	// Counter goes flat: Clear=3 quiet evaluations resolve it.
	var resolved []monitor.AlertRecord
	for i := 0; i < 5; i++ {
		resolved = append(resolved, tick(15)...)
	}
	if len(resolved) != 1 || resolved[0].State != "resolved" {
		t.Fatalf("want one resolved, got %+v", resolved)
	}
}

// TestWindowedStallSeesThroughRestart: stall backed by history measures
// from the last recorded change, not from rule-state birth.
func TestWindowedStallSeesThroughRestart(t *testing.T) {
	src := &StaticSource{Text: counterPage("lobster_wq_tasks_done_total", 1)}
	now := 0.0
	hub := NewHub(Config{
		Endpoints: []Endpoint{{Name: "m", Component: "master", Source: src}},
		Rules: NewRuleSet([]Rule{{
			Name:      "stuck",
			Expr:      Expr{Metric: "lobster_wq_tasks_done_total", Fn: "stall"},
			Threshold: 25,
		}}),
		Clock: func() float64 { return now },
	})
	for i := 0; i < 3; i++ {
		now += 10
		if got := hub.Tick(); len(got) != 0 {
			t.Fatalf("tick %d emitted %+v", i, got)
		}
	}
	// t=40: flat since t=10 → stall = 30 > 25 → fires.
	now += 10
	got := hub.Tick()
	if len(got) != 1 || got[0].Rule != "stuck" || !got[0].Firing() {
		t.Fatalf("want stuck firing at t=40, got %+v", got)
	}
	if got[0].Value != 30 {
		t.Fatalf("stall value = %g, want 30 (measured from recorded history)", got[0].Value)
	}
}

// TestHubScrapeTimeout: a hung endpoint — a faultinject stall on its
// HTTP transport — must not stretch the tick past the scrape deadline,
// must count as a failed scrape, and must leave the healthy endpoint's
// fresh data intact.
func TestHubScrapeTimeout(t *testing.T) {
	fast := httptest.NewServer(pageHandler("# TYPE lobster_ok gauge\nlobster_ok 1\n"))
	defer fast.Close()
	slow := httptest.NewServer(pageHandler("# TYPE lobster_ok gauge\nlobster_ok 2\n"))
	defer slow.Close()

	// Stall every round trip to the slow endpoint for 30s — far past
	// the scrape deadline.
	inj := faultinject.New(&faultinject.Plan{Rules: []faultinject.Rule{
		{Component: "slow", Action: faultinject.ActDelay, DelayMS: 30000},
	}})
	stalled := make(chan time.Duration, 8)
	inj.SetSleep(func(d time.Duration) {
		stalled <- d
		// Park until the test ends; the hub must not wait for us.
		select {}
	})

	now := 0.0
	hub := NewHub(Config{
		Endpoints: []Endpoint{
			{Name: "fast", Component: "master", Source: &HTTPSource{BaseURL: fast.URL}},
			{Name: "slow", Component: "worker", Source: &HTTPSource{
				BaseURL: slow.URL,
				Client:  &http.Client{Transport: inj.Transport("slow", nil)},
			}},
		},
		Rules:         NewRuleSet(nil),
		Clock:         func() float64 { return now },
		ScrapeTimeout: 150 * time.Millisecond,
		DownAfter:     2,
	})

	for i := 1; i <= 2; i++ {
		now += 5
		start := time.Now()
		hub.Tick()
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("tick %d took %v, deadline not enforced", i, d)
		}
	}
	select {
	case <-stalled:
	default:
		t.Fatal("fault injector never stalled the slow endpoint")
	}

	f := hub.Fleet()
	var fastUp, slowUp bool
	var slowFails int
	for _, e := range f.Endpoints {
		switch e.Name {
		case "fast":
			fastUp = e.Up
		case "slow":
			slowUp = e.Up
			slowFails = e.Fails
		}
	}
	if !fastUp {
		t.Fatal("healthy endpoint marked down")
	}
	if slowUp || slowFails < 2 {
		t.Fatalf("hung endpoint should be down after 2 ticks, up=%v fails=%d", slowUp, slowFails)
	}
	// DownAfter=2 → the built-in endpoint_down alert fired.
	alerts := hub.Alerts()
	found := false
	for _, a := range alerts {
		if a.Rule == "endpoint_down" && a.Firing() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no endpoint_down alert for the hung endpoint: %+v", alerts)
	}
	// The healthy endpoint's value made it into history both ticks.
	if tail := hub.Store().Tail("lobster_ok", map[string]string{"component": "master", "instance": "fast"}, 4); len(tail) != 2 {
		t.Fatalf("history for healthy endpoint: %v", tail)
	}
}

func pageHandler(page string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(page))
	})
}
