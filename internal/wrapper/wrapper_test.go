package wrapper

import (
	"errors"
	"testing"
	"time"
)

func TestAllSegmentsSucceed(t *testing.T) {
	rep := Run(
		Step{Segment: SegEnvInit, Run: func(c *StepContext) error { return nil }},
		Step{Segment: SegSoftware, Run: func(c *StepContext) error {
			c.SetMetric("cache_hits", 5)
			return nil
		}},
		Step{Segment: SegExecute, Run: func(c *StepContext) error {
			time.Sleep(time.Millisecond)
			c.SetMetric("events", 100)
			return nil
		}},
	)
	if rep.ExitCode != 0 || rep.Failed != "" {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Segments) != 3 {
		t.Fatalf("segments = %d", len(rep.Segments))
	}
	if rep.SegmentDuration(SegExecute) < time.Millisecond {
		t.Error("execute duration not recorded")
	}
	if rep.Metric("events") != 100 || rep.Metric("cache_hits") != 5 {
		t.Error("metrics lost")
	}
	if rep.Total() < time.Millisecond {
		t.Error("total duration wrong")
	}
}

func TestFailureStopsAndCodes(t *testing.T) {
	ran := []Segment{}
	rep := Run(
		Step{Segment: SegEnvInit, Run: func(c *StepContext) error {
			ran = append(ran, SegEnvInit)
			return nil
		}},
		Step{Segment: SegStageIn, Run: func(c *StepContext) error {
			ran = append(ran, SegStageIn)
			return errors.New("xrootd timeout")
		}},
		Step{Segment: SegExecute, Run: func(c *StepContext) error {
			ran = append(ran, SegExecute)
			return nil
		}},
	)
	if len(ran) != 2 {
		t.Fatalf("ran = %v", ran)
	}
	if rep.ExitCode != SegStageIn.Code() || rep.Failed != SegStageIn {
		t.Fatalf("report = %+v", rep)
	}
	last := rep.Segments[len(rep.Segments)-1]
	if last.Error != "xrootd timeout" || last.ExitCode != 40 {
		t.Errorf("failing segment = %+v", last)
	}
}

func TestPanicBecomesFailure(t *testing.T) {
	rep := Run(Step{Segment: SegExecute, Run: func(c *StepContext) error {
		panic("application bug")
	}})
	if rep.ExitCode != SegExecute.Code() {
		t.Fatalf("panic not converted: %+v", rep)
	}
}

func TestNilStepSkips(t *testing.T) {
	rep := Run(Step{Segment: SegConditions})
	if rep.ExitCode != 0 || len(rep.Segments) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSegmentCodeRoundTrip(t *testing.T) {
	for _, s := range []Segment{SegEnvInit, SegSoftware, SegConditions, SegStageIn, SegExecute, SegStageOut} {
		if SegmentName(s.Code()) != s {
			t.Errorf("code round trip broken for %s", s)
		}
	}
	if Segment("unknown").Code() != 99 {
		t.Error("unknown segment code")
	}
	if SegmentName(0) != "" || SegmentName(12345) != "" {
		t.Error("bogus code resolved")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rep := Run(
		Step{Segment: SegSoftware, Run: func(c *StepContext) error {
			c.AddMetric("bytes", 100)
			c.AddMetric("bytes", 50)
			return nil
		}},
		Step{Segment: SegExecute, Run: func(c *StepContext) error {
			return errors.New("boom")
		}},
	)
	got, err := Decode(rep.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ExitCode != rep.ExitCode || got.Failed != rep.Failed {
		t.Fatalf("decoded = %+v", got)
	}
	if got.Metric("bytes") != 150 {
		t.Errorf("metrics lost in round trip: %g", got.Metric("bytes"))
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("garbage decoded")
	}
}
