// Package wrapper implements the instrumented task wrapper that surrounds
// every Lobster task: pre-processing (machine compatibility, software
// delivery, conditions data, input staging), the application itself, and
// post-processing (output staging, statistics).
//
// As in the paper's §5, the wrapper "is broken down into logical segments
// ... Each segment records a timestamp and performs an internal test for
// success or failure, with a unique failure code that can be emitted for
// each segment." The resulting Report is returned with the task and feeds
// the monitoring system.
package wrapper

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/trace"
)

// Segment names a wrapper phase. The set mirrors the paper's breakdown.
type Segment string

// Wrapper segments in execution order.
const (
	SegEnvInit    Segment = "env_init"
	SegSoftware   Segment = "software_setup"
	SegConditions Segment = "conditions"
	SegStageIn    Segment = "stage_in"
	SegExecute    Segment = "execute"
	SegStageOut   Segment = "stage_out"
)

// Exit-code bases per segment: a failure in segment s yields code Base(s),
// so the monitoring side can attribute failures without parsing messages.
var segmentCodes = map[Segment]int{
	SegEnvInit:    10,
	SegSoftware:   20,
	SegConditions: 30,
	SegStageIn:    40,
	SegExecute:    50,
	SegStageOut:   60,
}

// Code returns the exit code emitted when this segment fails.
func (s Segment) Code() int {
	if c, ok := segmentCodes[s]; ok {
		return c
	}
	return 99
}

// SegmentName returns the segment whose failure the exit code encodes, or
// "" for success / unknown codes.
func SegmentName(code int) Segment {
	for s, c := range segmentCodes {
		if c == code {
			return s
		}
	}
	return ""
}

// SegmentReport records one segment's outcome.
type SegmentReport struct {
	Segment  Segment       `json:"segment"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	ExitCode int           `json:"exit_code"` // 0 on success
	Error    string        `json:"error,omitempty"`
	// Metrics carries segment-specific measurements (bytes moved, cache
	// hits, events processed ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the wrapper's full record for one task.
type Report struct {
	Segments []SegmentReport `json:"segments"`
	ExitCode int             `json:"exit_code"`
	Failed   Segment         `json:"failed_segment,omitempty"`
}

// Metric sums a named metric across all segments.
func (r *Report) Metric(name string) float64 {
	var total float64
	for _, s := range r.Segments {
		total += s.Metrics[name]
	}
	return total
}

// SegmentDuration returns the duration of the named segment (0 if absent).
func (r *Report) SegmentDuration(s Segment) time.Duration {
	for _, sr := range r.Segments {
		if sr.Segment == s {
			return sr.Duration
		}
	}
	return 0
}

// Total returns the summed duration of all segments.
func (r *Report) Total() time.Duration {
	var t time.Duration
	for _, s := range r.Segments {
		t += s.Duration
	}
	return t
}

// Encode serialises the report to JSON (the wrapper writes this into the
// sandbox as an output file so it travels back with the task).
func (r *Report) Encode() []byte {
	data, err := json.Marshal(r)
	if err != nil {
		// A report is always plain data; failure to encode is a bug.
		panic(fmt.Sprintf("wrapper: encoding report: %v", err))
	}
	return data
}

// Decode parses an encoded report.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("wrapper: decoding report: %w", err)
	}
	return &r, nil
}

// StepContext is passed to each step so it can record metrics and, when
// the wrapper runs traced, chain service clients (chirp, parrot,
// frontier, xrootd) under the segment's span.
type StepContext struct {
	metrics map[string]float64

	// Tracer and Trace are the task's tracer and the current segment
	// span's context; both are zero when the wrapper runs untraced.
	Tracer *trace.Tracer
	Trace  trace.Context
}

// SetMetric records a metric for the current segment.
func (c *StepContext) SetMetric(name string, v float64) {
	c.metrics[name] = v
}

// AddMetric accumulates into a metric for the current segment.
func (c *StepContext) AddMetric(name string, v float64) {
	c.metrics[name] += v
}

// Step is one wrapper segment: a name plus the work to perform.
type Step struct {
	Segment Segment
	Run     func(*StepContext) error
}

// Run executes steps in order, recording one SegmentReport each. The first
// failure stops execution; its segment's exit code becomes the report's.
// A nil Run function records an instantaneous success (segment skipped).
func Run(steps ...Step) *Report {
	return RunTraced(nil, trace.Context{}, steps...)
}

// RunTraced is Run with distributed tracing: each segment records a
// span (component "wrapper", named after the segment) chained under
// parent, and each step's context carries the segment span so service
// clients used inside chain under it. Segment metrics become span
// attributes. A nil tracer or invalid parent behaves exactly like Run.
func RunTraced(tr *trace.Tracer, parent trace.Context, steps ...Step) *Report {
	return RunInjected(nil, tr, parent, steps...)
}

// RunInjected is RunTraced wired into the fault plane: before each
// segment runs, the injector is consulted under (component "wrapper",
// op = segment name). An injected fault fails the segment with its
// usual exit-code base — from the monitoring side an injected
// conditions outage is indistinguishable from a real one, which is the
// point. A nil injector behaves exactly like RunTraced.
func RunInjected(inj *faultinject.Injector, tr *trace.Tracer, parent trace.Context, steps ...Step) *Report {
	rep := &Report{}
	for _, step := range steps {
		sr := SegmentReport{Segment: step.Segment, Start: time.Now(), Metrics: map[string]float64{}}
		var err error
		var sp *trace.Span
		if tr != nil && parent.Valid() {
			sp = tr.Start(parent, "wrapper", string(step.Segment))
		}
		if err = inj.Check("wrapper", string(step.Segment)); err == nil && step.Run != nil {
			ctx := &StepContext{metrics: sr.Metrics, Tracer: tr, Trace: sp.Context().OrElse(parent)}
			err = func() (err error) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("segment panicked: %v", p)
					}
				}()
				return step.Run(ctx)
			}()
		}
		sr.Duration = time.Since(sr.Start)
		if sp.Sampled() {
			for name, v := range sr.Metrics {
				sp.Attr(name, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err != nil {
			sr.ExitCode = step.Segment.Code()
			sr.Error = err.Error()
			rep.Segments = append(rep.Segments, sr)
			rep.ExitCode = sr.ExitCode
			rep.Failed = step.Segment
			sp.Attr("error", sr.Error)
			sp.AttrInt("exit_code", int64(sr.ExitCode))
			sp.End()
			return rep
		}
		rep.Segments = append(rep.Segments, sr)
		sp.End()
	}
	return rep
}
