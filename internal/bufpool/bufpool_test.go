package bufpool

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	b := Get()
	if len(*b) != ChunkSize {
		t.Fatalf("chunk size = %d, want %d", len(*b), ChunkSize)
	}
	Put(b)
	// Foreign sizes must be dropped, not poison the pool.
	odd := make([]byte, 17)
	Put(&odd)
	Put(nil)
	if got := Get(); len(*got) != ChunkSize {
		t.Fatalf("pool returned %d-byte chunk", len(*got))
	}
}

func TestCopy(t *testing.T) {
	src := strings.Repeat("lobster", 300000) // ~2 MiB, spans chunks
	var dst bytes.Buffer
	n, err := Copy(&dst, onlyReader{strings.NewReader(src)})
	if err != nil || n != int64(len(src)) {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	if dst.String() != src {
		t.Fatal("payload mismatch")
	}
}

func TestCopyN(t *testing.T) {
	src := strings.Repeat("x", 3*ChunkSize)
	var dst bytes.Buffer
	n, err := CopyN(&dst, onlyReader{strings.NewReader(src)}, int64(len(src)))
	if err != nil || n != int64(len(src)) {
		t.Fatalf("CopyN = %d, %v", n, err)
	}
	if dst.Len() != len(src) {
		t.Fatalf("wrote %d bytes", dst.Len())
	}
	// Exact-length semantics: a short source surfaces io.EOF.
	dst.Reset()
	n, err = CopyN(&dst, strings.NewReader("abc"), 10)
	if n != 3 || !errors.Is(err, io.EOF) {
		t.Fatalf("short CopyN = %d, %v; want 3, io.EOF", n, err)
	}
	// Zero and negative lengths are no-ops.
	if n, err := CopyN(&dst, strings.NewReader("abc"), 0); n != 0 || err != nil {
		t.Fatalf("CopyN(0) = %d, %v", n, err)
	}
}

// onlyReader hides WriterTo so the pooled-buffer fallback path runs.
type onlyReader struct{ r io.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func BenchmarkCopyPooled(b *testing.B) {
	src := bytes.Repeat([]byte("a"), 8<<20)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Copy(io.Discard, onlyReader{bytes.NewReader(src)}); err != nil {
			b.Fatal(err)
		}
	}
}
