// Package bufpool provides the shared chunk-buffer pool behind the
// streaming data plane. Every byte-moving path in the repo — chirp
// get/put, xrootd fetches, squid miss streaming, HDFS block shuttling —
// copies through these pooled chunks instead of allocating a
// payload-sized buffer per transfer, so a 10k-core stage-out wave costs
// a bounded, reusable working set instead of gigabytes of garbage.
//
// The chunk size (1 MiB) is chosen for the transfer paths this repo
// cares about: large enough that syscall and bufio overhead amortises
// to noise on multi-MiB physics files, small enough that a pool shared
// by a few dozen concurrent transfers stays tens of MiB.
package bufpool

import (
	"io"
	"sync"
)

// ChunkSize is the size of every pooled buffer.
const ChunkSize = 1 << 20

var pool = sync.Pool{
	New: func() any {
		b := make([]byte, ChunkSize)
		return &b
	},
}

// Get borrows a chunk. The contents are arbitrary; the caller must not
// assume zeroing. Return it with Put.
func Get() *[]byte {
	return pool.Get().(*[]byte)
}

// Put returns a chunk to the pool. Only buffers obtained from Get may
// be returned; foreign or resized buffers are dropped.
func Put(b *[]byte) {
	if b == nil || len(*b) != ChunkSize {
		return
	}
	pool.Put(b)
}

// Copy is io.Copy through a pooled chunk. When dst implements
// io.ReaderFrom or src implements io.WriterTo the stdlib fast paths
// (including sendfile/splice kernel offload between files and sockets)
// still apply — the pooled buffer is only touched on the fallback path.
func Copy(dst io.Writer, src io.Reader) (int64, error) {
	buf := Get()
	defer Put(buf)
	return io.CopyBuffer(dst, src, *buf)
}

// CopyN copies exactly n bytes from src to dst through a pooled chunk,
// with io.CopyN semantics: it returns io.EOF if src drains early. Like
// Copy, kernel offload applies when the endpoints support it (the
// stdlib unwraps the internal LimitedReader for sendfile and splice).
func CopyN(dst io.Writer, src io.Reader, n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	buf := Get()
	defer Put(buf)
	written, err := io.CopyBuffer(dst, io.LimitReader(src, n), *buf)
	if written == n {
		return n, nil
	}
	if err == nil {
		// src stopped early without error: match io.CopyN.
		err = io.EOF
	}
	return written, err
}
