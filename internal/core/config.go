// Package core implements Lobster itself: the per-user workload management
// system of the paper. Given a dataset (or a simulation request), Lobster
//
//   - decomposes the workflow into tasklets, the smallest self-contained
//     units of work (lumisections for analysis, event blocks for simulation),
//   - groups tasklets into tasks of a tunable size — the knob the Figure 3
//     study optimises against eviction — keeping a buffer of tasks submitted
//     to the Work Queue master,
//   - persistently records the tasklet→task mapping in the Lobster DB so a
//     crashed scheduler recovers automatically,
//   - retries work lost to eviction or failure,
//   - merges the many small task outputs into publication-sized files in one
//     of three modes (sequential, Hadoop, interleaved — Figure 7), and
//   - feeds every task's instrumented wrapper report into the monitoring
//     system (§5).
package core

import (
	"fmt"
	"time"

	"lobster/internal/dbs"
	"lobster/internal/hdfs"
	"lobster/internal/monitor"
	"lobster/internal/store"
	"lobster/internal/telemetry"
	"lobster/internal/wq"
)

// AccessMode selects how analysis tasks reach their input data.
type AccessMode string

// Data access modes (paper §4.2).
const (
	// AccessStream streams input over the federation while processing
	// (XrootD); the paper's default and Figure 4's winner.
	AccessStream AccessMode = "stream"
	// AccessStage pulls whole inputs before processing (WQ/Chirp-style).
	AccessStage AccessMode = "stage"
)

// MergeMode selects the output-merging strategy (paper §4.4, Figure 7).
type MergeMode string

// Merge modes.
const (
	MergeNone        MergeMode = "none"
	MergeSequential  MergeMode = "sequential"
	MergeHadoop      MergeMode = "hadoop"
	MergeInterleaved MergeMode = "interleaved"
)

// Kind selects the workflow type.
type Kind string

// Workflow kinds.
const (
	KindAnalysis   Kind = "analysis"
	KindSimulation Kind = "simulation"
)

// Config describes one Lobster workflow, the content of the user's
// configuration file in the paper's architecture.
type Config struct {
	// Name labels the workflow; it prefixes output files.
	Name string
	// Kind is analysis (dataset-driven) or simulation (generator-driven).
	Kind Kind

	// Dataset is the DBS dataset to process (analysis only).
	Dataset string
	// LumiMask optionally restricts the lumisections processed.
	LumiMask *dbs.LumiMask

	// TotalEvents is the number of events to generate (simulation only).
	TotalEvents int
	// EventsPerTasklet sets the simulation tasklet granularity.
	EventsPerTasklet int

	// TaskletsPerTask is the task size: how many tasklets one task carries.
	// This is the quantity the Figure 3 study tunes.
	TaskletsPerTask int
	// TaskBuffer is the number of tasks kept submitted-but-unfinished; the
	// paper maintains a buffer of 400.
	TaskBuffer int
	// MaxTaskRetries bounds resubmission of failed tasks.
	MaxTaskRetries int

	// AccessMode picks streaming or staging for analysis input.
	AccessMode AccessMode

	// MergeMode and MergeTargetBytes control output merging: files of
	// 10–100 MB are typically merged into 3–4 GB in production; tests use
	// smaller targets.
	MergeMode        MergeMode
	MergeTargetBytes int64
	// MergeStartFraction is the processed fraction after which interleaved
	// merging may begin (paper: 10%).
	MergeStartFraction float64

	// OutputDir is the storage-element directory task outputs land in.
	OutputDir string

	// EventSize / Work configure the synthetic application kernel.
	EventSize int
	Work      int

	// PileupPath is the storage-element path of the pile-up sample
	// (simulation only; empty disables overlay).
	PileupPath string

	// Executor names in the worker registry. Defaults: "analysis",
	// "simulation", "merge".
	AnalysisFunc   string
	SimulationFunc string
	MergeFunc      string

	// EventBatch coalesces completed-task records into "task_batch" events
	// of up to this many records before hitting the structured event log,
	// cutting per-record marshal and write overhead at high dispatch rates.
	// 0 or 1 keeps the legacy one-"task"-event-per-record framing. Both
	// framings replay with monitor.ReplayLog; any batched tail is flushed
	// when Run returns.
	EventBatch int
}

// withDefaults validates and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Name == "" {
		return c, fmt.Errorf("core: config needs a Name")
	}
	switch c.Kind {
	case KindAnalysis:
		if c.Dataset == "" {
			return c, fmt.Errorf("core: analysis workflow needs a Dataset")
		}
	case KindSimulation:
		if c.TotalEvents <= 0 {
			return c, fmt.Errorf("core: simulation workflow needs TotalEvents > 0")
		}
		if c.EventsPerTasklet <= 0 {
			c.EventsPerTasklet = 100
		}
	default:
		return c, fmt.Errorf("core: unknown workflow kind %q", c.Kind)
	}
	if c.TaskletsPerTask <= 0 {
		c.TaskletsPerTask = 1
	}
	if c.TaskBuffer <= 0 {
		c.TaskBuffer = 400
	}
	if c.MaxTaskRetries <= 0 {
		c.MaxTaskRetries = 3
	}
	if c.AccessMode == "" {
		c.AccessMode = AccessStream
	}
	if c.AccessMode != AccessStream && c.AccessMode != AccessStage {
		return c, fmt.Errorf("core: unknown access mode %q", c.AccessMode)
	}
	if c.MergeMode == "" {
		c.MergeMode = MergeNone
	}
	switch c.MergeMode {
	case MergeNone, MergeSequential, MergeHadoop, MergeInterleaved:
	default:
		return c, fmt.Errorf("core: unknown merge mode %q", c.MergeMode)
	}
	if c.MergeMode != MergeNone && c.MergeTargetBytes <= 0 {
		return c, fmt.Errorf("core: merge mode %s needs MergeTargetBytes", c.MergeMode)
	}
	if c.MergeStartFraction <= 0 {
		c.MergeStartFraction = 0.10
	}
	if c.OutputDir == "" {
		c.OutputDir = "/store/user/" + c.Name
	}
	if c.EventSize <= 0 {
		c.EventSize = 100 << 10
	}
	if c.Work <= 0 {
		c.Work = 1
	}
	if c.AnalysisFunc == "" {
		c.AnalysisFunc = "analysis"
	}
	if c.SimulationFunc == "" {
		c.SimulationFunc = "simulation"
	}
	if c.MergeFunc == "" {
		c.MergeFunc = "merge"
	}
	return c, nil
}

// Services are the master-side handles Lobster drives.
type Services struct {
	// DBS resolves datasets (analysis workflows).
	DBS *dbs.Service
	// Master is the Work Queue master tasks are submitted to.
	Master *wq.Master
	// DB is the Lobster DB for persistent state; nil disables persistence.
	DB *store.DB
	// Monitor collects task records; nil disables monitoring.
	Monitor *monitor.Monitor
	// HDFS is the storage cluster behind the Chirp storage element; needed
	// for MergeHadoop, optional otherwise.
	HDFS *hdfs.Cluster
	// Epoch is the run origin for monitoring timestamps; zero means "first
	// use of the Lobster instance".
	Epoch time.Time
	// Telemetry receives live metric series and task-lifecycle spans; nil
	// disables instrumentation at zero cost.
	Telemetry *telemetry.Registry
	// EventLog receives one structured "task" event per completed task
	// record, replayable by monitor.ReplayLog; nil disables event logging.
	EventLog *telemetry.EventLog
}

func (s *Services) check(cfg *Config) error {
	if s.Master == nil {
		return fmt.Errorf("core: services need a Master")
	}
	if cfg.Kind == KindAnalysis && s.DBS == nil {
		return fmt.Errorf("core: analysis workflow needs a DBS service")
	}
	if cfg.MergeMode == MergeHadoop && s.HDFS == nil {
		return fmt.Errorf("core: hadoop merging needs an HDFS cluster")
	}
	return nil
}
