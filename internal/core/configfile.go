package core

import (
	"encoding/json"
	"fmt"
	"os"

	"lobster/internal/dbs"
)

// FileConfig is the JSON shape of a Lobster configuration file — the
// artifact the paper's user writes to "describe the input data sources and
// the analysis code which is to be run on each input data source".
//
// Example:
//
//	{
//	  "name": "ttbar-skim",
//	  "kind": "analysis",
//	  "dataset": "/TTJets/Run2015A/AOD",
//	  "tasklets_per_task": 6,
//	  "access_mode": "stream",
//	  "merge": {"mode": "interleaved", "target_bytes": 3500000000},
//	  "lumi_mask": {"250000": [[1, 200], [300, 450]]}
//	}
type FileConfig struct {
	Name             string `json:"name"`
	Kind             string `json:"kind"`
	Dataset          string `json:"dataset,omitempty"`
	TotalEvents      int    `json:"total_events,omitempty"`
	EventsPerTasklet int    `json:"events_per_tasklet,omitempty"`
	TaskletsPerTask  int    `json:"tasklets_per_task,omitempty"`
	TaskBuffer       int    `json:"task_buffer,omitempty"`
	MaxTaskRetries   int    `json:"max_task_retries,omitempty"`
	AccessMode       string `json:"access_mode,omitempty"`
	Merge            *struct {
		Mode          string  `json:"mode"`
		TargetBytes   int64   `json:"target_bytes,omitempty"`
		StartFraction float64 `json:"start_fraction,omitempty"`
	} `json:"merge,omitempty"`
	OutputDir string `json:"output_dir,omitempty"`
	EventSize int    `json:"event_size,omitempty"`
	Work      int    `json:"work,omitempty"`
	Pileup    string `json:"pileup,omitempty"`
	// LumiMask maps run number (as a JSON string key) to inclusive
	// [lo, hi] lumi ranges.
	LumiMask map[string][][2]int `json:"lumi_mask,omitempty"`
}

// ParseConfig decodes a configuration file's content into a Config. The
// result is validated by New as usual.
func ParseConfig(data []byte) (Config, error) {
	var fc FileConfig
	if err := json.Unmarshal(data, &fc); err != nil {
		return Config{}, fmt.Errorf("core: parsing config: %w", err)
	}
	cfg := Config{
		Name:             fc.Name,
		Kind:             Kind(fc.Kind),
		Dataset:          fc.Dataset,
		TotalEvents:      fc.TotalEvents,
		EventsPerTasklet: fc.EventsPerTasklet,
		TaskletsPerTask:  fc.TaskletsPerTask,
		TaskBuffer:       fc.TaskBuffer,
		MaxTaskRetries:   fc.MaxTaskRetries,
		AccessMode:       AccessMode(fc.AccessMode),
		OutputDir:        fc.OutputDir,
		EventSize:        fc.EventSize,
		Work:             fc.Work,
		PileupPath:       fc.Pileup,
	}
	if fc.Merge != nil {
		cfg.MergeMode = MergeMode(fc.Merge.Mode)
		cfg.MergeTargetBytes = fc.Merge.TargetBytes
		cfg.MergeStartFraction = fc.Merge.StartFraction
	}
	if len(fc.LumiMask) > 0 {
		mask := &dbs.LumiMask{Ranges: make(map[int][][2]int)}
		for runStr, ranges := range fc.LumiMask {
			var run int
			if _, err := fmt.Sscanf(runStr, "%d", &run); err != nil {
				return Config{}, fmt.Errorf("core: lumi mask run %q is not a number", runStr)
			}
			for _, r := range ranges {
				if r[1] < r[0] {
					return Config{}, fmt.Errorf("core: lumi mask range [%d,%d] inverted for run %d",
						r[0], r[1], run)
				}
			}
			mask.Ranges[run] = ranges
		}
		cfg.LumiMask = mask
	}
	// Surface validation problems at parse time, with defaults resolved.
	if _, err := cfg.withDefaults(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadConfig reads and parses a configuration file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("core: reading config: %w", err)
	}
	return ParseConfig(data)
}
