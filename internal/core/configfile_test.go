package core

import (
	"os"
	"path/filepath"
	"testing"

	"lobster/internal/dbs"
)

func TestParseConfigFull(t *testing.T) {
	data := []byte(`{
		"name": "ttbar-skim",
		"kind": "analysis",
		"dataset": "/TTJets/Run2015A/AOD",
		"tasklets_per_task": 6,
		"task_buffer": 200,
		"access_mode": "stage",
		"merge": {"mode": "interleaved", "target_bytes": 3500000000, "start_fraction": 0.2},
		"output_dir": "/store/user/anna",
		"event_size": 4096,
		"lumi_mask": {"250000": [[1, 200], [300, 450]]}
	}`)
	cfg, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "ttbar-skim" || cfg.Kind != KindAnalysis {
		t.Errorf("identity: %+v", cfg)
	}
	if cfg.TaskletsPerTask != 6 || cfg.TaskBuffer != 200 {
		t.Errorf("sizing: %+v", cfg)
	}
	if cfg.AccessMode != AccessStage {
		t.Errorf("access = %s", cfg.AccessMode)
	}
	if cfg.MergeMode != MergeInterleaved || cfg.MergeTargetBytes != 3500000000 ||
		cfg.MergeStartFraction != 0.2 {
		t.Errorf("merge: %+v", cfg)
	}
	if cfg.OutputDir != "/store/user/anna" {
		t.Errorf("output dir = %s", cfg.OutputDir)
	}
	if !cfg.LumiMask.Contains(dbs.Lumi{Run: 250000, Lumi: 350}) {
		t.Error("mask rejects in-range lumi")
	}
	if cfg.LumiMask.Contains(dbs.Lumi{Run: 250000, Lumi: 250}) {
		t.Error("mask accepts out-of-range lumi")
	}
}

func TestParseConfigSimulation(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"name": "mc", "kind": "simulation",
		"total_events": 10000, "events_per_tasklet": 250,
		"pileup": "/pileup/minbias.root"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != KindSimulation || cfg.TotalEvents != 10000 ||
		cfg.EventsPerTasklet != 250 || cfg.PileupPath != "/pileup/minbias.root" {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseConfigRejectsBadInput(t *testing.T) {
	bad := []string{
		`not json`,
		`{"name": "x", "kind": "teleport"}`,
		`{"name": "x", "kind": "analysis"}`, // no dataset
		`{"name": "x", "kind": "analysis", "dataset": "/d", "merge": {"mode": "blend"}}`,
		`{"name": "x", "kind": "analysis", "dataset": "/d", "lumi_mask": {"abc": [[1,2]]}}`,
		`{"name": "x", "kind": "analysis", "dataset": "/d", "lumi_mask": {"1": [[5,2]]}}`,
	}
	for i, s := range bad {
		if _, err := ParseConfig([]byte(s)); err == nil {
			t.Errorf("config %d accepted: %s", i, s)
		}
	}
}

func TestLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.json")
	content := `{"name": "fromfile", "kind": "analysis", "dataset": "/D/S/T"}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "fromfile" || cfg.Dataset != "/D/S/T" {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestParseConfigRoundTripThroughRun(t *testing.T) {
	// A parsed config must be directly runnable by New.
	ds := testDataset(2, 2, 8)
	svc := analysisServices(t, ds)
	cfg, err := ParseConfig([]byte(`{
		"name": "rt", "kind": "analysis", "dataset": "` + ds.Name + `",
		"tasklets_per_task": 2, "event_size": 256
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg, svc); err != nil {
		t.Fatalf("parsed config rejected by New: %v", err)
	}
}
