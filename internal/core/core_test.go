package core

import (
	"strconv"
	"testing"
	"testing/quick"

	"lobster/internal/dbs"
	"lobster/internal/wq"
)

func testDataset(files, lumisPerFile, eventsPerFile int) *dbs.Dataset {
	d, err := dbs.Generate(dbs.GenConfig{
		Name: "/Test/Core/AOD", Files: files, EventsPerFile: eventsPerFile,
		LumisPerFile: lumisPerFile, EventBytes: 256,
	}, nil)
	if err != nil {
		panic(err)
	}
	return d
}

func analysisServices(t *testing.T, ds *dbs.Dataset) Services {
	t.Helper()
	svc := Services{DBS: dbs.NewService()}
	if err := svc.DBS.Register(ds); err != nil {
		t.Fatal(err)
	}
	m, err := wq.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	svc.Master = m
	return svc
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Name: "wf", Kind: KindAnalysis, Dataset: "/d"}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TaskBuffer != 400 {
		t.Errorf("task buffer = %d, want the paper's 400", cfg.TaskBuffer)
	}
	if cfg.AccessMode != AccessStream {
		t.Errorf("default access mode = %s", cfg.AccessMode)
	}
	if cfg.MergeStartFraction != 0.10 {
		t.Errorf("merge start fraction = %g", cfg.MergeStartFraction)
	}
	if cfg.TaskletsPerTask != 1 || cfg.MaxTaskRetries != 3 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Name: "x"},
		{Name: "x", Kind: KindAnalysis},
		{Name: "x", Kind: KindSimulation},
		{Name: "x", Kind: "weird"},
		{Name: "x", Kind: KindAnalysis, Dataset: "/d", AccessMode: "teleport"},
		{Name: "x", Kind: KindAnalysis, Dataset: "/d", MergeMode: "blend"},
		{Name: "x", Kind: KindAnalysis, Dataset: "/d", MergeMode: MergeSequential},
	}
	for i, c := range bad {
		if _, err := c.withDefaults(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestPlanAnalysisTasklets(t *testing.T) {
	ds := testDataset(3, 4, 20) // 3 files × 4 lumis, 20 events each
	svc := Services{DBS: dbs.NewService()}
	svc.DBS.Register(ds)
	cfg, _ := Config{Name: "wf", Kind: KindAnalysis, Dataset: ds.Name}.withDefaults()
	tasklets, err := planTasklets(&cfg, &svc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasklets) != 12 {
		t.Fatalf("tasklets = %d, want 12", len(tasklets))
	}
	// Events per file divide across lumis: 4 lumis × 5 events.
	total := 0
	for _, tl := range tasklets {
		total += tl.NumEvents
		if tl.LFN == "" {
			t.Fatal("tasklet without LFN")
		}
	}
	if total != 60 {
		t.Errorf("total events = %d, want 60", total)
	}
	// Tasklets within a file cover disjoint contiguous ranges.
	byLFN := map[string][]Tasklet{}
	for _, tl := range tasklets {
		byLFN[tl.LFN] = append(byLFN[tl.LFN], tl)
	}
	for lfn, ts := range byLFN {
		next := 0
		for _, tl := range ts {
			if tl.SkipEvents != next {
				t.Errorf("%s: tasklet skip %d, want %d", lfn, tl.SkipEvents, next)
			}
			next += tl.NumEvents
		}
	}
}

func TestPlanAnalysisWithLumiMask(t *testing.T) {
	ds := testDataset(2, 4, 20)
	svc := Services{DBS: dbs.NewService()}
	svc.DBS.Register(ds)
	// Select only the first two lumis overall.
	firstRun := ds.Files[0].Lumis[0].Run
	mask := &dbs.LumiMask{Ranges: map[int][][2]int{
		firstRun: {{ds.Files[0].Lumis[0].Lumi, ds.Files[0].Lumis[1].Lumi}},
	}}
	cfg, _ := Config{Name: "wf", Kind: KindAnalysis, Dataset: ds.Name, LumiMask: mask}.withDefaults()
	tasklets, err := planTasklets(&cfg, &svc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasklets) != 2 {
		t.Fatalf("masked tasklets = %d, want 2", len(tasklets))
	}
}

func TestPlanSimulationTasklets(t *testing.T) {
	cfg, _ := Config{Name: "wf", Kind: KindSimulation, TotalEvents: 1050, EventsPerTasklet: 100}.withDefaults()
	tasklets, err := planTasklets(&cfg, &Services{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasklets) != 11 {
		t.Fatalf("tasklets = %d, want 11", len(tasklets))
	}
	total := 0
	seeds := map[int]bool{}
	for _, tl := range tasklets {
		total += tl.NumEvents
		if seeds[tl.Seed] {
			t.Fatal("duplicate seed")
		}
		seeds[tl.Seed] = true
	}
	if total != 1050 {
		t.Errorf("total events = %d", total)
	}
	if tasklets[10].NumEvents != 50 {
		t.Errorf("last tasklet = %d events", tasklets[10].NumEvents)
	}
}

func TestGroupTaskletsRespectsFileBoundaries(t *testing.T) {
	ds := testDataset(2, 5, 20) // 2 files × 5 lumis
	svc := Services{DBS: dbs.NewService()}
	svc.DBS.Register(ds)
	cfg, _ := Config{Name: "wf", Kind: KindAnalysis, Dataset: ds.Name, TaskletsPerTask: 3}.withDefaults()
	tasklets, _ := planTasklets(&cfg, &svc)
	groups := groupTasklets(&cfg, tasklets)
	// Per file: 5 lumis at 3/task → groups of 3,2. Two files → 4 groups.
	if len(groups) != 4 {
		t.Fatalf("groups = %d: %v", len(groups), groups)
	}
	for _, g := range groups {
		lfn := tasklets[g[0]].LFN
		for _, id := range g {
			if tasklets[id].LFN != lfn {
				t.Fatal("group spans files")
			}
		}
	}
}

func TestGroupTaskletsCoversAllExactlyOnce(t *testing.T) {
	check := func(nFiles, nLumis, k uint8) bool {
		files := int(nFiles%5) + 1
		lumis := int(nLumis%7) + 1
		size := int(k%6) + 1
		ds := testDataset(files, lumis, lumis*2)
		svc := Services{DBS: dbs.NewService()}
		if err := svc.DBS.Register(ds); err != nil {
			return false
		}
		cfg, _ := Config{Name: "wf", Kind: KindAnalysis, Dataset: ds.Name, TaskletsPerTask: size}.withDefaults()
		tasklets, err := planTasklets(&cfg, &svc)
		if err != nil {
			return false
		}
		groups := groupTasklets(&cfg, tasklets)
		seen := make(map[int]bool)
		for _, g := range groups {
			if len(g) > size {
				return false
			}
			for _, id := range g {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == len(tasklets)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTaskAnalysisArgs(t *testing.T) {
	ds := testDataset(1, 4, 20)
	svc := Services{DBS: dbs.NewService()}
	svc.DBS.Register(ds)
	cfg, _ := Config{Name: "wf", Kind: KindAnalysis, Dataset: ds.Name,
		TaskletsPerTask: 2, EventSize: 256, AccessMode: AccessStage}.withDefaults()
	tasklets, _ := planTasklets(&cfg, &svc)
	groups := groupTasklets(&cfg, tasklets)
	task, err := buildTask(&cfg, tasklets, groups[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if task.Func != "analysis" || task.Tag != "analysis" {
		t.Errorf("task func/tag: %s/%s", task.Func, task.Tag)
	}
	if task.Args["lfn"] != ds.Files[0].LFN {
		t.Errorf("lfn = %s", task.Args["lfn"])
	}
	if task.Args["mode"] != "stage" {
		t.Errorf("mode = %s", task.Args["mode"])
	}
	// Second group covers lumis 2-3 → events 10-19.
	if task.Args["skip_events"] != "10" || task.Args["max_events"] != "10" {
		t.Errorf("range: skip=%s max=%s", task.Args["skip_events"], task.Args["max_events"])
	}
	ids, err := parseTaskletIDs(task)
	if err != nil || len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Errorf("tasklet ids = %v, %v", ids, err)
	}
	if task.Outputs[0] != "report.json" {
		t.Errorf("outputs = %v", task.Outputs)
	}
}

func TestBuildTaskSimulationArgs(t *testing.T) {
	cfg, _ := Config{Name: "sim", Kind: KindSimulation, TotalEvents: 300,
		EventsPerTasklet: 100, TaskletsPerTask: 2, PileupPath: "/pu/minbias"}.withDefaults()
	tasklets, _ := planTasklets(&cfg, &Services{})
	groups := groupTasklets(&cfg, tasklets)
	task, err := buildTask(&cfg, tasklets, groups[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if task.Func != "simulation" {
		t.Errorf("func = %s", task.Func)
	}
	if task.Args["events"] != "200" {
		t.Errorf("events = %s", task.Args["events"])
	}
	if task.Args["pileup"] != "/pu/minbias" {
		t.Errorf("pileup = %s", task.Args["pileup"])
	}
	if task.Args["seed"] != strconv.Itoa(tasklets[0].Seed) {
		t.Errorf("seed = %s", task.Args["seed"])
	}
}

func TestGroupOutputsBySize(t *testing.T) {
	outs := []outputFile{
		{Path: "/a", Bytes: 40}, {Path: "/b", Bytes: 40},
		{Path: "/c", Bytes: 40}, {Path: "/d", Bytes: 10},
	}
	groups, rest := groupOutputsBySize(outs, 75, true)
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 {
		t.Errorf("group size = %d", len(groups[0]))
	}
	// requireFull keeps the under-target remainder back.
	if len(rest) != 2 {
		t.Errorf("rest = %v", rest)
	}
	// End-of-run flush includes the remainder.
	groups, rest = groupOutputsBySize(outs, 75, false)
	if len(groups) != 2 || len(rest) != 0 {
		t.Errorf("flush: groups=%v rest=%v", groups, rest)
	}
	// All inputs preserved exactly once.
	seen := map[string]bool{}
	for _, g := range groups {
		for _, o := range g {
			if seen[o.Path] {
				t.Fatal("duplicate output in groups")
			}
			seen[o.Path] = true
		}
	}
	if len(seen) != 4 {
		t.Errorf("coverage = %d", len(seen))
	}
}

func TestNewValidatesServices(t *testing.T) {
	ds := testDataset(1, 2, 4)
	if _, err := New(Config{Name: "x", Kind: KindAnalysis, Dataset: ds.Name}, Services{}); err == nil {
		t.Error("missing master accepted")
	}
	m, _ := wq.NewMaster("127.0.0.1:0")
	defer m.Close()
	if _, err := New(Config{Name: "x", Kind: KindAnalysis, Dataset: ds.Name}, Services{Master: m}); err == nil {
		t.Error("analysis without DBS accepted")
	}
	if _, err := New(Config{Name: "x", Kind: KindSimulation, TotalEvents: 10,
		MergeMode: MergeHadoop, MergeTargetBytes: 100}, Services{Master: m}); err == nil {
		t.Error("hadoop merge without cluster accepted")
	}
}
