package core

import (
	"fmt"

	"lobster/internal/store"
)

// Lobster DB layout: one table per workflow holding tasklet states, plus a
// marker record describing the plan so recovery can detect mismatches.
//
//	wf:<name>:meta      "plan" → {tasklets: N}
//	wf:<name>:tasklets  <id>   → {state}
//
// The paper (footnote 1) relies on exactly this: "system state is quickly
// and automatically recovered if the scheduler node should crash and
// reboot."

type planMeta struct {
	Tasklets int    `json:"tasklets"`
	Kind     string `json:"kind"`
}

type taskletRow struct {
	State TaskletState `json:"state"`
}

func (l *Lobster) metaTable() string     { return "wf:" + l.cfg.Name + ":meta" }
func (l *Lobster) taskletsTable() string { return "wf:" + l.cfg.Name + ":tasklets" }

func taskletKey(id int) string { return fmt.Sprintf("%010d", id) }

// persistAllTasklets writes the full initial plan.
func (l *Lobster) persistAllTasklets() error {
	db := l.svc.DB
	if err := db.PutJSON(l.metaTable(), "plan", planMeta{
		Tasklets: len(l.tasklets), Kind: string(l.cfg.Kind),
	}); err != nil {
		return err
	}
	for _, t := range l.tasklets {
		if err := db.PutJSON(l.taskletsTable(), taskletKey(t.ID), taskletRow{State: StatePending}); err != nil {
			return err
		}
	}
	return nil
}

// persistTaskletStates updates the states of one task group.
func (l *Lobster) persistTaskletStates(group []int, s TaskletState) error {
	if l.svc.DB == nil {
		return nil
	}
	for _, id := range group {
		if err := l.svc.DB.PutJSON(l.taskletsTable(), taskletKey(id), taskletRow{State: s}); err != nil {
			return err
		}
	}
	// Bound WAL growth over long runs.
	if l.svc.DB.WALSize() > 8<<20 {
		return l.svc.DB.Compact()
	}
	return nil
}

// loadState restores tasklet states from a previous incarnation. It reports
// whether prior state existed.
func (l *Lobster) loadState() (bool, error) {
	db := l.svc.DB
	var meta planMeta
	err := db.GetJSON(l.metaTable(), "plan", &meta)
	if err == store.ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if meta.Tasklets != len(l.tasklets) || meta.Kind != string(l.cfg.Kind) {
		return false, fmt.Errorf("core: Lobster DB holds a different plan for %q "+
			"(%d tasklets of kind %s, config now yields %d of kind %s); refusing to mix state",
			l.cfg.Name, meta.Tasklets, meta.Kind, len(l.tasklets), l.cfg.Kind)
	}
	for _, t := range l.tasklets {
		var row taskletRow
		if err := db.GetJSON(l.taskletsTable(), taskletKey(t.ID), &row); err != nil {
			if err == store.ErrNotFound {
				continue // treat as pending
			}
			return false, err
		}
		switch row.State {
		case StateDone, StateFailed:
			l.state[t.ID] = row.State
		default:
			// Pending and running both restart as pending: a task that was
			// in flight when the scheduler died is simply re-run.
			l.state[t.ID] = StatePending
		}
	}
	return true, nil
}
