package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lobster/internal/chirp"
	"lobster/internal/faultinject"
	"lobster/internal/hdfs"
	"lobster/internal/retry"
	"lobster/internal/wq"
)

// outputFile is one unmerged task output on the storage element.
type outputFile struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// MergeOptions hardens the merge executor's chirp access.
type MergeOptions struct {
	// Retry bounds redial-and-retry for each chirp operation. The zero
	// Policy performs single attempts.
	Retry retry.Policy
	// Fault, when non-nil, wires the executor's chirp connections into
	// the fault plane (component "chirp_client").
	Fault *faultinject.Injector
}

// MergeExecutor returns the worker-side executor for merge tasks: it fetches
// the listed inputs from the chirp storage element, concatenates them, and
// writes the merged file back. Merge tasks run like analysis tasks (paper:
// "Merge tasks run in the same way as analysis tasks"), so they are subject
// to the same eviction and retry machinery.
func MergeExecutor(chirpAddr string) wq.Executor {
	return MergeExecutorOpts(chirpAddr, MergeOptions{})
}

// MergeExecutorOpts is MergeExecutor with retry and fault-plane options.
//
// The executor is idempotent under whole-task re-dispatch: a replay that
// finds an input missing checks for the merged output — when present,
// the previous attempt completed before its result was lost, and the
// replay reports success instead of failing the workflow. Input
// cleanup likewise tolerates already-removed files.
//
// Data flow: the inputs are fetched in parallel over a bounded chirp
// connection pool into sandbox spool files (never all in memory at
// once), then the merged file streams back as one putfile whose payload
// is the concatenation of the spools.
func MergeExecutorOpts(chirpAddr string, opts MergeOptions) wq.Executor {
	return func(ctx *wq.ExecContext) error {
		args := ctx.Task.Args
		inputs := strings.Split(args["inputs"], ";")
		out := args["output"]
		if len(inputs) == 0 || inputs[0] == "" || out == "" {
			return fmt.Errorf("merge task needs inputs and output")
		}
		// Merge tasks declare no input or output files — everything moves
		// over chirp — so the worker never created the sandbox the spool
		// files below need.
		if err := ctx.EnsureSandbox(); err != nil {
			return fmt.Errorf("merge sandbox: %w", err)
		}
		pool := chirp.NewPool(chirp.PoolOptions{
			Addr:        chirpAddr,
			Size:        mergeParallelism,
			DialTimeout: 30 * time.Second,
			Retry:       opts.Retry,
			Fault:       opts.Fault,
			Tracer:      ctx.Tracer,
			Parent:      ctx.Trace,
		})
		defer pool.Close()

		spools := make([]string, len(inputs))
		errs := make([]error, len(inputs))
		var wg sync.WaitGroup
		for i := range inputs {
			spools[i] = filepath.Join(ctx.Sandbox, fmt.Sprintf("merge-in-%d", i))
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// The pool's Size caps how many fetches run at once.
				_, errs[i] = pool.FetchTo(inputs[i], spools[i])
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, chirp.ErrNotExist) {
				// A previous attempt of this task may have already
				// merged and removed the inputs.
				if derr := pool.Do(func(c *chirp.Client) error {
					_, serr := c.Stat(out)
					return serr
				}); derr == nil {
					return nil
				}
			}
			return fmt.Errorf("fetching merge input %s: %w", inputs[i], err)
		}

		// One streamed putfile of the concatenated spools; each retry
		// reopens them, so the closure stays idempotent.
		if err := pool.Do(func(c *chirp.Client) error {
			var total int64
			readers := make([]io.Reader, 0, len(spools))
			closers := make([]io.Closer, 0, len(spools))
			defer func() {
				for _, cl := range closers {
					cl.Close()
				}
			}()
			for _, sp := range spools {
				f, err := os.Open(sp)
				if err != nil {
					return retry.Permanent(fmt.Errorf("opening spool: %w", err))
				}
				closers = append(closers, f)
				st, err := f.Stat()
				if err != nil {
					return retry.Permanent(fmt.Errorf("stat spool: %w", err))
				}
				total += st.Size()
				readers = append(readers, f)
			}
			return c.PutFileFrom(out, io.MultiReader(readers...), total)
		}); err != nil {
			return fmt.Errorf("writing merged output: %w", err)
		}
		// Clean up the small inputs; the merged file replaces them. A
		// missing input was removed by an earlier attempt — not an error.
		for _, in := range inputs {
			if err := pool.Unlink(in); err != nil && !errors.Is(err, chirp.ErrNotExist) {
				return fmt.Errorf("removing merged input %s: %w", in, err)
			}
		}
		return nil
	}
}

// mergeParallelism bounds a merge task's concurrent chirp connections:
// enough to hide round-trip latency on many small inputs, small enough
// that a wave of merge tasks doesn't monopolise the storage element's
// slot cap.
const mergeParallelism = 4

// groupOutputsBySize forms merge groups whose summed size approaches
// targetBytes (paper: "group the finished tasks by output size to form merge
// tasks, yielding an output file size close to a user-specified value").
// Groups of a single file are only produced when requireFull is false (the
// end-of-run flush).
func groupOutputsBySize(outputs []outputFile, targetBytes int64, requireFull bool) (groups [][]outputFile, rest []outputFile) {
	sorted := append([]outputFile(nil), outputs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	var cur []outputFile
	var curBytes int64
	for _, o := range sorted {
		cur = append(cur, o)
		curBytes += o.Bytes
		if curBytes >= targetBytes {
			groups = append(groups, cur)
			cur, curBytes = nil, 0
		}
	}
	if len(cur) > 0 {
		if requireFull {
			rest = cur
		} else {
			groups = append(groups, cur)
		}
	}
	return groups, rest
}

// buildMergeTask constructs the wq task for one merge group.
func buildMergeTask(cfg *Config, group []outputFile, seq int) *wq.Task {
	paths := make([]string, len(group))
	for i, o := range group {
		paths[i] = o.Path
	}
	return &wq.Task{
		Func: cfg.MergeFunc,
		Args: map[string]string{
			"inputs": strings.Join(paths, ";"),
			"output": fmt.Sprintf("%s/%s_merged_%d.root", cfg.OutputDir, cfg.Name, seq),
		},
		Tag: "merge",
	}
}

// hadoopMerge performs merging entirely within the storage cluster via
// MapReduce (paper §4.4, "Merging via Hadoop"): the map phase groups small
// files by target merged name, the reduce phase concatenates each group and
// writes the large file back into the cluster. No data flows through Chirp.
func hadoopMerge(cfg *Config, cluster *hdfs.Cluster, outputs []outputFile) (merged int, err error) {
	if len(outputs) == 0 {
		return 0, nil
	}
	groups, rest := groupOutputsBySize(outputs, cfg.MergeTargetBytes, false)
	groups = append(groups, restAsGroups(rest)...)
	// Precomputed path → merged-file key, consulted by the mappers.
	groupOf := make(map[string]string)
	var inputs []string
	for gi, g := range groups {
		key := fmt.Sprintf("%s_hmerged_%d.root", cfg.Name, gi)
		for _, o := range g {
			groupOf[o.Path] = key
			inputs = append(inputs, o.Path)
		}
	}
	// As in the paper: the map phase only groups file names by target merged
	// file; each reducer pulls its group's small files from the cluster,
	// concatenates them locally, and writes the large file back.
	res, err := cluster.Run(hdfs.Job{
		Name:   cfg.Name + "-merge",
		Inputs: inputs,
		Map: func(path string, content []byte, emit func(hdfs.KV)) error {
			key, ok := groupOf[path]
			if !ok {
				return fmt.Errorf("no merge group for %s", path)
			}
			emit(hdfs.KV{Key: key, Value: []byte(path)})
			return nil
		},
		Reduce: func(key string, values [][]byte, emit func(hdfs.KV)) error {
			paths := make([]string, len(values))
			for i, v := range values {
				paths[i] = string(v)
			}
			sort.Strings(paths) // deterministic merge order
			var data []byte
			for _, p := range paths {
				content, err := cluster.ReadFile(p)
				if err != nil {
					return fmt.Errorf("reducer fetching %s: %w", p, err)
				}
				data = append(data, content...)
			}
			if err := cluster.WriteFile(cfg.OutputDir+"/"+key, data); err != nil {
				return err
			}
			emit(hdfs.KV{Key: key, Value: nil})
			return nil
		},
	})
	if err != nil {
		return 0, err
	}
	merged = len(res.Output)
	// Remove the small inputs.
	for _, in := range inputs {
		if err := cluster.Remove(in); err != nil {
			return merged, err
		}
	}
	return merged, nil
}

func restAsGroups(rest []outputFile) [][]outputFile {
	if len(rest) == 0 {
		return nil
	}
	return [][]outputFile{rest}
}
