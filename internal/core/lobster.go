package core

import (
	"fmt"
	"time"

	"lobster/internal/monitor"
	"lobster/internal/telemetry"
	"lobster/internal/wq"
	"lobster/internal/wrapper"
)

// Lobster drives one workflow to completion. Create with New, run with Run.
type Lobster struct {
	cfg Config
	svc Services

	tasklets []Tasklet
	state    map[int]TaskletState

	pending  [][]int                 // task groups awaiting submission
	attempts map[int]int             // group head tasklet ID → attempts used
	inflight map[int64]*inflightTask // wq task ID → bookkeeping

	unmerged      []outputFile
	mergeSeq      int
	mergesRun     int
	mergedFiles   int
	doneTasklets  int
	failTasklets  int
	tasksRun      int
	tasksFailed   int
	mergingOpen   int // merge tasks in flight
	resultTimeout time.Duration
	epoch         time.Time

	eventBatch []monitor.TaskRecord // pending records when cfg.EventBatch > 1

	tel coreTelemetry
}

// coreTelemetry holds the driver's instruments; the zero value is free.
// Gauges are Set from the (single-threaded) main loop rather than exposed
// as GaugeFuncs because the underlying fields are not lock-protected.
type coreTelemetry struct {
	taskletsRemaining *telemetry.Gauge
	mergeBacklog      *telemetry.Gauge
	inflight          *telemetry.Gauge
	tasksRun          *telemetry.Counter
	tasksFailed       *telemetry.Counter
	merges            *telemetry.Counter
	tracer            *telemetry.Tracer
}

// instrument registers the driver's metric series on svc.Telemetry. A nil
// registry leaves the driver uninstrumented at zero cost.
func (l *Lobster) instrument() {
	reg := l.svc.Telemetry
	if reg == nil && l.svc.EventLog == nil {
		return
	}
	l.tel = coreTelemetry{
		taskletsRemaining: reg.Gauge("lobster_core_tasklets_remaining",
			"Tasklets not yet done or terminally failed."),
		mergeBacklog: reg.Gauge("lobster_core_merge_backlog",
			"Unmerged task outputs plus merge tasks in flight."),
		inflight: reg.Gauge("lobster_core_tasks_inflight",
			"Tasks submitted to the master and not yet resolved."),
		tasksRun: reg.Counter("lobster_core_tasks_total",
			"Processing task attempts that returned."),
		tasksFailed: reg.Counter("lobster_core_task_failures_total",
			"Processing task attempts that returned failure."),
		merges: reg.Counter("lobster_core_merges_total",
			"Merge tasks that returned."),
		tracer: telemetry.NewTracer(reg, l.svc.EventLog),
	}
}

// publishGauges pushes the driver's progress gauges. Called from the main
// loop, so reads of the unlocked bookkeeping fields are safe.
func (l *Lobster) publishGauges() {
	l.tel.taskletsRemaining.Set(float64(len(l.tasklets) - l.doneTasklets - l.failTasklets))
	l.tel.mergeBacklog.Set(float64(len(l.unmerged) + l.mergingOpen))
	l.tel.inflight.Set(float64(len(l.inflight)))
}

type inflightTask struct {
	kind    string // "proc" or "merge"
	group   []int
	merge   []outputFile
	output  string
	attempt int
}

// RunReport summarises a completed workflow.
type RunReport struct {
	TaskletsTotal  int
	TaskletsDone   int
	TaskletsFailed int
	TasksRun       int // processing task attempts that returned
	TasksFailed    int // attempts that returned failure
	MergesRun      int
	MergedFiles    int
	Recovered      bool // state was restored from the Lobster DB
	Elapsed        time.Duration
}

// Succeeded reports whether every tasklet completed.
func (r *RunReport) Succeeded() bool {
	return r.TaskletsFailed == 0 && r.TaskletsDone == r.TaskletsTotal
}

// New validates the configuration and prepares a workflow. If the Lobster DB
// already holds state for cfg.Name, the workflow resumes where it left off
// (the paper's automatic crash recovery).
func New(cfg Config, svc Services) (*Lobster, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := svc.check(&full); err != nil {
		return nil, err
	}
	epoch := svc.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}
	l := &Lobster{
		cfg:           full,
		svc:           svc,
		state:         make(map[int]TaskletState),
		attempts:      make(map[int]int),
		inflight:      make(map[int64]*inflightTask),
		resultTimeout: 2 * time.Minute,
		epoch:         epoch,
	}
	l.instrument()
	return l, nil
}

// SetResultTimeout adjusts how long Run waits for any single result before
// declaring the workflow stalled.
func (l *Lobster) SetResultTimeout(d time.Duration) { l.resultTimeout = d }

// Run executes the workflow to completion.
func (l *Lobster) Run() (*RunReport, error) {
	start := time.Now()
	// Batched task events must reach the log even on an error return, or a
	// replay would silently miss up to EventBatch-1 completed tasks.
	defer l.flushTaskEvents()
	recovered, err := l.prepare()
	if err != nil {
		return nil, err
	}
	if err := l.mainLoop(); err != nil {
		return nil, err
	}
	if err := l.finalMerge(); err != nil {
		return nil, err
	}
	rep := &RunReport{
		TaskletsTotal:  len(l.tasklets),
		TaskletsDone:   l.doneTasklets,
		TaskletsFailed: l.failTasklets,
		TasksRun:       l.tasksRun,
		TasksFailed:    l.tasksFailed,
		MergesRun:      l.mergesRun,
		MergedFiles:    l.mergedFiles,
		Recovered:      recovered,
		Elapsed:        time.Since(start),
	}
	return rep, nil
}

// prepare plans tasklets (or recovers them from the DB) and builds the
// initial pending group list.
func (l *Lobster) prepare() (recovered bool, err error) {
	l.tasklets, err = planTasklets(&l.cfg, &l.svc)
	if err != nil {
		return false, err
	}
	for _, t := range l.tasklets {
		l.state[t.ID] = StatePending
	}
	if l.svc.DB != nil {
		recovered, err = l.loadState()
		if err != nil {
			return false, err
		}
		if !recovered {
			if err := l.persistAllTasklets(); err != nil {
				return false, err
			}
		}
	}
	// Group only tasklets still pending.
	var todo []Tasklet
	for _, t := range l.tasklets {
		if l.state[t.ID] == StatePending {
			todo = append(todo, t)
		} else if l.state[t.ID] == StateDone {
			l.doneTasklets++
		} else if l.state[t.ID] == StateFailed {
			// Failed tasklets from a previous incarnation get another chance.
			l.state[t.ID] = StatePending
			todo = append(todo, t)
		}
	}
	l.pending = groupTasklets(&l.cfg, todo)
	return recovered, nil
}

// mainLoop submits tasks keeping the buffer full and handles results until
// all processing work has resolved and in-flight merges have drained.
func (l *Lobster) mainLoop() error {
	for {
		if err := l.fillBuffer(); err != nil {
			return err
		}
		l.publishGauges()
		if len(l.inflight) == 0 && len(l.pending) == 0 {
			return nil
		}
		r, ok := l.svc.Master.WaitResult(l.resultTimeout)
		if !ok {
			return fmt.Errorf("core: no task results within %v (%d in flight, %d pending); workflow stalled",
				l.resultTimeout, len(l.inflight), len(l.pending))
		}
		if err := l.handleResult(r); err != nil {
			return err
		}
	}
}

// fillBuffer submits pending groups until the task buffer is full.
func (l *Lobster) fillBuffer() error {
	for len(l.inflight) < l.cfg.TaskBuffer && len(l.pending) > 0 {
		group := l.pending[0]
		l.pending = l.pending[1:]
		if err := l.submitGroup(group); err != nil {
			return err
		}
	}
	return nil
}

func (l *Lobster) submitGroup(group []int) error {
	attempt := l.attempts[group[0]]
	task, err := buildTask(&l.cfg, l.tasklets, group, attempt)
	if err != nil {
		return err
	}
	task.MaxRetries = 10 // eviction-driven requeues, distinct from task retries
	id, err := l.svc.Master.Submit(task)
	if err != nil {
		return err
	}
	l.inflight[id] = &inflightTask{
		kind: "proc", group: group, output: task.Args["output"], attempt: attempt,
	}
	for _, tid := range group {
		l.state[tid] = StateRunning
	}
	return nil
}

func (l *Lobster) submitMerge(group []outputFile) error {
	task := buildMergeTask(&l.cfg, group, l.mergeSeq)
	l.mergeSeq++
	task.MaxRetries = 10
	id, err := l.svc.Master.Submit(task)
	if err != nil {
		return err
	}
	l.inflight[id] = &inflightTask{kind: "merge", merge: group, output: task.Args["output"]}
	l.mergingOpen++
	return nil
}

// handleResult updates workflow state for one completed task.
func (l *Lobster) handleResult(r *wq.Result) error {
	info, ok := l.inflight[r.TaskID]
	if !ok {
		return nil // stale result from an earlier incarnation
	}
	delete(l.inflight, r.TaskID)
	l.recordMonitor(r, info)

	switch info.kind {
	case "proc":
		l.tasksRun++
		l.tel.tasksRun.Inc()
		if r.Failed() {
			l.tasksFailed++
			l.tel.tasksFailed.Inc()
			return l.handleProcFailure(info)
		}
		return l.handleProcSuccess(r, info)
	case "merge":
		l.mergingOpen--
		l.mergesRun++
		l.tel.merges.Inc()
		if r.Failed() {
			// Merge failures are terminal for their group: the inputs may be
			// partially consumed. The unmerged outputs remain published.
			return nil
		}
		l.mergedFiles++
		return nil
	}
	return nil
}

func (l *Lobster) handleProcSuccess(r *wq.Result, info *inflightTask) error {
	for _, tid := range info.group {
		l.state[tid] = StateDone
		l.doneTasklets++
	}
	if err := l.persistTaskletStates(info.group, StateDone); err != nil {
		return err
	}
	// Register the output for merging.
	var outBytes int64
	if rep := decodeReport(r); rep != nil {
		outBytes = int64(rep.Metric("bytes_out"))
	}
	l.unmerged = append(l.unmerged, outputFile{Path: info.output, Bytes: outBytes})

	// Interleaved merging: once enough of the dataset is processed, merge
	// whatever already adds up to a full target-size file.
	if l.cfg.MergeMode == MergeInterleaved && l.processedFraction() >= l.cfg.MergeStartFraction {
		groups, rest := groupOutputsBySize(l.unmerged, l.cfg.MergeTargetBytes, true)
		l.unmerged = rest
		for _, g := range groups {
			if err := l.submitMerge(g); err != nil {
				return err
			}
		}
	}
	return nil
}

func (l *Lobster) handleProcFailure(info *inflightTask) error {
	l.attempts[info.group[0]]++
	if l.attempts[info.group[0]] < l.cfg.MaxTaskRetries {
		l.pending = append(l.pending, info.group)
		for _, tid := range info.group {
			l.state[tid] = StatePending
		}
		return nil
	}
	for _, tid := range info.group {
		l.state[tid] = StateFailed
		l.failTasklets++
	}
	return l.persistTaskletStates(info.group, StateFailed)
}

func (l *Lobster) processedFraction() float64 {
	if len(l.tasklets) == 0 {
		return 0
	}
	return float64(l.doneTasklets) / float64(len(l.tasklets))
}

// finalMerge performs the end-of-run merging for the configured mode.
func (l *Lobster) finalMerge() error {
	switch l.cfg.MergeMode {
	case MergeNone:
		return nil
	case MergeHadoop:
		n, err := hadoopMerge(&l.cfg, l.svc.HDFS, l.unmerged)
		if err != nil {
			return fmt.Errorf("core: hadoop merge: %w", err)
		}
		l.mergesRun++
		l.mergedFiles += n
		l.unmerged = nil
		return nil
	case MergeSequential, MergeInterleaved:
		// Merge everything left (interleaved already merged most of it).
		groups, _ := groupOutputsBySize(l.unmerged, l.cfg.MergeTargetBytes, false)
		l.unmerged = nil
		for _, g := range groups {
			if err := l.submitMerge(g); err != nil {
				return err
			}
		}
		for l.mergingOpen > 0 {
			l.publishGauges()
			r, ok := l.svc.Master.WaitResult(l.resultTimeout)
			if !ok {
				return fmt.Errorf("core: merge phase stalled with %d merges in flight", l.mergingOpen)
			}
			if err := l.handleResult(r); err != nil {
				return err
			}
		}
		l.publishGauges()
		return nil
	}
	return nil
}

// decodeReport extracts the wrapper report from a task result, if present.
func decodeReport(r *wq.Result) *wrapper.Report {
	for _, out := range r.Outputs {
		if out.Name == "report.json" {
			rep, err := wrapper.Decode(out.Data)
			if err == nil {
				return rep
			}
		}
	}
	return nil
}

// recordMonitor converts a task result into a monitoring record, feeding
// the monitor DB, the task-lifecycle tracer, and the structured event log.
func (l *Lobster) recordMonitor(r *wq.Result, info *inflightTask) {
	if l.svc.Monitor == nil && l.svc.EventLog == nil && l.tel.tracer == nil {
		return
	}
	secs := func(t time.Time) float64 {
		if t.IsZero() {
			return 0
		}
		return t.Sub(l.epoch).Seconds()
	}
	rec := monitor.TaskRecord{
		TaskID:   r.TaskID,
		Kind:     r.Tag,
		Worker:   r.Worker,
		Submit:   secs(r.Stats.Times.Submitted),
		Dispatch: secs(r.Stats.Times.Dispatched),
		Start:    secs(r.Stats.Times.Started),
		Finish:   secs(r.Stats.Times.Finished),
		Return:   secs(r.Stats.Times.Returned),
		ExitCode: r.ExitCode,
		Requeues: r.Requeues,
		// Master→worker transfer overheads as seen from the master.
		WQStageIn:  r.Stats.Times.Started.Sub(r.Stats.Times.Dispatched).Seconds(),
		WQStageOut: r.Stats.Times.Returned.Sub(r.Stats.Times.Finished).Seconds(),
	}
	if rec.WQStageIn < 0 {
		rec.WQStageIn = 0
	}
	if rec.WQStageOut < 0 {
		rec.WQStageOut = 0
	}
	if rep := decodeReport(r); rep != nil {
		rec.FailedSegment = string(rep.Failed)
		rec.SetupTime = rep.SegmentDuration(wrapper.SegSoftware).Seconds()
		rec.StageIn = rep.SegmentDuration(wrapper.SegStageIn).Seconds()
		rec.StageOut = rep.SegmentDuration(wrapper.SegStageOut).Seconds()
		// The synthetic kernel interleaves I/O with computation during the
		// execute segment; attribute execute time to CPU and the explicit
		// staging segments to I/O. The simulation plane refines this split.
		rec.CPUTime = rep.SegmentDuration(wrapper.SegExecute).Seconds()
		rec.IOTime = rec.StageIn + rep.SegmentDuration(wrapper.SegConditions).Seconds()
		rec.Metrics = map[string]float64{
			"events":    rep.Metric("events"),
			"bytes_in":  rep.Metric("bytes_in"),
			"bytes_out": rep.Metric("bytes_out"),
		}
	}

	// Stage timings arrive after the fact inside the wrapper report, so the
	// real plane records them through Tracer.Observe rather than live spans.
	if t := l.tel.tracer; t != nil {
		pos := func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		}
		if info.kind == "merge" {
			t.Observe(telemetry.StageMerge, pos(rec.Finish-rec.Start))
		} else {
			t.Observe(telemetry.StageSubmit, pos(rec.Dispatch-rec.Submit))
			t.Observe(telemetry.StageDispatch, pos(rec.WQStageIn))
			t.Observe(telemetry.StageStageIn, pos(rec.StageIn))
			t.Observe(telemetry.StageSetup, pos(rec.SetupTime))
			t.Observe(telemetry.StageExecute, pos(rec.CPUTime))
			t.Observe(telemetry.StageStageOut, pos(rec.StageOut+rec.WQStageOut))
		}
	}
	l.emitTaskEvent(rec)
	if l.svc.Monitor != nil {
		l.svc.Monitor.Add(rec)
	}
}

// emitTaskEvent feeds one completed-task record to the structured event
// log, coalescing into "task_batch" events when cfg.EventBatch > 1.
func (l *Lobster) emitTaskEvent(rec monitor.TaskRecord) {
	if l.svc.EventLog == nil {
		return
	}
	if l.cfg.EventBatch <= 1 {
		l.svc.EventLog.Emit("task", rec)
		return
	}
	l.eventBatch = append(l.eventBatch, rec)
	if len(l.eventBatch) >= l.cfg.EventBatch {
		l.flushTaskEvents()
	}
}

// flushTaskEvents emits any batched records. Emit marshals synchronously,
// so the backing array is free for reuse as soon as it returns.
func (l *Lobster) flushTaskEvents() {
	if len(l.eventBatch) == 0 {
		return
	}
	l.svc.EventLog.Emit("task_batch", l.eventBatch)
	l.eventBatch = l.eventBatch[:0]
}
