package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lobster/internal/dbs"
	"lobster/internal/wq"
)

// Tasklet is the smallest self-contained unit of work (paper §4.1): for
// analysis, one lumisection of one file; for simulation, one block of
// events. The complete tasklet list is created at the start of the workflow.
type Tasklet struct {
	ID int `json:"id"`
	// Analysis fields.
	LFN        string `json:"lfn,omitempty"`
	Run        int    `json:"run,omitempty"`
	Lumi       int    `json:"lumi,omitempty"`
	SkipEvents int    `json:"skip_events,omitempty"`
	NumEvents  int    `json:"num_events"`
	// Simulation fields.
	Seed int `json:"seed,omitempty"`
}

// TaskletState tracks a tasklet through the workflow.
type TaskletState string

// Tasklet states persisted in the Lobster DB.
const (
	StatePending TaskletState = "pending"
	StateRunning TaskletState = "running"
	StateDone    TaskletState = "done"
	StateFailed  TaskletState = "failed" // retries exhausted
)

// planTasklets builds the full tasklet list for the workflow.
func planTasklets(cfg *Config, svc *Services) ([]Tasklet, error) {
	switch cfg.Kind {
	case KindAnalysis:
		return planAnalysisTasklets(cfg, svc)
	case KindSimulation:
		return planSimulationTasklets(cfg)
	default:
		return nil, fmt.Errorf("core: unknown kind %q", cfg.Kind)
	}
}

// planAnalysisTasklets queries DBS: one tasklet per selected lumisection,
// with the file's events divided evenly across its lumis.
func planAnalysisTasklets(cfg *Config, svc *Services) ([]Tasklet, error) {
	ds, err := svc.DBS.Dataset(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	var tasklets []Tasklet
	id := 0
	for fi := range ds.Files {
		f := &ds.Files[fi]
		if len(f.Lumis) == 0 {
			continue
		}
		perLumi := f.Events / len(f.Lumis)
		if perLumi == 0 {
			perLumi = 1
		}
		selected := cfg.LumiMask.Apply(f)
		for _, l := range selected {
			// Position of this lumi within the file decides the event range.
			pos := lumiIndex(f, l)
			n := perLumi
			if pos == len(f.Lumis)-1 {
				// Last lumi absorbs the remainder.
				n = f.Events - perLumi*(len(f.Lumis)-1)
			}
			tasklets = append(tasklets, Tasklet{
				ID: id, LFN: f.LFN, Run: l.Run, Lumi: l.Lumi,
				SkipEvents: pos * perLumi, NumEvents: n,
			})
			id++
		}
	}
	if len(tasklets) == 0 {
		return nil, fmt.Errorf("core: dataset %s yields no tasklets (empty or fully masked)", cfg.Dataset)
	}
	return tasklets, nil
}

func lumiIndex(f *dbs.File, l dbs.Lumi) int {
	for i, fl := range f.Lumis {
		if fl == l {
			return i
		}
	}
	return 0
}

// planSimulationTasklets divides TotalEvents into blocks.
func planSimulationTasklets(cfg *Config) ([]Tasklet, error) {
	var tasklets []Tasklet
	remaining := cfg.TotalEvents
	id := 0
	for remaining > 0 {
		n := cfg.EventsPerTasklet
		if n > remaining {
			n = remaining
		}
		tasklets = append(tasklets, Tasklet{ID: id, NumEvents: n, Seed: id + 1})
		remaining -= n
		id++
	}
	return tasklets, nil
}

// taskPlan is one task: a group of tasklets bound for a single worker core.
type taskPlan struct {
	Attempt  int   `json:"attempt"`
	Tasklets []int `json:"tasklets"` // tasklet IDs
}

// groupTasklets forms tasks of cfg.TaskletsPerTask tasklets. Analysis tasks
// never span files (a task streams from one input file); grouping restarts
// at file boundaries. Contiguity is preserved so a task covers one event
// range per file.
func groupTasklets(cfg *Config, tasklets []Tasklet) [][]int {
	var groups [][]int
	var cur []int
	var curLFN string
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
		}
	}
	for _, t := range tasklets {
		if len(cur) >= cfg.TaskletsPerTask || (cfg.Kind == KindAnalysis && t.LFN != curLFN) {
			flush()
		}
		curLFN = t.LFN
		cur = append(cur, t.ID)
	}
	flush()
	return groups
}

// buildTask converts a tasklet group into a wq.Task for submission.
func buildTask(cfg *Config, tasklets []Tasklet, group []int, attempt int) (*wq.Task, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("core: empty task group")
	}
	first := tasklets[group[0]]
	args := map[string]string{
		"event_size": strconv.Itoa(cfg.EventSize),
		"work":       strconv.Itoa(cfg.Work),
	}
	ids := make([]string, len(group))
	for i, id := range group {
		ids[i] = strconv.Itoa(id)
	}
	var funcName string
	switch cfg.Kind {
	case KindAnalysis:
		funcName = cfg.AnalysisFunc
		skip, num := first.SkipEvents, 0
		for _, id := range group {
			t := tasklets[id]
			if t.LFN != first.LFN {
				return nil, fmt.Errorf("core: task group spans files %s and %s", first.LFN, t.LFN)
			}
			num += t.NumEvents
		}
		args["lfn"] = first.LFN
		args["mode"] = string(cfg.AccessMode)
		args["run"] = strconv.Itoa(first.Run)
		args["skip_events"] = strconv.Itoa(skip)
		args["max_events"] = strconv.Itoa(num)
	case KindSimulation:
		funcName = cfg.SimulationFunc
		num := 0
		for _, id := range group {
			num += tasklets[id].NumEvents
		}
		args["events"] = strconv.Itoa(num)
		args["seed"] = strconv.Itoa(first.Seed)
		if cfg.PileupPath != "" {
			args["pileup"] = cfg.PileupPath
		}
	}
	out := fmt.Sprintf("%s/%s_t%d_a%d.root", cfg.OutputDir, cfg.Name, group[0], attempt)
	args["output"] = out
	args["tasklets"] = strings.Join(ids, ",")
	return &wq.Task{
		Func:    funcName,
		Args:    args,
		Outputs: []string{"report.json"},
		Tag:     string(cfg.Kind),
	}, nil
}

// parseTaskletIDs recovers the tasklet group from a task's args.
func parseTaskletIDs(task *wq.Task) ([]int, error) {
	s := task.Args["tasklets"]
	if s == "" {
		return nil, fmt.Errorf("core: task %d carries no tasklet list", task.ID)
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("core: bad tasklet id %q: %w", p, err)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}
