package core

// Full-stack integration tests: Lobster driving real TCP services end to
// end — cvmfs behind squid, the xrootd federation, a chirp storage element
// (local disk or HDFS-backed), a Work Queue master with multi-core workers,
// and the monitoring pipeline.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"lobster/internal/chirp"
	"lobster/internal/cvmfs"
	"lobster/internal/dbs"
	"lobster/internal/frontier"
	"lobster/internal/hdfs"
	"lobster/internal/hepsim"
	"lobster/internal/monitor"
	"lobster/internal/parrot"
	"lobster/internal/squid"
	"lobster/internal/stats"
	"lobster/internal/store"
	"lobster/internal/telemetry"
	"lobster/internal/wq"
	"lobster/internal/xrootd"
)

const stackEventSize = 256

type stack struct {
	svc      Services
	env      *hepsim.Env
	chirpFS  chirp.FileSystem
	chirpSrv *chirp.Server
	dataset  *dbs.Dataset
	proxy    *squid.Proxy
	dash     *xrootd.Dashboard
	registry wq.Registry
}

// startStack assembles every service. If cluster is non-nil it backs the
// chirp storage element (needed for hadoop merging).
func startStack(t *testing.T, files, lumisPerFile, eventsPerFile int, cluster *hdfs.Cluster) *stack {
	t.Helper()
	st := &stack{}

	// Dataset metadata + content on the federation.
	ds, err := dbs.Generate(dbs.GenConfig{
		Name: "/Stack/Test/AOD", Files: files, EventsPerFile: eventsPerFile,
		LumisPerFile: lumisPerFile, EventBytes: stackEventSize,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.dataset = ds
	st.svc.DBS = dbs.NewService()
	if err := st.svc.DBS.Register(ds); err != nil {
		t.Fatal(err)
	}

	dataSrv, err := xrootd.NewDataServer("T2_US_Stack", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dataSrv.Close() })
	red := xrootd.NewRedirector()
	kernel, _ := hepsim.NewKernel(stackEventSize, 1)
	rng := stats.NewRand(42)
	for _, f := range ds.Files {
		content := kernel.GenerateEvents(f.Events, rng)
		red.Register(f.LFN, dataSrv.Store(f.LFN, content))
	}
	st.dash = xrootd.NewDashboard()

	// CVMFS + Frontier behind one squid.
	repo := cvmfs.NewRepository("cms.cern.ch")
	if _, err := cvmfs.PublishRelease(repo, cvmfs.TestRelease("CMSSW_7_4_0"), stats.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	cond := frontier.NewService()
	cond.Publish(frontier.Payload{Tag: "align", FirstRun: 1, LastRun: 10000000, Data: []byte("x")})
	mux := http.NewServeMux()
	mux.Handle("/frontier/", cond)
	mux.Handle("/", cvmfs.NewServer(repo))
	origin := httptest.NewServer(mux)
	t.Cleanup(origin.Close)
	st.proxy, err = squid.New(origin.URL, squid.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(st.proxy)
	t.Cleanup(proxySrv.Close)

	// Chirp storage element.
	if cluster != nil {
		st.chirpFS = cluster
		st.svc.HDFS = cluster
	} else {
		fs, err := chirp.NewLocalFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st.chirpFS = fs
	}
	st.chirpSrv, err = chirp.NewServer(st.chirpFS, "127.0.0.1:0", 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.chirpSrv.Close() })

	// Worker environment + registry.
	cache, err := parrot.NewCache(t.TempDir(), parrot.ModeAlien)
	if err != nil {
		t.Fatal(err)
	}
	xcl := &xrootd.Client{Redirector: red, Dashboard: st.dash, Consumer: "lobster"}
	st.env = &hepsim.Env{
		ProxyURL:      proxySrv.URL,
		Repo:          "cms.cern.ch",
		ReleasePath:   "/CMSSW_7_4_0",
		Cache:         cache,
		ChirpAddr:     st.chirpSrv.Addr(),
		ConditionsTag: "align",
		Open: func(lfn string) (hepsim.RemoteFile, error) {
			return xcl.Open(lfn)
		},
	}
	st.registry = wq.Registry{
		"analysis":   hepsim.Analysis(st.env),
		"simulation": hepsim.Simulation(st.env),
		"merge":      MergeExecutor(st.chirpSrv.Addr()),
	}

	// Master + workers.
	master, err := wq.NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	st.svc.Master = master
	for i := 0; i < 2; i++ {
		w, err := wq.NewWorker(master.Addr(), fmt.Sprintf("w%d", i), 4, t.TempDir(), st.registry)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
	}

	st.svc.Monitor = monitor.New()
	st.svc.Epoch = time.Now()
	return st
}

func runWorkflow(t *testing.T, st *stack, cfg Config) *RunReport {
	t.Helper()
	cfg.EventSize = stackEventSize
	l, err := New(cfg, st.svc)
	if err != nil {
		t.Fatal(err)
	}
	l.SetResultTimeout(60 * time.Second)
	rep, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAnalysisWorkflowEndToEnd(t *testing.T) {
	st := startStack(t, 4, 4, 20, nil) // 80 events total, 16 tasklets
	rep := runWorkflow(t, st, Config{
		Name: "e2e", Kind: KindAnalysis, Dataset: st.dataset.Name,
		TaskletsPerTask: 2, AccessMode: AccessStream,
	})
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TaskletsTotal != 16 || rep.TaskletsDone != 16 {
		t.Errorf("tasklets: %+v", rep)
	}
	if rep.TasksRun != 8 {
		t.Errorf("tasks run = %d, want 8", rep.TasksRun)
	}
	// Outputs exist on the storage element and their summed size matches
	// the expected reduction: 80 events x 8 bytes.
	outs, err := st.chirpFS.List("/store/user/e2e")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, o := range outs {
		total += o.Size
	}
	if total != 80*8 {
		t.Errorf("reduced bytes = %d, want 640", total)
	}
	// Monitoring captured every task with timing and metrics.
	if st.svc.Monitor.Len() != 8 {
		t.Errorf("monitor records = %d", st.svc.Monitor.Len())
	}
	var events float64
	st.svc.Monitor.Each(func(r *monitor.TaskRecord) {
		events += r.Metrics["events"]
		if r.Finish <= r.Start {
			t.Error("record without positive wall time")
		}
	})
	if events != 80 {
		t.Errorf("monitored events = %g", events)
	}
	// The dashboard saw the streamed input volume.
	if st.dash.Volume("lobster") != int64(80*stackEventSize) {
		t.Errorf("dashboard volume = %d", st.dash.Volume("lobster"))
	}
}

func TestAnalysisWithInterleavedMerge(t *testing.T) {
	st := startStack(t, 6, 2, 12, nil) // 72 events, 12 tasklets
	rep := runWorkflow(t, st, Config{
		Name: "ilv", Kind: KindAnalysis, Dataset: st.dataset.Name,
		TaskletsPerTask: 1, MergeMode: MergeInterleaved,
		MergeTargetBytes: 150, // each output = 6 events × 8 B = 48 B
	})
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MergesRun == 0 || rep.MergedFiles == 0 {
		t.Fatalf("no merges: %+v", rep)
	}
	// All original outputs merged away; merged files hold all bytes.
	outs, err := st.chirpFS.List("/store/user/ilv")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, o := range outs {
		if !strings.Contains(o.Name, "merged") {
			t.Errorf("unmerged output left: %s", o.Name)
		}
		total += o.Size
	}
	if total != 72*8 {
		t.Errorf("merged bytes = %d, want 576", total)
	}
	// Interleaved merging must overlap with analysis: merge tasks recorded
	// by the monitor should not all start after the last analysis finish.
	var lastAnalysisFinish, firstMergeStart float64
	firstMergeStart = 1e18
	st.svc.Monitor.Each(func(r *monitor.TaskRecord) {
		switch r.Kind {
		case "analysis":
			if r.Finish > lastAnalysisFinish {
				lastAnalysisFinish = r.Finish
			}
		case "merge":
			if r.Start < firstMergeStart {
				firstMergeStart = r.Start
			}
		}
	})
	if firstMergeStart >= lastAnalysisFinish {
		t.Errorf("merging never overlapped analysis: first merge %g, last analysis %g",
			firstMergeStart, lastAnalysisFinish)
	}
}

func TestAnalysisWithSequentialMerge(t *testing.T) {
	st := startStack(t, 4, 2, 10, nil) // 40 events, 8 tasklets
	rep := runWorkflow(t, st, Config{
		Name: "seq", Kind: KindAnalysis, Dataset: st.dataset.Name,
		TaskletsPerTask: 2, MergeMode: MergeSequential, MergeTargetBytes: 100,
	})
	if !rep.Succeeded() || rep.MergedFiles == 0 {
		t.Fatalf("report = %+v", rep)
	}
	outs, _ := st.chirpFS.List("/store/user/seq")
	var total int64
	for _, o := range outs {
		total += o.Size
	}
	if total != 40*8 {
		t.Errorf("bytes after merge = %d", total)
	}
	// Sequential merging strictly follows analysis.
	var lastAnalysisFinish, firstMergeStart float64
	firstMergeStart = 1e18
	st.svc.Monitor.Each(func(r *monitor.TaskRecord) {
		switch r.Kind {
		case "analysis":
			if r.Finish > lastAnalysisFinish {
				lastAnalysisFinish = r.Finish
			}
		case "merge":
			if r.Start < firstMergeStart {
				firstMergeStart = r.Start
			}
		}
	})
	if firstMergeStart < lastAnalysisFinish {
		t.Errorf("sequential merge started before analysis finished")
	}
}

func TestAnalysisWithHadoopMerge(t *testing.T) {
	cluster, err := hdfs.NewCluster(3, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	st := startStack(t, 4, 2, 10, cluster)
	rep := runWorkflow(t, st, Config{
		Name: "hdp", Kind: KindAnalysis, Dataset: st.dataset.Name,
		TaskletsPerTask: 2, MergeMode: MergeHadoop, MergeTargetBytes: 100,
	})
	if !rep.Succeeded() || rep.MergedFiles == 0 {
		t.Fatalf("report = %+v", rep)
	}
	merged := cluster.Glob("/store/user/hdp/hdp_hmerged_")
	if len(merged) != rep.MergedFiles {
		t.Errorf("merged files on cluster = %d, report says %d", len(merged), rep.MergedFiles)
	}
	var total int64
	for _, p := range merged {
		data, err := cluster.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		total += int64(len(data))
	}
	if total != 40*8 {
		t.Errorf("merged bytes = %d", total)
	}
	// Small files are gone.
	for _, p := range cluster.Glob("/store/user/hdp/") {
		if !strings.Contains(p, "hmerged") {
			t.Errorf("unmerged small file left: %s", p)
		}
	}
}

func TestSimulationWorkflowEndToEnd(t *testing.T) {
	st := startStack(t, 1, 1, 1, nil)
	// Pile-up sample on the storage element.
	kernel, _ := hepsim.NewKernel(stackEventSize, 1)
	if err := st.chirpFS.WriteFile("/pileup/minbias.root",
		kernel.GenerateEvents(4, stats.NewRand(5))); err != nil {
		t.Fatal(err)
	}
	rep := runWorkflow(t, st, Config{
		Name: "mc", Kind: KindSimulation, TotalEvents: 500, EventsPerTasklet: 50,
		TaskletsPerTask: 2, PileupPath: "/pileup/minbias.root",
	})
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TaskletsTotal != 10 || rep.TasksRun != 5 {
		t.Errorf("report = %+v", rep)
	}
	outs, _ := st.chirpFS.List("/store/user/mc")
	var total int64
	for _, o := range outs {
		total += o.Size
	}
	if total != 500*8 {
		t.Errorf("simulated output bytes = %d, want 4000", total)
	}
}

// TestEventBatchedLogReplays runs a workflow with event batching enabled
// and checks (a) the log carries "task_batch" framing with no per-record
// "task" events, including the flushed sub-batch tail, and (b) replaying
// it rebuilds a monitor DB identical to the live one.
func TestEventBatchedLogReplays(t *testing.T) {
	st := startStack(t, 4, 4, 20, nil) // 16 tasklets -> 8 tasks
	var buf bytes.Buffer
	st.svc.EventLog = telemetry.NewEventLog(&buf, nil)
	rep := runWorkflow(t, st, Config{
		Name: "evb", Kind: KindAnalysis, Dataset: st.dataset.Name,
		TaskletsPerTask: 2, EventBatch: 3, // 8 records -> 2 full batches + tail of 2
	})
	if !rep.Succeeded() || rep.TasksRun != 8 {
		t.Fatalf("report = %+v", rep)
	}
	if err := st.svc.EventLog.Flush(); err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	if strings.Contains(log, `"type":"task"`) {
		t.Error("batched run emitted single-record task events")
	}
	if n := strings.Count(log, `"type":"task_batch"`); n != 3 {
		t.Errorf("task_batch events = %d, want 3 (two full, one flushed tail)", n)
	}
	rebuilt := monitor.New()
	n, err := rebuilt.ReplayLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("replayed %d records, want 8", n)
	}
	if !reflect.DeepEqual(st.svc.Monitor.Records(), rebuilt.Records()) {
		t.Error("replayed records differ from live monitor")
	}
}

func TestCrashRecoverySkipsDoneWork(t *testing.T) {
	st := startStack(t, 3, 2, 10, nil)
	db, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st.svc.DB = db

	cfg := Config{Name: "rec", Kind: KindAnalysis, Dataset: st.dataset.Name, TaskletsPerTask: 2}
	rep1 := runWorkflow(t, st, cfg)
	if !rep1.Succeeded() || rep1.Recovered {
		t.Fatalf("first run: %+v", rep1)
	}

	// "Crash and reboot": a fresh Lobster over the same DB must recover the
	// completed state and re-run nothing.
	rep2 := runWorkflow(t, st, cfg)
	if !rep2.Recovered {
		t.Fatal("second run did not recover state")
	}
	if rep2.TasksRun != 0 {
		t.Errorf("recovered run re-executed %d tasks", rep2.TasksRun)
	}
	if !rep2.Succeeded() || rep2.TaskletsDone != rep1.TaskletsTotal {
		t.Errorf("recovered report: %+v", rep2)
	}
}

func TestRecoveryRejectsMismatchedPlan(t *testing.T) {
	st := startStack(t, 3, 2, 10, nil)
	db, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st.svc.DB = db
	cfg := Config{Name: "mismatch", Kind: KindAnalysis, Dataset: st.dataset.Name, TaskletsPerTask: 2}
	runWorkflow(t, st, cfg)

	// Same name, different plan (lumi mask shrinks the tasklet count).
	firstRun := st.dataset.Files[0].Lumis[0].Run
	cfg.LumiMask = &dbs.LumiMask{Ranges: map[int][][2]int{
		firstRun: {{st.dataset.Files[0].Lumis[0].Lumi, st.dataset.Files[0].Lumis[0].Lumi}},
	}}
	l, err := New(cfg, st.svc)
	if err != nil {
		t.Fatal(err)
	}
	l.SetResultTimeout(10 * time.Second)
	if _, err := l.Run(); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}

func TestWorkflowUnderEviction(t *testing.T) {
	st := startStack(t, 4, 2, 10, nil)
	// Add a saboteur: an extra worker that keeps dying. The pool machinery
	// is exercised in cluster tests; here one flaky worker suffices.
	flaky, err := wq.NewWorker(st.svc.Master.Addr(), "flaky", 2, t.TempDir(), st.registry)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		flaky.Evict()
	}()
	rep := runWorkflow(t, st, Config{
		Name: "evict", Kind: KindAnalysis, Dataset: st.dataset.Name, TaskletsPerTask: 1,
	})
	if !rep.Succeeded() {
		t.Fatalf("workflow failed under eviction: %+v", rep)
	}
}

func TestFailedSegmentPropagatesToMonitor(t *testing.T) {
	st := startStack(t, 2, 2, 10, nil)
	// Poison the dataset: deregister content for one file so its tasks fail
	// in stage_in, exhausting retries.
	reg := wq.Registry{}
	for k, v := range st.registry {
		reg[k] = v
	}
	// Point one LFN at nothing by removing every replica via a fresh
	// redirector-less env: simplest is to use a bogus LFN via lumi mask —
	// instead, run with a dataset name that resolves but a broken Open for
	// one file.
	brokenLFN := st.dataset.Files[0].LFN
	origOpen := st.env.Open
	st.env.Open = func(lfn string) (hepsim.RemoteFile, error) {
		if lfn == brokenLFN {
			return nil, fmt.Errorf("synthetic federation outage for %s", lfn)
		}
		return origOpen(lfn)
	}
	rep := runWorkflow(t, st, Config{
		Name: "fail", Kind: KindAnalysis, Dataset: st.dataset.Name,
		TaskletsPerTask: 2, MaxTaskRetries: 2,
	})
	if rep.Succeeded() {
		t.Fatal("workflow succeeded despite poisoned file")
	}
	if rep.TaskletsFailed != 2 { // the broken file's 2 tasklets
		t.Errorf("failed tasklets = %d", rep.TaskletsFailed)
	}
	// Monitor records attribute the failure to stage_in.
	sawStageInFailure := false
	st.svc.Monitor.Each(func(r *monitor.TaskRecord) {
		if r.Failed() && r.FailedSegment == "stage_in" {
			sawStageInFailure = true
		}
	})
	if !sawStageInFailure {
		t.Error("no stage_in failure recorded")
	}
}
