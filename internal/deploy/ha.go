package deploy

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/telemetry"
	"lobster/internal/wq"
)

// HAOptions configures a replicated control plane with an attached worker
// fleet — the failover analogue of the single-master Stack.
type HAOptions struct {
	Members        int // replicated masters (default 3)
	Workers        int // HA workers following the leader
	CoresPerWorker int // default 2
	ScratchDir     string
	Seed           uint64
	Registry       wq.Registry // executor registry for the workers

	Telemetry *telemetry.Registry
	// EventDir, when non-empty, gives each member a JSONL event log at
	// EventDir/member-<id>.jsonl carrying its applied entry stream and
	// election events — the replayable history ReplayLog consumes.
	EventDir string
	Fault    *faultinject.Injector

	TickEvery     time.Duration // default 2ms (fast failover in tests)
	ElectionTicks int
}

// HACluster is a running replicated control plane.
type HACluster struct {
	Masters []*wq.HAMaster // nil slots are killed members
	Workers []*wq.HAWorker
	Addrs   []string // worker-facing addresses, by member index

	logs []*telemetry.EventLog
}

// StartHA starts the members and workers. All members begin as standbys;
// use WaitLeader to block until the first election settles.
func StartHA(opts HAOptions) (*HACluster, error) {
	if opts.Members <= 0 {
		opts.Members = 3
	}
	if opts.CoresPerWorker <= 0 {
		opts.CoresPerWorker = 2
	}
	if opts.TickEvery <= 0 {
		opts.TickEvery = 2 * time.Millisecond
	}
	if opts.ElectionTicks <= 0 {
		opts.ElectionTicks = 10
	}
	if opts.ScratchDir == "" {
		return nil, errors.New("deploy: HA cluster needs a ScratchDir")
	}

	// Reserve a replication address per member up front: the mesh config
	// must be complete before the first member starts.
	peers := make(map[uint64]string, opts.Members)
	for i := 0; i < opts.Members; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		peers[uint64(i+1)] = l.Addr().String()
		l.Close()
	}

	c := &HACluster{}
	wqAddrs := make(map[uint64]string, opts.Members)
	for i := 0; i < opts.Members; i++ {
		id := uint64(i + 1)
		var evlog *telemetry.EventLog
		if opts.EventDir != "" {
			if err := os.MkdirAll(opts.EventDir, 0o755); err != nil {
				c.Close()
				return nil, err
			}
			path := filepath.Join(opts.EventDir, fmt.Sprintf("member-%d.jsonl", id))
			start := time.Now()
			var err error
			evlog, err = telemetry.OpenEventLog(path, func() float64 {
				return time.Since(start).Seconds()
			})
			if err != nil {
				c.Close()
				return nil, err
			}
			c.logs = append(c.logs, evlog)
		}
		h, err := wq.StartHAMaster(wq.HAMasterConfig{
			ID: id, Peers: peers, Addr: "127.0.0.1:0", WQAddrs: wqAddrs,
			Seed:      opts.Seed,
			TickEvery: opts.TickEvery, ElectionTicks: opts.ElectionTicks,
			Registry: opts.Telemetry, EventLog: evlog, Fault: opts.Fault,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Masters = append(c.Masters, h)
		c.Addrs = append(c.Addrs, h.Addr())
		wqAddrs[id] = h.Addr()
	}

	for i := 0; i < opts.Workers; i++ {
		c.Workers = append(c.Workers, wq.StartHAWorker(wq.HAWorkerConfig{
			Addrs: c.Addrs, Name: fmt.Sprintf("ha-worker-%d", i),
			Cores: opts.CoresPerWorker,
			Dir:   filepath.Join(opts.ScratchDir, fmt.Sprintf("worker-%d", i)),
			Reg:   opts.Registry,
			Opts:  wq.WorkerOptions{Fault: opts.Fault},
		}))
	}
	return c, nil
}

// Leader returns the member that currently leads and has taken over
// dispatch, or nil.
func (c *HACluster) Leader() *wq.HAMaster {
	for _, h := range c.Masters {
		if h != nil && h.Ready() {
			return h
		}
	}
	return nil
}

// Live returns the members not yet killed.
func (c *HACluster) Live() []*wq.HAMaster {
	var out []*wq.HAMaster
	for _, h := range c.Masters {
		if h != nil {
			out = append(out, h)
		}
	}
	return out
}

// WaitLeader blocks until a member is ready to dispatch.
func (c *HACluster) WaitLeader(timeout time.Duration) (*wq.HAMaster, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h := c.Leader(); h != nil {
			return h, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, errors.New("deploy: no HA leader elected")
}

// KillLeader abruptly kills the current leader — the chaos-plane fault —
// and returns it. It retries briefly while an election is still settling.
func (c *HACluster) KillLeader(timeout time.Duration) (*wq.HAMaster, error) {
	h, err := c.WaitLeader(timeout)
	if err != nil {
		return nil, err
	}
	for i, m := range c.Masters {
		if m == h {
			c.Masters[i] = nil
		}
	}
	h.Kill()
	return h, nil
}

// Submit submits a task at whichever member currently leads, retrying
// through elections until the timeout. Tasks should carry a unique Tag so
// a retry after an ambiguous failure stays idempotent.
func (c *HACluster) Submit(t *wq.Task, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error = errors.New("deploy: no live members")
	for time.Now().Before(deadline) {
		for _, h := range c.Masters {
			if h == nil {
				continue
			}
			id, err := h.Submit(t, time.Until(deadline))
			if err == nil {
				return id, nil
			}
			lastErr = err
		}
		time.Sleep(5 * time.Millisecond)
	}
	return 0, fmt.Errorf("deploy: HA submit: %w", lastErr)
}

// Close tears the cluster down: workers first, then members, then logs.
func (c *HACluster) Close() {
	for _, w := range c.Workers {
		w.Close()
	}
	for _, h := range c.Masters {
		if h != nil {
			h.Close()
		}
	}
	for _, l := range c.logs {
		l.Close()
	}
}
