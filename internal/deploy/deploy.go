// Package deploy assembles the full real-execution-plane service stack —
// CVMFS origin behind a squid proxy, Frontier conditions, an XrootD
// federation populated with a synthetic dataset, a Chirp storage element
// (local disk or HDFS-backed), a Work Queue master, and worker processes —
// so commands and examples can bring up a working Lobster deployment in a
// few lines. Everything runs in-process over real TCP/HTTP.
package deploy

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"lobster/internal/chirp"
	"lobster/internal/core"
	"lobster/internal/cvmfs"
	"lobster/internal/dbs"
	"lobster/internal/faultinject"
	"lobster/internal/frontier"
	"lobster/internal/hdfs"
	"lobster/internal/hepsim"
	"lobster/internal/monitor"
	"lobster/internal/parrot"
	"lobster/internal/retry"
	"lobster/internal/squid"
	"lobster/internal/stats"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
	"lobster/internal/wq"
	"lobster/internal/xrootd"
)

// Options configures the stack.
type Options struct {
	// Dataset shape.
	DatasetName   string
	Files         int
	LumisPerFile  int
	EventsPerFile int
	EventBytes    int64

	// UseHDFS backs the storage element with an HDFS cluster (3 datanodes,
	// 2x replication) instead of a local directory; required for Hadoop
	// merging.
	UseHDFS bool

	// Workers and CoresPerWorker size the initial worker fleet.
	Workers        int
	CoresPerWorker int

	// ScratchDir holds worker sandboxes, caches, and the chirp export.
	// Empty means a fresh temporary directory.
	ScratchDir string

	// Seed drives all synthetic content.
	Seed uint64

	// Telemetry, when set, instruments every component of the stack (proxy,
	// chirp, master, workers) and is handed to core.Services.
	Telemetry *telemetry.Registry
	// EventLog, when set, is handed to core.Services for structured task
	// event logging.
	EventLog *telemetry.EventLog
	// Tracer, when set, threads distributed tracing through the stack:
	// master dispatch, worker runs, wrapper segments, and the chirp,
	// squid, and xrootd operations beneath them all join one trace per
	// task.
	Tracer *trace.Tracer
	// Fault, when set, wires every component into the deterministic
	// fault plane: the wq master's accepted connections, each worker's
	// master connection and staging hooks, chirp server and client
	// connections, xrootd replica connections, squid origin fetches, and
	// the wrapper's per-segment hooks. Chaos tests script storms against
	// these seams; a nil injector leaves the stack fault-free at zero
	// cost.
	Fault *faultinject.Injector
	// Retry configures the client-path backoff policies armed when the
	// stack should survive faults (chirp operations, xrootd fetches,
	// squid origin fetches, worker staging). The zero value keeps every
	// path single-attempt.
	Retry retry.Policy
}

// Defaults fills unset fields.
func (o *Options) defaults() error {
	if o.DatasetName == "" {
		o.DatasetName = "/Demo/Run2015A/AOD"
	}
	if o.Files <= 0 {
		o.Files = 4
	}
	if o.LumisPerFile <= 0 {
		o.LumisPerFile = 4
	}
	if o.EventsPerFile <= 0 {
		o.EventsPerFile = 40
	}
	if o.EventBytes <= 0 {
		o.EventBytes = 4096
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.CoresPerWorker <= 0 {
		o.CoresPerWorker = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ScratchDir == "" {
		dir, err := os.MkdirTemp("", "lobster-deploy-*")
		if err != nil {
			return fmt.Errorf("deploy: scratch dir: %w", err)
		}
		o.ScratchDir = dir
	}
	return nil
}

// Stack is a running deployment.
type Stack struct {
	Options  Options
	Services core.Services
	Env      *hepsim.Env
	Registry wq.Registry

	Dataset    *dbs.Dataset
	Proxy      *squid.Proxy
	Redirector *xrootd.Redirector
	Dashboard  *xrootd.Dashboard
	ChirpFS    chirp.FileSystem
	ChirpSrv   *chirp.Server
	HDFS       *hdfs.Cluster

	workers  []*wq.Worker
	closers  []func()
	scratch  string
	nWorkers int
}

// Start brings up the whole stack.
func Start(opts Options) (*Stack, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	st := &Stack{Options: opts, scratch: opts.ScratchDir}
	ok := false
	defer func() {
		if !ok {
			st.Close()
		}
	}()

	// Dataset metadata and federation content.
	rng := stats.NewRand(opts.Seed)
	ds, err := dbs.Generate(dbs.GenConfig{
		Name: opts.DatasetName, Files: opts.Files, EventsPerFile: opts.EventsPerFile,
		LumisPerFile: opts.LumisPerFile, EventBytes: opts.EventBytes,
	}, rng)
	if err != nil {
		return nil, err
	}
	st.Dataset = ds
	st.Services.DBS = dbs.NewService()
	if err := st.Services.DBS.Register(ds); err != nil {
		return nil, err
	}

	dataSrv, err := xrootd.NewDataServer("T3_US_Local", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	st.closers = append(st.closers, func() { dataSrv.Close() })
	st.Redirector = xrootd.NewRedirector()
	kernel, err := hepsim.NewKernel(int(opts.EventBytes), 1)
	if err != nil {
		return nil, err
	}
	for _, f := range ds.Files {
		content := kernel.GenerateEvents(f.Events, rng)
		st.Redirector.Register(f.LFN, dataSrv.Store(f.LFN, content))
	}
	st.Dashboard = xrootd.NewDashboard()

	// CVMFS + Frontier origin behind squid.
	repo := cvmfs.NewRepository("cms.cern.ch")
	if _, err := cvmfs.PublishRelease(repo, cvmfs.TestRelease("CMSSW_7_4_0"), rng); err != nil {
		return nil, err
	}
	cond := frontier.NewService()
	if err := cond.Publish(frontier.Payload{
		Tag: "align", FirstRun: 1, LastRun: 100000000, Data: []byte("conditions"),
	}); err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/frontier/", cond)
	mux.Handle("/", cvmfs.NewServer(repo))
	origin := httptest.NewServer(mux)
	st.closers = append(st.closers, origin.Close)
	st.Proxy, err = squid.New(origin.URL, squid.Config{
		Fault: opts.Fault,
		Retry: opts.Retry,
	})
	if err != nil {
		return nil, err
	}
	st.Proxy.Instrument(opts.Telemetry)
	st.Proxy.Trace(opts.Tracer)
	proxySrv := httptest.NewServer(st.Proxy)
	st.closers = append(st.closers, proxySrv.Close)

	// Storage element.
	if opts.UseHDFS {
		cluster, err := hdfs.NewCluster(3, 2, 1<<20)
		if err != nil {
			return nil, err
		}
		st.HDFS = cluster
		st.ChirpFS = cluster
		st.Services.HDFS = cluster
	} else {
		fs, err := chirp.NewLocalFS(filepath.Join(opts.ScratchDir, "storage"))
		if err != nil {
			return nil, err
		}
		st.ChirpFS = fs
	}
	st.ChirpSrv, err = chirp.NewServer(st.ChirpFS, "127.0.0.1:0", 16)
	if err != nil {
		return nil, err
	}
	st.ChirpSrv.Instrument(opts.Telemetry)
	st.ChirpSrv.Trace(opts.Tracer)
	st.ChirpSrv.Fault(opts.Fault)
	st.closers = append(st.closers, func() { st.ChirpSrv.Close() })

	// Worker environment and registry.
	cache, err := parrot.NewCache(filepath.Join(opts.ScratchDir, "parrot-cache"), parrot.ModeAlien)
	if err != nil {
		return nil, err
	}
	xcl := &xrootd.Client{Redirector: st.Redirector, Dashboard: st.Dashboard,
		Consumer: "lobster", Fault: opts.Fault, Retry: opts.Retry}
	st.Env = &hepsim.Env{
		ProxyURL:      proxySrv.URL,
		Repo:          "cms.cern.ch",
		ReleasePath:   "/CMSSW_7_4_0",
		Cache:         cache,
		ChirpAddr:     st.ChirpSrv.Addr(),
		ConditionsTag: "align",
		Fault:         opts.Fault,
		ChirpRetry:    opts.Retry,
		Telemetry:     opts.Telemetry,
		Open: func(lfn string) (hepsim.RemoteFile, error) {
			return xcl.Open(lfn)
		},
		OpenTraced: func(lfn string, tr *trace.Tracer, ctx trace.Context) (hepsim.RemoteFile, error) {
			// A fresh client per open: xrootd clients carry per-task
			// trace state and tasks open files concurrently.
			tcl := &xrootd.Client{Redirector: st.Redirector, Dashboard: st.Dashboard,
				Consumer: "lobster", Fault: opts.Fault, Retry: opts.Retry}
			tcl.Trace(tr, ctx)
			return tcl.Open(lfn)
		},
	}
	st.closers = append(st.closers, func() { st.Env.Close() })
	st.Registry = wq.Registry{
		"analysis":   hepsim.Analysis(st.Env),
		"simulation": hepsim.Simulation(st.Env),
		"merge": core.MergeExecutorOpts(st.ChirpSrv.Addr(), core.MergeOptions{
			Retry: opts.Retry, Fault: opts.Fault,
		}),
	}

	// Master and workers.
	master, err := wq.NewMaster("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	master.Instrument(opts.Telemetry)
	master.Trace(opts.Tracer)
	master.Fault(opts.Fault)
	st.Services.Master = master
	st.closers = append(st.closers, func() { master.Close() })
	for i := 0; i < opts.Workers; i++ {
		if _, err := st.AddWorker(); err != nil {
			return nil, err
		}
	}
	st.Services.Monitor = monitor.New()
	st.Services.Telemetry = opts.Telemetry
	st.Services.EventLog = opts.EventLog
	ok = true
	return st, nil
}

// AddWorker attaches one more worker to the master.
func (st *Stack) AddWorker() (*wq.Worker, error) {
	name := fmt.Sprintf("worker-%d", st.nWorkers)
	st.nWorkers++
	w, err := wq.NewWorkerOpts(st.Services.Master.Addr(), name, st.Options.CoresPerWorker,
		filepath.Join(st.scratch, name), st.Registry, wq.WorkerOptions{
			Fault:      st.Options.Fault,
			StageRetry: st.Options.Retry,
		})
	if err != nil {
		return nil, fmt.Errorf("deploy: starting %s: %w", name, err)
	}
	w.Instrument(st.Options.Telemetry)
	w.Trace(st.Options.Tracer)
	st.workers = append(st.workers, w)
	return w, nil
}

// EventSize returns the kernel event size matching the generated dataset.
func (st *Stack) EventSize() int { return int(st.Options.EventBytes) }

// Close tears the stack down.
func (st *Stack) Close() {
	for _, w := range st.workers {
		w.Close()
	}
	for i := len(st.closers) - 1; i >= 0; i-- {
		st.closers[i]()
	}
}
