package deploy

import (
	"bytes"
	"testing"
	"time"

	"lobster/internal/core"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// TestStackTracedEndToEnd runs a real analysis workload with tracing
// enabled and asserts the full service chain — master dispatch, worker
// run, wrapper segments, chirp stage-out, squid software fetches, and
// xrootd data access — records spans under per-task traces, with no
// span orphaned from its tree.
func TestStackTracedEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	tr := trace.New(trace.Config{Registry: reg, Log: log})

	st, err := Start(Options{
		Files: 2, LumisPerFile: 2, EventsPerFile: 8,
		Workers: 1, CoresPerWorker: 2,
		ScratchDir: t.TempDir(),
		Telemetry:  reg,
		Tracer:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	l, err := core.New(core.Config{
		Name: "traced", Kind: core.KindAnalysis, Dataset: st.Dataset.Name,
		EventSize: st.EventSize(),
	}, st.Services)
	if err != nil {
		t.Fatal(err)
	}
	l.SetResultTimeout(time.Minute)
	rep, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}

	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	trees := trace.BuildTrees(recs)
	if len(trees) == 0 {
		t.Fatal("no traces recorded")
	}

	// Count component coverage across all traces; each trace must be
	// internally consistent (single trace ID, no orphans).
	comps := map[string]int{}
	for _, tree := range trees {
		if tree.Orphans != 0 {
			t.Errorf("trace %s: %d orphan spans", tree.TraceID, tree.Orphans)
		}
		var visit func(nd *trace.Node)
		visit = func(nd *trace.Node) {
			if nd.Trace != tree.TraceID {
				t.Fatalf("span %s: trace %s, want %s", nd.Span, nd.Trace, tree.TraceID)
			}
			comps[nd.Comp]++
			for _, c := range nd.Children {
				visit(c)
			}
		}
		visit(tree.Root)
	}
	for _, comp := range []string{
		"master", "worker", "wrapper", "chirp", "chirp_server", "squid", "xrootd",
	} {
		if comps[comp] == 0 {
			t.Errorf("no %q spans recorded (coverage: %v)", comp, comps)
		}
	}
}
