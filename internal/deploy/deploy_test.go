package deploy

import (
	"testing"
	"time"

	"lobster/internal/core"
)

func TestStackEndToEnd(t *testing.T) {
	st, err := Start(Options{
		Files: 2, LumisPerFile: 2, EventsPerFile: 8,
		Workers: 1, CoresPerWorker: 2,
		ScratchDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if st.Dataset.TotalEvents() != 16 {
		t.Errorf("dataset events = %d", st.Dataset.TotalEvents())
	}
	l, err := core.New(core.Config{
		Name: "smoke", Kind: core.KindAnalysis, Dataset: st.Dataset.Name,
		EventSize: st.EventSize(),
	}, st.Services)
	if err != nil {
		t.Fatal(err)
	}
	l.SetResultTimeout(time.Minute)
	rep, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}
	// Every component saw traffic.
	if st.Proxy.Stats().Misses == 0 {
		t.Error("squid never consulted")
	}
	if st.Dashboard.Volume("lobster") == 0 {
		t.Error("federation dashboard empty")
	}
	if st.ChirpSrv.Stats().BytesIn == 0 {
		t.Error("storage element received nothing")
	}
	if st.Services.Monitor.Len() == 0 {
		t.Error("monitor empty")
	}
}

func TestStackHDFSBackend(t *testing.T) {
	st, err := Start(Options{
		UseHDFS: true, Workers: 1, CoresPerWorker: 2,
		Files: 2, LumisPerFile: 1, EventsPerFile: 4,
		ScratchDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.HDFS == nil || st.Services.HDFS == nil {
		t.Fatal("HDFS backend not wired")
	}
	l, err := core.New(core.Config{
		Name: "hdfs-smoke", Kind: core.KindAnalysis, Dataset: st.Dataset.Name,
		EventSize: st.EventSize(), MergeMode: core.MergeHadoop, MergeTargetBytes: 64,
	}, st.Services)
	if err != nil {
		t.Fatal(err)
	}
	l.SetResultTimeout(time.Minute)
	rep, err := l.Run()
	if err != nil || !rep.Succeeded() || rep.MergedFiles == 0 {
		t.Fatalf("hadoop-merge run: %v %+v", err, rep)
	}
	if st.HDFS.FileCount() == 0 {
		t.Error("no files on the HDFS storage element")
	}
}

func TestAddWorker(t *testing.T) {
	st, err := Start(Options{Workers: 1, ScratchDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.AddWorker(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Services.Master.Stats().WorkersConnected != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("second worker never connected: %+v", st.Services.Master.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
