package cvmfs

import (
	"bytes"
	"fmt"

	"lobster/internal/stats"
)

// ReleaseConfig describes a synthetic software release to publish, standing
// in for a CMSSW distribution. The paper reports that a typical HEP analysis
// job touches about 1.5 GB of release files per cache; tests and small-scale
// runs use a scaled-down working set with the same file-count/size shape.
type ReleaseConfig struct {
	Version    string // e.g. "CMSSW_7_4_0"
	Libraries  int    // shared-library files (the bulk of the bytes)
	LibBytes   int64  // mean size of each library
	DataFiles  int    // auxiliary data files (geometry, payload snapshots)
	DataBytes  int64  // mean size of each data file
	Scripts    int    // small setup scripts and configuration fragments
	ScriptSize int64  // mean script size
	SizeJitter float64
}

// WorkingSetBytes returns the expected total size of the release.
func (c ReleaseConfig) WorkingSetBytes() int64 {
	return int64(c.Libraries)*c.LibBytes + int64(c.DataFiles)*c.DataBytes + int64(c.Scripts)*c.ScriptSize
}

// PublishRelease stages and commits a synthetic release into repo. Content
// bytes are pseudo-random (deterministic for the rng state) so that distinct
// files have distinct hashes. It returns the list of published paths.
func PublishRelease(repo *Repository, cfg ReleaseConfig, rng *stats.Rand) ([]string, error) {
	if cfg.Version == "" {
		return nil, fmt.Errorf("cvmfs: release needs a version")
	}
	tx := repo.Begin()
	var paths []string
	add := func(path string, meanSize int64) error {
		size := meanSize
		if cfg.SizeJitter > 0 {
			g := stats.Gaussian{Mu: float64(meanSize), Sigma: cfg.SizeJitter * float64(meanSize), Floor: 1}
			size = int64(g.Sample(rng))
		}
		// Fill with a cheap deterministic pattern keyed off the RNG; only the
		// first words of each 64-byte stride need to differ for unique hashes.
		// The buffer's pre-allocation is capped: size comes from a sampled
		// distribution, so it must not become an arbitrary upfront make().
		var content bytes.Buffer
		if grow := size; grow > 0 {
			if grow > 64<<10 {
				grow = 64 << 10
			}
			content.Grow(int(grow))
		}
		var block [64]byte // bytes 8..63 stay zero, as make() left them before
		for rem := size; rem > 0; rem -= int64(len(block)) {
			v := rng.Uint64()
			for j := 0; j < 8; j++ {
				block[j] = byte(v >> (8 * j))
			}
			n := int64(len(block))
			if rem < n {
				n = rem
			}
			content.Write(block[:n])
		}
		if err := tx.AddFile(path, content.Bytes()); err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}
	base := "/" + cfg.Version
	for i := 0; i < cfg.Libraries; i++ {
		if err := add(fmt.Sprintf("%s/lib/libcms%04d.so", base, i), cfg.LibBytes); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.DataFiles; i++ {
		if err := add(fmt.Sprintf("%s/data/payload%04d.db", base, i), cfg.DataBytes); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Scripts; i++ {
		if err := add(fmt.Sprintf("%s/bin/setup%04d.sh", base, i), cfg.ScriptSize); err != nil {
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return paths, nil
}

// TestRelease returns a small release config suitable for unit tests and
// examples: ~200 kB across 26 files.
func TestRelease(version string) ReleaseConfig {
	return ReleaseConfig{
		Version:   version,
		Libraries: 10, LibBytes: 16 << 10,
		DataFiles: 6, DataBytes: 4 << 10,
		Scripts: 10, ScriptSize: 512,
	}
}
