// Package cvmfs implements a content-addressed, read-only file system in the
// style of the CernVM File System: software releases are published into a
// repository as immutable objects named by their content hash, directory
// structure is kept in catalogs (themselves content-addressed), and clients
// fetch objects on demand over HTTP — typically through a hierarchy of
// caching proxies (package squid) — and keep a local cache (package parrot).
//
// The read-only property is what makes the paper's "alien cache" sharing
// safe: once an object is cached under its hash it can never change, so any
// number of concurrent readers and populators may share one cache directory.
package cvmfs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EntryType distinguishes catalog entries.
type EntryType int

// Catalog entry kinds.
const (
	TypeFile EntryType = iota
	TypeDir
)

// Entry is one name within a directory catalog.
type Entry struct {
	Name string    `json:"name"`
	Type EntryType `json:"type"`
	Hash string    `json:"hash"` // content hash of file data or sub-catalog
	Size int64     `json:"size"` // file size; for dirs, total bytes beneath
}

// Catalog is the serialized form of one directory.
type Catalog struct {
	Entries []Entry `json:"entries"`
}

// Repository is a versioned content-addressed store. Publication happens
// through a Transaction; readers see only committed state. It is safe for
// concurrent use.
type Repository struct {
	name string

	mu       sync.RWMutex
	objects  map[string][]byte // hash → content (files and catalogs)
	rootHash string            // hash of the root catalog
	revision int
}

// NewRepository returns an empty repository with the given fully-qualified
// name (e.g. "cms.cern.ch").
func NewRepository(name string) *Repository {
	r := &Repository{name: name, objects: make(map[string][]byte)}
	// Publish an empty root so readers always have a valid revision.
	tx := r.Begin()
	if err := tx.Commit(); err != nil {
		panic(fmt.Sprintf("cvmfs: committing empty root: %v", err))
	}
	return r
}

// Name returns the repository's fully-qualified name.
func (r *Repository) Name() string { return r.name }

// Revision returns the current published revision number.
func (r *Repository) Revision() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.revision
}

// RootHash returns the hash of the current root catalog.
func (r *Repository) RootHash() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rootHash
}

// Object returns the raw object with the given hash.
func (r *Repository) Object(hash string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	data, ok := r.objects[hash]
	if !ok {
		return nil, fmt.Errorf("cvmfs: object %s not found in %s", hash, r.name)
	}
	return data, nil
}

// ObjectCount returns the number of stored objects (files + catalogs).
func (r *Repository) ObjectCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.objects)
}

// TotalBytes returns the summed size of all stored objects.
func (r *Repository) TotalBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	for _, o := range r.objects {
		n += int64(len(o))
	}
	return n
}

func hashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Transaction is a pending publication. Files are added to an in-memory
// tree, then Commit hashes everything bottom-up and atomically swaps the
// repository root.
type Transaction struct {
	repo *Repository
	root *txDir
	done bool
}

type txDir struct {
	dirs  map[string]*txDir
	files map[string][]byte
}

func newTxDir() *txDir {
	return &txDir{dirs: make(map[string]*txDir), files: make(map[string][]byte)}
}

// Begin starts a transaction pre-populated with the current repository
// contents, so a publication is an overlay on the previous revision.
func (r *Repository) Begin() *Transaction {
	tx := &Transaction{repo: r, root: newTxDir()}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.rootHash != "" {
		r.loadInto(tx.root, r.rootHash)
	}
	return tx
}

// loadInto materialises a committed catalog subtree into tx form.
// Caller holds at least the read lock.
func (r *Repository) loadInto(dst *txDir, catalogHash string) {
	data, ok := r.objects[catalogHash]
	if !ok {
		return
	}
	var cat Catalog
	if json.Unmarshal(data, &cat) != nil {
		return
	}
	for _, e := range cat.Entries {
		switch e.Type {
		case TypeFile:
			dst.files[e.Name] = r.objects[e.Hash]
		case TypeDir:
			sub := newTxDir()
			r.loadInto(sub, e.Hash)
			dst.dirs[e.Name] = sub
		}
	}
}

// AddFile stages content at the given absolute path, creating parent
// directories as needed. Adding a path twice overwrites the staged content.
func (tx *Transaction) AddFile(path string, content []byte) error {
	if tx.done {
		return fmt.Errorf("cvmfs: transaction already committed")
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("cvmfs: cannot add file at root path %q", path)
	}
	d := tx.root
	for _, p := range parts[:len(parts)-1] {
		if _, isFile := d.files[p]; isFile {
			return fmt.Errorf("cvmfs: %q: path component %q is a file", path, p)
		}
		sub, ok := d.dirs[p]
		if !ok {
			sub = newTxDir()
			d.dirs[p] = sub
		}
		d = sub
	}
	name := parts[len(parts)-1]
	if _, isDir := d.dirs[name]; isDir {
		return fmt.Errorf("cvmfs: %q already exists as a directory", path)
	}
	d.files[name] = append([]byte(nil), content...)
	return nil
}

// Commit hashes the staged tree, stores all new objects, and publishes the
// new root. The transaction cannot be reused afterwards.
func (tx *Transaction) Commit() error {
	if tx.done {
		return fmt.Errorf("cvmfs: transaction already committed")
	}
	tx.done = true
	r := tx.repo
	r.mu.Lock()
	defer r.mu.Unlock()
	rootHash, _ := commitDir(r.objects, tx.root)
	r.rootHash = rootHash
	r.revision++
	return nil
}

// commitDir stores d's files and catalogs into objects, returning the
// catalog hash and total size beneath.
func commitDir(objects map[string][]byte, d *txDir) (string, int64) {
	var cat Catalog
	var total int64
	fileNames := make([]string, 0, len(d.files))
	for n := range d.files {
		fileNames = append(fileNames, n)
	}
	sort.Strings(fileNames)
	for _, n := range fileNames {
		content := d.files[n]
		h := hashOf(content)
		objects[h] = content
		cat.Entries = append(cat.Entries, Entry{Name: n, Type: TypeFile, Hash: h, Size: int64(len(content))})
		total += int64(len(content))
	}
	dirNames := make([]string, 0, len(d.dirs))
	for n := range d.dirs {
		dirNames = append(dirNames, n)
	}
	sort.Strings(dirNames)
	for _, n := range dirNames {
		h, sz := commitDir(objects, d.dirs[n])
		cat.Entries = append(cat.Entries, Entry{Name: n, Type: TypeDir, Hash: h, Size: sz})
		total += sz
	}
	data, err := json.Marshal(cat)
	if err != nil {
		panic(fmt.Sprintf("cvmfs: marshaling catalog: %v", err))
	}
	h := hashOf(data)
	objects[h] = data
	return h, total
}

// splitPath normalises an absolute slash path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("cvmfs: path %q must be absolute", path)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("cvmfs: path %q contains '..'", path)
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// Stat describes a resolved path.
type Stat struct {
	Path string
	Type EntryType
	Hash string
	Size int64
}

// Lookup resolves path through the committed catalogs.
func (r *Repository) Lookup(path string) (*Stat, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	curHash := r.rootHash
	cur := Entry{Type: TypeDir, Hash: curHash}
	for i, p := range parts {
		if cur.Type != TypeDir {
			return nil, fmt.Errorf("cvmfs: %q: %q is not a directory", path, parts[i-1])
		}
		cat, err := r.catalogLocked(cur.Hash)
		if err != nil {
			return nil, err
		}
		found := false
		for _, e := range cat.Entries {
			if e.Name == p {
				cur = e
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cvmfs: %s: no such file or directory", path)
		}
	}
	return &Stat{Path: path, Type: cur.Type, Hash: cur.Hash, Size: cur.Size}, nil
}

// ReadFile resolves path and returns the file content.
func (r *Repository) ReadFile(path string) ([]byte, error) {
	st, err := r.Lookup(path)
	if err != nil {
		return nil, err
	}
	if st.Type != TypeFile {
		return nil, fmt.Errorf("cvmfs: %s is a directory", path)
	}
	return r.Object(st.Hash)
}

// List returns the entries of the directory at path, sorted by name.
func (r *Repository) List(path string) ([]Entry, error) {
	st, err := r.Lookup(path)
	if err != nil {
		return nil, err
	}
	if st.Type != TypeDir {
		return nil, fmt.Errorf("cvmfs: %s is not a directory", path)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	cat, err := r.catalogLocked(st.Hash)
	if err != nil {
		return nil, err
	}
	return cat.Entries, nil
}

// Walk visits every file beneath path, calling fn(path, entry).
func (r *Repository) Walk(path string, fn func(path string, e Entry) error) error {
	entries, err := r.List(path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		full := strings.TrimSuffix(path, "/") + "/" + e.Name
		switch e.Type {
		case TypeFile:
			if err := fn(full, e); err != nil {
				return err
			}
		case TypeDir:
			if err := r.Walk(full, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Repository) catalogLocked(hash string) (*Catalog, error) {
	data, ok := r.objects[hash]
	if !ok {
		return nil, fmt.Errorf("cvmfs: missing catalog %s", hash)
	}
	var cat Catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("cvmfs: corrupt catalog %s: %w", hash, err)
	}
	return &cat, nil
}
