package cvmfs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"lobster/internal/stats"
)

func TestEmptyRepository(t *testing.T) {
	r := NewRepository("test.cern.ch")
	if r.Revision() != 1 {
		t.Errorf("revision = %d", r.Revision())
	}
	if r.RootHash() == "" {
		t.Error("empty root hash")
	}
	entries, err := r.List("/")
	if err != nil || len(entries) != 0 {
		t.Errorf("root list = %v, %v", entries, err)
	}
}

func TestAddAndRead(t *testing.T) {
	r := NewRepository("test.cern.ch")
	tx := r.Begin()
	if err := tx.AddFile("/sw/v1/bin/run.sh", []byte("#!/bin/sh")); err != nil {
		t.Fatal(err)
	}
	if err := tx.AddFile("/sw/v1/lib/libx.so", bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := r.ReadFile("/sw/v1/bin/run.sh")
	if err != nil || string(data) != "#!/bin/sh" {
		t.Fatalf("read = %q, %v", data, err)
	}
	st, err := r.Lookup("/sw/v1")
	if err != nil || st.Type != TypeDir {
		t.Fatalf("lookup dir: %+v, %v", st, err)
	}
	if st.Size != 109 {
		t.Errorf("dir size = %d, want 109", st.Size)
	}
}

func TestOverlayRevisions(t *testing.T) {
	r := NewRepository("test.cern.ch")
	tx := r.Begin()
	tx.AddFile("/a.txt", []byte("one"))
	tx.Commit()
	rev1 := r.Revision()

	tx2 := r.Begin()
	tx2.AddFile("/b.txt", []byte("two"))
	tx2.Commit()
	if r.Revision() != rev1+1 {
		t.Errorf("revision did not advance")
	}
	// Both files visible after overlay.
	if _, err := r.ReadFile("/a.txt"); err != nil {
		t.Errorf("a.txt lost across revisions: %v", err)
	}
	if _, err := r.ReadFile("/b.txt"); err != nil {
		t.Errorf("b.txt missing: %v", err)
	}
}

func TestLookupErrors(t *testing.T) {
	r := NewRepository("test.cern.ch")
	tx := r.Begin()
	tx.AddFile("/dir/file.txt", []byte("x"))
	tx.Commit()
	if _, err := r.Lookup("/missing"); err == nil {
		t.Error("missing path resolved")
	}
	if _, err := r.Lookup("relative/path"); err == nil {
		t.Error("relative path accepted")
	}
	if _, err := r.Lookup("/dir/file.txt/under"); err == nil {
		t.Error("descended through a file")
	}
	if _, err := r.ReadFile("/dir"); err == nil {
		t.Error("ReadFile of a directory succeeded")
	}
	if _, err := r.Lookup("/../etc"); err == nil {
		t.Error("dotdot path accepted")
	}
}

func TestTransactionErrors(t *testing.T) {
	r := NewRepository("test.cern.ch")
	tx := r.Begin()
	if err := tx.AddFile("nope", nil); err == nil {
		t.Error("relative path accepted")
	}
	if err := tx.AddFile("/", nil); err == nil {
		t.Error("root file accepted")
	}
	tx.AddFile("/d/f", []byte("x"))
	if err := tx.AddFile("/d/f/deeper", nil); err == nil {
		t.Error("file used as directory")
	}
	if err := tx.AddFile("/d", nil); err == nil {
		t.Error("directory overwritten by file")
	}
	tx.Commit()
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	if err := tx.AddFile("/late", nil); err == nil {
		t.Error("add after commit accepted")
	}
}

func TestContentAddressingDedup(t *testing.T) {
	r := NewRepository("test.cern.ch")
	tx := r.Begin()
	same := []byte("identical content")
	tx.AddFile("/a/one.txt", same)
	tx.AddFile("/b/two.txt", same)
	tx.Commit()
	stA, _ := r.Lookup("/a/one.txt")
	stB, _ := r.Lookup("/b/two.txt")
	if stA.Hash != stB.Hash {
		t.Error("identical content has distinct hashes")
	}
}

func TestDeterministicRootHash(t *testing.T) {
	build := func() string {
		r := NewRepository("x")
		tx := r.Begin()
		tx.AddFile("/z/file2", []byte("bbb"))
		tx.AddFile("/a/file1", []byte("aaa"))
		tx.Commit()
		return r.RootHash()
	}
	if build() != build() {
		t.Error("root hash not deterministic")
	}
}

func TestWalk(t *testing.T) {
	r := NewRepository("test.cern.ch")
	tx := r.Begin()
	tx.AddFile("/sw/a.txt", []byte("1"))
	tx.AddFile("/sw/sub/b.txt", []byte("22"))
	tx.AddFile("/top.txt", []byte("333"))
	tx.Commit()
	var visited []string
	var total int64
	err := r.Walk("/", func(p string, e Entry) error {
		visited = append(visited, p)
		total += e.Size
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 3 || total != 6 {
		t.Fatalf("visited %v total %d", visited, total)
	}
}

func TestPathResolutionProperty(t *testing.T) {
	r := NewRepository("prop.cern.ch")
	check := func(rawParts []string, content []byte) bool {
		// Build a clean path from generated parts.
		var parts []string
		for _, p := range rawParts {
			p = strings.Map(func(c rune) rune {
				if c == '/' || c == 0 {
					return 'x'
				}
				return c
			}, p)
			if p == "" || p == "." || p == ".." {
				p = "d"
			}
			parts = append(parts, p)
			if len(parts) == 4 {
				break
			}
		}
		if len(parts) == 0 {
			return true
		}
		path := "/" + strings.Join(parts, "/")
		tx := r.Begin()
		if err := tx.AddFile(path, content); err != nil {
			return false
		}
		if err := tx.Commit(); err != nil {
			return false
		}
		got, err := r.ReadFile(path)
		if err != nil {
			return false
		}
		return bytes.Equal(got, content)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPServer(t *testing.T) {
	r := NewRepository("cms.cern.ch")
	tx := r.Begin()
	tx.AddFile("/v1/lib.so", []byte("library bytes"))
	tx.Commit()
	srv := NewServer(r)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Manifest.
	resp, err := http.Get(ts.URL + "/cvmfs/cms.cern.ch/.cvmfspublished")
	if err != nil {
		t.Fatal(err)
	}
	var pub Published
	json.NewDecoder(resp.Body).Decode(&pub)
	resp.Body.Close()
	if pub.Root != r.RootHash() || pub.Revision != r.Revision() {
		t.Fatalf("manifest = %+v", pub)
	}

	// Object fetch.
	st, _ := r.Lookup("/v1/lib.so")
	resp, err = http.Get(ts.URL + "/cvmfs/cms.cern.ch/data/" + st.Hash)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "library bytes" {
		t.Fatalf("object body = %q", body)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Errorf("data response not immutable-cacheable: %q", cc)
	}
	if srv.Requests() != 1 || srv.BytesServed() != 13 {
		t.Errorf("accounting: %d reqs, %d bytes", srv.Requests(), srv.BytesServed())
	}

	// Missing object.
	resp, _ = http.Get(ts.URL + "/cvmfs/cms.cern.ch/data/deadbeef")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing object status = %d", resp.StatusCode)
	}
	// Wrong repo name.
	resp, _ = http.Get(ts.URL + "/cvmfs/other.cern.ch/.cvmfspublished")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("wrong repo status = %d", resp.StatusCode)
	}
}

func TestPublishRelease(t *testing.T) {
	r := NewRepository("cms.cern.ch")
	cfg := TestRelease("CMSSW_7_4_0")
	paths, err := PublishRelease(r, cfg, stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 26 {
		t.Fatalf("published %d paths", len(paths))
	}
	for _, p := range paths {
		if _, err := r.ReadFile(p); err != nil {
			t.Errorf("published path unreadable: %s: %v", p, err)
		}
	}
	st, err := r.Lookup("/CMSSW_7_4_0")
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.WorkingSetBytes()
	if st.Size != want {
		t.Errorf("release size = %d, want %d", st.Size, want)
	}
}

func TestPublishReleaseUniqueContent(t *testing.T) {
	r := NewRepository("cms.cern.ch")
	_, err := PublishRelease(r, TestRelease("V1"), stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	// Each library must hash distinctly (content fill is randomised).
	h1, _ := r.Lookup("/V1/lib/libcms0000.so")
	h2, _ := r.Lookup("/V1/lib/libcms0001.so")
	if h1.Hash == h2.Hash {
		t.Error("two libraries share a hash; content fill broken")
	}
}
