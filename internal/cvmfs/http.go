package cvmfs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// Server exposes a Repository over HTTP using a layout modelled on real
// CVMFS stratum servers:
//
//	GET /cvmfs/<name>/.cvmfspublished   → JSON {root, revision}
//	GET /cvmfs/<name>/data/<hash>       → raw object bytes
//
// Because objects are immutable and named by content, every data response
// carries aggressive cache headers; this is what lets squid proxies absorb
// nearly all repository load.
type Server struct {
	repo *Repository
	// Requests counts object requests served (monitoring).
	requests atomic.Int64
	// BytesServed counts payload bytes (monitoring).
	bytesServed atomic.Int64
}

// NewServer returns an HTTP server for repo.
func NewServer(repo *Repository) *Server { return &Server{repo: repo} }

// Published is the body of the .cvmfspublished manifest.
type Published struct {
	Root     string `json:"root"`
	Revision int    `json:"revision"`
}

// Requests returns the number of object requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// BytesServed returns the number of payload bytes served.
func (s *Server) BytesServed() int64 { return s.bytesServed.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	prefix := "/cvmfs/" + s.repo.Name() + "/"
	if !strings.HasPrefix(r.URL.Path, prefix) {
		http.NotFound(w, r)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, prefix)
	switch {
	case rest == ".cvmfspublished":
		// The manifest is the one mutable resource; it must not be cached.
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Published{Root: s.repo.RootHash(), Revision: s.repo.Revision()})
	case strings.HasPrefix(rest, "data/"):
		hash := strings.TrimPrefix(rest, "data/")
		data, err := s.repo.Object(hash)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		s.requests.Add(1)
		s.bytesServed.Add(int64(len(data)))
		// Immutable: cacheable forever.
		w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		if r.Method == http.MethodHead {
			return
		}
		w.Write(data)
	default:
		http.NotFound(w, r)
	}
}
