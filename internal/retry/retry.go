// Package retry provides the bounded exponential backoff with jitter
// used by Lobster's client paths (chirp, xrootd, squid origin fetches,
// worker staging). The paper's environment loses workers and drops
// connections as a matter of course; related work (Sobie et al.,
// the LIGO/OSG adaptation) attributes most recovered job failures to
// retry policy at the transfer layer — so transient errors must be
// retried with backoff, and only genuinely permanent errors (protocol
// violations, server-reported failures) may surface on first strike.
//
// Determinism: jitter is drawn from a seeded splitmix64 walk, so the
// same Policy produces the same delay sequence — chaos tests replay
// byte-identical storms, and two clients with different seeds still
// decorrelate their retries.
package retry

import (
	"errors"
	"fmt"
	"time"
)

// Policy bounds a retry loop. The zero Policy performs exactly one
// attempt (no retries), so embedding a Policy field is free until
// configured.
type Policy struct {
	// MaxAttempts caps total attempts (first try included). 0 or 1
	// means no retries.
	MaxAttempts int
	// BaseDelay seeds the exponential schedule (default 10ms when
	// retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps any single backoff sleep (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter]
	// times its nominal value. Values outside [0,1) (including the
	// zero value) normalise to 0.2.
	Jitter float64
	// Seed drives the deterministic jitter stream.
	Seed uint64
	// Sleep replaces time.Sleep (tests make backoff free). Nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

// Enabled reports whether the policy will ever retry.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// norm fills defaults for a policy that has retries enabled.
func (p Policy) norm() Policy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Delay returns the backoff before attempt n+1 (n counts completed
// attempts, from 1): min(MaxDelay, Base·Mult^(n-1)) spread by the
// deterministic jitter draw for n.
func (p Policy) Delay(n int) time.Duration {
	p = p.norm()
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		u := unit(p.Seed + uint64(n)) // [0,1)
		d *= 1 - p.Jitter + 2*p.Jitter*u
	}
	return time.Duration(d)
}

// unit maps x to [0,1) via splitmix64.
func unit(x uint64) float64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Do runs fn up to MaxAttempts times, sleeping the backoff schedule
// between attempts. It stops early on success or on a permanent error.
// The returned error is the last attempt's error wrapped in *Error
// (recording the attempt count); the whole chain — including any
// Permanent marker — stays reachable through errors.Is/As, so outer
// retry loops see the same classification this one did.
func (p Policy) Do(fn func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	if attempts > 1 {
		p = p.norm()
	}
	var err error
	for n := 1; ; n++ {
		err = fn()
		if err == nil {
			return nil
		}
		if IsPermanent(err) || n >= attempts {
			return &Error{Attempts: n, Err: err}
		}
		p.Sleep(p.Delay(n))
	}
}

// Error wraps the final error of an exhausted (or permanently failed)
// retry loop with its attempt count.
type Error struct {
	Attempts int
	Err      error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("after %d attempts: %v", e.Attempts, e.Err)
	}
	return e.Err.Error()
}

// Unwrap exposes the final cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// ErrPermanent is the sentinel permanent errors match via errors.Is.
var ErrPermanent = errors.New("permanent error")

func (p *permanentError) Is(target error) bool { return target == ErrPermanent }

// Permanent marks err as permanent: Do will not retry past it. A nil
// err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	return errors.Is(err, ErrPermanent)
}
