package retry

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	err := Policy{}.Do(func() error { calls++; return errors.New("boom") })
	if calls != 1 {
		t.Fatalf("attempts = %d, want 1", calls)
	}
	var re *Error
	if !errors.As(err, &re) || re.Attempts != 1 {
		t.Fatalf("err = %v", err)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	cause := errors.New("bad request")
	calls := 0
	p := Policy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	err := p.Do(func() error { calls++; return Permanent(cause) })
	if calls != 1 {
		t.Fatalf("permanent error retried: %d attempts", calls)
	}
	// The final error still matches the cause, not just the marker.
	if !errors.Is(err, cause) {
		t.Fatalf("err %v does not match cause", err)
	}
}

func TestIsPermanentThroughWrapping(t *testing.T) {
	err := fmt.Errorf("op failed: %w", Permanent(errors.New("denied")))
	if !IsPermanent(err) {
		t.Fatal("wrapped permanent error not classified")
	}
	if !errors.Is(err, ErrPermanent) {
		t.Fatal("errors.Is(ErrPermanent) failed")
	}
	if IsPermanent(errors.New("plain")) {
		t.Fatal("plain error classified permanent")
	}
}

func TestExhaustionReportsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 4, Sleep: func(time.Duration) {}}
	cause := errors.New("still down")
	err := p.Do(func() error { return cause })
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("err = %T", err)
	}
	if re.Attempts != 4 || !errors.Is(err, cause) {
		t.Fatalf("err = %+v", re)
	}
}

func TestDelayScheduleDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 200 * time.Millisecond, Seed: 7}
	q := p // identical policy, identical schedule
	for n := 1; n <= 8; n++ {
		if p.Delay(n) != q.Delay(n) {
			t.Fatalf("delay(%d) not deterministic", n)
		}
	}
	// A different seed decorrelates the jitter.
	r := p
	r.Seed = 8
	same := true
	for n := 1; n <= 8; n++ {
		if p.Delay(n) != r.Delay(n) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter")
	}
}

func TestDelayBounded(t *testing.T) {
	p := Policy{MaxAttempts: 20, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond, Jitter: 0.2}
	for n := 1; n <= 20; n++ {
		d := p.Delay(n)
		if d <= 0 {
			t.Fatalf("delay(%d) = %v", n, d)
		}
		if d > time.Duration(float64(100*time.Millisecond)*1.2)+time.Millisecond {
			t.Fatalf("delay(%d) = %v exceeds cap+jitter", n, d)
		}
	}
}
