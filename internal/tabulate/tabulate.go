// Package tabulate renders the tables and timeline series the benchmark
// harness and command-line tools print: fixed-width ASCII tables, horizontal
// bar charts for per-bin counts, and human-readable quantities.
package tabulate

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends one row; values are formatted with %v.
func (t *Table) Row(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = FormatFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers plainly, others with
// enough precision to be useful.
func FormatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e12 {
		return fmt.Sprintf("%.0f", x)
	}
	if math.Abs(x) >= 1000 {
		return fmt.Sprintf("%.1f", x)
	}
	return fmt.Sprintf("%.3g", x)
}

// Render returns the formatted table.
func (t *Table) Render() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		var sep []string
		for i := 0; i < cols; i++ {
			sep = append(sep, strings.Repeat("-", widths[i]))
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bytes renders a byte quantity with binary units.
func Bytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB"}
	i := 0
	for math.Abs(b) >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0f %s", b, units[i])
	}
	return fmt.Sprintf("%.2f %s", b, units[i])
}

// Duration renders seconds as h/m/s.
func Duration(seconds float64) string {
	switch {
	case math.Abs(seconds) >= 3600:
		return fmt.Sprintf("%.1fh", seconds/3600)
	case math.Abs(seconds) >= 60:
		return fmt.Sprintf("%.1fm", seconds/60)
	default:
		return fmt.Sprintf("%.1fs", seconds)
	}
}

// Bars renders one horizontal bar per (label, value) pair, scaled to width.
func Bars(labels []string, values []float64, width int) string {
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%-*s| %s\n", maxL, labels[i], width, strings.Repeat("#", n), FormatFloat(v))
	}
	return b.String()
}

// Series renders a numeric series as one bar row per bin with a time label.
func Series(times, values []float64, width int, timeUnit string, scale float64) string {
	labels := make([]string, len(times))
	for i, t := range times {
		labels[i] = fmt.Sprintf("%6.1f%s", t/scale, timeUnit)
	}
	return Bars(labels, values, width)
}

// sparkRunes are the eight block heights Spark maps values onto.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders a numeric series as a one-line unicode sparkline, each
// value scaled between the series' min and max. A flat series renders
// at mid-height; an empty one renders empty.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}
