package tabulate

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Phases", "Task Phase", "Time (h)", "Fraction (%)")
	tb.Row("Task CPU Time", 171036.0, 53.4)
	tb.Row("Task I/O Time", 65356.0, 20.4)
	out := tb.Render()
	if !strings.Contains(out, "Phases") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Task CPU Time") || !strings.Contains(out, "171036") {
		t.Errorf("content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: header and first row start the second column at the
	// same offset.
	hIdx := strings.Index(lines[1], "Time (h)")
	rIdx := strings.Index(lines[3], "171036")
	if hIdx != rIdx {
		t.Errorf("misaligned columns (%d vs %d):\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.Row("x")
	out := tb.Render()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title produced a blank line")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		171036:  "171036",
		1234.5:  "1234.5",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[float64]string{
		512:    "512 B",
		2048:   "2.00 KiB",
		1.5e9:  "1.40 GiB",
		3.2e13: "29.10 TiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestDuration(t *testing.T) {
	if Duration(30) != "30.0s" || Duration(90) != "1.5m" || Duration(7200) != "2.0h" {
		t.Errorf("durations: %s %s %s", Duration(30), Duration(90), Duration(7200))
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{10, 5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"x"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Error("zero value produced a bar")
	}
}

func TestSeries(t *testing.T) {
	out := Series([]float64{0, 3600}, []float64{1, 2}, 10, "h", 3600)
	if !strings.Contains(out, "0.0h") || !strings.Contains(out, "1.0h") {
		t.Errorf("time labels missing:\n%s", out)
	}
}

func TestSpark(t *testing.T) {
	cases := []struct {
		in   []float64
		want string
	}{
		{nil, ""},
		{[]float64{5}, "▅"},         // flat → mid-height
		{[]float64{3, 3, 3}, "▅▅▅"}, // flat run
		{[]float64{0, 1, 2, 3, 4, 5, 6, 7}, "▁▂▃▄▅▆▇█"}, // full ramp
		{[]float64{7, 0}, "█▁"},
		{[]float64{-1, 0, 1}, "▁▄█"}, // negatives scale too
	}
	for _, c := range cases {
		if got := Spark(c.in); got != c.want {
			t.Errorf("Spark(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
