//go:build ignore

// Generates the checked-in FuzzReplicaWire seed corpus: one file per
// message shape, plus corrupted variants. Run from the package dir:
//
//	go run testdata/gen_corpus.go
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"lobster/internal/replica"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzReplicaWire")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Println(name, len(data), "bytes")
	}
	enc := func(m *replica.Message) []byte {
		var buf bytes.Buffer
		if _, err := replica.WriteMessage(&buf, m, nil); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	vote := enc(&replica.Message{Type: replica.MsgVote, From: 2, To: 1, Term: 5, LogIndex: 17, LogTerm: 4})
	write("vote", vote)
	write("vote-resp", enc(&replica.Message{Type: replica.MsgVoteResp, From: 1, To: 2, Term: 5, Reject: true}))
	write("heartbeat", enc(&replica.Message{Type: replica.MsgApp, From: 3, To: 1, Term: 6, Commit: 17}))
	write("append-batch", enc(&replica.Message{
		Type: replica.MsgApp, From: 3, To: 2, Term: 6, LogIndex: 17, LogTerm: 4, Commit: 16,
		Entries: []replica.Entry{
			{Index: 18, Term: 6, Data: []byte(`{"t":1.25,"type":"ha_submit","data":{"func":"echo","tag":"pre-0"}}`)},
			{Index: 19, Term: 6, Data: []byte(`{"t":1.5,"type":"task","data":{"task_id":18,"ha_id":18}}`)},
			{Index: 20, Term: 6},
		},
	}))
	write("append-resp", enc(&replica.Message{Type: replica.MsgAppResp, From: 2, To: 3, Term: 6, LogIndex: 20}))

	// Corrupted variants: flipped payload byte (CRC fail), torn tail, and
	// two frames back to back with the second torn.
	bad := append([]byte(nil), vote...)
	bad[len(bad)-1] ^= 0xff
	write("crc-mismatch", bad)
	write("torn-frame", vote[:len(vote)-3])
	write("frame-then-torn", append(append([]byte(nil), vote...), vote[:9]...))
}
