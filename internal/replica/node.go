// Package replica is Lobster's control-plane replication layer: a small,
// deterministic, stdlib-only leader-election and log-replication protocol
// (raft-shaped: terms, votes, majority commit) that streams the master's
// event log to standby masters. Standbys tail the committed log and keep a
// warm task DB via monitor.ReplayLog; when the leader dies they elect a
// successor, replay the committed suffix, and take over dispatch with zero
// committed-entry loss.
//
// The protocol core (Node) is a pure, tick-driven state machine: it never
// reads a clock, never spawns a goroutine, and draws election jitter from a
// seeded splitmix64 stream — so the identical code runs on the real plane
// (Group drives it from a wall-clock ticker over TCP) and on the simulation
// plane (RunSim drives it from the discrete-event kernel) bit-for-bit
// deterministically from a seed. That determinism is what makes the
// election model checker and the golden failover transcripts possible.
package replica

import "fmt"

// Role is a node's current protocol role.
type Role uint8

// Protocol roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

// String returns the lower-case role name used in events and transcripts.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Entry is one replicated log record. Data is opaque to the protocol; the
// HA master stores one JSONL event-log line per entry so a standby's
// committed log is directly replayable by monitor.ReplayLog.
type Entry struct {
	Index uint64 `json:"index"`
	Term  uint64 `json:"term"`
	Data  []byte `json:"data,omitempty"`
}

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	// MsgVote is a candidate requesting a vote. LogIndex/LogTerm carry the
	// candidate's last entry so voters enforce the up-to-date rule.
	MsgVote MsgType = iota + 1
	// MsgVoteResp answers MsgVote; Reject means the vote was withheld.
	MsgVoteResp
	// MsgApp replicates entries (and doubles as the heartbeat when empty).
	// LogIndex/LogTerm identify the entry preceding Entries; Commit is the
	// leader's commit index.
	MsgApp
	// MsgAppResp answers MsgApp. On success LogIndex is the follower's new
	// match index; on rejection it is the follower's last index, the
	// leader's backtracking hint.
	MsgAppResp
)

// String returns the message-type name used in transcripts.
func (t MsgType) String() string {
	switch t {
	case MsgVote:
		return "vote"
	case MsgVoteResp:
		return "vote_resp"
	case MsgApp:
		return "app"
	case MsgAppResp:
		return "app_resp"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Message is one protocol message between peers.
type Message struct {
	Type     MsgType
	From, To uint64
	Term     uint64
	LogIndex uint64
	LogTerm  uint64
	Commit   uint64
	Reject   bool
	Entries  []Entry
}

// Config configures a Node.
type Config struct {
	// ID is this node's member identity (non-zero).
	ID uint64
	// Peers lists every cluster member, including ID. Order fixes the
	// deterministic broadcast order; callers should pass the same slice on
	// every node (sorted ascending by convention).
	Peers []uint64
	// Seed feeds the election-jitter stream. Different nodes should use
	// different seeds (Group derives seed^ID) or every timeout collides.
	Seed uint64
	// ElectionTicks is the base election timeout in ticks (default 10);
	// the effective timeout adds a deterministic jitter in [0, ElectionTicks).
	ElectionTicks int
	// HeartbeatTicks is the leader's heartbeat interval in ticks (default 1).
	HeartbeatTicks int
	// MaxBatch bounds entries per MsgApp (default 64, matching the wq
	// dispatch batch width).
	MaxBatch int
}

// Node is the deterministic protocol state machine. It is not safe for
// concurrent use: the Group (real plane) and RunSim (sim plane) each drive
// it from a single goroutine. Every method returns the messages to send;
// the caller owns transport, timing, and persistence.
type Node struct {
	cfg Config

	role   Role
	term   uint64
	vote   uint64 // candidate voted for in term; 0 = none
	leader uint64 // leader known this term; 0 = unknown

	// log[i] has Index i+1. The whole log stays in memory (entries are
	// event-log lines; a run's control history is small next to its data).
	log    []Entry
	commit uint64
	taken  uint64 // entries handed out via TakeCommitted

	elapsed int // ticks since the last election-timer reset or heartbeat
	timeout int // current jittered election timeout, in ticks

	votes map[uint64]bool   // votes granted to this candidate
	next  map[uint64]uint64 // per-peer next index to send (leader)
	match map[uint64]uint64 // per-peer highest replicated index (leader)

	// dirty marks unpersisted hard state (term/vote); dirtyFrom is the
	// lowest log index changed since the last persist (0 = none). The
	// Group writes both to the store WAL before releasing messages to the
	// wire — the raft persistence barrier.
	dirty     bool
	dirtyFrom uint64
}

// HardState is the durable part of a node's state: what must survive a
// restart for safety (a node that forgets its vote can vote twice in a
// term; a node that forgets entries can un-commit them).
type HardState struct {
	Term uint64 `json:"term"`
	Vote uint64 `json:"vote"`
}

// NewNode builds a node. Restored hard state and log entries (from the
// store WAL) may be passed to resume a restarted member; pass the zero
// HardState and nil entries for a fresh node.
func NewNode(cfg Config, hs HardState, entries []Entry) *Node {
	if cfg.ElectionTicks <= 0 {
		cfg.ElectionTicks = 10
	}
	if cfg.HeartbeatTicks <= 0 {
		cfg.HeartbeatTicks = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	n := &Node{
		cfg:  cfg,
		term: hs.Term,
		vote: hs.Vote,
		log:  append([]Entry(nil), entries...),
	}
	n.resetTimer()
	return n
}

// quorum is the majority size for the configured membership.
func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

// splitmix64 is the avalanche mix shared with the fault plane: full-period
// and call-order independent, so jitter is a pure function of (seed, term).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// resetTimer restarts the election countdown with fresh jitter. Jitter is
// keyed by (seed, id, term) so every (node, term) pair redraws — the
// split-vote escape hatch — yet identical runs redraw identically.
func (n *Node) resetTimer() {
	n.elapsed = 0
	h := splitmix64(n.cfg.Seed ^ n.cfg.ID*0x9E3779B97F4A7C15 ^ n.term*0xBF58476D1CE4E5B9)
	n.timeout = n.cfg.ElectionTicks + int(h%uint64(n.cfg.ElectionTicks))
}

// Role returns the node's current role.
func (n *Node) Role() Role { return n.role }

// Term returns the node's current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the leader known for the current term (0 if unknown).
func (n *Node) Leader() uint64 { return n.leader }

// Commit returns the commit index.
func (n *Node) Commit() uint64 { return n.commit }

// LastIndex returns the index of the last log entry.
func (n *Node) LastIndex() uint64 { return uint64(len(n.log)) }

// HardState returns the node's durable state for persistence.
func (n *Node) HardState() HardState { return HardState{Term: n.term, Vote: n.vote} }

// Entries returns the log suffix starting at index lo (1-based, inclusive).
// The returned slice aliases the node's log; callers must not mutate it.
func (n *Node) Entries(lo uint64) []Entry {
	if lo < 1 {
		lo = 1
	}
	if lo > uint64(len(n.log)) {
		return nil
	}
	return n.log[lo-1:]
}

// TermAt returns the term of the entry at index (0 for index 0 or out of
// range).
func (n *Node) TermAt(index uint64) uint64 {
	if index == 0 || index > uint64(len(n.log)) {
		return 0
	}
	return n.log[index-1].Term
}

// TakeDirty returns and clears the persistence obligations accumulated
// since the last call: the hard state (meaningful when changed is true)
// and the lowest changed log index (0 when no entries changed). The Group
// writes these to the store WAL before sending any message produced by
// the same step — the raft persistence barrier.
func (n *Node) TakeDirty() (hs HardState, logFrom uint64, changed bool) {
	if !n.dirty && n.dirtyFrom == 0 {
		return HardState{}, 0, false
	}
	hs, logFrom = n.HardState(), n.dirtyFrom
	n.dirty, n.dirtyFrom = false, 0
	return hs, logFrom, true
}

// markLog records that log entries from index on changed.
func (n *Node) markLog(from uint64) {
	if n.dirtyFrom == 0 || from < n.dirtyFrom {
		n.dirtyFrom = from
	}
}

// TakeCommitted returns the newly committed entries since the last call,
// in log order. The HA master applies them to its task state; a standby
// additionally tails them into its local event log.
func (n *Node) TakeCommitted() []Entry {
	if n.taken >= n.commit {
		return nil
	}
	out := n.log[n.taken:n.commit]
	n.taken = n.commit
	return out
}

// lastTerm returns the term of the last log entry.
func (n *Node) lastTerm() uint64 { return n.TermAt(uint64(len(n.log))) }

// Tick advances the node by one logical tick and returns messages to send.
func (n *Node) Tick() []Message {
	n.elapsed++
	if n.role == Leader {
		if n.elapsed >= n.cfg.HeartbeatTicks {
			n.elapsed = 0
			return n.broadcastApp()
		}
		return nil
	}
	if n.elapsed >= n.timeout {
		return n.campaign()
	}
	return nil
}

// campaign starts an election for the next term.
func (n *Node) campaign() []Message {
	n.term++
	n.role = Candidate
	n.vote = n.cfg.ID
	n.leader = 0
	n.dirty = true
	n.votes = map[uint64]bool{n.cfg.ID: true}
	n.resetTimer()
	if len(n.votes) >= n.quorum() { // single-member cluster
		return n.becomeLeader()
	}
	msgs := make([]Message, 0, len(n.cfg.Peers)-1)
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		msgs = append(msgs, Message{
			Type: MsgVote, From: n.cfg.ID, To: p, Term: n.term,
			LogIndex: n.LastIndex(), LogTerm: n.lastTerm(),
		})
	}
	return msgs
}

// becomeLeader transitions to leadership and appends the term-barrier
// entry: an empty record of the new term whose commit both (a) advances
// the commit index over the previous leader's tail (the current-term
// commit restriction) and (b) tells the HA master that the committed
// suffix is fully applied and takeover may dispatch.
func (n *Node) becomeLeader() []Message {
	n.role = Leader
	n.leader = n.cfg.ID
	n.elapsed = 0
	n.next = make(map[uint64]uint64, len(n.cfg.Peers))
	n.match = make(map[uint64]uint64, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		n.next[p] = n.LastIndex() + 1
		n.match[p] = 0
	}
	n.log = append(n.log, Entry{Index: n.LastIndex() + 1, Term: n.term})
	n.dirty = true
	n.markLog(n.LastIndex())
	n.match[n.cfg.ID] = n.LastIndex()
	n.maybeCommit()
	return n.broadcastApp()
}

// Propose appends data to the log if this node is leader, returning the
// assigned index and the replication messages. ok is false on a
// non-leader (the caller redirects to the known leader).
func (n *Node) Propose(data []byte) (index uint64, msgs []Message, ok bool) {
	if n.role != Leader {
		return 0, nil, false
	}
	n.log = append(n.log, Entry{Index: n.LastIndex() + 1, Term: n.term, Data: data})
	n.dirty = true
	n.markLog(n.LastIndex())
	n.match[n.cfg.ID] = n.LastIndex()
	n.maybeCommit() // single-member cluster commits immediately
	return n.LastIndex(), n.broadcastApp(), true
}

// broadcastApp builds one MsgApp per peer from its next index.
func (n *Node) broadcastApp() []Message {
	msgs := make([]Message, 0, len(n.cfg.Peers)-1)
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		msgs = append(msgs, n.appTo(p))
	}
	return msgs
}

// appTo builds the MsgApp for one peer: entries from its next index,
// bounded by MaxBatch, preceded by the (index, term) consistency probe.
func (n *Node) appTo(p uint64) Message {
	next := n.next[p]
	if next < 1 {
		next = 1
	}
	prev := next - 1
	m := Message{
		Type: MsgApp, From: n.cfg.ID, To: p, Term: n.term,
		LogIndex: prev, LogTerm: n.TermAt(prev), Commit: n.commit,
	}
	if next <= n.LastIndex() {
		hi := next + uint64(n.cfg.MaxBatch)
		if hi > n.LastIndex()+1 {
			hi = n.LastIndex() + 1
		}
		m.Entries = n.log[next-1 : hi-1]
	}
	return m
}

// maybeCommit advances the commit index to the highest entry of the
// current term replicated on a majority. Entries from older terms commit
// only transitively (the raft commit restriction; figure 8 of the paper).
func (n *Node) maybeCommit() bool {
	advanced := false
	for idx := n.commit + 1; idx <= n.LastIndex(); idx++ {
		if n.TermAt(idx) != n.term {
			continue
		}
		count := 0
		for _, p := range n.cfg.Peers {
			if n.match[p] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commit = idx
			advanced = true
		}
	}
	return advanced
}

// stepDown reverts to follower in term, optionally recording the leader.
func (n *Node) stepDown(term, leader uint64) {
	if term > n.term {
		n.term = term
		n.vote = 0
		n.dirty = true
	}
	n.role = Follower
	n.leader = leader
	n.votes = nil
	n.next, n.match = nil, nil
	n.resetTimer()
}

// Step processes one incoming message and returns messages to send.
func (n *Node) Step(m Message) []Message {
	if m.Term > n.term {
		// Higher term: adopt it. Only an append names the sender leader.
		leader := uint64(0)
		if m.Type == MsgApp {
			leader = m.From
		}
		n.stepDown(m.Term, leader)
	}
	switch m.Type {
	case MsgVote:
		return n.stepVote(m)
	case MsgVoteResp:
		return n.stepVoteResp(m)
	case MsgApp:
		return n.stepApp(m)
	case MsgAppResp:
		return n.stepAppResp(m)
	}
	return nil // unknown message types are ignored (forward-extensible)
}

// stepVote answers a vote request: grant iff the term is current, no
// conflicting vote exists this term, and the candidate's log is at least
// as up to date as ours.
func (n *Node) stepVote(m Message) []Message {
	resp := Message{Type: MsgVoteResp, From: n.cfg.ID, To: m.From, Term: n.term, Reject: true}
	if m.Term < n.term {
		return []Message{resp}
	}
	upToDate := m.LogTerm > n.lastTerm() ||
		(m.LogTerm == n.lastTerm() && m.LogIndex >= n.LastIndex())
	if (n.vote == 0 || n.vote == m.From) && upToDate && n.role == Follower {
		n.vote = m.From
		n.dirty = true
		n.resetTimer() // granting a vote defers our own candidacy
		resp.Reject = false
	}
	return []Message{resp}
}

// stepVoteResp tallies a vote; a majority wins the term.
func (n *Node) stepVoteResp(m Message) []Message {
	if n.role != Candidate || m.Term != n.term || m.Reject {
		return nil
	}
	n.votes[m.From] = true
	if len(n.votes) >= n.quorum() {
		return n.becomeLeader()
	}
	return nil
}

// stepApp handles replication: verify the consistency probe, truncate any
// conflicting suffix, append, and advance the local commit index.
func (n *Node) stepApp(m Message) []Message {
	resp := Message{Type: MsgAppResp, From: n.cfg.ID, To: m.From, Term: n.term}
	if m.Term < n.term {
		resp.Reject = true
		resp.LogIndex = n.LastIndex()
		return []Message{resp}
	}
	// A current-term append asserts m.From's leadership for this term.
	if n.role != Follower || n.leader != m.From {
		n.stepDown(m.Term, m.From)
	}
	n.elapsed = 0
	if m.LogIndex > n.LastIndex() || n.TermAt(m.LogIndex) != m.LogTerm {
		// Log mismatch at the probe point: reject with our last index so
		// the leader backs next up past the gap in one round per term gap.
		resp.Reject = true
		resp.LogIndex = n.LastIndex()
		return []Message{resp}
	}
	for i, e := range m.Entries {
		if e.Index <= n.LastIndex() {
			if n.TermAt(e.Index) == e.Term {
				continue // already have it
			}
			// Conflict: a stale suffix from a deposed leader. Truncate it
			// (it is necessarily uncommitted) and take the new entries.
			n.log = n.log[:e.Index-1]
			if n.taken > uint64(len(n.log)) {
				n.taken = uint64(len(n.log))
			}
		}
		n.markLog(e.Index)
		n.log = append(n.log, m.Entries[i:]...)
		n.dirty = true
		break
	}
	lastNew := m.LogIndex + uint64(len(m.Entries))
	if m.Commit > n.commit {
		n.commit = min(m.Commit, lastNew)
	}
	resp.LogIndex = lastNew
	return []Message{resp}
}

// stepAppResp advances (or backs up) a peer's replication state.
func (n *Node) stepAppResp(m Message) []Message {
	if n.role != Leader || m.Term != n.term {
		return nil
	}
	if m.Reject {
		// Back up to the peer's last index (or one step) and reprobe.
		next := n.next[m.From]
		if next > m.LogIndex+1 {
			next = m.LogIndex + 1
		} else if next > 1 {
			next--
		}
		n.next[m.From] = next
		return []Message{n.appTo(m.From)}
	}
	if m.LogIndex > n.match[m.From] {
		n.match[m.From] = m.LogIndex
	}
	if n.next[m.From] < m.LogIndex+1 {
		n.next[m.From] = m.LogIndex + 1
	}
	var msgs []Message
	if n.maybeCommit() {
		// Publish the new commit index immediately; the heartbeat would
		// get there eventually but failover latency budgets are ticks.
		msgs = n.broadcastApp()
	} else if n.next[m.From] <= n.LastIndex() {
		msgs = append(msgs, n.appTo(m.From)) // stream the rest of the log
	}
	return msgs
}
