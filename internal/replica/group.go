package replica

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/store"
	"lobster/internal/telemetry"
)

// RoleChange is one observed election transition, emitted as an "election"
// event on the local event log (monitor.ReplayLog recovers these) and
// delivered to the OnRole callback.
type RoleChange struct {
	Node   uint64 `json:"node"`
	Term   uint64 `json:"term"`
	Role   string `json:"role"`
	Leader uint64 `json:"leader,omitempty"`
}

// GroupConfig configures a Group.
type GroupConfig struct {
	// ID is this member's identity; Peers maps every member (including
	// ID) to its replica transport address.
	ID    uint64
	Peers map[uint64]string
	// Seed drives election jitter; the group derives a per-node stream
	// from Seed^ID so members sharing a config do not collide.
	Seed uint64
	// TickEvery is the wall-clock tick period (default 10ms). Election
	// timeouts are ElectionTicks..2×ElectionTicks ticks.
	TickEvery                    time.Duration
	ElectionTicks, HeartbeatTicks int
	// Dir, when non-empty, persists the node's hard state and log through
	// the store WAL so a restarted member rejoins with its vote and
	// entries intact.
	Dir string
	// Apply receives committed entries in log order, from the group loop
	// goroutine. It must not block for long: dispatch work, don't do it.
	Apply func(Entry)
	// OnRole observes election transitions (same goroutine as Apply).
	OnRole func(RoleChange)

	Registry *telemetry.Registry
	EventLog *telemetry.EventLog
	Fault    *faultinject.Injector
}

// Group runs one replica member on the real plane: a wall-clock ticker and
// a TCP transport drive the deterministic Node from a single loop
// goroutine, persisting hard state through the store WAL before any
// message leaves the machine.
type Group struct {
	cfg  GroupConfig
	node *Node
	tr   *Transport
	db   *store.DB

	inbox   chan Message
	propose chan proposeReq
	waitc   chan waitReq
	waiters []waitReq

	applied       uint64
	persistedLast uint64

	mu      sync.Mutex // guards role/term/leader mirrors for accessors
	role    Role
	term    uint64
	leader  uint64
	applyMu uint64 // applied mirror for accessors

	elections *telemetry.Counter

	closed  chan struct{}
	closeMu sync.Mutex
	wg      sync.WaitGroup
}

type proposeReq struct {
	data  []byte
	reply chan proposeResp
}

type proposeResp struct {
	index, term uint64
	err         error
}

type waitReq struct {
	index, term uint64
	reply       chan error
}

// ErrNotLeader reports a proposal sent to a non-leader member.
var ErrNotLeader = errors.New("replica: not leader")

// ErrSuperseded reports a proposal overwritten by a new leader before it
// committed: the entry is gone and the caller must resubmit.
var ErrSuperseded = errors.New("replica: proposal superseded by new leader")

// ErrClosed reports an operation on a closed group.
var ErrClosed = errors.New("replica: group closed")

// Store tables for the durable node state.
const (
	metaTable = "replica_meta"
	logTable  = "replica_log"
	metaKey   = "hard"
)

// StartGroup starts one member. The transport listens on
// cfg.Peers[cfg.ID]; pass "127.0.0.1:0" style addresses in tests and read
// back Addr.
func StartGroup(cfg GroupConfig) (*Group, error) {
	if cfg.ID == 0 || cfg.Peers[cfg.ID] == "" {
		return nil, fmt.Errorf("replica: member %d needs an address", cfg.ID)
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	ids := make([]uint64, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var hs HardState
	var entries []Entry
	var db *store.DB
	if cfg.Dir != "" {
		var err error
		db, err = store.Open(cfg.Dir)
		if err != nil {
			return nil, fmt.Errorf("replica: opening state dir: %w", err)
		}
		if db.Has(metaTable, metaKey) {
			if err := db.GetJSON(metaTable, metaKey, &hs); err != nil {
				db.Close()
				return nil, err
			}
		}
		keys := db.Keys(logTable)
		sort.Strings(keys)
		for _, k := range keys {
			var e Entry
			if err := db.GetJSON(logTable, k, &e); err != nil {
				db.Close()
				return nil, err
			}
			entries = append(entries, e)
		}
	}

	g := &Group{
		cfg: cfg,
		node: NewNode(Config{
			ID: cfg.ID, Peers: ids, Seed: cfg.Seed ^ cfg.ID,
			ElectionTicks: cfg.ElectionTicks, HeartbeatTicks: cfg.HeartbeatTicks,
		}, hs, entries),
		db:            db,
		inbox:         make(chan Message, 256),
		propose:       make(chan proposeReq),
		waitc:         make(chan waitReq, 16),
		closed:        make(chan struct{}),
		persistedLast: uint64(len(entries)),
	}
	g.term = hs.Term

	tr, err := NewTransport(cfg.ID, cfg.Peers, cfg.Fault, g.enqueue)
	if err != nil {
		if db != nil {
			db.Close()
		}
		return nil, err
	}
	g.tr = tr
	g.instrument()
	g.wg.Add(1)
	go g.loop()
	return g, nil
}

// enqueue funnels transport deliveries into the loop; a full inbox drops
// (ticks retransmit).
func (g *Group) enqueue(m Message) {
	select {
	case g.inbox <- m:
	case <-g.closed:
	default:
	}
}

// Addr returns the member's replica transport address.
func (g *Group) Addr() string { return g.tr.Addr() }

// instrument registers the member's gauges and counters. Series are
// labelled by node so a shared fleet registry holds every member.
func (g *Group) instrument() {
	reg := g.cfg.Registry
	if reg == nil {
		return
	}
	g.elections = reg.CounterVec("lobster_replica_elections_total",
		"Elections started (transitions to candidate).", "node").
		With(fmt.Sprint(g.cfg.ID))
	role := reg.GaugeFuncVec("lobster_replica_role",
		"Member role: 0 follower, 1 candidate, 2 leader.", "node")
	role.With(func() float64 { return float64(g.Role()) }, fmt.Sprint(g.cfg.ID))
	term := reg.GaugeFuncVec("lobster_replica_term",
		"Member's current election term.", "node")
	term.With(func() float64 { return float64(g.Term()) }, fmt.Sprint(g.cfg.ID))
	commit := reg.GaugeFuncVec("lobster_replica_applied_index",
		"Committed entries applied by this member.", "node")
	commit.With(func() float64 { return float64(g.Applied()) }, fmt.Sprint(g.cfg.ID))
	g.tr.Instrument(reg)
}

// Role returns the member's current role.
func (g *Group) Role() Role {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.role
}

// Term returns the member's current term.
func (g *Group) Term() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.term
}

// LeaderID returns the leader known for the current term (0 if unknown).
func (g *Group) LeaderID() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader
}

// Applied returns the number of committed entries applied so far.
func (g *Group) Applied() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.applyMu
}

// Propose submits data for replication, blocking until the entry commits
// (success), is superseded by another leader (ErrSuperseded), or the
// timeout passes. ErrNotLeader returns immediately on a non-leader.
func (g *Group) Propose(data []byte, timeout time.Duration) (uint64, error) {
	req := proposeReq{data: data, reply: make(chan proposeResp, 1)}
	select {
	case g.propose <- req:
	case <-g.closed:
		return 0, ErrClosed
	}
	var resp proposeResp
	select {
	case resp = <-req.reply:
	case <-g.closed:
		return 0, ErrClosed
	}
	if resp.err != nil {
		return 0, resp.err
	}
	if err := g.WaitCommitted(resp.index, resp.term, timeout); err != nil {
		return resp.index, err
	}
	return resp.index, nil
}

// WaitCommitted blocks until the entry at index commits with term (nil),
// commits with a different term (ErrSuperseded), or the timeout passes.
func (g *Group) WaitCommitted(index, term uint64, timeout time.Duration) error {
	req := waitReq{index: index, term: term, reply: make(chan error, 1)}
	select {
	case g.waitc <- req:
	case <-g.closed:
		return ErrClosed
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case err := <-req.reply:
		return err
	case <-timer:
		return fmt.Errorf("replica: commit wait for %d timed out", index)
	case <-g.closed:
		return ErrClosed
	}
}

// loop is the single goroutine that owns the node.
func (g *Group) loop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.TickEvery)
	defer ticker.Stop()
	for {
		var msgs []Message
		select {
		case <-g.closed:
			return
		case <-ticker.C:
			msgs = g.node.Tick()
		case m := <-g.inbox:
			msgs = g.node.Step(m)
		case req := <-g.propose:
			index, out, ok := g.node.Propose(req.data)
			if !ok {
				req.reply <- proposeResp{err: ErrNotLeader}
			} else {
				req.reply <- proposeResp{index: index, term: g.node.Term()}
			}
			msgs = out
		case req := <-g.waitc:
			g.waiters = append(g.waiters, req)
		}
		g.afterStep(msgs)
	}
}

// afterStep is the post-operation pipeline: persist, send, apply, observe.
// Persist-before-send is the protocol's safety requirement; apply and the
// role observation run after so callbacks see a durable state.
func (g *Group) afterStep(msgs []Message) {
	if hs, logFrom, changed := g.node.TakeDirty(); changed && g.db != nil {
		g.persist(hs, logFrom)
	}
	if len(msgs) > 0 {
		g.tr.Send(msgs)
	}
	for _, e := range g.node.TakeCommitted() {
		g.applied = e.Index
		if g.cfg.Apply != nil {
			g.cfg.Apply(e)
		}
	}
	g.mu.Lock()
	prevRole, prevTerm, prevLeader := g.role, g.term, g.leader
	g.role, g.term, g.leader = g.node.Role(), g.node.Term(), g.node.Leader()
	g.applyMu = g.applied
	g.mu.Unlock()
	// Leader discovery counts as a transition: a follower that grants a
	// vote learns the winner only from the first append, with role and
	// term unchanged — observers (redirects, the event log) need that.
	if prevRole != g.node.Role() || prevTerm != g.node.Term() || prevLeader != g.node.Leader() {
		rc := RoleChange{
			Node: g.cfg.ID, Term: g.node.Term(),
			Role: g.node.Role().String(), Leader: g.node.Leader(),
		}
		if g.node.Role() == Candidate && (prevRole != Candidate || prevTerm != g.node.Term()) {
			g.elections.Inc()
		}
		g.cfg.EventLog.Emit("election", rc)
		if g.cfg.OnRole != nil {
			g.cfg.OnRole(rc)
		}
	}
	g.settleWaiters()
}

// settleWaiters resolves commit waits that the latest step decided.
func (g *Group) settleWaiters() {
	if len(g.waiters) == 0 {
		return
	}
	kept := g.waiters[:0]
	for _, w := range g.waiters {
		switch {
		case g.node.Commit() >= w.index:
			if g.node.TermAt(w.index) == w.term {
				w.reply <- nil
			} else {
				w.reply <- ErrSuperseded
			}
		case g.node.LastIndex() >= w.index && g.node.TermAt(w.index) != w.term:
			w.reply <- ErrSuperseded // overwritten before committing
		case g.node.LastIndex() < w.index:
			w.reply <- ErrSuperseded // truncated away entirely
		default:
			kept = append(kept, w)
		}
	}
	g.waiters = kept
}

// persist writes hard state and changed log entries through the store WAL.
func (g *Group) persist(hs HardState, logFrom uint64) {
	g.db.PutJSON(metaTable, metaKey, hs)
	last := g.node.LastIndex()
	for idx := g.persistedLast; idx > last; idx-- {
		g.db.Delete(logTable, logKey(idx))
	}
	if logFrom > 0 {
		for _, e := range g.node.Entries(logFrom) {
			g.db.PutJSON(logTable, logKey(e.Index), e)
		}
	}
	g.persistedLast = last
}

func logKey(idx uint64) string { return fmt.Sprintf("%016x", idx) }

// Close stops the member: loop, transport, and state store.
func (g *Group) Close() error {
	g.closeMu.Lock()
	select {
	case <-g.closed:
		g.closeMu.Unlock()
		return nil
	default:
		close(g.closed)
	}
	g.closeMu.Unlock()
	err := g.tr.Close()
	g.wg.Wait()
	if g.db != nil {
		if cerr := g.db.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
