package replica

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// reserveAddrs grabs n distinct loopback addresses by listening and
// closing, so a cluster config can be built before any member starts.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// applySink collects applied entries per member.
type applySink struct {
	mu      sync.Mutex
	entries []Entry
}

func (s *applySink) apply(e Entry) {
	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
}

func (s *applySink) data() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, e := range s.entries {
		if len(e.Data) > 0 {
			out = append(out, string(e.Data))
		}
	}
	return out
}

func startTrio(t *testing.T, dirs []string) ([]*Group, []*applySink) {
	t.Helper()
	addrs := reserveAddrs(t, 3)
	peers := map[uint64]string{1: addrs[0], 2: addrs[1], 3: addrs[2]}
	groups := make([]*Group, 3)
	sinks := make([]*applySink, 3)
	for i := 0; i < 3; i++ {
		sink := &applySink{}
		cfg := GroupConfig{
			ID: uint64(i + 1), Peers: peers, Seed: 77,
			TickEvery: 2 * time.Millisecond, ElectionTicks: 10,
			Apply: sink.apply,
		}
		if dirs != nil {
			cfg.Dir = dirs[i]
		}
		g, err := StartGroup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
		sinks[i] = sink
	}
	return groups, sinks
}

func waitLeader(t *testing.T, groups []*Group, skip *Group) *Group {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, g := range groups {
			if g != skip && g != nil && g.Role() == Leader {
				return g
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return nil
}

func TestGroupElectProposeFailover(t *testing.T) {
	groups, sinks := startTrio(t, nil)
	defer func() {
		for _, g := range groups {
			if g != nil {
				g.Close()
			}
		}
	}()

	ldr := waitLeader(t, groups, nil)
	for i := 0; i < 20; i++ {
		if _, err := ldr.Propose([]byte(fmt.Sprintf("pre%d", i)), 5*time.Second); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}

	// Followers must reject proposals with a typed error.
	for _, g := range groups {
		if g.Role() != Leader {
			if _, err := g.Propose([]byte("nope"), time.Second); err != ErrNotLeader {
				t.Fatalf("follower propose returned %v, want ErrNotLeader", err)
			}
			break
		}
	}

	// Kill the leader abruptly; the survivors must elect and keep every
	// committed entry.
	var killIdx int
	for i, g := range groups {
		if g == ldr {
			killIdx = i
		}
	}
	ldr.Close()
	groups[killIdx] = nil
	next := waitLeader(t, groups, nil)
	if _, err := next.Propose([]byte("post"), 5*time.Second); err != nil {
		t.Fatalf("post-failover propose: %v", err)
	}

	// Wait for the survivors' applied streams to converge.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i, g := range groups {
			if g == nil {
				continue
			}
			d := sinks[i].data()
			if len(d) < 21 || d[len(d)-1] != "post" {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	var ref []string
	for i, g := range groups {
		if g == nil {
			continue
		}
		d := sinks[i].data()
		if len(d) != 21 {
			t.Fatalf("member %d applied %d data entries, want 21: %v", i+1, len(d), d)
		}
		if ref == nil {
			ref = d
		} else if fmt.Sprint(ref) != fmt.Sprint(d) {
			t.Fatalf("applied streams diverge: %v vs %v", ref, d)
		}
	}
}

func TestGroupDurableStateSurvivesRestart(t *testing.T) {
	base := t.TempDir()
	dirs := []string{
		filepath.Join(base, "m1"), filepath.Join(base, "m2"), filepath.Join(base, "m3"),
	}
	groups, _ := startTrio(t, dirs)
	ldr := waitLeader(t, groups, nil)
	for i := 0; i < 5; i++ {
		if _, err := ldr.Propose([]byte(fmt.Sprintf("d%d", i)), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	term := ldr.Term()
	for _, g := range groups {
		g.Close()
	}

	// Restart the trio from the same dirs: hard state and log must load,
	// a leader must emerge at a term beyond the persisted one, and the
	// committed entries must replay through Apply.
	groups2, sinks2 := startTrio(t, dirs)
	defer func() {
		for _, g := range groups2 {
			g.Close()
		}
	}()
	next := waitLeader(t, groups2, nil)
	if next.Term() <= term {
		t.Fatalf("restarted term %d not beyond persisted %d", next.Term(), term)
	}
	if _, err := next.Propose([]byte("after"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		d := sinks2[0].data()
		if len(d) >= 6 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	d := sinks2[0].data()
	if len(d) != 6 || d[0] != "d0" || d[5] != "after" {
		t.Fatalf("restarted member applied %v, want d0..d4,after", d)
	}
}
