package replica

import (
	"bytes"
	"fmt"
	"testing"
)

// cluster is an in-memory synchronous test harness: messages are delivered
// in order, immediately, unless a node is isolated. Fully deterministic.
type cluster struct {
	t        *testing.T
	nodes    map[uint64]*Node
	isolated map[uint64]bool
	inflight []Message
}

func newCluster(t *testing.T, n int, seed uint64) *cluster {
	c := &cluster{t: t, nodes: make(map[uint64]*Node), isolated: make(map[uint64]bool)}
	peers := make([]uint64, n)
	for i := range peers {
		peers[i] = uint64(i + 1)
	}
	for _, id := range peers {
		c.nodes[id] = NewNode(Config{ID: id, Peers: peers, Seed: seed ^ id, ElectionTicks: 10}, HardState{}, nil)
	}
	return c
}

// deliver drains the in-flight queue to quiescence.
func (c *cluster) deliver() {
	for len(c.inflight) > 0 {
		m := c.inflight[0]
		c.inflight = c.inflight[1:]
		if c.isolated[m.From] || c.isolated[m.To] {
			continue
		}
		n := c.nodes[m.To]
		if n == nil {
			continue
		}
		c.inflight = append(c.inflight, n.Step(m)...)
	}
}

// tick advances every live node one tick and settles traffic.
func (c *cluster) tick() {
	for id := uint64(1); id <= uint64(len(c.nodes)); id++ {
		if c.isolated[id] {
			continue
		}
		c.inflight = append(c.inflight, c.nodes[id].Tick()...)
	}
	c.deliver()
}

// electLeader ticks until some node wins, returning it.
func (c *cluster) electLeader() *Node {
	for i := 0; i < 200; i++ {
		c.tick()
		if l := c.leader(); l != nil {
			return l
		}
	}
	c.t.Fatal("no leader elected after 200 ticks")
	return nil
}

func (c *cluster) leader() *Node {
	for id := uint64(1); id <= uint64(len(c.nodes)); id++ {
		if n := c.nodes[id]; !c.isolated[id] && n.Role() == Leader {
			return n
		}
	}
	return nil
}

// propose submits data at the leader and settles replication.
func (c *cluster) propose(n *Node, data string) uint64 {
	idx, msgs, ok := n.Propose([]byte(data))
	if !ok {
		c.t.Fatalf("propose on non-leader %d", n.cfg.ID)
	}
	c.inflight = append(c.inflight, msgs...)
	c.deliver()
	return idx
}

// committedData returns the data of n's committed entries, skipping the
// empty term-barrier records.
func committedData(n *Node) []string {
	var out []string
	for _, e := range n.Entries(1) {
		if e.Index > n.Commit() {
			break
		}
		if len(e.Data) > 0 {
			out = append(out, string(e.Data))
		}
	}
	return out
}

func TestSingleNodeElectsAndCommits(t *testing.T) {
	c := newCluster(t, 1, 42)
	n := c.electLeader()
	if n.Term() == 0 {
		t.Fatal("leader with term 0")
	}
	idx, _, ok := n.Propose([]byte("a"))
	if !ok {
		t.Fatal("single-node propose rejected")
	}
	if n.Commit() < idx {
		t.Fatalf("single-node commit %d < %d", n.Commit(), idx)
	}
}

func TestThreeNodeElectionAndReplication(t *testing.T) {
	c := newCluster(t, 3, 7)
	ldr := c.electLeader()
	for i := 0; i < 10; i++ {
		c.propose(ldr, fmt.Sprintf("e%d", i))
	}
	c.tick() // commit-index propagation to followers
	want := committedData(ldr)
	if len(want) != 10 {
		t.Fatalf("leader committed %d entries, want 10", len(want))
	}
	for id, n := range c.nodes {
		got := committedData(n)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("node %d committed %v, want %v", id, got, want)
		}
	}
}

func TestAtMostOneVotePerTerm(t *testing.T) {
	peers := []uint64{1, 2, 3}
	n := NewNode(Config{ID: 1, Peers: peers, Seed: 1, ElectionTicks: 10}, HardState{}, nil)
	grant := n.Step(Message{Type: MsgVote, From: 2, To: 1, Term: 5})
	if len(grant) != 1 || grant[0].Reject {
		t.Fatal("first vote in term 5 not granted")
	}
	second := n.Step(Message{Type: MsgVote, From: 3, To: 1, Term: 5})
	if len(second) != 1 || !second[0].Reject {
		t.Fatal("second candidate got a vote in the same term")
	}
	again := n.Step(Message{Type: MsgVote, From: 2, To: 1, Term: 5})
	if len(again) != 1 || again[0].Reject {
		t.Fatal("retransmitted request from the voted-for candidate rejected")
	}
}

func TestVoteRefusedForStaleLog(t *testing.T) {
	peers := []uint64{1, 2, 3}
	entries := []Entry{{Index: 1, Term: 1, Data: []byte("x")}, {Index: 2, Term: 2, Data: []byte("y")}}
	n := NewNode(Config{ID: 1, Peers: peers, Seed: 1, ElectionTicks: 10}, HardState{Term: 2}, entries)
	resp := n.Step(Message{Type: MsgVote, From: 2, To: 1, Term: 3, LogIndex: 1, LogTerm: 1})
	if !resp[0].Reject {
		t.Fatal("vote granted to a candidate with a stale log")
	}
	resp = n.Step(Message{Type: MsgVote, From: 3, To: 1, Term: 3, LogIndex: 2, LogTerm: 2})
	if resp[0].Reject {
		t.Fatal("vote refused to an up-to-date candidate")
	}
}

func TestFailoverPreservesCommittedEntries(t *testing.T) {
	c := newCluster(t, 3, 11)
	ldr := c.electLeader()
	for i := 0; i < 5; i++ {
		c.propose(ldr, fmt.Sprintf("pre%d", i))
	}
	c.tick()
	want := committedData(ldr)
	oldTerm := ldr.Term()

	c.isolated[ldr.cfg.ID] = true
	next := c.electLeader()
	if next.cfg.ID == ldr.cfg.ID {
		t.Fatal("isolated leader re-elected")
	}
	if next.Term() <= oldTerm {
		t.Fatalf("new leader term %d not beyond %d", next.Term(), oldTerm)
	}
	got := committedData(next)
	if len(got) < len(want) || fmt.Sprint(got[:len(want)]) != fmt.Sprint(want) {
		t.Fatalf("committed entries lost across failover: %v vs %v", got, want)
	}
	c.propose(next, "post")
	if g := committedData(next); g[len(g)-1] != "post" {
		t.Fatal("new leader cannot commit")
	}
}

func TestDeposedLeaderConvergesAfterRejoin(t *testing.T) {
	c := newCluster(t, 3, 23)
	ldr := c.electLeader()
	c.propose(ldr, "committed")
	c.tick()

	// Isolate the leader and let it append an entry that never replicates.
	c.isolated[ldr.cfg.ID] = true
	if _, _, ok := ldr.Propose([]byte("orphan")); !ok {
		t.Fatal("deposed leader refused propose")
	}
	next := c.electLeader()
	c.propose(next, "winner")

	// Rejoin: the old leader must step down, truncate the orphan, and
	// converge on the new leader's log.
	delete(c.isolated, ldr.cfg.ID)
	for i := 0; i < 50; i++ {
		c.tick()
	}
	if ldr.Role() == Leader {
		t.Fatal("stale leader still leads after rejoin")
	}
	got, want := committedData(ldr), committedData(next)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rejoined log %v, want %v", got, want)
	}
	for _, e := range ldr.Entries(1) {
		if bytes.Equal(e.Data, []byte("orphan")) && e.Index <= ldr.Commit() {
			t.Fatal("orphan entry survived as committed")
		}
	}
}

func TestCommitRequiresMajority(t *testing.T) {
	c := newCluster(t, 3, 31)
	ldr := c.electLeader()
	// Cut the leader off from both followers, then propose: nothing may
	// commit (replication cannot reach a majority).
	for id := range c.nodes {
		if id != ldr.cfg.ID {
			c.isolated[id] = true
		}
	}
	before := ldr.Commit()
	idx, _, ok := ldr.Propose([]byte("lonely"))
	if !ok {
		t.Fatal("leader refused propose")
	}
	c.deliver()
	for i := 0; i < 30; i++ {
		c.inflight = append(c.inflight, ldr.Tick()...)
		c.deliver()
	}
	if ldr.Commit() >= idx || ldr.Commit() != before {
		t.Fatalf("entry committed without a majority (commit=%d)", ldr.Commit())
	}
}

func TestDeterministicTimeouts(t *testing.T) {
	a := NewNode(Config{ID: 3, Peers: []uint64{1, 2, 3}, Seed: 99, ElectionTicks: 10}, HardState{}, nil)
	b := NewNode(Config{ID: 3, Peers: []uint64{1, 2, 3}, Seed: 99, ElectionTicks: 10}, HardState{}, nil)
	if a.timeout != b.timeout {
		t.Fatalf("same seed drew different timeouts: %d vs %d", a.timeout, b.timeout)
	}
	if a.timeout < 10 || a.timeout >= 20 {
		t.Fatalf("timeout %d outside [ElectionTicks, 2×ElectionTicks)", a.timeout)
	}
	c := NewNode(Config{ID: 2, Peers: []uint64{1, 2, 3}, Seed: 99, ElectionTicks: 10}, HardState{}, nil)
	_ = c // different ID usually draws different jitter; no assertion — just exercise
}

func TestWireRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgVote, From: 1, To: 2, Term: 3, LogIndex: 9, LogTerm: 2},
		{Type: MsgVoteResp, From: 2, To: 1, Term: 3, Reject: true},
		{Type: MsgApp, From: 1, To: 3, Term: 4, LogIndex: 7, LogTerm: 3, Commit: 6,
			Entries: []Entry{
				{Index: 8, Term: 4, Data: []byte(`{"type":"ha_submit"}`)},
				{Index: 9, Term: 4},
			}},
		{Type: MsgAppResp, From: 3, To: 1, Term: 4, LogIndex: 9},
	}
	var buf bytes.Buffer
	var scratch []byte
	for i := range msgs {
		var err error
		scratch, err = WriteMessage(&buf, &msgs[i], scratch)
		if err != nil {
			t.Fatal(err)
		}
	}
	var rs []byte
	for i := range msgs {
		got, s, err := ReadMessage(&buf, rs)
		rs = s
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", msgs[i]) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, msgs[i])
		}
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	m := Message{Type: MsgApp, From: 1, To: 2, Term: 1,
		Entries: []Entry{{Index: 1, Term: 1, Data: []byte("payload")}}}
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &m, nil); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[len(frame)-1] ^= 0xFF
	if _, _, err := ReadMessage(bytes.NewReader(frame), nil); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}
