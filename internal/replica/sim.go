package replica

import (
	"fmt"
	"sort"

	"lobster/internal/simevent"
)

// Sim plane: the identical Node state machine driven by the deterministic
// discrete-event kernel instead of wall-clock tickers and TCP. Message
// latency, message loss, election jitter, and the kill schedule are all
// pure functions of the seed, so a (seed, fault plan) pair replays to a
// bit-identical election transcript — the property the golden determinism
// test pins and the model checker sweeps.

// SimKill schedules one member death. Node 0 means "whoever leads at that
// instant" — the leader-kill storm's fault plan. Restart, when non-zero,
// revives the member at that absolute time with its durable state (term,
// vote, log) intact, as a store-backed member would.
type SimKill struct {
	Time    float64 `json:"time"`
	Node    uint64  `json:"node,omitempty"`
	Restart float64 `json:"restart,omitempty"`
}

// SimProposal submits data at whichever member leads at Time (skipped and
// recorded when no leader is known at that instant).
type SimProposal struct {
	Time float64 `json:"time"`
	Data string  `json:"data"`
}

// SimConfig configures one simulated cluster run.
type SimConfig struct {
	Nodes         int
	Seed          uint64
	Duration      float64 // simulated seconds
	TickEvery     float64 // default 0.01
	ElectionTicks int     // default 10
	// Message latency is drawn uniformly (and deterministically) from
	// [MinLatency, MaxLatency); defaults 1–5 ms.
	MinLatency, MaxLatency float64
	// DropProb drops each message independently and deterministically.
	DropProb  float64
	Kills     []SimKill
	Proposals []SimProposal
}

// SimResult is the outcome: the election transcript, safety bookkeeping,
// and per-member applied streams.
type SimResult struct {
	// Transcript is one line per role/term transition and per scheduled
	// event, in simulated-time order — the golden-pinnable failover story.
	Transcript []string
	// LeadersByTerm maps each term to the members that won it. Any term
	// with two winners is a safety violation.
	LeadersByTerm map[uint64][]uint64
	// Elections counts candidate transitions.
	Elections int
	// FirstLeaderAt and TakeoverAt are the instants of the first election
	// and of the first leader elected strictly after the first kill (-1 if
	// never).
	FirstLeaderAt float64
	TakeoverAt    float64
	// Applied is each member's applied data stream (barrier entries
	// skipped), keyed by member ID, as of the end of the run (dead
	// members keep the stream they had at death).
	Applied map[uint64][]string
	// Violations lists safety violations detected during or after the
	// run; a correct protocol leaves it empty for every seed.
	Violations []string
}

// simMember is one simulated cluster member.
type simMember struct {
	id      uint64
	node    *Node
	alive   bool
	applied []string
	// durable state snapshot, maintained continuously (the sim-plane
	// analogue of the store WAL): survives kill for a later restart.
	hs  HardState
	log []Entry
	// lastObserved dedupes transcript lines ("role|term" of the last
	// recorded transition).
	lastObserved string
}

// simRun carries the run's mutable state across event callbacks.
type simRun struct {
	cfg     SimConfig
	sim     *simevent.Sim
	members []*simMember
	res     *SimResult
	draws   uint64 // deterministic random stream position
	killed  bool   // first kill has happened
}

// rand64 draws the next value from the run's deterministic stream.
func (r *simRun) rand64() uint64 {
	r.draws++
	return splitmix64(r.cfg.Seed ^ r.draws*0x9E3779B97F4A7C15)
}

// latency draws a message delivery latency.
func (r *simRun) latency() float64 {
	span := r.cfg.MaxLatency - r.cfg.MinLatency
	if span <= 0 {
		return r.cfg.MinLatency
	}
	return r.cfg.MinLatency + span*float64(r.rand64()>>11)/(1<<53)
}

// dropped decides message loss.
func (r *simRun) dropped() bool {
	if r.cfg.DropProb <= 0 {
		return false
	}
	return float64(r.rand64()>>11)/(1<<53) < r.cfg.DropProb
}

func (r *simRun) logf(format string, args ...any) {
	r.res.Transcript = append(r.res.Transcript,
		fmt.Sprintf("t=%.3f ", r.sim.Now())+fmt.Sprintf(format, args...))
}

// member returns the simMember with the given id.
func (r *simRun) member(id uint64) *simMember {
	return r.members[id-1]
}

// leaderNow returns the live leader with the highest term, or nil.
func (r *simRun) leaderNow() *simMember {
	var best *simMember
	for _, m := range r.members {
		if m.alive && m.node.Role() == Leader {
			if best == nil || m.node.Term() > best.node.Term() {
				best = m
			}
		}
	}
	return best
}

// dispatch routes messages produced by a node step: each is dropped or
// scheduled for delivery after a drawn latency.
func (r *simRun) dispatch(msgs []Message) {
	for _, m := range msgs {
		if r.dropped() {
			continue
		}
		msg := m
		r.sim.Schedule(r.latency(), func() { r.deliver(msg) })
	}
}

// deliver steps the target node (if alive) with the message.
func (r *simRun) deliver(m Message) {
	if m.To == 0 || m.To > uint64(len(r.members)) {
		return
	}
	tgt := r.member(m.To)
	if !tgt.alive {
		return
	}
	out := tgt.node.Step(m)
	r.after(tgt, out)
}

// after is the sim-plane analogue of Group.afterStep: persist the durable
// snapshot, observe transitions, apply committed entries, send messages.
func (r *simRun) after(m *simMember, msgs []Message) {
	if hs, logFrom, changed := m.node.TakeDirty(); changed {
		m.hs = hs
		if logFrom > 0 {
			m.log = append(m.log[:min(uint64(len(m.log)), logFrom-1)], m.node.Entries(logFrom)...)
			m.log = append([]Entry(nil), m.log...) // snapshot, un-aliased
		}
	}
	r.observe(m)
	for _, e := range m.node.TakeCommitted() {
		if len(e.Data) > 0 {
			m.applied = append(m.applied, string(e.Data))
		}
	}
	r.dispatch(msgs)
}

// observe records role/term transitions, transcript lines, and safety
// bookkeeping.
func (r *simRun) observe(m *simMember) {
	role, term := m.node.Role(), m.node.Term()
	key := fmt.Sprintf("%d|%d", uint64(role), term)
	if m.lastObserved == key {
		return
	}
	m.lastObserved = key
	r.logf("node=%d term=%d role=%s", m.id, term, role)
	switch role {
	case Candidate:
		r.res.Elections++
	case Leader:
		winners := r.res.LeadersByTerm[term]
		for _, w := range winners {
			if w != m.id {
				r.res.Violations = append(r.res.Violations,
					fmt.Sprintf("term %d has two leaders: %d and %d", term, w, m.id))
			}
		}
		r.res.LeadersByTerm[term] = append(winners, m.id)
		if r.res.FirstLeaderAt < 0 {
			r.res.FirstLeaderAt = r.sim.Now()
		}
		if r.killed && r.res.TakeoverAt < 0 {
			r.res.TakeoverAt = r.sim.Now()
		}
	}
}

// tickMember advances one member's logical clock and reschedules itself.
func (r *simRun) tickMember(m *simMember) {
	if !m.alive {
		return
	}
	out := m.node.Tick()
	r.after(m, out)
	r.sim.Schedule(r.cfg.TickEvery, func() { r.tickMember(m) })
}

// RunSim executes one simulated cluster run and returns its transcript,
// safety bookkeeping, and applied streams. Deterministic: the same config
// always returns the identical result.
func RunSim(cfg SimConfig) SimResult {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 0.01
	}
	if cfg.ElectionTicks <= 0 {
		cfg.ElectionTicks = 10
	}
	if cfg.MaxLatency <= 0 {
		cfg.MinLatency, cfg.MaxLatency = 0.001, 0.005
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10
	}
	res := &SimResult{
		LeadersByTerm: make(map[uint64][]uint64),
		Applied:       make(map[uint64][]string),
		FirstLeaderAt: -1, TakeoverAt: -1,
	}
	r := &simRun{cfg: cfg, sim: simevent.New(), res: res}

	peers := make([]uint64, cfg.Nodes)
	for i := range peers {
		peers[i] = uint64(i + 1)
	}
	for _, id := range peers {
		m := &simMember{id: id, alive: true}
		m.node = NewNode(Config{
			ID: id, Peers: peers, Seed: cfg.Seed ^ id, ElectionTicks: cfg.ElectionTicks,
		}, HardState{}, nil)
		r.members = append(r.members, m)
	}
	for _, m := range r.members {
		mm := m
		r.sim.Schedule(cfg.TickEvery, func() { r.tickMember(mm) })
	}

	for _, k := range cfg.Kills {
		kill := k
		r.sim.At(kill.Time, func() { r.kill(kill) })
	}
	for _, p := range cfg.Proposals {
		prop := p
		r.sim.At(prop.Time, func() { r.propose(prop) })
	}

	r.sim.RunUntil(cfg.Duration)

	for _, m := range r.members {
		res.Applied[m.id] = m.applied
	}
	res.Violations = append(res.Violations, checkPrefixConsistency(res.Applied)...)
	return *res
}

// kill executes one scheduled death (and arms the restart if configured).
func (r *simRun) kill(k SimKill) {
	var victim *simMember
	if k.Node == 0 {
		victim = r.leaderNow()
		if victim == nil {
			r.logf("kill skipped: no leader")
			return
		}
	} else if k.Node <= uint64(len(r.members)) {
		victim = r.member(k.Node)
	}
	if victim == nil || !victim.alive {
		return
	}
	victim.alive = false
	r.killed = true
	r.logf("kill node=%d role=%s term=%d", victim.id, victim.node.Role(), victim.node.Term())
	if k.Restart > 0 {
		id := victim.id
		r.sim.At(k.Restart, func() { r.restart(id) })
	}
}

// restart revives a member from its durable snapshot.
func (r *simRun) restart(id uint64) {
	m := r.member(id)
	if m.alive {
		return
	}
	peers := make([]uint64, len(r.members))
	for i := range peers {
		peers[i] = uint64(i + 1)
	}
	m.node = NewNode(Config{
		ID: id, Peers: peers, Seed: r.cfg.Seed ^ id, ElectionTicks: r.cfg.ElectionTicks,
	}, m.hs, m.log)
	m.lastObserved = ""
	// The rebuilt state machine replays the durable log from index 1, so
	// the applied stream restarts from scratch (as a real standby rebuilds
	// its task DB via ReplayLog).
	m.applied = nil
	m.alive = true
	r.logf("restart node=%d term=%d entries=%d", id, m.hs.Term, len(m.log))
	r.sim.Schedule(r.cfg.TickEvery, func() { r.tickMember(m) })
}

// propose submits at the current leader.
func (r *simRun) propose(p SimProposal) {
	ldr := r.leaderNow()
	if ldr == nil {
		r.logf("propose %q skipped: no leader", p.Data)
		return
	}
	_, msgs, ok := ldr.node.Propose([]byte(p.Data))
	if !ok {
		r.logf("propose %q rejected by node=%d", p.Data, ldr.id)
		return
	}
	r.after(ldr, msgs)
}

// checkPrefixConsistency verifies the committed-entries-never-lost
// property: every member's applied stream must be a prefix of the longest
// one (state-machine safety — applied entries agree at every index).
func checkPrefixConsistency(applied map[uint64][]string) []string {
	ids := make([]uint64, 0, len(applied))
	for id := range applied {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var longest []string
	for _, id := range ids {
		if len(applied[id]) > len(longest) {
			longest = applied[id]
		}
	}
	var out []string
	for _, id := range ids {
		a := applied[id]
		for i := range a {
			if a[i] != longest[i] {
				out = append(out, fmt.Sprintf(
					"node %d applied %q at position %d where the longest stream has %q",
					id, a[i], i, longest[i]))
				break
			}
		}
	}
	return out
}
