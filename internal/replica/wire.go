package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire framing for replication and vote messages, following the repo's
// store/chirp conventions: every frame is
//
//	crc32(payload) | payloadLen | payload     (uint32 little-endian each)
//
// and the payload is a compact varint encoding of the Message. A torn or
// corrupted frame fails the CRC and the transport drops the connection —
// the protocol retransmits from its own state, so the wire layer never
// needs partial-frame recovery.

// maxFrame bounds a frame payload. Generous for a 64-entry batch of
// event-log lines, small enough that a corrupted length field cannot make
// the reader allocate gigabytes.
const maxFrame = 16 << 20

// ErrFrame reports a malformed or corrupted frame.
var ErrFrame = errors.New("replica: bad frame")

// appendUvarint appends v as a varint.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendMessage appends m's payload encoding (no frame header) to buf.
func AppendMessage(buf []byte, m *Message) []byte {
	buf = append(buf, byte(m.Type))
	flags := byte(0)
	if m.Reject {
		flags = 1
	}
	buf = append(buf, flags)
	buf = appendUvarint(buf, m.From)
	buf = appendUvarint(buf, m.To)
	buf = appendUvarint(buf, m.Term)
	buf = appendUvarint(buf, m.LogIndex)
	buf = appendUvarint(buf, m.LogTerm)
	buf = appendUvarint(buf, m.Commit)
	buf = appendUvarint(buf, uint64(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		buf = appendUvarint(buf, e.Index)
		buf = appendUvarint(buf, e.Term)
		buf = appendUvarint(buf, uint64(len(e.Data)))
		buf = append(buf, e.Data...)
	}
	return buf
}

// uvarint reads one varint with bounds checking.
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrFrame
	}
	return v, b[n:], nil
}

// DecodeMessage decodes one payload produced by AppendMessage. Entry data
// slices alias b; callers that retain entries past the buffer's reuse must
// copy (the transport hands decoded messages straight to the group loop,
// which copies on append).
func DecodeMessage(b []byte) (Message, error) {
	var m Message
	if len(b) < 2 {
		return m, ErrFrame
	}
	m.Type = MsgType(b[0])
	if m.Type < MsgVote || m.Type > MsgAppResp {
		return m, fmt.Errorf("%w: unknown type %d", ErrFrame, b[0])
	}
	m.Reject = b[1]&1 != 0
	b = b[2:]
	var err error
	if m.From, b, err = uvarint(b); err != nil {
		return m, err
	}
	if m.To, b, err = uvarint(b); err != nil {
		return m, err
	}
	if m.Term, b, err = uvarint(b); err != nil {
		return m, err
	}
	if m.LogIndex, b, err = uvarint(b); err != nil {
		return m, err
	}
	if m.LogTerm, b, err = uvarint(b); err != nil {
		return m, err
	}
	if m.Commit, b, err = uvarint(b); err != nil {
		return m, err
	}
	var count uint64
	if count, b, err = uvarint(b); err != nil {
		return m, err
	}
	// Each entry needs at least 3 payload bytes; an implausible count is a
	// corrupted frame, not an allocation request.
	if count > uint64(len(b)) {
		return m, fmt.Errorf("%w: entry count %d exceeds payload", ErrFrame, count)
	}
	if count > 0 {
		m.Entries = make([]Entry, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		var e Entry
		if e.Index, b, err = uvarint(b); err != nil {
			return m, err
		}
		if e.Term, b, err = uvarint(b); err != nil {
			return m, err
		}
		var dlen uint64
		if dlen, b, err = uvarint(b); err != nil {
			return m, err
		}
		if dlen > uint64(len(b)) {
			return m, fmt.Errorf("%w: entry data length %d exceeds payload", ErrFrame, dlen)
		}
		if dlen > 0 {
			e.Data = b[:dlen]
		}
		b = b[dlen:]
		m.Entries = append(m.Entries, e)
	}
	if len(b) != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(b))
	}
	return m, nil
}

// WriteMessage frames and writes one message. scratch (may be nil) is the
// reusable encode buffer; the grown buffer is returned for the next call.
func WriteMessage(w io.Writer, m *Message, scratch []byte) ([]byte, error) {
	buf := scratch[:0]
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = AppendMessage(buf, m)
	payload := buf[8:]
	if len(payload) > maxFrame {
		return buf, fmt.Errorf("%w: frame of %d bytes", ErrFrame, len(payload))
	}
	binary.LittleEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	_, err := w.Write(buf)
	return buf, err
}

// ReadMessage reads one framed message, verifying length bound and CRC.
// scratch is the reusable payload buffer, returned grown for the next
// call. The decoded message's entries alias scratch.
func ReadMessage(r io.Reader, scratch []byte) (Message, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, scratch, err
	}
	sum := binary.LittleEndian.Uint32(hdr[0:4])
	size := binary.LittleEndian.Uint32(hdr[4:8])
	if size > maxFrame {
		return Message{}, scratch, fmt.Errorf("%w: implausible length %d", ErrFrame, size)
	}
	if uint32(cap(scratch)) < size {
		scratch = make([]byte, size)
	}
	payload := scratch[:size]
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, scratch[:cap(scratch)], err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Message{}, scratch[:cap(scratch)], fmt.Errorf("%w: CRC mismatch", ErrFrame)
	}
	m, err := DecodeMessage(payload)
	return m, scratch[:cap(scratch)], err
}
