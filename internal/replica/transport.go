package replica

import (
	"net"
	"sync"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/telemetry"
)

// Transport is the real-plane message carrier: a TCP mesh with one inbound
// listener and one lazily dialled, persistently retried outbound connection
// per peer. Loss is acceptable by construction — the protocol retransmits
// from its own state on every tick — so a send to a dead peer drops after
// one dial attempt instead of blocking the group loop.
//
// Connections thread the fault plane under component "replica": injected
// drops and corruption surface as CRC failures, the connection dies, and
// the protocol heals through retransmission — the same seam discipline as
// every other wire in the repo.
type Transport struct {
	self  uint64
	addrs map[uint64]string
	lis   net.Listener
	inj   *faultinject.Injector
	recv  func(Message)

	mu    sync.Mutex
	peers map[uint64]*outPeer
	conns map[net.Conn]bool // inbound, for teardown

	sent, received *telemetry.Counter
	dropped        *telemetry.Counter

	closed chan struct{}
	wg     sync.WaitGroup
}

// outPeer is one outbound peer: a bounded queue drained by a dedicated
// sender goroutine, so a slow or dead peer never stalls the group loop.
type outPeer struct {
	ch chan Message
}

// outQueueDepth bounds buffered outbound messages per peer. Deep enough
// to absorb a log catch-up burst; overflow drops (the protocol resends).
const outQueueDepth = 256

// dialTimeout bounds one outbound connection attempt.
const dialTimeout = 2 * time.Second

// redialBackoff is the pause after a failed dial before the next attempt;
// messages arriving inside the window are dropped.
const redialBackoff = 50 * time.Millisecond

// NewTransport starts a transport listening on addrs[self]. recv is called
// from receive goroutines for every inbound message; it must be safe for
// concurrent use (the Group funnels into its loop channel).
func NewTransport(self uint64, addrs map[uint64]string, inj *faultinject.Injector, recv func(Message)) (*Transport, error) {
	lis, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, err
	}
	t := &Transport{
		self:   self,
		addrs:  addrs,
		lis:    lis,
		inj:    inj,
		recv:   recv,
		peers:  make(map[uint64]*outPeer),
		conns:  make(map[net.Conn]bool),
		closed: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's listen address (for :0 listeners).
func (t *Transport) Addr() string { return t.lis.Addr().String() }

// Instrument registers the transport's counters on reg.
func (t *Transport) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t.mu.Lock()
	t.sent = reg.Counter("lobster_replica_messages_sent_total",
		"Replication/vote messages written to peers.")
	t.received = reg.Counter("lobster_replica_messages_received_total",
		"Replication/vote messages received from peers.")
	t.dropped = reg.Counter("lobster_replica_messages_dropped_total",
		"Outbound messages dropped on full queues or dead peers.")
	t.mu.Unlock()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		raw, err := t.lis.Accept()
		if err != nil {
			return
		}
		raw = t.inj.Conn("replica", raw)
		t.mu.Lock()
		select {
		case <-t.closed:
			t.mu.Unlock()
			raw.Close()
			return
		default:
		}
		t.conns[raw] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(raw)
	}
}

// readLoop decodes frames until the connection errors. Entry data decoded
// from the read buffer is copied before delivery: the buffer is reused
// frame to frame, the entries outlive it in the recipient's log.
func (t *Transport) readLoop(raw net.Conn) {
	defer t.wg.Done()
	defer func() {
		raw.Close()
		t.mu.Lock()
		delete(t.conns, raw)
		t.mu.Unlock()
	}()
	var scratch []byte
	for {
		m, s, err := ReadMessage(raw, scratch)
		scratch = s
		if err != nil {
			return
		}
		for i := range m.Entries {
			if len(m.Entries[i].Data) > 0 {
				m.Entries[i].Data = append([]byte(nil), m.Entries[i].Data...)
			}
		}
		t.mu.Lock()
		c := t.received
		t.mu.Unlock()
		c.Inc()
		t.recv(m)
	}
}

// Send queues msgs for delivery. Non-blocking: full queues and unknown
// peers drop (the protocol's tick-driven retransmission recovers).
func (t *Transport) Send(msgs []Message) {
	for _, m := range msgs {
		t.mu.Lock()
		if _, ok := t.addrs[m.To]; !ok {
			t.mu.Unlock()
			continue
		}
		p := t.peers[m.To]
		if p == nil {
			select {
			case <-t.closed:
				t.mu.Unlock()
				return
			default:
			}
			p = &outPeer{ch: make(chan Message, outQueueDepth)}
			t.peers[m.To] = p
			t.wg.Add(1)
			go t.sendLoop(m.To, p)
		}
		drop := t.dropped
		t.mu.Unlock()
		select {
		case p.ch <- m:
		default:
			drop.Inc()
		}
	}
}

// sendLoop owns the outbound connection to one peer: dial on demand,
// write frames, drop while the peer is unreachable (with backoff so a
// dead peer costs one dial per window, not one per heartbeat).
func (t *Transport) sendLoop(to uint64, p *outPeer) {
	defer t.wg.Done()
	var conn net.Conn
	var scratch []byte
	var lastDial time.Time
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var m Message
		select {
		case <-t.closed:
			return
		case m = <-p.ch:
		}
		if conn == nil {
			if time.Since(lastDial) < redialBackoff {
				t.drop()
				continue
			}
			lastDial = time.Now()
			raw, err := net.DialTimeout("tcp", t.addrs[to], dialTimeout)
			if err != nil {
				t.drop()
				continue
			}
			conn = t.inj.Conn("replica", raw)
			t.mu.Lock()
			t.conns[conn] = true
			t.mu.Unlock()
		}
		s, err := WriteMessage(conn, &m, scratch)
		scratch = s
		if err != nil {
			conn.Close()
			t.mu.Lock()
			delete(t.conns, conn)
			t.mu.Unlock()
			conn = nil
			t.drop()
			continue
		}
		t.mu.Lock()
		c := t.sent
		t.mu.Unlock()
		c.Inc()
	}
}

func (t *Transport) drop() {
	t.mu.Lock()
	c := t.dropped
	t.mu.Unlock()
	c.Inc()
}

// Close tears the mesh down: listener, inbound and outbound connections.
func (t *Transport) Close() error {
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		return nil
	default:
	}
	close(t.closed)
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	err := t.lis.Close()
	t.wg.Wait()
	return err
}
