package replica

import (
	"fmt"
	"testing"
)

// TestSimSweepNoSplitBrain is the model checker: across a grid of seeds and
// leader-kill instants (with message loss and restarts in the mix), no term
// may ever elect two leaders and no member's applied stream may diverge
// from the committed order.
func TestSimSweepNoSplitBrain(t *testing.T) {
	seeds := []uint64{1, 7, 42, 99, 1234, 77777}
	killAts := []float64{0.5, 1.0, 1.7, 2.3}
	for _, seed := range seeds {
		for _, killAt := range killAts {
			res := RunSim(SimConfig{
				Nodes: 3, Seed: seed, Duration: 8, DropProb: 0.05,
				Kills: []SimKill{{Time: killAt, Restart: killAt + 2}},
				Proposals: []SimProposal{
					{Time: 0.4, Data: "a"}, {Time: killAt + 1.5, Data: "b"},
					{Time: killAt + 3, Data: "c"},
				},
			})
			if len(res.Violations) != 0 {
				t.Fatalf("seed=%d kill=%.1f: safety violations: %v\ntranscript:\n%s",
					seed, killAt, res.Violations, transcriptText(res))
			}
			for term, winners := range res.LeadersByTerm {
				if len(winners) > 1 {
					t.Fatalf("seed=%d kill=%.1f: term %d has %d leaders",
						seed, killAt, term, len(winners))
				}
			}
			if res.FirstLeaderAt < 0 {
				t.Fatalf("seed=%d kill=%.1f: no leader ever elected", seed, killAt)
			}
			if res.TakeoverAt < 0 {
				t.Fatalf("seed=%d kill=%.1f: no takeover after leader kill\ntranscript:\n%s",
					seed, killAt, transcriptText(res))
			}
		}
	}
}

// TestSimDeterministicTranscript: the same (seed, fault plan) must replay to
// a byte-identical transcript and identical applied streams.
func TestSimDeterministicTranscript(t *testing.T) {
	cfg := SimConfig{
		Nodes: 3, Seed: 4242, Duration: 6, DropProb: 0.1,
		Kills:     []SimKill{{Time: 1.0, Restart: 3.0}},
		Proposals: []SimProposal{{Time: 0.5, Data: "x"}, {Time: 2.0, Data: "y"}},
	}
	a, b := RunSim(cfg), RunSim(cfg)
	if transcriptText(a) != transcriptText(b) {
		t.Fatalf("same config produced different transcripts:\n--- a ---\n%s\n--- b ---\n%s",
			transcriptText(a), transcriptText(b))
	}
	if fmt.Sprint(a.Applied) != fmt.Sprint(b.Applied) {
		t.Fatalf("same config produced different applied streams: %v vs %v",
			a.Applied, b.Applied)
	}
	if a.TakeoverAt != b.TakeoverAt || a.Elections != b.Elections {
		t.Fatalf("same config produced different summaries: takeover %v/%v elections %d/%d",
			a.TakeoverAt, b.TakeoverAt, a.Elections, b.Elections)
	}
}

// TestSimCommittedSurviveKill: entries committed before the kill must appear
// in every live member's applied stream after takeover.
func TestSimCommittedSurviveKill(t *testing.T) {
	res := RunSim(SimConfig{
		Nodes: 3, Seed: 9, Duration: 8,
		Kills: []SimKill{{Time: 2.0}},
		Proposals: []SimProposal{
			{Time: 1.0, Data: "pre1"}, {Time: 1.2, Data: "pre2"},
			{Time: 4.0, Data: "post"},
		},
	})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	live := 0
	for _, stream := range res.Applied {
		if len(stream) == 3 {
			live++
			if fmt.Sprint(stream) != "[pre1 pre2 post]" {
				t.Fatalf("applied stream out of order: %v", stream)
			}
		}
	}
	if live < 2 {
		t.Fatalf("fewer than 2 members converged on the full stream: %v\ntranscript:\n%s",
			res.Applied, transcriptText(res))
	}
}

func transcriptText(r SimResult) string {
	var s string
	for _, line := range r.Transcript {
		s += line + "\n"
	}
	return s
}
