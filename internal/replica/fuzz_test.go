package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// fuzzMessage derives a Message from raw fuzz bytes: a deterministic,
// total mapping so every input exercises the encoder with a valid
// message, including multi-entry appends.
func fuzzMessage(data []byte) *Message {
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		out := data[:n]
		data = data[n:]
		return out
	}
	u64 := func() uint64 {
		var b [8]byte
		copy(b[:], take(8))
		return binary.LittleEndian.Uint64(b[:])
	}
	m := &Message{
		Type:   MsgType(u64()%4) + MsgVote,
		Reject: u64()%2 == 1,
		From:   u64(), To: u64(), Term: u64(),
		LogIndex: u64(), LogTerm: u64(), Commit: u64(),
	}
	if m.Type == MsgApp {
		n := int(u64() % 8)
		for i := 0; i < n; i++ {
			m.Entries = append(m.Entries, Entry{
				Index: u64(), Term: u64(),
				Data: append([]byte(nil), take(int(u64()%64))...),
			})
		}
	}
	return m
}

// FuzzReplicaWire drives the replication wire codec two ways from one
// input. Leg 1 derives a valid message, frames it with WriteMessage, and
// requires a bit-exact ReadMessage round-trip. Leg 2 feeds the raw bytes
// to the decoder as a hostile stream — once as-is (corrupt headers, torn
// frames) and once wrapped in a CRC-valid frame so DecodeMessage sees
// attacker-controlled varint lengths past the checksum. Either must
// return an error or a message, never panic or over-read.
func FuzzReplicaWire(f *testing.F) {
	frame := func(payload []byte) []byte {
		out := binary.LittleEndian.AppendUint32(nil, crc32.ChecksumIEEE(payload))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		return append(out, payload...)
	}
	f.Add([]byte{})
	f.Add(frame([]byte{1, 0, 1, 2, 3, 4, 5, 6, 0}))
	f.Add(frame(binary.AppendUvarint([]byte{3, 0, 1, 2, 3, 4, 5, 6}, 1<<40)))
	for _, m := range []*Message{
		{Type: MsgVote, From: 1, To: 2, Term: 3, LogIndex: 9, LogTerm: 2},
		{Type: MsgVoteResp, From: 2, To: 1, Term: 3, Reject: true},
		{Type: MsgApp, From: 1, To: 3, Term: 4, Commit: 7, Entries: []Entry{
			{Index: 8, Term: 4, Data: []byte(`{"t":1.5,"type":"task","data":{}}`)},
			{Index: 9, Term: 4},
		}},
		{Type: MsgAppResp, From: 3, To: 1, Term: 4, LogIndex: 9},
	} {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, m, nil); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Leg 1: encode/decode round-trip of a derived valid message.
		want := fuzzMessage(data)
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, want, nil); err != nil {
			t.Fatalf("WriteMessage on valid message: %v", err)
		}
		got, _, err := ReadMessage(bytes.NewReader(buf.Bytes()), nil)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if got.Type != want.Type || got.Reject != want.Reject ||
			got.From != want.From || got.To != want.To || got.Term != want.Term ||
			got.LogIndex != want.LogIndex || got.LogTerm != want.LogTerm ||
			got.Commit != want.Commit || len(got.Entries) != len(want.Entries) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
		}
		for i := range want.Entries {
			if got.Entries[i].Index != want.Entries[i].Index ||
				got.Entries[i].Term != want.Entries[i].Term ||
				!bytes.Equal(got.Entries[i].Data, want.Entries[i].Data) {
				t.Fatalf("entry %d mismatch: got %+v want %+v", i, got.Entries[i], want.Entries[i])
			}
		}

		// Leg 2: hostile streams. Raw bytes and a CRC-valid wrapping of
		// them; decode until the stream errors or drains.
		for _, stream := range [][]byte{data, frame(data)} {
			r := bytes.NewReader(stream)
			var scratch []byte
			for {
				var m Message
				m, scratch, err = ReadMessage(r, scratch)
				if err != nil {
					if !errors.Is(err, ErrFrame) && !errors.Is(err, io.EOF) &&
						!errors.Is(err, io.ErrUnexpectedEOF) {
						t.Fatalf("unexpected error class: %v", err)
					}
					break
				}
				// A frame that decodes must re-encode decodably.
				var rt bytes.Buffer
				if _, err := WriteMessage(&rt, &m, nil); err != nil {
					t.Fatalf("re-encode of decoded message: %v", err)
				}
				if _, _, err := ReadMessage(bytes.NewReader(rt.Bytes()), nil); err != nil {
					t.Fatalf("re-decode of re-encoded message: %v", err)
				}
			}
		}
	})
}
