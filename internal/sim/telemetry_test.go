package sim

import (
	"strings"
	"testing"

	"lobster/internal/telemetry"
)

// TestBigRunTelemetrySeries runs the Figure 11 model with a registry
// attached and checks that the real plane's series come out populated, on
// the simulated clock.
func TestBigRunTelemetrySeries(t *testing.T) {
	cfg := SimRunConfig(0.05)
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The registry clock is the simulation clock: after the run it reads
	// simulated seconds, not wall seconds.
	if now := reg.Now(); now < cfg.Duration*0.9 {
		t.Errorf("registry clock = %.0f, want ≥ %.0f (simulated seconds)", now, cfg.Duration*0.9)
	}

	snap := reg.Snapshot()
	val := func(name string) float64 {
		t.Helper()
		for _, s := range snap.Series {
			if s.Name == name {
				return s.Value
			}
		}
		t.Fatalf("series %s missing from snapshot", name)
		return 0
	}
	count := func(name string) int64 {
		t.Helper()
		for _, s := range snap.Series {
			if s.Name == name {
				return s.Count
			}
		}
		t.Fatalf("series %s missing from snapshot", name)
		return 0
	}

	if got := val("lobster_wq_tasks_done_total"); got != float64(res.TasksDone) {
		t.Errorf("tasks_done series = %v, result = %d", got, res.TasksDone)
	}
	if got := val("lobster_wq_tasks_failed_total"); got != float64(res.TasksFailed) {
		t.Errorf("tasks_failed series = %v, result = %d", got, res.TasksFailed)
	}
	if got := val("lobster_cluster_evictions_total"); got != float64(res.Evictions) {
		t.Errorf("evictions series = %v, result = %d", got, res.Evictions)
	}
	if got := val("lobster_wq_dispatches_total"); got < float64(res.TasksDone+res.TasksFailed) {
		t.Errorf("dispatches = %v, want ≥ done+failed = %d", got, res.TasksDone+res.TasksFailed)
	}
	if hr := val("lobster_squid_hit_ratio"); hr <= 0 || hr >= 1 {
		t.Errorf("squid hit ratio = %v, want in (0,1) for a mixed cold/warm run", hr)
	}
	if got := val("lobster_chirp_bytes_in_total"); got <= 0 {
		t.Errorf("chirp bytes in = %v, want > 0 (stage-out traffic)", got)
	}
	for _, stage := range []string{"dispatch", "setup", "stage_in", "execute", "stage_out"} {
		found := false
		for _, s := range snap.Series {
			if s.Name == "lobster_task_stage_seconds" && s.Labels["stage"] == stage && s.Count > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("stage histogram %q has no observations", stage)
		}
	}
	if c := count("lobster_task_stage_seconds"); c < 0 {
		t.Errorf("stage histogram count = %d", c)
	}

	// The exposition carries the acceptance series.
	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"lobster_wq_tasks_waiting", "lobster_squid_hit_ratio",
		"lobster_chirp_active_connections", "lobster_cluster_pilots_up",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestBigRunTelemetryDeterminism checks that attaching telemetry changes
// nothing about the simulated physics: instrumentation must not touch the
// RNG or event ordering.
func TestBigRunTelemetryDeterminism(t *testing.T) {
	cfg := SimRunConfig(0.02)
	plain, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = telemetry.NewRegistry()
	instr, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TasksDone != instr.TasksDone || plain.TasksFailed != instr.TasksFailed ||
		plain.Evictions != instr.Evictions || plain.PeakCores != instr.PeakCores ||
		plain.WANBytes != instr.WANBytes || plain.ChirpBytes != instr.ChirpBytes {
		t.Errorf("instrumented run diverged: plain=%+v instrumented=%+v",
			summary(plain), summary(instr))
	}
}

func summary(r *BigRunResult) map[string]float64 {
	return map[string]float64{
		"done": float64(r.TasksDone), "failed": float64(r.TasksFailed),
		"evictions": float64(r.Evictions), "peak": float64(r.PeakCores),
		"wan": r.WANBytes, "chirp": r.ChirpBytes,
	}
}
