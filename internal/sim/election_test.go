package sim

import (
	"fmt"
	"strings"
	"testing"

	"lobster/internal/replica"
)

// electionGoldenConfig is the pinned (seed, fault plan) pair: a 3-member
// control plane, one proposal before and one after a leader kill at
// t=1.5s, with 5% message loss.
func electionGoldenConfig() replica.SimConfig {
	return replica.SimConfig{
		Nodes: 3, Seed: 2026, Duration: 6, DropProb: 0.05,
		Kills:     []replica.SimKill{{Time: 1.5}},
		Proposals: []replica.SimProposal{{Time: 1.0, Data: "job-a"}, {Time: 3.0, Data: "job-b"}},
	}
}

// TestGoldenElectionTranscript pins the full election transcript of the
// replicated control plane on the sim clock: the same seed and fault plan
// must always produce the identical terms, winners, and takeover instant,
// down to the millisecond. Like TestGoldenBigRunHealthAlerts, any change
// to this output is a change to the protocol's behaviour and must be
// reviewed, not papered over.
func TestGoldenElectionTranscript(t *testing.T) {
	res := replica.RunSim(electionGoldenConfig())
	if len(res.Violations) != 0 {
		t.Fatalf("golden run has safety violations: %v", res.Violations)
	}
	want := []string{
		"t=0.010 node=1 term=0 role=follower",
		"t=0.010 node=2 term=0 role=follower",
		"t=0.010 node=3 term=0 role=follower",
		"t=0.100 node=3 term=1 role=candidate",
		"t=0.103 node=2 term=1 role=follower",
		"t=0.104 node=1 term=1 role=follower",
		"t=0.105 node=3 term=1 role=leader",
		"t=1.500 kill node=3 role=leader term=1",
		"t=1.600 node=2 term=2 role=candidate",
		"t=1.602 node=1 term=2 role=follower",
		"t=1.603 node=2 term=2 role=leader",
	}
	if got := strings.Join(res.Transcript, "\n"); got != strings.Join(want, "\n") {
		t.Errorf("election transcript diverged from golden:\n got:\n%s\nwant:\n%s",
			got, strings.Join(want, "\n"))
	}
	summary := fmt.Sprintf("elections=%d firstLeader=%.3f takeover=%.3f",
		res.Elections, res.FirstLeaderAt, res.TakeoverAt)
	if summary != "elections=2 firstLeader=0.105 takeover=1.603" {
		t.Errorf("summary diverged: %s, want elections=2 firstLeader=0.105 takeover=1.603", summary)
	}
	// Node 3 led term 1 and died with job-a applied; node 2 took over term
	// 2 and carried both jobs. Exactly one winner per term.
	if fmt.Sprint(res.LeadersByTerm[1]) != "[3]" || fmt.Sprint(res.LeadersByTerm[2]) != "[2]" {
		t.Errorf("leaders by term diverged: %v", res.LeadersByTerm)
	}
	if fmt.Sprint(res.Applied[1]) != "[job-a job-b]" ||
		fmt.Sprint(res.Applied[2]) != "[job-a job-b]" ||
		fmt.Sprint(res.Applied[3]) != "[job-a]" {
		t.Errorf("applied streams diverged: %v", res.Applied)
	}
}

// TestGoldenElectionReplays runs the pinned config twice and requires
// bit-identical results — the determinism contract that lets a failover
// incident be replayed from its seed.
func TestGoldenElectionReplays(t *testing.T) {
	a := replica.RunSim(electionGoldenConfig())
	b := replica.RunSim(electionGoldenConfig())
	if strings.Join(a.Transcript, "\n") != strings.Join(b.Transcript, "\n") {
		t.Fatal("replay produced a different transcript")
	}
	if fmt.Sprint(a.Applied) != fmt.Sprint(b.Applied) || a.TakeoverAt != b.TakeoverAt {
		t.Fatal("replay produced different applied streams or takeover instant")
	}
}
