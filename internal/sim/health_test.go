package sim

import (
	"fmt"
	"testing"

	"lobster/internal/health"
	"lobster/internal/monitor"
	"lobster/internal/telemetry"
)

// healthRun runs cfg with a sim-clocked fleet hub scraping the run's own
// registry every interval simulated seconds, returning the result and
// the alert transitions the hub emitted.
func healthRun(t *testing.T, cfg BigRunConfig, interval float64) (*BigRunResult, []monitor.AlertRecord) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg

	now := 0.0
	hub := health.NewHub(health.Config{
		Endpoints: []health.Endpoint{
			{Name: "sim", Component: "master", Source: &health.RegistrySource{Reg: reg}},
		},
		Rules: health.NewRuleSet(health.DefaultRules()),
		Clock: func() float64 { return now },
	})
	cfg.HealthInterval = interval
	cfg.HealthTick = func(simNow float64) {
		now = simNow
		hub.Tick()
	}
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, hub.Alerts()
}

// TestGoldenBigRunHealthAlerts pins the exact alert sequence the default
// detector set produces on the Figure 11 simulation run, evaluated on
// the simulated clock. Two properties are golden here: the run's physics
// must stay bit-identical to the pre-health kernel (the health ticker
// reads the registry and never touches the RNG), and the alert sequence
// itself must be deterministic down to the tick it fires on.
func TestGoldenBigRunHealthAlerts(t *testing.T) {
	res, alerts := healthRun(t, SimRunConfig(0.05), 60)
	if res.TasksDone != 1860 || res.TasksFailed != 383 || res.Evictions != 41 ||
		res.WANBytes != 0 || res.ChirpBytes != 107303801934.7655 || res.PeakCores != 1000 {
		t.Errorf("health-monitored run diverged from golden: done=%d failed=%d evict=%d wan=%.17g chirp=%.17g peak=%d",
			res.TasksDone, res.TasksFailed, res.Evictions, res.WANBytes, res.ChirpBytes, res.PeakCores)
	}
	want := []string{
		"480 stuck_tasks firing",
		"8820 worker_ramp_stall firing",
		"9300 worker_ramp_stall resolved",
		"10560 worker_ramp_stall firing",
		"12000 worker_ramp_stall resolved",
		"13800 stuck_tasks resolved",
		"14760 stuck_tasks firing",
		"15420 stuck_tasks resolved",
		"20820 worker_ramp_stall firing",
		"21600 worker_ramp_stall resolved",
		"21960 chirp_pool_exhausted firing",
		"22860 worker_ramp_stall firing",
		"22980 worker_ramp_stall resolved",
	}
	if len(alerts) != len(want) {
		t.Fatalf("alert count = %d, want %d: %+v", len(alerts), len(want), alerts)
	}
	for i, a := range alerts {
		got := fmt.Sprintf("%g %s %s", a.Time, a.Rule, a.State)
		if got != want[i] {
			t.Errorf("alert %d = %q, want %q", i, got, want[i])
		}
	}
	// The early stuck_tasks is the run's truth, not detector noise: with a
	// 1.5 GB cold cache squeezed through one overwhelmed squid, the first
	// completion takes hours, so tasks run with zero completions far past
	// the watchdog floor — exactly the slow-ramp pathology of the paper's
	// early deployments.
	if alerts[0].Rule != "stuck_tasks" || alerts[0].Value <= 300 {
		t.Errorf("first alert should be the ramp-phase stuck_tasks watchdog: %+v", alerts[0])
	}
}

// TestBigRunHealthInstanceLabels spot-checks the merged view mid-run: a
// scrape through the hub carries component/instance labels stamped onto
// every sim series.
func TestBigRunHealthInstanceLabels(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := SimRunConfig(0.02)
	cfg.Duration = 3600
	cfg.Telemetry = reg
	var seen *health.Fleet
	now := 0.0
	hub := health.NewHub(health.Config{
		Endpoints: []health.Endpoint{
			{Name: "sim", Component: "master", Source: &health.RegistrySource{Reg: reg}},
		},
		Rules: health.NewRuleSet(nil),
		Clock: func() float64 { return now },
	})
	cfg.HealthTick = func(simNow float64) {
		now = simNow
		hub.Tick()
		seen = hub.Fleet()
	}
	cfg.HealthInterval = 600
	if _, err := RunBig(cfg); err != nil {
		t.Fatal(err)
	}
	if seen == nil {
		t.Fatal("health tick never ran")
	}
	sel := seen.Select("lobster_cluster_pilots_up", map[string]string{"component": "master", "instance": "sim"})
	if len(sel) != 1 || sel[0].Value <= 0 {
		t.Fatalf("pilots_up series = %+v", sel)
	}
}
