package sim

import (
	"container/heap"
	"fmt"
	"math"

	"lobster/internal/stats"
)

// This file implements the paper's §8 future-work item: "automatic
// performance optimization through dynamic adjustment of task size in the
// face of changing eviction rates", as an extension over the Figure 3
// machinery, plus the phase-shift experiment that evaluates it.

// Sizer chooses the next task size (tasklets per task) for a workflow.
type Sizer interface {
	// Next returns the task size to use for the next task.
	Next() int
	// Observe reports a finished task attempt: its size and whether the
	// worker was evicted during it.
	Observe(size int, evicted bool)
	// Name labels the sizer in results.
	Name() string
}

// StaticSizer always returns the same size (Lobster's classic behaviour,
// with the user adjusting by hand).
type StaticSizer struct{ Size int }

// Next implements Sizer.
func (s *StaticSizer) Next() int { return s.Size }

// Observe implements Sizer.
func (s *StaticSizer) Observe(int, bool) {}

// Name implements Sizer.
func (s *StaticSizer) Name() string { return fmt.Sprintf("static-%d", s.Size) }

// RateSizer adapts the task size from the observed fleet-wide eviction
// rate. Per observation window it estimates the per-task eviction
// probability p; with task span T that implies a mean worker survival
// E[S] ≈ T/p, and the efficiency-optimal span balancing per-task overhead O
// against eviction loss is T* ≈ sqrt(2·O·E[S]) (maximising
// (T/(T+O))·(1 − T/(2E[S])) for small ratios). The controller steps the
// size toward T* each window, growing multiplicatively when no evictions
// are seen. A single per-event AIMD response does not work at fleet scale:
// with thousands of workers even a healthy configuration produces a steady
// trickle of evictions, which would ratchet the size to the floor.
type RateSizer struct {
	// Min and Max bound the size in tasklets.
	Min, Max int
	// Overhead and TaskletTime are the per-task overhead and mean tasklet
	// duration in seconds (the T* formula needs real time units).
	Overhead    float64
	TaskletTime float64
	// Window is the number of observations between adjustments.
	Window int

	size      float64
	nObserved int
	nEvicted  int
}

// NewRateSizer returns a rate-based sizer starting at start tasklets/task.
func NewRateSizer(start, min, max int, overhead, taskletTime float64) *RateSizer {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	return &RateSizer{Min: min, Max: max, Overhead: overhead,
		TaskletTime: taskletTime, Window: 200, size: float64(start)}
}

// Next implements Sizer.
func (a *RateSizer) Next() int {
	n := int(math.Round(a.size))
	if n < a.Min {
		n = a.Min
	}
	if n > a.Max {
		n = a.Max
	}
	return n
}

// Observe implements Sizer.
func (a *RateSizer) Observe(size int, evicted bool) {
	a.nObserved++
	if evicted {
		a.nEvicted++
	}
	if a.nObserved < a.Window {
		return
	}
	p := float64(a.nEvicted) / float64(a.nObserved)
	a.nObserved, a.nEvicted = 0, 0
	if p <= 0 {
		// No evictions observed: amortise overhead harder.
		a.size *= 1.3
	} else {
		span := a.size*a.TaskletTime + a.Overhead
		meanSurvival := span / p
		tStar := math.Sqrt(2 * a.Overhead * meanSurvival)
		target := (tStar - a.Overhead) / a.TaskletTime
		// Move halfway toward the target for stability.
		a.size += 0.5 * (target - a.size)
	}
	if a.size < float64(a.Min) {
		a.size = float64(a.Min)
	}
	if a.size > float64(a.Max) {
		a.size = float64(a.Max)
	}
}

// Name implements Sizer.
func (a *RateSizer) Name() string { return "rate-adaptive" }

// PhaseShiftConfig describes the adaptive-sizing experiment: the eviction
// regime changes mid-run (e.g. the cluster owner's jobs return), and the
// workload either keeps its static task size or adapts.
type PhaseShiftConfig struct {
	Base TaskSizeConfig
	// Phase1 and Phase2 are the survival distributions before and after the
	// shift; the shift happens when half the tasklets have completed.
	Phase1, Phase2 stats.Dist
}

// DefaultPhaseShiftConfig: a calm cluster (mean lifetime ~20 h) that turns
// hostile (mean lifetime ~1.5 h) halfway through the workload.
func DefaultPhaseShiftConfig() PhaseShiftConfig {
	cfg := DefaultTaskSizeConfig()
	cfg.Tasklets = 40000
	cfg.Workers = 2000
	return PhaseShiftConfig{
		Base:   cfg,
		Phase1: stats.Weibull{K: 0.9, Lambda: 20 * 3600},
		Phase2: stats.Weibull{K: 0.9, Lambda: 1.5 * 3600},
	}
}

// AdaptiveResult is the outcome of one sizer under the phase shift.
type AdaptiveResult struct {
	Sizer      string
	Efficiency float64
	Evictions  int
	FinalSize  int
	MeanSize   float64
}

// SimulateAdaptive runs the Figure 3 engine with a Sizer choosing per-task
// sizes and the survival regime switching halfway through the tasklet pool.
func SimulateAdaptive(cfg PhaseShiftConfig, sizer Sizer) (*AdaptiveResult, error) {
	base := cfg.Base
	if base.Tasklets <= 0 || base.Workers <= 0 || base.TaskletTime == nil {
		return nil, fmt.Errorf("sim: invalid adaptive config %+v", base)
	}
	if cfg.Phase1 == nil || cfg.Phase2 == nil {
		return nil, fmt.Errorf("sim: adaptive config needs both phase distributions")
	}
	rng := stats.NewRand(base.Seed)
	pool := base.Tasklets
	completed := 0
	shiftAt := base.Tasklets / 2
	regime := func() int {
		if completed < shiftAt {
			return 1
		}
		return 2
	}
	survival := func() float64 {
		if regime() == 1 {
			return cfg.Phase1.Sample(rng)
		}
		return cfg.Phase2.Sample(rng)
	}

	var totalTime, effective, sizeSum float64
	var evictions, tasks int

	h := make(workerHeap, 0, base.Workers)
	for i := 0; i < base.Workers; i++ {
		w := &simWorker{free: base.WorkerOverhead, uptime: base.WorkerOverhead,
			death: survival(), regime: regime()}
		totalTime += base.WorkerOverhead
		heap.Push(&h, w)
	}
	for completed < base.Tasklets && h.Len() > 0 {
		w := heap.Pop(&h).(*simWorker)
		if pool <= 0 {
			continue
		}
		// A regime shift (the cluster owner's jobs returning) hits running
		// workers too: their remaining lifetime is re-drawn lazily under the
		// new regime.
		if w.regime != regime() {
			w.regime = regime()
			w.death = w.uptime + survival()
		}
		k := sizer.Next()
		if k > pool {
			k = pool
		}
		pool -= k
		tasks++
		sizeSum += float64(k)
		var proc float64
		for i := 0; i < k; i++ {
			proc += base.TaskletTime.Sample(rng)
		}
		span := base.TaskOverhead + proc
		if w.uptime+span > w.death {
			lost := w.death - w.uptime
			if lost < 0 {
				lost = 0
			}
			totalTime += lost + base.WorkerOverhead
			pool += k
			evictions++
			sizer.Observe(k, true)
			w.free += lost + base.WorkerOverhead
			w.uptime = base.WorkerOverhead
			w.death = survival()
			w.regime = regime()
			heap.Push(&h, w)
			continue
		}
		w.uptime += span
		w.free += span
		totalTime += span
		effective += proc
		completed += k
		sizer.Observe(k, false)
		heap.Push(&h, w)
	}
	res := &AdaptiveResult{Sizer: sizer.Name(), Evictions: evictions, FinalSize: sizer.Next()}
	if totalTime > 0 {
		res.Efficiency = effective / totalTime
	}
	if tasks > 0 {
		res.MeanSize = sizeSum / float64(tasks)
	}
	return res, nil
}

// CompareAdaptive runs the phase-shift experiment for a static sizer tuned
// to the calm phase and the AIMD sizer, returning both results.
func CompareAdaptive(cfg PhaseShiftConfig, staticSize int) ([]*AdaptiveResult, error) {
	if staticSize < 1 {
		staticSize = 18 // ~3 h tasks: optimal for the calm phase
	}
	// Sizers are stateful, so each parallel job constructs its own.
	makeSizers := []func() Sizer{
		func() Sizer { return &StaticSizer{Size: staticSize} },
		func() Sizer {
			return NewRateSizer(staticSize, 1, 120,
				cfg.Base.TaskOverhead, cfg.Base.TaskletTime.Mean())
		},
	}
	out := make([]*AdaptiveResult, len(makeSizers))
	err := parallelFor(len(makeSizers), func(i int) error {
		r, err := SimulateAdaptive(cfg, makeSizers[i]())
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
