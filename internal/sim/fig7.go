package sim

import (
	"fmt"
	"math"

	"lobster/internal/simevent"
	"lobster/internal/stats"
)

// MergeSimConfig parameterises the Figure 7 merging-mode comparison.
type MergeSimConfig struct {
	AnalysisTasks int
	Workers       int        // concurrent task slots
	TaskTime      stats.Dist // analysis task duration, seconds
	OutputBytes   float64    // per analysis task
	TargetBytes   float64    // merged file size target
	// ChirpSlots caps concurrent storage-element transfers; ChirpBandwidth
	// is its total link capacity.
	ChirpSlots     int
	ChirpBandwidth float64
	// MergeOverhead is the fixed per-merge-task cost (environment, metadata).
	MergeOverhead float64
	// HDFSBandwidth is the in-cluster aggregate bandwidth for Hadoop merges,
	// and HDFSReducers the reducer parallelism.
	HDFSBandwidth float64
	HDFSReducers  int
	// StartFraction gates interleaved merging (paper: 10% processed).
	StartFraction float64
	Seed          uint64
}

// DefaultMergeSimConfig mirrors the production shapes: ~1 h analysis tasks
// writing 50 MB outputs, merged toward 3.5 GB files.
func DefaultMergeSimConfig() MergeSimConfig {
	return MergeSimConfig{
		AnalysisTasks:  2000,
		Workers:        800,
		TaskTime:       stats.Gaussian{Mu: 3600, Sigma: 600, Floor: 300},
		OutputBytes:    50e6,
		TargetBytes:    3.5e9,
		ChirpSlots:     32,
		ChirpBandwidth: 3.125e8, // one loaded server, ~2.5 Gbit/s
		MergeOverhead:  120,
		HDFSBandwidth:  2e9,
		HDFSReducers:   20,
		StartFraction:  0.10,
		Seed:           1,
	}
}

// MergeTimeline is the outcome for one merging mode.
type MergeTimeline struct {
	Mode              string
	AnalysisDone      []float64 // completion times, seconds
	MergeDone         []float64 // merge-task completion times
	LastAnalysis      float64
	LastMerge         float64 // the vertical bar in Figure 7
	MergedFiles       int
	WorkerSecondsUsed float64 // resource consumption incl. merging
}

// SimulateMerging runs the workload under one merge mode: "sequential",
// "hadoop", or "interleaved".
func SimulateMerging(cfg MergeSimConfig, mode string) (*MergeTimeline, error) {
	switch mode {
	case "sequential", "hadoop", "interleaved":
	default:
		return nil, fmt.Errorf("sim: unknown merge mode %q", mode)
	}
	if cfg.AnalysisTasks <= 0 || cfg.Workers <= 0 {
		return nil, fmt.Errorf("sim: invalid merge config %+v", cfg)
	}
	s := simevent.New()
	rng := stats.NewRand(cfg.Seed)
	slots := simevent.NewResource(s, cfg.Workers)
	chirpSlots := simevent.NewResource(s, cfg.ChirpSlots)
	chirpLink := simevent.NewLink(s, cfg.ChirpBandwidth)

	tl := &MergeTimeline{Mode: mode}
	outputsPerMerge := int(math.Ceil(cfg.TargetBytes / cfg.OutputBytes))
	var unmerged int  // outputs awaiting merge
	var analysed int  // analysis tasks finished
	var mergeBusy int // merge tasks in flight

	// chirpMove models one storage-element transfer: bounded by the slot
	// cap (the paper's concurrent-connection limit) and the shared link.
	chirpMove := func(p *simevent.Proc, bytes float64) {
		chirpSlots.Acquire(p)
		chirpLink.Transfer(p, bytes)
		chirpSlots.Release()
	}

	// runMerge executes one merge task over n outputs on a worker slot.
	runMerge := func(p *simevent.Proc, n int) {
		start := p.Now()
		slots.Acquire(p)
		p.Wait(cfg.MergeOverhead)
		// Fetch each small input, then write the merged file.
		for i := 0; i < n; i++ {
			chirpMove(p, cfg.OutputBytes)
		}
		chirpMove(p, float64(n)*cfg.OutputBytes)
		slots.Release()
		tl.MergeDone = append(tl.MergeDone, p.Now())
		tl.MergedFiles++
		tl.WorkerSecondsUsed += p.Now() - start
		mergeBusy--
	}

	// spawnMerges starts merge tasks for accumulated outputs; in
	// interleaved mode partial groups stay back until they fill up.
	spawnMerges := func(final bool) {
		for unmerged >= outputsPerMerge || (final && unmerged > 0) {
			n := outputsPerMerge
			if n > unmerged {
				n = unmerged
			}
			unmerged -= n
			mergeBusy++
			nn := n
			s.Go(func(p *simevent.Proc) { runMerge(p, nn) })
		}
	}

	// Analysis tasks.
	for i := 0; i < cfg.AnalysisTasks; i++ {
		dur := cfg.TaskTime.Sample(rng)
		s.Go(func(p *simevent.Proc) {
			start := p.Now()
			slots.Acquire(p)
			p.Wait(dur)
			chirpMove(p, cfg.OutputBytes)
			slots.Release()
			tl.AnalysisDone = append(tl.AnalysisDone, p.Now())
			tl.WorkerSecondsUsed += p.Now() - start
			analysed++
			unmerged++
			if mode == "interleaved" &&
				float64(analysed) >= cfg.StartFraction*float64(cfg.AnalysisTasks) {
				spawnMerges(false)
			}
			if analysed == cfg.AnalysisTasks {
				tl.LastAnalysis = p.Now()
				switch mode {
				case "sequential", "interleaved":
					spawnMerges(true)
				case "hadoop":
					startHadoopMerge(s, cfg, tl, &unmerged)
				}
			}
		})
	}
	s.Run()
	if len(tl.MergeDone) > 0 {
		tl.LastMerge = tl.MergeDone[0]
		for _, t := range tl.MergeDone {
			if t > tl.LastMerge {
				tl.LastMerge = t
			}
		}
	}
	_ = mergeBusy
	return tl, nil
}

// startHadoopMerge models the in-cluster MapReduce merge: reducers run in
// parallel inside the storage cluster at HDFS bandwidth, with no Chirp
// traffic.
func startHadoopMerge(s *simevent.Sim, cfg MergeSimConfig, tl *MergeTimeline, unmerged *int) {
	outputsPerMerge := int(math.Ceil(cfg.TargetBytes / cfg.OutputBytes))
	groups := 0
	for *unmerged > 0 {
		n := outputsPerMerge
		if n > *unmerged {
			n = *unmerged
		}
		*unmerged -= n
		groups++
		nn := n
		g := groups
		s.Go(func(p *simevent.Proc) {
			// Wait for a reducer slot (groups beyond the reducer count queue).
			wave := (g - 1) / cfg.HDFSReducers
			jobStartup := 300.0 // job submission + JVM spin-up era cost
			perGroup := float64(nn) * cfg.OutputBytes * 2 / (cfg.HDFSBandwidth / float64(cfg.HDFSReducers))
			p.Wait(jobStartup + float64(wave)*perGroup + perGroup)
			tl.MergeDone = append(tl.MergeDone, p.Now())
			tl.MergedFiles++
		})
	}
}

// Figure7 runs all three modes concurrently and returns them in paper order.
func Figure7(cfg MergeSimConfig) ([]*MergeTimeline, error) {
	modes := []string{"sequential", "hadoop", "interleaved"}
	out := make([]*MergeTimeline, len(modes))
	err := parallelFor(len(modes), func(i int) error {
		tl, err := SimulateMerging(cfg, modes[i])
		if err != nil {
			return err
		}
		out[i] = tl
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
