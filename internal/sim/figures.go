package sim

import (
	"fmt"
	"sort"

	"lobster/internal/monitor"
	"lobster/internal/xrootd"
)

// This file assembles BigRunResult data into the exact figure/table shapes
// of the paper's evaluation section.

// Figure8 returns the runtime-decomposition table of the data-processing
// run (the paper's CPU 53.4 %, I/O 20.4 %, Failed 14.0 %, WQ stage-in
// 6.9 %, WQ stage-out 2.8 %).
func Figure8(res *BigRunResult) []monitor.BreakdownRow {
	return res.Monitor.Breakdown()
}

// Figure9 builds the federation dashboard view: volume transferred via
// XrootD for the top consumers during [winStart, winEnd). Lobster's volume
// comes from the simulated run's successful stage-ins in the window; the
// other CMS consumers — T1/T2 sites running ordinary production and
// analysis — are synthesised at volumes below the saturated-campus-link
// level, reproducing the paper's finding that Lobster was the single
// biggest consumer in the federation during its run.
func Figure9(res *BigRunResult, winStart, winEnd float64) []xrootd.ConsumerVolume {
	dash := xrootd.NewDashboard()
	var lobsterBytes int64
	res.Monitor.Each(func(r *monitor.TaskRecord) {
		if r.Failed() || r.Finish < winStart || r.Finish >= winEnd {
			return
		}
		lobsterBytes += int64(r.Metrics["bytes_in"])
	})
	dash.Record("ND Lobster (T3_US_NotreDame)", lobsterBytes)
	// Synthetic peers: fixed fractions of the Lobster volume, which itself
	// is pinned by the saturated campus uplink. The ordering (not the
	// absolute numbers) is the figure's claim.
	peers := []struct {
		site string
		frac float64
	}{
		{"T1_US_FNAL", 0.81},
		{"T2_US_Wisconsin", 0.64},
		{"T2_DE_DESY", 0.52},
		{"T2_US_Nebraska", 0.44},
		{"T2_CH_CERN", 0.37},
		{"T2_UK_London_IC", 0.30},
		{"T2_US_Purdue", 0.24},
		{"T2_IT_Pisa", 0.19},
		{"T2_FR_GRIF", 0.15},
	}
	for _, p := range peers {
		dash.Record(p.site, int64(p.frac*float64(lobsterBytes)))
	}
	return dash.Top(10)
}

// Fig10Data is the three-panel timeline of the data-processing run.
type Fig10Data struct {
	BinWidth  float64
	Times     []float64
	Running   []float64 // concurrent tasks
	Completed []int     // per bin
	Failed    []int     // per bin (real failures, not preemptions)
	Eff       []float64 // CPU-time / wall-clock per bin
}

// Figure10 bins the run into the timeline panels. Worker preemptions
// (ExitEvicted) are re-queues, not task failures, and are excluded from the
// failure panel, as in the paper's middle plot.
func Figure10(res *BigRunResult, binWidth float64) (*Fig10Data, error) {
	tl, err := res.Monitor.Timeline(0, res.Config.Duration, binWidth)
	if err != nil {
		return nil, err
	}
	codes, err := res.Monitor.FailureCodes(0, res.Config.Duration, binWidth)
	if err != nil {
		return nil, err
	}
	d := &Fig10Data{BinWidth: binWidth}
	for i := 0; i < tl.Bins; i++ {
		d.Times = append(d.Times, tl.BinTime(i))
		d.Running = append(d.Running, tl.Running[i])
		d.Completed = append(d.Completed, tl.Completed[i])
		d.Failed = append(d.Failed, countExcluding(codes[i], ExitEvicted))
		d.Eff = append(d.Eff, tl.Eff[i])
	}
	return d, nil
}

// Fig11Data is the four-panel timeline of the simulation run.
type Fig11Data struct {
	BinWidth  float64
	Times     []float64
	Running   []float64
	SetupMean []float64 // mean release-setup time of tasks finishing per bin
	StageOut  []float64 // mean stage-out time per bin
	// FailureCodes maps bin → exit code → count (preemptions excluded).
	FailureCodes []map[int]int
}

// Figure11 bins the simulation run into its panels.
func Figure11(res *BigRunResult, binWidth float64) (*Fig11Data, error) {
	tl, err := res.Monitor.Timeline(0, res.Config.Duration, binWidth)
	if err != nil {
		return nil, err
	}
	codes, err := res.Monitor.FailureCodes(0, res.Config.Duration, binWidth)
	if err != nil {
		return nil, err
	}
	d := &Fig11Data{BinWidth: binWidth}
	for i := 0; i < tl.Bins; i++ {
		d.Times = append(d.Times, tl.BinTime(i))
		d.Running = append(d.Running, tl.Running[i])
		d.SetupMean = append(d.SetupMean, tl.SetupMean[i])
		d.StageOut = append(d.StageOut, tl.StageOut[i])
		byCode := make(map[int]int)
		for _, c := range codes[i] {
			if c != ExitEvicted {
				byCode[c]++
			}
		}
		d.FailureCodes = append(d.FailureCodes, byCode)
	}
	return d, nil
}

func countExcluding(codes []int, exclude int) int {
	n := 0
	for _, c := range codes {
		if c != exclude {
			n++
		}
	}
	return n
}

// PeakSetup returns the largest per-bin mean setup time and the bin time at
// which it occurs (the Figure 11 cold-ramp peak).
func (d *Fig11Data) PeakSetup() (atTime, setup float64) {
	for i, s := range d.SetupMean {
		if s > setup {
			setup = s
			atTime = d.Times[i]
		}
	}
	return atTime, setup
}

// OutageWindowStats summarises the failure burst of Figure 10: the bin with
// the most failures and the efficiency within the outage window versus
// outside it.
func (d *Fig10Data) OutageWindowStats(outStart, outEnd float64) (peakFailures int, effIn, effOut float64) {
	var inSum, outSum float64
	var inN, outN int
	for i, t := range d.Times {
		if d.Failed[i] > peakFailures {
			peakFailures = d.Failed[i]
		}
		if d.Eff[i] == 0 && d.Running[i] == 0 {
			continue // empty bin
		}
		if t >= outStart && t < outEnd {
			inSum += d.Eff[i]
			inN++
		} else {
			outSum += d.Eff[i]
			outN++
		}
	}
	if inN > 0 {
		effIn = inSum / float64(inN)
	}
	if outN > 0 {
		effOut = outSum / float64(outN)
	}
	return peakFailures, effIn, effOut
}

// Fig7Binned renders a MergeTimeline into per-bin completion counts for the
// paper's stacked-bar presentation.
type Fig7Binned struct {
	Mode      string
	BinWidth  float64
	Times     []float64
	Analysis  []int
	Merges    []int
	LastMerge float64
}

// BinMergeTimeline aggregates a merge-mode timeline into bins.
func BinMergeTimeline(tl *MergeTimeline, binWidth float64) (*Fig7Binned, error) {
	if binWidth <= 0 {
		return nil, fmt.Errorf("sim: bin width %g", binWidth)
	}
	end := tl.LastMerge
	if tl.LastAnalysis > end {
		end = tl.LastAnalysis
	}
	nbins := int(end/binWidth) + 1
	out := &Fig7Binned{Mode: tl.Mode, BinWidth: binWidth, LastMerge: tl.LastMerge,
		Analysis: make([]int, nbins), Merges: make([]int, nbins)}
	for i := 0; i < nbins; i++ {
		out.Times = append(out.Times, float64(i)*binWidth)
	}
	for _, t := range tl.AnalysisDone {
		out.Analysis[int(t/binWidth)]++
	}
	for _, t := range tl.MergeDone {
		out.Merges[int(t/binWidth)]++
	}
	return out, nil
}

// SortedCodes returns the distinct failure codes seen in a Fig11Data,
// sorted, for stable rendering.
func (d *Fig11Data) SortedCodes() []int {
	seen := map[int]bool{}
	for _, m := range d.FailureCodes {
		for c := range m {
			seen[c] = true
		}
	}
	var out []int
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
