package sim

import (
	"fmt"
	"testing"

	"lobster/internal/health"
	"lobster/internal/telemetry"
	"lobster/internal/tsdb"
)

// tsdbRun is healthRun with the hub's history store exposed: the Figure
// 11 run scraped on the simulated clock, every merged tick appended to
// the embedded tsdb.
func tsdbRun(t *testing.T, cfg BigRunConfig, interval float64) (*BigRunResult, *health.Hub) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg

	now := 0.0
	hub := health.NewHub(health.Config{
		Endpoints: []health.Endpoint{
			{Name: "sim", Component: "master", Source: &health.RegistrySource{Reg: reg}},
		},
		Rules: health.NewRuleSet(health.DefaultRules()),
		Clock: func() float64 { return now },
	})
	cfg.HealthInterval = interval
	cfg.HealthTick = func(simNow float64) {
		now = simNow
		hub.Tick()
	}
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, hub
}

// TestGoldenBigRunRampQuery pins the Figure 5 ramp reconstructed from
// history: the worker ramp (pilots up) and the dispatch rate, queried
// back out of the tsdb the hub recorded during the run. Two golden
// properties: the run's physics stay bit-identical to the pre-tsdb
// kernel (recording reads the registry and never touches the RNG), and
// the query results are pinned to the exact float — same compression
// round-trip, same counter-reset handling, same step alignment, every
// time.
func TestGoldenBigRunRampQuery(t *testing.T) {
	res, hub := tsdbRun(t, SimRunConfig(0.05), 60)
	if res.TasksDone != 1860 || res.TasksFailed != 383 || res.Evictions != 41 ||
		res.WANBytes != 0 || res.ChirpBytes != 107303801934.7655 || res.PeakCores != 1000 {
		t.Errorf("tsdb-recorded run diverged from golden: done=%d failed=%d evict=%d wan=%.17g chirp=%.17g peak=%d",
			res.TasksDone, res.TasksFailed, res.Evictions, res.WANBytes, res.ChirpBytes, res.PeakCores)
	}
	st := hub.Store()

	eval := func(expr string, start, end, step float64) []string {
		t.Helper()
		q, err := tsdb.ParseQuery(expr)
		if err != nil {
			t.Fatalf("parse %q: %v", expr, err)
		}
		rs := st.EvalRange(q, start, end, step)
		if len(rs) != 1 {
			t.Fatalf("%q returned %d series, want 1", expr, len(rs))
		}
		out := make([]string, 0, len(rs[0].Samples))
		for _, s := range rs[0].Samples {
			out = append(out, fmt.Sprintf("%g:%.17g", s.T, s.V))
		}
		return out
	}

	// Fig 5: worker ramp — pilots up, averaged over 10-minute windows,
	// one point per half hour of simulated time.
	ramp := eval(`avg_over_time(lobster_cluster_pilots_up[600])`, 1800, 23400, 1800)
	wantRamp := []string{
		"1800:100.09999999999999", "3600:124", "5400:124.8", "7200:124.5",
		"9000:125", "10800:125", "12600:122.40000000000001", "14400:125",
		"16200:123.90000000000001", "18000:124.09999999999999", "19800:123.7",
		"21600:124.8", "23400:122.5",
	}
	pin(t, "ramp", ramp, wantRamp)

	// Fig 5 companion: dispatch throughput over the same grid, via the
	// counter-reset-safe rate shared with the alert rules.
	disp := eval(`sum(rate(lobster_wq_dispatches_total[1800]))`, 3600, 21600, 3600)
	wantDisp := []string{
		"3600:0.022988505747126436", "7200:0.0045977011494252873",
		"10800:0.0045977011494252873", "14400:0.022988505747126436",
		"18000:0.029885057471264367", "21600:0.089080459770114945",
	}
	pin(t, "dispatch rate", disp, wantDisp)
}

func pin(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d\ngot: %q", name, len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s[%d] = %q, want %q", name, i, got[i], want[i])
		}
	}
}
