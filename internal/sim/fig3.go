// Package sim implements the simulation plane: deterministic models of
// Lobster running at the paper's scale (8k–20k cores), used to regenerate
// every figure the production system produced. The small-scale real plane
// (packages wq, chirp, squid, ...) validates component behaviour; this
// package composes calibrated models of the same components where the paper
// used months of wall-clock time on a 20k-core cluster.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"lobster/internal/stats"
)

// TaskSizeConfig parameterises the Figure 3 study, defaulting to the paper's
// exact numbers: 100,000 tasklets, 8,000 workers, 5-minute per-worker and
// 20-minute per-task overheads, tasklet times N(10 min, 5 min).
type TaskSizeConfig struct {
	Tasklets       int
	Workers        int
	WorkerOverhead float64 // seconds, incurred at worker start and re-start
	TaskOverhead   float64 // seconds, incurred per task
	TaskletTime    stats.Dist
	Seed           uint64
}

// DefaultTaskSizeConfig returns the paper's parameters.
func DefaultTaskSizeConfig() TaskSizeConfig {
	return TaskSizeConfig{
		Tasklets:       100000,
		Workers:        8000,
		WorkerOverhead: 5 * 60,
		TaskOverhead:   20 * 60,
		TaskletTime:    stats.Gaussian{Mu: 10 * 60, Sigma: 5 * 60, Floor: 60},
		Seed:           1,
	}
}

// EvictionScenario is one of the three Figure 3 scenarios.
type EvictionScenario interface {
	// Name labels the scenario in figure output.
	Name() string
	// NewLife draws the local uptime at which a fresh worker life ends
	// (math.Inf(1) if this scenario evicts per task instead).
	NewLife(rng *stats.Rand) float64
	// PerTask returns an eviction time within the upcoming task, given the
	// worker's uptime and the task's span, or +Inf to not evict.
	PerTask(uptime, span float64, rng *stats.Rand) float64
}

// NoEviction never evicts (the solid curve).
type NoEviction struct{}

// Name implements EvictionScenario.
func (NoEviction) Name() string { return "none" }

// NewLife implements EvictionScenario.
func (NoEviction) NewLife(*stats.Rand) float64 { return math.Inf(1) }

// PerTask implements EvictionScenario.
func (NoEviction) PerTask(_, _ float64, _ *stats.Rand) float64 { return math.Inf(1) }

// ConstantEviction models a constant eviction probability per unit time — a
// constant hazard rate, i.e. exponentially-distributed worker lifetimes (the
// dotted curve; the paper's "constant probability of 0.1" reads as 0.1 per
// hour). Constant hazard is the natural null hypothesis against the
// availability-dependent hazard observed in Figure 2, and with comparable
// mean lifetimes the two produce nearly identical efficiency curves, which
// is exactly the paper's finding.
type ConstantEviction struct{ RatePerHour float64 }

// Name implements EvictionScenario.
func (ConstantEviction) Name() string { return "constant" }

// NewLife implements EvictionScenario.
func (c ConstantEviction) NewLife(rng *stats.Rand) float64 {
	if c.RatePerHour <= 0 {
		return math.Inf(1)
	}
	return stats.Exponential{MeanVal: 3600 / c.RatePerHour}.Sample(rng)
}

// PerTask implements EvictionScenario.
func (ConstantEviction) PerTask(_, _ float64, _ *stats.Rand) float64 { return math.Inf(1) }

// ObservedEviction draws worker survival times from an observed availability
// distribution (the dashed curve; Figure 2's data feeding Figure 3).
type ObservedEviction struct{ Survival stats.Dist }

// Name implements EvictionScenario.
func (ObservedEviction) Name() string { return "observed" }

// NewLife implements EvictionScenario.
func (o ObservedEviction) NewLife(rng *stats.Rand) float64 { return o.Survival.Sample(rng) }

// PerTask implements EvictionScenario.
func (ObservedEviction) PerTask(_, _ float64, _ *stats.Rand) float64 { return math.Inf(1) }

// EfficiencyPoint is one point of the Figure 3 curve.
type EfficiencyPoint struct {
	TaskHours  float64
	Efficiency float64
	Evictions  int
}

// workerHeap orders workers by the global time they next become free.
type simWorker struct {
	free   float64 // global time when next free
	uptime float64 // local time since this life started
	death  float64 // local uptime at which this life ends
	regime int     // eviction regime the death was drawn under (adaptive.go)
	index  int
}

type workerHeap []*simWorker

func (h workerHeap) Len() int           { return len(h) }
func (h workerHeap) Less(i, j int) bool { return h[i].free < h[j].free }
func (h workerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *workerHeap) Push(x any)        { w := x.(*simWorker); w.index = len(*h); *h = append(*h, w) }
func (h *workerHeap) Pop() any          { old := *h; n := len(old); w := old[n-1]; *h = old[:n-1]; return w }

// SimulateTaskSize runs the paper's §4.1 simulation for one task size
// (tasklets per task) under one scenario, returning the achieved efficiency.
func SimulateTaskSize(cfg TaskSizeConfig, scenario EvictionScenario, taskletsPerTask int) (EfficiencyPoint, error) {
	if taskletsPerTask < 1 {
		return EfficiencyPoint{}, fmt.Errorf("sim: tasklets per task %d", taskletsPerTask)
	}
	if cfg.Tasklets <= 0 || cfg.Workers <= 0 || cfg.TaskletTime == nil {
		return EfficiencyPoint{}, fmt.Errorf("sim: invalid task size config %+v", cfg)
	}
	rng := stats.NewRand(cfg.Seed)
	pool := cfg.Tasklets
	var totalTime, effective float64
	evictions := 0

	h := make(workerHeap, 0, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w := &simWorker{free: cfg.WorkerOverhead, uptime: cfg.WorkerOverhead,
			death: scenario.NewLife(rng)}
		totalTime += cfg.WorkerOverhead
		heap.Push(&h, w)
	}

	completed := 0
	for completed < cfg.Tasklets && h.Len() > 0 {
		w := heap.Pop(&h).(*simWorker)
		if pool <= 0 {
			continue // worker retires; in-flight work of others continues
		}
		k := taskletsPerTask
		if k > pool {
			k = pool
		}
		pool -= k
		var proc float64
		for i := 0; i < k; i++ {
			proc += cfg.TaskletTime.Sample(rng)
		}
		span := cfg.TaskOverhead + proc
		death := math.Min(w.death, scenario.PerTask(w.uptime, span, rng))
		if w.uptime+span > death {
			// Evicted mid-task: the partial work is lost, the tasklets go
			// back to the pool, and a fresh worker life begins after the
			// per-worker startup overhead.
			lost := death - w.uptime
			if lost < 0 {
				lost = 0
			}
			totalTime += lost + cfg.WorkerOverhead
			pool += k
			evictions++
			w.free += lost + cfg.WorkerOverhead
			w.uptime = cfg.WorkerOverhead
			w.death = scenario.NewLife(rng)
			heap.Push(&h, w)
			continue
		}
		w.uptime += span
		w.free += span
		totalTime += span
		effective += proc
		completed += k
		heap.Push(&h, w)
	}
	p := EfficiencyPoint{
		TaskHours: float64(taskletsPerTask) * cfg.TaskletTime.Mean() / 3600,
		Evictions: evictions,
	}
	if totalTime > 0 {
		p.Efficiency = effective / totalTime
	}
	return p, nil
}

// Fig3Result holds one scenario's efficiency curve.
type Fig3Result struct {
	Scenario string
	Points   []EfficiencyPoint
}

// Figure3 sweeps task lengths from 1 to maxHours hours for the three
// scenarios of the paper: constant probability 0.1, observed availability,
// and no eviction. observed supplies the measured survival distribution
// (typically cluster.SurvivalDistribution over a trace).
func Figure3(cfg TaskSizeConfig, observed stats.Dist, maxHours int) ([]Fig3Result, error) {
	if maxHours < 1 {
		maxHours = 10
	}
	scenarios := []EvictionScenario{
		ConstantEviction{RatePerHour: 0.1},
		ObservedEviction{Survival: observed},
		NoEviction{},
	}
	taskletsPerHour := 3600 / cfg.TaskletTime.Mean()
	out := make([]Fig3Result, len(scenarios))
	for i, sc := range scenarios {
		out[i] = Fig3Result{Scenario: sc.Name(), Points: make([]EfficiencyPoint, maxHours)}
	}
	// Every (scenario, task length) point is an independent simulation with
	// its own Rand, so the whole grid runs concurrently; index-addressed
	// writes keep the output identical to the sequential sweep.
	err := parallelFor(len(scenarios)*maxHours, func(j int) error {
		si, h := j/maxHours, j%maxHours+1
		k := int(math.Round(float64(h) * taskletsPerHour))
		if k < 1 {
			k = 1
		}
		p, err := SimulateTaskSize(cfg, scenarios[si], k)
		if err != nil {
			return err
		}
		out[si].Points[h-1] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PeakEfficiency returns the task length (hours) and efficiency of the best
// point in a curve.
func PeakEfficiency(points []EfficiencyPoint) (hours, eff float64) {
	for _, p := range points {
		if p.Efficiency > eff {
			eff = p.Efficiency
			hours = p.TaskHours
		}
	}
	return hours, eff
}
