package sim

import (
	"lobster/internal/telemetry"
)

// bigRunTelemetry drives the real plane's metric series from the simulated
// clock: the same series names, the same instruments, with time supplied by
// the discrete-event scheduler instead of the wall. The zero value is free
// (every instrument nil), so an uninstrumented run pays one branch per
// update site. Telemetry never touches the RNG or event ordering, keeping
// instrumented runs bit-identical to uninstrumented ones.
type bigRunTelemetry struct {
	// Master-side series (mirrors wq.Master.Instrument).
	dispatches   *telemetry.Counter
	requeues     *telemetry.Counter
	tasksDone    *telemetry.Counter
	tasksFailed  *telemetry.Counter
	tasksWaiting *telemetry.Gauge
	tasksRunning *telemetry.Gauge

	// Software delivery (mirrors squid.Proxy.Instrument): cold-cache pulls
	// are misses, warm setups are hits, slot-mates waiting on a cold pull
	// are coalesced.
	squidHits      *telemetry.Counter
	squidMisses    *telemetry.Counter
	squidCoalesced *telemetry.Counter
	squidFetched   *telemetry.Counter

	// Storage element (mirrors chirp.Server.Instrument).
	chirpActive   *telemetry.Gauge
	chirpQueued   *telemetry.Gauge
	chirpBytesIn  *telemetry.Counter
	chirpBytesOut *telemetry.Counter

	// Pilot fleet (mirrors cluster.Pool.Instrument).
	pilotsUp  *telemetry.Gauge
	launched  *telemetry.Counter
	evictions *telemetry.Counter

	// Task lifecycle stage histograms (lobster_task_stage_seconds{stage}).
	tracer *telemetry.Tracer
}

// init registers the simulated plane's series on reg. The registry's clock
// must already be the simulation clock so scrape timestamps and span times
// land in simulated seconds.
func (t *bigRunTelemetry) init(reg *telemetry.Registry) {
	t.dispatches = reg.Counter("lobster_wq_dispatches_total",
		"Tasks dispatched to workers.")
	t.requeues = reg.Counter("lobster_wq_requeues_total",
		"Tasks requeued after losing their worker.")
	t.tasksDone = reg.Counter("lobster_wq_tasks_done_total",
		"Tasks that returned success.")
	t.tasksFailed = reg.Counter("lobster_wq_tasks_failed_total",
		"Tasks that returned failure.")
	t.tasksWaiting = reg.Gauge("lobster_wq_tasks_waiting",
		"Tasks queued and awaiting dispatch.")
	t.tasksRunning = reg.Gauge("lobster_wq_tasks_running",
		"Tasks currently running on workers.")

	t.squidHits = reg.Counter("lobster_squid_hits_total",
		"Setups served from a warm worker cache.")
	t.squidMisses = reg.Counter("lobster_squid_misses_total",
		"Cold-cache setups pulled through the proxy.")
	t.squidCoalesced = reg.Counter("lobster_squid_coalesced_total",
		"Setups that piggybacked on a slot-mate's in-flight cold pull.")
	t.squidFetched = reg.Counter("lobster_squid_bytes_fetched_total",
		"Bytes pulled through the proxy for cold caches.")
	reg.GaugeFunc("lobster_squid_hit_ratio",
		"Warm-setup ratio: hits / (hits + misses).",
		func() float64 {
			h, m := float64(t.squidHits.Value()), float64(t.squidMisses.Value())
			if h+m == 0 {
				return 0
			}
			return h / (h + m)
		})

	t.chirpActive = reg.Gauge("lobster_chirp_active_connections",
		"Transfers holding a chirp service slot right now.")
	t.chirpQueued = reg.Gauge("lobster_chirp_queued_connections",
		"Transfers waiting for a chirp service slot.")
	t.chirpBytesIn = reg.Counter("lobster_chirp_bytes_in_total",
		"Bytes staged out to the storage element.")
	t.chirpBytesOut = reg.Counter("lobster_chirp_bytes_out_total",
		"Bytes staged in from the storage element (pile-up).")

	t.pilotsUp = reg.Gauge("lobster_cluster_pilots_up",
		"Pilot workers currently connected.")
	t.launched = reg.Counter("lobster_cluster_pilots_launched_total",
		"Pilot worker lives ever started (including restarts).")
	t.evictions = reg.Counter("lobster_cluster_evictions_total",
		"Pilot workers evicted by the batch system.")

	t.tracer = telemetry.NewTracer(reg, nil)
}
