package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(0..n-1) across up to GOMAXPROCS worker goroutines and
// waits for all of them. Each figure point builds its own Sim and Rand, so
// points are independent; callers preserve determinism by writing results
// into index-addressed slots rather than appending in completion order. When
// several jobs fail, the error from the lowest index is returned, so the
// reported failure is also independent of scheduling.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = n
		err    error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if e := fn(i); e != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, err = i, e
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return err
}
