package sim

import (
	"fmt"

	"lobster/internal/simevent"
)

// AccessConfig parameterises the Figure 4 data-access comparison: the same
// task population run once with staged input (transfer fully, then process)
// and once with streamed input (transfer and processing pipelined).
type AccessConfig struct {
	Tasks       int
	InputBytes  float64 // per task
	OutputBytes float64 // per task
	CPUTime     float64 // pure processing seconds per task
	// WANBandwidth is the shared inbound link all tasks stream/stage over.
	WANBandwidth float64
	// SEBandwidth is the storage-element link for stage-out.
	SEBandwidth float64
	Workers     int // concurrent task slots
}

// DefaultAccessConfig: tasks whose input transfer time is comparable to
// their CPU time, so the access mode matters.
func DefaultAccessConfig() AccessConfig {
	return AccessConfig{
		Tasks:        400,
		InputBytes:   4e9,
		OutputBytes:  100e6,
		CPUTime:      400,
		WANBandwidth: 1.25e9, // 10 Gbit/s campus uplink
		SEBandwidth:  1.25e9,
		Workers:      100,
	}
}

// AccessResult is one bar of Figure 4: the mean task runtime split into the
// data-processing part and general overhead.
type AccessResult struct {
	Mode           string
	MeanRuntime    float64 // seconds per task
	MeanProcessing float64 // CPU-engaged seconds per task
	MeanOverhead   float64 // non-processing seconds per task
	CPUUtilization float64 // processing / runtime
	Makespan       float64 // total wall time of the whole batch
}

// SimulateAccessMode runs the batch with the given access mode ("stage" or
// "stream").
func SimulateAccessMode(cfg AccessConfig, mode string) (*AccessResult, error) {
	if cfg.Tasks <= 0 || cfg.Workers <= 0 {
		return nil, fmt.Errorf("sim: invalid access config %+v", cfg)
	}
	if mode != "stage" && mode != "stream" {
		return nil, fmt.Errorf("sim: unknown access mode %q", mode)
	}
	s := simevent.New()
	wan := simevent.NewLink(s, cfg.WANBandwidth)
	se := simevent.NewLink(s, cfg.SEBandwidth)
	slots := simevent.NewResource(s, cfg.Workers)

	var totalRuntime, totalProcessing float64
	for i := 0; i < cfg.Tasks; i++ {
		s.Go(func(p *simevent.Proc) {
			slots.Acquire(p)
			defer slots.Release()
			start := p.Now()
			switch mode {
			case "stage":
				// Sequential: full transfer, then full CPU burst.
				wan.Transfer(p, cfg.InputBytes)
				p.Wait(cfg.CPUTime)
			case "stream":
				// Pipelined: data is consumed as it arrives, so the task
				// takes max(transfer, cpu) — modelled as chunks where CPU
				// overlaps the next chunk's transfer.
				const chunks = 16
				perChunkBytes := cfg.InputBytes / chunks
				perChunkCPU := cfg.CPUTime / chunks
				tCPUFree := p.Now() // when the CPU finishes the previous chunk
				for c := 0; c < chunks; c++ {
					wan.Transfer(p, perChunkBytes)
					// CPU processes this chunk after it finishes the last.
					if p.Now() > tCPUFree {
						tCPUFree = p.Now()
					}
					tCPUFree += perChunkCPU
				}
				p.WaitUntil(tCPUFree)
			}
			se.Transfer(p, cfg.OutputBytes)
			totalRuntime += p.Now() - start
			totalProcessing += cfg.CPUTime
		})
	}
	s.Run()
	n := float64(cfg.Tasks)
	res := &AccessResult{
		Mode:           mode,
		MeanRuntime:    totalRuntime / n,
		MeanProcessing: totalProcessing / n,
		Makespan:       s.Now(),
	}
	res.MeanOverhead = res.MeanRuntime - res.MeanProcessing
	if res.MeanRuntime > 0 {
		res.CPUUtilization = res.MeanProcessing / res.MeanRuntime
	}
	return res, nil
}

// Figure4 runs both modes and returns staging first, streaming second, as
// in the paper's figure.
func Figure4(cfg AccessConfig) ([]*AccessResult, error) {
	modes := []string{"stage", "stream"}
	out := make([]*AccessResult, len(modes))
	err := parallelFor(len(modes), func(i int) error {
		r, err := SimulateAccessMode(cfg, modes[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
