package sim

import (
	"fmt"
	"math"

	"lobster/internal/monitor"
	"lobster/internal/simevent"
	"lobster/internal/stats"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// BigRunConfig describes an at-scale production run: the 10k-core data
// processing run of Figures 8–10 or the 20k-core simulation run of
// Figure 11. All times are seconds, all sizes bytes.
type BigRunConfig struct {
	Name           string
	Workers        int // worker pilots
	CoresPerWorker int // paper: 8 cores sharing one cache
	Duration       float64
	RampUp         float64    // pilots join uniformly over [0, RampUp]
	Survival       stats.Dist // time-to-eviction per worker life; nil = none
	RestartDelay   float64    // batch re-grant delay after an eviction

	// Task population. TotalTasks == 0 sizes the pool to fill the window.
	TotalTasks       int
	TaskCPU          stats.Dist
	InputBytes       float64 // WAN-streamed input per task (analysis runs)
	PileupBytes      float64 // chirp-staged input per task (simulation runs)
	OutputBytes      float64
	DispatchOverhead stats.Dist // WQ sandbox/task send time

	// Wide-area network shared by all streaming tasks.
	WANBandwidth                 float64
	WANOutageStart, WANOutageEnd float64 // transient federation outage
	// OutageFailDelay is how long a task flails before failing when the
	// federation is down (client retries and timeouts; default 1200 s).
	OutageFailDelay float64

	// Software delivery (squid + parrot cache).
	ColdCacheBytes       float64 // per worker, first task of each life
	HotSetupTime         float64 // per task with a warm cache
	ProxyBandwidth       float64 // aggregate squid capacity
	ClientBandwidth      float64 // per-worker pull cap
	SetupTimeout         float64 // setups beyond this may fail (squid timeout)
	SetupTimeoutFailProb float64
	MiscFailProb         float64 // transient application failures (exit 50)

	// Storage element.
	ChirpSlots     int
	ChirpBandwidth float64

	MaxAttempts int // per task before giving up (generous; default 10)
	Seed        uint64

	// Telemetry, when set, records the real plane's metric series on the
	// simulated clock (the registry's clock is switched to simulation time).
	// Instrumentation never touches the RNG, so results are bit-identical
	// with or without it.
	Telemetry *telemetry.Registry
	// Tracer, when set, records one span tree per task attempt on the
	// simulated clock: a "task" root with dispatch/setup/stage_in/
	// execute/stage_out children whose intervals are exactly the stage
	// durations observed into the Telemetry histograms. Like Telemetry,
	// tracing never touches the RNG, so results are bit-identical with
	// or without it. For rate-limited sampling the tracer should share
	// the sim-clocked registry, so the token bucket refills in
	// simulation time.
	Tracer *trace.Tracer

	// HealthTick, when set, is invoked every HealthInterval simulated
	// seconds (default 30) for the length of the run — the hook the fleet
	// health hub's Tick runs from, so the identical anomaly detectors
	// evaluate the simulated cluster on the simulated clock. The ticker
	// proc is only spawned when the hook is set and never touches the
	// RNG, so runs without it stay bit-identical to the pinned goldens.
	HealthTick     func(now float64)
	HealthInterval float64
}

// Exit codes used by the big-run model, matching the wrapper's segment
// codes where applicable.
const (
	ExitSetupTimeout = 20  // software setup (squid) failure
	ExitWANOutage    = 40  // stage-in / federation failure
	ExitMisc         = 50  // transient application failure
	ExitEvicted      = 137 // worker preempted mid-task
)

// DataRunConfig returns the Figure 8/9/10 configuration at the given scale
// factor (1.0 = the paper's ~10k cores over two days; tests and quick
// benches use 0.1–0.25). Calibration: ~450 MB streamed per ~40 min of CPU
// keeps the fully-ramped run saturating the 10 Gbit/s campus link at just
// the point where CPU/wall ≈ 0.65–0.70, the paper's observed ceiling.
func DataRunConfig(scale float64) BigRunConfig {
	if scale <= 0 {
		scale = 1
	}
	workers := int(math.Round(1250 * scale))
	if workers < 10 {
		workers = 10
	}
	return BigRunConfig{
		Name:             "data-processing",
		Workers:          workers,
		CoresPerWorker:   8,
		Duration:         48 * 3600,
		RampUp:           4 * 3600,
		Survival:         stats.Weibull{K: 0.7, Lambda: 11 * 3600},
		RestartDelay:     600,
		TaskCPU:          stats.Gaussian{Mu: 2400, Sigma: 600, Floor: 300},
		InputBytes:       450e6,
		OutputBytes:      45e6,
		DispatchOverhead: stats.Gaussian{Mu: 240, Sigma: 80, Floor: 20},
		WANBandwidth:     1.25e9 * scale, // the 10 Gbit/s campus uplink
		WANOutageStart:   22 * 3600,
		WANOutageEnd:     25 * 3600,
		OutageFailDelay:  1800,
		ColdCacheBytes:   1.5e9,
		HotSetupTime:     30,
		ProxyBandwidth:   12.5e9 * scale,
		ClientBandwidth:  5e7,
		SetupTimeout:     7200,
		MiscFailProb:     0.004,
		ChirpSlots:       int(math.Max(8, 64*scale)),
		ChirpBandwidth:   1.25e9 * scale,
		Seed:             1,
	}
}

// SimRunConfig returns the Figure 11 configuration at the given scale
// (1.0 = ~20k cores over eight hours). The squid capacity is deliberately
// under-provisioned relative to the cold-start wave — the paper's deployed
// squid "had trouble serving up the data required to create the software
// environment fast enough", peaking release-setup times near 400 minutes.
func SimRunConfig(scale float64) BigRunConfig {
	if scale <= 0 {
		scale = 1
	}
	workers := int(math.Round(2500 * scale))
	if workers < 10 {
		workers = 10
	}
	return BigRunConfig{
		Name:                 "simulation",
		Workers:              workers,
		CoresPerWorker:       8,
		Duration:             8 * 3600,
		RampUp:               1800,
		Survival:             stats.Weibull{K: 0.8, Lambda: 24 * 3600},
		RestartDelay:         600,
		TaskCPU:              stats.Gaussian{Mu: 1500, Sigma: 400, Floor: 200},
		PileupBytes:          20e6,
		OutputBytes:          30e6,
		DispatchOverhead:     stats.Gaussian{Mu: 30, Sigma: 10, Floor: 5},
		WANBandwidth:         1.25e9 * scale, // barely used: pile-up is local
		ColdCacheBytes:       1.5e9,
		HotSetupTime:         20,
		ProxyBandwidth:       1.7e8 * scale, // one overwhelmed squid
		ClientBandwidth:      5e7,
		SetupTimeout:         7200,
		SetupTimeoutFailProb: 0.05,
		MiscFailProb:         0.004,
		ChirpSlots:           int(math.Max(8, 48*scale)),
		ChirpBandwidth:       2.5e8 * scale,
		Seed:                 1,
	}
}

// BigRunResult carries the simulated run's records and aggregates.
type BigRunResult struct {
	Config      BigRunConfig
	Monitor     *monitor.Monitor
	TasksDone   int
	TasksFailed int
	Evictions   int
	WANBytes    float64 // total bytes streamed over the WAN
	ChirpBytes  float64
	PeakCores   int // peak concurrently-running tasks
}

// taskPool hands out task attempts.
type taskPool struct {
	remaining int
	attempts  map[int]int
	nextID    int
	requeued  []int
	maxTries  int
}

func (tp *taskPool) take() (id int, ok bool) {
	if n := len(tp.requeued); n > 0 {
		id = tp.requeued[n-1]
		tp.requeued = tp.requeued[:n-1]
		return id, true
	}
	if tp.remaining <= 0 {
		return 0, false
	}
	tp.remaining--
	tp.nextID++
	return tp.nextID, true
}

// requeue returns the task to the pool for another attempt, reporting
// whether it had attempts left.
func (tp *taskPool) requeue(id int) bool {
	tp.attempts[id]++
	if tp.attempts[id] < tp.maxTries {
		tp.requeued = append(tp.requeued, id)
		return true
	}
	return false
}

// RunBig executes the model and returns its result. Deterministic for a
// given config.
func RunBig(cfg BigRunConfig) (*BigRunResult, error) {
	if cfg.Workers <= 0 || cfg.CoresPerWorker <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: invalid big-run config %+v", cfg)
	}
	if cfg.TaskCPU == nil || cfg.DispatchOverhead == nil {
		return nil, fmt.Errorf("sim: big-run config needs TaskCPU and DispatchOverhead")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.OutageFailDelay <= 0 {
		cfg.OutageFailDelay = 1200
	}
	cores := cfg.Workers * cfg.CoresPerWorker
	if cfg.TotalTasks == 0 {
		meanTask := cfg.TaskCPU.Mean() * 1.6 // rough wall estimate incl. I/O
		cfg.TotalTasks = int(float64(cores) * cfg.Duration / meanTask)
	}

	s := simevent.New()
	rng := stats.NewRand(cfg.Seed)
	res := &BigRunResult{Config: cfg, Monitor: monitor.New()}
	var tel bigRunTelemetry
	if cfg.Telemetry != nil {
		cfg.Telemetry.SetClock(s.Now)
		tel.init(cfg.Telemetry)
	}
	wan := simevent.NewLink(s, cfg.WANBandwidth)
	proxy := simevent.NewLink(s, cfg.ProxyBandwidth)
	chirpSlots := simevent.NewResource(s, cfg.ChirpSlots)
	chirpLink := simevent.NewLink(s, cfg.ChirpBandwidth)
	pool := &taskPool{remaining: cfg.TotalTasks, attempts: make(map[int]int), maxTries: cfg.MaxAttempts}

	running := 0
	recordID := int64(0)

	for w := 0; w < cfg.Workers; w++ {
		startAt := rng.Float64() * cfg.RampUp
		wrng := rng.Split()
		s.Go(func(p *simevent.Proc) {
			p.Wait(startAt)
			for p.Now() < cfg.Duration {
				life := &workerLife{cold: true, sig: simevent.NewSignal(s)}
				tel.launched.Inc()
				tel.pilotsUp.Add(1)
				span := math.Inf(1)
				if cfg.Survival != nil {
					span = cfg.Survival.Sample(wrng)
				}
				// Spawn the core slots of this life.
				coreProcs := make([]*simevent.Proc, 0, cfg.CoresPerWorker)
				for c := 0; c < cfg.CoresPerWorker; c++ {
					crng := wrng.Split()
					cp := s.Go(func(p *simevent.Proc) {
						runCoreSlot(p, &cfg, life, pool, crng,
							wan, proxy, chirpSlots, chirpLink,
							res, &running, &recordID, &tel)
					})
					coreProcs = append(coreProcs, cp)
				}
				if !math.IsInf(span, 1) && p.Now()+span < cfg.Duration {
					p.Wait(span)
					life.dead = true
					res.Evictions++
					tel.evictions.Inc()
					tel.pilotsUp.Add(-1)
					for _, cp := range coreProcs {
						cp.Interrupt()
					}
					p.Wait(cfg.RestartDelay)
					continue
				}
				// Life outlasts the run window.
				p.WaitUntil(cfg.Duration)
				life.dead = true
				tel.pilotsUp.Add(-1)
				for _, cp := range coreProcs {
					cp.Interrupt()
				}
				return
			}
		})
	}
	if cfg.HealthTick != nil {
		interval := cfg.HealthInterval
		if interval <= 0 {
			interval = 30
		}
		s.Go(func(p *simevent.Proc) {
			for p.Now() < cfg.Duration {
				p.Wait(interval)
				cfg.HealthTick(p.Now())
			}
		})
	}
	s.Run()
	res.WANBytes = wan.BytesMoved()
	res.ChirpBytes = chirpLink.BytesMoved()
	return res, nil
}

type workerLife struct {
	dead        bool
	cold        bool
	coldRunning bool
	sig         *simevent.Signal
}

// runCoreSlot is one core's task loop for one worker life.
func runCoreSlot(p *simevent.Proc, cfg *BigRunConfig, life *workerLife,
	pool *taskPool, rng *stats.Rand,
	wan, proxy *simevent.Link, chirpSlots *simevent.Resource, chirpLink *simevent.Link,
	res *BigRunResult, running *int, recordID *int64, tel *bigRunTelemetry) {

	record := func(rec monitor.TaskRecord) {
		*recordID++
		rec.TaskID = *recordID
		rec.Kind = cfg.Name
		res.Monitor.Add(rec)
	}
	publish := func() {
		tel.tasksRunning.Set(float64(*running))
		tel.tasksWaiting.Set(float64(pool.remaining + len(pool.requeued)))
	}

	for !life.dead && p.Now() < cfg.Duration {
		taskID, ok := pool.take()
		if !ok {
			return
		}
		start := p.Now()
		*running++
		if *running > res.PeakCores {
			res.PeakCores = *running
		}
		tel.dispatches.Inc()
		publish()
		rec := monitor.TaskRecord{
			Worker:   "",
			Submit:   start,
			Dispatch: start,
			Requeues: pool.attempts[taskID],
		}
		// One span tree per attempt; segment spans are emitted
		// retroactively at the points the stage durations are observed,
		// so trace-derived breakdowns reconcile exactly with the
		// lobster_task_stage_seconds histograms.
		root := cfg.Tracer.RootAt(start, "sim", "task", cfg.Name)
		root.AttrInt("task_id", int64(taskID))
		root.AttrInt("attempt", int64(pool.attempts[taskID]))
		rctx := root.Context()
		segAt := func(at float64, name string) {
			sp := cfg.Tracer.StartAt(at, rctx, "sim", name)
			sp.EndAt(p.Now())
		}
		fail := func(code int, setup, io, stageOut float64) {
			*running--
			if pool.requeue(taskID) {
				tel.requeues.Inc()
			}
			publish()
			root.AttrInt("exit_code", int64(code))
			root.EndAt(p.Now())
			if code == ExitEvicted && p.Now() >= cfg.Duration-1 {
				// End-of-window cancellation, not a real failure: the run
				// simply stopped with this task in flight.
				return
			}
			rec.Start = start
			rec.Finish = p.Now()
			rec.Return = p.Now()
			rec.ExitCode = code
			rec.SetupTime = setup
			rec.IOTime = io
			rec.StageOut = stageOut
			record(rec)
			res.TasksFailed++
			tel.tasksFailed.Inc()
		}

		// WQ dispatch (sandbox and task description send).
		dispatch := cfg.DispatchOverhead.Sample(rng)
		if !p.Wait(dispatch) {
			fail(ExitEvicted, 0, 0, 0)
			return
		}
		rec.WQStageIn = dispatch
		rec.Start = p.Now()
		tel.tracer.Observe(telemetry.StageDispatch, dispatch)
		segAt(start, "dispatch")

		// Software setup through the proxy layer. The first task of a life
		// fills the cold cache; its slot-mates wait on the shared cache.
		setupStart := p.Now()
		switch {
		case life.cold && !life.coldRunning:
			life.coldRunning = true
			tel.squidMisses.Inc()
			tel.squidFetched.Add(int64(cfg.ColdCacheBytes))
			okT := proxy.Transfer(p, cfg.ColdCacheBytes)
			if okT {
				// Client-side bandwidth cap.
				if floor := cfg.ColdCacheBytes / cfg.ClientBandwidth; p.Now()-setupStart < floor {
					okT = p.Wait(floor - (p.Now() - setupStart))
				}
			}
			if !okT {
				life.coldRunning = false
				fail(ExitEvicted, p.Now()-setupStart, 0, 0)
				return
			}
			life.cold = false
			life.sig.Broadcast()
		case life.cold:
			tel.squidCoalesced.Inc()
			if !life.sig.Await(p) {
				fail(ExitEvicted, p.Now()-setupStart, 0, 0)
				return
			}
		default:
			tel.squidHits.Inc()
			if !p.Wait(cfg.HotSetupTime) {
				fail(ExitEvicted, p.Now()-setupStart, 0, 0)
				return
			}
		}
		setup := p.Now() - setupStart
		tel.tracer.Observe(telemetry.StageSetup, setup)
		segAt(setupStart, "setup")
		if cfg.SetupTimeout > 0 && setup > cfg.SetupTimeout &&
			rng.Float64() < cfg.SetupTimeoutFailProb {
			fail(ExitSetupTimeout, setup, 0, 0)
			continue
		}
		rec.SetupTime = setup

		// Input: WAN streaming (analysis) and/or chirp staging (pile-up).
		ioStart := p.Now()
		if cfg.InputBytes > 0 {
			if p.Now() >= cfg.WANOutageStart && p.Now() < cfg.WANOutageEnd {
				// Federation down: the access flails through client retries
				// before giving up.
				if !p.Wait(cfg.OutageFailDelay) {
					fail(ExitEvicted, setup, p.Now()-ioStart, 0)
					return
				}
				fail(ExitWANOutage, setup, p.Now()-ioStart, 0)
				continue
			}
			if !wan.Transfer(p, cfg.InputBytes) {
				fail(ExitEvicted, setup, p.Now()-ioStart, 0)
				return
			}
			if p.Now() >= cfg.WANOutageStart && p.Now() < cfg.WANOutageEnd {
				// The outage began mid-stream; the task dies with it.
				fail(ExitWANOutage, setup, p.Now()-ioStart, 0)
				continue
			}
		}
		if cfg.PileupBytes > 0 {
			tel.chirpQueued.Add(1)
			ok := chirpSlots.Acquire(p)
			tel.chirpQueued.Add(-1)
			if !ok {
				fail(ExitEvicted, setup, p.Now()-ioStart, 0)
				return
			}
			tel.chirpActive.Add(1)
			okT := chirpLink.Transfer(p, cfg.PileupBytes)
			chirpSlots.Release()
			tel.chirpActive.Add(-1)
			if !okT {
				fail(ExitEvicted, setup, p.Now()-ioStart, 0)
				return
			}
			tel.chirpBytesOut.Add(int64(cfg.PileupBytes))
		}
		io := p.Now() - ioStart
		rec.IOTime = io
		tel.tracer.Observe(telemetry.StageStageIn, io)
		segAt(ioStart, "stage_in")

		// Transient application failure.
		if rng.Float64() < cfg.MiscFailProb {
			fail(ExitMisc, setup, io, 0)
			continue
		}

		// CPU burst.
		cpu := cfg.TaskCPU.Sample(rng)
		if !p.Wait(cpu) {
			fail(ExitEvicted, setup, io, 0)
			return
		}
		rec.CPUTime = cpu
		tel.tracer.Observe(telemetry.StageExecute, cpu)
		segAt(p.Now()-cpu, "execute")

		// Stage-out through the chirp connection cap.
		outStart := p.Now()
		tel.chirpQueued.Add(1)
		okA := chirpSlots.Acquire(p)
		tel.chirpQueued.Add(-1)
		if !okA {
			fail(ExitEvicted, setup, io, p.Now()-outStart)
			return
		}
		tel.chirpActive.Add(1)
		okT := chirpLink.Transfer(p, cfg.OutputBytes)
		chirpSlots.Release()
		tel.chirpActive.Add(-1)
		if !okT {
			fail(ExitEvicted, setup, io, p.Now()-outStart)
			return
		}
		tel.chirpBytesIn.Add(int64(cfg.OutputBytes))
		rec.StageOut = p.Now() - outStart
		tel.tracer.Observe(telemetry.StageStageOut, rec.StageOut)
		segAt(outStart, "stage_out")
		// Result collection by the loaded master (the paper's "time spent
		// waiting for responses").
		rec.WQStageOut = stats.Gaussian{Mu: 100, Sigma: 30, Floor: 5}.Sample(rng)

		root.AttrInt("exit_code", 0)
		root.EndAt(p.Now())

		*running--
		rec.Finish = p.Now()
		rec.Return = p.Now() + rec.WQStageOut
		rec.Metrics = map[string]float64{
			"bytes_in":  cfg.InputBytes + cfg.PileupBytes,
			"bytes_out": cfg.OutputBytes,
		}
		record(rec)
		res.TasksDone++
		tel.tasksDone.Inc()
		publish()
	}
}
