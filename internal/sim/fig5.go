package sim

import (
	"fmt"

	"lobster/internal/simevent"
	"lobster/internal/stats"
)

// ProxyConfig parameterises the Figure 5 proxy-cache scalability study:
// a wave of tasks starts simultaneously on fresh (cold) or pre-populated
// (hot) worker caches, all pulling the software working set through one
// squid proxy.
type ProxyConfig struct {
	// ColdBytes is the per-cache working set pulled on a cold start
	// (paper: ~1.5 GB per cache).
	ColdBytes float64
	// HotBytes is the residual per-task traffic with a hot cache (catalog
	// revalidation and the odd uncached file).
	HotBytes float64
	// ProxyBandwidth is the proxy's total service bandwidth in bytes/s.
	ProxyBandwidth float64
	// ClientBandwidth caps what a single worker can pull (its NIC share and
	// request pipelining limit); this sets where the knee appears:
	// ProxyBandwidth / ClientBandwidth concurrent clients saturate the
	// proxy (paper: ~1000 hot caches per proxy).
	ClientBandwidth float64
	// BaseOverhead is the task overhead unrelated to the proxy, seconds.
	BaseOverhead float64
	Seed         uint64
}

// DefaultProxyConfig is calibrated so one proxy sustains about 1000 hot
// worker caches before overhead begins to climb, as in the paper.
func DefaultProxyConfig() ProxyConfig {
	return ProxyConfig{
		ColdBytes:       1.5e9,
		HotBytes:        30e6,
		ProxyBandwidth:  12.5e9, // ~100 Gbit/s of cache service capacity
		ClientBandwidth: 12.5e6, // ~100 Mbit/s per worker → knee at 1000
		BaseOverhead:    10,
		Seed:            1,
	}
}

// ProxyPoint is one Figure 5 measurement: mean task overhead at a given
// number of tasks sharing one proxy.
type ProxyPoint struct {
	Tasks        int
	MeanOverhead float64 // seconds
}

// SimulateProxyLoad runs one wave of n simultaneous tasks against a single
// proxy and returns the mean per-task overhead (setup time).
func SimulateProxyLoad(cfg ProxyConfig, n int, cold bool) (ProxyPoint, error) {
	if n < 1 {
		return ProxyPoint{}, fmt.Errorf("sim: proxy load with %d tasks", n)
	}
	if cfg.ProxyBandwidth <= 0 || cfg.ClientBandwidth <= 0 {
		return ProxyPoint{}, fmt.Errorf("sim: invalid proxy config %+v", cfg)
	}
	bytes := cfg.ColdBytes
	if !cold {
		bytes = cfg.HotBytes
	}
	s := simevent.New()
	link := simevent.NewLink(s, cfg.ProxyBandwidth)
	rng := stats.NewRand(cfg.Seed)
	var sum stats.Summary
	for i := 0; i < n; i++ {
		// Small start jitter keeps event ordering realistic without
		// changing the load picture.
		jitter := rng.Float64()
		s.Go(func(p *simevent.Proc) {
			p.Wait(jitter)
			start := p.Now()
			// The transfer is bounded both by the shared proxy capacity
			// (processor sharing on the link) and by the client's own
			// bandwidth cap.
			link.Transfer(p, bytes)
			elapsed := p.Now() - start
			if floor := bytes / cfg.ClientBandwidth; elapsed < floor {
				p.Wait(floor - elapsed)
				elapsed = floor
			}
			sum.Add(cfg.BaseOverhead + elapsed)
		})
	}
	s.Run()
	return ProxyPoint{Tasks: n, MeanOverhead: sum.Mean()}, nil
}

// Fig5Result holds the cold and hot curves.
type Fig5Result struct {
	Cold []ProxyPoint
	Hot  []ProxyPoint
}

// Figure5 sweeps concurrent task counts for cold and hot caches.
func Figure5(cfg ProxyConfig, taskCounts []int) (*Fig5Result, error) {
	if len(taskCounts) == 0 {
		taskCounts = []int{50, 100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 2000}
	}
	res := &Fig5Result{
		Cold: make([]ProxyPoint, len(taskCounts)),
		Hot:  make([]ProxyPoint, len(taskCounts)),
	}
	// Each (count, cold/hot) wave is an independent Sim; run the grid
	// concurrently with index-addressed result slots.
	err := parallelFor(len(taskCounts)*2, func(j int) error {
		i, cold := j/2, j%2 == 0
		p, err := SimulateProxyLoad(cfg, taskCounts[i], cold)
		if err != nil {
			return err
		}
		if cold {
			res.Cold[i] = p
		} else {
			res.Hot[i] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Knee returns the task count at which overhead first exceeds (1+tol) times
// the unloaded overhead, i.e. where the proxy begins to saturate.
func Knee(points []ProxyPoint, tol float64) int {
	if len(points) == 0 {
		return 0
	}
	base := points[0].MeanOverhead
	for _, p := range points {
		if p.MeanOverhead > base*(1+tol) {
			return p.Tasks
		}
	}
	return points[len(points)-1].Tasks
}
