package sim

import (
	"bytes"
	"math"
	"testing"

	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// tracedRun runs cfg with a sim-clocked tracer attached and returns the
// result, the registry, and the decoded trace records.
func tracedRun(t *testing.T, cfg BigRunConfig) (*BigRunResult, *telemetry.Registry, []trace.Record) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	cfg.Telemetry = reg
	cfg.Tracer = trace.New(trace.Config{Registry: reg, Log: log})
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return res, reg, recs
}

// TestGoldenBigRunTraced reruns the Figure 11 golden with tracing on:
// span emission must not perturb the simulated physics by a single bit,
// because tracing never touches the RNG or event ordering.
func TestGoldenBigRunTraced(t *testing.T) {
	res, _, recs := tracedRun(t, SimRunConfig(0.05))
	if res.TasksDone != 1860 || res.TasksFailed != 383 || res.Evictions != 41 ||
		res.WANBytes != 0 || res.ChirpBytes != 107303801934.7655 || res.PeakCores != 1000 {
		t.Errorf("traced run diverged from golden: done=%d failed=%d evict=%d wan=%.17g chirp=%.17g peak=%d",
			res.TasksDone, res.TasksFailed, res.Evictions, res.WANBytes, res.ChirpBytes, res.PeakCores)
	}
	if len(recs) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	// One root per attempt: successes plus recorded failures plus
	// end-of-window cancellations; at minimum done+failed roots exist.
	trees := trace.BuildTrees(recs)
	if len(trees) < res.TasksDone+res.TasksFailed {
		t.Errorf("got %d traces, want ≥ %d", len(trees), res.TasksDone+res.TasksFailed)
	}
}

// TestBigRunTraceReconciliation checks the tentpole acceptance bar: the
// per-segment breakdown derived from trace spans must reconcile with the
// lobster_task_stage_seconds histogram sums within 1%. Spans are emitted
// at exactly the points the histograms observe, so the match is in fact
// exact; 1% is the allowed slack.
func TestBigRunTraceReconciliation(t *testing.T) {
	_, reg, recs := tracedRun(t, SimRunConfig(0.02))
	trees := trace.BuildTrees(recs)
	b := trace.Analyze(trees)

	snap := reg.Snapshot()
	histSum := func(stage string) float64 {
		t.Helper()
		for _, s := range snap.Series {
			if s.Name == "lobster_task_stage_seconds" && s.Labels["stage"] == stage {
				return s.Value
			}
		}
		t.Fatalf("no lobster_task_stage_seconds{stage=%q} series", stage)
		return 0
	}
	for _, seg := range []string{"dispatch", "setup", "stage_in", "execute", "stage_out"} {
		want := histSum(seg)
		got := b.Seconds[seg]
		if want <= 0 {
			t.Errorf("histogram sum for %s is %v, want > 0", seg, want)
			continue
		}
		if diff := math.Abs(got - want); diff > 0.01*want {
			t.Errorf("segment %s: trace breakdown %.3f s vs histogram %.3f s (Δ %.2f%%)",
				seg, got, want, 100*diff/want)
		}
	}
}
