package sim

import (
	"math"
	"testing"

	"lobster/internal/cluster"
	"lobster/internal/stats"
)

// smallTaskSizeConfig shrinks the Figure 3 study for fast tests while
// keeping the worker/tasklet ratio of the paper.
func smallTaskSizeConfig() TaskSizeConfig {
	cfg := DefaultTaskSizeConfig()
	cfg.Tasklets = 10000
	cfg.Workers = 800
	return cfg
}

func observedSurvival(t *testing.T) *stats.Empirical {
	t.Helper()
	trace, err := cluster.GenerateTrace(cluster.DefaultTraceConfig(), stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	surv, err := cluster.SurvivalDistribution(trace)
	if err != nil {
		t.Fatal(err)
	}
	return surv
}

func TestFig3NoEvictionApproachesOne(t *testing.T) {
	cfg := smallTaskSizeConfig()
	short, err := SimulateTaskSize(cfg, NoEviction{}, 6) // 1 h tasks
	if err != nil {
		t.Fatal(err)
	}
	long, err := SimulateTaskSize(cfg, NoEviction{}, 60) // 10 h tasks
	if err != nil {
		t.Fatal(err)
	}
	if !(long.Efficiency > short.Efficiency) {
		t.Errorf("no-eviction efficiency not increasing: %g -> %g", short.Efficiency, long.Efficiency)
	}
	if long.Efficiency < 0.85 {
		t.Errorf("long-task no-eviction efficiency = %g, want near 1", long.Efficiency)
	}
	if short.Evictions != 0 || long.Evictions != 0 {
		t.Error("no-eviction scenario evicted workers")
	}
}

func TestFig3EvictionScenariosPeakNearOneHour(t *testing.T) {
	cfg := smallTaskSizeConfig()
	surv := observedSurvival(t)
	results, err := Figure3(cfg, surv, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("scenarios = %d", len(results))
	}
	byName := map[string][]EfficiencyPoint{}
	for _, r := range results {
		byName[r.Scenario] = r.Points
		if len(r.Points) != 10 {
			t.Fatalf("%s has %d points", r.Scenario, len(r.Points))
		}
	}
	// The paper's claims: with eviction, max efficiency ~0.7 at short task
	// lengths; long tasks lose efficiency; without eviction it approaches 1.
	for _, name := range []string{"constant", "observed"} {
		pts := byName[name]
		hours, eff := PeakEfficiency(pts)
		if hours > 4 {
			t.Errorf("%s peak at %g h; paper peaks at short task lengths", name, hours)
		}
		if eff < 0.55 || eff > 0.82 {
			t.Errorf("%s peak efficiency %g outside the ~0.7 band", name, eff)
		}
		if !(pts[len(pts)-1].Efficiency < eff-0.05) {
			t.Errorf("%s efficiency does not decline for 10 h tasks: peak %g, end %g",
				name, eff, pts[len(pts)-1].Efficiency)
		}
	}
	nonePts := byName["none"]
	if !(nonePts[9].Efficiency > nonePts[0].Efficiency && nonePts[9].Efficiency > 0.85) {
		t.Errorf("no-eviction curve wrong: %v", nonePts)
	}
	// With eviction, every task length is worse than without.
	for i := range nonePts {
		if byName["observed"][i].Efficiency >= nonePts[i].Efficiency {
			t.Errorf("observed >= none at point %d", i)
		}
	}
}

func TestFig3Deterministic(t *testing.T) {
	cfg := smallTaskSizeConfig()
	a, err := SimulateTaskSize(cfg, ConstantEviction{RatePerHour: 0.1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SimulateTaskSize(cfg, ConstantEviction{RatePerHour: 0.1}, 6)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFig3Validation(t *testing.T) {
	if _, err := SimulateTaskSize(DefaultTaskSizeConfig(), NoEviction{}, 0); err == nil {
		t.Error("zero task size accepted")
	}
	if _, err := SimulateTaskSize(TaskSizeConfig{}, NoEviction{}, 1); err == nil {
		t.Error("empty config accepted")
	}
}

func TestFig5KneeNearThousand(t *testing.T) {
	res, err := Figure5(DefaultProxyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flat region: overhead at 1000 tasks within 10% of overhead at 50.
	coldBase := res.Cold[0].MeanOverhead
	var cold1000, cold2000, hot1000, hot2000 float64
	for i, p := range res.Cold {
		if p.Tasks == 1000 {
			cold1000 = p.MeanOverhead
			hot1000 = res.Hot[i].MeanOverhead
		}
		if p.Tasks == 2000 {
			cold2000 = p.MeanOverhead
			hot2000 = res.Hot[i].MeanOverhead
		}
	}
	if cold1000 > coldBase*1.10 {
		t.Errorf("cold overhead rose before 1000 tasks: %g -> %g", coldBase, cold1000)
	}
	if !(cold2000 > cold1000*1.2) {
		t.Errorf("cold overhead flat past the knee: %g -> %g", cold1000, cold2000)
	}
	if !(hot2000 > hot1000) {
		t.Errorf("hot overhead flat past the knee: %g -> %g", hot1000, hot2000)
	}
	// Cold is far more expensive than hot everywhere.
	for i := range res.Cold {
		if res.Cold[i].MeanOverhead < 5*res.Hot[i].MeanOverhead {
			t.Errorf("cold/hot separation lost at %d tasks", res.Cold[i].Tasks)
		}
	}
}

func TestFig5Validation(t *testing.T) {
	if _, err := SimulateProxyLoad(DefaultProxyConfig(), 0, true); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := SimulateProxyLoad(ProxyConfig{}, 10, true); err == nil {
		t.Error("empty config accepted")
	}
}

func TestFig4StreamingBeatsStaging(t *testing.T) {
	results, err := Figure4(DefaultAccessConfig())
	if err != nil {
		t.Fatal(err)
	}
	stage, stream := results[0], results[1]
	if stage.Mode != "stage" || stream.Mode != "stream" {
		t.Fatalf("mode order: %s, %s", stage.Mode, stream.Mode)
	}
	// The paper's Figure 4: staging yields lower CPU utilisation and longer
	// overall runtime than streaming.
	if !(stage.MeanRuntime > stream.MeanRuntime) {
		t.Errorf("staging runtime %g not above streaming %g", stage.MeanRuntime, stream.MeanRuntime)
	}
	if !(stage.CPUUtilization < stream.CPUUtilization) {
		t.Errorf("staging utilisation %g not below streaming %g",
			stage.CPUUtilization, stream.CPUUtilization)
	}
	if !(stage.Makespan > stream.Makespan) {
		t.Errorf("staging makespan %g not above streaming %g", stage.Makespan, stream.Makespan)
	}
	// Both process the same events.
	if stage.MeanProcessing != stream.MeanProcessing {
		t.Error("processing time differs between modes")
	}
}

func TestFig4Validation(t *testing.T) {
	if _, err := SimulateAccessMode(DefaultAccessConfig(), "teleport"); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := SimulateAccessMode(AccessConfig{}, "stage"); err == nil {
		t.Error("empty config accepted")
	}
}

func TestFig7ModeOrdering(t *testing.T) {
	cfg := DefaultMergeSimConfig()
	results, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]*MergeTimeline{}
	for _, tl := range results {
		byMode[tl.Mode] = tl
		if tl.MergedFiles == 0 {
			t.Fatalf("%s merged nothing", tl.Mode)
		}
		if len(tl.AnalysisDone) != cfg.AnalysisTasks {
			t.Fatalf("%s finished %d analysis tasks", tl.Mode, len(tl.AnalysisDone))
		}
		if tl.LastMerge <= tl.LastAnalysis && tl.Mode != "interleaved" {
			t.Errorf("%s: merging ended before analysis", tl.Mode)
		}
	}
	seq, hdp, ilv := byMode["sequential"], byMode["hadoop"], byMode["interleaved"]
	// Paper ordering: sequential slowest, interleaved completes first.
	if !(seq.LastMerge > hdp.LastMerge) {
		t.Errorf("sequential (%g) not slower than hadoop (%g)", seq.LastMerge, hdp.LastMerge)
	}
	if !(hdp.LastMerge > ilv.LastMerge) {
		t.Errorf("hadoop (%g) not slower than interleaved (%g)", hdp.LastMerge, ilv.LastMerge)
	}
	// Interleaved merges overlap analysis.
	first := ilv.MergeDone[0]
	for _, m := range ilv.MergeDone {
		if m < first {
			first = m
		}
	}
	if first >= ilv.LastAnalysis {
		t.Error("interleaved merging did not overlap analysis")
	}
	// All modes merge the same outputs.
	if seq.MergedFiles != hdp.MergedFiles || seq.MergedFiles != ilv.MergedFiles {
		t.Errorf("merged file counts differ: %d/%d/%d",
			seq.MergedFiles, hdp.MergedFiles, ilv.MergedFiles)
	}
}

func TestFig7Binned(t *testing.T) {
	cfg := DefaultMergeSimConfig()
	cfg.AnalysisTasks = 300
	cfg.Workers = 150
	tl, err := SimulateMerging(cfg, "interleaved")
	if err != nil {
		t.Fatal(err)
	}
	binned, err := BinMergeTimeline(tl, 600)
	if err != nil {
		t.Fatal(err)
	}
	var analysis, merges int
	for i := range binned.Times {
		analysis += binned.Analysis[i]
		merges += binned.Merges[i]
	}
	if analysis != cfg.AnalysisTasks || merges != tl.MergedFiles {
		t.Errorf("binned totals: %d analysis, %d merges", analysis, merges)
	}
	if _, err := BinMergeTimeline(tl, 0); err == nil {
		t.Error("zero bin width accepted")
	}
}

func TestBigRunDataProcessing(t *testing.T) {
	cfg := DataRunConfig(0.05)
	cfg.Duration = 24 * 3600
	cfg.WANOutageStart = 10 * 3600
	cfg.WANOutageEnd = 12 * 3600
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone == 0 || res.Evictions == 0 {
		t.Fatalf("run degenerate: %+v", res)
	}
	cores := cfg.Workers * cfg.CoresPerWorker
	if res.PeakCores < cores*9/10 {
		t.Errorf("peak %d never approached %d cores", res.PeakCores, cores)
	}

	// Figure 8 shape: CPU dominates, CPU+I/O ≈ three quarters, all phases
	// present, fractions sum to 1.
	rows := Figure8(res)
	frac := map[string]float64{}
	sum := 0.0
	for _, r := range rows {
		frac[r.Phase] = r.Fraction
		sum += r.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
	if !(frac["Task CPU Time"] > 0.4 && frac["Task CPU Time"] < 0.75) {
		t.Errorf("CPU fraction %g outside paper band", frac["Task CPU Time"])
	}
	taskTotal := frac["Task CPU Time"] + frac["Task I/O Time"]
	if !(taskTotal > 0.6 && taskTotal < 0.92) {
		t.Errorf("CPU+I/O = %g; paper has about three quarters", taskTotal)
	}
	if frac["Task Failed"] <= 0 || frac["WQ Stage In"] <= 0 || frac["WQ Stage Out"] <= 0 {
		t.Errorf("missing phases: %+v", frac)
	}
	if !(frac["Task CPU Time"] > frac["Task I/O Time"]) {
		t.Error("CPU does not dominate I/O")
	}

	// Figure 10 shape: outage produces the failure burst and efficiency dip.
	f10, err := Figure10(res, 3600)
	if err != nil {
		t.Fatal(err)
	}
	peakFail, effIn, effOut := f10.OutageWindowStats(cfg.WANOutageStart, cfg.WANOutageEnd+1800)
	if peakFail == 0 {
		t.Fatal("no failure burst")
	}
	if !(effIn < effOut-0.1) {
		t.Errorf("no efficiency dip during outage: in=%g out=%g", effIn, effOut)
	}
	if !(effOut > 0.5 && effOut < 0.8) {
		t.Errorf("steady-state efficiency %g outside the ~0.7-ceiling band", effOut)
	}
	// The failure burst is inside the outage window.
	maxFail, maxAt := 0, 0.0
	for i, f := range f10.Failed {
		if f > maxFail {
			maxFail = f
			maxAt = f10.Times[i]
		}
	}
	if maxAt < cfg.WANOutageStart-3600 || maxAt > cfg.WANOutageEnd+3600 {
		t.Errorf("failure burst at %g h, outage at %g-%g h",
			maxAt/3600, cfg.WANOutageStart/3600, cfg.WANOutageEnd/3600)
	}

	// Figure 9: Lobster tops the federation dashboard.
	top := Figure9(res, 16*3600, 20*3600)
	if len(top) != 10 {
		t.Fatalf("dashboard rows = %d", len(top))
	}
	if top[0].Consumer != "ND Lobster (T3_US_NotreDame)" {
		t.Errorf("top consumer = %s", top[0].Consumer)
	}
	if top[0].Bytes <= top[1].Bytes {
		t.Error("Lobster not strictly the biggest consumer")
	}
}

func TestBigRunSimulation(t *testing.T) {
	cfg := SimRunConfig(0.05)
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Figure11(res, 1800)
	if err != nil {
		t.Fatal(err)
	}
	// Cold-cache ramp: setup peaks high (hundreds of minutes at full squid
	// saturation) and then declines by the end of the run.
	peakAt, peak := f11.PeakSetup()
	if peak < 3600 {
		t.Errorf("setup peak %g s; expected a cold-ramp of hours", peak)
	}
	last := f11.SetupMean[len(f11.SetupMean)-1]
	if !(last < peak/2) {
		t.Errorf("setup did not decline after the cold ramp: peak %g, final %g", peak, last)
	}
	if peakAt >= res.Config.Duration {
		t.Error("peak outside the run")
	}
	// Squid-timeout failures (code 20) occur during the ramp, and transient
	// misc failures (code 50) trickle throughout.
	saw20, saw50 := false, false
	var first20, last20 float64 = math.Inf(1), 0
	for i, m := range f11.FailureCodes {
		if m[ExitSetupTimeout] > 0 {
			saw20 = true
			tt := f11.Times[i]
			if tt < first20 {
				first20 = tt
			}
			if tt > last20 {
				last20 = tt
			}
		}
		if m[ExitMisc] > 0 {
			saw50 = true
		}
	}
	if !saw20 {
		t.Error("no squid-timeout failures")
	}
	if !saw50 {
		t.Error("no transient misc failures")
	}
	if saw20 && last20 >= res.Config.Duration-1800 {
		t.Error("squid failures persisted to the end; they should stop once caches fill")
	}
	// Stage-out shows overload during the heavy completion phase: the max
	// per-bin stage-out time well above the unloaded transfer time.
	maxOut := 0.0
	for _, s := range f11.StageOut {
		if s > maxOut {
			maxOut = s
		}
	}
	if maxOut < 30 {
		t.Errorf("no chirp overload periods: max stage-out %g s", maxOut)
	}
	if len(f11.SortedCodes()) < 2 {
		t.Errorf("failure codes seen: %v", f11.SortedCodes())
	}
}

func TestBigRunDeterministic(t *testing.T) {
	cfg := DataRunConfig(0.02)
	cfg.Duration = 6 * 3600
	a, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunBig(cfg)
	if a.TasksDone != b.TasksDone || a.TasksFailed != b.TasksFailed ||
		a.Evictions != b.Evictions || a.WANBytes != b.WANBytes {
		t.Fatalf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestBigRunValidation(t *testing.T) {
	if _, err := RunBig(BigRunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DataRunConfig(0.01)
	cfg.TaskCPU = nil
	if _, err := RunBig(cfg); err == nil {
		t.Error("missing TaskCPU accepted")
	}
}

func TestFig10CompletionConservation(t *testing.T) {
	cfg := DataRunConfig(0.02)
	cfg.Duration = 8 * 3600
	cfg.WANOutageStart, cfg.WANOutageEnd = 3*3600, 4*3600
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Figure10(res, 1800)
	if err != nil {
		t.Fatal(err)
	}
	var completed, failed int
	for i := range d.Times {
		completed += d.Completed[i]
		failed += d.Failed[i]
	}
	if completed != res.TasksDone {
		t.Errorf("binned completions %d != run total %d", completed, res.TasksDone)
	}
	// Binned failures exclude preemptions; the run total includes them.
	if failed > res.TasksFailed {
		t.Errorf("binned failures %d exceed run total %d", failed, res.TasksFailed)
	}
	// WAN accounting: bytes moved ≈ done+wan-failed transfers × input size.
	if res.WANBytes < float64(res.TasksDone)*cfg.InputBytes {
		t.Errorf("WAN bytes %g below the completed-task floor %g",
			res.WANBytes, float64(res.TasksDone)*cfg.InputBytes)
	}
}

func TestFig9WindowSelectsSubset(t *testing.T) {
	cfg := DataRunConfig(0.02)
	cfg.Duration = 8 * 3600
	cfg.WANOutageStart, cfg.WANOutageEnd = -2, -1 // no outage
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := Figure9(res, 0, cfg.Duration)
	window := Figure9(res, 2*3600, 4*3600)
	if window[0].Bytes >= full[0].Bytes {
		t.Errorf("window volume %d not below full-run volume %d",
			window[0].Bytes, full[0].Bytes)
	}
	if window[0].Consumer != full[0].Consumer {
		t.Error("top consumer changed with window")
	}
}

func TestAdaptiveBeatsStaticUnderShift(t *testing.T) {
	results, err := CompareAdaptive(DefaultPhaseShiftConfig(), 18)
	if err != nil {
		t.Fatal(err)
	}
	static, adaptive := results[0], results[1]
	if static.Sizer != "static-18" || adaptive.Sizer != "rate-adaptive" {
		t.Fatalf("order: %s, %s", static.Sizer, adaptive.Sizer)
	}
	if !(adaptive.Efficiency > static.Efficiency+0.05) {
		t.Errorf("adaptive %g not clearly above static %g",
			adaptive.Efficiency, static.Efficiency)
	}
	if !(adaptive.Evictions < static.Evictions) {
		t.Errorf("adaptive evictions %d not below static %d",
			adaptive.Evictions, static.Evictions)
	}
	// The controller actually shrank the size after the hostile shift.
	if adaptive.FinalSize >= 18 {
		t.Errorf("final size %d did not shrink", adaptive.FinalSize)
	}
}

func TestRateSizerGrowsWhenCalm(t *testing.T) {
	s := NewRateSizer(6, 1, 120, 1200, 600)
	for i := 0; i < 1000; i++ {
		s.Observe(s.Next(), false)
	}
	if s.Next() <= 6 {
		t.Errorf("size %d did not grow without evictions", s.Next())
	}
}

func TestRateSizerBounds(t *testing.T) {
	s := NewRateSizer(50, 10, 60, 1200, 600)
	// Persistent heavy eviction pressure drives toward the floor, never past.
	for i := 0; i < 5000; i++ {
		s.Observe(s.Next(), true)
	}
	if got := s.Next(); got < 10 || got > 60 {
		t.Errorf("size %d escaped bounds [10,60]", got)
	}
	if s.Next() != 10 {
		t.Errorf("size %d did not reach the floor under constant eviction", s.Next())
	}
	// Construction clamps bad inputs.
	s2 := NewRateSizer(0, 0, -5, 1200, 600)
	if s2.Next() < 1 {
		t.Errorf("unclamped sizer: %d", s2.Next())
	}
}

func TestSimulateAdaptiveValidation(t *testing.T) {
	if _, err := SimulateAdaptive(PhaseShiftConfig{}, &StaticSizer{Size: 5}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DefaultPhaseShiftConfig()
	cfg.Phase2 = nil
	if _, err := SimulateAdaptive(cfg, &StaticSizer{Size: 5}); err == nil {
		t.Error("missing phase accepted")
	}
}
