package sim

import "testing"

// These goldens were recorded on the pre-optimisation simevent kernel
// (binary heap, eager heap.Remove cancellation, one allocation per event,
// one fresh goroutine per proc). Every value is compared exactly — the
// rebuilt hot path must reproduce bit-identical figure inputs, not merely
// statistically similar ones, because the paper reproduction's claims are
// seeded and the seed is part of the published configuration.

func TestGoldenBigRunSimulation(t *testing.T) {
	res, err := RunBig(SimRunConfig(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 1860 || res.TasksFailed != 383 || res.Evictions != 41 ||
		res.WANBytes != 0 || res.ChirpBytes != 107303801934.7655 || res.PeakCores != 1000 {
		t.Errorf("simulation run diverged from pre-optimisation kernel: done=%d failed=%d evict=%d wan=%.17g chirp=%.17g peak=%d",
			res.TasksDone, res.TasksFailed, res.Evictions, res.WANBytes, res.ChirpBytes, res.PeakCores)
	}
}

func TestGoldenBigRunDataProcessing(t *testing.T) {
	cfg := DataRunConfig(0.02)
	cfg.Duration = 6 * 3600
	res, err := RunBig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksDone != 690 || res.TasksFailed != 76 || res.Evictions != 9 ||
		res.WANBytes != 400121170629.95374 || res.ChirpBytes != 31049999999.990078 ||
		res.PeakCores != 200 {
		t.Errorf("data run diverged from pre-optimisation kernel: done=%d failed=%d evict=%d wan=%.17g chirp=%.17g peak=%d",
			res.TasksDone, res.TasksFailed, res.Evictions, res.WANBytes, res.ChirpBytes, res.PeakCores)
	}
}

func TestGoldenComponentFigures(t *testing.T) {
	p, err := SimulateProxyLoad(DefaultProxyConfig(), 200, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.MeanOverhead != 130 {
		t.Errorf("fig5 overhead = %.17g, want 130", p.MeanOverhead)
	}

	scfg := DefaultTaskSizeConfig()
	scfg.Tasklets = 10000
	scfg.Workers = 800
	ep, err := SimulateTaskSize(scfg, ConstantEviction{RatePerHour: 0.1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Efficiency != 0.67254412958386811 || ep.Evictions != 262 {
		t.Errorf("fig3 point = %.17g/%d, want 0.67254412958386811/262", ep.Efficiency, ep.Evictions)
	}

	mcfg := DefaultMergeSimConfig()
	mcfg.AnalysisTasks = 300
	mcfg.Workers = 150
	tl, err := SimulateMerging(mcfg, "interleaved")
	if err != nil {
		t.Fatal(err)
	}
	if tl.LastMerge != 10041.061411633409 || tl.LastAnalysis != 9914.6614116334113 ||
		tl.MergedFiles != 5 || tl.WorkerSecondsUsed != 1640592.9661980239 {
		t.Errorf("fig7 timeline diverged: lastMerge=%.17g lastAnalysis=%.17g merged=%d workerSec=%.17g",
			tl.LastMerge, tl.LastAnalysis, tl.MergedFiles, tl.WorkerSecondsUsed)
	}

	acc, err := SimulateAccessMode(DefaultAccessConfig(), "stream")
	if err != nil {
		t.Fatal(err)
	}
	if acc.MeanRuntime != 428 || acc.Makespan != 1712 {
		t.Errorf("fig4 stream = %.17g/%.17g, want 428/1712", acc.MeanRuntime, acc.Makespan)
	}
}
