package sim

import "fmt"

// Data-challenge extrapolation: the loopback harness (lobster-bench
// -challenge, bench-guard -challenge) measures what one client gets
// from striping across a handful of link-limited replicas; this model
// extends that measurement to paper-scale link counts — the Coffea-casa
// 200 Gbps challenge shape, where the question is how many storage-
// element uplinks a striping fleet needs before aggregate throughput
// crosses the target.
//
// The model is a fleet of clients, each running a fixed number of
// stripe streams, assigned to links under two policies side by side:
// naive (each stream lands on a uniformly random link — redirector
// order, nobody watching bandwidth) and selector (two-choice load
// balancing — the bandwidth-aware selector steering streams away from
// busy replicas). A stream's rate is capped by the client-side
// per-stream ceiling (what the real plane measured); a link serves at
// most its capacity. The fleet is provisioned at the saturation knee,
// where assignment quality is exactly what separates the policies:
// random placement overloads some links (clipped at capacity) while
// others idle, and the selector's near-even spread recovers that loss.
// Determinism is part of the contract: identical config → identical
// table, pinned by the golden test.

// ChallengeConfig parameterises the extrapolation.
type ChallengeConfig struct {
	// LinkGbps is one storage-element uplink, in Gbit/s (challenge
	// sites: 100 Gbit/s Ethernet).
	LinkGbps float64
	// StreamGbps is the per-stream ceiling a single stripe stream
	// reaches, in Gbit/s — fed from the loopback harness's measured
	// striped throughput divided by its stream count.
	StreamGbps float64
	// StreamsPerClient is the stripe fan-out of one fetching client.
	StreamsPerClient int
	// ClientsPerLink scales the fleet with the site count: the
	// challenge adds clients as it adds storage, holding the
	// clients-to-links ratio fixed.
	ClientsPerLink int
	// Links is the list of link counts to extrapolate over.
	Links []int
	Seed  uint64
}

// DefaultChallengeConfig matches the 200 Gbps challenge write-up shape:
// 100 Gbit/s site uplinks, 4-stream striping clients, and a fleet that
// grows with the storage.
func DefaultChallengeConfig() ChallengeConfig {
	return ChallengeConfig{
		LinkGbps:         100,
		StreamGbps:       2.5, // ~320 MB/s per stream, the loopback-measured order
		StreamsPerClient: 4,
		ClientsPerLink:   10, // 100 Gbit/s of mean demand per link: the knee
		Links:            []int{1, 2, 4, 8, 16, 32, 64},
		Seed:             17,
	}
}

// ChallengePoint is one extrapolated row: the aggregate the fleet
// pulls with this many storage-element links, under naive placement
// and under the bandwidth-aware selector.
type ChallengePoint struct {
	Links   int
	Clients int
	Streams int
	// NaiveGbps is aggregate throughput with uniformly random stream
	// placement (redirector order).
	NaiveGbps float64
	// AggregateGbps is aggregate throughput with selector (two-choice)
	// placement; AggregateGBps is the same number in gigabytes/s (the
	// 200 Gbps challenge target is 25 GB/s).
	AggregateGbps float64
	AggregateGBps float64
	// LinkUtilisation is selector aggregate over provisioned capacity.
	LinkUtilisation float64
}

// SimulateChallenge extrapolates aggregate throughput over cfg.Links.
func SimulateChallenge(cfg ChallengeConfig) ([]ChallengePoint, error) {
	if cfg.LinkGbps <= 0 || cfg.StreamGbps <= 0 || cfg.StreamsPerClient < 1 || cfg.ClientsPerLink < 1 {
		return nil, fmt.Errorf("sim: invalid challenge config %+v", cfg)
	}
	points := make([]ChallengePoint, 0, len(cfg.Links))
	for _, links := range cfg.Links {
		if links < 1 {
			return nil, fmt.Errorf("sim: challenge with %d links", links)
		}
		clients := links * cfg.ClientsPerLink
		streams := clients * cfg.StreamsPerClient
		naiveLoad := make([]int, links)    // uniformly random placement
		selectorLoad := make([]int, links) // two-choice placement
		rng := cfg.Seed + uint64(links)*0x9e3779b97f4a7c15
		for s := 0; s < streams; s++ {
			naiveLoad[int(splitmix(&rng)%uint64(links))]++
			// Two-choice: a stream lands on the less loaded of two
			// seeded picks — the selector steering stripes away from
			// busy replicas.
			a := int(splitmix(&rng) % uint64(links))
			b := int(splitmix(&rng) % uint64(links))
			if selectorLoad[b] < selectorLoad[a] {
				a = b
			}
			selectorLoad[a]++
		}
		served := func(load []int) float64 {
			var total float64
			for _, n := range load {
				demand := float64(n) * cfg.StreamGbps
				if demand > cfg.LinkGbps {
					demand = cfg.LinkGbps // overloaded link clips; excess streams starve
				}
				total += demand
			}
			return total
		}
		aggregate := served(selectorLoad)
		points = append(points, ChallengePoint{
			Links:           links,
			Clients:         clients,
			Streams:         streams,
			NaiveGbps:       served(naiveLoad),
			AggregateGbps:   aggregate,
			AggregateGBps:   aggregate / 8,
			LinkUtilisation: aggregate / (float64(links) * cfg.LinkGbps),
		})
	}
	return points, nil
}

// splitmix advances a splitmix64 state and returns the next value —
// the sim plane's standard cheap deterministic sequence.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
