package sim

import "testing"

// TestGoldenChallengeExtrapolation pins the data-challenge table
// exactly: the extrapolation is seeded and the seed is part of the
// published configuration, so bench-guard -challenge and the EXPERIMENTS
// table must reproduce these rows bit-identically on every host.
func TestGoldenChallengeExtrapolation(t *testing.T) {
	pts, err := SimulateChallenge(DefaultChallengeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []ChallengePoint{
		{1, 10, 40, 100, 100, 12.5, 1},
		{2, 20, 80, 192.5, 200, 25, 1},
		{4, 40, 160, 395, 397.5, 49.6875, 0.99375000000000002},
		{8, 80, 320, 727.5, 797.5, 99.6875, 0.99687499999999996},
		{16, 160, 640, 1520, 1587.5, 198.4375, 0.9921875},
		{32, 320, 1280, 2995, 3177.5, 397.1875, 0.99296874999999996},
		{64, 640, 2560, 5962.5, 6350, 793.75, 0.9921875},
	}
	if len(pts) != len(want) {
		t.Fatalf("got %d rows, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p != want[i] {
			t.Errorf("row %d diverged:\n got %+v\nwant %+v", i, p, want[i])
		}
	}
	// The shape claims behind the table: the fleet crosses the 200 Gbps
	// challenge target (25 GB/s) by two links, and the selector never
	// does worse than naive placement.
	if pts[1].AggregateGBps < 25 {
		t.Errorf("2-link aggregate %.1f GB/s below the 25 GB/s challenge target", pts[1].AggregateGBps)
	}
	for _, p := range pts {
		if p.AggregateGbps < p.NaiveGbps {
			t.Errorf("%d links: selector %.1f Gbps below naive %.1f", p.Links, p.AggregateGbps, p.NaiveGbps)
		}
	}
}

func TestChallengeRejectsBadConfig(t *testing.T) {
	bad := DefaultChallengeConfig()
	bad.StreamGbps = 0
	if _, err := SimulateChallenge(bad); err == nil {
		t.Error("zero stream ceiling accepted")
	}
	bad = DefaultChallengeConfig()
	bad.Links = []int{0}
	if _, err := SimulateChallenge(bad); err == nil {
		t.Error("zero link count accepted")
	}
}
