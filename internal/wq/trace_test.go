package wq

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// traceSetup builds one tracer over a buffer-backed event log.
func traceSetup(t *testing.T) (*trace.Tracer, *bytes.Buffer, *telemetry.EventLog) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	log := telemetry.NewEventLog(&buf, nil)
	tr := trace.New(trace.Config{Registry: reg, Log: log})
	return tr, &buf, log
}

func records(t *testing.T, buf *bytes.Buffer, log *telemetry.EventLog) []trace.Record {
	t.Helper()
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestTracePropagationMasterForemanWorker runs tasks through the full
// hierarchy — master → foreman → (downstream master) → worker — and
// asserts every hop's spans share one trace ID per task, chaining
// parent→child across the wire.
func TestTracePropagationMasterForemanWorker(t *testing.T) {
	tr, buf, log := traceSetup(t)

	m := newMaster(t)
	m.Trace(tr)
	f, err := NewForeman(m.Addr(), "127.0.0.1:0", "fm0", 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	f.Trace(tr)
	w := newWorker(t, f.Addr(), "w0", 2)
	w.Trace(tr)

	const n = 5
	ids := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		id, err := m.Submit(&Task{
			Func:    "echo",
			Args:    map[string]string{"text": fmt.Sprintf("task %d", i)},
			Outputs: []string{"out.txt"},
			Tag:     "analysis",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[id] = true
	}
	for i := 0; i < n; i++ {
		r, ok := m.WaitResult(10 * time.Second)
		if !ok || r.Failed() {
			t.Fatalf("result %d: %+v", i, r)
		}
		delete(ids, r.TaskID)
	}
	if len(ids) != 0 {
		t.Fatalf("missing results for %v", ids)
	}

	trees := trace.BuildTrees(records(t, buf, log))
	if len(trees) != n {
		t.Fatalf("got %d traces, want %d", len(trees), n)
	}
	for _, tree := range trees {
		if tree.Orphans != 0 {
			t.Errorf("trace %s has %d orphan spans", tree.TraceID, tree.Orphans)
		}
		// Every component of every hop appears in the one trace.
		comps := map[string]int{}
		names := map[string]int{}
		var visit func(nd *trace.Node)
		visit = func(nd *trace.Node) {
			if nd.Trace != tree.TraceID {
				t.Fatalf("span %s has trace %s, want %s", nd.Span, nd.Trace, tree.TraceID)
			}
			comps[nd.Comp]++
			names[nd.Name]++
			for _, c := range nd.Children {
				visit(c)
			}
		}
		visit(tree.Root)
		// master task/submit/dispatch appear twice: upstream master and
		// the foreman's internal downstream master.
		for comp, want := range map[string]int{"master": 6, "foreman": 1, "worker": 4} {
			if comps[comp] != want {
				t.Errorf("trace %s: %d %s spans, want %d (comps=%v names=%v)",
					tree.TraceID, comps[comp], comp, want, comps, names)
			}
		}
		for _, name := range []string{"run", "stage_in", "execute", "stage_out"} {
			if names[name] != 1 {
				t.Errorf("trace %s: %d %q spans, want 1", tree.TraceID, names[name], name)
			}
		}
		// The chain crosses hops in order: root task (master) → … →
		// foreman relay → downstream task → … → worker run.
		if tree.Root.Comp != "master" || tree.Root.Name != "task" {
			t.Errorf("root is %s/%s, want master/task", tree.Root.Comp, tree.Root.Name)
		}
	}
}

// TestTraceMalformedContextDegrades submits tasks whose Trace field
// holds garbage: the master must mint a fresh root (never error) and
// the task must complete normally.
func TestTraceMalformedContextDegrades(t *testing.T) {
	tr, buf, log := traceSetup(t)
	m := newMaster(t)
	m.Trace(tr)
	w := newWorker(t, m.Addr(), "w0", 1)
	w.Trace(tr)

	for _, garbage := range []string{
		"not-a-trace", "lt1-xx-yy-zz", "lt1-0000000000000000-0000000000000000-01", "lt9-....",
	} {
		id, err := m.Submit(&Task{
			Func: "echo", Args: map[string]string{"text": "x"},
			Outputs: []string{"out.txt"}, Trace: garbage,
		})
		if err != nil {
			t.Fatalf("Submit with trace %q: %v", garbage, err)
		}
		r, ok := m.WaitResult(10 * time.Second)
		if !ok || r.Failed() || r.TaskID != id {
			t.Fatalf("task with trace %q: %+v", garbage, r)
		}
	}

	trees := trace.BuildTrees(records(t, buf, log))
	if len(trees) != 4 {
		t.Fatalf("got %d traces, want 4 fresh roots", len(trees))
	}
	for _, tree := range trees {
		if tree.Root.Parent != "" || tree.Orphans != 0 {
			t.Errorf("degraded trace %s: parent=%q orphans=%d",
				tree.TraceID, tree.Root.Parent, tree.Orphans)
		}
	}
}

// TestTraceRequeueSpans kills a worker mid-task and checks the trace
// records the lost dispatch attempt and the successful retry under one
// root.
func TestTraceRequeueSpans(t *testing.T) {
	tr, buf, log := traceSetup(t)
	m := newMaster(t)
	m.Trace(tr)
	w1, err := NewWorker(m.Addr(), "victim", 1, t.TempDir(), testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	m.Submit(&Task{Func: "sleep", Args: map[string]string{"d": "5s"}})
	// Let the task dispatch, then evict its worker.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().TasksRunning == 0 {
		if time.Now().After(deadline) {
			t.Fatal("task never dispatched")
		}
		time.Sleep(10 * time.Millisecond)
	}
	w1.Evict()
	w2 := newWorker(t, m.Addr(), "rescuer", 1)
	w2.Trace(tr)
	// Speed the retry up: replace the sleep with a short one is not
	// possible, so just wait for the 5s task on the second worker.
	r, ok := m.WaitResult(30 * time.Second)
	if !ok {
		t.Fatal("no result after requeue")
	}
	if r.Failed() || r.Requeues != 1 {
		t.Fatalf("result: %+v", r)
	}

	trees := trace.BuildTrees(records(t, buf, log))
	if len(trees) != 1 {
		t.Fatalf("got %d traces, want 1", len(trees))
	}
	dispatches, lost := 0, 0
	var visit func(nd *trace.Node)
	visit = func(nd *trace.Node) {
		if nd.Name == "dispatch" {
			dispatches++
			if nd.Attrs["lost"] != "" {
				lost++
			}
		}
		for _, c := range nd.Children {
			visit(c)
		}
	}
	visit(trees[0].Root)
	if dispatches != 2 || lost != 1 {
		t.Fatalf("dispatch spans = %d (lost %d), want 2 (1 lost)", dispatches, lost)
	}
}
