package wq

import (
	"fmt"
	"net"
	"testing"
	"time"

	"lobster/internal/replica"
)

// haReserve grabs n loopback addresses by listening and closing.
func haReserve(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l.Addr().String()
		l.Close()
	}
	return out
}

// startHATrio starts a 3-member replicated control plane and returns the
// members plus their worker-facing addresses.
func startHATrio(t *testing.T) ([]*HAMaster, []string) {
	t.Helper()
	repAddrs := haReserve(t, 3)
	peers := map[uint64]string{1: repAddrs[0], 2: repAddrs[1], 3: repAddrs[2]}
	masters := make([]*HAMaster, 3)
	// Start the members to learn their wq addrs, then share the map for
	// redirects (redirects are hints; a nil map only slows workers down).
	wqAddrs := make(map[uint64]string)
	for i := 0; i < 3; i++ {
		h, err := StartHAMaster(HAMasterConfig{
			ID: uint64(i + 1), Peers: peers, Addr: "127.0.0.1:0",
			WQAddrs: wqAddrs, Seed: 99,
			TickEvery: 2 * time.Millisecond, ElectionTicks: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		masters[i] = h
	}
	addrs := make([]string, 3)
	for i, h := range masters {
		addrs[i] = h.Addr()
		wqAddrs[uint64(i+1)] = h.Addr()
	}
	return masters, addrs
}

// waitHALeader blocks until some live member is ready to dispatch.
func waitHALeader(t *testing.T, masters []*HAMaster) *HAMaster {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, h := range masters {
			if h != nil && h.Ready() {
				return h
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no HA leader became ready")
	return nil
}

// haSubmit submits a tagged task at whichever member leads, retrying
// through leadership changes (tag dedupe makes the retry idempotent).
func haSubmit(t *testing.T, masters []*HAMaster, task *Task) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, h := range masters {
			if h == nil {
				continue
			}
			id, err := h.Submit(task, 5*time.Second)
			if err == nil {
				return id
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("submit %q never committed", task.Tag)
	return 0
}

func TestHAMasterFailover(t *testing.T) {
	masters, addrs := startHATrio(t)
	defer func() {
		for _, h := range masters {
			if h != nil {
				h.Close()
			}
		}
	}()

	var workers []*HAWorker
	for i := 0; i < 2; i++ {
		w := StartHAWorker(HAWorkerConfig{
			Addrs: addrs, Name: fmt.Sprintf("w%d", i), Cores: 2,
			Dir: t.TempDir(), Reg: testRegistry(),
		})
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	ldr := waitHALeader(t, masters)

	// A standby must refuse submissions with the typed error.
	for _, h := range masters {
		if h != ldr {
			if _, err := h.Submit(&Task{Func: "echo"}, time.Second); err != replica.ErrNotLeader {
				t.Fatalf("standby Submit returned %v, want ErrNotLeader", err)
			}
			break
		}
	}

	const pre = 10
	for i := 0; i < pre; i++ {
		haSubmit(t, masters, &Task{
			Func: "echo", Tag: fmt.Sprintf("pre-%d", i),
			Args:    map[string]string{"text": fmt.Sprintf("payload-%d", i)},
			Outputs: []string{"out.txt"},
		})
	}
	if !ldr.WaitDone(pre, 15*time.Second) {
		t.Fatalf("leader finished %d/%d before kill", ldr.DoneCount(), pre)
	}

	// Kill the leader abruptly mid-cluster. The survivors must elect,
	// replay, and finish new work — and still hold every old outcome.
	var killIdx int
	for i, h := range masters {
		if h == ldr {
			killIdx = i
		}
	}
	ldr.Kill()
	masters[killIdx] = nil

	next := waitHALeader(t, masters)
	const post = 5
	for i := 0; i < post; i++ {
		haSubmit(t, masters, &Task{
			Func: "echo", Tag: fmt.Sprintf("post-%d", i),
			Args:    map[string]string{"text": fmt.Sprintf("late-%d", i)},
			Outputs: []string{"out.txt"},
		})
	}
	if !next.WaitDone(pre+post, 20*time.Second) {
		t.Fatalf("post-failover leader finished %d/%d", next.DoneCount(), pre+post)
	}

	// Exactly-once at the replicated level: every tag resolved exactly one
	// terminal outcome, outputs intact, on every survivor.
	for _, h := range masters {
		if h == nil {
			continue
		}
		if !h.WaitDone(pre+post, 10*time.Second) {
			t.Fatalf("member %d holds %d outcomes, want %d", h.ID(), h.DoneCount(), pre+post)
		}
		seen := make(map[string]int)
		for _, r := range h.Results() {
			seen[r.Tag]++
			if r.Failed() {
				t.Fatalf("member %d: task %s failed: %s", h.ID(), r.Tag, r.Error)
			}
			if len(r.Outputs) != 1 || r.Outputs[0].Name != "out.txt" {
				t.Fatalf("member %d: task %s outputs %v", h.ID(), r.Tag, r.Outputs)
			}
		}
		for i := 0; i < pre; i++ {
			if n := seen[fmt.Sprintf("pre-%d", i)]; n != 1 {
				t.Fatalf("member %d: pre-%d completed %d times", h.ID(), i, n)
			}
		}
		for i := 0; i < post; i++ {
			if n := seen[fmt.Sprintf("post-%d", i)]; n != 1 {
				t.Fatalf("member %d: post-%d completed %d times", h.ID(), i, n)
			}
		}
		// The warm task DB mirrors the outcomes.
		if h.Monitor().Len() != pre+post {
			t.Fatalf("member %d monitor holds %d records, want %d",
				h.ID(), h.Monitor().Len(), pre+post)
		}
		if h.PendingCount() != 0 {
			t.Fatalf("member %d still has %d pending", h.ID(), h.PendingCount())
		}
	}
}

func TestHASubmitTagIdempotent(t *testing.T) {
	masters, addrs := startHATrio(t)
	defer func() {
		for _, h := range masters {
			h.Close()
		}
	}()
	w := StartHAWorker(HAWorkerConfig{
		Addrs: addrs, Name: "w0", Cores: 1, Dir: t.TempDir(), Reg: testRegistry(),
	})
	defer w.Close()

	ldr := waitHALeader(t, masters)
	task := &Task{Func: "echo", Tag: "once", Args: map[string]string{"text": "hi"}, Outputs: []string{"out.txt"}}
	id1, err := ldr.Submit(task, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ldr.Submit(&Task{Func: "echo", Tag: "once"}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("resubmitted tag got a new ID: %d vs %d", id1, id2)
	}
	if !ldr.WaitDone(1, 10*time.Second) {
		t.Fatal("task never finished")
	}
	if ldr.DoneCount() != 1 {
		t.Fatalf("tag ran %d times, want 1", ldr.DoneCount())
	}
}

func TestHARedirectPointsAtLeader(t *testing.T) {
	masters, _ := startHATrio(t)
	defer func() {
		for _, h := range masters {
			h.Close()
		}
	}()
	ldr := waitHALeader(t, masters)

	// Dial a standby directly: the hello must be answered with a redirect
	// carrying the leader's worker-facing address.
	var standby *HAMaster
	for _, h := range masters {
		if h != ldr {
			standby = h
			break
		}
	}
	w, err := NewWorker(standby.Addr(), "probe", 1, t.TempDir(), testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	select {
	case <-w.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("standby kept the worker connection open")
	}
	if got := w.RedirectAddr(); got != ldr.Addr() {
		t.Fatalf("redirect %q, want leader %q", got, ldr.Addr())
	}
}
