package wq

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"
)

// --- Drain regression -------------------------------------------------

// TestDrainBurstAfterDeadline is the regression test for the
// Drain-vs-timeout race: results that have already arrived must be
// returned even when the deadline passed while earlier results were
// being collected. Before the fix, Drain consulted the clock before the
// result queue and dropped a whole pending burst on the floor.
func TestDrainBurstAfterDeadline(t *testing.T) {
	m := newLocalMaster()
	const n = 100
	burst := make([]*Result, n)
	for i := range burst {
		burst[i] = &Result{TaskID: int64(i + 1), Worker: "w"}
	}
	m.pushResults(burst)
	// A 1ns timeout is expired by the time Drain reads the clock.
	got := m.Drain(n, time.Nanosecond)
	if len(got) != n {
		t.Fatalf("Drain returned %d results, want %d pending results despite expired deadline", len(got), n)
	}
	// And the timeout still bounds actual waiting.
	start := time.Now()
	if extra := m.Drain(5, 50*time.Millisecond); len(extra) != 0 {
		t.Fatalf("Drain returned %d results from an empty queue", len(extra))
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Drain waited %v, want ~50ms", waited)
	}
}

// TestDrainUnderBurst drives the same race end to end: a fleet finishing
// n tasks faster than the caller's drain deadline must still hand over
// every result that made it back.
func TestDrainUnderBurst(t *testing.T) {
	m := newMaster(t)
	newWorker(t, m.Addr(), "w0", 8)
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := m.Submit(&Task{Func: "echo",
			Args: map[string]string{"text": "x"}, Outputs: []string{"out.txt"}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until every result is pending, then drain with an expired
	// deadline: the sweep must return all of them.
	deadline := time.Now().Add(10 * time.Second)
	for m.Stats().ResultsPending < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d results pending", m.Stats().ResultsPending, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := m.Drain(n, time.Nanosecond)
	if len(got) != n {
		t.Fatalf("Drain under burst returned %d/%d results", len(got), n)
	}
}

// --- Poison task / permanent failure ----------------------------------

// TestPoisonTaskPermanentFailure loses a task's worker more times than
// its retry budget and asserts the queue surfaces a typed permanent
// failure instead of recycling the task forever.
func TestPoisonTaskPermanentFailure(t *testing.T) {
	m := newMaster(t)
	id, err := m.Submit(&Task{Func: "sleep",
		Args: map[string]string{"d": "2s"}, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		w, err := NewWorker(m.Addr(), fmt.Sprintf("victim%d", attempt), 1, t.TempDir(), testRegistry())
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for m.Stats().TasksRunning == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d never dispatched", attempt)
			}
			time.Sleep(5 * time.Millisecond)
		}
		w.Evict()
		// Wait for the loss to be accounted before connecting the next
		// victim, so each eviction burns exactly one attempt.
		for m.Stats().TasksRunning != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d never requeued", attempt)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	r, ok := m.WaitResult(10 * time.Second)
	if !ok {
		t.Fatal("no result after retry budget exhausted")
	}
	if r.TaskID != id || !r.Failed() || r.ExitCode != -1 {
		t.Fatalf("result: %+v", r)
	}
	if !r.PermanentlyFailed() {
		t.Fatalf("result not typed permanent: %+v", r)
	}
	if r.Requeues != 3 {
		t.Fatalf("requeues = %d, want 3 (MaxRetries+1 attempts)", r.Requeues)
	}
}

// --- Interop matrix ---------------------------------------------------

// rawPeer speaks the wire protocol by hand, so tests can impersonate old
// (proto 0) and new (proto ≥ 1) peers and inspect exact framing.
type rawPeer struct {
	t    *testing.T
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialRaw(t *testing.T, addr string) *rawPeer {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawPeer{t: t, conn: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c)}
}

func (p *rawPeer) send(m *message) {
	p.t.Helper()
	if err := p.enc.Encode(m); err != nil {
		p.t.Fatalf("raw send %s: %v", m.Type, err)
	}
}

func (p *rawPeer) recv(timeout time.Duration) *message {
	p.t.Helper()
	p.conn.SetReadDeadline(time.Now().Add(timeout))
	var m message
	if err := p.dec.Decode(&m); err != nil {
		p.t.Fatalf("raw recv: %v", err)
	}
	p.conn.SetReadDeadline(time.Time{})
	return &m
}

// TestInteropNewMasterOldWorker connects a proto-0 worker (no proto in
// hello) to the batching master: the master must never ack the batch
// capability and must frame every task as a v0 single "task" message.
func TestInteropNewMasterOldWorker(t *testing.T) {
	m := newMaster(t)
	p := dialRaw(t, m.Addr())
	p.send(&message{Type: "hello", Name: "old", Cores: 4})

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := m.Submit(&Task{Func: "noop", Tag: "interop"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg := p.recv(10 * time.Second)
		switch msg.Type {
		case "hello":
			t.Fatal("master acked batch capability to a proto-0 worker")
		case "tasks":
			t.Fatal("master sent batch framing to a proto-0 worker")
		case "task":
			if msg.Task == nil {
				t.Fatal("task message without task")
			}
			// An old worker answers one result per message.
			p.send(&message{Type: "result",
				Result: &Result{TaskID: msg.Task.ID, Worker: "old"}})
		default:
			t.Fatalf("unexpected message %q", msg.Type)
		}
	}
	if got := m.Drain(n, 10*time.Second); len(got) != n {
		t.Fatalf("collected %d/%d results via old worker", len(got), n)
	}
}

// TestInteropOldMasterNewWorker runs the batching worker against a
// master that never acks the capability (a proto-0 master): the worker
// must keep every result on single-message framing.
func TestInteropOldMasterNewWorker(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	w, err := NewWorker(lis.Addr().String(), "new", 4, t.TempDir(), testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := <-accepted
	defer c.Close()
	p := &rawPeer{t: t, conn: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c)}

	hello := p.recv(10 * time.Second)
	if hello.Type != "hello" || hello.Proto < protoBatch {
		t.Fatalf("worker hello = %+v, want proto >= %d advertised", hello, protoBatch)
	}
	// An old master ignores the unknown proto field and never acks.
	// Send a burst of tasks as singles; every result must come back as a
	// single "result" message.
	const n = 8
	for i := 0; i < n; i++ {
		p.send(&message{Type: "task", Task: &Task{
			ID: int64(i + 1), Func: "echo",
			Args: map[string]string{"text": "x"}, Outputs: []string{"out.txt"},
		}})
	}
	seen := make(map[int64]bool)
	for len(seen) < n {
		msg := p.recv(10 * time.Second)
		switch msg.Type {
		case "results":
			t.Fatal("worker sent batch framing without a capability ack")
		case "result":
			if msg.Result == nil || seen[msg.Result.TaskID] {
				t.Fatalf("bad or duplicate result: %+v", msg.Result)
			}
			if msg.Result.Failed() {
				t.Fatalf("task failed: %+v", msg.Result)
			}
			seen[msg.Result.TaskID] = true
		}
	}
}

// TestInteropBatchPeers impersonates a batching worker and checks the
// full negotiated path: hello exchange, "tasks" batch framing down, and
// "results" batch framing accepted back.
func TestInteropBatchPeers(t *testing.T) {
	m := newMaster(t)
	p := dialRaw(t, m.Addr())
	p.send(&message{Type: "hello", Name: "batcher", Cores: 16, Proto: protoBatch})
	if ack := p.recv(10 * time.Second); ack.Type != "hello" || ack.Proto < protoBatch {
		t.Fatalf("capability ack = %+v, want hello with proto >= %d", ack, protoBatch)
	}

	const n = 16
	for i := 0; i < n; i++ {
		if _, err := m.Submit(&Task{Func: "noop"}); err != nil {
			t.Fatal(err)
		}
	}
	var results []*Result
	got := 0
	sawBatch := false
	for got < n {
		msg := p.recv(10 * time.Second)
		var tasks []*Task
		switch msg.Type {
		case "tasks":
			sawBatch = true
			tasks = msg.Tasks
		case "task":
			tasks = []*Task{msg.Task}
		default:
			t.Fatalf("unexpected message %q", msg.Type)
		}
		results = results[:0]
		for _, task := range tasks {
			results = append(results, &Result{TaskID: task.ID, Worker: "batcher"})
			got++
		}
		p.send(&message{Type: "results", Results: results})
	}
	if !sawBatch {
		t.Error("negotiated batch connection never used batch framing")
	}
	if collected := m.Drain(n, 10*time.Second); len(collected) != n {
		t.Fatalf("collected %d/%d batched results", len(collected), n)
	}
}

// TestWorkerBatchesResults checks the worker-side result batcher: a
// burst of completions on a negotiated connection must arrive in fewer
// "results" messages than there are results.
func TestWorkerBatchesResults(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	w, err := NewWorkerOpts(lis.Addr().String(), "new", 8, t.TempDir(), testRegistry(),
		WorkerOptions{ResultLinger: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := <-accepted
	defer c.Close()
	p := &rawPeer{t: t, conn: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c)}
	if hello := p.recv(10 * time.Second); hello.Type != "hello" {
		t.Fatalf("expected hello, got %q", hello.Type)
	}
	p.send(&message{Type: "hello", Proto: protoBatch}) // capability ack

	// One batch of quick tasks: their results land within one linger
	// window and must coalesce.
	const n = 8
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = &Task{ID: int64(i + 1), Func: "echo",
			Args: map[string]string{"text": "x"}, Outputs: []string{"out.txt"}}
	}
	p.send(&message{Type: "tasks", Tasks: tasks})
	got, messages := 0, 0
	for got < n {
		msg := p.recv(10 * time.Second)
		switch msg.Type {
		case "results":
			messages++
			got += len(msg.Results)
		case "result":
			t.Fatal("worker sent single framing after capability ack")
		}
	}
	if messages >= n {
		t.Fatalf("%d results arrived in %d messages: no batching happened", n, messages)
	}
}
