package wq

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// testRegistry returns executors used across the tests.
func testRegistry() Registry {
	return Registry{
		"echo": func(ctx *ExecContext) error {
			out := ctx.Task.Args["text"]
			return os.WriteFile(filepath.Join(ctx.Sandbox, "out.txt"), []byte(out), 0o644)
		},
		"cat": func(ctx *ExecContext) error {
			var buf bytes.Buffer
			for _, in := range ctx.Task.Inputs {
				data, err := os.ReadFile(filepath.Join(ctx.Sandbox, in.Name))
				if err != nil {
					return err
				}
				buf.Write(data)
			}
			return os.WriteFile(filepath.Join(ctx.Sandbox, "merged"), buf.Bytes(), 0o644)
		},
		"sleep": func(ctx *ExecContext) error {
			d, err := time.ParseDuration(ctx.Task.Args["d"])
			if err != nil {
				return err
			}
			time.Sleep(d)
			return nil
		},
		"fail": func(ctx *ExecContext) error {
			return &ExitError{Code: 42, Msg: "synthetic failure"}
		},
		"panic": func(ctx *ExecContext) error {
			panic("executor bug")
		},
	}
}

func newMaster(t *testing.T) *Master {
	t.Helper()
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func newWorker(t *testing.T, addr, name string, cores int) *Worker {
	t.Helper()
	w, err := NewWorker(addr, name, cores, t.TempDir(), testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestSingleTaskRoundTrip(t *testing.T) {
	m := newMaster(t)
	newWorker(t, m.Addr(), "w0", 2)
	id, err := m.Submit(&Task{
		Func:    "echo",
		Args:    map[string]string{"text": "hello lobster"},
		Outputs: []string{"out.txt"},
		Tag:     "analysis",
	})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m.WaitResult(10 * time.Second)
	if !ok {
		t.Fatal("no result")
	}
	if r.TaskID != id || r.Failed() {
		t.Fatalf("result = %+v", r)
	}
	if r.Tag != "analysis" || r.Worker != "w0" {
		t.Errorf("metadata: tag=%q worker=%q", r.Tag, r.Worker)
	}
	if len(r.Outputs) != 1 || string(r.Outputs[0].Data) != "hello lobster" {
		t.Fatalf("outputs = %+v", r.Outputs)
	}
	ts := r.Stats.Times
	if ts.Submitted.IsZero() || ts.Dispatched.IsZero() || ts.Started.IsZero() ||
		ts.Finished.IsZero() || ts.Returned.IsZero() {
		t.Errorf("incomplete timestamps: %+v", ts)
	}
	if ts.Dispatched.Before(ts.Submitted) || ts.Returned.Before(ts.Started) {
		t.Errorf("timestamp ordering wrong: %+v", ts)
	}
}

func TestInputStagingAndOutputs(t *testing.T) {
	m := newMaster(t)
	newWorker(t, m.Addr(), "w0", 1)
	m.Submit(&Task{
		Func: "cat",
		Inputs: []FileSpec{
			{Name: "a.txt", Data: []byte("one-")},
			{Name: "sub/b.txt", Data: []byte("two")},
		},
		Outputs: []string{"merged"},
	})
	r, ok := m.WaitResult(10 * time.Second)
	if !ok || r.Failed() {
		t.Fatalf("result = %+v", r)
	}
	if string(r.Outputs[0].Data) != "one-two" {
		t.Fatalf("merged = %q", r.Outputs[0].Data)
	}
	if r.Stats.BytesIn != 7 || r.Stats.BytesOut != 7 {
		t.Errorf("bytes: in=%d out=%d", r.Stats.BytesIn, r.Stats.BytesOut)
	}
}

func TestManyTasksManyWorkers(t *testing.T) {
	m := newMaster(t)
	for i := 0; i < 4; i++ {
		newWorker(t, m.Addr(), fmt.Sprintf("w%d", i), 4)
	}
	const n = 100
	for i := 0; i < n; i++ {
		m.Submit(&Task{
			Func:    "echo",
			Args:    map[string]string{"text": strconv.Itoa(i)},
			Outputs: []string{"out.txt"},
		})
	}
	results := m.Drain(n, 30*time.Second)
	if len(results) != n {
		t.Fatalf("got %d results", len(results))
	}
	workers := make(map[string]int)
	for _, r := range results {
		if r.Failed() {
			t.Fatalf("task %d failed: %s", r.TaskID, r.Error)
		}
		workers[r.Worker]++
	}
	if len(workers) < 2 {
		t.Errorf("work not distributed: %v", workers)
	}
	st := m.Stats()
	if st.TasksDone != n || st.TasksFailed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFailureAndExitCode(t *testing.T) {
	m := newMaster(t)
	newWorker(t, m.Addr(), "w0", 1)
	m.Submit(&Task{Func: "fail"})
	r, ok := m.WaitResult(10 * time.Second)
	if !ok {
		t.Fatal("no result")
	}
	if !r.Failed() || r.ExitCode != 42 {
		t.Fatalf("result = %+v", r)
	}
}

func TestPanicIsolation(t *testing.T) {
	m := newMaster(t)
	w := newWorker(t, m.Addr(), "w0", 1)
	m.Submit(&Task{Func: "panic"})
	r, ok := m.WaitResult(10 * time.Second)
	if !ok || !r.Failed() {
		t.Fatalf("panic not reported: %+v", r)
	}
	// Worker must survive and run further tasks.
	m.Submit(&Task{Func: "echo", Args: map[string]string{"text": "alive"}, Outputs: []string{"out.txt"}})
	r, ok = m.WaitResult(10 * time.Second)
	if !ok || r.Failed() {
		t.Fatalf("worker dead after panic: %+v", r)
	}
	if w.TasksRun() != 2 || w.TasksFailed() != 1 {
		t.Errorf("worker counters: run=%d failed=%d", w.TasksRun(), w.TasksFailed())
	}
}

func TestUnknownExecutor(t *testing.T) {
	m := newMaster(t)
	newWorker(t, m.Addr(), "w0", 1)
	m.Submit(&Task{Func: "no-such-func"})
	r, ok := m.WaitResult(10 * time.Second)
	if !ok || r.ExitCode != 127 {
		t.Fatalf("result = %+v", r)
	}
}

func TestMissingDeclaredOutput(t *testing.T) {
	m := newMaster(t)
	newWorker(t, m.Addr(), "w0", 1)
	m.Submit(&Task{Func: "echo", Args: map[string]string{"text": "x"}, Outputs: []string{"wrong-name"}})
	r, ok := m.WaitResult(10 * time.Second)
	if !ok || r.ExitCode != 171 {
		t.Fatalf("result = %+v", r)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newMaster(t)
	if _, err := m.Submit(&Task{}); err == nil {
		t.Error("task without Func accepted")
	}
}

func TestCacheableInputSentOnce(t *testing.T) {
	m := newMaster(t)
	w := newWorker(t, m.Addr(), "w0", 2)
	sandbox := bytes.Repeat([]byte("software-release;"), 1000)
	const n = 10
	for i := 0; i < n; i++ {
		m.Submit(&Task{
			Func: "cat",
			Inputs: []FileSpec{
				{Name: "sandbox.tar", Data: sandbox, Cacheable: true},
			},
			Outputs: []string{"merged"},
		})
	}
	results := m.Drain(n, 30*time.Second)
	if len(results) != n {
		t.Fatalf("got %d results", len(results))
	}
	var hits, misses int
	for _, r := range results {
		if r.Failed() {
			t.Fatalf("task failed: %s", r.Error)
		}
		if !bytes.Equal(r.Outputs[0].Data, sandbox) {
			t.Fatal("cached input corrupted")
		}
		hits += r.Stats.CacheHits
		misses += r.Stats.CacheMisses
	}
	if misses != 1 {
		t.Errorf("cacheable input transferred %d times, want 1", misses)
	}
	if hits != n-1 {
		t.Errorf("cache hits = %d, want %d", hits, n-1)
	}
	if w.CachedObjects() != 1 {
		t.Errorf("worker cache holds %d objects", w.CachedObjects())
	}
}

func TestEvictionRequeuesTasks(t *testing.T) {
	m := newMaster(t)
	victim := newWorker(t, m.Addr(), "victim", 2)
	m.Submit(&Task{Func: "sleep", Args: map[string]string{"d": "5s"}})
	m.Submit(&Task{Func: "sleep", Args: map[string]string{"d": "5s"}})
	// Wait until both tasks are running on the victim.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().TasksRunning != 2 {
		if time.Now().After(deadline) {
			t.Fatal("tasks never dispatched")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.Evict()
	// A rescuer arrives; requeued tasks must complete there.
	rescuer := newWorker(t, m.Addr(), "rescuer", 2)
	// Speed things up: replace sleeps is impossible, so just wait.
	results := m.Drain(2, 30*time.Second)
	if len(results) != 2 {
		t.Fatalf("got %d results after eviction", len(results))
	}
	for _, r := range results {
		if r.Failed() {
			t.Fatalf("requeued task failed: %+v", r)
		}
		if r.Worker != "rescuer" {
			t.Errorf("task ran on %q", r.Worker)
		}
		if r.Requeues == 0 {
			t.Error("requeue count not recorded")
		}
	}
	if m.Stats().Requeues != 2 {
		t.Errorf("master requeues = %d", m.Stats().Requeues)
	}
	_ = rescuer
}

func TestRetriesExhaustedProducesFailure(t *testing.T) {
	m := newMaster(t)
	m.Submit(&Task{Func: "sleep", Args: map[string]string{"d": "10s"}, MaxRetries: 1})
	// Two successive evictions exceed MaxRetries=1.
	for i := 0; i < 2; i++ {
		w := newWorker(t, m.Addr(), fmt.Sprintf("victim%d", i), 1)
		deadline := time.Now().Add(5 * time.Second)
		for m.Stats().TasksRunning != 1 {
			if time.Now().After(deadline) {
				t.Fatal("task never dispatched")
			}
			time.Sleep(5 * time.Millisecond)
		}
		w.Evict()
		// Wait for the master to process the loss.
		for m.Stats().TasksRunning != 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	r, ok := m.WaitResult(10 * time.Second)
	if !ok {
		t.Fatal("no terminal failure result")
	}
	if !r.Failed() || r.ExitCode != -1 {
		t.Fatalf("result = %+v", r)
	}
}

func TestWaitResultTimeout(t *testing.T) {
	m := newMaster(t)
	start := time.Now()
	_, ok := m.WaitResult(100 * time.Millisecond)
	if ok {
		t.Fatal("result from empty master")
	}
	if time.Since(start) < 80*time.Millisecond {
		t.Error("timeout returned too early")
	}
}

func TestMasterStatsWorkers(t *testing.T) {
	m := newMaster(t)
	w1 := newWorker(t, m.Addr(), "a", 4)
	newWorker(t, m.Addr(), "b", 8)
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().WorkersConnected != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered: %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c := m.Stats().CoresConnected; c != 12 {
		t.Errorf("cores = %d", c)
	}
	w1.Close()
	for m.Stats().WorkersConnected != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker departure not noticed: %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestForemanHierarchy(t *testing.T) {
	m := newMaster(t)
	fm, err := NewForeman(m.Addr(), "127.0.0.1:0", "foreman0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()
	newWorker(t, fm.Addr(), "w0", 2)
	newWorker(t, fm.Addr(), "w1", 2)

	sandbox := bytes.Repeat([]byte("release;"), 500)
	const n = 20
	for i := 0; i < n; i++ {
		m.Submit(&Task{
			Func:    "cat",
			Inputs:  []FileSpec{{Name: "sb", Data: sandbox, Cacheable: true}},
			Outputs: []string{"merged"},
		})
	}
	results := m.Drain(n, 30*time.Second)
	if len(results) != n {
		t.Fatalf("got %d results through foreman", len(results))
	}
	for _, r := range results {
		if r.Failed() {
			t.Fatalf("task failed: %+v", r)
		}
		if !bytes.Equal(r.Outputs[0].Data, sandbox) {
			t.Fatal("output corrupted through foreman")
		}
	}
	if fm.Relayed() != n {
		t.Errorf("foreman relayed %d", fm.Relayed())
	}
	if fm.CachedObjects() != 1 {
		t.Errorf("foreman cache holds %d", fm.CachedObjects())
	}
	// Task IDs must be the master's, not the foreman's internal ones.
	seen := make(map[int64]bool)
	for _, r := range results {
		if r.TaskID < 1 || r.TaskID > n || seen[r.TaskID] {
			t.Fatalf("bad relayed task ID %d", r.TaskID)
		}
		seen[r.TaskID] = true
	}
}

func TestTwoForemen(t *testing.T) {
	m := newMaster(t)
	for i := 0; i < 2; i++ {
		fm, err := NewForeman(m.Addr(), "127.0.0.1:0", fmt.Sprintf("f%d", i), 4)
		if err != nil {
			t.Fatal(err)
		}
		defer fm.Close()
		newWorker(t, fm.Addr(), fmt.Sprintf("w%d", i), 2)
	}
	const n = 40
	for i := 0; i < n; i++ {
		m.Submit(&Task{Func: "echo", Args: map[string]string{"text": "x"}, Outputs: []string{"out.txt"}})
	}
	results := m.Drain(n, 30*time.Second)
	if len(results) != n {
		t.Fatalf("got %d results via two foremen", len(results))
	}
}

func TestMasterCloseUnblocksWaiters(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := m.WaitResult(0)
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("WaitResult returned a result from a closed master")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitResult not unblocked by Close")
	}
	if _, err := m.Submit(&Task{Func: "echo"}); err == nil {
		t.Error("submit to closed master accepted")
	}
}

func TestExitErrorFormatting(t *testing.T) {
	e := &ExitError{Code: 7}
	if e.Error() != "exit code 7" {
		t.Errorf("Error() = %q", e.Error())
	}
	e2 := &ExitError{Code: 8, Msg: "boom"}
	if e2.Error() != "exit code 8: boom" {
		t.Errorf("Error() = %q", e2.Error())
	}
}

func TestWorkerRequiresPositiveCores(t *testing.T) {
	m := newMaster(t)
	if _, err := NewWorker(m.Addr(), "bad", 0, t.TempDir(), nil); err == nil {
		t.Error("zero-core worker accepted")
	}
}

var _ = atomic.Int64{} // placeholder to keep import if tests evolve

func TestTwoLevelForemanHierarchy(t *testing.T) {
	// master → foreman A → foreman B → workers: "a hierarchy of arbitrary
	// width and depth".
	m := newMaster(t)
	top, err := NewForeman(m.Addr(), "127.0.0.1:0", "top", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()
	mid, err := NewForeman(top.Addr(), "127.0.0.1:0", "mid", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	newWorker(t, mid.Addr(), "leaf0", 2)
	newWorker(t, mid.Addr(), "leaf1", 2)

	sandbox := bytes.Repeat([]byte("deep"), 2000)
	const n = 12
	for i := 0; i < n; i++ {
		m.Submit(&Task{
			Func:    "cat",
			Inputs:  []FileSpec{{Name: "sb", Data: sandbox, Cacheable: true}},
			Outputs: []string{"merged"},
		})
	}
	results := m.Drain(n, 30*time.Second)
	if len(results) != n {
		t.Fatalf("got %d results through two foreman levels", len(results))
	}
	for _, r := range results {
		if r.Failed() || !bytes.Equal(r.Outputs[0].Data, sandbox) {
			t.Fatalf("bad result: %+v", r)
		}
	}
	// Each level cached the sandbox once.
	if top.CachedObjects() != 1 || mid.CachedObjects() != 1 {
		t.Errorf("cache depth: top=%d mid=%d", top.CachedObjects(), mid.CachedObjects())
	}
}

func TestForemanSurvivesWorkerEviction(t *testing.T) {
	m := newMaster(t)
	fm, err := NewForeman(m.Addr(), "127.0.0.1:0", "fm", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()
	victim := newWorker(t, fm.Addr(), "victim", 2)
	m.Submit(&Task{Func: "sleep", Args: map[string]string{"d": "3s"}})
	deadline := time.Now().Add(5 * time.Second)
	for fm.DownstreamStats().TasksRunning != 1 {
		if time.Now().After(deadline) {
			t.Fatal("task never reached the downstream worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.Evict()
	newWorker(t, fm.Addr(), "rescuer", 2)
	r, ok := m.WaitResult(30 * time.Second)
	if !ok || r.Failed() {
		t.Fatalf("task lost across foreman after eviction: %+v", r)
	}
	if r.Worker != "rescuer" {
		t.Errorf("completed on %q", r.Worker)
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	m := newMaster(t)
	newWorker(t, m.Addr(), "w0", 1)
	big := make([]byte, 8<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	m.Submit(&Task{
		Func:    "cat",
		Inputs:  []FileSpec{{Name: "big.bin", Data: big}},
		Outputs: []string{"merged"},
	})
	r, ok := m.WaitResult(30 * time.Second)
	if !ok || r.Failed() {
		t.Fatalf("result: %+v", r)
	}
	if !bytes.Equal(r.Outputs[0].Data, big) {
		t.Fatal("8 MiB payload corrupted in transit")
	}
}

func BenchmarkMasterTaskThroughput(b *testing.B) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	reg := Registry{
		"noop": func(ctx *ExecContext) error { return nil },
	}
	for i := 0; i < 4; i++ {
		w, err := NewWorker(m.Addr(), fmt.Sprintf("w%d", i), 4, b.TempDir(), reg)
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Submit(&Task{Func: "noop"}); err != nil {
			b.Fatal(err)
		}
	}
	if got := m.Drain(b.N, 120*time.Second); len(got) != b.N {
		b.Fatalf("drained %d/%d", len(got), b.N)
	}
}

func BenchmarkCacheableSandboxDispatch(b *testing.B) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	reg := Registry{"noop": func(ctx *ExecContext) error { return nil }}
	w, err := NewWorker(m.Addr(), "w0", 4, b.TempDir(), reg)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	sandbox := bytes.Repeat([]byte("release"), 64<<10) // 448 KiB
	b.SetBytes(int64(len(sandbox)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Submit(&Task{
			Func:   "noop",
			Inputs: []FileSpec{{Name: "sb", Data: sandbox, Cacheable: true}},
		})
	}
	if got := m.Drain(b.N, 120*time.Second); len(got) != b.N {
		b.Fatalf("drained %d/%d", len(got), b.N)
	}
}
