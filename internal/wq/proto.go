package wq

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// The wire protocol is newline-delimited JSON messages in both directions.
//
//	worker → master:  hello {name, cores, proto}
//	master → worker:  hello {proto}           (batch capability ack, proto ≥ 1 peers only)
//	master → worker:  task {task}             (v0 single-task framing)
//	master → worker:  tasks {tasks}           (batch framing, proto ≥ 1 peers)
//	worker → master:  result {result}         (v0 single-result framing)
//	worker → master:  results {results}       (batch framing, only after the master's ack)
//	master → worker:  redirect {name}         (go away; Name carries the leader's address)
//	either direction: ping {}
//
// Batch framing carries one message per K tasks (or results) instead of one
// message per task, so a worker asking for K cores costs one wire round
// instead of K. Capability is negotiated in the hello exchange: a worker
// advertises proto ≥ 1, the master acks with its own hello, and only then
// does either side use the batch message types — an old peer on either end
// degrades the connection to the v0 single-message framing with no
// configuration. Unknown message types are ignored on both sides, so the
// protocol stays forward-extensible.
//
// The redirect message is the HA handshake: a master that is not accepting
// work (a standby in a replicated control plane, or a deposed leader)
// answers a worker's hello with a redirect naming the current leader's
// address — possibly empty when no leader is known — and drops the
// connection. An old worker ignores the message and simply sees the
// connection close; either way it redials, so redirects degrade to plain
// reconnect behaviour.
//
// Cacheable input files are sent with data the first time a given content
// hash crosses a connection and with hash only afterwards; each side keeps a
// per-connection record of what the peer holds plus a process-wide content
// cache. Within a batch, tasks are decoded in slice order, preserving the
// data-before-hash-only invariant.

// protoBatch is the protocol feature level at which batch framing is
// understood. Level 0 peers speak one task or result per message.
const protoBatch = 1

// batchMax bounds the tasks or results carried by one batch message: large
// enough to amortise framing and syscalls across a whole worker's cores,
// small enough that one message never buffers an unbounded payload.
const batchMax = 64

type message struct {
	Type    string    `json:"type"`
	Name    string    `json:"name,omitempty"`
	Cores   int       `json:"cores,omitempty"`
	Proto   int       `json:"proto,omitempty"`
	Task    *Task     `json:"task,omitempty"`
	Result  *Result   `json:"result,omitempty"`
	Tasks   []*Task   `json:"tasks,omitempty"`
	Results []*Result `json:"results,omitempty"`
}

// conn wraps a net.Conn with JSON framing and a write lock so multiple
// goroutines can send. The encoder and decoder are created once per
// connection and reused for every message — the per-message cost is the
// marshal itself, never a fresh encoder or framing buffer — and the
// receive side decodes into a reused message struct, so steady-state
// traffic allocates only the payload objects that escape to the caller.
type conn struct {
	raw net.Conn
	dec *json.Decoder

	wmu sync.Mutex
	enc *json.Encoder

	rmsg message // recv scratch; valid until the next recv call
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, dec: json.NewDecoder(raw), enc: json.NewEncoder(raw)}
}

func (c *conn) send(m *message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("wq: sending %s: %w", m.Type, err)
	}
	return nil
}

// recv decodes the next message into the connection's reusable scratch
// struct. The returned pointer is only valid until the next recv call;
// payload objects (tasks, results) are freshly allocated and may escape.
func (c *conn) recv() (*message, error) {
	c.rmsg = message{}
	if err := c.dec.Decode(&c.rmsg); err != nil {
		return nil, err
	}
	return &c.rmsg, nil
}

func (c *conn) close() error { return c.raw.Close() }

// contentCache is a process-wide store of cacheable file contents by hash,
// shared by all of a worker's slots (the paper's single cache directory per
// worker) or by all of a foreman's downstream connections.
type contentCache struct {
	mu    sync.RWMutex
	items map[string][]byte
}

func newContentCache() *contentCache {
	return &contentCache{items: make(map[string][]byte)}
}

func (cc *contentCache) get(hash string) ([]byte, bool) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	data, ok := cc.items[hash]
	return data, ok
}

func (cc *contentCache) put(hash string, data []byte) {
	cc.mu.Lock()
	cc.items[hash] = data
	cc.mu.Unlock()
}

// Len returns the number of cached objects.
func (cc *contentCache) len() int {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return len(cc.items)
}

// sentSet tracks which hashes the peer on one connection already holds.
type sentSet struct {
	mu   sync.Mutex
	sent map[string]bool
}

func newSentSet() *sentSet { return &sentSet{sent: make(map[string]bool)} }

// markSent records hash and reports whether it was already sent.
func (s *sentSet) markSent(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sent[hash] {
		return true
	}
	s.sent[hash] = true
	return false
}

// encodeInputsInto prepares a task's inputs for transmission on a
// connection: cacheable files get their hash computed, and their data is
// stripped when the peer has already received that hash. Tasks without
// cacheable inputs pass through untouched; tasks that need the stripped
// copy write it into scratch (a per-connection reusable Task), so the
// dispatch hot path never allocates a fresh Task or FileSpec slice once
// the scratch capacity has warmed up.
func encodeInputsInto(scratch *Task, task *Task, peer *sentSet) *Task {
	needsCopy := false
	for i := range task.Inputs {
		if task.Inputs[i].Cacheable {
			needsCopy = true
			break
		}
	}
	if !needsCopy {
		return task
	}
	inputs := scratch.Inputs[:0]
	if cap(inputs) < len(task.Inputs) {
		inputs = make([]FileSpec, 0, len(task.Inputs))
	}
	*scratch = *task
	scratch.Inputs = append(inputs, task.Inputs...)
	for i := range scratch.Inputs {
		f := &scratch.Inputs[i]
		if !f.Cacheable {
			continue
		}
		if f.Hash == "" {
			f.Hash = hashBytes(f.Data)
			// Publish the hash on the caller's task too, so later
			// connections skip re-hashing the same immutable payload.
			task.Inputs[i].Hash = f.Hash
		}
		if peer.markSent(f.Hash) {
			f.Data = nil // peer already holds it
		}
	}
	return scratch
}

// decodeInputs resolves received inputs against the local content cache,
// storing newly-arrived cacheable data and filling in stripped data.
// It returns cache hit/miss counts, or an error when a stripped input is
// missing from the cache (protocol violation or evicted cache).
func decodeInputs(task *Task, cache *contentCache) (hits, misses int, err error) {
	for i := range task.Inputs {
		f := &task.Inputs[i]
		if !f.Cacheable {
			continue
		}
		if f.Data != nil {
			if f.Hash == "" {
				f.Hash = hashBytes(f.Data)
			}
			cache.put(f.Hash, f.Data)
			misses++
			continue
		}
		data, ok := cache.get(f.Hash)
		if !ok {
			return hits, misses, fmt.Errorf("wq: input %s (hash %.12s…) not in cache", f.Name, f.Hash)
		}
		f.Data = data
		hits++
	}
	return hits, misses, nil
}
