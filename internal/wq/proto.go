package wq

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// The wire protocol is newline-delimited JSON messages in both directions.
//
//	worker → master:  hello {name, cores}
//	master → worker:  task {task}
//	worker → master:  result {result}
//	either direction: ping {}
//
// Cacheable input files are sent with data the first time a given content
// hash crosses a connection and with hash only afterwards; each side keeps a
// per-connection record of what the peer holds plus a process-wide content
// cache.

type message struct {
	Type   string  `json:"type"`
	Name   string  `json:"name,omitempty"`
	Cores  int     `json:"cores,omitempty"`
	Task   *Task   `json:"task,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// conn wraps a net.Conn with JSON framing and a write lock so multiple
// goroutines can send.
type conn struct {
	raw net.Conn
	dec *json.Decoder

	wmu sync.Mutex
	enc *json.Encoder

	bytesIn, bytesOut int64 // guarded by wmu for out, dec goroutine for in
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, dec: json.NewDecoder(raw), enc: json.NewEncoder(raw)}
}

func (c *conn) send(m *message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("wq: sending %s: %w", m.Type, err)
	}
	return nil
}

func (c *conn) recv() (*message, error) {
	var m message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (c *conn) close() error { return c.raw.Close() }

// contentCache is a process-wide store of cacheable file contents by hash,
// shared by all of a worker's slots (the paper's single cache directory per
// worker) or by all of a foreman's downstream connections.
type contentCache struct {
	mu    sync.RWMutex
	items map[string][]byte
}

func newContentCache() *contentCache {
	return &contentCache{items: make(map[string][]byte)}
}

func (cc *contentCache) get(hash string) ([]byte, bool) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	data, ok := cc.items[hash]
	return data, ok
}

func (cc *contentCache) put(hash string, data []byte) {
	cc.mu.Lock()
	cc.items[hash] = data
	cc.mu.Unlock()
}

// Len returns the number of cached objects.
func (cc *contentCache) len() int {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return len(cc.items)
}

// sentSet tracks which hashes the peer on one connection already holds.
type sentSet struct {
	mu   sync.Mutex
	sent map[string]bool
}

func newSentSet() *sentSet { return &sentSet{sent: make(map[string]bool)} }

// markSent records hash and reports whether it was already sent.
func (s *sentSet) markSent(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sent[hash] {
		return true
	}
	s.sent[hash] = true
	return false
}

// encodeInputs prepares a task's inputs for transmission on a connection:
// cacheable files get their hash computed, and their data is stripped when
// the peer has already received that hash.
func encodeInputs(task *Task, peer *sentSet) *Task {
	needsCopy := false
	for i := range task.Inputs {
		if task.Inputs[i].Cacheable {
			needsCopy = true
			break
		}
	}
	if !needsCopy {
		return task
	}
	t := *task
	t.Inputs = make([]FileSpec, len(task.Inputs))
	copy(t.Inputs, task.Inputs)
	for i := range t.Inputs {
		f := &t.Inputs[i]
		if !f.Cacheable {
			continue
		}
		if f.Hash == "" {
			f.Hash = hashBytes(f.Data)
		}
		if peer.markSent(f.Hash) {
			f.Data = nil // peer already holds it
		}
	}
	return &t
}

// decodeInputs resolves received inputs against the local content cache,
// storing newly-arrived cacheable data and filling in stripped data.
// It returns cache hit/miss counts, or an error when a stripped input is
// missing from the cache (protocol violation or evicted cache).
func decodeInputs(task *Task, cache *contentCache) (hits, misses int, err error) {
	for i := range task.Inputs {
		f := &task.Inputs[i]
		if !f.Cacheable {
			continue
		}
		if f.Data != nil {
			if f.Hash == "" {
				f.Hash = hashBytes(f.Data)
			}
			cache.put(f.Hash, f.Data)
			misses++
			continue
		}
		data, ok := cache.get(f.Hash)
		if !ok {
			return hits, misses, fmt.Errorf("wq: input %s (hash %.12s…) not in cache", f.Name, f.Hash)
		}
		f.Data = data
		hits++
	}
	return hits, misses, nil
}
