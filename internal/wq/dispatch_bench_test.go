package wq

import "testing"

// BenchmarkDispatchDisabledTel pins the uninstrumented dispatch hot path:
// enqueue by power-of-two-choices and popBatch with no dispatchTel
// installed, the state every run is in until Master.Instrument is called.
// The telemetry hooks must stay a nil-pointer load and nil-receiver
// no-ops — bench-guard -health holds this at zero allocations per op and
// guards its wall clock, so an instrument sneaking an allocation or a
// lock onto the disabled path fails `make check`.
func BenchmarkDispatchDisabledTel(b *testing.B) {
	d := newDispatchTable()
	const batch = 64
	metas := make([]*taskMeta, batch)
	for i := range metas {
		metas[i] = newTaskMeta()
	}
	dst := make([]*taskMeta, batch)
	// Warm the rings to their high-water mark so ring growth settles
	// before the measured steady state.
	for w := 0; w < 4; w++ {
		for _, m := range metas {
			d.enqueue(m)
		}
		for rem := batch; rem > 0; {
			rem -= d.popBatch(uint32(w), dst[:rem])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range metas {
			d.enqueue(m)
		}
		for rem := batch; rem > 0; {
			n := d.popBatch(uint32(i), dst[:rem])
			if n == 0 {
				b.Fatal("queued tasks vanished")
			}
			rem -= n
		}
	}
	b.ReportMetric(batch, "tasks/op")
}
