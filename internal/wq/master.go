package wq

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// MasterStats is a snapshot of master-side counters. Counters are lock-free
// atomics read individually, so a snapshot is internally relaxed: each field
// is exact at its own read instant, but fields read microseconds apart may
// straddle a task completing (TasksRunning and TasksDone can transiently sum
// one high or low). Monitoring consumers tolerate that; tests quiesce first.
type MasterStats struct {
	WorkersConnected int // currently connected (foremen count as one)
	WorkersSeen      int // total hellos
	WorkersLost      int // connections dropped with tasks outstanding or not
	CoresConnected   int
	TasksWaiting     int // submitted, not yet dispatched (queue depth)
	TasksRunning     int // dispatched, result not yet received (in flight)
	TasksDispatched  int // cumulative dispatches, including re-dispatches
	TasksDone        int
	TasksFailed      int   // done with failure
	Requeues         int   // cumulative dispatches repeated after worker loss
	ResultsPending   int   // results received but not yet collected by WaitResult
	BytesSent        int64 // task input payload bytes shipped to workers
	BytesReceived    int64 // task output payload bytes returned by workers
}

// Master owns the task queue and distributes work to connected workers.
//
// All per-task state lives in the sharded dispatchTable (see shard.go):
// Submit, dispatch, completion and requeue each lock only the one stripe a
// task hashes to, so the hot path never serialises the whole fleet on a
// master-wide mutex. Per-connection slot accounting lives on the
// workerConn's own lock, and fleet-wide counters are plain atomics.
type Master struct {
	lis net.Listener

	d      *dispatchTable
	nextID atomic.Int64
	closed atomic.Bool

	// HA gate: a refusing master answers worker hellos with a redirect
	// naming the address in redirect (possibly empty) instead of admitting
	// them. The zero value accepts, preserving standalone behaviour.
	refusing atomic.Bool
	redirect atomic.Pointer[string]

	running atomic.Int64 // dispatched, result not yet received

	workersMu sync.Mutex
	workers   map[*workerConn]bool

	res *resultTable

	statsSeen, statsLost, statsDone, statsFailed atomic.Int64
	statsRequeues, statsDispatched               atomic.Int64
	statsBytesOut, statsBytesIn                  atomic.Int64

	// tel, fault and tracer are installed after the accept loop is already
	// running, so publication must be atomic.
	tel    atomic.Pointer[masterTelemetry]
	fault  atomic.Pointer[faultinject.Injector]
	tracer atomic.Pointer[trace.Tracer]

	wg sync.WaitGroup
}

// Fault wires the master into the fault plane: newly accepted worker
// and foreman connections are wrapped so their reads and writes consult
// inj under component "wq_master". The master's requeue accounting
// turns the resulting connection losses into re-dispatches, which is
// exactly what chaos storms assert on. Call before traffic; nil is a
// no-op.
func (m *Master) Fault(inj *faultinject.Injector) {
	if inj != nil {
		m.fault.Store(inj)
	}
}

// masterTelemetry holds the master's instruments. The zero value (nil
// fields) is fully functional and free: every method on a nil instrument
// is a no-op branch.
type masterTelemetry struct {
	dispatches   *telemetry.Counter
	requeues     *telemetry.Counter
	done         *telemetry.Counter
	failed       *telemetry.Counter
	workersSeen  *telemetry.Counter
	workersLost  *telemetry.Counter
	bytesSent    *telemetry.Counter
	bytesRecv    *telemetry.Counter
	dispatchWait *telemetry.Histogram
}

// noMasterTel is the disabled instrument set: every field nil, every
// call a nil-receiver no-op.
var noMasterTel masterTelemetry

// telemetry returns the installed instruments, or the free zero set.
func (m *Master) telemetry() *masterTelemetry {
	if t := m.tel.Load(); t != nil {
		return t
	}
	return &noMasterTel
}

// Instrument registers the master's metric series on reg and begins
// updating them. Call once, before heavy traffic; a nil registry leaves
// the master uninstrumented at zero cost.
func (m *Master) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.tel.Store(&masterTelemetry{
		dispatches: reg.Counter("lobster_wq_dispatches_total",
			"Tasks dispatched to workers, including re-dispatches."),
		requeues: reg.Counter("lobster_wq_requeues_total",
			"Tasks returned to the queue after a worker was lost."),
		done: reg.Counter("lobster_wq_tasks_done_total",
			"Task results collected (success and failure)."),
		failed: reg.Counter("lobster_wq_tasks_failed_total",
			"Task results that reported failure."),
		workersSeen: reg.Counter("lobster_wq_workers_seen_total",
			"Worker hellos accepted."),
		workersLost: reg.Counter("lobster_wq_workers_lost_total",
			"Worker connections dropped."),
		bytesSent: reg.Counter("lobster_wq_bytes_sent_total",
			"Task input payload bytes shipped to workers (after cache stripping)."),
		bytesRecv: reg.Counter("lobster_wq_bytes_received_total",
			"Task output payload bytes returned by workers."),
		dispatchWait: reg.Histogram("lobster_wq_dispatch_latency_seconds",
			"Submit-to-dispatch queue latency.", nil),
	})
	reg.GaugeFunc("lobster_wq_tasks_waiting",
		"Tasks submitted and awaiting dispatch (queue depth).",
		func() float64 { return float64(m.d.pending.Load()) })
	reg.GaugeFunc("lobster_wq_tasks_running",
		"Tasks dispatched and awaiting results (in flight).",
		func() float64 { return float64(m.running.Load()) })
	reg.GaugeFunc("lobster_wq_workers_connected",
		"Workers (or foremen) currently connected.",
		func() float64 { return float64(m.Stats().WorkersConnected) })
	reg.GaugeFunc("lobster_wq_cores_connected",
		"Cores advertised by connected workers.",
		func() float64 { return float64(m.Stats().CoresConnected) })
	reg.GaugeFunc("lobster_wq_results_pending",
		"Results received from workers and not yet collected by WaitResult.",
		func() float64 { return float64(m.res.pending.Load()) })

	// Dispatch-plane instruments: per-shard queue depths for the skew
	// detectors, steal/park/wake counters for the idle-gate economics, and
	// the batch-size histogram that shows how full dispatch rounds run.
	m.d.tel.Store(&dispatchTel{
		steals: reg.Counter("lobster_wq_dispatch_steals_total",
			"Dispatch batches taken from a non-home queue."),
		parks: reg.Counter("lobster_wq_dispatch_parks_total",
			"Dispatcher park episodes (every queue empty)."),
		wakes: reg.Counter("lobster_wq_dispatch_wakes_total",
			"Idle-gate broadcasts waking parked dispatchers."),
		batchSize: reg.Histogram("lobster_wq_dispatch_batch_size",
			"Tasks taken per dispatch batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
	})
	depth := reg.GaugeFuncVec("lobster_wq_shard_queue_depth",
		"Ready tasks queued per dispatch shard.", "shard")
	for i := range m.d.queues {
		q := &m.d.queues[i]
		depth.With(func() float64 { return float64(q.size.Load()) }, strconv.Itoa(i))
	}
}

// Trace attaches a tracer: every task gets a root span spanning
// submit→result, a "submit" span per queue wait, and a "dispatch" span
// per dispatch attempt whose context travels to the worker in the task's
// Trace field. Tasks submitted with a valid upstream context (a foreman
// relaying) chain under it instead of starting a new trace. Call before
// traffic; a nil tracer leaves the master untraced at zero cost.
func (m *Master) Trace(tr *trace.Tracer) {
	if tr != nil {
		m.tracer.Store(tr)
	}
}

// workerConn is the master's end of one worker (or foreman) connection.
// The dispatch scratch buffers (popBuf, taskBuf, encScratch, msg) are
// owned by the connection's single dispatcher goroutine and sized once at
// hello, so a dispatch round reuses the same memory end to end.
type workerConn struct {
	name  string
	cores int
	batch bool   // peer negotiated batch framing (proto >= protoBatch)
	home  uint32 // home dispatch queue, hashed from the peer identity
	conn  *conn
	sent  *sentSet

	mu   sync.Mutex
	cond *sync.Cond
	// inUse counts reserved slots: increased by the dispatcher, decreased
	// by completions, guarded by mu.
	inUse int
	dead  atomic.Bool

	popBuf     []*taskMeta
	taskBuf    []*Task
	encScratch []Task
	msg        message
}

// homeQueue maps a peer identity onto a dispatch queue (FNV-1a). Foremen
// are the natural shard key: each foreman's dispatcher drains its own
// stripe first and steals from the others only when it runs dry.
func homeQueue(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h & (shardCount - 1)
}

// NewMaster starts a master listening on addr (e.g. "127.0.0.1:0").
func NewMaster(addr string) (*Master, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wq: master listen: %w", err)
	}
	m := &Master{
		lis:     lis,
		d:       newDispatchTable(),
		res:     newResultTable(),
		workers: make(map[*workerConn]bool),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the master's listen address.
func (m *Master) Addr() string { return m.lis.Addr().String() }

// SetAccepting gates worker admission. While not accepting, every worker
// hello is answered with a redirect message (see SetRedirect) and the
// connection is dropped. Standby masters in a replicated control plane run
// permanently gated; a deposed leader gates itself before kicking its
// fleet.
func (m *Master) SetAccepting(ok bool) { m.refusing.Store(!ok) }

// SetRedirect sets the address carried in redirect messages — the current
// leader's worker-facing address, when known.
func (m *Master) SetRedirect(addr string) { m.redirect.Store(&addr) }

// KickWorkers sends every connected worker a redirect and severs its
// connection. Tasks the connections held are requeued by the normal
// worker-loss path; on a deposed master they then fail their retry budget
// locally, which is correct — the new leader owns them now.
func (m *Master) KickWorkers() {
	m.workersMu.Lock()
	conns := make([]*workerConn, 0, len(m.workers))
	for wc := range m.workers {
		conns = append(conns, wc)
	}
	m.workersMu.Unlock()
	var addr string
	if p := m.redirect.Load(); p != nil {
		addr = *p
	}
	for _, wc := range conns {
		wc.conn.send(&message{Type: "redirect", Name: addr})
		m.markDead(wc)
		wc.conn.close()
	}
}

// Submit queues a task and returns its assigned ID.
func (m *Master) Submit(t *Task) (int64, error) {
	if t.Func == "" {
		return 0, errors.New("wq: task needs a Func")
	}
	if t.MaxRetries <= 0 {
		t.MaxRetries = 5
	}
	if m.closed.Load() {
		return 0, errors.New("wq: master is closed")
	}
	id := m.nextID.Add(1)
	t.ID = id
	mt := newTaskMeta()
	mt.task = t
	mt.submitted = time.Now()
	if tr := m.tracer.Load(); tr != nil {
		var span *trace.Span
		if ctx, ok := trace.Parse(t.Trace); ok {
			span = tr.Start(ctx, "master", "task") // downstream hop (foreman)
		} else {
			span = tr.Root("master", "task", t.Tag)
		}
		span.AttrInt("task_id", id)
		if t.Tag != "" {
			span.Attr("tag", t.Tag)
		}
		t.Trace = span.Context().Encode()
		mt.tt = &taskTrace{root: span, rootCtx: span.Context(), readyAt: tr.Now()}
	}
	sh := m.d.stateOf(id)
	sh.mu.Lock()
	sh.tasks[id] = mt
	sh.mu.Unlock()
	m.d.enqueue(mt)
	return id, nil
}

// Stats returns a snapshot of master counters.
func (m *Master) Stats() MasterStats {
	s := MasterStats{
		WorkersSeen:     int(m.statsSeen.Load()),
		WorkersLost:     int(m.statsLost.Load()),
		TasksWaiting:    int(m.d.pending.Load()),
		TasksRunning:    int(m.running.Load()),
		TasksDispatched: int(m.statsDispatched.Load()),
		TasksDone:       int(m.statsDone.Load()),
		TasksFailed:     int(m.statsFailed.Load()),
		Requeues:        int(m.statsRequeues.Load()),
		BytesSent:       m.statsBytesOut.Load(),
		BytesReceived:   m.statsBytesIn.Load(),
	}
	m.workersMu.Lock()
	for wc := range m.workers {
		if !wc.dead.Load() {
			s.WorkersConnected++
			s.CoresConnected += wc.cores
		}
	}
	m.workersMu.Unlock()
	s.ResultsPending = int(m.res.pending.Load())
	return s
}

// WaitResult blocks until a result is available or the timeout elapses
// (timeout <= 0 waits forever). The second return is false on timeout or
// master close with no pending results.
func (m *Master) WaitResult(timeout time.Duration) (*Result, bool) {
	var deadline time.Time
	var expired atomic.Bool
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// Wake the idle gate when the deadline lands so the timeout is
		// honoured even with no arrivals.
		timer := time.AfterFunc(timeout, func() {
			expired.Store(true)
			m.res.wakeAll()
		})
		defer timer.Stop()
	}
	for {
		if r, ok := m.res.pop(); ok {
			return r, true
		}
		if m.closed.Load() {
			return nil, false
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, false
		}
		m.res.park(func() bool { return expired.Load() || m.closed.Load() })
	}
}

// takeResults moves up to len(dst) already-arrived results into dst
// without blocking, returning the count. The batch analogue of a
// non-blocking WaitResult: a drainer sweeps whatever the result stripes
// hold.
func (m *Master) takeResults(dst []*Result) int {
	return m.res.popN(dst)
}

// pushResult records a completed task outcome.
func (m *Master) pushResult(r *Result) {
	m.res.push(r)
}

// pushResults records a batch of outcomes under one stripe-lock
// acquisition.
func (m *Master) pushResults(rs []*Result) {
	m.res.pushBatch(rs)
}

// Close shuts the master down. Queued and running tasks are abandoned.
func (m *Master) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	m.workersMu.Lock()
	for wc := range m.workers {
		wc.dead.Store(true)
		wc.conn.close()
		wc.mu.Lock()
		wc.cond.Broadcast()
		wc.mu.Unlock()
	}
	m.workersMu.Unlock()
	m.d.wakeAll()
	m.res.wakeAll()
	err := m.lis.Close()
	m.wg.Wait()
	return err
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		raw, err := m.lis.Accept()
		if err != nil {
			return
		}
		raw = m.fault.Load().Conn("wq_master", raw)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serveWorker(newConn(raw))
		}()
	}
}

// markDead takes wc out of dispatch: the dispatcher wakes (whether it is
// waiting for a slot or parked on the idle condition) and exits.
func (m *Master) markDead(wc *workerConn) {
	wc.dead.Store(true)
	wc.mu.Lock()
	wc.cond.Broadcast()
	wc.mu.Unlock()
	m.d.wakeAll()
}

// serveWorker owns one worker connection: reads the hello, then runs the
// dispatch loop and result reader until the connection dies.
func (m *Master) serveWorker(c *conn) {
	defer c.close()
	hello, err := c.recv()
	if err != nil || hello.Type != "hello" || hello.Cores < 1 {
		return
	}
	if m.refusing.Load() {
		var addr string
		if p := m.redirect.Load(); p != nil {
			addr = *p
		}
		c.send(&message{Type: "redirect", Name: addr})
		return
	}
	wc := &workerConn{
		name:  hello.Name,
		cores: hello.Cores,
		batch: hello.Proto >= protoBatch,
		home:  homeQueue(hello.Name),
		conn:  c,
		sent:  newSentSet(),
	}
	wc.cond = sync.NewCond(&wc.mu)
	width := 1
	if wc.batch {
		width = min(wc.cores, batchMax)
	}
	wc.popBuf = make([]*taskMeta, width)
	wc.taskBuf = make([]*Task, 0, width)
	wc.encScratch = make([]Task, width)
	if wc.batch {
		// Ack the batch capability so the peer knows it may send batched
		// results; an old peer never advertised, never gets the ack, and
		// the connection stays on single-message framing.
		if err := c.send(&message{Type: "hello", Proto: protoBatch}); err != nil {
			return
		}
	}
	m.workersMu.Lock()
	if m.closed.Load() {
		m.workersMu.Unlock()
		return
	}
	m.workers[wc] = true
	m.workersMu.Unlock()
	m.statsSeen.Add(1)
	m.telemetry().workersSeen.Inc()

	done := make(chan struct{})
	go func() {
		m.dispatchLoop(wc)
		close(done)
	}()
	m.readLoop(wc)
	// Connection is gone: unblock the dispatcher, then requeue what the
	// connection held. The scan waits for the dispatcher to exit so no
	// new assignments to wc can race it.
	m.markDead(wc)
	c.close()
	m.workersMu.Lock()
	delete(m.workers, wc)
	m.workersMu.Unlock()
	m.statsLost.Add(1)
	m.telemetry().workersLost.Inc()
	<-done
	var lost []*taskMeta
	for i := range m.d.state {
		sh := &m.d.state[i]
		sh.mu.Lock()
		for _, mt := range sh.tasks {
			if mt.wc == wc {
				lost = append(lost, mt)
			}
		}
		sh.mu.Unlock()
	}
	for _, mt := range lost {
		m.requeueMeta(mt, wc.name)
	}
}

// requeueMeta returns a lost task to the queue, or fails it permanently
// when its retry budget is exhausted.
func (m *Master) requeueMeta(mt *taskMeta, worker string) {
	id := mt.task.ID
	sh := m.d.stateOf(id)
	sh.mu.Lock()
	if sh.tasks[id] != mt || mt.wc == nil {
		sh.mu.Unlock()
		return // completed or already requeued since the caller's scan
	}
	mt.wc = nil
	mt.retries++
	n := mt.retries
	t := mt.task
	tt := mt.tt
	var lostDispatch *trace.Span
	if tt != nil {
		lostDispatch, tt.dispatch = tt.dispatch, nil
		tt.readyAt = m.tracer.Load().Now() // requeue restarts the queue wait
	}
	if n <= t.MaxRetries && !m.closed.Load() {
		sh.mu.Unlock()
		m.running.Add(-1)
		if lostDispatch != nil {
			lostDispatch.Attr("lost", worker)
			lostDispatch.End()
		}
		m.statsRequeues.Add(1)
		m.telemetry().requeues.Inc()
		m.d.enqueue(mt)
		return
	}
	delete(sh.tasks, id)
	sub := mt.submitted
	sh.mu.Unlock()
	releaseMeta(mt)
	m.running.Add(-1)
	if lostDispatch != nil {
		lostDispatch.Attr("lost", worker)
		lostDispatch.End()
	}
	if tt != nil {
		tt.root.AttrInt("exit_code", -1)
		tt.root.AttrInt("requeues", int64(n))
		tt.root.End()
	}
	m.statsDone.Add(1)
	m.statsFailed.Add(1)
	m.telemetry().done.Inc()
	m.telemetry().failed.Inc()
	m.pushResult(&Result{
		TaskID:    id,
		Tag:       t.Tag,
		Worker:    worker,
		ExitCode:  -1,
		Error:     fmt.Sprintf("worker lost and %d retries exhausted", t.MaxRetries),
		Requeues:  n,
		Permanent: true,
		Stats:     TaskStats{Times: TaskTimes{Submitted: sub, Returned: time.Now()}},
	})
}

// dispatchLoop matches ready tasks to wc's free slots: pop a batch sized
// to the free slots (one task for a v0 peer), stamp the assignments, and
// ship them in one message. With no ready work it parks on the table's
// idle condition; with no free slots it waits on the connection's own.
func (m *Master) dispatchLoop(wc *workerConn) {
	for {
		wc.mu.Lock()
		for wc.inUse >= wc.cores && !wc.dead.Load() && !m.closed.Load() {
			wc.cond.Wait()
		}
		free := wc.cores - wc.inUse
		wc.mu.Unlock()
		if wc.dead.Load() || m.closed.Load() {
			return
		}
		width := 1
		if wc.batch {
			width = min(free, batchMax)
		}
		n := m.d.popBatch(wc.home, wc.popBuf[:width])
		if n == 0 {
			m.d.park(func() bool { return wc.dead.Load() || m.closed.Load() })
			continue
		}
		batch := wc.popBuf[:n]
		// Reserve the slots; a connection that died since the free-slot
		// read returns its pops to the queue and exits.
		wc.mu.Lock()
		if wc.dead.Load() {
			wc.mu.Unlock()
			for _, mt := range batch {
				m.d.enqueue(mt)
			}
			return
		}
		wc.inUse += n
		wc.mu.Unlock()
		m.stampBatch(wc, batch)
		if !m.sendBatch(wc, batch) {
			return
		}
	}
}

// stampBatch records the assignment of each popped task to wc: owner,
// dispatch time, and the trace spans for the queue wait and this dispatch
// attempt. Each task locks only its own state stripe.
func (m *Master) stampBatch(wc *workerConn, batch []*taskMeta) {
	now := time.Now()
	tel := m.telemetry()
	tr := m.tracer.Load()
	for _, mt := range batch {
		id := mt.task.ID
		sh := m.d.stateOf(id)
		sh.mu.Lock()
		mt.wc = wc
		mt.dispatched = now
		sub := mt.submitted
		if tt := mt.tt; tt != nil {
			// Queue wait since submit (or the last requeue) becomes a
			// closed "submit" span; the dispatch attempt opens a span
			// whose context travels with the task so the worker's spans
			// chain under this specific attempt.
			tnow := tr.Now()
			qs := tr.StartAt(tt.readyAt, tt.rootCtx, "master", "submit")
			qs.EndAt(tnow)
			d := tr.StartAt(tnow, tt.rootCtx, "master", "dispatch")
			d.Attr("worker", wc.name)
			tt.dispatch = d
			mt.task.Trace = d.Context().Encode()
		}
		sh.mu.Unlock()
		tel.dispatches.Inc()
		if !sub.IsZero() {
			tel.dispatchWait.Observe(now.Sub(sub).Seconds())
		}
	}
	n := int64(len(batch))
	m.running.Add(n)
	m.statsDispatched.Add(n)
}

// sendBatch encodes the batch into the connection's reusable scratch and
// ships it: one "tasks" message for a batch peer, a message per task for
// a v0 peer. Returns false when the connection died; the read loop's
// cleanup requeues everything the connection held, including this batch.
func (m *Master) sendBatch(wc *workerConn, batch []*taskMeta) bool {
	tasks := wc.taskBuf[:0]
	var sent int64
	for i, mt := range batch {
		t := encodeInputsInto(&wc.encScratch[i], mt.task, wc.sent)
		for j := range t.Inputs {
			sent += int64(len(t.Inputs[j].Data))
		}
		tasks = append(tasks, t)
	}
	var err error
	if wc.batch {
		wc.msg = message{Type: "tasks", Tasks: tasks}
		err = wc.conn.send(&wc.msg)
	} else {
		for _, t := range tasks {
			wc.msg = message{Type: "task", Task: t}
			if err = wc.conn.send(&wc.msg); err != nil {
				break
			}
		}
	}
	if err != nil {
		m.markDead(wc)
		wc.conn.close()
		return false
	}
	m.statsBytesOut.Add(sent)
	m.telemetry().bytesSent.Add(sent)
	return true
}

// completeTask settles one result against the task table. It reports
// false (and the result must be dropped) when the task is unknown or
// owned by a different connection — a duplicate, or a task requeued away
// from a worker presumed lost that answered after all.
func (m *Master) completeTask(wc *workerConn, r *Result) bool {
	sh := m.d.stateOf(r.TaskID)
	sh.mu.Lock()
	mt := sh.tasks[r.TaskID]
	if mt == nil || mt.wc != wc {
		sh.mu.Unlock()
		return false
	}
	delete(sh.tasks, r.TaskID)
	r.Requeues = mt.retries
	r.Stats.Times.Submitted = mt.submitted
	r.Stats.Times.Dispatched = mt.dispatched
	tt := mt.tt
	sh.mu.Unlock()
	releaseMeta(mt)
	m.running.Add(-1)
	wc.mu.Lock()
	wc.inUse--
	wc.cond.Signal()
	wc.mu.Unlock()
	var recv int64
	for i := range r.Outputs {
		recv += int64(len(r.Outputs[i].Data))
	}
	m.statsBytesIn.Add(recv)
	m.statsDone.Add(1)
	failed := r.Failed()
	if failed {
		m.statsFailed.Add(1)
	}
	tel := m.telemetry()
	tel.done.Inc()
	if failed {
		tel.failed.Inc()
	}
	tel.bytesRecv.Add(recv)
	if tt != nil {
		tt.dispatch.End()
		tt.root.AttrInt("exit_code", int64(r.ExitCode))
		tt.root.AttrInt("requeues", int64(r.Requeues))
		tt.root.End()
	}
	r.Stats.Times.Returned = time.Now()
	return true
}

// readLoop consumes results until the connection errors.
func (m *Master) readLoop(wc *workerConn) {
	for {
		msg, err := wc.conn.recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case "result":
			if msg.Result != nil && m.completeTask(wc, msg.Result) {
				m.pushResult(msg.Result)
			}
		case "results":
			// Settle each result, then publish the accepted ones under a
			// single result-lock acquisition. The accepted slice reuses
			// the decoded message's backing array.
			accepted := msg.Results[:0]
			for _, r := range msg.Results {
				if r != nil && m.completeTask(wc, r) {
					accepted = append(accepted, r)
				}
			}
			m.pushResults(accepted)
		case "ping":
			wc.conn.send(&message{Type: "ping"})
		}
	}
}

// Drain waits until n results have been collected or the timeout expires,
// returning the results gathered. Results that have already arrived are
// always returned, even when the deadline passed while earlier results
// were being collected — the timeout bounds waiting, not sweeping.
func (m *Master) Drain(n int, timeout time.Duration) []*Result {
	deadline := time.Now().Add(timeout)
	out := make([]*Result, 0, n)
	var sweep [64]*Result
	for len(out) < n {
		// Sweep whatever is already pending before consulting the clock.
		want := min(n-len(out), len(sweep))
		if k := m.takeResults(sweep[:want]); k > 0 {
			out = append(out, sweep[:k]...)
			continue
		}
		remaining := time.Until(deadline)
		if timeout > 0 && remaining <= 0 {
			break
		}
		if timeout <= 0 {
			remaining = 0
		}
		r, ok := m.WaitResult(remaining)
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}
