package wq

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// MasterStats is a snapshot of master-side counters. Every field is read
// under the master mutex in one critical section (plus the result mutex for
// ResultsPending), so a snapshot is internally consistent — no torn reads
// between, say, TasksRunning and TasksDispatched.
type MasterStats struct {
	WorkersConnected int // currently connected (foremen count as one)
	WorkersSeen      int // total hellos
	WorkersLost      int // connections dropped with tasks outstanding or not
	CoresConnected   int
	TasksWaiting     int // submitted, not yet dispatched (queue depth)
	TasksRunning     int // dispatched, result not yet received (in flight)
	TasksDispatched  int // cumulative dispatches, including re-dispatches
	TasksDone        int
	TasksFailed      int   // done with failure
	Requeues         int   // cumulative dispatches repeated after worker loss
	ResultsPending   int   // results received but not yet collected by WaitResult
	BytesSent        int64 // task input payload bytes shipped to workers
	BytesReceived    int64 // task output payload bytes returned by workers
}

// Master owns the task queue and distributes work to connected workers.
type Master struct {
	lis net.Listener

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	nextID  int64
	ready   []*Task // FIFO
	running map[int64]*assignment
	submitT map[int64]time.Time
	dispT   map[int64]time.Time
	retries map[int64]int
	workers map[*workerConn]bool

	resMu   sync.Mutex
	resCond *sync.Cond
	results []*Result

	statsSeen, statsLost, statsDone, statsFailed, statsRequeues int
	statsDispatched                                             int
	statsBytesOut, statsBytesIn                                 int64

	// tel and fault are installed after the accept loop is already
	// running, so publication must be atomic. tracer is guarded by mu.
	tel    atomic.Pointer[masterTelemetry]
	fault  atomic.Pointer[faultinject.Injector]
	tracer *trace.Tracer
	traces map[int64]*taskTrace // by task ID; nil unless Trace was called

	wg sync.WaitGroup
}

// Fault wires the master into the fault plane: newly accepted worker
// and foreman connections are wrapped so their reads and writes consult
// inj under component "wq_master". The master's requeue accounting
// turns the resulting connection losses into re-dispatches, which is
// exactly what chaos storms assert on. Call before traffic; nil is a
// no-op.
func (m *Master) Fault(inj *faultinject.Injector) {
	if inj != nil {
		m.fault.Store(inj)
	}
}

// masterTelemetry holds the master's instruments. The zero value (nil
// fields) is fully functional and free: every method on a nil instrument
// is a no-op branch.
type masterTelemetry struct {
	dispatches   *telemetry.Counter
	requeues     *telemetry.Counter
	done         *telemetry.Counter
	failed       *telemetry.Counter
	workersSeen  *telemetry.Counter
	workersLost  *telemetry.Counter
	bytesSent    *telemetry.Counter
	bytesRecv    *telemetry.Counter
	dispatchWait *telemetry.Histogram
}

// Instrument registers the master's metric series on reg and begins
// updating them. Call once, before heavy traffic; a nil registry leaves
// the master uninstrumented at zero cost.
// noMasterTel is the disabled instrument set: every field nil, every
// call a nil-receiver no-op.
var noMasterTel masterTelemetry

// telemetry returns the installed instruments, or the free zero set.
func (m *Master) telemetry() *masterTelemetry {
	if t := m.tel.Load(); t != nil {
		return t
	}
	return &noMasterTel
}

func (m *Master) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.tel.Store(&masterTelemetry{
		dispatches: reg.Counter("lobster_wq_dispatches_total",
			"Tasks dispatched to workers, including re-dispatches."),
		requeues: reg.Counter("lobster_wq_requeues_total",
			"Tasks returned to the queue after a worker was lost."),
		done: reg.Counter("lobster_wq_tasks_done_total",
			"Task results collected (success and failure)."),
		failed: reg.Counter("lobster_wq_tasks_failed_total",
			"Task results that reported failure."),
		workersSeen: reg.Counter("lobster_wq_workers_seen_total",
			"Worker hellos accepted."),
		workersLost: reg.Counter("lobster_wq_workers_lost_total",
			"Worker connections dropped."),
		bytesSent: reg.Counter("lobster_wq_bytes_sent_total",
			"Task input payload bytes shipped to workers (after cache stripping)."),
		bytesRecv: reg.Counter("lobster_wq_bytes_received_total",
			"Task output payload bytes returned by workers."),
		dispatchWait: reg.Histogram("lobster_wq_dispatch_latency_seconds",
			"Submit-to-dispatch queue latency.", nil),
	})
	reg.GaugeFunc("lobster_wq_tasks_waiting",
		"Tasks submitted and awaiting dispatch (queue depth).",
		func() float64 { return float64(m.Stats().TasksWaiting) })
	reg.GaugeFunc("lobster_wq_tasks_running",
		"Tasks dispatched and awaiting results (in flight).",
		func() float64 { return float64(m.Stats().TasksRunning) })
	reg.GaugeFunc("lobster_wq_workers_connected",
		"Workers (or foremen) currently connected.",
		func() float64 { return float64(m.Stats().WorkersConnected) })
	reg.GaugeFunc("lobster_wq_cores_connected",
		"Cores advertised by connected workers.",
		func() float64 { return float64(m.Stats().CoresConnected) })
}

type assignment struct {
	task *Task
	wc   *workerConn
}

// taskTrace is the master-side tracing state of one in-flight task: the
// per-task root span (or hop span when the task arrived with an
// upstream context), the span of the current dispatch attempt, and when
// the task last became ready (submit or requeue), which bounds the
// "submit" queue-wait span stamped at dispatch. Access is ordered by
// the master mutex; spans are ended outside it.
type taskTrace struct {
	root     *trace.Span
	rootCtx  trace.Context
	dispatch *trace.Span
	readyAt  float64
}

// Trace attaches a tracer: every task gets a root span spanning
// submit→result, a "submit" span per queue wait, and a "dispatch" span
// per dispatch attempt whose context travels to the worker in the task's
// Trace field. Tasks submitted with a valid upstream context (a foreman
// relaying) chain under it instead of starting a new trace. Call before
// traffic; a nil tracer leaves the master untraced at zero cost.
func (m *Master) Trace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	m.mu.Lock()
	m.tracer = tr
	if m.traces == nil {
		m.traces = make(map[int64]*taskTrace)
	}
	m.mu.Unlock()
}

type workerConn struct {
	name  string
	cores int
	inUse int
	dead  bool
	conn  *conn
	sent  *sentSet
}

// NewMaster starts a master listening on addr (e.g. "127.0.0.1:0").
func NewMaster(addr string) (*Master, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wq: master listen: %w", err)
	}
	m := &Master{
		lis:     lis,
		running: make(map[int64]*assignment),
		submitT: make(map[int64]time.Time),
		dispT:   make(map[int64]time.Time),
		retries: make(map[int64]int),
		workers: make(map[*workerConn]bool),
	}
	m.cond = sync.NewCond(&m.mu)
	m.resCond = sync.NewCond(&m.resMu)
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the master's listen address.
func (m *Master) Addr() string { return m.lis.Addr().String() }

// Submit queues a task and returns its assigned ID.
func (m *Master) Submit(t *Task) (int64, error) {
	if t.Func == "" {
		return 0, errors.New("wq: task needs a Func")
	}
	if t.MaxRetries <= 0 {
		t.MaxRetries = 5
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, errors.New("wq: master is closed")
	}
	m.nextID++
	t.ID = m.nextID
	if m.tracer != nil {
		var span *trace.Span
		if ctx, ok := trace.Parse(t.Trace); ok {
			span = m.tracer.Start(ctx, "master", "task") // downstream hop (foreman)
		} else {
			span = m.tracer.Root("master", "task", t.Tag)
		}
		span.AttrInt("task_id", t.ID)
		if t.Tag != "" {
			span.Attr("tag", t.Tag)
		}
		t.Trace = span.Context().Encode()
		m.traces[t.ID] = &taskTrace{
			root: span, rootCtx: span.Context(), readyAt: m.tracer.Now(),
		}
	}
	m.ready = append(m.ready, t)
	m.submitT[t.ID] = time.Now()
	m.cond.Broadcast()
	return t.ID, nil
}

// Stats returns a snapshot of master counters.
func (m *Master) Stats() MasterStats {
	m.mu.Lock()
	s := MasterStats{
		WorkersSeen:     m.statsSeen,
		WorkersLost:     m.statsLost,
		TasksWaiting:    len(m.ready),
		TasksRunning:    len(m.running),
		TasksDispatched: m.statsDispatched,
		TasksDone:       m.statsDone,
		TasksFailed:     m.statsFailed,
		Requeues:        m.statsRequeues,
		BytesSent:       m.statsBytesOut,
		BytesReceived:   m.statsBytesIn,
	}
	for wc := range m.workers {
		if !wc.dead {
			s.WorkersConnected++
			s.CoresConnected += wc.cores
		}
	}
	m.mu.Unlock()
	// resMu is taken after m.mu is released: WaitResult holds resMu while
	// acquiring m.mu, so nesting them here would invert the lock order.
	m.resMu.Lock()
	s.ResultsPending = len(m.results)
	m.resMu.Unlock()
	return s
}

// WaitResult blocks until a result is available or the timeout elapses
// (timeout <= 0 waits forever). The second return is false on timeout or
// master close with no pending results.
func (m *Master) WaitResult(timeout time.Duration) (*Result, bool) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// Wake the condition periodically so timeouts are honoured.
		timer := time.AfterFunc(timeout, func() {
			m.resMu.Lock()
			m.resCond.Broadcast()
			m.resMu.Unlock()
		})
		defer timer.Stop()
	}
	m.resMu.Lock()
	defer m.resMu.Unlock()
	for len(m.results) == 0 {
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return nil, false
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, false
		}
		m.resCond.Wait()
	}
	r := m.results[0]
	m.results = m.results[1:]
	return r, true
}

// pushResult records a completed task outcome.
func (m *Master) pushResult(r *Result) {
	m.resMu.Lock()
	m.results = append(m.results, r)
	m.resCond.Broadcast()
	m.resMu.Unlock()
}

// Close shuts the master down. Queued and running tasks are abandoned.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for wc := range m.workers {
		wc.dead = true
		wc.conn.close()
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.resMu.Lock()
	m.resCond.Broadcast()
	m.resMu.Unlock()
	err := m.lis.Close()
	m.wg.Wait()
	return err
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		raw, err := m.lis.Accept()
		if err != nil {
			return
		}
		raw = m.fault.Load().Conn("wq_master", raw)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serveWorker(newConn(raw))
		}()
	}
}

// serveWorker owns one worker connection: reads the hello, then runs the
// dispatch loop and result reader until the connection dies.
func (m *Master) serveWorker(c *conn) {
	defer c.close()
	hello, err := c.recv()
	if err != nil || hello.Type != "hello" || hello.Cores < 1 {
		return
	}
	wc := &workerConn{name: hello.Name, cores: hello.Cores, conn: c, sent: newSentSet()}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.workers[wc] = true
	m.statsSeen++
	m.mu.Unlock()
	m.telemetry().workersSeen.Inc()

	done := make(chan struct{})
	go func() {
		m.dispatchLoop(wc)
		close(done)
	}()
	m.readLoop(wc)
	// Connection is gone: unblock the dispatcher and requeue.
	m.mu.Lock()
	wc.dead = true
	m.statsLost++
	delete(m.workers, wc)
	var lost []*Task
	for id, a := range m.running {
		if a.wc == wc {
			lost = append(lost, a.task)
			delete(m.running, id)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.telemetry().workersLost.Inc()
	c.close()
	<-done
	for _, t := range lost {
		m.requeue(t, wc.name)
	}
}

// requeue returns a lost task to the queue, or fails it permanently when
// its retry budget is exhausted.
func (m *Master) requeue(t *Task, worker string) {
	m.mu.Lock()
	m.retries[t.ID]++
	n := m.retries[t.ID]
	tt := m.traces[t.ID]
	var lostDispatch *trace.Span
	if tt != nil {
		lostDispatch, tt.dispatch = tt.dispatch, nil
		tt.readyAt = m.tracer.Now() // requeue restarts the queue wait
	}
	if n <= t.MaxRetries && !m.closed {
		m.statsRequeues++
		m.ready = append(m.ready, t)
		m.cond.Broadcast()
		m.mu.Unlock()
		if lostDispatch != nil {
			lostDispatch.Attr("lost", worker)
			lostDispatch.End()
		}
		m.telemetry().requeues.Inc()
		return
	}
	m.statsDone++
	m.statsFailed++
	sub := m.submitT[t.ID]
	delete(m.traces, t.ID)
	m.mu.Unlock()
	if lostDispatch != nil {
		lostDispatch.Attr("lost", worker)
		lostDispatch.End()
	}
	if tt != nil {
		tt.root.AttrInt("exit_code", -1)
		tt.root.AttrInt("requeues", int64(n))
		tt.root.End()
	}
	m.telemetry().done.Inc()
	m.telemetry().failed.Inc()
	m.pushResult(&Result{
		TaskID:   t.ID,
		Tag:      t.Tag,
		Worker:   worker,
		ExitCode: -1,
		Error:    fmt.Sprintf("worker lost and %d retries exhausted", t.MaxRetries),
		Requeues: n,
		Stats:    TaskStats{Times: TaskTimes{Submitted: sub, Returned: time.Now()}},
	})
}

// dispatchLoop sends tasks to wc while it has free slots.
func (m *Master) dispatchLoop(wc *workerConn) {
	for {
		m.mu.Lock()
		for !m.closed && !wc.dead && (len(m.ready) == 0 || wc.inUse >= wc.cores) {
			m.cond.Wait()
		}
		if m.closed || wc.dead {
			m.mu.Unlock()
			return
		}
		t := m.ready[0]
		m.ready = m.ready[1:]
		wc.inUse++
		m.running[t.ID] = &assignment{task: t, wc: wc}
		now := time.Now()
		m.dispT[t.ID] = now
		m.statsDispatched++
		sub := m.submitT[t.ID]
		if tt := m.traces[t.ID]; tt != nil {
			// Queue wait since submit (or the last requeue) becomes a
			// closed "submit" span; the dispatch attempt opens a span
			// whose context travels with the task so the worker's spans
			// chain under this specific attempt.
			tnow := m.tracer.Now()
			qs := m.tracer.StartAt(tt.readyAt, tt.rootCtx, "master", "submit")
			qs.EndAt(tnow)
			d := m.tracer.StartAt(tnow, tt.rootCtx, "master", "dispatch")
			d.Attr("worker", wc.name)
			tt.dispatch = d
			t.Trace = d.Context().Encode()
		}
		m.mu.Unlock()
		m.telemetry().dispatches.Inc()
		if !sub.IsZero() {
			m.telemetry().dispatchWait.Observe(now.Sub(sub).Seconds())
		}

		msg := &message{Type: "task", Task: encodeInputs(t, wc.sent)}
		var sent int64
		for i := range msg.Task.Inputs {
			sent += int64(len(msg.Task.Inputs[i].Data))
		}
		if err := wc.conn.send(msg); err != nil {
			// The read loop will notice the dead connection and requeue
			// everything including this task; just stop dispatching.
			m.mu.Lock()
			wc.dead = true
			m.cond.Broadcast()
			m.mu.Unlock()
			return
		}
		m.mu.Lock()
		m.statsBytesOut += sent
		m.mu.Unlock()
		m.telemetry().bytesSent.Add(sent)
	}
}

// readLoop consumes results until the connection errors.
func (m *Master) readLoop(wc *workerConn) {
	for {
		msg, err := wc.conn.recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case "result":
			if msg.Result == nil {
				continue
			}
			r := msg.Result
			m.mu.Lock()
			if _, ok := m.running[r.TaskID]; !ok {
				// Unknown (already requeued elsewhere or duplicate): drop.
				m.mu.Unlock()
				continue
			}
			delete(m.running, r.TaskID)
			wc.inUse--
			m.statsDone++
			failed := r.Failed()
			if failed {
				m.statsFailed++
			}
			var recv int64
			for i := range r.Outputs {
				recv += int64(len(r.Outputs[i].Data))
			}
			m.statsBytesIn += recv
			r.Requeues = m.retries[r.TaskID]
			r.Stats.Times.Submitted = m.submitT[r.TaskID]
			r.Stats.Times.Dispatched = m.dispT[r.TaskID]
			delete(m.submitT, r.TaskID)
			delete(m.dispT, r.TaskID)
			delete(m.retries, r.TaskID)
			tt := m.traces[r.TaskID]
			delete(m.traces, r.TaskID)
			m.cond.Broadcast()
			m.mu.Unlock()
			if tt != nil {
				tt.dispatch.End()
				tt.root.AttrInt("exit_code", int64(r.ExitCode))
				tt.root.AttrInt("requeues", int64(r.Requeues))
				tt.root.End()
			}
			m.telemetry().done.Inc()
			if failed {
				m.telemetry().failed.Inc()
			}
			m.telemetry().bytesRecv.Add(recv)
			r.Stats.Times.Returned = time.Now()
			m.pushResult(r)
		case "ping":
			wc.conn.send(&message{Type: "ping"})
		}
	}
}

// Drain waits until n results have been collected or the timeout expires,
// returning the results gathered.
func (m *Master) Drain(n int, timeout time.Duration) []*Result {
	deadline := time.Now().Add(timeout)
	out := make([]*Result, 0, n)
	for len(out) < n {
		remaining := time.Until(deadline)
		if timeout > 0 && remaining <= 0 {
			break
		}
		if timeout <= 0 {
			remaining = 0
		}
		r, ok := m.WaitResult(remaining)
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}
