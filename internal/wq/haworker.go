package wq

import (
	"sync"
	"sync/atomic"
	"time"
)

// HAWorkerConfig configures a worker that follows the leader of a
// replicated control plane.
type HAWorkerConfig struct {
	// Addrs lists every member's worker-facing address; the worker walks
	// the list until a member admits it, preferring a redirect hint when
	// one arrives.
	Addrs []string
	Name  string
	Cores int
	Dir   string
	Reg   Registry
	Opts  WorkerOptions
	// Redial bounds the pause between connection attempts (default 25ms).
	Redial time.Duration
}

// HAWorker is the failover-aware worker harness: it dials the control
// plane, works for whichever member admits it, and when the connection
// dies (leader kill) or the member points it elsewhere (redirect), it
// redials until it finds the new leader. The underlying Worker is
// recreated per connection; the scratch dir (and thus sandboxes) carries
// over, matching a real worker process surviving its master.
type HAWorker struct {
	cfg    HAWorkerConfig
	closed chan struct{}
	wg     sync.WaitGroup

	mu  sync.Mutex
	cur *Worker

	connects atomic.Int64
	tasksRun atomic.Int64
}

// StartHAWorker launches the reconnect loop.
func StartHAWorker(cfg HAWorkerConfig) *HAWorker {
	if cfg.Redial <= 0 {
		cfg.Redial = 25 * time.Millisecond
	}
	w := &HAWorker{cfg: cfg, closed: make(chan struct{})}
	w.wg.Add(1)
	go w.loop()
	return w
}

// Connects returns the number of successful master connections made.
func (w *HAWorker) Connects() int64 { return w.connects.Load() }

// TasksRun returns tasks executed across all connections.
func (w *HAWorker) TasksRun() int64 { return w.tasksRun.Load() }

func (w *HAWorker) loop() {
	defer w.wg.Done()
	next := 0 // index into Addrs when no hint is available
	hint := ""
	for {
		select {
		case <-w.closed:
			return
		default:
		}
		addr := hint
		if addr == "" {
			addr = w.cfg.Addrs[next%len(w.cfg.Addrs)]
			next++
		}
		hint = ""
		worker, err := NewWorkerOpts(addr, w.cfg.Name, w.cfg.Cores, w.cfg.Dir, w.cfg.Reg, w.cfg.Opts)
		if err != nil {
			select {
			case <-w.closed:
				return
			case <-time.After(w.cfg.Redial):
			}
			continue
		}
		w.connects.Add(1)
		w.mu.Lock()
		w.cur = worker
		w.mu.Unlock()
		select {
		case <-worker.Done():
			// Connection died: a standby said go elsewhere, the leader was
			// killed, or the fault plane cut us. Collect the hint, account
			// the work, and redial.
			hint = worker.RedirectAddr()
			w.tasksRun.Add(worker.TasksRun())
			worker.Close()
			select {
			case <-w.closed:
				return
			case <-time.After(w.cfg.Redial):
			}
		case <-w.closed:
			w.tasksRun.Add(worker.TasksRun())
			worker.Close()
			return
		}
	}
}

// Close stops the loop and disconnects.
func (w *HAWorker) Close() {
	select {
	case <-w.closed:
		return
	default:
	}
	close(w.closed)
	w.mu.Lock()
	cur := w.cur
	w.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
	w.wg.Wait()
}
