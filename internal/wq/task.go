// Package wq implements a Work Queue distributed execution system in the
// style the paper uses: a master holds a queue of tasks, workers connect
// over TCP and pull work, each worker drives several cores from one process
// with one shared cache, and foremen can be interposed between master and
// workers to form a hierarchy of arbitrary width and depth.
//
// Tasks name an executor function from a Registry shared by master and
// workers (the Go analogue of shipping a command line), carry input files
// inline — cacheable inputs such as the task sandbox are transferred once
// per connection and shared thereafter — and declare the outputs to return.
//
// Non-dedicated behaviour is first-class: a worker may vanish at any moment
// (eviction); the master detects the lost connection and requeues the tasks
// the worker held.
package wq

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"lobster/internal/trace"
)

// FileSpec is one file moved with a task: an input into the sandbox or an
// output returned to the master.
type FileSpec struct {
	// Name is the file's path within the task sandbox.
	Name string `json:"name"`
	// Data is the content. For cacheable inputs it may be omitted on the
	// wire when the receiver is known to hold Hash already.
	Data []byte `json:"data,omitempty"`
	// Hash is the content hash, filled by the transport for cacheable files.
	Hash string `json:"hash,omitempty"`
	// Cacheable marks immutable inputs (software sandbox, configuration)
	// that workers keep across tasks, the paper's per-worker cache.
	Cacheable bool `json:"cacheable,omitempty"`
}

// hashBytes returns the content hash used for the transfer cache.
func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Task is one unit of work dispatched to a single worker slot.
type Task struct {
	// ID is assigned by the master at submission.
	ID int64 `json:"id"`
	// Func names the executor in the Registry.
	Func string `json:"func"`
	// Args are free-form parameters for the executor.
	Args map[string]string `json:"args,omitempty"`
	// Inputs are staged into the sandbox before execution.
	Inputs []FileSpec `json:"inputs,omitempty"`
	// Outputs are the sandbox paths collected after execution.
	Outputs []string `json:"outputs,omitempty"`
	// Tag is an opaque caller label (Lobster uses it for workflow/task kind).
	Tag string `json:"tag,omitempty"`
	// MaxRetries bounds automatic requeue after worker loss (default 5).
	MaxRetries int `json:"max_retries,omitempty"`
	// Trace carries the encoded trace context across wire hops (see
	// internal/trace). The master stamps it at dispatch; foremen re-stamp
	// it with their own span so every hop chains into one trace. A
	// malformed or absent value degrades to a fresh root downstream.
	Trace string `json:"trace,omitempty"`
}

// TaskTimes records the lifecycle timestamps the monitoring system consumes.
type TaskTimes struct {
	Submitted  time.Time `json:"submitted"`
	Dispatched time.Time `json:"dispatched"`
	Started    time.Time `json:"started"`
	Finished   time.Time `json:"finished"`
	Returned   time.Time `json:"returned"`
}

// TaskStats is measured on the worker and augmented by the master.
type TaskStats struct {
	Times TaskTimes `json:"times"`
	// StageIn is sandbox preparation time on the worker.
	StageIn time.Duration `json:"stage_in"`
	// Exec is executor wall time.
	Exec time.Duration `json:"exec"`
	// StageOut is output collection time on the worker.
	StageOut time.Duration `json:"stage_out"`
	// CacheHits / CacheMisses count cacheable-input resolutions.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// BytesIn / BytesOut are payload volumes for this task.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// Result is the completed (or failed) outcome of a task.
type Result struct {
	TaskID   int64      `json:"task_id"`
	Tag      string     `json:"tag,omitempty"`
	Worker   string     `json:"worker"`
	ExitCode int        `json:"exit_code"`
	Error    string     `json:"error,omitempty"`
	Outputs  []FileSpec `json:"outputs,omitempty"`
	Stats    TaskStats  `json:"stats"`
	// Requeues counts how many times the task was re-dispatched after
	// worker loss before this result.
	Requeues int `json:"requeues"`
	// Permanent marks a failure the queue will never retry: the task
	// exhausted its requeue budget. A poison task — one that kills or
	// outlives every worker it lands on — surfaces here instead of
	// cycling through the fleet forever.
	Permanent bool `json:"permanent,omitempty"`
}

// Failed reports whether the task did not complete successfully.
func (r *Result) Failed() bool { return r.ExitCode != 0 || r.Error != "" }

// PermanentlyFailed reports whether the task failed with its retry budget
// exhausted — the typed signal that resubmitting is pointless.
func (r *Result) PermanentlyFailed() bool { return r.Permanent && r.Failed() }

// ExecContext is handed to an executor on the worker.
type ExecContext struct {
	// Task is the task being executed (do not mutate).
	Task *Task
	// Sandbox is the task's scratch directory; inputs are staged here and
	// outputs are collected from here.
	Sandbox string
	// WorkerName identifies the executing worker.
	WorkerName string
	// Trace is the execution's trace context (the worker's execute span
	// when tracing is on, the incoming wire context when only upstream
	// traces, zero otherwise). Executors propagate it into chirp, squid,
	// and xrootd operations.
	Trace trace.Context
	// Tracer records executor-internal spans; nil when tracing is off.
	Tracer *trace.Tracer
}

// EnsureSandbox creates the sandbox directory on demand. Workers create
// sandboxes lazily — a task with no declared inputs or outputs never
// touches the filesystem on the hot path — so an executor that writes
// scratch files without declaring them must call this first.
func (c *ExecContext) EnsureSandbox() error {
	return os.MkdirAll(c.Sandbox, 0o755)
}

// Executor is the function a task runs on a worker. A non-nil error marks
// the task failed with exit code 1 unless the error is an *ExitError.
type Executor func(ctx *ExecContext) error

// ExitError lets executors fail with a specific exit code, which Lobster's
// wrapper uses to encode which segment failed.
type ExitError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *ExitError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("exit code %d", e.Code)
	}
	return fmt.Sprintf("exit code %d: %s", e.Code, e.Msg)
}

// Registry maps executor names to functions. Master and workers must agree
// on its contents (they normally share it).
type Registry map[string]Executor
