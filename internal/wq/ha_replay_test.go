package wq

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"lobster/internal/monitor"
	"lobster/internal/telemetry"
)

// TestHAStandbyLogTornPrefixReplay is the failover crash-recovery
// property: a standby's event log is the replicated applied stream, so
// replaying ANY byte prefix of it — the shape a torn replication tail or
// a crash mid-append leaves — must succeed and rebuild a clean prefix of
// the leader's task DB: the records whose lines fully fit, in commit
// order, never a half-parsed or reordered record, with the leadership
// history replaying monotonically beside them.
func TestHAStandbyLogTornPrefixReplay(t *testing.T) {
	repAddrs := haReserve(t, 3)
	peers := map[uint64]string{1: repAddrs[0], 2: repAddrs[1], 3: repAddrs[2]}
	masters := make([]*HAMaster, 3)
	logs := make([]*bytes.Buffer, 3)
	evlogs := make([]*telemetry.EventLog, 3)
	wqAddrs := make(map[uint64]string)
	for i := 0; i < 3; i++ {
		logs[i] = &bytes.Buffer{}
		evlogs[i] = telemetry.NewEventLog(logs[i], nil)
		h, err := StartHAMaster(HAMasterConfig{
			ID: uint64(i + 1), Peers: peers, Addr: "127.0.0.1:0",
			WQAddrs: wqAddrs, Seed: 7,
			TickEvery: 2 * time.Millisecond, ElectionTicks: 10,
			EventLog: evlogs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		masters[i] = h
	}
	addrs := make([]string, 3)
	for i, h := range masters {
		addrs[i] = h.Addr()
		wqAddrs[uint64(i+1)] = h.Addr()
	}

	w := StartHAWorker(HAWorkerConfig{
		Addrs: addrs, Name: "w0", Cores: 2, Dir: t.TempDir(), Reg: testRegistry(),
	})

	ldr := waitHALeader(t, masters)
	const n = 12
	for i := 0; i < n; i++ {
		haSubmit(t, masters, &Task{
			Func: "echo", Tag: fmt.Sprintf("job-%d", i),
			Args:    map[string]string{"text": fmt.Sprintf("payload-%d", i)},
			Outputs: []string{"out.txt"},
		})
	}
	var standby *HAMaster
	for _, h := range masters {
		if !h.WaitDone(n, 15*time.Second) {
			t.Fatalf("member %d applied %d/%d outcomes", h.ID(), h.DoneCount(), n)
		}
		if h != ldr {
			standby = h
		}
	}
	leaderDB := ldr.Monitor().Records()
	standbyIdx := int(standby.ID() - 1)

	// Quiesce before reading the buffers: no appends race the sweep.
	w.Close()
	for _, h := range masters {
		h.Close()
	}
	for _, l := range evlogs {
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	full := logs[standbyIdx].Bytes()
	if len(full) == 0 {
		t.Fatal("standby event log is empty")
	}

	// The full log first: the standby's stream reconstructs the leader's
	// task DB exactly, and carries the election history.
	{
		m := monitor.New()
		got, err := m.ReplayLog(bytes.NewReader(full))
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("full standby log replayed %d records, want %d", got, n)
		}
		if !reflect.DeepEqual(m.Records(), leaderDB) {
			t.Fatal("full standby log does not rebuild the leader's task DB")
		}
		if len(m.Elections()) == 0 {
			t.Fatal("standby log carries no election events")
		}
	}

	// Every byte prefix: never an error, monotone in the cut point, and
	// always a clean prefix of the leader's DB.
	prevTasks, prevElections := 0, 0
	for cut := 0; cut <= len(full); cut++ {
		m := monitor.New()
		nt, err := m.ReplayLog(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("prefix of %d bytes: %v", cut, err)
		}
		ne := len(m.Elections())
		if nt < prevTasks || ne < prevElections {
			t.Fatalf("prefix of %d bytes lost ground: tasks %d<%d or elections %d<%d",
				cut, nt, prevTasks, ne, prevElections)
		}
		prevTasks, prevElections = nt, ne
		if nt > 0 && !reflect.DeepEqual(m.Records(), leaderDB[:nt]) {
			t.Fatalf("prefix of %d bytes: replayed records are not a prefix of the leader's DB", cut)
		}
	}
	if prevTasks != n {
		t.Fatalf("final prefix replayed %d records, want %d", prevTasks, n)
	}
}
