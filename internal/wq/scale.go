package wq

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// The scale simulation drives the master's real dispatch plane — the
// sharded task table, the power-of-two-choices queues, stamping,
// completion and result collection — with virtual workers that skip only
// the wire: no sockets, no JSON, no executor. 100k workers then cost a
// workerConn struct each instead of a file descriptor and two goroutines,
// so the harness can push the match loop far past what one host can hold
// as real connections, and what it measures is the master's own ceiling.

// ScaleConfig sizes one dispatch-plane scale run.
type ScaleConfig struct {
	// Workers is the number of virtual workers (default 1000).
	Workers int
	// Cores is the core count each virtual worker advertises (default 8).
	Cores int
	// Tasks is the total number of tasks pushed through (default 100k).
	Tasks int
	// Drivers is the number of goroutines driving virtual workers
	// (default GOMAXPROCS). Each driver owns an equal slice of the fleet.
	Drivers int
	// SingleMessage disables batch semantics: every dispatch round moves
	// one task, the v0 protocol's behaviour, for before/after comparison.
	SingleMessage bool
}

// ScaleReport is the outcome of one scale run.
type ScaleReport struct {
	Workers     int           `json:"workers"`
	Cores       int           `json:"cores"`
	Tasks       int           `json:"tasks"`
	Drivers     int           `json:"drivers"`
	BatchWidth  int           `json:"batch_width"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	TasksPerSec float64       `json:"tasks_per_sec"`
	// TaskBytes is the resident heap footprint per queued task record,
	// measured with the full backlog submitted and nothing dispatched.
	TaskBytes float64 `json:"task_bytes"`
}

func (r ScaleReport) String() string {
	return fmt.Sprintf("%d workers × %d cores, %d tasks, width %d: %.0f tasks/s, %.0f B/task resident",
		r.Workers, r.Cores, r.Tasks, r.BatchWidth, r.TasksPerSec, r.TaskBytes)
}

// newLocalMaster builds a master with no listener: the dispatch plane is
// driven directly (scale simulation), never over the network.
func newLocalMaster() *Master {
	m := &Master{
		d:       newDispatchTable(),
		res:     newResultTable(),
		workers: make(map[*workerConn]bool),
	}
	return m
}

// newSimWorker builds a virtual worker: real dispatch bookkeeping, no
// connection, no encode scratch (nothing is ever serialised).
func newSimWorker(name string, cores, width int) *workerConn {
	wc := &workerConn{
		name:  name,
		cores: cores,
		batch: width > 1,
		home:  homeQueue(name),
		sent:  newSentSet(),
	}
	wc.cond = sync.NewCond(&wc.mu)
	wc.popBuf = make([]*taskMeta, width)
	return wc
}

// RunScaleSim pushes cfg.Tasks no-op tasks through the dispatch plane and
// measures sustained throughput and resident bytes per task record.
func RunScaleSim(cfg ScaleConfig) ScaleReport {
	if cfg.Workers <= 0 {
		cfg.Workers = 1000
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 100_000
	}
	if cfg.Drivers <= 0 {
		cfg.Drivers = runtime.GOMAXPROCS(0)
	}
	width := batchMax
	if cfg.SingleMessage {
		width = 1
	}
	if width > cfg.Cores {
		width = cfg.Cores
	}

	m := newLocalMaster()
	fleet := make([]*workerConn, cfg.Workers)
	for i := range fleet {
		fleet[i] = newSimWorker(fmt.Sprintf("sim-%d", i), cfg.Cores, width)
	}

	// Submit the entire backlog first: the heap growth across the
	// submissions, settled by a GC, is the per-task resident footprint
	// (task + meta + table entry + queue slot).
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < cfg.Tasks; i++ {
		if _, err := m.Submit(&Task{Func: "noop", Tag: "scale"}); err != nil {
			panic(err) // closed local master: cannot happen
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	taskBytes := float64(after.HeapAlloc-before.HeapAlloc) / float64(cfg.Tasks)

	// Drain and drive. Completed Result objects are recycled through a
	// pool: the drainer sweeps them out of the results queue and returns
	// them, so the steady-state match loop allocates nothing per task.
	resPool := sync.Pool{New: func() any { return new(Result) }}
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		swept := 0
		buf := make([]*Result, 4*batchMax)
		for swept < cfg.Tasks {
			n := m.takeResults(buf)
			if n == 0 {
				if r, ok := m.WaitResult(time.Second); ok {
					resPool.Put(r)
					swept++
				}
				continue
			}
			for i := 0; i < n; i++ {
				resPool.Put(buf[i])
				buf[i] = nil
			}
			swept += n
		}
	}()

	start := time.Now()
	var driveWG sync.WaitGroup
	for p := 0; p < cfg.Drivers; p++ {
		driveWG.Add(1)
		go func(p int) {
			defer driveWG.Done()
			// Each driver round-robins its own slice of the fleet so every
			// virtual worker identity (and home queue) sees traffic.
			mine := fleet[p*len(fleet)/cfg.Drivers : (p+1)*len(fleet)/cfg.Drivers]
			if len(mine) == 0 {
				return
			}
			out := make([]*Result, 0, width)
			for i := 0; m.d.pending.Load() > 0; i++ {
				wc := mine[i%len(mine)]
				n := m.d.popBatch(wc.home, wc.popBuf[:width])
				if n == 0 {
					continue
				}
				batch := wc.popBuf[:n]
				wc.mu.Lock()
				wc.inUse += n
				wc.mu.Unlock()
				m.stampBatch(wc, batch)
				// "Execute" instantly: settle each task through the real
				// completion path and publish the batch like a results
				// message would.
				out = out[:0]
				for _, mt := range batch {
					r := resPool.Get().(*Result)
					*r = Result{TaskID: mt.task.ID, Tag: mt.task.Tag, Worker: wc.name}
					if m.completeTask(wc, r) {
						out = append(out, r)
					} else {
						resPool.Put(r)
					}
				}
				m.pushResults(out)
			}
		}(p)
	}
	driveWG.Wait()
	drainWG.Wait()
	elapsed := time.Since(start)

	return ScaleReport{
		Workers:     cfg.Workers,
		Cores:       cfg.Cores,
		Tasks:       cfg.Tasks,
		Drivers:     cfg.Drivers,
		BatchWidth:  width,
		Elapsed:     elapsed,
		TasksPerSec: float64(cfg.Tasks) / elapsed.Seconds(),
		TaskBytes:   taskBytes,
	}
}

// RunScaleLoopback drives real TCP workers over the loopback interface:
// full wire framing, result batching, executor and sandbox lifecycle.
// Worker counts here are bounded by file descriptors and goroutines, so
// this plane proves the protocol end to end while RunScaleSim proves the
// table's ceiling. single disables batch framing for before/after runs.
func RunScaleLoopback(workers, cores, tasks int, single bool) (ScaleReport, error) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		return ScaleReport{}, err
	}
	defer m.Close()
	reg := Registry{"noop": func(*ExecContext) error { return nil }}
	root, err := os.MkdirTemp("", "lobster-scale-*")
	if err != nil {
		return ScaleReport{}, err
	}
	defer os.RemoveAll(root)
	ws := make([]*Worker, 0, workers)
	defer func() {
		for _, w := range ws {
			w.Close()
		}
	}()
	for i := 0; i < workers; i++ {
		w, err := NewWorkerOpts(m.Addr(), fmt.Sprintf("lo-%d", i), cores,
			filepath.Join(root, fmt.Sprintf("w%d", i)), reg,
			WorkerOptions{DisableBatch: single})
		if err != nil {
			return ScaleReport{}, err
		}
		ws = append(ws, w)
	}

	start := time.Now()
	for i := 0; i < tasks; i++ {
		if _, err := m.Submit(&Task{Func: "noop"}); err != nil {
			return ScaleReport{}, err
		}
	}
	got := 0
	for got < tasks {
		rs := m.Drain(tasks-got, time.Minute)
		if len(rs) == 0 {
			return ScaleReport{}, fmt.Errorf("wq: loopback scale run stalled at %d/%d results", got, tasks)
		}
		got += len(rs)
	}
	elapsed := time.Since(start)

	width := batchMax
	if single {
		width = 1
	}
	if width > cores {
		width = cores
	}
	return ScaleReport{
		Workers:     workers,
		Cores:       cores,
		Tasks:       tasks,
		BatchWidth:  width,
		Elapsed:     elapsed,
		TasksPerSec: float64(tasks) / elapsed.Seconds(),
	}, nil
}
