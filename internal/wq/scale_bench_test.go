package wq

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkMatchLoop measures the master's bare match cycle — submit,
// pop, stamp, complete, collect — with no wire and no executor, the
// allocation budget of the dispatch plane itself. One op moves batchMax
// tasks; task and result objects are reused, so steady-state allocations
// come only from the plane's own bookkeeping.
func BenchmarkMatchLoop(b *testing.B) {
	m := newLocalMaster()
	wc := newSimWorker("bench", batchMax, batchMax)
	var tasks [batchMax]Task
	var results [batchMax]*Result
	for i := range results {
		results[i] = new(Result)
	}
	sweep := make([]*Result, batchMax)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range tasks {
			t := &tasks[j]
			*t = Task{Func: "noop"}
			if _, err := m.Submit(t); err != nil {
				b.Fatal(err)
			}
		}
		popped := 0
		for popped < batchMax {
			n := m.d.popBatch(wc.home, wc.popBuf[popped:batchMax])
			if n == 0 {
				b.Fatal("queue ran dry mid-batch")
			}
			batch := wc.popBuf[popped : popped+n]
			wc.mu.Lock()
			wc.inUse += n
			wc.mu.Unlock()
			m.stampBatch(wc, batch)
			for k, mt := range batch {
				r := results[popped+k]
				*r = Result{TaskID: mt.task.ID}
				if !m.completeTask(wc, r) {
					b.Fatal("completion rejected")
				}
			}
			popped += n
		}
		m.pushResults(results[:batchMax])
		if got := m.takeResults(sweep); got != batchMax {
			b.Fatalf("swept %d results, want %d", got, batchMax)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batchMax)/b.Elapsed().Seconds(), "tasks/s")
}

// benchLoopback drives no-op tasks through a real master and real TCP
// loopback workers, reporting sustained end-to-end dispatch throughput.
func benchLoopback(b *testing.B, workers, cores int, opts WorkerOptions) {
	b.Helper()
	reg := Registry{"noop": func(*ExecContext) error { return nil }}
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	dir := b.TempDir()
	ws := make([]*Worker, workers)
	for i := range ws {
		w, err := NewWorkerOpts(m.Addr(), fmt.Sprintf("w%d", i), cores,
			fmt.Sprintf("%s/w%d", dir, i), reg, opts)
		if err != nil {
			b.Fatal(err)
		}
		ws[i] = w
	}
	defer func() {
		for _, w := range ws {
			w.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Submit(&Task{Func: "noop"}); err != nil {
			b.Fatal(err)
		}
	}
	collected := 0
	for collected < b.N {
		rs := m.Drain(b.N-collected, 30*time.Second)
		if len(rs) == 0 {
			b.Fatalf("drain stalled at %d/%d results", collected, b.N)
		}
		collected += len(rs)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkLoopbackDispatchSingle is the v0 wire path: one message per
// task, one per result (the pre-batching protocol, via DisableBatch).
func BenchmarkLoopbackDispatchSingle(b *testing.B) {
	benchLoopback(b, 64, 8, WorkerOptions{DisableBatch: true})
}

// BenchmarkLoopbackDispatchBatched is the same fleet on batch framing.
func BenchmarkLoopbackDispatchBatched(b *testing.B) {
	benchLoopback(b, 64, 8, WorkerOptions{})
}

// BenchmarkScaleSim pushes 100k tasks through 10k virtual workers per op
// — the guard-sized version of the 100k-worker / 1M-task harness run
// (`lobster-bench -dispatch`), measuring the match loop at fleet scale.
func BenchmarkScaleSim(b *testing.B) {
	benchScaleSim(b, false)
}

// BenchmarkScaleSimSingle is the same fleet restricted to one task per
// dispatch round, isolating what batch width alone buys.
func BenchmarkScaleSimSingle(b *testing.B) {
	benchScaleSim(b, true)
}

func benchScaleSim(b *testing.B, single bool) {
	b.Helper()
	var last ScaleReport
	for i := 0; i < b.N; i++ {
		last = RunScaleSim(ScaleConfig{
			Workers:       10_000,
			Cores:         8,
			Tasks:         100_000,
			SingleMessage: single,
		})
	}
	b.ReportMetric(last.TasksPerSec, "tasks/s")
	b.ReportMetric(last.TaskBytes, "task-B")
}
