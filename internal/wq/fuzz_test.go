package wq

import (
	"io"
	"net"
	"testing"
	"time"
)

// FuzzBatchDispatch feeds an arbitrary byte stream to the master's
// per-connection protocol handler — hello negotiation, v0 and batch
// framing, results for tasks the connection does and does not own. The
// handler must never panic and must keep the dispatch-plane accounting
// consistent: no negative in-flight or queue counts, no matter how the
// peer lies.
func FuzzBatchDispatch(f *testing.F) {
	hello := `{"type":"hello","name":"w","cores":2}` + "\n"
	helloBatch := `{"type":"hello","name":"w","cores":2,"proto":1}` + "\n"
	f.Add([]byte(hello + `{"type":"result","result":{"task_id":1,"worker":"w"}}` + "\n"))
	f.Add([]byte(helloBatch + `{"type":"results","results":[{"task_id":1},{"task_id":2}]}` + "\n"))
	f.Add([]byte(helloBatch + `{"type":"results","results":[{"task_id":1},{"task_id":1}]}` + "\n"))
	f.Add([]byte(hello + `{"type":"result","result":{"task_id":-9223372036854775808}}` + "\n"))
	f.Add([]byte(helloBatch + `{"type":"results","results":[null,null]}` + "\n"))
	f.Add([]byte(helloBatch + `{"type":"ping"}` + "\n" + `{"type":"tasks"}` + "\n"))
	f.Add([]byte(`{"type":"hello","cores":-1}` + "\n"))
	f.Add([]byte(`{"type":"bogus"}` + "\n"))
	f.Add([]byte("not json at all"))
	f.Add([]byte(hello + `{"type":"result","result":{"task_id":3,"exit_code":170,"error":"x","outputs":[{"name":"o","data":"aGk="}]}}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := newLocalMaster()
		server, client := net.Pipe()
		done := make(chan struct{})
		go func() {
			m.serveWorker(newConn(server))
			close(done)
		}()
		// Real queued work, so a valid fuzzed hello draws genuine
		// dispatch traffic whose results the stream may then forge.
		for i := 0; i < 4; i++ {
			if _, err := m.Submit(&Task{Func: "noop"}); err != nil {
				t.Fatal(err)
			}
		}
		// Drain the master's side of the synchronous pipe so its
		// dispatcher can never block on us.
		go io.Copy(io.Discard, client)
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		client.Write(data) // error just means the handler hung up first
		client.Close()
		<-done
		if n := m.running.Load(); n < 0 {
			t.Fatalf("in-flight count went negative: %d", n)
		}
		if n := m.d.pending.Load(); n < 0 {
			t.Fatalf("queue depth went negative: %d", n)
		}
		if s := m.Stats(); s.TasksDone > s.TasksDispatched {
			t.Fatalf("more results than dispatches: %+v", s)
		}
	})
}
