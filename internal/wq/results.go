package wq

import (
	"sync"
	"sync/atomic"
)

// The result queue mirrors the dispatch plane's striping: every worker
// connection's readLoop pushes completed-task results, and a single
// mutex there serialises the whole return path of a 10k-core fleet the
// same way a single dispatch lock would serialise the outbound one.
// Results stripe over shardCount lock-free-length rings; pushes pick a
// stripe by power-of-two-choices, collectors sweep from a rotating
// start so no stripe is structurally favoured. Strict arrival order is
// not preserved across stripes — callers already cannot rely on it,
// since results race in from many connections concurrently.
//
// Waiters park on one idle gate that pushes only touch when sleepers
// exist, so the full-throughput path (results always pending, Drain
// sweeping) costs the pushing readLoop one stripe lock and two atomics.

// resultQueue is one stripe of the arrived-result queue.
type resultQueue struct {
	mu   sync.Mutex
	q    ring[*Result]
	size atomic.Int64
	_    [24]byte // keep neighbouring stripes off one cache line
}

// resultTable is the sharded result-plane state.
type resultTable struct {
	queues [shardCount]resultQueue

	pending  atomic.Int64 // total queued results across all stripes
	sleepers atomic.Int32 // WaitResult callers parked for arrivals
	idleMu   sync.Mutex
	idleCond *sync.Cond
	rng      atomic.Uint64 // splitmix64 state for power-of-two-choices
	rotor    atomic.Uint32 // sweep start rotation for collectors
}

func newResultTable() *resultTable {
	t := &resultTable{}
	t.idleCond = sync.NewCond(&t.idleMu)
	t.rng.Store(0x9e3779b97f4a7c15)
	return t
}

// push records one result on the shorter of two random stripes.
func (t *resultTable) push(r *Result) {
	x := splitmixNext(&t.rng)
	i := uint32(x) & (shardCount - 1)
	j := uint32(x>>32) & (shardCount - 1)
	q := &t.queues[i]
	if t.queues[j].size.Load() < q.size.Load() {
		q = &t.queues[j]
	}
	q.mu.Lock()
	q.q.push(r)
	q.mu.Unlock()
	q.size.Add(1)
	t.pending.Add(1)
	t.wakeSleepers()
}

// pushBatch records a batch under one stripe-lock acquisition: a
// results frame from one worker stays together, and the batch costs
// what a single push does.
func (t *resultTable) pushBatch(rs []*Result) {
	if len(rs) == 0 {
		return
	}
	x := splitmixNext(&t.rng)
	i := uint32(x) & (shardCount - 1)
	j := uint32(x>>32) & (shardCount - 1)
	q := &t.queues[i]
	if t.queues[j].size.Load() < q.size.Load() {
		q = &t.queues[j]
	}
	q.mu.Lock()
	for _, r := range rs {
		q.q.push(r)
	}
	q.mu.Unlock()
	q.size.Add(int64(len(rs)))
	t.pending.Add(int64(len(rs)))
	t.wakeSleepers()
}

// popN fills dst from the stripes, sweeping from a rotating start.
func (t *resultTable) popN(dst []*Result) int {
	if t.pending.Load() == 0 {
		return 0
	}
	start := t.rotor.Add(1)
	got := 0
	for k := uint32(0); k < shardCount && got < len(dst); k++ {
		q := &t.queues[(start+k)&(shardCount-1)]
		if q.size.Load() == 0 {
			continue
		}
		q.mu.Lock()
		n := q.q.popN(dst[got:])
		q.mu.Unlock()
		if n > 0 {
			q.size.Add(int64(-n))
			t.pending.Add(int64(-n))
			got += n
		}
	}
	return got
}

// pop takes one result if any stripe has one.
func (t *resultTable) pop() (*Result, bool) {
	var one [1]*Result
	if t.popN(one[:]) == 1 {
		return one[0], true
	}
	return nil, false
}

// wakeSleepers wakes parked waiters. The sleeper check here and the
// pending re-check in park are both sequentially-consistent atomics, so
// a waiter either sees the new result before parking or is woken.
func (t *resultTable) wakeSleepers() {
	if t.sleepers.Load() > 0 {
		t.idleMu.Lock()
		t.idleCond.Broadcast()
		t.idleMu.Unlock()
	}
}

// wakeAll unconditionally wakes every parked waiter (close, timeout).
func (t *resultTable) wakeAll() {
	t.idleMu.Lock()
	t.idleCond.Broadcast()
	t.idleMu.Unlock()
}

// park blocks until a result may be available or stop() reports the
// caller should give up. The caller re-checks its own conditions after
// park returns.
func (t *resultTable) park(stop func() bool) {
	t.sleepers.Add(1)
	t.idleMu.Lock()
	for t.pending.Load() == 0 && !stop() {
		t.idleCond.Wait()
	}
	t.idleMu.Unlock()
	t.sleepers.Add(-1)
}
