package wq

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/retry"
	"lobster/internal/telemetry"
	"lobster/internal/trace"
)

// Worker connects to a master (or foreman), advertises a number of cores,
// and executes the tasks it is sent. All slots share one content cache, the
// Work Queue behaviour the paper relies on: "a single worker can ... run
// multiple tasks simultaneously, sharing a single cache directory, and a
// single connection to the master."
type Worker struct {
	name  string
	cores int
	reg   Registry
	dir   string
	cache *contentCache
	conn  *conn

	fault      *faultinject.Injector
	stageRetry retry.Policy

	slots   chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	evicted atomic.Bool

	// Result batching: finished tasks queue their results on resCh and a
	// dedicated loop coalesces them into "results" messages — one wire
	// round per linger window instead of one per core. batchOK turns true
	// when the master acks the batch capability; before that (and against
	// an old master, forever) results go out one message each.
	resCh   chan *Result
	done    chan struct{} // closed by run() after in-flight tasks finish
	batchOK atomic.Bool
	linger  time.Duration

	// redirect holds the leader address a redirect message carried, for
	// the reconnect loop to read after the connection dies.
	redirect atomic.Pointer[string]

	tasksRun    atomic.Int64
	tasksFailed atomic.Int64

	// tel and tracer are installed after the receive loop is already
	// running, so publication must be atomic.
	tel    atomic.Pointer[workerTelemetry]
	tracer atomic.Pointer[trace.Tracer]
}

// Trace attaches a tracer: each task run gets a span chained under the
// master's dispatch context carried in Task.Trace (a malformed context
// degrades to a fresh root), with child spans for stage-in, execution,
// and stage-out. The execute span's context is handed to the executor
// so application-level operations (chirp, squid, xrootd) chain under
// it. Call before traffic; nil leaves the worker untraced at zero cost.
func (w *Worker) Trace(tr *trace.Tracer) {
	if tr != nil {
		w.tracer.Store(tr)
	}
}

// workerTelemetry holds the worker's instruments; series are shared by all
// workers in a process (the fleet aggregate), so the zero value stays free
// and instrumenting many workers does not explode cardinality.
type workerTelemetry struct {
	tasks     *telemetry.Counter
	failures  *telemetry.Counter
	cacheHits *telemetry.Counter
	cacheMiss *telemetry.Counter
	stageIn   *telemetry.Histogram
	execTime  *telemetry.Histogram
	slotsBusy *telemetry.Gauge
	planeIn   *telemetry.Counter // lobster_bytes_total{wq_worker,in}
	planeOut  *telemetry.Counter // lobster_bytes_total{wq_worker,out}
}

// noWorkerTel is the disabled instrument set: every field nil, every
// call a nil-receiver no-op.
var noWorkerTel workerTelemetry

// telemetry returns the installed instruments, or the free zero set.
func (w *Worker) telemetry() *workerTelemetry {
	if t := w.tel.Load(); t != nil {
		return t
	}
	return &noWorkerTel
}

// Instrument registers the worker's (process-aggregate) metric series on
// reg. A nil registry leaves the worker uninstrumented at zero cost.
func (w *Worker) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	w.tel.Store(&workerTelemetry{
		tasks: reg.Counter("lobster_wq_worker_tasks_total",
			"Tasks executed by workers in this process."),
		failures: reg.Counter("lobster_wq_worker_failures_total",
			"Tasks that failed locally on workers in this process."),
		cacheHits: reg.Counter("lobster_wq_worker_cache_hits_total",
			"Cacheable inputs satisfied from the worker content cache."),
		cacheMiss: reg.Counter("lobster_wq_worker_cache_misses_total",
			"Cacheable inputs that had to arrive with data."),
		stageIn: reg.Histogram("lobster_wq_worker_stage_in_seconds",
			"Sandbox stage-in time per task.", nil),
		execTime: reg.Histogram("lobster_wq_worker_exec_seconds",
			"Executor run time per task.", nil),
		slotsBusy: reg.Gauge("lobster_wq_worker_slots_busy",
			"Core slots currently executing tasks across workers in this process."),
		planeIn:  reg.Bytes("wq_worker", telemetry.DirIn),
		planeOut: reg.Bytes("wq_worker", telemetry.DirOut),
	})
}

// WorkerOptions configures NewWorkerOpts beyond the required plumbing.
type WorkerOptions struct {
	// Fault, when non-nil, wraps the worker's master connection so its
	// reads and writes consult the fault plane under component
	// "wq_worker", and arms Check hooks in stage-in and stage-out
	// (ops "stage_in" / "stage_out").
	Fault *faultinject.Injector
	// StageRetry bounds retries of individual sandbox file writes and
	// reads during staging. The zero Policy keeps the old behaviour:
	// first error fails the task.
	StageRetry retry.Policy
	// DisableBatch pins the connection to the v0 single-message framing
	// (the worker advertises proto 0). Used by interop tests and as an
	// escape hatch.
	DisableBatch bool
	// ResultLinger bounds how long a finished result may wait for
	// companions before its batch is flushed. Zero means the default
	// (200µs); it only applies once the master has acked batch framing.
	ResultLinger time.Duration
}

// NewWorker connects a worker to the master at addr. dir is the worker's
// scratch directory (sandboxes and cache live beneath it). The registry maps
// the executor names tasks will reference.
func NewWorker(addr, name string, cores int, dir string, reg Registry) (*Worker, error) {
	return NewWorkerOpts(addr, name, cores, dir, reg, WorkerOptions{})
}

// NewWorkerOpts is NewWorker with fault-plane and staging-retry options.
func NewWorkerOpts(addr, name string, cores int, dir string, reg Registry, opts WorkerOptions) (*Worker, error) {
	if cores < 1 {
		return nil, fmt.Errorf("wq: worker needs at least one core")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wq: worker dir: %w", err)
	}
	raw, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wq: worker dialing %s: %w", addr, err)
	}
	raw = opts.Fault.Conn("wq_worker", raw)
	linger := opts.ResultLinger
	if linger <= 0 {
		linger = 200 * time.Microsecond
	}
	w := &Worker{
		name:       name,
		cores:      cores,
		reg:        reg,
		dir:        dir,
		cache:      newContentCache(),
		conn:       newConn(raw),
		fault:      opts.Fault,
		stageRetry: opts.StageRetry,
		slots:      make(chan struct{}, cores),
		resCh:      make(chan *Result, cores+batchMax),
		done:       make(chan struct{}),
		linger:     linger,
	}
	proto := protoBatch
	if opts.DisableBatch {
		proto = 0
	}
	if err := w.conn.send(&message{Type: "hello", Name: name, Cores: cores, Proto: proto}); err != nil {
		raw.Close()
		return nil, err
	}
	w.wg.Add(2)
	go w.run()
	go w.resultLoop()
	return w, nil
}

// Name returns the worker's name.
func (w *Worker) Name() string { return w.name }

// TasksRun returns the number of tasks executed (including failures).
func (w *Worker) TasksRun() int64 { return w.tasksRun.Load() }

// TasksFailed returns the number of tasks that failed locally.
func (w *Worker) TasksFailed() int64 { return w.tasksFailed.Load() }

// CachedObjects returns the number of cacheable inputs held.
func (w *Worker) CachedObjects() int { return w.cache.len() }

// Done is closed when the worker's connection has died and its in-flight
// tasks have finished — the reconnect signal for an HA redial loop.
func (w *Worker) Done() <-chan struct{} { return w.done }

// RedirectAddr returns the leader address the master named in a redirect
// message, or "" if the connection died without one.
func (w *Worker) RedirectAddr() string {
	if p := w.redirect.Load(); p != nil {
		return *p
	}
	return ""
}

// Close disconnects gracefully after in-flight tasks finish sending.
func (w *Worker) Close() error {
	if w.closed.Swap(true) {
		return nil
	}
	err := w.conn.close()
	w.wg.Wait()
	return err
}

// Evict abruptly severs the connection, abandoning running tasks — the
// behaviour of a batch-system preemption. The master will requeue.
func (w *Worker) Evict() {
	w.evicted.Store(true)
	w.Close()
}

// run reads tasks until the connection dies. The deferred order matters:
// in-flight tasks finish (and queue their results) before done closes,
// so the result loop flushes everything before it exits.
func (w *Worker) run() {
	defer w.wg.Done()
	defer close(w.done)
	var taskWG sync.WaitGroup
	defer taskWG.Wait()
	for {
		msg, err := w.conn.recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case "task":
			if msg.Task != nil {
				w.startTask(msg.Task, &taskWG)
			}
		case "tasks":
			// Batch framing: K tasks in one message. Slice order matters —
			// startTask resolves cacheable inputs as it goes, preserving
			// the data-before-hash-only invariant within the batch.
			for _, t := range msg.Tasks {
				if t != nil {
					w.startTask(t, &taskWG)
				}
			}
		case "hello":
			// The master's capability ack: batched results are welcome.
			if msg.Proto >= protoBatch {
				w.batchOK.Store(true)
			}
		case "redirect":
			// The master is a standby or a deposed leader: remember where it
			// pointed us and wait for it to drop the connection.
			addr := msg.Name
			w.redirect.Store(&addr)
		case "ping":
			w.conn.send(&message{Type: "ping"})
		}
	}
}

// startTask resolves a task's inputs and launches it on a free slot,
// blocking while all cores are busy (the worker's natural backpressure on
// the receive loop).
func (w *Worker) startTask(t *Task, taskWG *sync.WaitGroup) {
	// Resolve cacheable inputs synchronously, in arrival order: the
	// master sends each cacheable payload once per connection, so a
	// later hash-only reference must decode after the data-bearing
	// task has populated the cache.
	hits, misses, decodeErr := decodeInputs(t, w.cache)
	tel := w.telemetry()
	tel.cacheHits.Add(int64(hits))
	tel.cacheMiss.Add(int64(misses))
	taskWG.Add(1)
	w.slots <- struct{}{}
	go func() {
		defer taskWG.Done()
		defer func() { <-w.slots }()
		tel.slotsBusy.Add(1)
		defer tel.slotsBusy.Add(-1)
		res := w.execute(t, hits, misses, decodeErr)
		if w.evicted.Load() {
			return // evicted mid-task: never report
		}
		w.resCh <- res
	}()
}

// resultLoop coalesces finished results into batch messages: the first
// result opens a linger window; whatever lands within it (or until the
// batch fills) rides the same message. Against a master that never acked
// batching, every result is sent individually the moment it arrives.
func (w *Worker) resultLoop() {
	defer w.wg.Done()
	pending := make([]*Result, 0, batchMax)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		if !w.evicted.Load() {
			if w.batchOK.Load() {
				w.conn.send(&message{Type: "results", Results: pending})
			} else {
				for _, r := range pending {
					w.conn.send(&message{Type: "result", Result: r})
				}
			}
		}
		for i := range pending {
			pending[i] = nil
		}
		pending = pending[:0]
	}
	drainAndExit := func() {
		for {
			select {
			case r := <-w.resCh:
				pending = append(pending, r)
				if len(pending) == batchMax {
					flush()
				}
			default:
				flush()
				return
			}
		}
	}
	for {
		select {
		case r := <-w.resCh:
			pending = append(pending, r)
			if w.batchOK.Load() {
				linger := time.NewTimer(w.linger)
			coalesce:
				for len(pending) < batchMax {
					select {
					case r := <-w.resCh:
						pending = append(pending, r)
					case <-linger.C:
						break coalesce
					case <-w.done:
						linger.Stop()
						drainAndExit()
						return
					}
				}
				linger.Stop()
			}
			flush()
		case <-w.done:
			drainAndExit()
			return
		}
	}
}

// execute stages inputs, runs the executor, and collects outputs. Cache
// resolution already happened in the receive loop; its outcome is passed in.
func (w *Worker) execute(t *Task, cacheHits, cacheMisses int, decodeErr error) *Result {
	res := &Result{TaskID: t.ID, Tag: t.Tag, Worker: w.name}
	res.Stats.Times.Started = time.Now()
	tracer := w.tracer.Load()
	wireCtx, _ := trace.Parse(t.Trace)
	run := tracer.Start(wireCtx, "worker", "run")
	run.Attr("worker", w.name)
	run.AttrInt("task_id", t.ID)
	var siSpan, exSpan, soSpan *trace.Span
	defer func() {
		res.Stats.Times.Finished = time.Now()
		w.tasksRun.Add(1)
		tel := w.telemetry()
		tel.tasks.Inc()
		if res.Failed() {
			w.tasksFailed.Add(1)
			tel.failures.Inc()
		}
		tel.stageIn.Observe(res.Stats.StageIn.Seconds())
		tel.execTime.Observe(res.Stats.Exec.Seconds())
		// Close whatever stage span a failure return left open (End on
		// an already-ended or nil span is a no-op).
		siSpan.End()
		exSpan.End()
		soSpan.End()
		run.AttrInt("exit_code", int64(res.ExitCode))
		run.End()
	}()

	fail := func(code int, format string, args ...any) *Result {
		res.ExitCode = code
		res.Error = fmt.Sprintf(format, args...)
		return res
	}

	// Stage in.
	stageStart := time.Now()
	siSpan = tracer.Start(run.Context(), "worker", "stage_in")
	res.Stats.CacheHits = cacheHits
	res.Stats.CacheMisses = cacheMisses
	siSpan.AttrInt("cache_hits", int64(cacheHits))
	siSpan.AttrInt("cache_misses", int64(cacheMisses))
	if decodeErr != nil {
		return fail(170, "stage-in: %v", decodeErr)
	}
	// The sandbox is created lazily: a task that declares no files never
	// touches the filesystem here — profiling showed sandbox mkdir/rmdir
	// dominating the per-task syscall budget for file-less tasks.
	// Executors that write undeclared scratch call ctx.EnsureSandbox.
	// RemoveAll on a never-created sandbox is one cheap lstat.
	sandbox := filepath.Join(w.dir, fmt.Sprintf("task-%d", t.ID))
	if len(t.Inputs) > 0 || len(t.Outputs) > 0 {
		if err := os.MkdirAll(sandbox, 0o755); err != nil {
			return fail(170, "stage-in: creating sandbox: %v", err)
		}
	}
	defer os.RemoveAll(sandbox)
	// Files land in parallel under a bounded group: a multi-input task
	// overlaps its sandbox writes instead of paying them end to end.
	// Each file is staged under the retry policy with the fault hook
	// inside the attempt, so injected staging faults exercise the same
	// recovery path as a flaky local disk.
	if err := stageGroup(len(t.Inputs), stageParallelism, func(i int) error {
		f := t.Inputs[i]
		dst := filepath.Join(sandbox, filepath.FromSlash(f.Name))
		return w.stageRetry.Do(func() error {
			if err := w.fault.Check("wq_worker", "stage_in"); err != nil {
				return err
			}
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return err
			}
			return os.WriteFile(dst, f.Data, 0o644)
		})
	}); err != nil {
		return fail(170, "stage-in: %v", err)
	}
	for _, f := range t.Inputs {
		res.Stats.BytesIn += int64(len(f.Data))
	}
	w.telemetry().planeIn.Add(res.Stats.BytesIn)
	res.Stats.StageIn = time.Since(stageStart)
	siSpan.AttrInt("bytes", res.Stats.BytesIn)
	siSpan.End()

	// Execute.
	exec, ok := w.reg[t.Func]
	if !ok {
		return fail(127, "unknown executor %q", t.Func)
	}
	execStart := time.Now()
	exSpan = tracer.Start(run.Context(), "worker", "execute")
	execTrace := exSpan.Context()
	if !execTrace.Valid() {
		// Tracing off locally: still forward the upstream context so a
		// partially-instrumented stack keeps one trace.
		execTrace = wireCtx
	}
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("executor panicked: %v", p)
			}
		}()
		return exec(&ExecContext{
			Task: t, Sandbox: sandbox, WorkerName: w.name,
			Trace: execTrace, Tracer: tracer,
		})
	}()
	res.Stats.Exec = time.Since(execStart)
	exSpan.End()
	if err != nil {
		// Best-effort output collection on failure: diagnostic outputs such
		// as the wrapper report must reach the master even when the task
		// fails ("a record of ... each segment is returned back").
		for _, name := range t.Outputs {
			data, rerr := os.ReadFile(filepath.Join(sandbox, filepath.FromSlash(name)))
			if rerr == nil {
				res.Outputs = append(res.Outputs, FileSpec{Name: name, Data: data})
				res.Stats.BytesOut += int64(len(data))
			}
		}
		if ee, ok := err.(*ExitError); ok {
			return fail(ee.Code, "%s", ee.Error())
		}
		return fail(1, "%v", err)
	}

	// Stage out: outputs are read in parallel under the same bounded
	// group, then appended in declaration order so results stay
	// deterministic.
	outStart := time.Now()
	soSpan = tracer.Start(run.Context(), "worker", "stage_out")
	collected := make([][]byte, len(t.Outputs))
	if err := stageGroup(len(t.Outputs), stageParallelism, func(i int) error {
		name := t.Outputs[i]
		return w.stageRetry.Do(func() error {
			if err := w.fault.Check("wq_worker", "stage_out"); err != nil {
				return err
			}
			data, rerr := os.ReadFile(filepath.Join(sandbox, filepath.FromSlash(name)))
			if rerr != nil {
				// A declared output that never appeared will not appear on
				// a retry either — the executor has already finished.
				return retry.Permanent(rerr)
			}
			collected[i] = data
			return nil
		})
	}); err != nil {
		return fail(171, "stage-out: declared output missing: %v", err)
	}
	for i, name := range t.Outputs {
		res.Outputs = append(res.Outputs, FileSpec{Name: name, Data: collected[i]})
		res.Stats.BytesOut += int64(len(collected[i]))
	}
	w.telemetry().planeOut.Add(res.Stats.BytesOut)
	res.Stats.StageOut = time.Since(outStart)
	soSpan.AttrInt("bytes", res.Stats.BytesOut)
	soSpan.End()
	return res
}

// stageParallelism bounds concurrent file operations within one task's
// stage-in or stage-out. Small on purpose: staging overlaps I/O waits,
// it must not become a per-task thundering herd on the local disk.
const stageParallelism = 4

// stageGroup runs fn(0..n-1) with at most limit goroutines in flight
// and returns the first error. All launched calls run to completion
// either way, so fn's writes are never abandoned mid-file.
func stageGroup(n, limit int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(0)
	}
	sem := make(chan struct{}, limit)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			errs <- fn(i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
