package wq

import (
	"encoding/json"
	"errors"
	"sync"
	"time"

	"lobster/internal/faultinject"
	"lobster/internal/monitor"
	"lobster/internal/replica"
	"lobster/internal/telemetry"
)

// HA control plane: a Master wrapped in a replica.Group so the task log —
// not the process — is the source of truth. Every submission and every
// terminal completion is an entry in the replicated log, encoded as a
// telemetry.Event JSON line ("ha_submit" carries the Task, "task" carries
// the monitor.TaskRecord with HA fields piggybacked in the same object),
// so a standby's applied stream doubles as a structured event log that
// monitor.ReplayLog consumes directly.
//
// The leader dispatches from the apply path (commit-then-dispatch): a task
// reaches a worker only after its submission is majority-durable, and a
// completion is acknowledged only after its done-record is. On leader
// death the survivors elect, finish applying the committed suffix, and the
// winner re-dispatches everything still pending — a committed task is
// never lost, and the apply-side dedupe keeps completion exactly-once even
// when an old leader's in-flight done-record commits after a re-dispatch.
//
// Takeover is gated on the term barrier: becoming leader auto-appends an
// empty entry of the new term, and only once that entry applies locally is
// the committed prefix known to be fully replayed — dispatching earlier
// could re-run a task whose done-record sits later in the suffix.

// HAMasterConfig configures one replicated-control-plane member.
type HAMasterConfig struct {
	// ID and Peers define the replication mesh (replica transport
	// addresses). Addr is this member's worker-facing wq listen address.
	ID    uint64
	Peers map[uint64]string
	Addr  string
	// WQAddrs optionally maps member IDs to their worker-facing addresses
	// so redirects can point kicked workers straight at the new leader.
	WQAddrs map[uint64]string

	Seed          uint64
	TickEvery     time.Duration
	ElectionTicks int
	// Dir, when non-empty, persists the replica state (vote, term, log).
	Dir string

	Registry *telemetry.Registry
	// EventLog, when non-nil, receives the applied entry stream plus the
	// group's election events — the member's replayable local history.
	EventLog *telemetry.EventLog
	Fault    *faultinject.Injector
}

// HAResult is one replicated terminal task outcome.
type HAResult struct {
	HAID      uint64
	Tag       string
	Worker    string
	ExitCode  int
	Error     string
	Permanent bool
	Requeues  int
	Outputs   []FileSpec
}

// Failed reports whether the outcome is a failure.
func (r *HAResult) Failed() bool { return r.ExitCode != 0 }

// haDoneEntry is the wire form of a terminal completion: a TaskRecord
// flattened for monitor.ReplayLog, with the HA bookkeeping riding along as
// extra keys the record unmarshal ignores.
type haDoneEntry struct {
	monitor.TaskRecord
	HAID      uint64     `json:"ha_id"`
	HATag     string     `json:"ha_tag,omitempty"`
	HAError   string     `json:"ha_error,omitempty"`
	Permanent bool       `json:"ha_permanent,omitempty"`
	Outputs   []FileSpec `json:"ha_outputs,omitempty"`
}

// HAMaster is one member of a replicated control plane.
type HAMaster struct {
	cfg   HAMasterConfig
	inner *Master
	group *replica.Group
	mon   *monitor.Monitor
	start time.Time

	mu   sync.Mutex
	cond *sync.Cond
	// pending holds committed submissions with no committed done-record
	// yet; done and results hold the terminal outcomes; tags dedupes
	// client resubmissions of the same tag after an ambiguous failure.
	pending   map[uint64]*Task
	done      map[uint64]*HAResult
	results   []*HAResult
	tags      map[string]uint64
	innerToHA map[int64]uint64
	ready     bool   // leader with the term barrier applied
	leadTerm  uint64 // term of our leadership, 0 when not leader

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// StartHAMaster starts one member. All members start gated (standby);
// whichever wins the election opens its worker gate and dispatches.
func StartHAMaster(cfg HAMasterConfig) (*HAMaster, error) {
	inner, err := NewMaster(cfg.Addr)
	if err != nil {
		return nil, err
	}
	inner.SetAccepting(false)
	inner.Fault(cfg.Fault)
	h := &HAMaster{
		cfg:       cfg,
		inner:     inner,
		mon:       monitor.New(),
		start:     time.Now(),
		pending:   make(map[uint64]*Task),
		done:      make(map[uint64]*HAResult),
		tags:      make(map[string]uint64),
		innerToHA: make(map[int64]uint64),
		closed:    make(chan struct{}),
	}
	h.cond = sync.NewCond(&h.mu)
	group, err := replica.StartGroup(replica.GroupConfig{
		ID: cfg.ID, Peers: cfg.Peers, Seed: cfg.Seed,
		TickEvery: cfg.TickEvery, ElectionTicks: cfg.ElectionTicks,
		Dir:      cfg.Dir,
		Apply:    h.applyEntry,
		OnRole:   h.onRole,
		Registry: cfg.Registry,
		EventLog: cfg.EventLog,
		Fault:    cfg.Fault,
	})
	if err != nil {
		inner.Close()
		return nil, err
	}
	h.group = group
	h.wg.Add(1)
	go h.collector()
	return h, nil
}

// now returns seconds since the member started (the monitor's run origin).
func (h *HAMaster) now() float64 { return time.Since(h.start).Seconds() }

// rel converts an absolute task timestamp to run-origin seconds.
func (h *HAMaster) rel(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return t.Sub(h.start).Seconds()
}

// Addr returns the member's worker-facing address.
func (h *HAMaster) Addr() string { return h.inner.Addr() }

// ReplicaAddr returns the member's replication transport address.
func (h *HAMaster) ReplicaAddr() string { return h.group.Addr() }

// ID returns the member's identity.
func (h *HAMaster) ID() uint64 { return h.cfg.ID }

// IsLeader reports whether the member currently leads.
func (h *HAMaster) IsLeader() bool { return h.group.Role() == replica.Leader }

// Ready reports whether the member leads AND has applied its term barrier
// — the instant it owns dispatch.
func (h *HAMaster) Ready() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready
}

// Term returns the member's current election term.
func (h *HAMaster) Term() uint64 { return h.group.Term() }

// LeaderID returns the member's view of the current leader (0 unknown).
func (h *HAMaster) LeaderID() uint64 { return h.group.LeaderID() }

// Monitor returns the member's warm task DB, rebuilt continuously from the
// applied done-records — on a standby it is the failover-ready replica of
// the leader's task history.
func (h *HAMaster) Monitor() *monitor.Monitor { return h.mon }

// Stats returns the inner dispatch master's counters.
func (h *HAMaster) Stats() MasterStats { return h.inner.Stats() }

// Submit replicates a task submission and returns its HA ID (the log
// index) once it is majority-durable. Only the leader accepts;
// replica.ErrNotLeader tells the client to try another member. Tasks with
// a Tag are idempotent: resubmitting a tag that already committed returns
// the original ID, so a client may safely retry an ambiguous failure.
func (h *HAMaster) Submit(t *Task, timeout time.Duration) (uint64, error) {
	if t.Func == "" {
		return 0, errors.New("wq: task needs a Func")
	}
	if t.MaxRetries <= 0 {
		t.MaxRetries = 5
	}
	if t.Tag != "" {
		h.mu.Lock()
		id, dup := h.tags[t.Tag]
		h.mu.Unlock()
		if dup {
			return id, nil
		}
	}
	data, err := json.Marshal(t)
	if err != nil {
		return 0, err
	}
	line, err := json.Marshal(telemetry.Event{Time: h.now(), Type: "ha_submit", Data: data})
	if err != nil {
		return 0, err
	}
	return h.group.Propose(line, timeout)
}

// DoneCount returns the number of replicated terminal outcomes.
func (h *HAMaster) DoneCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.done)
}

// PendingCount returns committed submissions still awaiting a done-record.
func (h *HAMaster) PendingCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending)
}

// Results returns a snapshot of the terminal outcomes in apply order.
func (h *HAMaster) Results() []*HAResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*HAResult, len(h.results))
	copy(out, h.results)
	return out
}

// WaitDone blocks until n outcomes have replicated or the timeout passes.
func (h *HAMaster) WaitDone(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer timer.Stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.done) < n {
		if !time.Now().Before(deadline) {
			return false
		}
		select {
		case <-h.closed:
			return false
		default:
		}
		h.cond.Wait()
	}
	return true
}

// onRole reacts to election transitions (group loop goroutine — must not
// block). A new leader opens the worker gate and waits for its term
// barrier; a deposed or standby member gates itself, forgets its dispatch
// bookkeeping, and kicks its workers toward the new leader.
func (h *HAMaster) onRole(rc replica.RoleChange) {
	if rc.Role == replica.Leader.String() {
		h.mu.Lock()
		h.leadTerm = rc.Term
		h.ready = false
		h.mu.Unlock()
		h.inner.SetRedirect("")
		h.inner.SetAccepting(true)
		return
	}
	h.mu.Lock()
	wasLeader := h.leadTerm != 0
	h.leadTerm = 0
	h.ready = false
	h.innerToHA = make(map[int64]uint64)
	h.mu.Unlock()
	h.inner.SetAccepting(false)
	if addr := h.cfg.WQAddrs[rc.Leader]; addr != "" {
		h.inner.SetRedirect(addr)
	}
	if wasLeader {
		// Conn writes can block; never from the group loop.
		go h.inner.KickWorkers()
	}
}

// applyEntry consumes one committed entry (group loop goroutine, log
// order). This is the only place HA state changes, on every member alike —
// leader and standby stay in lockstep by construction.
func (h *HAMaster) applyEntry(e replica.Entry) {
	if len(e.Data) == 0 {
		// Term barrier. If it carries our leadership term, the committed
		// prefix is fully applied: take over dispatch.
		h.mu.Lock()
		if h.leadTerm != 0 && e.Term == h.leadTerm && !h.ready {
			h.ready = true
			backlog := make(map[uint64]*Task, len(h.pending))
			for id, t := range h.pending {
				backlog[id] = t
			}
			h.mu.Unlock()
			for id, t := range backlog {
				h.dispatch(id, t)
			}
			return
		}
		h.mu.Unlock()
		return
	}
	var ev telemetry.Event
	if json.Unmarshal(e.Data, &ev) != nil {
		return
	}
	h.cfg.EventLog.Emit(ev.Type, ev.Data)
	switch ev.Type {
	case "ha_submit":
		var t Task
		if json.Unmarshal(ev.Data, &t) != nil {
			return
		}
		h.mu.Lock()
		if t.Tag != "" {
			if _, dup := h.tags[t.Tag]; dup {
				h.mu.Unlock()
				return // client retry of an already-committed submission
			}
			h.tags[t.Tag] = e.Index
		}
		if _, isDone := h.done[e.Index]; !isDone {
			h.pending[e.Index] = &t
		}
		ready := h.ready
		h.mu.Unlock()
		if ready {
			h.dispatch(e.Index, &t)
		}
	case "task":
		var d haDoneEntry
		if json.Unmarshal(ev.Data, &d) != nil {
			return
		}
		h.mu.Lock()
		if _, dup := h.done[d.HAID]; dup {
			h.mu.Unlock()
			return // an old leader's in-flight done-record after re-dispatch
		}
		delete(h.pending, d.HAID)
		res := &HAResult{
			HAID: d.HAID, Tag: d.HATag, Worker: d.TaskRecord.Worker,
			ExitCode: d.TaskRecord.ExitCode, Error: d.HAError,
			Permanent: d.Permanent, Requeues: d.TaskRecord.Requeues,
			Outputs: d.Outputs,
		}
		h.done[d.HAID] = res
		h.results = append(h.results, res)
		h.cond.Broadcast()
		h.mu.Unlock()
		h.mon.Add(d.TaskRecord)
	}
}

// dispatch hands a committed task to the inner master. The replicated copy
// stays pristine; the inner master assigns its own transient ID, recorded
// for the collector to map results back. The map write happens under the
// same lock as the Submit so a lightning-fast result cannot outrun it.
func (h *HAMaster) dispatch(haID uint64, t *Task) {
	cp := *t
	h.mu.Lock()
	innerID, err := h.inner.Submit(&cp)
	if err == nil {
		h.innerToHA[innerID] = haID
	}
	h.mu.Unlock()
}

// collector drains the inner master's terminal results and replicates each
// as a done-record. A proposal that fails (deposed mid-flight) is simply
// dropped: the mapping died with the leadership, and the next leader
// re-dispatches the task.
func (h *HAMaster) collector() {
	defer h.wg.Done()
	for {
		select {
		case <-h.closed:
			return
		default:
		}
		r, ok := h.inner.WaitResult(200 * time.Millisecond)
		if !ok {
			continue
		}
		h.mu.Lock()
		haID, mapped := h.innerToHA[r.TaskID]
		if mapped {
			delete(h.innerToHA, r.TaskID)
		}
		var tag, kind string
		if t := h.pending[haID]; mapped && t != nil {
			tag, kind = t.Tag, t.Func
		}
		h.mu.Unlock()
		if !mapped {
			continue // stale result from a previous leadership
		}
		d := haDoneEntry{
			TaskRecord: monitor.TaskRecord{
				TaskID: int64(haID), Kind: kind, Worker: r.Worker,
				Submit:   h.rel(r.Stats.Times.Submitted),
				Dispatch: h.rel(r.Stats.Times.Dispatched),
				Start:    h.rel(r.Stats.Times.Started),
				Finish:   h.rel(r.Stats.Times.Finished),
				Return:   h.now(),
				ExitCode: r.ExitCode, Requeues: r.Requeues,
				StageIn:  r.Stats.StageIn.Seconds(),
				StageOut: r.Stats.StageOut.Seconds(),
				CPUTime:  r.Stats.Exec.Seconds(),
			},
			HAID: haID, HATag: tag, HAError: r.Error,
			Permanent: r.Permanent, Outputs: r.Outputs,
		}
		payload, err := json.Marshal(d)
		if err != nil {
			continue
		}
		line, err := json.Marshal(telemetry.Event{Time: h.now(), Type: "task", Data: payload})
		if err != nil {
			continue
		}
		h.group.Propose(line, 10*time.Second)
	}
}

// Close stops the member: replication first (so it stops winning
// elections), then the worker-facing master.
func (h *HAMaster) Close() error {
	var err error
	h.closeOnce.Do(func() {
		close(h.closed)
		err = h.group.Close()
		if cerr := h.inner.Close(); err == nil {
			err = cerr
		}
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
		h.wg.Wait()
	})
	return err
}

// Kill is the chaos-plane death: identical to Close (which is already
// abrupt — no draining, connections severed), named for fault plans.
func (h *HAMaster) Kill() { h.Close() }
